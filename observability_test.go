package vectordb_test

import (
	"bytes"
	"testing"

	"vectordb"
	"vectordb/internal/obs/promtext"
)

// TestQueryProducesTrace is the end-to-end observability acceptance test:
// a search through the public API must leave a trace in the query log with
// at least four distinct stages, and the registry must expose the query
// series in parseable Prometheus text format.
func TestQueryProducesTrace(t *testing.T) {
	db := vectordb.Open(nil)
	defer db.Close()
	col, err := db.CreateCollection("items", vectordb.Schema{
		VectorFields: []vectordb.VectorField{{Name: "v", Dim: 4}},
		AttrFields:   []string{"price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ents := make([]vectordb.Entity, 50)
	for i := range ents {
		ents[i] = vectordb.Entity{
			ID:      int64(i + 1),
			Vectors: [][]float32{{float32(i), float32(i % 7), 1, 0}},
			Attrs:   []int64{int64(i * 10)},
		}
	}
	if err := col.Insert(ents); err != nil {
		t.Fatal(err)
	}
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Search([]float32{3, 3, 1, 0}, vectordb.SearchRequest{K: 5}); err != nil {
		t.Fatal(err)
	}

	recent := db.QueryLog().Recent()
	if len(recent) == 0 {
		t.Fatal("query log empty after a search")
	}
	tr := recent[0]
	stages := tr.Stages()
	if len(stages) < 4 {
		t.Fatalf("trace has %d distinct stages %v, want >= 4", len(stages), stages)
	}
	if got, _ := tr.Attr("placement"); got != "cpu" {
		t.Errorf("placement = %q, want cpu", got)
	}
	if tr.Duration <= 0 {
		t.Errorf("trace duration = %v, want > 0", tr.Duration)
	}

	var buf bytes.Buffer
	if err := db.Obs().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	ok := false
	for _, f := range fams {
		if f.Name != "vectordb_query_total" {
			continue
		}
		for _, s := range f.Samples {
			if s.Labels["collection"] == "items" && s.Labels["type"] == "vector" && s.Value == 1 {
				ok = true
			}
		}
	}
	if !ok {
		t.Errorf("vectordb_query_total{collection=\"items\",type=\"vector\"} != 1 in exposition")
	}
}

// TestFilteredQueryTraced: an attribute-filtered search through the public
// API records which filtering strategy served it.
func TestFilteredQueryTraced(t *testing.T) {
	db := vectordb.Open(nil)
	defer db.Close()
	col, err := db.CreateCollection("f", vectordb.Schema{
		VectorFields: []vectordb.VectorField{{Name: "v", Dim: 4}},
		AttrFields:   []string{"price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ents := make([]vectordb.Entity, 50)
	for i := range ents {
		ents[i] = vectordb.Entity{
			ID:      int64(i + 1),
			Vectors: [][]float32{{float32(i), 0, 0, 1}},
			Attrs:   []int64{int64(i)},
		}
	}
	if err := col.Insert(ents); err != nil {
		t.Fatal(err)
	}
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Search([]float32{25, 0, 0, 1}, vectordb.SearchRequest{
		K:      5,
		Filter: &vectordb.AttrRange{Attr: "price", Lo: 10, Hi: 40},
	}); err != nil {
		t.Fatal(err)
	}
	recent := db.QueryLog().Recent()
	if len(recent) == 0 {
		t.Fatal("query log empty after a filtered search")
	}
	if got, ok := recent[0].Attr("filter_strategy"); !ok || got == "" {
		t.Errorf("filter_strategy missing from filtered-search trace (attrs %v)", recent[0].Attrs)
	}
}
