package vectordb_test

import (
	"math/rand"
	"testing"

	"vectordb"
)

// Binary fingerprint collections (Tanimoto/Hamming/Jaccard, paper Sec. 2.1
// and the chemical-structure application of Sec. 6.2) flow through the same
// engine as float vectors, bit-packed via PackBits.

func randomFingerprint(r *rand.Rand, nbits, density int) []bool {
	bits := make([]bool, nbits)
	for i := range bits {
		bits[i] = r.Intn(density) == 0
	}
	return bits
}

func TestTanimotoCollection(t *testing.T) {
	db := vectordb.Open(nil)
	defer db.Close()
	const nbits = 256
	col, err := db.CreateCollection("compounds", vectordb.Schema{
		VectorFields: []vectordb.VectorField{{
			Name:   "fingerprint",
			Dim:    vectordb.BinaryDim(nbits),
			Metric: vectordb.Tanimoto,
		}},
		CatFields: []string{"scaffold"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	// Two scaffold families; members share most bits with their scaffold.
	scaffolds := [][]bool{randomFingerprint(r, nbits, 4), randomFingerprint(r, nbits, 4)}
	names := []string{"benzene", "steroid"}
	var ents []vectordb.Entity
	for i := 0; i < 400; i++ {
		fam := i % 2
		bits := append([]bool(nil), scaffolds[fam]...)
		for v := 0; v < 8; v++ {
			bits[r.Intn(nbits)] = !bits[r.Intn(nbits)]
		}
		ents = append(ents, vectordb.Entity{
			ID:      int64(i + 1),
			Vectors: [][]float32{vectordb.PackBits(bits)},
			Cats:    []string{names[fam]},
		})
	}
	if err := col.Insert(ents); err != nil {
		t.Fatal(err)
	}
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}

	// Querying with scaffold 0 must return family-0 members first.
	q := vectordb.PackBits(scaffolds[0])
	hits, err := col.Search(q, vectordb.SearchRequest{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 10 {
		t.Fatalf("%d hits", len(hits))
	}
	for _, h := range hits {
		e, _ := col.Get(h.ID)
		if e.Cats[0] != "benzene" {
			t.Fatalf("hit %d from wrong scaffold %q (distance %v)", h.ID, e.Cats[0], h.Distance)
		}
		if h.Distance < 0 || h.Distance > 1 {
			t.Fatalf("Tanimoto distance %v out of [0,1]", h.Distance)
		}
	}
	// Categorical + binary combine.
	hits, err = col.Search(q, vectordb.SearchRequest{
		K:   5,
		Cat: &vectordb.CatFilter{Attr: "scaffold", Values: []string{"steroid"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		e, _ := col.Get(h.ID)
		if e.Cats[0] != "steroid" {
			t.Fatalf("categorical filter violated: %v", e.Cats)
		}
	}
}

func TestHammingSelfMatch(t *testing.T) {
	db := vectordb.Open(nil)
	defer db.Close()
	col, err := db.CreateCollection("codes", vectordb.Schema{
		VectorFields: []vectordb.VectorField{{Name: "f", Dim: vectordb.BinaryDim(64), Metric: vectordb.Hamming}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	ents := make([]vectordb.Entity, 100)
	for i := range ents {
		ents[i] = vectordb.Entity{ID: int64(i + 1), Vectors: [][]float32{vectordb.PackBits(randomFingerprint(r, 64, 2))}}
	}
	col.Insert(ents)
	col.Flush()
	hits, err := col.Search(ents[42].Vectors[0], vectordb.SearchRequest{K: 1})
	if err != nil || len(hits) != 1 || hits[0].ID != 43 || hits[0].Distance != 0 {
		t.Fatalf("self-match: %v, %v", hits, err)
	}
}

func TestPackUnpackBits(t *testing.T) {
	bits := make([]bool, 70)
	bits[0], bits[33], bits[69] = true, true, true
	back := vectordb.UnpackBits(vectordb.PackBits(bits))
	for i := range bits {
		if back[i] != bits[i] {
			t.Fatalf("bit %d lost", i)
		}
	}
}
