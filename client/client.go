// Package client is the Go SDK for a vectordb server (Sec. 2.1 application
// interfaces): a thin typed wrapper over the RESTful API served by
// cmd/vectordbd.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"vectordb/internal/rest"
)

// Client talks to one vectordb server.
type Client struct {
	base string
	http *http.Client
}

// New creates a client for the server at base (e.g. "http://localhost:19530").
func New(base string) *Client {
	return &Client{base: base, http: http.DefaultClient}
}

// NewWithHTTPClient uses a custom *http.Client (timeouts, transports).
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return &Client{base: base, http: hc}
}

func (c *Client) do(method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e rest.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("client: %s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Healthy reports whether the server answers its health check.
func (c *Client) Healthy() bool {
	return c.do(http.MethodGet, "/healthz", nil, &map[string]string{}) == nil
}

// VectorField declares one vector field when creating a collection.
type VectorField = rest.VectorFieldJSON

// Entity is one row on the wire.
type Entity = rest.EntityJSON

// Filter is an attribute range constraint.
type Filter = rest.FilterJSON

// Result is one search hit.
type Result = rest.ResultJSON

// CreateCollection creates a collection.
func (c *Client) CreateCollection(name string, vectorFields []VectorField, attrFields []string) error {
	return c.do(http.MethodPost, "/collections", rest.CreateCollectionRequest{
		Name: name, VectorFields: vectorFields, AttrFields: attrFields,
	}, nil)
}

// CreateCollectionFull creates a collection with categorical fields too.
func (c *Client) CreateCollectionFull(name string, vectorFields []VectorField, attrFields, catFields []string) error {
	return c.do(http.MethodPost, "/collections", rest.CreateCollectionRequest{
		Name: name, VectorFields: vectorFields, AttrFields: attrFields, CatFields: catFields,
	}, nil)
}

// DropCollection removes a collection.
func (c *Client) DropCollection(name string) error {
	return c.do(http.MethodDelete, "/collections/"+name, nil, nil)
}

// ListCollections lists collection names.
func (c *Client) ListCollections() ([]string, error) {
	var out []string
	err := c.do(http.MethodGet, "/collections", nil, &out)
	return out, err
}

// Insert appends entities (asynchronous; Flush makes them visible).
func (c *Client) Insert(collection string, entities []Entity) error {
	return c.do(http.MethodPost, "/collections/"+collection+"/entities", rest.InsertRequest{Entities: entities}, nil)
}

// Delete tombstones entities by ID.
func (c *Client) Delete(collection string, ids []int64) error {
	return c.do(http.MethodPost, "/collections/"+collection+"/delete", rest.DeleteRequest{IDs: ids}, nil)
}

// Flush blocks until pending writes are visible.
func (c *Client) Flush(collection string) error {
	return c.do(http.MethodPost, "/collections/"+collection+"/flush", nil, nil)
}

// SearchOptions tunes a query.
type SearchOptions struct {
	Field     string
	Nprobe    int
	Ef        int
	SearchL   int
	Filter    *Filter
	CatFilter *rest.CatFilterJSON
}

// Search runs a top-k vector query.
func (c *Client) Search(collection string, vector []float32, k int, opts *SearchOptions) ([]Result, error) {
	req := rest.SearchRequest{Vector: vector, K: k}
	if opts != nil {
		req.Field, req.Nprobe, req.Ef, req.SearchL, req.Filter = opts.Field, opts.Nprobe, opts.Ef, opts.SearchL, opts.Filter
		req.CatFilter = opts.CatFilter
	}
	var out rest.SearchResponse
	if err := c.do(http.MethodPost, "/collections/"+collection+"/search", req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// SearchMulti runs a multi-vector query with weighted-sum aggregation.
func (c *Client) SearchMulti(collection string, vectors [][]float32, weights []float32, k int) ([]Result, error) {
	req := rest.SearchRequest{Vectors: vectors, Weights: weights, K: k}
	var out rest.SearchResponse
	if err := c.do(http.MethodPost, "/collections/"+collection+"/search", req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// BuildIndex builds an index on a vector field.
func (c *Client) BuildIndex(collection, field, indexType string, params map[string]string) error {
	return c.do(http.MethodPost, "/collections/"+collection+"/index", rest.IndexRequest{Field: field, Type: indexType, Params: params}, nil)
}

// Stats fetches collection statistics.
func (c *Client) Stats(collection string) (rest.StatsResponse, error) {
	var out rest.StatsResponse
	err := c.do(http.MethodGet, "/collections/"+collection+"/stats", nil, &out)
	return out, err
}
