module vectordb

go 1.22
