package vectordb_test

import (
	"fmt"
	"math/rand"
	"testing"

	"vectordb"
)

func testDB(t *testing.T) *vectordb.DB {
	t.Helper()
	db := vectordb.Open(nil)
	t.Cleanup(func() { db.Close() })
	return db
}

func randVec(r *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db := testDB(t)
	col, err := db.CreateCollection("items", vectordb.Schema{
		VectorFields: []vectordb.VectorField{{Name: "embedding", Dim: 16, Metric: vectordb.L2}},
		AttrFields:   []string{"price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	ents := make([]vectordb.Entity, 200)
	for i := range ents {
		ents[i] = vectordb.Entity{
			ID:      int64(i + 1),
			Vectors: [][]float32{randVec(r, 16)},
			Attrs:   []int64{int64(i)},
		}
	}
	if err := col.Insert(ents); err != nil {
		t.Fatal(err)
	}
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	if col.Count() != 200 {
		t.Fatalf("Count = %d", col.Count())
	}
	hits, err := col.Search(ents[42].Vectors[0], vectordb.SearchRequest{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].ID != 43 || hits[0].Distance != 0 {
		t.Fatalf("hits = %v", hits)
	}
	// Attribute-filtered search.
	hits, err = col.Search(ents[42].Vectors[0], vectordb.SearchRequest{
		K:      3,
		Filter: &vectordb.AttrRange{Attr: "price", Lo: 100, Hi: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		e, ok := col.Get(h.ID)
		if !ok || e.Attrs[0] < 100 || e.Attrs[0] > 150 {
			t.Fatalf("filter violated: %v", h)
		}
	}
	// Delete + stats.
	col.Delete([]int64{43})
	col.Flush()
	if _, ok := col.Get(43); ok {
		t.Fatal("deleted entity visible")
	}
	st := col.Stats()
	if st.LiveRows != 199 {
		t.Fatalf("stats = %+v", st)
	}
	// Index build and search via index.
	if err := col.BuildIndex("embedding", "IVF_FLAT", map[string]string{"nlist": "8"}); err != nil {
		t.Fatal(err)
	}
	hits, err = col.Search(ents[10].Vectors[0], vectordb.SearchRequest{K: 1, Nprobe: 8})
	if err != nil || len(hits) != 1 || hits[0].ID != 11 {
		t.Fatalf("indexed search = %v, %v", hits, err)
	}
}

func TestPublicMultiVector(t *testing.T) {
	db := testDB(t)
	col, err := db.CreateCollection("recipes", vectordb.Schema{
		VectorFields: []vectordb.VectorField{
			{Name: "text", Dim: 4, Metric: vectordb.IP},
			{Name: "image", Dim: 4, Metric: vectordb.IP},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	col.Insert([]vectordb.Entity{
		{ID: 1, Vectors: [][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}}},
		{ID: 2, Vectors: [][]float32{{0, 0, 1, 0}, {0, 0, 0, 1}}},
	})
	col.Flush()
	hits, err := col.SearchMulti([][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}}, []float32{1, 1}, 1)
	if err != nil || len(hits) != 1 || hits[0].ID != 1 {
		t.Fatalf("SearchMulti = %v, %v", hits, err)
	}
}

func TestOpenPathPersistsSegments(t *testing.T) {
	dir := t.TempDir()
	db, err := vectordb.OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	col, err := db.CreateCollection("p", vectordb.Schema{
		VectorFields: []vectordb.VectorField{{Name: "v", Dim: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	col.Insert([]vectordb.Entity{{ID: 1, Vectors: [][]float32{{1, 2}}}})
	col.Flush()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaErrorsSurface(t *testing.T) {
	db := testDB(t)
	if _, err := db.CreateCollection("bad", vectordb.Schema{}); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := db.CreateCollection("bad2", vectordb.Schema{
		VectorFields: []vectordb.VectorField{{Name: "v", Dim: 4, Metric: "BOGUS"}},
	}); err == nil {
		t.Error("bogus metric accepted")
	}
	if _, err := db.Collection("missing"); err == nil {
		t.Error("missing collection resolved")
	}
}

func TestIndexTypesListed(t *testing.T) {
	types := vectordb.IndexTypes()
	if len(types) != 7 {
		t.Fatalf("IndexTypes = %v", types)
	}
}

func Example() {
	db := vectordb.Open(nil)
	defer db.Close()
	col, _ := db.CreateCollection("quick", vectordb.Schema{
		VectorFields: []vectordb.VectorField{{Name: "v", Dim: 2}},
	})
	col.Insert([]vectordb.Entity{
		{ID: 1, Vectors: [][]float32{{0, 0}}},
		{ID: 2, Vectors: [][]float32{{3, 4}}},
	})
	col.Flush()
	hits, _ := col.Search([]float32{0.1, 0.1}, vectordb.SearchRequest{K: 1})
	fmt.Println(hits[0].ID)
	// Output: 1
}
