# vectordb — build, test and reproduce the paper's evaluation.

GO ?= go

.PHONY: all build test race vet fmt lint bench bench-kernels bench-batchform bench-filter bench-ooc bench-plan bench-smoke kernel-guard conformance-filter conformance-ooc ci cover stress experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails when any tracked source is not gofmt-clean (run `gofmt -w .`
# to fix). The golden-test module under internal/lint/testdata is held to
# the same standard, so no exclusions are needed.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "fmt: files need gofmt -w:"; echo "$$out"; exit 1; fi

# lint runs vectordblint, the in-tree stdlib-only static-analysis suite
# (internal/lint): poolfree, blockpin, ctxflow, kerneldispatch,
# lockdiscipline, atomicmix, metricreg, clockinject, plus the
# interprocedural lockorder/lockdisciplinex/goleak call-graph analyzers.
# Intentional exceptions carry //lint:allow pragmas in the source; see
# DESIGN.md §9.
lint:
	$(GO) run ./cmd/vectordblint ./...

# ci is the gate every change must pass: vet, gofmt cleanliness, build,
# the static-analysis suite, the full test suite, the race detector over
# internal/ — which includes the seeded concurrency stress harness
# (internal/stress) with fault injection — the cancellation/leak gate,
# the filtered-search gates (ground-truth conformance plus the concurrent
# filtered stress mode), the observability coverage floor, the
# batch-kernel guard and the benchmark smoke run.
ci: vet fmt build lint test cover kernel-guard conformance-filter conformance-ooc bench-smoke
	$(GO) test -race ./internal/...
	$(GO) test -race ./internal/stress -run TestStressCancel -short -faults=cancel
	$(GO) test -race ./internal/stress -run TestStressFiltered -short -faults=filtered
	$(GO) test -race ./internal/stress -run TestStressSpill -short -faults=spill
	$(GO) test -race ./internal/stress -run TestStressPlan -short -faults=plan
	$(GO) test -race ./internal/core -run 'TestSearchCtx|TestAdmission'

# conformance-ooc is the out-of-core ground-truth gate: tiered segments
# (mmap-backed extents, block-cache scans, spilled cold extents) must
# return bit-identical results to the in-RAM path across flat, IVF, SQ8
# and filtered searches, survive demote/promote cycles and restores, and
# tolerate truncated extent files (internal/colstore recovery tests).
conformance-ooc:
	$(GO) test ./internal/core -run TestTiered
	$(GO) test ./internal/core -run TestDBTierDefaults
	$(GO) test ./internal/colstore -run TestExtent
	$(GO) test ./internal/blockcache

# conformance-filter is the filtered-ANN ground-truth gate: every index
# type × metric × selectivity against the exact filter-then-scan oracle
# (internal/index), every strategy A–E against the oracle over a pushdown
# Table with the dense/sparse crossover audited from trace annotations
# (internal/query), and the multi-segment + tombstone pushdown paths
# (internal/core).
conformance-filter:
	$(GO) test ./internal/index -run TestFiltered
	$(GO) test ./internal/query -run 'TestStrategyFilteredConformance|TestSelectivitySweep|TestStrategyBPushedAllocs'
	$(GO) test ./internal/core -run TestPushdown

# kernel-guard keeps every hot read path on the blocked batch kernels.
# The static half — no per-tier kernel calls outside internal/vec — is
# the kerneldispatch analyzer in `make lint` (it replaced the old grep
# gate with a type-aware check). What remains here is the dynamic half:
# conformance tests asserting the batch-dispatch counters actually tick
# during scans — symbols being referenced is not enough, the scan must
# route through them.
kernel-guard:
	$(GO) test ./internal/index -run 'TestIndexScansUseBatchKernels|TestScanBlockedUsesBatchKernels'
	$(GO) test ./internal/core -run TestSegmentScanUsesBatchKernels

# bench-smoke compiles and runs every benchmark in the repo exactly once
# (-benchtime=1x): no timing signal, but a benchmark that panics, asserts,
# or rots against an API change fails CI instead of rotting silently. The
# dynamic-batching bench rides along at its -quick sizing for the same
# reason (it fails hard on any search error).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchbatchform -quick -o /dev/null
	$(GO) run ./cmd/benchfilter -quick -o /dev/null
	$(GO) run ./cmd/benchooc -quick -o /dev/null
	$(GO) run ./cmd/benchplan -quick -o /dev/null

# cover enforces a coverage floor on the observability layer: the metrics
# registry, exposition writer, tracer and query log are the eyes of every
# other subsystem, so untested branches there hide real regressions.
# -coverpkg spans the promtext parser, whose tests live in obs.
OBS_COVER_MIN ?= 80.0
cover:
	$(GO) test -coverprofile=obs.cover -coverpkg=./internal/obs/... ./internal/obs/...
	@$(GO) tool cover -func=obs.cover | awk -v min=$(OBS_COVER_MIN) '\
		/^total:/ { sub(/%/, "", $$3); \
			if ($$3+0 < min) { printf "obs coverage %.1f%% below floor %.1f%%\n", $$3, min; exit 1 } \
			else { printf "obs coverage %.1f%% (floor %.1f%%)\n", $$3, min } }'
	@rm -f obs.cover

# stress runs the full randomized stress/fault harness alone, race-enabled.
# Reproduce a failure with: go test -race ./internal/stress -seed <n>
stress:
	$(GO) test -race -v ./internal/stress

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-kernels regenerates BENCH_kernels.json, the Fig. 8 companion
# artifact: blocked batch kernels vs the pre-blocking scan loop, plus the
# CacheAware-vs-ThreadPerQuery multi-query tile gap.
bench-kernels:
	$(GO) run ./cmd/benchkernels -o BENCH_kernels.json

# bench-filter regenerates BENCH_filter.json: the filtered-scan pushdown
# (dense bitsets beneath the batch kernels) against the legacy per-row
# callback filter, swept over selectivity for both flat scans and IVF
# probes, on clustered and shuffled attribute layouts.
bench-filter:
	$(GO) run ./cmd/benchfilter -o BENCH_filter.json

# bench-ooc regenerates BENCH_ooc.json: out-of-core search under cache
# pressure — hit rate and latency swept over dataset/cache ratios 1x, 2x,
# 4x, 10x with sealed segments in mmap-backed extent files and IVF
# payloads externalized (the tiered-storage companion artifact).
bench-ooc:
	$(GO) run ./cmd/benchooc -o BENCH_ooc.json

# bench-plan regenerates BENCH_plan.json: the cost-based planner against
# every static policy it replaces — placement (pure-CPU / pure-GPU /
# always-hybrid on the virtual device clocks) swept over nq × residency,
# and filter strategy (always-A / always-pushdown, wall-clock) swept over
# selectivity × layout — reporting per-cell regret vs the best static.
bench-plan:
	$(GO) run ./cmd/benchplan -o BENCH_plan.json

# bench-batchform regenerates BENCH_batchform.json: the batch former
# coalescing live concurrent searches into tile batches vs the per-query
# path, at c = 8 / 64 / 256 (the online companion to bench-kernels'
# offline tile numbers).
bench-batchform:
	$(GO) run ./cmd/benchbatchform -o BENCH_batchform.json

# Regenerate every table and figure of the paper (Sec. 7).
experiments:
	$(GO) run ./cmd/benchmark -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/imagesearch
	$(GO) run ./examples/recipesearch
	$(GO) run ./examples/chemsearch
	$(GO) run ./examples/distributed
	$(GO) run ./examples/restapi

clean:
	$(GO) clean ./...
