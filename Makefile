# vectordb — build, test and reproduce the paper's evaluation.

GO ?= go

.PHONY: all build test race vet bench ci cover stress experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# ci is the gate every change must pass: vet, build, the full test suite,
# the race detector over internal/ — which includes the seeded
# concurrency stress harness (internal/stress) with fault injection —
# the cancellation/leak gate, and the observability coverage floor.
ci: vet build test cover
	$(GO) test -race ./internal/...
	$(GO) test -race ./internal/stress -run TestStressCancel -short -faults=cancel
	$(GO) test -race ./internal/core -run 'TestSearchCtx|TestAdmission'

# cover enforces a coverage floor on the observability layer: the metrics
# registry, exposition writer, tracer and query log are the eyes of every
# other subsystem, so untested branches there hide real regressions.
# -coverpkg spans the promtext parser, whose tests live in obs.
OBS_COVER_MIN ?= 80.0
cover:
	$(GO) test -coverprofile=obs.cover -coverpkg=./internal/obs/... ./internal/obs/...
	@$(GO) tool cover -func=obs.cover | awk -v min=$(OBS_COVER_MIN) '\
		/^total:/ { sub(/%/, "", $$3); \
			if ($$3+0 < min) { printf "obs coverage %.1f%% below floor %.1f%%\n", $$3, min; exit 1 } \
			else { printf "obs coverage %.1f%% (floor %.1f%%)\n", $$3, min } }'
	@rm -f obs.cover

# stress runs the full randomized stress/fault harness alone, race-enabled.
# Reproduce a failure with: go test -race ./internal/stress -seed <n>
stress:
	$(GO) test -race -v ./internal/stress

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (Sec. 7).
experiments:
	$(GO) run ./cmd/benchmark -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/imagesearch
	$(GO) run ./examples/recipesearch
	$(GO) run ./examples/chemsearch
	$(GO) run ./examples/distributed
	$(GO) run ./examples/restapi

clean:
	$(GO) clean ./...
