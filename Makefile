# vectordb — build, test and reproduce the paper's evaluation.

GO ?= go

.PHONY: all build test race vet bench experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (Sec. 7).
experiments:
	$(GO) run ./cmd/benchmark -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/imagesearch
	$(GO) run ./examples/recipesearch
	$(GO) run ./examples/chemsearch
	$(GO) run ./examples/distributed
	$(GO) run ./examples/restapi

clean:
	$(GO) clean ./...
