# vectordb — build, test and reproduce the paper's evaluation.

GO ?= go

.PHONY: all build test race vet bench ci stress experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# ci is the gate every change must pass: vet, build, the full test suite,
# and the race detector over internal/ — which includes the seeded
# concurrency stress harness (internal/stress) with fault injection.
ci: vet build test
	$(GO) test -race ./internal/...

# stress runs the full randomized stress/fault harness alone, race-enabled.
# Reproduce a failure with: go test -race ./internal/stress -seed <n>
stress:
	$(GO) test -race -v ./internal/stress

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (Sec. 7).
experiments:
	$(GO) run ./cmd/benchmark -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/imagesearch
	$(GO) run ./examples/recipesearch
	$(GO) run ./examples/chemsearch
	$(GO) run ./examples/distributed
	$(GO) run ./examples/restapi

clean:
	$(GO) clean ./...
