// Command benchbatchform measures server-side dynamic batching against
// the per-query path and regenerates BENCH_batchform.json — the online
// companion to BENCH_kernels.json's offline Fig. 11 claim: the same
// cache-aware tile kernels, now fed by the batch former coalescing live
// concurrent SearchCtx traffic.
//
// For each concurrency level the same query stream runs twice over
// identical collections: once with the former at its defaults and once
// with batching disabled (BatchWindow < 0). Reported per level:
// throughput, p50/p99 latency (batched latencies include the coalesce
// wait — the honest cost side), the mean formed-batch occupancy and the
// share of queries that actually rode a batch.
//
// Usage:
//
//	benchbatchform                    # defaults: 32 segs × 2048 rows, dim 128
//	benchbatchform -quick -o /dev/null
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vectordb/internal/core"
	"vectordb/internal/exec"
	"vectordb/internal/obs"
	"vectordb/internal/obs/promtext"
	"vectordb/internal/vec"
)

type sideStat struct {
	QPS  float64 `json:"qps"`
	P50  float64 `json:"p50_us"`
	P99  float64 `json:"p99_us"`
	Errs int64   `json:"errors,omitempty"`
}

type runStat struct {
	Concurrency   int      `json:"concurrency"`
	Queries       int      `json:"queries"`
	PerQuery      sideStat `json:"perquery"`
	Batched       sideStat `json:"batched"`
	Speedup       float64  `json:"speedup"`
	MeanOccupancy float64  `json:"mean_occupancy"`
	BatchedShare  float64  `json:"batched_share"`
}

type report struct {
	Benchmark   string `json:"benchmark"`
	Environment struct {
		CPU        string `json:"cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
		Go         string `json:"go"`
		Workload   string `json:"workload"`
	} `json:"environment"`
	TargetSpeedupC64 float64   `json:"target_speedup_c64"`
	Runs             []runStat `json:"runs"`
}

func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

// buildCollection loads segs scan segments of rowsPerSeg deterministic
// rows each. IndexRows is unreachable on purpose: scan segments are where
// the tile kernels (and therefore batching) apply; indexed segments fall
// back to per-member index probes either way.
func buildCollection(pool *exec.Pool, reg *obs.Registry, dim, segs, rowsPerSeg int, window time.Duration) (*core.Collection, error) {
	schema := core.Schema{VectorFields: []core.VectorField{{Name: "v", Dim: dim, Metric: vec.L2}}}
	col, err := core.NewCollection("bench", schema, nil, core.Config{
		FlushRows:      rowsPerSeg,
		FlushInterval:  -1,
		MergeFactor:    1 << 20, // keep the segment layout fixed
		MaxSegmentRows: rowsPerSeg,
		IndexRows:      1 << 30,
		Exec:           pool,
		Obs:            reg,
		BatchWindow:    window,
	})
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(7))
	id := int64(0)
	for s := 0; s < segs; s++ {
		ents := make([]core.Entity, rowsPerSeg)
		for i := range ents {
			id++
			v := make([]float32, dim)
			for j := range v {
				v[j] = float32(r.NormFloat64())
			}
			ents[i] = core.Entity{ID: id, Vectors: [][]float32{v}}
		}
		if err := col.Insert(ents); err != nil {
			return nil, err
		}
		if err := col.Flush(); err != nil {
			return nil, err
		}
	}
	return col, nil
}

// formerStats is the cumulative batchform accounting scraped from a
// registry; runLoad reports per-run deltas.
type formerStats struct {
	riders, batches, batched, passthrough int64
	triggers                              map[string]int64
}

func scrapeFormer(reg *obs.Registry) formerStats {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		log.Fatalf("benchbatchform: scrape: %v", err)
	}
	fams, err := promtext.Parse(buf.Bytes())
	if err != nil {
		log.Fatalf("benchbatchform: exposition does not parse: %v", err)
	}
	st := formerStats{triggers: map[string]int64{}}
	for _, f := range fams {
		switch f.Name {
		case "vectordb_batchform_batches_total":
			for _, s := range f.Samples {
				st.triggers[s.Labels["trigger"]] += int64(s.Value)
			}
		case "vectordb_batchform_occupancy_total":
			for _, s := range f.Samples {
				size, err := strconv.Atoi(s.Labels["size"])
				if err != nil {
					log.Fatalf("benchbatchform: occupancy size %q: %v", s.Labels["size"], err)
				}
				st.riders += int64(size) * int64(s.Value)
				st.batches += int64(s.Value)
			}
		case "vectordb_batchform_queries_total":
			for _, s := range f.Samples {
				switch s.Labels["path"] {
				case "batched":
					st.batched += int64(s.Value)
				case "passthrough":
					st.passthrough += int64(s.Value)
				}
			}
		}
	}
	return st
}

// runLoad drives total queries through col at the given concurrency and
// returns throughput plus the latency distribution.
func runLoad(col *core.Collection, queries [][]float32, concurrency, total, k int) (sideStat, time.Duration) {
	lat := make([]time.Duration, total)
	var next, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				t0 := time.Now()
				_, err := col.SearchCtx(context.Background(), queries[i%len(queries)], core.SearchOptions{K: k})
				lat[i] = time.Since(t0)
				if err != nil {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(total-1))
		return float64(lat[i]) / float64(time.Microsecond)
	}
	return sideStat{
		QPS:  float64(total) / wall.Seconds(),
		P50:  pct(0.50),
		P99:  pct(0.99),
		Errs: errs.Load(),
	}, wall
}

func main() {
	// Defaults mirror the offline tile-kernel regime (BENCH_kernels.json:
	// dim 128, ~100K rows): queries cost ~1ms, so coalescing overhead is
	// noise and the tile kernels' cache reuse is the signal. Tiny/cheap
	// queries (tens of µs) would measure timer overhead, not batching.
	segs := flag.Int("segs", 32, "scan segments")
	rows := flag.Int("rows", 2048, "rows per segment")
	dim := flag.Int("dim", 128, "vector dimensionality")
	k := flag.Int("k", 10, "top-k")
	total := flag.Int("queries", 512, "queries per (concurrency, mode) run")
	quick := flag.Bool("quick", false, "CI smoke sizing: small dataset, few queries")
	out := flag.String("o", "BENCH_batchform.json", "output JSON path")
	flag.Parse()
	if *quick {
		*segs, *rows, *total = 8, 1024, 128
	}

	// Admission stays wide open so high concurrency measures batching, not
	// rejection; worker count keeps the machine default.
	poolOn := exec.NewPool(exec.Config{MaxInflight: 4096, AdmitQueue: 1 << 14})
	poolOff := exec.NewPool(exec.Config{MaxInflight: 4096, AdmitQueue: 1 << 14})
	defer poolOn.Close()
	defer poolOff.Close()
	regOn := obs.NewRegistry()
	on, err := buildCollection(poolOn, regOn, *dim, *segs, *rows, 0)
	if err != nil {
		log.Fatalf("benchbatchform: %v", err)
	}
	defer on.Close()
	off, err := buildCollection(poolOff, obs.NewRegistry(), *dim, *segs, *rows, -1)
	if err != nil {
		log.Fatalf("benchbatchform: %v", err)
	}
	defer off.Close()

	r := rand.New(rand.NewSource(11))
	queries := make([][]float32, 256)
	for i := range queries {
		q := make([]float32, *dim)
		for j := range q {
			q[j] = float32(r.NormFloat64())
		}
		queries[i] = q
	}

	// Warm both paths (page in segments, JIT the pool) outside the clock.
	warm := *total / 4
	if warm > 128 {
		warm = 128
	}
	runLoad(on, queries, 8, warm, *k)
	runLoad(off, queries, 8, warm, *k)

	var rep report
	rep.Benchmark = "batchform-online"
	rep.Environment.CPU = cpuModel()
	rep.Environment.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Environment.Go = runtime.Version()
	rep.Environment.Workload = fmt.Sprintf("%d scan segments × %d rows, dim %d, L2, k=%d, %d queries per run",
		*segs, *rows, *dim, *k, *total)
	rep.TargetSpeedupC64 = 1.2

	// Each (mode, concurrency) cell keeps the best of reps passes: the box
	// this runs on has multi-hundred-ms scheduling stalls (visible as the
	// per-query p99 tail) and a single pass is hostage to whether one
	// lands mid-phase. Best-of-N on BOTH sides is the standard noisy-box
	// treatment and favors neither mode.
	const reps = 3
	for _, c := range []int{8, 64, 256} {
		var batched, perQuery sideStat
		before := scrapeFormer(regOn)
		for i := 0; i < reps; i++ {
			if s, _ := runLoad(on, queries, c, *total, *k); i == 0 || s.QPS > batched.QPS {
				batched = s
			}
			if s, _ := runLoad(off, queries, c, *total, *k); i == 0 || s.QPS > perQuery.QPS {
				perQuery = s
			}
		}
		delta := scrapeFormer(regOn)
		delta.riders -= before.riders
		delta.batches -= before.batches
		delta.batched -= before.batched
		delta.passthrough -= before.passthrough
		for k, v := range before.triggers {
			delta.triggers[k] -= v
		}
		log.Printf("c=%-3d  triggers %v", c, delta.triggers)

		rs := runStat{
			Concurrency: c,
			Queries:     *total,
			PerQuery:    perQuery,
			Batched:     batched,
			Speedup:     batched.QPS / perQuery.QPS,
		}
		if delta.batches > 0 {
			rs.MeanOccupancy = float64(delta.riders) / float64(delta.batches)
		}
		if n := delta.batched + delta.passthrough; n > 0 {
			rs.BatchedShare = float64(delta.batched) / float64(n)
		}
		rep.Runs = append(rep.Runs, rs)
		log.Printf("c=%-3d  per-query %8.0f qps (p50 %6.0fµs p99 %7.0fµs)   batched %8.0f qps (p50 %6.0fµs p99 %7.0fµs)  speedup %.2fx  occupancy %.1f  batched %.0f%%",
			c, perQuery.QPS, perQuery.P50, perQuery.P99, batched.QPS, batched.P50, batched.P99,
			rs.Speedup, rs.MeanOccupancy, 100*rs.BatchedShare)
		if batched.Errs+perQuery.Errs > 0 {
			log.Fatalf("benchbatchform: %d batched / %d per-query searches errored", batched.Errs, perQuery.Errs)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatalf("benchbatchform: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("benchbatchform: %v", err)
	}
	log.Printf("wrote %s", *out)
}
