// Command benchfilter measures the filtered-scan pushdown against the
// legacy per-row callback filter and regenerates BENCH_filter.json (the
// Sec. 4.1 companion artifact to BENCH_kernels.json).
//
// Two read paths are swept over selectivity:
//
//   - flat scan: index.ScanBlocked over n rows with the filter pushed as
//     a dense bitset (compiled per query, as the query layer does) versus
//     the same scan with a per-row callback — the pre-pushdown shape that
//     forced every row through a pairwise distance call;
//   - IVF search: a built IVF_FLAT index probed with SearchParams.Bits
//     versus SearchParams.Filter on identical queries.
//
// Each point records which mode the crossover chose (dense run-extraction
// at or above index.DenseSelectivity, sparse gather below it) and the
// speedup of the pushed path; the acceptance target is >= 2x at 50%
// selectivity on both paths.
//
// Usage:
//
//	benchfilter                       # defaults: n=100000 dim=128 k=10
//	benchfilter -quick -o /dev/null   # CI smoke sizing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"vectordb/internal/bitset"
	"vectordb/internal/index"
	_ "vectordb/internal/index/all"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

var sink []topk.Result

type point struct {
	Selectivity float64 `json:"selectivity"`
	Layout      string  `json:"layout"`
	Mode        string  `json:"mode"`
	CallbackNs  int64   `json:"callback_ns_per_op"`
	BitsetNs    int64   `json:"bitset_ns_per_op"`
	Speedup     float64 `json:"speedup"`
}

type report struct {
	Benchmark   string `json:"benchmark"`
	Environment struct {
		CPU        string `json:"cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
		Go         string `json:"go"`
		Workload   string `json:"workload"`
	} `json:"environment"`
	FlatScan      []point `json:"flat_scan"`
	IVFSearch     []point `json:"ivf_search"`
	TargetSpeedup float64 `json:"target_speedup_at_50pct"`
}

func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

func main() {
	n := flag.Int("n", 100000, "dataset rows")
	dim := flag.Int("dim", 128, "vector dimensionality")
	k := flag.Int("k", 10, "top-k")
	nlist := flag.Int("nlist", 64, "IVF coarse buckets")
	nprobe := flag.Int("nprobe", 32, "IVF buckets to probe (filtered searches probe deep to hold recall)")
	quick := flag.Bool("quick", false, "CI smoke sizing (small n, fewer points)")
	out := flag.String("o", "BENCH_filter.json", "output JSON path")
	flag.Parse()

	sels := []float64{0.01, 0.10, 0.50, 0.90}
	if *quick {
		*n, sels, *nlist, *nprobe = 20000, []float64{0.01, 0.50}, 32, 16
	}

	r := rand.New(rand.NewSource(4096))
	data := make([]float32, *n**dim)
	for i := range data {
		data[i] = float32(r.NormFloat64())
	}
	q := make([]float32, *dim)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	// Uniform attribute in [0, 10000): selectivity s keeps attr < s*10000.
	// Two layouts bracket real segments: "clustered" leaves the attribute
	// correlated with row order (time-ordered inserts, zone-friendly — the
	// bitset forms long runs), "shuffled" decorrelates it completely (every
	// block is a random mask — the adversarial case for run extraction).
	clustered := make([]int64, *n)
	for i := range clustered {
		clustered[i] = int64(i * 10000 / *n)
	}
	shuffled := make([]int64, *n)
	copy(shuffled, clustered)
	r.Shuffle(*n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	b, err := index.NewBuilder("IVF_FLAT", vec.L2, *dim,
		map[string]string{"nlist": fmt.Sprint(*nlist), "iter": "4"})
	if err != nil {
		log.Fatalf("benchfilter: %v", err)
	}
	ivf, err := b.Build(data, nil)
	if err != nil {
		log.Fatalf("benchfilter: %v", err)
	}

	var rep report
	rep.Benchmark = "BenchmarkFilteredScanPushdown"
	rep.Environment.CPU = cpuModel()
	rep.Environment.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Environment.Go = runtime.Version()
	rep.Environment.Workload = fmt.Sprintf(
		"n=%d dim=%d k=%d metric=L2; uniform attr in [0,10000); IVF_FLAT nlist=%d nprobe=%d; best of 3 runs per point",
		*n, *dim, *k, *nlist, *nprobe)
	rep.TargetSpeedup = 2.0

	// bench3 takes the best of three timing runs: the minimum is the
	// stablest estimate of intrinsic cost on a shared machine.
	bench3 := func(f func(*testing.B)) int64 {
		best := int64(0)
		for i := 0; i < 3; i++ {
			if ns := testing.Benchmark(f).NsPerOp(); i == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	// fill compiles attr < cut into bits the way query.CompileRange does:
	// word at a time from branchless comparison bits, so the compile cost
	// charged to the pushed path is the production one, not a strawman.
	fill := func(bits *bitset.Bitset, attrs []int64, cut int64) {
		const sign = uint64(1) << 63
		ucut := uint64(cut) ^ sign
		for w0 := 0; w0 < len(attrs); w0 += 64 {
			end := w0 + 64
			if end > len(attrs) {
				end = len(attrs)
			}
			var word uint64
			for j, a := range attrs[w0:end] {
				word |= b2u(uint64(a)^sign < ucut) << uint(j)
			}
			bits.SetWord(w0/64, word)
		}
	}

	for _, layout := range []struct {
		name  string
		attrs []int64
	}{{"clustered", clustered}, {"shuffled", shuffled}} {
		attrs := layout.attrs
		for _, sel := range sels {
			cut := int64(sel * 10000)
			keep := func(id int64) bool { return attrs[id] < cut }

			// Before: the per-row callback filter (pre-pushdown strategy B).
			cbNs := bench3(func(bm *testing.B) {
				for it := 0; it < bm.N; it++ {
					h := topk.GetHeap(*k)
					index.ScanBlocked(h, vec.L2, q, data, *dim, nil, index.Selection{Filter: keep})
					sink = h.Results()
					topk.PutHeap(h)
				}
			})
			// After: the pushed bitset, compiled per query — the fill is
			// part of the measured cost.
			bsNs := bench3(func(bm *testing.B) {
				for it := 0; it < bm.N; it++ {
					bits := bitset.Get(*n)
					fill(bits, attrs, cut)
					h := topk.GetHeap(*k)
					index.ScanBlocked(h, vec.L2, q, data, *dim, nil, index.Selection{Bits: bits})
					sink = h.Results()
					topk.PutHeap(h)
					bitset.Put(bits)
				}
			})
			rep.FlatScan = append(rep.FlatScan, point{
				Selectivity: sel,
				Layout:      layout.name,
				Mode:        index.FilterModeName(sel),
				CallbackNs:  cbNs,
				BitsetNs:    bsNs,
				Speedup:     round2(float64(cbNs) / float64(bsNs)),
			})

			cbIVFNs := bench3(func(bm *testing.B) {
				for it := 0; it < bm.N; it++ {
					sink = ivf.Search(q, index.SearchParams{K: *k, Nprobe: *nprobe, Filter: keep})
				}
			})
			bsIVFNs := bench3(func(bm *testing.B) {
				for it := 0; it < bm.N; it++ {
					bits := bitset.Get(*n)
					fill(bits, attrs, cut)
					sink = ivf.Search(q, index.SearchParams{K: *k, Nprobe: *nprobe, Bits: bits})
					bitset.Put(bits)
				}
			})
			rep.IVFSearch = append(rep.IVFSearch, point{
				Selectivity: sel,
				Layout:      layout.name,
				Mode:        index.FilterModeName(sel),
				CallbackNs:  cbIVFNs,
				BitsetNs:    bsIVFNs,
				Speedup:     round2(float64(cbIVFNs) / float64(bsIVFNs)),
			})

			fmt.Printf("%s sel=%.2f (%s): flat %d -> %d ns/op (%.2fx), ivf %d -> %d ns/op (%.2fx)\n",
				layout.name, sel, index.FilterModeName(sel),
				cbNs, bsNs, rep.FlatScan[len(rep.FlatScan)-1].Speedup,
				cbIVFNs, bsIVFNs, rep.IVFSearch[len(rep.IVFSearch)-1].Speedup)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("benchfilter: %v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		log.Fatalf("benchfilter: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("benchfilter: %v", err)
	}
	for _, p := range rep.FlatScan {
		if p.Selectivity == 0.50 && p.Speedup < rep.TargetSpeedup {
			fmt.Printf("WARNING: flat-scan speedup %.2fx at 50%% below %.1fx target\n",
				p.Speedup, rep.TargetSpeedup)
		}
	}
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }

// b2u compiles to a flagless SETcc — the branchless comparison bit of the
// word fill (same idiom as query.CompileRange).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
