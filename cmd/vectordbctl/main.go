// Command vectordbctl is a small CLI client for a vectordb server.
//
// Usage:
//
//	vectordbctl -server http://localhost:19530 <command> [args]
//
// Commands:
//
//	list                          list collections
//	create NAME DIM [METRIC]      create a single-vector collection
//	drop NAME                     drop a collection
//	stats NAME                    show collection statistics
//	insert NAME ID v1,v2,...      insert one entity
//	delete NAME ID [ID...]        tombstone entities
//	search NAME K v1,v2,...       top-K search with a literal vector
//	flush NAME                    flush pending writes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"vectordb/client"
)

func main() {
	server := flag.String("server", "http://localhost:19530", "server base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("vectordbctl: command required (list|create|drop|stats|search|flush)")
	}
	c := client.New(*server)
	if err := run(c, args); err != nil {
		log.Fatalf("vectordbctl: %v", err)
	}
}

func run(c *client.Client, args []string) error {
	switch args[0] {
	case "list":
		names, err := c.ListCollections()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	case "create":
		if len(args) < 3 {
			return fmt.Errorf("usage: create NAME DIM [METRIC]")
		}
		dim, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("bad dim: %w", err)
		}
		metric := "L2"
		if len(args) > 3 {
			metric = args[3]
		}
		return c.CreateCollection(args[1], []client.VectorField{{Name: "v", Dim: dim, Metric: metric}}, nil)
	case "drop":
		if len(args) < 2 {
			return fmt.Errorf("usage: drop NAME")
		}
		return c.DropCollection(args[1])
	case "stats":
		if len(args) < 2 {
			return fmt.Errorf("usage: stats NAME")
		}
		st, err := c.Stats(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("segments=%d total_rows=%d live_rows=%d tombstones=%d\n",
			st.Segments, st.TotalRows, st.LiveRows, st.Tombstones)
		return nil
	case "flush":
		if len(args) < 2 {
			return fmt.Errorf("usage: flush NAME")
		}
		return c.Flush(args[1])
	case "insert":
		if len(args) < 4 {
			return fmt.Errorf("usage: insert NAME ID v1,v2,...")
		}
		id, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad id: %w", err)
		}
		vec, err := parseVector(args[3])
		if err != nil {
			return err
		}
		return c.Insert(args[1], []client.Entity{{ID: id, Vectors: [][]float32{vec}}})
	case "delete":
		if len(args) < 3 {
			return fmt.Errorf("usage: delete NAME ID [ID...]")
		}
		ids := make([]int64, 0, len(args)-2)
		for _, a := range args[2:] {
			id, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				return fmt.Errorf("bad id %q: %w", a, err)
			}
			ids = append(ids, id)
		}
		return c.Delete(args[1], ids)
	case "search":
		if len(args) < 4 {
			return fmt.Errorf("usage: search NAME K v1,v2,...")
		}
		k, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("bad k: %w", err)
		}
		vec, err := parseVector(args[3])
		if err != nil {
			return err
		}
		res, err := c.Search(args[1], vec, k, nil)
		if err != nil {
			return err
		}
		for _, r := range res {
			fmt.Printf("%d\t%g\n", r.ID, r.Distance)
		}
		return nil
	default:
		fmt.Fprintln(os.Stderr, "unknown command:", args[0])
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func parseVector(s string) ([]float32, error) {
	parts := strings.Split(s, ",")
	vec := make([]float32, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 32)
		if err != nil {
			return nil, fmt.Errorf("bad vector component %q: %w", p, err)
		}
		vec[i] = float32(f)
	}
	return vec, nil
}
