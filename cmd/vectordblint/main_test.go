package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildDriver compiles the vectordblint binary once into the test's temp
// dir and returns its path.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vectordblint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building driver: %v\n%s", err, out)
	}
	return bin
}

// TestDriverEndToEnd runs the built binary against the golden module and
// checks the three exit statuses and the canonical output line format.
func TestDriverEndToEnd(t *testing.T) {
	bin := buildDriver(t)
	golden := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "lintest")

	// Findings: exit 1, file:line:col: [analyzer] message lines.
	out, err := exec.Command(bin, "-C", golden, "-q", "./internal/query/ctxbad").CombinedOutput()
	if code := exitCode(err); code != 1 {
		t.Fatalf("ctxbad run: exit %d (err %v), want 1\n%s", code, err, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 5 {
		t.Fatalf("ctxbad run printed %d lines, want 5:\n%s", len(lines), out)
	}
	for _, ln := range lines {
		if !strings.Contains(ln, "ctxbad.go:") || !strings.Contains(ln, ": [ctxflow] ") {
			t.Errorf("malformed finding line: %q", ln)
		}
	}

	// Clean: exit 0 (kernelbad has no atomicmix findings).
	out, err = exec.Command(bin, "-C", golden, "-run", "atomicmix", "./internal/index/kernelbad").CombinedOutput()
	if code := exitCode(err); code != 0 {
		t.Fatalf("clean run: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(string(out), "clean") {
		t.Errorf("clean run summary missing: %q", out)
	}

	// Driver error: exit 2 on an unknown analyzer.
	out, err = exec.Command(bin, "-run", "nosuch", "./...").CombinedOutput()
	if code := exitCode(err); code != 2 {
		t.Fatalf("unknown-analyzer run: exit %d, want 2\n%s", code, out)
	}
	if !strings.Contains(string(out), "unknown analyzers: nosuch") {
		t.Errorf("unknown-analyzer message missing: %q", out)
	}

	// -list prints the suite without loading anything, including the
	// interprocedural trio.
	out, err = exec.Command(bin, "-list").CombinedOutput()
	if code := exitCode(err); code != 0 {
		t.Fatalf("-list: exit %d, want 0\n%s", code, out)
	}
	for _, name := range []string{"poolfree", "blockpin", "ctxflow", "kerneldispatch", "lockdiscipline", "atomicmix", "metricreg", "clockinject", "lockorder", "lockdisciplinex", "goleak"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

// TestDriverInterprocedural runs the -run subset over the golden module
// for each new analyzer and checks exit codes: findings in the seeded
// fixtures, clean elsewhere.
func TestDriverInterprocedural(t *testing.T) {
	bin := buildDriver(t)
	golden := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "lintest")

	// The cross-package lock cycle is only detectable module-wide: loading
	// pkga alone leaves pkgb's bodies unsummarized, so the A.mu→B.Mu edge
	// (which runs through pkgb.Grab) is missing and the run is clean; the
	// ./... run below must report it.
	out, err := exec.Command(bin, "-C", golden, "-run", "lockorder", "./internal/locks/pkga").CombinedOutput()
	if code := exitCode(err); code != 0 {
		t.Fatalf("pkga-only lockorder: exit %d, want 0 (half a cycle is not a cycle)\n%s", code, out)
	}
	out, err = exec.Command(bin, "-C", golden, "-run", "lockorder", "./internal/goleakbad").CombinedOutput()
	if code := exitCode(err); code != 0 {
		t.Fatalf("lockorder on lock-free package: exit %d, want 0\n%s", code, out)
	}
	out, err = exec.Command(bin, "-C", golden, "-q", "-run", "lockorder,lockdisciplinex,goleak", "./...").CombinedOutput()
	if code := exitCode(err); code != 1 {
		t.Fatalf("interprocedural run: exit %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"[lockorder] potential deadlock: lock-order cycle", "[lockdisciplinex] ", "[goleak] goroutine leak"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("interprocedural run missing %q:\n%s", want, out)
		}
	}
}

// TestDriverJSONAndStats covers the -json and -stats flags end to end.
func TestDriverJSONAndStats(t *testing.T) {
	bin := buildDriver(t)
	golden := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "lintest")

	// -json with findings: exit 1, parseable document, counts agree.
	out, err := exec.Command(bin, "-C", golden, "-json", "-run", "goleak", "./internal/goleakbad").Output()
	if code := exitCode(err); code != 1 {
		t.Fatalf("-json findings run: exit %d, want 1\n%s", code, out)
	}
	var doc struct {
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
		Count int `json:"count"`
		Stats *struct {
			Packages int `json:"packages"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if doc.Count != len(doc.Findings) || doc.Count != 3 {
		t.Fatalf("-json count = %d, findings = %d, want 3 each\n%s", doc.Count, len(doc.Findings), out)
	}
	for _, f := range doc.Findings {
		if f.Analyzer != "goleak" || f.Line == 0 || !strings.Contains(f.Message, "goroutine leak") {
			t.Errorf("unexpected json finding: %+v", f)
		}
	}
	if doc.Stats != nil {
		t.Error("-json without -stats must omit the stats block")
	}

	// -json -stats on a clean package: exit 0, stats embedded.
	out, err = exec.Command(bin, "-C", golden, "-json", "-stats", "-run", "lockorder", "./internal/xblock").Output()
	if code := exitCode(err); code != 0 {
		t.Fatalf("-json -stats clean run: exit %d, want 0\n%s", code, out)
	}
	var doc2 struct {
		Count int `json:"count"`
		Stats *struct {
			Packages      int              `json:"packages"`
			AnalyzerNanos map[string]int64 `json:"analyzer_nanos"`
			CallGraph     map[string]int64 `json:"callgraph"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(out, &doc2); err != nil {
		t.Fatalf("-json -stats output does not parse: %v\n%s", err, out)
	}
	if doc2.Count != 0 || doc2.Stats == nil || doc2.Stats.Packages == 0 {
		t.Fatalf("-json -stats document malformed: %s", out)
	}
	if _, ok := doc2.Stats.AnalyzerNanos["lockorder"]; !ok {
		t.Errorf("stats missing lockorder timing: %s", out)
	}
	if doc2.Stats.CallGraph["callgraph_functions"] == 0 {
		t.Errorf("stats missing call-graph size: %s", out)
	}

	// Text -stats goes to stderr and keeps stdout parseable as findings.
	cmd := exec.Command(bin, "-C", golden, "-stats", "-run", "lockdisciplinex", "./internal/xblock")
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()
	if code := exitCode(err); code != 1 {
		t.Fatalf("text -stats run: exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "lockdisciplinex") || !strings.Contains(stderr.String(), "ms") {
		t.Errorf("text stats missing from stderr: %q", stderr.String())
	}
	if strings.Contains(stdout.String(), "ms\n") {
		t.Errorf("stats leaked onto stdout: %q", stdout.String())
	}
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}
