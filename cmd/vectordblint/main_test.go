package main

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildDriver compiles the vectordblint binary once into the test's temp
// dir and returns its path.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vectordblint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building driver: %v\n%s", err, out)
	}
	return bin
}

// TestDriverEndToEnd runs the built binary against the golden module and
// checks the three exit statuses and the canonical output line format.
func TestDriverEndToEnd(t *testing.T) {
	bin := buildDriver(t)
	golden := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "lintest")

	// Findings: exit 1, file:line:col: [analyzer] message lines.
	out, err := exec.Command(bin, "-C", golden, "-q", "./internal/query/ctxbad").CombinedOutput()
	if code := exitCode(err); code != 1 {
		t.Fatalf("ctxbad run: exit %d (err %v), want 1\n%s", code, err, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 5 {
		t.Fatalf("ctxbad run printed %d lines, want 5:\n%s", len(lines), out)
	}
	for _, ln := range lines {
		if !strings.Contains(ln, "ctxbad.go:") || !strings.Contains(ln, ": [ctxflow] ") {
			t.Errorf("malformed finding line: %q", ln)
		}
	}

	// Clean: exit 0 (kernelbad has no atomicmix findings).
	out, err = exec.Command(bin, "-C", golden, "-run", "atomicmix", "./internal/index/kernelbad").CombinedOutput()
	if code := exitCode(err); code != 0 {
		t.Fatalf("clean run: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(string(out), "clean") {
		t.Errorf("clean run summary missing: %q", out)
	}

	// Driver error: exit 2 on an unknown analyzer.
	out, err = exec.Command(bin, "-run", "nosuch", "./...").CombinedOutput()
	if code := exitCode(err); code != 2 {
		t.Fatalf("unknown-analyzer run: exit %d, want 2\n%s", code, out)
	}
	if !strings.Contains(string(out), "unknown analyzers: nosuch") {
		t.Errorf("unknown-analyzer message missing: %q", out)
	}

	// -list prints the suite without loading anything.
	out, err = exec.Command(bin, "-list").CombinedOutput()
	if code := exitCode(err); code != 0 {
		t.Fatalf("-list: exit %d, want 0\n%s", code, out)
	}
	for _, name := range []string{"poolfree", "blockpin", "ctxflow", "kerneldispatch", "lockdiscipline", "atomicmix", "metricreg"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}
