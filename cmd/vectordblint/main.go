// Command vectordblint runs vectordb's custom static-analysis suite
// (internal/lint) over the module: a stdlib-only analyzer driver that
// loads packages with `go list -json`, parses and type-checks them with
// go/parser and go/types, and reports violations of the codebase's
// concurrency, pooling and kernel-dispatch invariants as
//
//	file:line:col: [analyzer] message
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on driver
// errors. Intentional exceptions are waived in the source with
// `//lint:allow <analyzer> <reason>`.
//
// Usage:
//
//	vectordblint [-C dir] [-run list] [-q] [packages...]
//
// packages default to ./...; -run selects a comma-separated subset of
// analyzers; -list prints the suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vectordb/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir    = flag.String("C", ".", "directory to resolve package patterns in (the module root)")
		runSel = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list   = flag.Bool("list", false, "list analyzers and exit")
		quiet  = flag.Bool("q", false, "suppress the summary line, print findings only")
	)
	flag.Parse()

	var names []string
	if *runSel != "" {
		names = strings.Split(*runSel, ",")
	}
	analyzers, unknown := lint.Select(names)
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "vectordblint: unknown analyzers: %s\n", strings.Join(unknown, ", "))
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(*dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vectordblint: %v\n", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "vectordblint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "vectordblint: clean (%d analyzers)\n", len(analyzers))
	}
	return 0
}
