// Command vectordblint runs vectordb's custom static-analysis suite
// (internal/lint) over the module: a stdlib-only analyzer driver that
// loads packages with `go list -json`, parses and type-checks them with
// go/parser and go/types, and reports violations of the codebase's
// concurrency, pooling and kernel-dispatch invariants as
//
//	file:line:col: [analyzer] message
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on driver
// errors. Intentional exceptions are waived in the source with
// `//lint:allow <analyzer> <reason>`.
//
// Usage:
//
//	vectordblint [-C dir] [-run list] [-q] [-json] [-stats] [packages...]
//
// packages default to ./...; -run selects a comma-separated subset of
// analyzers; -list prints the suite; -json emits findings as one JSON
// document on stdout (for CI archiving); -stats prints per-analyzer wall
// time and call-graph size to stderr (or embeds them in the -json
// document when both are given).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vectordb/internal/lint"
)

func main() {
	os.Exit(run())
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonStats is the -json wire form of RunStats; nanoseconds are exact,
// millis are for humans reading the archive.
type jsonStats struct {
	Packages      int              `json:"packages"`
	Suppressed    int              `json:"suppressed"`
	AnalyzerNanos map[string]int64 `json:"analyzer_nanos"`
	CallGraph     map[string]int64 `json:"callgraph,omitempty"`
}

func run() int {
	var (
		dir      = flag.String("C", ".", "directory to resolve package patterns in (the module root)")
		runSel   = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list     = flag.Bool("list", false, "list analyzers and exit")
		quiet    = flag.Bool("q", false, "suppress the summary line, print findings only")
		jsonOut  = flag.Bool("json", false, "emit findings (and -stats when given) as JSON on stdout")
		statsOut = flag.Bool("stats", false, "report per-analyzer wall time and call-graph size")
	)
	flag.Parse()

	var names []string
	if *runSel != "" {
		names = strings.Split(*runSel, ",")
	}
	analyzers, unknown := lint.Select(names)
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "vectordblint: unknown analyzers: %s\n", strings.Join(unknown, ", "))
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, stats, err := lint.RunWithStats(*dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vectordblint: %v\n", err)
		return 2
	}
	cwd, _ := os.Getwd()
	relName := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}

	if *jsonOut {
		doc := struct {
			Findings []jsonFinding `json:"findings"`
			Count    int           `json:"count"`
			Stats    *jsonStats    `json:"stats,omitempty"`
		}{Findings: []jsonFinding{}, Count: len(findings)}
		for _, f := range findings {
			doc.Findings = append(doc.Findings, jsonFinding{
				File: relName(f.Pos.Filename), Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
		}
		if *statsOut {
			doc.Stats = &jsonStats{
				Packages:      stats.Packages,
				Suppressed:    stats.Suppressed,
				AnalyzerNanos: stats.AnalyzerNanos,
				CallGraph:     stats.Extra,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "vectordblint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", relName(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
		if *statsOut {
			printStats(stats)
		}
	}

	if len(findings) > 0 {
		if !*quiet && !*jsonOut {
			fmt.Fprintf(os.Stderr, "vectordblint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	if !*quiet && !*jsonOut {
		fmt.Fprintf(os.Stderr, "vectordblint: clean (%d analyzers)\n", len(analyzers))
	}
	return 0
}

// printStats renders the text -stats report on stderr, slowest first.
func printStats(stats *lint.RunStats) {
	fmt.Fprintf(os.Stderr, "vectordblint: %d package(s), %d suppressed finding(s)\n", stats.Packages, stats.Suppressed)
	names := make([]string, 0, len(stats.AnalyzerNanos))
	for n := range stats.AnalyzerNanos {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := stats.AnalyzerNanos[names[i]], stats.AnalyzerNanos[names[j]]
		if a != b {
			return a > b
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-16s %8.2fms\n", n, float64(stats.AnalyzerNanos[n])/1e6)
	}
	if len(stats.Extra) > 0 {
		keys := make([]string, 0, len(stats.Extra))
		for k := range stats.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(os.Stderr, "  %-24s %d\n", k, stats.Extra[k])
		}
	}
}
