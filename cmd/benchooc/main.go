// Command benchooc measures out-of-core search against cache pressure and
// regenerates BENCH_ooc.json (the Sec. 2.3 companion artifact for tiered
// sealed segments).
//
// One dataset is built per point with tiering armed: sealed segments live
// in mmap-backed extent files, IVF payloads are externalized, and every
// blocked scan runs through a capacity-bounded block cache sized to a
// fixed fraction of the dataset — 1x (everything fits) down to 1/10th.
// Queries probe random IVF buckets, so block reuse across queries tracks
// the cache share: the sweep documents the hit-rate decay and the latency
// cliff as the working set grows past the cache (the acceptance run is the
// >=4x-over-cache point).
//
// Every measured query is also checked: a self-query on a dataset row must
// return that row at distance ~0, so a silently-broken out-of-core read
// path fails the benchmark instead of producing fast garbage.
//
// Usage:
//
//	benchooc                       # defaults: n=120000 dim=64 ratios 1,2,4,10
//	benchooc -quick -o /dev/null   # CI smoke sizing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"vectordb/internal/blockcache"
	"vectordb/internal/core"
	_ "vectordb/internal/index/all"
	"vectordb/internal/objstore"
	"vectordb/internal/vec"
)

type point struct {
	Ratio       float64 `json:"dataset_over_cache"`
	DatasetMB   float64 `json:"dataset_mb"`
	CacheMB     float64 `json:"cache_mb"`
	HitRate     float64 `json:"hit_rate"`
	Evictions   int64   `json:"evictions"`
	TieredFiles int     `json:"tiered_files"`
	MeanUs      int64   `json:"mean_us"`
	P50Us       int64   `json:"p50_us"`
	P99Us       int64   `json:"p99_us"`
	QPS         float64 `json:"qps"`
}

type report struct {
	Benchmark   string `json:"benchmark"`
	Environment struct {
		CPU        string `json:"cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
		Go         string `json:"go"`
		Workload   string `json:"workload"`
	} `json:"environment"`
	Points []point `json:"points"`
}

func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

func main() {
	n := flag.Int("n", 120000, "dataset rows")
	dim := flag.Int("dim", 64, "vector dimensionality")
	k := flag.Int("k", 10, "top-k")
	nlist := flag.Int("nlist", 64, "IVF coarse buckets per segment")
	nprobe := flag.Int("nprobe", 8, "IVF buckets probed per query")
	flushRows := flag.Int("flush-rows", 16384, "rows per sealed segment")
	queries := flag.Int("queries", 200, "measured queries per point (plus 1/4 warmup)")
	quick := flag.Bool("quick", false, "CI smoke sizing (small n, fewer points)")
	out := flag.String("o", "BENCH_ooc.json", "output JSON path")
	flag.Parse()

	ratios := []float64{1, 2, 4, 10}
	if *quick {
		*n, *dim, *flushRows, *queries = 20000, 32, 4096, 40
		*nlist = 32
		ratios = []float64{1, 4}
	}

	// Deterministic dataset; queries are perturbed dataset rows so IVF
	// probes land in populated buckets, fixed across ratios for
	// comparability.
	r := rand.New(rand.NewSource(7))
	data := make([][]float32, *n)
	for i := range data {
		v := make([]float32, *dim)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	qset := make([][]float32, *queries+*queries/4)
	qrow := make([]int, len(qset))
	for i := range qset {
		row := r.Intn(*n)
		q := make([]float32, *dim)
		for j, x := range data[row] {
			q[j] = x + 0.01*float32(r.NormFloat64())
		}
		qset[i], qrow[i] = q, row
	}

	dsBytes := int64(*n) * int64(*dim) * 4

	var rep report
	rep.Benchmark = "BenchmarkOutOfCoreCachePressure"
	rep.Environment.CPU = cpuModel()
	rep.Environment.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Environment.Go = runtime.Version()
	rep.Environment.Workload = fmt.Sprintf(
		"n=%d dim=%d k=%d metric=L2; %d-row sealed segments, IVF_FLAT nlist=%d nprobe=%d externalized to extent files; sequential queries on perturbed dataset rows",
		*n, *dim, *k, *flushRows, *nlist, *nprobe)

	for _, ratio := range ratios {
		p, err := runPoint(data, qset, qrow, pointConfig{
			dim: *dim, k: *k, nlist: *nlist, nprobe: *nprobe,
			flushRows: *flushRows, warmup: *queries / 4,
			cacheBytes: int64(float64(dsBytes) / ratio),
		})
		if err != nil {
			log.Fatalf("benchooc: ratio %gx: %v", ratio, err)
		}
		p.Ratio = ratio
		p.DatasetMB = round2(float64(dsBytes) / (1 << 20))
		rep.Points = append(rep.Points, p)
		fmt.Printf("ratio %gx (cache %.1f MB over %.1f MB): hit rate %.3f, p50 %dus, p99 %dus, %.0f qps\n",
			ratio, p.CacheMB, p.DatasetMB, p.HitRate, p.P50Us, p.P99Us, p.QPS)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("benchooc: %v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		log.Fatalf("benchooc: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("benchooc: %v", err)
	}
}

type pointConfig struct {
	dim, k, nlist, nprobe int
	flushRows, warmup     int
	cacheBytes            int64
}

func runPoint(data [][]float32, qset [][]float32, qrow []int, pc pointConfig) (point, error) {
	dir, err := os.MkdirTemp("", "benchooc-")
	if err != nil {
		return point{}, err
	}
	defer os.RemoveAll(dir)

	cache := blockcache.New(pc.cacheBytes, 0)
	schema := core.Schema{VectorFields: []core.VectorField{{Name: "v", Dim: pc.dim, Metric: vec.L2}}}
	col, err := core.NewCollection("ooc", schema, objstore.NewMemory(), core.Config{
		FlushRows:     pc.flushRows,
		FlushInterval: -1,
		MergeFactor:   1 << 20, // fixed segment population: no merges mid-sweep
		IndexRows:     pc.flushRows,
		SyncIndex:     true,
		IndexType:     "IVF_FLAT",
		IndexParams:   map[string]string{"nlist": fmt.Sprint(pc.nlist), "iter": "4"},
		TierDir:       dir,
		TierCache:     cache,
	})
	if err != nil {
		return point{}, err
	}
	defer col.Close()

	batch := make([]core.Entity, 0, 1024)
	for i, v := range data {
		batch = append(batch, core.Entity{ID: int64(i + 1), Vectors: [][]float32{v}})
		if len(batch) == cap(batch) || i == len(data)-1 {
			if err := col.Insert(batch); err != nil {
				return point{}, err
			}
			batch = batch[:0]
		}
	}
	if err := col.Flush(); err != nil {
		return point{}, err
	}

	opts := core.SearchOptions{Field: "v", K: pc.k, Nprobe: pc.nprobe}
	run := func(i int) error {
		res, err := col.Search(qset[i], opts)
		if err != nil {
			return err
		}
		// Correctness tripwire: the perturbed source row must surface in
		// the top-k — an out-of-core read path returning wrong blocks
		// would be fast and silent without this.
		want := int64(qrow[i] + 1)
		for _, h := range res {
			if h.ID == want {
				return nil
			}
		}
		return fmt.Errorf("query %d: source row %d missing from top-%d", i, want, pc.k)
	}
	for i := 0; i < pc.warmup; i++ {
		if err := run(i); err != nil {
			return point{}, err
		}
	}

	base := cache.Stats()
	lat := make([]time.Duration, 0, len(qset)-pc.warmup)
	t0 := time.Now()
	for i := pc.warmup; i < len(qset); i++ {
		q0 := time.Now()
		if err := run(i); err != nil {
			return point{}, err
		}
		lat = append(lat, time.Since(q0))
	}
	wall := time.Since(t0)
	st := cache.Stats()
	ts := col.TierStats()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	pct := func(p float64) int64 {
		i := int(math.Ceil(p*float64(len(lat)))) - 1
		if i < 0 {
			i = 0
		}
		return lat[i].Microseconds()
	}
	acc := float64(st.Hits-base.Hits) + float64(st.Misses-base.Misses)
	hitRate := 0.0
	if acc > 0 {
		hitRate = float64(st.Hits-base.Hits) / acc
	}
	return point{
		CacheMB:     round2(float64(pc.cacheBytes) / (1 << 20)),
		HitRate:     round3(hitRate),
		Evictions:   st.Evictions - base.Evictions,
		TieredFiles: ts.Tiered,
		MeanUs:      (sum / time.Duration(len(lat))).Microseconds(),
		P50Us:       pct(0.50),
		P99Us:       pct(0.99),
		QPS:         round2(float64(len(lat)) / wall.Seconds()),
	}, nil
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }
