// Command benchkernels measures the blocked batch kernels against the
// pre-blocking scan loop and regenerates BENCH_kernels.json (the Fig. 8
// companion artifact: same shape as BENCH_exec.json).
//
// Two claims are measured:
//
//   - flat scan: a single-query exact scan (dim 128, n >= 100k, k 10)
//     through index.ScanBlocked — pooled heap, blocked bound kernel with
//     early abandonment — against the pre-PR loop of one indirect
//     DistFunc call plus one heap push per row;
//   - multi-query tiling: batch.CacheAware (query-tile kernels) against
//     batch.ThreadPerQuery (per-query blocked scans) on the same block,
//     isolating the gain of re-using a cached data block across queries.
//
// Usage:
//
//	benchkernels                      # defaults: n=100000 dim=128 k=10 nq=16
//	benchkernels -n 200000 -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"vectordb/internal/batch"
	"vectordb/internal/index"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

var sink []topk.Result

var sinkBatch [][]topk.Result

type section struct {
	Description         string `json:"description"`
	FlatScanNsPerOp     int64  `json:"flat_scan_ns_per_op"`
	MultiQueryNsPerOp   int64  `json:"multiquery_ns_per_op"`
	FlatScanBytesPerOp  int64  `json:"flat_scan_bytes_per_op"`
	FlatScanAllocsPerOp int64  `json:"flat_scan_allocs_per_op"`
}

type report struct {
	Benchmark   string `json:"benchmark"`
	Environment struct {
		CPU        string `json:"cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
		Go         string `json:"go"`
		Workload   string `json:"workload"`
	} `json:"environment"`
	Before  section `json:"before"`
	After   section `json:"after"`
	Speedup struct {
		FlatScan       float64 `json:"flat_scan"`
		MultiQueryTile float64 `json:"multiquery_tile"`
		TargetFlatScan float64 `json:"target_flat_scan"`
	} `json:"speedup"`
}

func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

func main() {
	n := flag.Int("n", 100000, "dataset rows")
	dim := flag.Int("dim", 128, "vector dimensionality")
	k := flag.Int("k", 10, "top-k")
	nq := flag.Int("nq", 16, "multi-query batch size")
	out := flag.String("o", "BENCH_kernels.json", "output JSON path")
	flag.Parse()

	r := rand.New(rand.NewSource(4096))
	data := make([]float32, *n**dim)
	for i := range data {
		data[i] = float32(r.NormFloat64())
	}
	queries := make([]float32, *nq**dim)
	for i := range queries {
		queries[i] = float32(r.NormFloat64())
	}
	q := queries[:*dim]
	ids := make([]int64, *n)
	for i := range ids {
		ids[i] = int64(i)
	}

	// Before: the scan loop every index ran before this PR — one indirect
	// DistFunc call and one heap push per row, fresh heap per query.
	dist := vec.L2.Dist()
	before := testing.Benchmark(func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			h := topk.New(*k)
			for row := 0; row < *n; row++ {
				h.Push(ids[row], dist(q, data[row**dim:(row+1)**dim]))
			}
			sink = h.Results()
		}
	})

	// After: the blocked path — pooled heap, 256-row blocks through the
	// early-abandon bound kernel, one dispatch per block.
	after := testing.Benchmark(func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			h := topk.GetHeap(*k)
			index.ScanBlocked(h, vec.L2, q, data, *dim, ids, index.Selection{})
			sink = h.Results()
			topk.PutHeap(h)
		}
	})

	req := &batch.Request{Queries: queries, Data: data, Dim: *dim, K: *k, Metric: vec.L2}
	tpq := testing.Benchmark(func(b *testing.B) {
		e := &batch.ThreadPerQuery{}
		for it := 0; it < b.N; it++ {
			sinkBatch = e.MultiQuery(req)
		}
	})
	ca := testing.Benchmark(func(b *testing.B) {
		e := &batch.CacheAware{}
		for it := 0; it < b.N; it++ {
			sinkBatch = e.MultiQuery(req)
		}
	})

	var rep report
	rep.Benchmark = "BenchmarkFlatScanKernels"
	rep.Environment.CPU = cpuModel()
	rep.Environment.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Environment.Go = runtime.Version()
	rep.Environment.Workload = fmt.Sprintf("flat scan n=%d dim=%d k=%d; multi-query nq=%d (same block)", *n, *dim, *k, *nq)
	rep.Before = section{
		Description:         "per-row indirect DistFunc + heap push (pre-blocking scan loop); multi-query = ThreadPerQuery (per-query blocked scans)",
		FlatScanNsPerOp:     before.NsPerOp(),
		MultiQueryNsPerOp:   tpq.NsPerOp(),
		FlatScanBytesPerOp:  before.AllocedBytesPerOp(),
		FlatScanAllocsPerOp: before.AllocsPerOp(),
	}
	rep.After = section{
		Description:         "index.ScanBlocked: pooled heap + 256-row blocks through the hooked batch kernel (AVX2/AVX-512 FMA asm where the host supports it, early-abandon blocked Go kernels elsewhere); multi-query = CacheAware (query tiles over cache-resident blocks)",
		FlatScanNsPerOp:     after.NsPerOp(),
		MultiQueryNsPerOp:   ca.NsPerOp(),
		FlatScanBytesPerOp:  after.AllocedBytesPerOp(),
		FlatScanAllocsPerOp: after.AllocsPerOp(),
	}
	rep.Speedup.FlatScan = round2(float64(before.NsPerOp()) / float64(after.NsPerOp()))
	rep.Speedup.MultiQueryTile = round2(float64(tpq.NsPerOp()) / float64(ca.NsPerOp()))
	rep.Speedup.TargetFlatScan = 1.5

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("benchkernels: %v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		log.Fatalf("benchkernels: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("benchkernels: %v", err)
	}
	fmt.Printf("flat scan: %d ns/op -> %d ns/op (%.2fx, target %.1fx)\n",
		before.NsPerOp(), after.NsPerOp(), rep.Speedup.FlatScan, rep.Speedup.TargetFlatScan)
	fmt.Printf("multi-query: ThreadPerQuery %d ns/op -> CacheAware %d ns/op (%.2fx)\n",
		tpq.NsPerOp(), ca.NsPerOp(), rep.Speedup.MultiQueryTile)
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
