// Command benchmark regenerates the paper's evaluation (Sec. 7): every
// table and figure has an experiment ID, and `-exp all` runs the full
// suite. Scales default to laptop size; raise -n/-nq to push toward the
// paper's configuration.
//
// Usage:
//
//	benchmark -exp fig8            # one experiment
//	benchmark -exp all             # the whole evaluation
//	benchmark -list                # available experiment IDs
//	benchmark -exp fig14 -n 100000 -nq 50 -k 50
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"vectordb/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment ID (or 'all')")
	list := flag.Bool("list", false, "list experiment IDs")
	n := flag.Int("n", 0, "dataset size (0 = default)")
	nq := flag.Int("nq", 0, "query count (0 = default)")
	k := flag.Int("k", 0, "top-k (0 = default)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	if *exp == "" {
		log.Fatal("benchmark: -exp required (use -list for IDs)")
	}
	sc := experiments.Scale{N: *n, NQ: *nq, K: *k}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Names()
	}
	for _, id := range ids {
		start := time.Now()
		t, err := experiments.Run(id, sc)
		if err != nil {
			log.Fatalf("benchmark: %s: %v", id, err)
		}
		t.Fprint(os.Stdout)
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
