// Command vectordbd runs a standalone vectordb server exposing the RESTful
// API of Sec. 2.1 on the given address.
//
// Usage:
//
//	vectordbd [-addr :19530] [-data DIR] [-query-timeout 0]
//	          [-batch-window 0] [-batch-size 0]
//	          [-tier-dir DIR] [-cache-mb 256] [-tier-mapped-mb 0]
//	          [-recalibrate]
//
// With -data, segments persist to the directory; otherwise storage is
// in-memory. -query-timeout bounds each search request (0 = unbounded).
// -batch-window bounds the server-side dynamic-batching window (0 = engine
// default, negative disables batching); -batch-size caps a formed batch.
// With -tier-dir, sealed segments live out of core: vector payloads move
// into mmap-backed extent files under the directory, cold extents spill to
// the object store, and scans run through a shared block cache capped at
// -cache-mb MiB. -tier-mapped-mb bounds the summed mmap'd bytes per
// collection (0 = unlimited; the LRU demotes extents past the budget).
//
// The query planner calibrates its cost model (kernel throughput per SIMD
// tier, bitset compile rates, PCIe transfer rates) on first use. With
// -tier-dir the measured profile persists to plan-calibration.json under
// the directory, keyed by CPU feature bits and GOMAXPROCS, so restarts on
// the same hardware skip the measurement pass; a stale or foreign profile
// is re-measured automatically. -recalibrate forces a fresh measurement
// pass even when a valid profile is on disk.
package main

import (
	"flag"
	"log"
	"net/http"
	"path/filepath"

	"vectordb/internal/core"
	"vectordb/internal/objstore"
	"vectordb/internal/plan"
	"vectordb/internal/rest"
)

func main() {
	addr := flag.String("addr", ":19530", "listen address")
	data := flag.String("data", "", "data directory (empty = in-memory)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-search deadline (0 = none)")
	batchWindow := flag.Duration("batch-window", 0, "dynamic-batching window ceiling (0 = engine default, <0 disables)")
	batchSize := flag.Int("batch-size", 0, "formed-batch size cap (0 = engine default)")
	tierDir := flag.String("tier-dir", "", "out-of-core extent directory (empty = segments stay in RAM)")
	cacheMB := flag.Int64("cache-mb", 256, "shared block-cache capacity in MiB (with -tier-dir)")
	mappedMB := flag.Int64("tier-mapped-mb", 0, "per-collection mmap budget in MiB (0 = unlimited, with -tier-dir)")
	recalibrate := flag.Bool("recalibrate", false, "force a fresh planner calibration pass, ignoring any persisted profile")
	flag.Parse()

	var store objstore.Store
	if *data != "" {
		fs, err := objstore.NewFS(*data)
		if err != nil {
			log.Fatalf("vectordbd: %v", err)
		}
		store = fs
	}
	db := core.NewDB(store)
	defer db.Close()
	if *tierDir != "" {
		db.EnableTiering(core.TierDefaults{
			Dir:         *tierDir,
			CacheBytes:  *cacheMB << 20,
			MappedBytes: *mappedMB << 20,
		})
		log.Printf("vectordbd tiering: extents under %s, cache %d MiB", *tierDir, *cacheMB)
	}

	// Planner calibration: persisted beside the tier dir when there is one
	// (restarts on the same hardware reuse the profile), in-process only
	// otherwise. -recalibrate forces a fresh measurement pass either way.
	if *tierDir != "" {
		path := filepath.Join(*tierDir, plan.CalibrationFile)
		prof, loaded, err := plan.LoadOrCalibrate(path, *recalibrate)
		if err != nil {
			log.Fatalf("vectordbd: planner calibration: %v", err)
		}
		db.Planner().UseProfile(prof)
		if loaded {
			log.Printf("vectordbd planner: loaded calibration %s (%s)", path, prof.Fingerprint)
		} else {
			log.Printf("vectordbd planner: calibrated and saved %s (%s)", path, prof.Fingerprint)
		}
	} else if *recalibrate {
		db.Planner().UseProfile(plan.Calibrate())
		log.Printf("vectordbd planner: calibrated in-memory (no -tier-dir to persist to)")
	}

	srv := rest.NewServerWithConfig(db, rest.ServerConfig{
		QueryTimeout: *queryTimeout,
		BatchWindow:  *batchWindow,
		BatchSize:    *batchSize,
	})
	log.Printf("vectordbd listening on %s (data: %s)", *addr, dataDesc(*data))
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatalf("vectordbd: %v", err)
	}
}

func dataDesc(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
