// Command vectordbd runs a standalone vectordb server exposing the RESTful
// API of Sec. 2.1 on the given address.
//
// Usage:
//
//	vectordbd [-addr :19530] [-data DIR] [-query-timeout 0]
//	          [-batch-window 0] [-batch-size 0]
//
// With -data, segments persist to the directory; otherwise storage is
// in-memory. -query-timeout bounds each search request (0 = unbounded).
// -batch-window bounds the server-side dynamic-batching window (0 = engine
// default, negative disables batching); -batch-size caps a formed batch.
package main

import (
	"flag"
	"log"
	"net/http"

	"vectordb/internal/core"
	"vectordb/internal/objstore"
	"vectordb/internal/rest"
)

func main() {
	addr := flag.String("addr", ":19530", "listen address")
	data := flag.String("data", "", "data directory (empty = in-memory)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-search deadline (0 = none)")
	batchWindow := flag.Duration("batch-window", 0, "dynamic-batching window ceiling (0 = engine default, <0 disables)")
	batchSize := flag.Int("batch-size", 0, "formed-batch size cap (0 = engine default)")
	flag.Parse()

	var store objstore.Store
	if *data != "" {
		fs, err := objstore.NewFS(*data)
		if err != nil {
			log.Fatalf("vectordbd: %v", err)
		}
		store = fs
	}
	db := core.NewDB(store)
	defer db.Close()

	srv := rest.NewServerWithConfig(db, rest.ServerConfig{
		QueryTimeout: *queryTimeout,
		BatchWindow:  *batchWindow,
		BatchSize:    *batchSize,
	})
	log.Printf("vectordbd listening on %s (data: %s)", *addr, dataDesc(*data))
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatalf("vectordbd: %v", err)
	}
}

func dataDesc(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
