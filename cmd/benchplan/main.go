// Command benchplan measures the cost-based query planner against every
// static policy it replaces and regenerates BENCH_plan.json (the planner's
// companion artifact; see DESIGN.md §13).
//
// Two grids:
//
//   - placement: the SQ8H index's three execution plans (pure-CPU,
//     pure-GPU, hybrid — Fig. 13 / Algorithm 1) priced on the device
//     model's virtual clocks, swept over batch size × device residency.
//     The planner places each cell via PlaceQuery with a profile derived
//     from the device model's advertised rates (exactly how the engine
//     seeds PCIe rates from gpu.Config), and its chosen plan's modeled
//     time is compared to the best and worst static;
//   - filter strategy: attribute-filtered search by wall clock — the
//     engine's own strategy A (attribute-first exact scan) vs its own
//     pushdown path (strategy B over a PushdownSource), swept over
//     selectivity × attribute layout. The planner picks per cell via
//     PickFilterStrategy with the machine's real calibrated profile.
//
// Each cell records the planner's regret (chosen/best) and its speedup
// over the worst static. Acceptance: regret <= 1.10 on every cell, and
// at least a quarter of the cells show >= 1.5x over the worst static —
// the payoff for replacing any single static policy.
//
// Usage:
//
//	benchplan                       # defaults: n=100000 dim=128 k=10
//	benchplan -quick -o /dev/null   # CI smoke sizing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"vectordb/internal/dataset"
	"vectordb/internal/gpu"
	"vectordb/internal/index"
	_ "vectordb/internal/index/all"
	"vectordb/internal/index/ivf"
	"vectordb/internal/index/sq8h"
	"vectordb/internal/plan"
	"vectordb/internal/query"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

var sink []topk.Result

type placementCell struct {
	NQ        int     `json:"nq"`
	Residency string  `json:"residency"`
	PureCPUNs int64   `json:"pure_cpu_ns"`
	PureGPUNs int64   `json:"pure_gpu_ns"`
	HybridNs  int64   `json:"hybrid_ns"`
	Planner   string  `json:"planner_choice"`
	PlannerNs int64   `json:"planner_ns"`
	Best      string  `json:"best_static"`
	Regret    float64 `json:"regret"`
	VsWorst   float64 `json:"speedup_vs_worst"`
}

type filterCell struct {
	Selectivity float64 `json:"selectivity"`
	Layout      string  `json:"layout"`
	StrategyANs int64   `json:"strategy_a_ns"`
	PushdownNs  int64   `json:"pushdown_ns"`
	Planner     string  `json:"planner_choice"`
	PlannerNs   int64   `json:"planner_ns"`
	Best        string  `json:"best_static"`
	Regret      float64 `json:"regret"`
	VsWorst     float64 `json:"speedup_vs_worst"`
}

type report struct {
	Benchmark   string `json:"benchmark"`
	Environment struct {
		CPU        string `json:"cpu"`
		GoMaxProcs int    `json:"gomaxprocs"`
		Go         string `json:"go"`
		Workload   string `json:"workload"`
	} `json:"environment"`
	Placement []placementCell `json:"placement"`
	Filter    []filterCell    `json:"filter"`
	Targets   struct {
		MaxRegret        float64 `json:"max_regret"`
		MinVsWorst       float64 `json:"min_speedup_vs_worst"`
		MinVsWorstCells  float64 `json:"min_speedup_cells_frac"`
		RegretViolations int     `json:"regret_violations"`
		VsWorstCellsFrac float64 `json:"speedup_cells_frac"`
	} `json:"targets"`
}

func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

func main() {
	n := flag.Int("n", 100000, "dataset rows")
	dim := flag.Int("dim", 128, "vector dimensionality")
	k := flag.Int("k", 10, "top-k")
	nlist := flag.Int("nlist", 512, "SQ8H coarse buckets (placement grid)")
	nprobe := flag.Int("nprobe", 32, "buckets probed per query")
	fNlist := flag.Int("filter-nlist", 64, "IVF buckets (filter grid)")
	fNprobe := flag.Int("filter-nprobe", 32, "buckets probed (filter grid)")
	quick := flag.Bool("quick", false, "CI smoke sizing (small n, fewer cells, single timing run)")
	out := flag.String("o", "BENCH_plan.json", "output JSON path")
	flag.Parse()

	batches := []int{1, 8, 64, 256}
	sels := []float64{0.001, 0.005, 0.1, 0.5, 0.9}
	reps := 3
	if *quick {
		*n, *nlist, *nprobe, *fNlist, *fNprobe = 20000, 128, 8, 32, 16
		batches, sels, reps = []int{1, 64}, []float64{0.001, 0.5}, 1
	}

	var rep report
	rep.Benchmark = "BenchmarkCostBasedPlanner"
	rep.Environment.CPU = cpuModel()
	rep.Environment.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Environment.Go = runtime.Version()
	rep.Environment.Workload = fmt.Sprintf(
		"n=%d dim=%d k=%d metric=L2; placement: SQ8H nlist=%d nprobe=%d on virtual device clocks; filter: IVF_FLAT nlist=%d nprobe=%d wall-clock, uniform attr in [0,10000)",
		*n, *dim, *k, *nlist, *nprobe, *fNlist, *fNprobe)
	rep.Targets.MaxRegret = 1.10
	rep.Targets.MinVsWorst = 1.5
	rep.Targets.MinVsWorstCells = 0.25

	placementGrid(&rep, *n, *dim, *k, *nlist, *nprobe, batches)
	filterGrid(&rep, *n, *dim, *k, *fNlist, *fNprobe, sels, reps)

	var regrets, fast, cells int
	check := func(regret, vsWorst float64) {
		cells++
		if regret > rep.Targets.MaxRegret {
			regrets++
		}
		if vsWorst >= rep.Targets.MinVsWorst {
			fast++
		}
	}
	for _, c := range rep.Placement {
		check(c.Regret, c.VsWorst)
	}
	for _, c := range rep.Filter {
		check(c.Regret, c.VsWorst)
	}
	rep.Targets.RegretViolations = regrets
	rep.Targets.VsWorstCellsFrac = round2(float64(fast) / float64(cells))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("benchplan: %v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		log.Fatalf("benchplan: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("benchplan: %v", err)
	}
	if regrets > 0 {
		fmt.Printf("WARNING: planner exceeded %.0f%% regret on %d of %d cells\n",
			(rep.Targets.MaxRegret-1)*100, regrets, cells)
	}
	if rep.Targets.VsWorstCellsFrac < rep.Targets.MinVsWorstCells {
		fmt.Printf("WARNING: planner >= %.1fx over the worst static on only %.0f%% of cells (target %.0f%%)\n",
			rep.Targets.MinVsWorst, rep.Targets.VsWorstCellsFrac*100, rep.Targets.MinVsWorstCells*100)
	}
}

// placementGrid sweeps the SQ8H plans over batch size × residency on the
// virtual clocks and records the planner's choice per cell.
func placementGrid(rep *report, n, dim, k, nlist, nprobe int, batches []int) {
	d := dataset.SIFTLike(n, 13)
	dev := gpu.NewDevice(0, gpu.Config{}) // defaults: everything fits on the device
	b, err := sq8h.NewBuilder(vec.L2, dim, ivf.Builder{Nlist: nlist, MaxIter: 6}, sq8h.Config{Device: dev})
	if err != nil {
		log.Fatalf("benchplan: %v", err)
	}
	built, err := b.Build(d.Data, nil)
	if err != nil {
		log.Fatalf("benchplan: %v", err)
	}
	hx := built.(*sq8h.SQ8H)
	iv := hx.IVF()
	sp := index.SearchParams{K: k, Nprobe: nprobe}

	// The planner is calibrated against the models pricing the statics:
	// CPU legs at the host cost model's rate, device legs at the device
	// config's advertised kernel and PCIe rates — the same seeding the
	// engine uses for real devices.
	cpu := gpu.DefaultCPUModel()
	cfg := dev.Config()
	kernel := map[string]float64{}
	for _, l := range vec.Levels() {
		kernel[l.String()] = cpu.DistThroughput
	}
	pl := plan.New(plan.Config{Profile: &plan.Profile{
		Fingerprint:      plan.Fingerprint(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		KernelDimsPerSec: kernel,
		SQ8DimsPerSec:    cpu.DistThroughput,
		RowOverheadNs:    30,
		RowNsPerDim:      0.5,
		LookupNs:         40,
		BitsetNsPerRow:   1.2,
		BitsetNsPerMatch: 20,
		PCIeBytesPerSec:  cfg.PCIeBandwidth,
		PCIeLatencyNs:    float64(cfg.PCIeLatency.Nanoseconds()),
		GPUDimsPerSec:    cfg.KernelThroughput,
	}})

	bucketKey := func(b int) string { return fmt.Sprintf("sq8h/bucket/%d", b) }
	evictAll := func() {
		dev.Evict("sq8h/centroids")
		for b := 0; b < iv.Nlist(); b++ {
			dev.Evict(bucketKey(b))
		}
	}
	warmAll := func() {
		keys := []string{"sq8h/centroids"}
		sizes := []int64{int64(iv.Nlist()) * int64(dim) * 4}
		per := int64(iv.CodeBytesPerVector())
		for b := 0; b < iv.Nlist(); b++ {
			keys = append(keys, bucketKey(b))
			sizes = append(sizes, int64(iv.BucketLen(b))*per)
		}
		if _, err := dev.EnsureResident(keys, sizes); err != nil {
			log.Fatalf("benchplan: warm device: %v", err)
		}
	}

	venuePlan := map[plan.Venue]string{
		plan.VenueIVFCPU: "pure-cpu",
		plan.VenueGPU:    "pure-gpu",
		plan.VenueSQ8H:   "hybrid",
	}
	for _, nq := range batches {
		queries := dataset.Queries(d, nq, int64(100+nq))
		for _, res := range []string{"cold", "warm"} {
			prep := evictAll
			frac := 0.0
			if res == "warm" {
				prep = warmAll
				frac = 1.0
			}
			run := func(f func([]float32, index.SearchParams) ([][]topk.Result, sq8h.Stats)) int64 {
				prep()
				_, st := f(queries, sp)
				return st.Total().Nanoseconds()
			}
			times := map[string]int64{
				"pure-cpu": run(hx.PlanPureCPU),
				"pure-gpu": run(hx.PlanPureGPU),
				"hybrid":   run(hx.PlanHybrid),
			}
			shape := plan.QueryShape{
				NQ: nq, K: k, Dim: dim, HotRows: n,
				Nlist: nlist, Nprobe: nprobe, SQ8: true,
				DeviceResidentFrac: frac,
			}
			dec := pl.PlaceQuery(fmt.Sprintf("bench/%d/%s", nq, res), shape,
				plan.VenueIVFCPU, plan.VenueGPU, plan.VenueSQ8H)
			choice := venuePlan[dec.Venue]
			best, worst := bestWorst(times)
			cell := placementCell{
				NQ: nq, Residency: res,
				PureCPUNs: times["pure-cpu"], PureGPUNs: times["pure-gpu"], HybridNs: times["hybrid"],
				Planner: choice, PlannerNs: times[choice], Best: best,
				Regret:  round2(float64(times[choice]) / float64(times[best])),
				VsWorst: round2(float64(times[worst]) / float64(times[choice])),
			}
			rep.Placement = append(rep.Placement, cell)
			fmt.Printf("placement nq=%-4d %-4s: cpu=%s gpu=%s hybrid=%s planner=%s (regret %.2f, %.2fx vs worst)\n",
				nq, res, time.Duration(cell.PureCPUNs), time.Duration(cell.PureGPUNs),
				time.Duration(cell.HybridNs), choice, cell.Regret, cell.VsWorst)
		}
	}
}

// filterGrid sweeps filtered search over selectivity × layout by wall
// clock, running the engine's own strategies as the statics: strategy A's
// attribute-first exact scan vs strategy B over the table's pushdown path
// (sorted-column compile to a pooled bitset, probed beneath the batch
// kernels). The planner picks per cell from the real calibrated profile,
// priced on the same FilterShape the engine's SourceView reports.
func filterGrid(rep *report, n, dim, k, nlist, nprobe int, sels []float64, reps int) {
	r := rand.New(rand.NewSource(4096))
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = float32(r.NormFloat64())
	}
	q := make([]float32, dim)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	clustered := make([]int64, n)
	for i := range clustered {
		clustered[i] = int64(i * 10000 / n)
	}
	shuffled := make([]int64, n)
	copy(shuffled, clustered)
	r.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	pl := plan.New(plan.Config{Profile: plan.SharedProfile()})

	bench := func(f func(*testing.B)) int64 {
		best := int64(0)
		for i := 0; i < reps; i++ {
			if ns := testing.Benchmark(f).NsPerOp(); i == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	for _, layout := range []struct {
		name  string
		attrs []int64
	}{{"clustered", clustered}, {"shuffled", shuffled}} {
		tab, err := query.NewTable(vec.L2, dim, data, nil, [][]int64{layout.attrs})
		if err != nil {
			log.Fatalf("benchplan: %v", err)
		}
		if err := tab.BuildIndex("IVF_FLAT",
			map[string]string{"nlist": fmt.Sprint(nlist), "iter": "4"}); err != nil {
			log.Fatalf("benchplan: %v", err)
		}
		for _, sel := range sels {
			rc := query.RangeCond{Attr: 0, Lo: 0, Hi: int64(sel*10000) - 1}
			vc := query.VecCond{Query: q, K: k, Nprobe: nprobe}
			matched := tab.CountRange(rc.Attr, rc.Lo, rc.Hi)

			aNs := bench(func(bm *testing.B) {
				for it := 0; it < bm.N; it++ {
					sink = query.StrategyA(tab, rc, vc)
				}
			})
			pushNs := bench(func(bm *testing.B) {
				for it := 0; it < bm.N; it++ {
					sink = query.StrategyB(tab, rc, vc)
				}
			})

			// The shape SourceView reports for an IVF-indexed collection,
			// with the zone-map match count PickStrategy would fill in.
			dec := pl.PickFilterStrategy(plan.FilterShape{
				Rows: n, Matched: matched, Dim: dim, K: k,
				Indexed: true, Nlist: nlist, Nprobe: nprobe,
			})
			times := map[string]int64{"strategy-a": aNs, "pushdown": pushNs}
			choice := "pushdown"
			if dec.Strategy == plan.StrategyPrefilter {
				choice = "strategy-a"
			}
			best, worst := bestWorst(times)
			cell := filterCell{
				Selectivity: sel, Layout: layout.name,
				StrategyANs: aNs, PushdownNs: pushNs,
				Planner: choice, PlannerNs: times[choice], Best: best,
				Regret:  round2(float64(times[choice]) / float64(times[best])),
				VsWorst: round2(float64(times[worst]) / float64(times[choice])),
			}
			rep.Filter = append(rep.Filter, cell)
			fmt.Printf("filter sel=%.3f %-9s: A=%s push=%s planner=%s (regret %.2f, %.2fx vs worst)\n",
				sel, layout.name, time.Duration(aNs), time.Duration(pushNs),
				choice, cell.Regret, cell.VsWorst)
		}
	}
}

// bestWorst returns the keys of the cheapest and most expensive entries.
func bestWorst(times map[string]int64) (best, worst string) {
	for name, ns := range times {
		if best == "" || ns < times[best] {
			best = name
		}
		if worst == "" || ns > times[worst] {
			worst = name
		}
	}
	return best, worst
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
