// Package vectordb is a purpose-built vector data management system — a
// from-scratch Go reproduction of Milvus (SIGMOD 2021). It stores entities
// described by one or more high-dimensional vectors plus optional numerical
// attributes, and answers vector similarity queries, attribute-filtered
// queries, and multi-vector queries over dynamically changing data.
//
// Architecture (paper Sec. 2): a query engine with cache-aware and
// SIMD-dispatch batch processing, quantization/graph/tree indexes behind an
// extensible registry, a simulated GPU engine with the SQ8H hybrid index, an
// LSM storage engine with snapshot isolation and tiered merging, columnar
// attribute storage with skip pointers, and a shared-storage distributed
// layer. This package is the embedded public API; see client and
// cmd/vectordbd for the RESTful deployment.
//
// Basic usage:
//
//	db := vectordb.Open(nil)
//	col, _ := db.CreateCollection("items", vectordb.Schema{
//		VectorFields: []vectordb.VectorField{{Name: "embedding", Dim: 128, Metric: vectordb.L2}},
//		AttrFields:   []string{"price"},
//	})
//	col.Insert([]vectordb.Entity{{ID: 1, Vectors: [][]float32{v}, Attrs: []int64{42}}})
//	col.Flush()
//	hits, _ := col.Search(q, vectordb.SearchRequest{K: 10})
package vectordb

import (
	"time"

	"vectordb/internal/core"
	"vectordb/internal/objstore"
	"vectordb/internal/obs"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// Metric names a similarity function (Sec. 2.1).
type Metric string

// Supported similarity metrics. The binary metrics (Hamming, Jaccard,
// Tanimoto) operate on fingerprints bit-packed into float32 words — see
// PackBits/UnpackBits.
const (
	L2       Metric = "L2"       // squared Euclidean distance
	IP       Metric = "IP"       // inner product (higher is more similar)
	Cosine   Metric = "COSINE"   // 1 - cosine similarity
	Hamming  Metric = "HAMMING"  // differing bits of binary fingerprints
	Jaccard  Metric = "JACCARD"  // 1 - |a∧b|/|a∨b| over binary fingerprints
	Tanimoto Metric = "TANIMOTO" // cheminformatics fingerprint distance
)

// PackBits packs a bitset (bit i set ⇔ bits[i] true) into the float32-word
// vector a binary-metric field stores. All entities of a binary field must
// use the same nbits.
func PackBits(bits []bool) []float32 {
	bv := vec.NewBinaryVector(len(bits))
	for i, b := range bits {
		if b {
			bv.SetBit(i)
		}
	}
	return vec.FloatsFromBinary(bv, vec.WordsForBits(len(bits)))
}

// UnpackBits reverses PackBits (to the packed word boundary).
func UnpackBits(words []float32) []bool {
	bv := vec.BinaryFromFloats(words)
	out := make([]bool, len(words)*32)
	for i := range out {
		out[i] = bv.Bit(i)
	}
	return out
}

// BinaryDim returns the Dim to declare for a binary field of nbits bits.
func BinaryDim(nbits int) int { return vec.WordsForBits(nbits) }

func (m Metric) internal() (vec.Metric, error) {
	if m == "" {
		return vec.L2, nil
	}
	return vec.ParseMetric(string(m))
}

// VectorField declares one vector field of an entity.
type VectorField struct {
	Name   string
	Dim    int
	Metric Metric
}

// Schema declares a collection's entity layout.
type Schema struct {
	VectorFields []VectorField
	AttrFields   []string
	// CatFields are categorical (string) attributes, filtered via
	// inverted-list indexes.
	CatFields []string
}

func (s Schema) internal() (core.Schema, error) {
	var out core.Schema
	for _, f := range s.VectorFields {
		m, err := f.Metric.internal()
		if err != nil {
			return out, err
		}
		out.VectorFields = append(out.VectorFields, core.VectorField{Name: f.Name, Dim: f.Dim, Metric: m})
	}
	out.AttrFields = append([]string(nil), s.AttrFields...)
	out.CatFields = append([]string(nil), s.CatFields...)
	return out, out.Validate()
}

// Entity is one row: an ID (unique, client-assigned), one vector per schema
// vector field, and one value per attribute field.
type Entity struct {
	ID      int64
	Vectors [][]float32
	Attrs   []int64
	Cats    []string
}

// Result is one search hit; Distance follows smaller-is-better (inner
// product is negated).
type Result struct {
	ID       int64
	Distance float32
}

func fromTopk(rs []topk.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Distance: r.Distance}
	}
	return out
}

// AttrRange is an attribute-filtering condition Cα: Lo ≤ attr ≤ Hi.
type AttrRange struct {
	Attr   string
	Lo, Hi int64
}

// CatFilter restricts results to entities whose categorical field matches
// ANY of Values (an IN predicate over inverted lists).
type CatFilter struct {
	Attr   string
	Values []string
}

// SearchRequest carries query-time knobs.
type SearchRequest struct {
	Field   string     // vector field; default: first declared field
	K       int        // results to return; required
	Nprobe  int        // IVF buckets probed (accuracy/perf trade-off)
	Ef      int        // HNSW candidate list size
	SearchL int        // RNSG search pool size
	Filter  *AttrRange // optional numerical attribute constraint (Sec. 4.1)
	Cat     *CatFilter // optional categorical constraint (inverted lists)
}

// Options tunes a collection's storage engine; the zero value uses the
// paper's defaults (4096-row memtable flushes plus a 1 s timer, tiered
// merging, async IVF_FLAT index builds on large segments).
type Options struct {
	FlushRows      int
	FlushInterval  time.Duration
	MergeFactor    int
	MaxSegmentRows int
	IndexRows      int
	IndexType      string
	IndexParams    map[string]string
	SyncIndexBuild bool
}

func (o Options) internal() core.Config {
	return core.Config{
		FlushRows:      o.FlushRows,
		FlushInterval:  o.FlushInterval,
		MergeFactor:    o.MergeFactor,
		MaxSegmentRows: o.MaxSegmentRows,
		IndexRows:      o.IndexRows,
		IndexType:      o.IndexType,
		IndexParams:    o.IndexParams,
		SyncIndex:      o.SyncIndexBuild,
	}
}

// DB is an embedded vectordb instance.
type DB struct {
	inner *core.DB
}

// Open creates an in-memory database. Pass Storage options via OpenPath for
// durable local storage.
func Open(_ *Options) *DB { return &DB{inner: core.NewDB(nil)} }

// OpenPath creates a database whose segments persist under dir.
func OpenPath(dir string) (*DB, error) {
	fs, err := objstore.NewFS(dir)
	if err != nil {
		return nil, err
	}
	return &DB{inner: core.NewDB(fs)}, nil
}

// Close flushes and closes every collection.
func (db *DB) Close() error { return db.inner.Close() }

// Obs returns the database's metric registry: every collection records
// counters, gauges and latency histograms into it, and WritePrometheus
// renders it in Prometheus text exposition format.
func (db *DB) Obs() *obs.Registry { return db.inner.Obs() }

// QueryLog returns the database's query-trace log: recent and slow queries
// with per-stage span breakdowns (the data behind /debug/queries).
func (db *DB) QueryLog() *obs.QueryLog { return db.inner.QueryLog() }

// CreateCollection creates a collection with default options.
func (db *DB) CreateCollection(name string, schema Schema) (*Collection, error) {
	return db.CreateCollectionWithOptions(name, schema, Options{})
}

// CreateCollectionWithOptions creates a collection with explicit storage
// options.
func (db *DB) CreateCollectionWithOptions(name string, schema Schema, opts Options) (*Collection, error) {
	s, err := schema.internal()
	if err != nil {
		return nil, err
	}
	c, err := db.inner.CreateCollection(name, s, opts.internal())
	if err != nil {
		return nil, err
	}
	return &Collection{inner: c}, nil
}

// Collection returns an existing collection.
func (db *DB) Collection(name string) (*Collection, error) {
	c, err := db.inner.Collection(name)
	if err != nil {
		return nil, err
	}
	return &Collection{inner: c}, nil
}

// DropCollection removes a collection and its stored segments.
func (db *DB) DropCollection(name string) error { return db.inner.DropCollection(name) }

// ListCollections returns collection names, sorted.
func (db *DB) ListCollections() []string { return db.inner.ListCollections() }

// Collection is a named set of entities under one schema.
type Collection struct {
	inner *core.Collection
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.inner.Name }

// Insert appends entities asynchronously (Sec. 5.1); call Flush to make
// them queryable.
func (c *Collection) Insert(entities []Entity) error {
	rows := make([]core.Entity, len(entities))
	for i, e := range entities {
		rows[i] = core.Entity{ID: e.ID, Vectors: e.Vectors, Attrs: e.Attrs, Cats: e.Cats}
	}
	return c.inner.Insert(rows)
}

// Delete tombstones entities by ID; vectors are physically removed at the
// next segment merge (Sec. 2.3).
func (c *Collection) Delete(ids []int64) error { return c.inner.Delete(ids) }

// Flush blocks until all pending writes are applied and visible.
func (c *Collection) Flush() error { return c.inner.Flush() }

// Search answers a top-k vector query; with req.Filter set it runs the
// cost-based attribute-filtering pipeline (Sec. 4.1).
func (c *Collection) Search(query []float32, req SearchRequest) ([]Result, error) {
	opts := core.SearchOptions{Field: req.Field, K: req.K, Nprobe: req.Nprobe, Ef: req.Ef, SearchL: req.SearchL}
	if req.Cat != nil {
		rs, err := c.inner.SearchCategorical(query, req.Cat.Attr, req.Cat.Values, opts)
		if err != nil {
			return nil, err
		}
		return fromTopk(rs), nil
	}
	if req.Filter != nil {
		rs, err := c.inner.SearchFiltered(query, req.Filter.Attr, req.Filter.Lo, req.Filter.Hi, opts)
		if err != nil {
			return nil, err
		}
		return fromTopk(rs), nil
	}
	rs, err := c.inner.Search(query, opts)
	if err != nil {
		return nil, err
	}
	return fromTopk(rs), nil
}

// SearchMulti answers a multi-vector query: top-k entities by the weighted
// sum aggregation over per-field similarities (Sec. 4.2). It uses vector
// fusion when the metric is decomposable and iterative merging otherwise.
func (c *Collection) SearchMulti(queries [][]float32, weights []float32, k int) ([]Result, error) {
	rs, err := c.inner.SearchMultiVector(queries, weights, k)
	if err != nil {
		return nil, err
	}
	return fromTopk(rs), nil
}

// BuildIndex builds an index of the named type ("FLAT", "IVF_FLAT",
// "IVF_SQ8", "IVF_PQ", "HNSW", "RNSG", "ANNOY") on a vector field across
// all current segments.
func (c *Collection) BuildIndex(field, indexType string, params map[string]string) error {
	return c.inner.BuildIndex(field, indexType, params)
}

// Get fetches a visible entity by ID.
func (c *Collection) Get(id int64) (Entity, bool) {
	e, ok := c.inner.Get(id)
	if !ok {
		return Entity{}, false
	}
	return Entity{ID: e.ID, Vectors: e.Vectors, Attrs: e.Attrs, Cats: e.Cats}, true
}

// Count returns the number of visible entities.
func (c *Collection) Count() int { return c.inner.Count() }

// Stats summarizes the collection's physical state.
type Stats struct {
	Segments    int
	TotalRows   int
	LiveRows    int
	Tombstones  int
	SegmentRows []int
}

// Stats returns current physical statistics.
func (c *Collection) Stats() Stats {
	st := c.inner.Stats()
	return Stats{
		Segments:    st.Segments,
		TotalRows:   st.TotalRows,
		LiveRows:    st.LiveRows,
		Tombstones:  st.Tombstones,
		SegmentRows: st.SegmentRows,
	}
}

// WaitIndexed blocks until background index builds drain.
func (c *Collection) WaitIndexed() { c.inner.WaitIndexed() }

// Close flushes and stops the collection's background workers.
func (c *Collection) Close() error { return c.inner.Close() }

// Version is the library version.
const Version = "1.0.0"

// IndexTypes lists the built-in index types.
func IndexTypes() []string {
	return []string{"ANNOY", "FLAT", "HNSW", "IVF_FLAT", "IVF_PQ", "IVF_SQ8", "RNSG"}
}
