package vectordb_test

// One benchmark per table/figure of the paper's evaluation (Sec. 7). Each
// bench regenerates its experiment at a small scale through the shared
// harness (internal/experiments); `go run ./cmd/benchmark -exp <id>` runs
// the same experiments at full (laptop) scale and prints the series.
// Custom metrics attach headline numbers to the benchmark output so
// `go test -bench` logs double as a compact reproduction record.

import (
	"strconv"
	"testing"

	"vectordb/internal/experiments"
)

// benchScale keeps every experiment's in-bench runtime modest.
var benchScale = experiments.Scale{N: 4000, NQ: 32, K: 20}

func runExperiment(b *testing.B, id string, sc experiments.Scale) *experiments.Table {
	b.Helper()
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Run(id, sc)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return t
}

// cell parses a numeric table cell (strips unit suffixes).
func cell(t *experiments.Table, row, col int) float64 {
	s := t.Rows[row][col]
	for len(s) > 0 {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
		s = s[:len(s)-1]
	}
	return 0
}

func BenchmarkTable1Capabilities(b *testing.B) {
	t := runExperiment(b, "table1", benchScale)
	if len(t.Rows) != 7 {
		b.Fatalf("capability matrix has %d rows", len(t.Rows))
	}
}

func BenchmarkFig8IVF(b *testing.B) {
	t := runExperiment(b, "fig8", benchScale)
	// headline: Milvus IVF_FLAT recall/qps at the largest nprobe
	for i := range t.Rows {
		if t.Rows[i][0] == "Milvus_IVF_FLAT" {
			b.ReportMetric(cell(t, i, 2), "recall")
			b.ReportMetric(cell(t, i, 3), "qps")
		}
	}
}

func BenchmarkFig9HNSW(b *testing.B) {
	t := runExperiment(b, "fig9", benchScale)
	for i := range t.Rows {
		if t.Rows[i][0] == "Milvus_HNSW" {
			b.ReportMetric(cell(t, i, 2), "recall")
			b.ReportMetric(cell(t, i, 3), "qps")
		}
	}
}

func BenchmarkFig10aDataSize(b *testing.B) {
	t := runExperiment(b, "fig10a", benchScale)
	b.ReportMetric(cell(t, 0, 2), "qps@1k")
	b.ReportMetric(cell(t, len(t.Rows)-1, 2), "qps@80k")
}

func BenchmarkFig10bScaleOut(b *testing.B) {
	sc := benchScale
	sc.N = 8000
	t := runExperiment(b, "fig10b", sc)
	b.ReportMetric(cell(t, 0, 2), "qps@1node")
	b.ReportMetric(cell(t, len(t.Rows)-1, 2), "qps@12nodes")
}

func BenchmarkFig11CacheAware(b *testing.B) {
	t := runExperiment(b, "fig11", benchScale)
	// headline: cache-aware speedup at the largest data size
	b.ReportMetric(cell(t, len(t.Rows)-1, 3), "speedup")
}

func BenchmarkFig12SIMD(b *testing.B) {
	t := runExperiment(b, "fig12", benchScale)
	b.ReportMetric(cell(t, len(t.Rows)-1, 5), "avx512/avx2")
	b.ReportMetric(cell(t, len(t.Rows)-1, 6), "avx512/sse")
}

func BenchmarkFig13SQ8H(b *testing.B) {
	t := runExperiment(b, "fig13", benchScale)
	last := len(t.Rows) - 1
	b.ReportMetric(cell(t, last, 1)/cell(t, last, 3), "cpu/sq8h@500")
	b.ReportMetric(cell(t, last, 2)/cell(t, last, 1), "gpu/cpu@500")
}

func BenchmarkFig14Filtering(b *testing.B) {
	t := runExperiment(b, "fig14", benchScale)
	// headline: strategy E vs D at the highest selectivity
	last := len(t.Rows) - 1
	d := cell(t, last, 4)
	e := cell(t, last, 5)
	if e > 0 {
		b.ReportMetric(d/e, "D/E@s0.99")
	}
}

func BenchmarkFig15FilteringSystems(b *testing.B) {
	t := runExperiment(b, "fig15", benchScale)
	last := len(t.Rows) - 1
	sysB := cell(t, last, 2)
	milvus := cell(t, last, 5)
	if milvus > 0 {
		b.ReportMetric(sysB/milvus, "SystemB/Milvus@s0.99")
	}
}

func BenchmarkFig16MultiVector(b *testing.B) {
	sc := benchScale
	sc.NQ = 16
	t := runExperiment(b, "fig16-ip", sc)
	var nra2048, img, fusion float64
	for i := range t.Rows {
		switch t.Rows[i][0] {
		case "NRA-2048":
			nra2048 = cell(t, i, 2)
		case "IMG-4096":
			img = cell(t, i, 2)
		case "vector fusion":
			fusion = cell(t, i, 2)
		}
	}
	if nra2048 > 0 {
		b.ReportMetric(img/nra2048, "IMG/NRA2048")
	}
	if img > 0 {
		b.ReportMetric(fusion/img, "fusion/IMG")
	}
}

func BenchmarkAblationHeaps(b *testing.B) {
	t := runExperiment(b, "ablation-heaps", benchScale)
	b.ReportMetric(cell(t, 1, 2), "matrix/shared")
}

func BenchmarkAblationPCIe(b *testing.B) {
	t := runExperiment(b, "ablation-pcie", benchScale)
	if len(t.Rows) != 2 {
		b.Fatal("unexpected rows")
	}
}

func BenchmarkAblationRho(b *testing.B) {
	sc := benchScale
	sc.N = 3000
	runExperiment(b, "ablation-rho", sc)
}

func BenchmarkAblationMerge(b *testing.B) {
	runExperiment(b, "ablation-merge", benchScale)
}

func BenchmarkAblationLargeK(b *testing.B) {
	sc := benchScale
	sc.N = 40000
	runExperiment(b, "ablation-largek", sc)
}

func BenchmarkAblationMultiGPU(b *testing.B) {
	t := runExperiment(b, "ablation-multigpu", benchScale)
	b.ReportMetric(cell(t, len(t.Rows)-1, 2), "speedup@4dev")
}
