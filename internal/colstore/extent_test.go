package colstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// testExtents builds a representative extent set: IDs, a vector column,
// SQ8 codes + params and an opaque attr blob.
func testExtents(rows, dim int) []Extent {
	ids := make([]int64, rows)
	vecs := make([]float32, rows*dim)
	codes := make([]byte, rows*dim)
	params := make([]float32, 2*dim)
	for i := range ids {
		ids[i] = int64(1000 + i)
	}
	for i := range vecs {
		vecs[i] = float32(i)*0.25 - 3
	}
	for i := range codes {
		codes[i] = byte(i * 7)
	}
	for i := range params {
		params[i] = float32(i) * 0.5
	}
	return []Extent{
		{Kind: ExtentIDs, Rows: uint64(rows), Payload: Int64sToBytes(ids)},
		{Kind: ExtentVectors, Field: 0, Rows: uint64(rows), Dim: uint32(dim), Payload: FloatsToBytes(vecs)},
		{Kind: ExtentSQ8Codes, Field: 0, Rows: uint64(rows), Dim: uint32(dim), Payload: codes},
		{Kind: ExtentSQ8Params, Field: 0, Rows: 2, Dim: uint32(dim), Payload: FloatsToBytes(params)},
		{Kind: ExtentAttr, Field: 1, Rows: uint64(rows), Payload: []byte("opaque-attr-blob")},
	}
}

func TestExtentRoundTrip(t *testing.T) {
	rows, dim := 37, 8
	exts := testExtents(rows, dim)
	buf, err := EncodeSegmentFile(42, exts)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	sf, err := DecodeSegmentFile(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sf.SegID != 42 || len(sf.Extents) != len(exts) {
		t.Fatalf("header mismatch: segID=%d count=%d", sf.SegID, len(sf.Extents))
	}
	if err := sf.VerifyChecksums(); err != nil {
		t.Fatalf("checksums: %v", err)
	}
	ve := sf.Find(ExtentVectors, 0)
	if ve == nil {
		t.Fatal("vector extent missing")
	}
	got := ve.Floats()
	if len(got) != rows*dim {
		t.Fatalf("vector view length %d, want %d", len(got), rows*dim)
	}
	for i, x := range got {
		if want := float32(i)*0.25 - 3; x != want {
			t.Fatalf("vector[%d] = %g, want %g", i, x, want)
		}
	}
	ie := sf.Find(ExtentIDs, 0)
	if ie == nil {
		t.Fatal("id extent missing")
	}
	ids := ie.Int64s()
	if len(ids) != rows || ids[0] != 1000 || ids[rows-1] != int64(999+rows) {
		t.Fatalf("id view wrong: len=%d first=%d last=%d", len(ids), ids[0], ids[len(ids)-1])
	}
	ae := sf.Find(ExtentAttr, 1)
	if ae == nil || string(ae.Payload) != "opaque-attr-blob" {
		t.Fatalf("attr extent wrong: %v", ae)
	}
}

func TestExtentMappedOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-7.segx")
	rows, dim := 300, 16 // crosses a 256-row block boundary
	exts := testExtents(rows, dim)
	if err := WriteSegmentFile(path, 7, exts); err != nil {
		t.Fatalf("write: %v", err)
	}
	mf, err := OpenSegmentFile(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer mf.Close()
	if mf.SegID != 7 {
		t.Fatalf("segID %d", mf.SegID)
	}
	if err := mf.VerifyChecksums(); err != nil {
		t.Fatalf("checksums: %v", err)
	}
	ve := mf.Find(ExtentVectors, 0)
	vv := ve.Floats()
	for i := 0; i < rows*dim; i += 997 {
		if want := float32(i)*0.25 - 3; vv[i] != want {
			t.Fatalf("mapped vector[%d] = %g, want %g", i, vv[i], want)
		}
	}
	mf.AdviseWillNeed(0, mf.Size()) // exercise the prefetch hint path
	if err := mf.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := mf.Close(); err != nil { // double close is a no-op
		t.Fatalf("second close: %v", err)
	}
}

func TestExtentBadMagic(t *testing.T) {
	buf, _ := EncodeSegmentFile(1, testExtents(4, 4))
	buf[0] ^= 0xff
	if _, err := DecodeSegmentFile(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
	// A torn header — fewer bytes than the fixed header — must also fail.
	if _, err := DecodeSegmentFile(buf[:extentHdrSize-1]); err == nil {
		t.Fatal("torn header accepted")
	}
}

func TestExtentTruncated(t *testing.T) {
	buf, _ := EncodeSegmentFile(1, testExtents(64, 8))
	// Truncate at every structural boundary: inside the directory, right
	// after it, and inside the last payload (a short mmap after a torn
	// write). All must be rejected at decode.
	for _, cut := range []int{extentHdrSize + 3, extentHdrSize + extentEntrySize*2, len(buf) / 2, len(buf) - 1} {
		if _, err := DecodeSegmentFile(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestExtentTruncatedFileOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.segx")
	buf, _ := EncodeSegmentFile(9, testExtents(64, 8))
	if err := os.WriteFile(path, buf[:len(buf)-17], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentFile(path); err == nil {
		t.Fatal("truncated file opened successfully")
	}
	// Sub-header file: rejected before mapping is attempted.
	if err := os.WriteFile(path, buf[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentFile(path); err == nil {
		t.Fatal("sub-header file opened successfully")
	}
}

func TestExtentDirectoryCorruption(t *testing.T) {
	fresh := func() []byte {
		buf, _ := EncodeSegmentFile(1, testExtents(16, 4))
		return buf
	}
	entry := func(buf []byte, i int) []byte { return buf[extentHdrSize+extentEntrySize*i:] }

	// Length-prefix overflow: length near MaxUint64 so offset+length wraps.
	buf := fresh()
	binary.LittleEndian.PutUint64(entry(buf, 0)[16:], ^uint64(0)-32)
	if _, err := DecodeSegmentFile(buf); err == nil {
		t.Fatal("length overflow accepted")
	}

	// Offset past EOF.
	buf = fresh()
	binary.LittleEndian.PutUint64(entry(buf, 0)[8:], uint64(len(buf)+extentAlign))
	if _, err := DecodeSegmentFile(buf); err == nil {
		t.Fatal("out-of-bounds offset accepted")
	}

	// Misaligned offset breaks the in-place float view contract.
	buf = fresh()
	off := binary.LittleEndian.Uint64(entry(buf, 1)[8:])
	binary.LittleEndian.PutUint64(entry(buf, 1)[8:], off+4)
	if _, err := DecodeSegmentFile(buf); err == nil {
		t.Fatal("misaligned offset accepted")
	}

	// rows*dim overflow in a vector-shaped entry.
	buf = fresh()
	binary.LittleEndian.PutUint64(entry(buf, 1)[24:], 1<<62)
	binary.LittleEndian.PutUint32(entry(buf, 1)[32:], 1<<30)
	if _, err := DecodeSegmentFile(buf); err == nil {
		t.Fatal("rows*dim overflow accepted")
	}

	// Unknown kind.
	buf = fresh()
	binary.LittleEndian.PutUint32(entry(buf, 0)[0:], 999)
	if _, err := DecodeSegmentFile(buf); err == nil {
		t.Fatal("unknown kind accepted")
	}

	// Inflated extent count walks the directory off the end of the file.
	buf = fresh()
	binary.LittleEndian.PutUint32(buf[16:], 1<<19)
	if _, err := DecodeSegmentFile(buf); err == nil {
		t.Fatal("inflated count accepted")
	}

	// Flipped payload byte survives decode but fails checksum verify.
	buf = fresh()
	sf, err := DecodeSegmentFile(buf)
	if err != nil {
		t.Fatalf("clean decode: %v", err)
	}
	sf.Extents[1].Payload[5] ^= 0x40
	if err := sf.VerifyChecksums(); err == nil {
		t.Fatal("corrupted payload passed checksum verification")
	}
}

func TestExtentShapeValidation(t *testing.T) {
	// Vector extent whose length disagrees with rows*dim*4.
	bad := []Extent{{Kind: ExtentVectors, Rows: 4, Dim: 4, Payload: make([]byte, 60)}}
	if _, err := EncodeSegmentFile(1, bad); err == nil {
		t.Fatal("inconsistent vector shape accepted at encode")
	}
	// dim = 0 vector extent.
	bad = []Extent{{Kind: ExtentVectors, Rows: 4, Dim: 0, Payload: nil}}
	if _, err := EncodeSegmentFile(1, bad); err == nil {
		t.Fatal("dim=0 vector extent accepted")
	}
	// ID extent with stray dim.
	bad = []Extent{{Kind: ExtentIDs, Rows: 2, Dim: 3, Payload: make([]byte, 16)}}
	if _, err := EncodeSegmentFile(1, bad); err == nil {
		t.Fatal("id extent with dim accepted")
	}
}
