package colstore

import (
	"testing"

	"vectordb/internal/bitset"
)

// predDecoder turns a fuzz byte tape into a predicate tree. Every byte
// sequence decodes to some valid tree (exhausted tape degrades to leaves)
// so the fuzzer explores structure, not parse failures.
type predDecoder struct {
	tape []byte
	pos  int
}

func (d *predDecoder) byte() byte {
	if d.pos >= len(d.tape) {
		return 0
	}
	b := d.tape[d.pos]
	d.pos++
	return b
}

func (d *predDecoder) int64() int64 {
	// Two tape bytes give a signed value spanning the dataset's key ranges
	// (ages 0..99, scores -1000..999) with room outside both.
	v := int64(d.byte())<<8 | int64(d.byte())
	return v%3000 - 1500
}

var fuzzPalette = []string{"red", "green", "blue", "cyan", "plum", "absent"}

func (d *predDecoder) pred(depth int) Pred {
	op := d.byte()
	if depth >= 5 {
		op %= 2 // leaves only
	}
	switch op % 5 {
	case 0:
		lo := d.int64()
		hi := lo + int64(d.byte())*8
		if d.byte()%8 == 0 {
			lo, hi = hi, lo // occasionally inverted (empty) ranges
		}
		return RangePred{Attr: int(d.byte() % 2), Lo: lo, Hi: hi}
	case 1:
		n := int(d.byte() % 4)
		vals := make([]string, 0, n)
		for i := 0; i < n; i++ {
			vals = append(vals, fuzzPalette[int(d.byte())%len(fuzzPalette)])
		}
		return InPred{Cat: 0, Values: vals}
	case 2:
		n := int(d.byte() % 4)
		ps := make([]Pred, 0, n)
		for i := 0; i < n; i++ {
			ps = append(ps, d.pred(depth+1))
		}
		return AndPred{Preds: ps}
	case 3:
		n := int(d.byte() % 4)
		ps := make([]Pred, 0, n)
		for i := 0; i < n; i++ {
			ps = append(ps, d.pred(depth+1))
		}
		return OrPred{Preds: ps}
	default:
		return NotPred{Pred: d.pred(depth + 1)}
	}
}

// FuzzPredCompile cross-checks the bitset compiler against per-row naive
// evaluation for arbitrary predicate trees.
func FuzzPredCompile(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{2, 3, 0, 10, 20, 1, 2, 0, 1})
	f.Add([]byte{4, 4, 3, 2, 0, 0, 0, 1, 1, 2, 9})
	f.Add([]byte{})
	c := testDataset(700, 77)
	out := bitset.New(c.rows)
	f.Fuzz(func(t *testing.T, tape []byte) {
		d := &predDecoder{tape: tape}
		p := d.pred(0)
		if err := CompilePred(p, c, out); err != nil {
			t.Fatalf("decoded predicate failed to compile: %v", err)
		}
		count := 0
		for i := 0; i < c.rows; i++ {
			want := c.evalNaive(p, i)
			if out.Test(i) != want {
				t.Fatalf("position %d: compiled %v, naive %v (pred %#v)", i, out.Test(i), want, p)
			}
			if want {
				count++
			}
		}
		if out.Count() != count {
			t.Fatalf("Count() = %d, naive count %d", out.Count(), count)
		}
	})
}
