package colstore

import (
	"encoding/binary"
	"testing"
)

// FuzzDecodeSegmentFile mirrors the index unmarshal fuzzers: the decoder
// must never panic or index out of bounds on arbitrary bytes, and any
// image it accepts must yield safe accessor views (the directory
// validation is what makes the later unsafe reinterpretation sound).
func FuzzDecodeSegmentFile(f *testing.F) {
	if buf, err := EncodeSegmentFile(3, testExtents(16, 4)); err == nil {
		f.Add(buf)
		// Seed structural mutants so the fuzzer starts at the boundaries.
		trunc := append([]byte(nil), buf[:len(buf)-9]...)
		f.Add(trunc)
		badLen := append([]byte(nil), buf...)
		binary.LittleEndian.PutUint64(badLen[extentHdrSize+16:], ^uint64(0)>>1)
		f.Add(badLen)
	}
	f.Add([]byte{})
	f.Add([]byte("SEGX"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := DecodeSegmentFile(data)
		if err != nil {
			return
		}
		// Accepted image: every accessor must stay in bounds.
		_ = sf.VerifyChecksums()
		for i := range sf.Extents {
			e := &sf.Extents[i]
			switch e.Kind {
			case ExtentVectors, ExtentIVFVecs, ExtentSQ8Params:
				v := e.Floats()
				if len(v) != int(e.Rows)*int(e.Dim) {
					t.Fatalf("extent %d: float view %d != rows*dim %d", i, len(v), int(e.Rows)*int(e.Dim))
				}
			case ExtentIDs:
				v := e.Int64s()
				if len(v) != int(e.Rows) {
					t.Fatalf("extent %d: id view %d != rows %d", i, len(v), e.Rows)
				}
			default:
				_ = e.Payload
			}
		}
		// A decoded file must re-encode and decode to the same shape.
		re, err := EncodeSegmentFile(sf.SegID, sf.Extents)
		if err != nil {
			t.Fatalf("re-encode of accepted image failed: %v", err)
		}
		sf2, err := DecodeSegmentFile(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(sf2.Extents) != len(sf.Extents) || sf2.SegID != sf.SegID {
			t.Fatalf("round-trip shape mismatch")
		}
	})
}
