//go:build unix

package colstore

import (
	"os"
	"syscall"
)

// maxMapSize bounds a single segment-file mapping; far above any real
// segment (MaxSegmentRows × dim × 4) but keeps int conversions safe.
const maxMapSize = 1 << 40

// mmapFile maps size bytes of f read-only and shared. The second result
// reports whether the bytes are a real mapping (true) or a heap copy.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func munmapFile(data []byte) error { return syscall.Munmap(data) }

func adviseSequential(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_SEQUENTIAL)
	}
}

func adviseWillNeed(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_WILLNEED)
	}
}
