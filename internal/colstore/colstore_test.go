package colstore

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAttributeColumnRangeRows(t *testing.T) {
	values := []int64{50, 10, 30, 20, 40}
	c := BuildAttributeColumn(values, nil)
	got := c.RangeRows(20, 40)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int64{2, 3, 4} // rows of 30, 20, 40
	if len(got) != len(want) {
		t.Fatalf("RangeRows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RangeRows = %v, want %v", got, want)
		}
	}
	if rows := c.RangeRows(100, 200); rows != nil {
		t.Fatalf("out-of-range query returned %v", rows)
	}
	if rows := c.RangeRows(40, 20); rows != nil {
		t.Fatalf("inverted range returned %v", rows)
	}
}

func TestAttributeColumnCustomIDs(t *testing.T) {
	c := BuildAttributeColumn([]int64{5, 1}, []int64{100, 200})
	rows := c.RangeRows(1, 1)
	if len(rows) != 1 || rows[0] != 200 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAttributeColumnSkipPointers(t *testing.T) {
	n := PageSize*3 + 17
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(i)
	}
	c := BuildAttributeColumn(values, nil)
	if c.Pages() != 4 {
		t.Fatalf("Pages = %d, want 4", c.Pages())
	}
	// Skip pointers must be exact page min/max of the sorted entries.
	for p := 0; p < c.Pages(); p++ {
		lo, hi := c.PageBounds(p)
		wantLo := int64(p * PageSize)
		wantHi := int64((p+1)*PageSize - 1)
		if p == c.Pages()-1 {
			wantHi = int64(n - 1)
		}
		if lo != wantLo || hi != wantHi {
			t.Fatalf("page %d bounds (%d,%d), want (%d,%d)", p, lo, hi, wantLo, wantHi)
		}
	}
	if mn, mx, ok := c.MinMax(); !ok || mn != 0 || mx != int64(n-1) {
		t.Fatalf("MinMax = %d,%d,%v", mn, mx, ok)
	}
}

func TestAttributeColumnEmptyAndCount(t *testing.T) {
	c := BuildAttributeColumn(nil, nil)
	if c.Len() != 0 || c.RangeRows(0, 10) != nil || c.CountRange(0, 10) != 0 {
		t.Fatal("empty column misbehaves")
	}
	if _, _, ok := c.MinMax(); ok {
		t.Fatal("MinMax on empty column reported ok")
	}
}

// Property: RangeRows equals a naive filter, and CountRange equals its size.
func TestAttributeColumnRangeProperty(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw int16) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(PageSize * 3)
		values := make([]int64, n)
		for i := range values {
			values[i] = int64(r.Intn(1000))
		}
		lo, hi := int64(loRaw%1000), int64(hiRaw%1000)
		c := BuildAttributeColumn(values, nil)
		got := c.RangeRows(lo, hi)
		var want []int64
		for i, v := range values {
			if v >= lo && v <= hi {
				want = append(want, int64(i))
			}
		}
		if len(got) != len(want) || c.CountRange(lo, hi) != len(want) {
			return false
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		bm := c.RangeBitmap(lo, hi)
		if len(bm) != len(uniq(want)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func uniq(xs []int64) []int64 {
	seen := map[int64]struct{}{}
	var out []int64
	for _, x := range xs {
		if _, ok := seen[x]; !ok {
			seen[x] = struct{}{}
			out = append(out, x)
		}
	}
	return out
}

func TestAttributeColumnMarshalRoundTrip(t *testing.T) {
	values := []int64{9, 3, 7, 3, -5}
	ids := []int64{10, 20, 30, 40, 50}
	c := BuildAttributeColumn(values, ids)
	c2, err := UnmarshalAttributeColumn(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("len %d != %d", c2.Len(), c.Len())
	}
	for i := 0; i < c.Len(); i++ {
		if c.Entry(i) != c2.Entry(i) {
			t.Fatalf("entry %d: %v != %v", i, c.Entry(i), c2.Entry(i))
		}
	}
}

func TestAttributeColumnUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalAttributeColumn(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := UnmarshalAttributeColumn(make([]byte, 8)); err == nil {
		t.Error("bad magic accepted")
	}
	c := BuildAttributeColumn([]int64{1, 2}, nil)
	b := c.Marshal()
	if _, err := UnmarshalAttributeColumn(b[:len(b)-3]); err == nil {
		t.Error("truncated column accepted")
	}
}

func TestVectorColumnRoundTrip(t *testing.T) {
	col := NewVectorColumn(3, []float32{1, 2, 3, 4, 5, 6})
	if col.Rows() != 2 {
		t.Fatalf("Rows = %d", col.Rows())
	}
	if got := col.Row(1); got[0] != 4 || got[2] != 6 {
		t.Fatalf("Row(1) = %v", got)
	}
	c2, err := UnmarshalVectorColumn(col.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for i := range col.Data {
		if col.Data[i] != c2.Data[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestVectorColumnErrors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged column did not panic")
		}
	}()
	if _, err := UnmarshalVectorColumn([]byte{1, 2}); err == nil {
		t.Error("short data accepted")
	}
	b := NewVectorColumn(2, []float32{1, 2}).Marshal()
	b[0] ^= 0xFF
	if _, err := UnmarshalVectorColumn(b); err == nil {
		t.Error("bad magic accepted")
	}
	NewVectorColumn(2, []float32{1, 2, 3})
}

func TestPackUnpackFields(t *testing.T) {
	f0 := NewVectorColumn(2, []float32{1, 2, 3, 4})
	f1 := NewVectorColumn(3, []float32{5, 6, 7, 8, 9, 10})
	packed, err := PackFields([]*VectorColumn{f0, f1})
	if err != nil {
		t.Fatal(err)
	}
	fields, err := UnpackFields(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 || fields[0].Dim != 2 || fields[1].Dim != 3 {
		t.Fatalf("fields = %+v", fields)
	}
	if fields[1].Row(1)[2] != 10 {
		t.Fatal("field data corrupted")
	}
}

func TestPackFieldsErrors(t *testing.T) {
	if _, err := PackFields(nil); err == nil {
		t.Error("empty pack accepted")
	}
	f0 := NewVectorColumn(2, []float32{1, 2})
	f1 := NewVectorColumn(2, []float32{1, 2, 3, 4})
	if _, err := PackFields([]*VectorColumn{f0, f1}); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, err := UnpackFields([]byte{1}); err == nil {
		t.Error("short unpack accepted")
	}
}

func TestIDColumnRoundTrip(t *testing.T) {
	ids := []int64{1, -2, 1 << 40}
	got, err := UnmarshalIDs(MarshalIDs(ids))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("ids = %v", got)
		}
	}
	if _, err := UnmarshalIDs([]byte{0}); err == nil {
		t.Error("short ids accepted")
	}
	if _, err := UnmarshalIDs(MarshalIDs(ids)[:10]); err == nil {
		t.Error("truncated ids accepted")
	}
}
