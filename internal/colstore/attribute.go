// Package colstore implements the columnar entity storage of Sec. 2.4:
// vectors are stored contiguously sorted by row ID (multi-vector entities
// column-grouped by field), and each numerical attribute is stored as an
// array of ⟨key,rowID⟩ pairs sorted by key with per-page min/max skip
// pointers (following Snowflake) for fast point and range lookups.
package colstore

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// AttrEntry is one ⟨key, rowID⟩ pair of an attribute column.
type AttrEntry struct {
	Key int64 // attribute value
	Row int64 // row ID
}

// PageSize is the number of entries covered by one skip pointer.
const PageSize = 256

// AttributeColumn stores one numerical attribute sorted by value.
type AttributeColumn struct {
	entries []AttrEntry
	// pageMin/pageMax are the skip pointers: min/max key per page. With the
	// column sorted by key, min/max reduce to first/last entry of the page,
	// exactly the data-page zone maps Snowflake keeps.
	pageMin []int64
	pageMax []int64
}

// BuildAttributeColumn sorts values into a column. values[i] belongs to row
// ids[i] (ids nil means row position).
func BuildAttributeColumn(values []int64, ids []int64) *AttributeColumn {
	entries := make([]AttrEntry, len(values))
	for i, v := range values {
		row := int64(i)
		if ids != nil {
			row = ids[i]
		}
		entries[i] = AttrEntry{Key: v, Row: row}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		return entries[i].Row < entries[j].Row
	})
	c := &AttributeColumn{entries: entries}
	c.buildSkipPointers()
	return c
}

func (c *AttributeColumn) buildSkipPointers() {
	n := len(c.entries)
	pages := (n + PageSize - 1) / PageSize
	c.pageMin = make([]int64, pages)
	c.pageMax = make([]int64, pages)
	for p := 0; p < pages; p++ {
		lo := p * PageSize
		hi := lo + PageSize
		if hi > n {
			hi = n
		}
		c.pageMin[p] = c.entries[lo].Key
		c.pageMax[p] = c.entries[hi-1].Key
	}
}

// Len returns the number of entries.
func (c *AttributeColumn) Len() int { return len(c.entries) }

// Pages returns the number of skip-pointer pages.
func (c *AttributeColumn) Pages() int { return len(c.pageMin) }

// PageBounds returns the skip pointer (min, max) of page p.
func (c *AttributeColumn) PageBounds(p int) (int64, int64) { return c.pageMin[p], c.pageMax[p] }

// MinMax returns the column's overall key range; ok is false when empty.
func (c *AttributeColumn) MinMax() (min, max int64, ok bool) {
	if len(c.entries) == 0 {
		return 0, 0, false
	}
	return c.entries[0].Key, c.entries[len(c.entries)-1].Key, true
}

// RangeRows returns the row IDs with lo ≤ key ≤ hi, pruning pages whose
// skip-pointer range misses [lo, hi] and binary-searching within the rest.
func (c *AttributeColumn) RangeRows(lo, hi int64) []int64 {
	var out []int64
	c.RangeEach(lo, hi, func(row int64) { out = append(out, row) })
	return out
}

// RangeEach calls fn for each row ID with lo ≤ key ≤ hi, using the same
// skip-pointer pruning as RangeRows but without materializing a slice —
// the predicate compiler sets bitset bits straight from the visit.
func (c *AttributeColumn) RangeEach(lo, hi int64, fn func(row int64)) {
	if lo > hi || len(c.entries) == 0 {
		return
	}
	firstPage := sort.Search(len(c.pageMax), func(p int) bool { return c.pageMax[p] >= lo })
	if firstPage == len(c.pageMax) {
		return
	}
	for p := firstPage; p < len(c.pageMin); p++ {
		if c.pageMin[p] > hi {
			break // later pages only contain larger keys
		}
		start := p * PageSize
		end := start + PageSize
		if end > len(c.entries) {
			end = len(c.entries)
		}
		page := c.entries[start:end]
		i := sort.Search(len(page), func(i int) bool { return page[i].Key >= lo })
		for ; i < len(page) && page[i].Key <= hi; i++ {
			fn(page[i].Row)
		}
	}
}

// CountRange counts entries with lo ≤ key ≤ hi without materializing rows —
// the selectivity estimate the cost-based strategy D needs.
func (c *AttributeColumn) CountRange(lo, hi int64) int {
	if lo > hi || len(c.entries) == 0 {
		return 0
	}
	first := sort.Search(len(c.entries), func(i int) bool { return c.entries[i].Key >= lo })
	last := sort.Search(len(c.entries), func(i int) bool { return c.entries[i].Key > hi })
	return last - first
}

// RangeBitmap returns the matching rows as a membership set (the bitmap of
// strategy B).
func (c *AttributeColumn) RangeBitmap(lo, hi int64) map[int64]struct{} {
	rows := c.RangeRows(lo, hi)
	set := make(map[int64]struct{}, len(rows))
	for _, r := range rows {
		set[r] = struct{}{}
	}
	return set
}

// Entry returns entry i in key order (tests, merges).
func (c *AttributeColumn) Entry(i int) AttrEntry { return c.entries[i] }

// attributeColumnMagic guards deserialization.
const attributeColumnMagic = uint32(0x41545443) // "ATTC"

// Marshal serializes the column (entries only; skip pointers are rebuilt).
func (c *AttributeColumn) Marshal() []byte {
	buf := make([]byte, 8+16*len(c.entries))
	binary.LittleEndian.PutUint32(buf[0:], attributeColumnMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(c.entries)))
	off := 8
	for _, e := range c.entries {
		binary.LittleEndian.PutUint64(buf[off:], uint64(e.Key))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(e.Row))
		off += 16
	}
	return buf
}

// UnmarshalAttributeColumn parses a column serialized with Marshal.
func UnmarshalAttributeColumn(data []byte) (*AttributeColumn, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("colstore: attribute column too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != attributeColumnMagic {
		return nil, fmt.Errorf("colstore: bad attribute column magic")
	}
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if len(data) != 8+16*n {
		return nil, fmt.Errorf("colstore: attribute column length %d does not match count %d", len(data), n)
	}
	c := &AttributeColumn{entries: make([]AttrEntry, n)}
	off := 8
	for i := 0; i < n; i++ {
		c.entries[i] = AttrEntry{
			Key: int64(binary.LittleEndian.Uint64(data[off:])),
			Row: int64(binary.LittleEndian.Uint64(data[off+8:])),
		}
		off += 16
	}
	c.buildSkipPointers()
	return c, nil
}
