package colstore

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// CategoricalColumn stores one string-valued attribute with an inverted
// index from value to sorted row-ID postings — the categorical-attribute
// support the paper lists as future work ("we plan to support categorical
// attributes with indexes like inverted lists or bitmaps", Sec. 2.1).
type CategoricalColumn struct {
	// dict maps each distinct value to its postings (sorted row IDs).
	dict map[string][]int64
	rows int
}

// BuildCategoricalColumn indexes values; values[i] belongs to ids[i]
// (row position when ids is nil).
func BuildCategoricalColumn(values []string, ids []int64) *CategoricalColumn {
	c := &CategoricalColumn{dict: map[string][]int64{}, rows: len(values)}
	for i, v := range values {
		row := int64(i)
		if ids != nil {
			row = ids[i]
		}
		c.dict[v] = append(c.dict[v], row)
	}
	for v := range c.dict {
		p := c.dict[v]
		sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	}
	return c
}

// Len returns the number of rows indexed.
func (c *CategoricalColumn) Len() int { return c.rows }

// Cardinality returns the number of distinct values.
func (c *CategoricalColumn) Cardinality() int { return len(c.dict) }

// Values lists the distinct values, sorted.
func (c *CategoricalColumn) Values() []string {
	out := make([]string, 0, len(c.dict))
	for v := range c.dict {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Rows returns the postings for one value (shared slice: do not mutate).
func (c *CategoricalColumn) Rows(value string) []int64 { return c.dict[value] }

// Count returns the posting length for one value without materializing —
// the selectivity estimate for cost-based planning.
func (c *CategoricalColumn) Count(values ...string) int {
	n := 0
	for _, v := range values {
		n += len(c.dict[v])
	}
	return n
}

// Bitmap returns the membership set of rows matching ANY of the values
// (an IN predicate).
func (c *CategoricalColumn) Bitmap(values ...string) map[int64]struct{} {
	out := map[int64]struct{}{}
	for _, v := range values {
		for _, row := range c.dict[v] {
			out[row] = struct{}{}
		}
	}
	return out
}

const categoricalMagic = uint32(0x43415443) // "CATC"

// Marshal serializes the column (row-aligned values are reconstructed from
// postings, so only the dictionary is stored).
func (c *CategoricalColumn) Marshal() []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, categoricalMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.dict)))
	for _, v := range c.Values() {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
		p := c.dict[v]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		for _, row := range p {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(row))
		}
	}
	return buf
}

// UnmarshalCategoricalColumn reverses Marshal.
func UnmarshalCategoricalColumn(data []byte) (*CategoricalColumn, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("colstore: categorical column too short")
	}
	if binary.LittleEndian.Uint32(data) != categoricalMagic {
		return nil, fmt.Errorf("colstore: bad categorical column magic")
	}
	c := &CategoricalColumn{dict: map[string][]int64{}}
	c.rows = int(binary.LittleEndian.Uint32(data[4:]))
	nvals := int(binary.LittleEndian.Uint32(data[8:]))
	off := 12
	for i := 0; i < nvals; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("colstore: categorical column truncated")
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+l > len(data) {
			return nil, fmt.Errorf("colstore: categorical value overruns")
		}
		v := string(data[off : off+l])
		off += l
		if off+4 > len(data) {
			return nil, fmt.Errorf("colstore: categorical postings truncated")
		}
		np := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+8*np > len(data) {
			return nil, fmt.Errorf("colstore: categorical postings overrun")
		}
		p := make([]int64, np)
		for j := range p {
			p[j] = int64(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		c.dict[v] = p
	}
	return c, nil
}

// MarshalStrings serializes a row-aligned string array (raw categorical
// values travel with the segment like RawAttrs do).
func MarshalStrings(values []string) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(values)))
	for _, v := range values {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// UnmarshalStrings reverses MarshalStrings.
func UnmarshalStrings(data []byte) ([]string, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("colstore: string column too short")
	}
	n := int(binary.LittleEndian.Uint32(data))
	off := 4
	out := make([]string, n)
	for i := 0; i < n; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("colstore: string column truncated")
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+l > len(data) {
			return nil, fmt.Errorf("colstore: string value overruns")
		}
		out[i] = string(data[off : off+l])
		off += l
	}
	if off != len(data) {
		return nil, fmt.Errorf("colstore: string column has %d trailing bytes", len(data)-off)
	}
	return out, nil
}
