package colstore

import (
	"math/rand"
	"testing"

	"vectordb/internal/bitset"
)

// predCols is a segment stand-in: row-aligned raw values per column, with
// row IDs = 10 + 2·pos so PosOf is exercised on a non-identity mapping.
type predCols struct {
	attrRaw [][]int64
	catRaw  [][]string
	attrs   []*AttributeColumn
	cats    []*CategoricalColumn
	rows    int
}

func newPredCols(attrRaw [][]int64, catRaw [][]string) *predCols {
	c := &predCols{attrRaw: attrRaw, catRaw: catRaw}
	if len(attrRaw) > 0 {
		c.rows = len(attrRaw[0])
	} else if len(catRaw) > 0 {
		c.rows = len(catRaw[0])
	}
	ids := make([]int64, c.rows)
	for i := range ids {
		ids[i] = 10 + 2*int64(i)
	}
	for _, vals := range attrRaw {
		c.attrs = append(c.attrs, BuildAttributeColumn(vals, ids))
	}
	for _, vals := range catRaw {
		c.cats = append(c.cats, BuildCategoricalColumn(vals, ids))
	}
	return c
}

func (c *predCols) Rows() int { return c.rows }

func (c *predCols) AttrColumn(attr int) *AttributeColumn {
	if attr < 0 || attr >= len(c.attrs) {
		return nil
	}
	return c.attrs[attr]
}

func (c *predCols) CatColumn(cat int) *CategoricalColumn {
	if cat < 0 || cat >= len(c.cats) {
		return nil
	}
	return c.cats[cat]
}

func (c *predCols) PosOf(row int64) (int32, bool) {
	if row < 10 || (row-10)%2 != 0 {
		return 0, false
	}
	pos := (row - 10) / 2
	if pos >= int64(c.rows) {
		return 0, false
	}
	return int32(pos), true
}

// evalNaive evaluates p for build position i straight off the raw arrays.
func (c *predCols) evalNaive(p Pred, i int) bool {
	switch p := p.(type) {
	case RangePred:
		v := c.attrRaw[p.Attr][i]
		return p.Lo <= v && v <= p.Hi
	case InPred:
		v := c.catRaw[p.Cat][i]
		for _, want := range p.Values {
			if v == want {
				return true
			}
		}
		return false
	case AndPred:
		for _, child := range p.Preds {
			if !c.evalNaive(child, i) {
				return false
			}
		}
		return true
	case OrPred:
		for _, child := range p.Preds {
			if c.evalNaive(child, i) {
				return true
			}
		}
		return false
	case NotPred:
		return !c.evalNaive(p.Pred, i)
	}
	panic("unknown pred")
}

func (c *predCols) check(t *testing.T, tag string, p Pred) {
	t.Helper()
	out := bitset.New(c.rows)
	if err := CompilePred(p, c, out); err != nil {
		t.Fatalf("%s: CompilePred: %v", tag, err)
	}
	if out.Len() != c.rows {
		t.Fatalf("%s: compiled bitset over %d positions, want %d", tag, out.Len(), c.rows)
	}
	for i := 0; i < c.rows; i++ {
		if out.Test(i) != c.evalNaive(p, i) {
			t.Fatalf("%s: position %d: compiled %v, naive %v", tag, i, out.Test(i), c.evalNaive(p, i))
		}
	}
}

func testDataset(n int, seed int64) *predCols {
	r := rand.New(rand.NewSource(seed))
	age := make([]int64, n)
	score := make([]int64, n)
	color := make([]string, n)
	palette := []string{"red", "green", "blue", "cyan", "plum"}
	for i := 0; i < n; i++ {
		age[i] = int64(r.Intn(100))
		score[i] = int64(r.Intn(2000)) - 1000
		color[i] = palette[r.Intn(len(palette))]
	}
	return newPredCols([][]int64{age, score}, [][]string{color})
}

func TestCompilePred(t *testing.T) {
	c := testDataset(1500, 71)
	cases := map[string]Pred{
		"range":       RangePred{Attr: 0, Lo: 20, Hi: 60},
		"range_empty": RangePred{Attr: 0, Lo: 500, Hi: 600},
		"range_all":   RangePred{Attr: 0, Lo: -1, Hi: 1000},
		"range_inv":   RangePred{Attr: 0, Lo: 60, Hi: 20},
		"in_one":      InPred{Cat: 0, Values: []string{"red"}},
		"in_many":     InPred{Cat: 0, Values: []string{"red", "blue", "absent"}},
		"in_none":     InPred{Cat: 0, Values: nil},
		"and": AndPred{Preds: []Pred{
			RangePred{Attr: 0, Lo: 10, Hi: 80},
			RangePred{Attr: 1, Lo: -200, Hi: 400},
		}},
		"or": OrPred{Preds: []Pred{
			RangePred{Attr: 0, Lo: 0, Hi: 5},
			InPred{Cat: 0, Values: []string{"plum"}},
		}},
		"not":       NotPred{Pred: RangePred{Attr: 0, Lo: 30, Hi: 100}},
		"and_empty": AndPred{},
		"or_empty":  OrPred{},
		"nested": AndPred{Preds: []Pred{
			OrPred{Preds: []Pred{
				RangePred{Attr: 1, Lo: -1000, Hi: -500},
				AndPred{Preds: []Pred{
					InPred{Cat: 0, Values: []string{"green", "cyan"}},
					NotPred{Pred: RangePred{Attr: 0, Lo: 0, Hi: 49}},
				}},
			}},
			NotPred{Pred: InPred{Cat: 0, Values: []string{"red"}}},
		}},
		"double_not": NotPred{Pred: NotPred{Pred: RangePred{Attr: 1, Lo: 0, Hi: 100}}},
	}
	for name, p := range cases {
		c.check(t, name, p)
	}
}

func TestCompilePredErrors(t *testing.T) {
	c := testDataset(50, 72)
	out := bitset.New(0)
	bad := []Pred{
		RangePred{Attr: 9, Lo: 0, Hi: 1},
		InPred{Cat: 3, Values: []string{"x"}},
		AndPred{Preds: []Pred{RangePred{Attr: 0, Lo: 0, Hi: 1}, InPred{Cat: -1}}},
		NotPred{Pred: RangePred{Attr: -1}},
		nil,
	}
	for i, p := range bad {
		if err := CompilePred(p, c, out); err == nil {
			t.Fatalf("case %d: no error for invalid predicate %#v", i, p)
		}
	}
}

// TestCompilePredSkipsForeignRows: postings pointing at rows outside the
// segment (PosOf not ok) must be dropped, not mis-mapped.
func TestCompilePredSkipsForeignRows(t *testing.T) {
	// Build columns whose ids include rows the PredColumns cannot map.
	ids := []int64{10, 11, 12, 9999}
	attr := BuildAttributeColumn([]int64{1, 1, 1, 1}, ids)
	cat := BuildCategoricalColumn([]string{"x", "x", "x", "x"}, ids)
	c := &predCols{
		attrRaw: [][]int64{{1, 1}},
		catRaw:  [][]string{{"x", "x"}},
		attrs:   []*AttributeColumn{attr},
		cats:    []*CategoricalColumn{cat},
		rows:    2,
	}
	out := bitset.New(2)
	if err := CompilePred(RangePred{Attr: 0, Lo: 0, Hi: 2}, c, out); err != nil {
		t.Fatal(err)
	}
	// Only rows 10 (pos 0) and 12 (pos 1) map; 11 and 9999 are foreign.
	if !out.Test(0) || !out.Test(1) || out.Count() != 2 {
		t.Fatalf("range compile over foreign rows: got count %d", out.Count())
	}
	out2 := bitset.New(2)
	if err := CompilePred(InPred{Cat: 0, Values: []string{"x"}}, c, out2); err != nil {
		t.Fatal(err)
	}
	if out2.Count() != 2 {
		t.Fatalf("in compile over foreign rows: got count %d", out2.Count())
	}
}

func TestEstimatePred(t *testing.T) {
	c := testDataset(1200, 73)
	exact := func(p Pred) int {
		n := 0
		for i := 0; i < c.rows; i++ {
			if c.evalNaive(p, i) {
				n++
			}
		}
		return n
	}
	// Leaves are exact.
	for _, p := range []Pred{
		RangePred{Attr: 0, Lo: 25, Hi: 70},
		InPred{Cat: 0, Values: []string{"red", "blue"}},
	} {
		if got, want := EstimatePred(p, c), exact(p); got != want {
			t.Fatalf("%#v: estimate %d, want exact %d", p, got, want)
		}
	}
	// And/Or bound the true count from above.
	for _, p := range []Pred{
		AndPred{Preds: []Pred{RangePred{Attr: 0, Lo: 0, Hi: 50}, RangePred{Attr: 1, Lo: 0, Hi: 1000}}},
		OrPred{Preds: []Pred{RangePred{Attr: 0, Lo: 0, Hi: 9}, InPred{Cat: 0, Values: []string{"plum"}}}},
	} {
		got, want := EstimatePred(p, c), exact(p)
		if got < want {
			t.Fatalf("%#v: estimate %d below true count %d", p, got, want)
		}
		if got > c.rows {
			t.Fatalf("%#v: estimate %d exceeds rows %d", p, got, c.rows)
		}
	}
	// Unknown columns degrade to "everything matches".
	if EstimatePred(RangePred{Attr: 7}, c) != c.rows {
		t.Fatal("unknown attribute must estimate as full segment")
	}
}
