package colstore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// VectorColumn stores one vector field for all rows of a segment,
// contiguously in row-ID order (single-vector layout of Sec. 2.4: row IDs
// are implicit — "Milvus stores all the vectors continuously without
// explicitly storing the row IDs").
type VectorColumn struct {
	Dim  int
	Data []float32 // rows*Dim
}

// NewVectorColumn wraps flat data; it panics on ragged input (programming
// error).
func NewVectorColumn(dim int, data []float32) *VectorColumn {
	if dim <= 0 || len(data)%dim != 0 {
		panic(fmt.Sprintf("colstore: ragged vector column: len %d dim %d", len(data), dim))
	}
	return &VectorColumn{Dim: dim, Data: data}
}

// Rows returns the number of vectors.
func (v *VectorColumn) Rows() int { return len(v.Data) / v.Dim }

// Row returns vector i ("given a row ID, Milvus can directly access the
// corresponding vector since each vector is of the same length").
func (v *VectorColumn) Row(i int) []float32 { return v.Data[i*v.Dim : (i+1)*v.Dim] }

const vectorColumnMagic = uint32(0x56454343) // "VECC"

// Marshal serializes the column.
func (v *VectorColumn) Marshal() []byte {
	buf := make([]byte, 12+4*len(v.Data))
	binary.LittleEndian.PutUint32(buf[0:], vectorColumnMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(v.Dim))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(v.Data)))
	off := 12
	for _, x := range v.Data {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(x))
		off += 4
	}
	return buf
}

// UnmarshalVectorColumn parses a column serialized with Marshal.
func UnmarshalVectorColumn(data []byte) (*VectorColumn, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("colstore: vector column too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != vectorColumnMagic {
		return nil, fmt.Errorf("colstore: bad vector column magic")
	}
	dim := int(binary.LittleEndian.Uint32(data[4:]))
	n := int(binary.LittleEndian.Uint32(data[8:]))
	if dim <= 0 || n%dim != 0 || len(data) != 12+4*n {
		return nil, fmt.Errorf("colstore: vector column header inconsistent (dim=%d n=%d len=%d)", dim, n, len(data))
	}
	out := make([]float32, n)
	off := 12
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	return &VectorColumn{Dim: dim, Data: out}, nil
}

// PackFields lays multiple vector fields out column-grouped as Sec. 2.4
// describes for multi-vector entities: {A.v1, B.v1, C.v1, A.v2, B.v2, C.v2}.
// Every field must have the same row count.
func PackFields(fields []*VectorColumn) ([]byte, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("colstore: no fields to pack")
	}
	rows := fields[0].Rows()
	for i, f := range fields {
		if f.Rows() != rows {
			return nil, fmt.Errorf("colstore: field %d has %d rows, want %d", i, f.Rows(), rows)
		}
	}
	var out []byte
	header := make([]byte, 8)
	binary.LittleEndian.PutUint32(header[0:], uint32(len(fields)))
	binary.LittleEndian.PutUint32(header[4:], uint32(rows))
	out = append(out, header...)
	for _, f := range fields {
		b := f.Marshal()
		lenBuf := make([]byte, 4)
		binary.LittleEndian.PutUint32(lenBuf, uint32(len(b)))
		out = append(out, lenBuf...)
		out = append(out, b...)
	}
	return out, nil
}

// UnpackFields reverses PackFields.
func UnpackFields(data []byte) ([]*VectorColumn, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("colstore: packed fields too short")
	}
	nf := int(binary.LittleEndian.Uint32(data[0:]))
	off := 8
	out := make([]*VectorColumn, 0, nf)
	for i := 0; i < nf; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("colstore: packed fields truncated at field %d", i)
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+l > len(data) {
			return nil, fmt.Errorf("colstore: packed field %d overruns buffer", i)
		}
		col, err := UnmarshalVectorColumn(data[off : off+l])
		if err != nil {
			return nil, fmt.Errorf("colstore: field %d: %w", i, err)
		}
		out = append(out, col)
		off += l
	}
	return out, nil
}

// IDColumn serializes a row-ID list.
func MarshalIDs(ids []int64) []byte {
	buf := make([]byte, 4+8*len(ids))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(ids)))
	off := 4
	for _, id := range ids {
		binary.LittleEndian.PutUint64(buf[off:], uint64(id))
		off += 8
	}
	return buf
}

// UnmarshalIDs reverses MarshalIDs.
func UnmarshalIDs(data []byte) ([]int64, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("colstore: id column too short")
	}
	n := int(binary.LittleEndian.Uint32(data[0:]))
	if len(data) != 4+8*n {
		return nil, fmt.Errorf("colstore: id column length mismatch")
	}
	out := make([]int64, n)
	off := 4
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	return out, nil
}
