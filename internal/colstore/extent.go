package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"unsafe"
)

// Extent file format ("SEGX"): the on-disk columnar layout for sealed
// segments. One file per segment holds every column — vectors, SQ8 codes,
// row IDs, attributes, categoricals — as separate length-prefixed extents
// behind a single directory, so a scan faults in only the column (and the
// 256-row blocks within it) that it touches. Payloads are 64-byte aligned
// from the start of the file; combined with page-aligned mmap this lets
// float32/int64 columns be viewed in place without a decode copy.
//
// Layout (all little-endian):
//
//	offset  0: magic    u32  "SEGX"
//	offset  4: version  u32  (currently 1)
//	offset  8: segID    u64
//	offset 16: count    u32  directory entries
//	offset 20: reserved u32  (zero)
//	offset 24: directory, count × 40-byte entries:
//	           kind u32 | field u32 | offset u64 | length u64 |
//	           rows u64 | dim u32 | crc32 u32
//	then payloads, each padded so its offset is a multiple of 64.
//
// The decoder validates the directory strictly (magic, version, entry
// bounds, alignment, per-kind length arithmetic with overflow checks);
// payload checksums are verified separately by VerifyChecksums so that a
// plain open does not fault every page of a cold file.
const (
	extentMagic     = uint32(0x58474553) // "SEGX"
	extentVersion   = uint32(1)
	extentHdrSize   = 24
	extentEntrySize = 40
	extentAlign     = 64
	extentMaxCount  = 1 << 20
)

// Extent kinds. Vector-shaped kinds (float32 rows×dim) and code-shaped
// kinds (uint8 rows×dim) have their length arithmetic validated at decode;
// opaque kinds carry existing Marshal-format blobs verbatim.
const (
	ExtentIDs       = uint32(1) // raw int64 row IDs, length = 8*rows
	ExtentVectors   = uint32(2) // float32 vectors in row order, length = 4*rows*dim
	ExtentSQ8Codes  = uint32(3) // uint8 SQ8 codes in row order, length = rows*dim
	ExtentSQ8Params = uint32(4) // float32 min/scale pairs, rows = 2, length = 8*dim
	ExtentAttr      = uint32(5) // opaque attribute column blob (existing Marshal format)
	ExtentCats      = uint32(6) // opaque categorical column blob
	ExtentIVFVecs   = uint32(7) // float32 vectors in IVF build order, length = 4*rows*dim
	ExtentIVFCodes  = uint32(8) // uint8 SQ8 codes in IVF build order, length = rows*dim
)

// Extent is one decoded directory entry plus its payload view. The payload
// aliases the file buffer (or mapping) it was decoded from.
type Extent struct {
	Kind    uint32
	Field   uint32
	Rows    uint64
	Dim     uint32
	CRC     uint32
	Payload []byte
	// Off is the payload's byte offset within the file image. Populated by
	// DecodeSegmentFile (encoding computes its own offsets); block loaders
	// use it to express madvise prefetch hints in file coordinates.
	Off uint64
}

// SegmentFile is a decoded extent file. Extents alias the underlying
// buffer; keep it alive (or the mapping open) while they are in use.
type SegmentFile struct {
	SegID   int64
	Extents []Extent
}

// Find returns the first extent with the given kind and field, or nil.
func (sf *SegmentFile) Find(kind, field uint32) *Extent {
	for i := range sf.Extents {
		e := &sf.Extents[i]
		if e.Kind == kind && e.Field == field {
			return e
		}
	}
	return nil
}

// VerifyChecksums re-hashes every payload against its directory CRC. This
// touches every byte, so it is called on promotion (the bytes just arrived
// from objstore and are hot) and in recovery tests — not on plain open.
func (sf *SegmentFile) VerifyChecksums() error {
	for i := range sf.Extents {
		e := &sf.Extents[i]
		if got := crc32.ChecksumIEEE(e.Payload); got != e.CRC {
			return fmt.Errorf("colstore: extent %d (kind=%d field=%d) checksum mismatch: %08x != %08x",
				i, e.Kind, e.Field, got, e.CRC)
		}
	}
	return nil
}

// hostLittleEndian reports whether in-place reinterpretation of the
// little-endian on-disk layout is valid on this machine.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Floats views a vector-shaped payload as []float32 (rows*dim values). The
// view aliases the file buffer when the host is little-endian and the
// payload is 4-byte aligned (always true for payloads at their encoded
// offsets in a page-aligned mapping); otherwise it decodes into a fresh
// slice.
func (e *Extent) Floats() []float32 {
	n := len(e.Payload) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&e.Payload[0]))%4 == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&e.Payload[0])), n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(e.Payload[4*i:]))
	}
	return out
}

// Int64s views an ID-shaped payload as []int64, aliasing when possible
// (same rules as Floats).
func (e *Extent) Int64s() []int64 {
	n := len(e.Payload) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&e.Payload[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&e.Payload[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(e.Payload[8*i:]))
	}
	return out
}

// FloatsToBytes views a []float32 as its little-endian byte image without
// copying (the inverse of Floats on this architecture). Used to build
// extent payloads from live columns and float-aligned cache blocks.
func FloatsToBytes(f []float32) []byte {
	if len(f) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), 4*len(f))
	}
	out := make([]byte, 4*len(f))
	for i, x := range f {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

// ViewFloats aliases a little-endian float32 byte image in place when the
// host's endianness and the slice's alignment allow it, reporting ok=false
// otherwise (the caller then decodes with a copy). Cached blocks are
// float-backed by construction, so the view succeeds on every little-endian
// host.
func ViewFloats(b []byte) ([]float32, bool) {
	if len(b)%4 != 0 {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4), true
	}
	return nil, false
}

// DecodeFloats decodes a little-endian float32 byte image into dst
// (len(b)/4 values). The copying fallback for hosts where ViewFloats
// cannot alias.
func DecodeFloats(dst []float32, b []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
}

// Int64sToBytes views a []int64 as its little-endian byte image without
// copying (inverse of Int64s on this architecture).
func Int64sToBytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
	}
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// alignUp rounds n up to the next multiple of extentAlign.
func alignUp(n int) int { return (n + extentAlign - 1) &^ (extentAlign - 1) }

// EncodeSegmentFile builds the on-disk image for a segment's extents. The
// directory records each payload at a 64-byte-aligned offset with its
// IEEE CRC-32; gaps between payloads are zero.
func EncodeSegmentFile(segID int64, extents []Extent) ([]byte, error) {
	if len(extents) > extentMaxCount {
		return nil, fmt.Errorf("colstore: %d extents exceeds maximum", len(extents))
	}
	// The file ends exactly at the last payload byte (no trailing pad), so
	// any torn write that loses data is caught by the directory bounds
	// check at decode.
	total := extentHdrSize + extentEntrySize*len(extents)
	offsets := make([]int, len(extents))
	for i := range extents {
		total = alignUp(total)
		offsets[i] = total
		total += len(extents[i].Payload)
	}
	buf := make([]byte, total)
	binary.LittleEndian.PutUint32(buf[0:], extentMagic)
	binary.LittleEndian.PutUint32(buf[4:], extentVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(segID))
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(extents)))
	for i := range extents {
		e := &extents[i]
		if err := validateExtentShape(e.Kind, uint64(len(e.Payload)), e.Rows, e.Dim); err != nil {
			return nil, fmt.Errorf("colstore: encode extent %d: %w", i, err)
		}
		d := buf[extentHdrSize+extentEntrySize*i:]
		binary.LittleEndian.PutUint32(d[0:], e.Kind)
		binary.LittleEndian.PutUint32(d[4:], e.Field)
		binary.LittleEndian.PutUint64(d[8:], uint64(offsets[i]))
		binary.LittleEndian.PutUint64(d[16:], uint64(len(e.Payload)))
		binary.LittleEndian.PutUint64(d[24:], e.Rows)
		binary.LittleEndian.PutUint32(d[32:], e.Dim)
		binary.LittleEndian.PutUint32(d[36:], crc32.ChecksumIEEE(e.Payload))
		copy(buf[offsets[i]:], e.Payload)
	}
	return buf, nil
}

// validateExtentShape checks per-kind length arithmetic with explicit
// overflow guards (rows and dim come from an untrusted directory).
func validateExtentShape(kind uint32, length, rows uint64, dim uint32) error {
	elem := uint64(0)
	switch kind {
	case ExtentVectors, ExtentIVFVecs, ExtentSQ8Params:
		elem = 4
	case ExtentSQ8Codes, ExtentIVFCodes:
		elem = 1
	case ExtentIDs:
		if dim != 0 || length%8 != 0 || rows != length/8 {
			return fmt.Errorf("id extent shape inconsistent (rows=%d dim=%d len=%d)", rows, dim, length)
		}
		return nil
	case ExtentAttr, ExtentCats:
		return nil // opaque blobs in their own Marshal format
	default:
		return fmt.Errorf("unknown extent kind %d", kind)
	}
	if dim == 0 {
		return fmt.Errorf("extent kind %d requires dim > 0", kind)
	}
	cells := rows * uint64(dim)
	if rows != 0 && cells/rows != uint64(dim) {
		return fmt.Errorf("extent rows*dim overflows (rows=%d dim=%d)", rows, dim)
	}
	want := cells * elem
	if want/elem != cells || want != length {
		return fmt.Errorf("extent length %d inconsistent with rows=%d dim=%d", length, rows, dim)
	}
	return nil
}

// DecodeSegmentFile parses an extent file image. Extents alias data. The
// directory is validated strictly — bad magic, truncated headers, entries
// whose offset/length overflow or escape the buffer, misaligned payloads
// and inconsistent per-kind shapes are all rejected — so a torn or
// corrupted file fails loudly at open instead of corrupting a scan.
func DecodeSegmentFile(data []byte) (*SegmentFile, error) {
	if len(data) < extentHdrSize {
		return nil, fmt.Errorf("colstore: extent file too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != extentMagic {
		return nil, fmt.Errorf("colstore: bad extent file magic %08x", binary.LittleEndian.Uint32(data[0:]))
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != extentVersion {
		return nil, fmt.Errorf("colstore: unsupported extent file version %d", v)
	}
	segID := int64(binary.LittleEndian.Uint64(data[8:]))
	count := binary.LittleEndian.Uint32(data[16:])
	if count > extentMaxCount {
		return nil, fmt.Errorf("colstore: extent count %d exceeds maximum", count)
	}
	dirEnd := extentHdrSize + extentEntrySize*int(count)
	if dirEnd > len(data) {
		return nil, fmt.Errorf("colstore: extent directory truncated (%d entries, %d bytes)", count, len(data))
	}
	sf := &SegmentFile{SegID: segID, Extents: make([]Extent, count)}
	for i := 0; i < int(count); i++ {
		d := data[extentHdrSize+extentEntrySize*i:]
		off := binary.LittleEndian.Uint64(d[8:])
		length := binary.LittleEndian.Uint64(d[16:])
		if off%extentAlign != 0 {
			return nil, fmt.Errorf("colstore: extent %d misaligned offset %d", i, off)
		}
		if off < uint64(dirEnd) || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("colstore: extent %d out of bounds (off=%d len=%d file=%d)", i, off, length, len(data))
		}
		e := Extent{
			Kind:    binary.LittleEndian.Uint32(d[0:]),
			Field:   binary.LittleEndian.Uint32(d[4:]),
			Rows:    binary.LittleEndian.Uint64(d[24:]),
			Dim:     binary.LittleEndian.Uint32(d[32:]),
			CRC:     binary.LittleEndian.Uint32(d[36:]),
			Payload: data[off : off+length : off+length],
			Off:     off,
		}
		if err := validateExtentShape(e.Kind, length, e.Rows, e.Dim); err != nil {
			return nil, fmt.Errorf("colstore: extent %d: %w", i, err)
		}
		sf.Extents[i] = e
	}
	return sf, nil
}

// WriteSegmentFile encodes and atomically writes a segment's extent file
// (temp file + fsync + rename, the same discipline as objstore.FS).
func WriteSegmentFile(path string, segID int64, extents []Extent) error {
	buf, err := EncodeSegmentFile(segID, extents)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, buf)
}

// WriteFileAtomic writes data to path with the temp + fsync + rename
// discipline. Callers that already hold an encoded extent image (e.g. the
// promotion path, which just fetched it from the cold tier) use this to
// avoid re-encoding.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".segx-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// MappedFile is an extent file opened through mmap (or a read-everything
// fallback on platforms without mmap). Extent payloads alias the mapping:
// the caller must keep the MappedFile open while any view is live.
type MappedFile struct {
	*SegmentFile
	data   []byte
	mapped bool
}

// OpenSegmentFile maps path and decodes its directory. The kernel is
// hinted for sequential access (scans walk extents front to back).
func OpenSegmentFile(path string) (*MappedFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < extentHdrSize {
		return nil, fmt.Errorf("colstore: extent file %s too short (%d bytes)", path, size)
	}
	if size > int64(maxMapSize) {
		return nil, fmt.Errorf("colstore: extent file %s too large to map (%d bytes)", path, size)
	}
	data, mapped, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("colstore: map %s: %w", path, err)
	}
	sf, err := DecodeSegmentFile(data)
	if err != nil {
		if mapped {
			_ = munmapFile(data)
		}
		return nil, fmt.Errorf("colstore: %s: %w", path, err)
	}
	mf := &MappedFile{SegmentFile: sf, data: data, mapped: mapped}
	mf.AdviseSequential()
	return mf, nil
}

// Size returns the byte length of the underlying file image.
func (m *MappedFile) Size() int { return len(m.data) }

// Bytes returns the whole file image (used to spill the file to objstore
// without re-reading it).
func (m *MappedFile) Bytes() []byte { return m.data }

// Close unmaps the file. All extent views become invalid.
func (m *MappedFile) Close() error {
	if m.data == nil {
		return nil
	}
	data, mapped := m.data, m.mapped
	m.data, m.SegmentFile = nil, nil
	if mapped {
		return munmapFile(data)
	}
	return nil
}

// AdviseSequential hints the kernel that the mapping will be read front to
// back, enabling aggressive readahead.
func (m *MappedFile) AdviseSequential() {
	if m.mapped {
		adviseSequential(m.data)
	}
}

// AdviseWillNeed hints the kernel to asynchronously fault in [off, off+n)
// — the sequential-prefetch hook: the block loader advises the next block
// while the current one is being scanned. Offsets are clamped and
// page-aligned internally.
func (m *MappedFile) AdviseWillNeed(off, n int) {
	if !m.mapped || n <= 0 || off >= len(m.data) {
		return
	}
	page := os.Getpagesize()
	start := off &^ (page - 1)
	end := off + n
	if end > len(m.data) {
		end = len(m.data)
	}
	adviseWillNeed(m.data[start:end])
}
