//go:build !unix

package colstore

import (
	"io"
	"os"
)

const maxMapSize = 1 << 31

// mmapFile on platforms without mmap reads the whole file into memory.
// Residency then degrades gracefully: files are RAM copies, demotion
// still frees them, and all alignment guarantees hold trivially.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func munmapFile(data []byte) error { return nil }

func adviseSequential(b []byte) {}

func adviseWillNeed(b []byte) {}
