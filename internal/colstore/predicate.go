package colstore

import (
	"fmt"

	"vectordb/internal/bitset"
)

// Pred is a boolean predicate over a segment's attribute columns. The
// compiler turns a Pred tree into a dense bitset over build positions so
// the filtered-search pushdown (Sec. 4.1 strategies B/D/E) can test
// membership with one word load instead of a map probe per row.
type Pred interface {
	// predNode is a marker; the compiler switches on the concrete type.
	predNode()
}

// RangePred matches rows whose numeric attribute Attr satisfies
// Lo ≤ value ≤ Hi (inclusive on both ends, like RangeRows).
type RangePred struct {
	Attr   int
	Lo, Hi int64
}

// InPred matches rows whose categorical attribute Cat equals any of
// Values (SQL IN over the inverted dictionary).
type InPred struct {
	Cat    int
	Values []string
}

// AndPred is the conjunction of its children; an empty conjunction is true.
type AndPred struct{ Preds []Pred }

// OrPred is the disjunction of its children; an empty disjunction is false.
type OrPred struct{ Preds []Pred }

// NotPred negates its child.
type NotPred struct{ Pred Pred }

func (RangePred) predNode() {}
func (InPred) predNode()    {}
func (AndPred) predNode()   {}
func (OrPred) predNode()    {}
func (NotPred) predNode()   {}

// PredColumns is the column access a segment exposes to the compiler.
// Columns store row IDs; PosOf maps a row ID back to its build position
// (the bit index every scan path agrees on). PosOf returning ok=false
// means the row is not in this segment (e.g. a cross-segment posting)
// and is skipped.
type PredColumns interface {
	Rows() int
	AttrColumn(attr int) *AttributeColumn
	CatColumn(cat int) *CategoricalColumn
	PosOf(row int64) (int32, bool)
}

// CompilePred evaluates p against cols into out, resized to cols.Rows().
// Leaves set bits straight from the zone-map range walk (RangeEach) or
// the dictionary postings; interior nodes combine children with the
// word-parallel bitset ops, using pooled scratch for siblings.
func CompilePred(p Pred, cols PredColumns, out *bitset.Bitset) error {
	out.Reset(cols.Rows())
	return compilePred(p, cols, out)
}

// compilePred fills out (already sized and zeroed) with p's matches.
func compilePred(p Pred, cols PredColumns, out *bitset.Bitset) error {
	switch p := p.(type) {
	case RangePred:
		col := cols.AttrColumn(p.Attr)
		if col == nil {
			return fmt.Errorf("colstore: predicate references unknown attribute %d", p.Attr)
		}
		col.RangeEach(p.Lo, p.Hi, func(row int64) {
			if pos, ok := cols.PosOf(row); ok {
				out.Set(int(pos))
			}
		})
		return nil
	case InPred:
		col := cols.CatColumn(p.Cat)
		if col == nil {
			return fmt.Errorf("colstore: predicate references unknown categorical %d", p.Cat)
		}
		for _, v := range p.Values {
			for _, row := range col.Rows(v) {
				if pos, ok := cols.PosOf(row); ok {
					out.Set(int(pos))
				}
			}
		}
		return nil
	case AndPred:
		if len(p.Preds) == 0 {
			out.SetAll() // empty conjunction is true
			return nil
		}
		if err := compilePred(p.Preds[0], cols, out); err != nil {
			return err
		}
		scratch := bitset.Get(out.Len())
		defer bitset.Put(scratch)
		for _, child := range p.Preds[1:] {
			scratch.Reset(out.Len())
			if err := compilePred(child, cols, scratch); err != nil {
				return err
			}
			out.And(scratch)
		}
		return nil
	case OrPred:
		if len(p.Preds) == 0 {
			return nil // empty disjunction is false
		}
		if err := compilePred(p.Preds[0], cols, out); err != nil {
			return err
		}
		scratch := bitset.Get(out.Len())
		defer bitset.Put(scratch)
		for _, child := range p.Preds[1:] {
			scratch.Reset(out.Len())
			if err := compilePred(child, cols, scratch); err != nil {
				return err
			}
			out.Or(scratch)
		}
		return nil
	case NotPred:
		if err := compilePred(p.Pred, cols, out); err != nil {
			return err
		}
		out.Complement()
		return nil
	case nil:
		return fmt.Errorf("colstore: nil predicate")
	default:
		return fmt.Errorf("colstore: unknown predicate type %T", p)
	}
}

// EstimatePred returns an upper-bound match count without compiling —
// the selectivity input for the cost-based strategy D. Leaves use the
// columns' count paths (zone-map CountRange, posting lengths); And takes
// the tightest child, Or the capped sum, Not the complement of its
// child's bound. Unknown columns estimate as matching everything so the
// error surfaces at compile time, not planning time.
func EstimatePred(p Pred, cols PredColumns) int {
	rows := cols.Rows()
	switch p := p.(type) {
	case RangePred:
		col := cols.AttrColumn(p.Attr)
		if col == nil {
			return rows
		}
		return col.CountRange(p.Lo, p.Hi)
	case InPred:
		col := cols.CatColumn(p.Cat)
		if col == nil {
			return rows
		}
		n := col.Count(p.Values...)
		if n > rows {
			n = rows
		}
		return n
	case AndPred:
		est := rows
		for _, child := range p.Preds {
			if e := EstimatePred(child, cols); e < est {
				est = e
			}
		}
		return est
	case OrPred:
		est := 0
		for _, child := range p.Preds {
			est += EstimatePred(child, cols)
			if est >= rows {
				return rows
			}
		}
		return est
	case NotPred:
		return rows - EstimatePred(p.Pred, cols)
	default:
		return rows
	}
}
