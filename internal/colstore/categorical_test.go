package colstore

import (
	"testing"
	"testing/quick"
)

func TestCategoricalColumnBasics(t *testing.T) {
	values := []string{"shirt", "shoe", "shirt", "hat", "shoe", "shirt"}
	c := BuildCategoricalColumn(values, nil)
	if c.Len() != 6 || c.Cardinality() != 3 {
		t.Fatalf("len=%d card=%d", c.Len(), c.Cardinality())
	}
	got := c.Values()
	want := []string{"hat", "shirt", "shoe"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v", got)
		}
	}
	rows := c.Rows("shirt")
	if len(rows) != 3 || rows[0] != 0 || rows[1] != 2 || rows[2] != 5 {
		t.Fatalf("Rows(shirt) = %v", rows)
	}
	if c.Count("shirt", "hat") != 4 {
		t.Fatalf("Count = %d", c.Count("shirt", "hat"))
	}
	bm := c.Bitmap("shoe", "hat")
	if len(bm) != 3 {
		t.Fatalf("Bitmap = %v", bm)
	}
	if c.Rows("missing") != nil {
		t.Fatal("missing value returned postings")
	}
}

func TestCategoricalCustomIDs(t *testing.T) {
	c := BuildCategoricalColumn([]string{"a", "b", "a"}, []int64{10, 20, 30})
	rows := c.Rows("a")
	if len(rows) != 2 || rows[0] != 10 || rows[1] != 30 {
		t.Fatalf("Rows = %v", rows)
	}
}

func TestCategoricalMarshalRoundTrip(t *testing.T) {
	values := []string{"x", "", "日本語", "x"}
	c := BuildCategoricalColumn(values, []int64{4, 3, 2, 1})
	c2, err := UnmarshalCategoricalColumn(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() || c2.Cardinality() != c.Cardinality() {
		t.Fatalf("shape: %d/%d vs %d/%d", c2.Len(), c2.Cardinality(), c.Len(), c.Cardinality())
	}
	for _, v := range c.Values() {
		a, b := c.Rows(v), c2.Rows(v)
		if len(a) != len(b) {
			t.Fatalf("postings for %q differ", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("postings for %q differ at %d", v, i)
			}
		}
	}
	if _, err := UnmarshalCategoricalColumn([]byte{1, 2}); err == nil {
		t.Error("short blob accepted")
	}
	b := c.Marshal()
	b[0] ^= 0xFF
	if _, err := UnmarshalCategoricalColumn(b); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestStringsRoundTrip(t *testing.T) {
	f := func(values []string) bool {
		got, err := UnmarshalStrings(MarshalStrings(values))
		if err != nil || len(got) != len(values) {
			return false
		}
		for i := range values {
			if got[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	if _, err := UnmarshalStrings([]byte{1}); err == nil {
		t.Error("short strings blob accepted")
	}
	b := MarshalStrings([]string{"abc"})
	if _, err := UnmarshalStrings(b[:len(b)-1]); err == nil {
		t.Error("truncated strings blob accepted")
	}
	if _, err := UnmarshalStrings(append(b, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
