package gpu

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func testCfg() Config {
	return Config{
		MemBytes:         1000,
		PCIeBandwidth:    1e6, // 1 byte/µs
		PCIeLatency:      time.Millisecond,
		KernelThroughput: 1e9,
		MaxKernelK:       4,
	}
}

func TestEnsureResidentChargesOnlyMisses(t *testing.T) {
	d := NewDevice(0, testCfg())
	tb, err := d.EnsureResident([]string{"a"}, []int64{100})
	if err != nil || tb != 100 {
		t.Fatalf("first transfer: %d, %v", tb, err)
	}
	c1 := d.Clock()
	if c1 < time.Millisecond {
		t.Fatalf("clock %v did not include latency", c1)
	}
	tb, err = d.EnsureResident([]string{"a"}, []int64{100})
	if err != nil || tb != 0 {
		t.Fatalf("warm hit transferred %d, %v", tb, err)
	}
	if d.Clock() != c1 {
		t.Fatal("warm hit advanced the clock")
	}
}

func TestMultiBucketCopyAmortizesLatency(t *testing.T) {
	grouped := NewDevice(0, testCfg())
	keys := []string{"b1", "b2", "b3", "b4"}
	sizes := []int64{50, 50, 50, 50}
	if _, err := grouped.EnsureResident(keys, sizes); err != nil {
		t.Fatal(err)
	}
	oneByOne := NewDevice(1, testCfg())
	for i := range keys {
		if _, err := oneByOne.EnsureResident(keys[i:i+1], sizes[i:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	// Same bytes, but 4 latency charges vs 1: grouped must be 3 ms faster.
	diff := oneByOne.Clock() - grouped.Clock()
	if diff != 3*time.Millisecond {
		t.Fatalf("latency amortization = %v, want 3ms", diff)
	}
	gc, gb := grouped.Stats()
	oc, ob := oneByOne.Stats()
	if gc != 1 || oc != 4 || gb != 200 || ob != 200 {
		t.Fatalf("stats grouped=(%d,%d) oneByOne=(%d,%d)", gc, gb, oc, ob)
	}
}

func TestLRUEviction(t *testing.T) {
	d := NewDevice(0, testCfg()) // 1000 bytes
	for i := 0; i < 3; i++ {
		if _, err := d.EnsureResident([]string{fmt.Sprintf("s%d", i)}, []int64{400}); err != nil {
			t.Fatal(err)
		}
	}
	// s0 is LRU and must have been evicted to fit s2.
	if d.Resident("s0") {
		t.Fatal("s0 not evicted")
	}
	if !d.Resident("s1") || !d.Resident("s2") {
		t.Fatal("recent entries evicted")
	}
	if d.ResidentBytes() != 800 {
		t.Fatalf("ResidentBytes = %d, want 800", d.ResidentBytes())
	}
	// Touch s1 then add s3: s2 becomes the victim.
	if _, err := d.EnsureResident([]string{"s1"}, []int64{400}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EnsureResident([]string{"s3"}, []int64{400}); err != nil {
		t.Fatal(err)
	}
	if d.Resident("s2") || !d.Resident("s1") || !d.Resident("s3") {
		t.Fatal("LRU order violated")
	}
}

func TestOversizeEntryRejected(t *testing.T) {
	d := NewDevice(0, testCfg())
	if _, err := d.EnsureResident([]string{"huge"}, []int64{2000}); err == nil {
		t.Fatal("entry larger than device memory accepted")
	}
}

func TestEvictAndReset(t *testing.T) {
	d := NewDevice(0, testCfg())
	d.EnsureResident([]string{"x"}, []int64{10})
	d.Evict("x")
	if d.Resident("x") || d.ResidentBytes() != 0 {
		t.Fatal("Evict failed")
	}
	d.ResetClock()
	if d.Clock() != 0 {
		t.Fatal("ResetClock failed")
	}
	c, b := d.Stats()
	if c != 0 || b != 0 {
		t.Fatal("ResetClock did not clear stats")
	}
}

func TestKernelCost(t *testing.T) {
	d := NewDevice(0, testCfg())
	d.RunKernel(1e9) // 1 second of work at 1e9 dims/s
	if got := d.Clock(); got != time.Second {
		t.Fatalf("Clock = %v, want 1s", got)
	}
	d.RunKernel(0)
	d.RunKernel(-5)
	if got := d.Clock(); got != time.Second {
		t.Fatalf("zero/negative kernels changed clock: %v", got)
	}
}

func TestSchedulerStickyAndLeastLoaded(t *testing.T) {
	s := NewScheduler()
	if _, err := s.Assign("seg"); err == nil {
		t.Fatal("empty scheduler assigned a device")
	}
	d0 := NewDevice(0, testCfg())
	d1 := NewDevice(1, testCfg())
	if err := s.AddDevice(d0); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDevice(d0); err == nil {
		t.Fatal("duplicate device accepted")
	}
	if err := s.AddDevice(d1); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Assign("segA")
	a.RunKernel(5e9) // load it up
	b, _ := s.Assign("segB")
	if b.ID() == a.ID() {
		t.Fatal("least-loaded assignment failed")
	}
	// Sticky: segA goes back to its device even though it is busier.
	again, _ := s.Assign("segA")
	if again.ID() != a.ID() {
		t.Fatal("sticky assignment failed")
	}
	// Remove a's device: segA reassigns elsewhere.
	if err := s.RemoveDevice(a.ID()); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveDevice(a.ID()); err == nil {
		t.Fatal("double remove accepted")
	}
	re, _ := s.Assign("segA")
	if re.ID() != b.ID() {
		t.Fatal("segment not reassigned after device removal")
	}
	if s.Devices() != 1 {
		t.Fatalf("Devices = %d, want 1", s.Devices())
	}
	re.RunKernel(1e6)
	if s.MaxClock() <= 0 {
		t.Fatal("MaxClock not positive after kernels ran")
	}
}

func TestElasticAddPicksUpNextTask(t *testing.T) {
	s := NewScheduler()
	d0 := NewDevice(0, testCfg())
	s.AddDevice(d0)
	d0.RunKernel(1e9)
	// A freshly installed device must receive the next new segment.
	d1 := NewDevice(1, testCfg())
	s.AddDevice(d1)
	got, _ := s.Assign("fresh-seg")
	if got.ID() != 1 {
		t.Fatalf("new device not used: got %d", got.ID())
	}
}

func TestTopKLargeKMultiRound(t *testing.T) {
	d := NewDevice(0, testCfg()) // MaxKernelK = 4
	r := rand.New(rand.NewSource(1))
	n := 100
	ids := make([]int64, n)
	dists := make([]float32, n)
	for i := range ids {
		ids[i] = int64(i)
		dists[i] = r.Float32()
	}
	for _, k := range []int{1, 3, 4, 5, 17, 100, 200} {
		got := d.TopKLargeK(ids, dists, k)
		want := append([]float32(nil), dists...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		wantN := k
		if wantN > n {
			wantN = n
		}
		if len(got) != wantN {
			t.Fatalf("k=%d: %d results, want %d", k, len(got), wantN)
		}
		for i, res := range got {
			if res.Distance != want[i] {
				t.Fatalf("k=%d: result %d = %v, want %v", k, i, res.Distance, want[i])
			}
		}
		// no duplicates
		seen := map[int64]struct{}{}
		for _, res := range got {
			if _, dup := seen[res.ID]; dup {
				t.Fatalf("k=%d: duplicate id %d", k, res.ID)
			}
			seen[res.ID] = struct{}{}
		}
	}
}

func TestTopKLargeKEqualDistances(t *testing.T) {
	// Many vectors tied at the same distance: the round protocol records
	// tied IDs so distinct-but-equal vectors are neither lost nor repeated.
	d := NewDevice(0, testCfg()) // MaxKernelK = 4
	n := 20
	ids := make([]int64, n)
	dists := make([]float32, n)
	for i := range ids {
		ids[i] = int64(i)
		dists[i] = 1.0 // all tied
	}
	got := d.TopKLargeK(ids, dists, 10)
	if len(got) != 10 {
		t.Fatalf("%d results, want 10", len(got))
	}
	seen := map[int64]struct{}{}
	for _, r := range got {
		if r.Distance != 1.0 {
			t.Fatalf("distance %v, want 1.0", r.Distance)
		}
		if _, dup := seen[r.ID]; dup {
			t.Fatalf("duplicate id %d", r.ID)
		}
		seen[r.ID] = struct{}{}
	}
}

func TestTopKLargeKEdgeCases(t *testing.T) {
	d := NewDevice(0, testCfg())
	if got := d.TopKLargeK(nil, nil, 5); got != nil {
		t.Fatalf("empty pool returned %v", got)
	}
	if got := d.TopKLargeK([]int64{1}, []float32{2}, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestCPUModelCost(t *testing.T) {
	m := CPUModel{DistThroughput: 1e9}
	if got := m.Cost(1e9); got != time.Second {
		t.Fatalf("Cost = %v, want 1s", got)
	}
	if got := m.Cost(0); got != 0 {
		t.Fatalf("Cost(0) = %v", got)
	}
	def := DefaultCPUModel()
	if def.DistThroughput <= 0 {
		t.Fatal("default CPU model empty")
	}
}

func TestSchedulerDeviceAccessor(t *testing.T) {
	s := NewScheduler()
	d := NewDevice(7, testCfg())
	s.AddDevice(d)
	got, ok := s.Device(7)
	if !ok || got != d {
		t.Fatalf("Device(7) = %v, %v", got, ok)
	}
	if _, ok := s.Device(99); ok {
		t.Fatal("missing device resolved")
	}
}
