// Package gpu models the GPU engine of Sec. 3.3/3.4 in software. Real GPUs
// are unavailable in this environment (see DESIGN.md §1), so a Device tracks
// the two quantities that drive the paper's GPU results on a virtual clock:
//
//   - PCIe transfers: moving a byte range into device memory costs
//     latency + bytes/bandwidth, and device memory is a finite LRU-managed
//     pool, so data that does not fit is re-transferred ("loading buckets on
//     the fly"). Multi-bucket batched copies amortize the per-transfer
//     latency, reproducing the paper's under-utilized-PCIe observation.
//
//   - Kernels: a kernel over W distance-dimension units advances the clock
//     by W/KernelThroughput. Device throughput is configured relative to
//     host-CPU throughput, standing in for the T4's parallelism.
//
// The virtual clock makes the experiments deterministic and hardware
// independent; results (actual top-k values) are always computed exactly on
// the host, the model only prices the plan.
package gpu

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"vectordb/internal/obs"
)

// Config describes one simulated GPU device. Defaults approximate the
// paper's Tesla T4 testbed with the *measured* (not theoretical) PCIe rate.
type Config struct {
	MemBytes         int64         // global memory; default 16 GiB
	PCIeBandwidth    float64       // bytes/sec for device copies; default 1.5 GB/s (paper's measured 1~2 GB/s)
	PCIeLatency      time.Duration // fixed per-copy setup cost; default 30 µs
	KernelThroughput float64       // distance-dims/sec; default 20e9
	MaxKernelK       int           // shared-memory top-k bound per launch; default 1024 (Sec. 3.3)
	// Obs, when set, receives per-device transfer/kernel counters
	// (vectordb_gpu_* series labeled device="<id>").
	Obs *obs.Registry
}

func (c *Config) defaults() {
	if c.MemBytes <= 0 {
		c.MemBytes = 16 << 30
	}
	if c.PCIeBandwidth <= 0 {
		c.PCIeBandwidth = 1.5e9
	}
	if c.PCIeLatency <= 0 {
		c.PCIeLatency = 30 * time.Microsecond
	}
	if c.KernelThroughput <= 0 {
		// ~2× the DefaultCPUModel aggregate rate: the T4's parallel
		// advantage on distance kernels, net of launch overheads.
		c.KernelThroughput = 6.4e10
	}
	if c.MaxKernelK <= 0 {
		c.MaxKernelK = 1024
	}
}

// Device is one simulated GPU.
type Device struct {
	id  int
	cfg Config

	mu       sync.Mutex
	clock    time.Duration // accumulated modeled busy time
	used     int64
	resident map[string]*residentEntry
	lruSeq   int64
	xfers    int64 // number of PCIe copy operations
	xferred  int64 // bytes moved over PCIe

	xferC      *obs.Counter // PCIe copies
	xferBytesC *obs.Counter // PCIe bytes
	kernelC    *obs.Counter // kernel launches
	kernelDims *obs.Counter // distance-dims executed
}

type residentEntry struct {
	bytes int64
	seq   int64
}

// NewDevice creates a device with the given id and configuration.
func NewDevice(id int, cfg Config) *Device {
	cfg.defaults()
	lbl := strconv.Itoa(id)
	return &Device{
		id: id, cfg: cfg, resident: map[string]*residentEntry{},
		xferC:      cfg.Obs.Counter("vectordb_gpu_transfers_total", "device", lbl),
		xferBytesC: cfg.Obs.Counter("vectordb_gpu_transfer_bytes_total", "device", lbl),
		kernelC:    cfg.Obs.Counter("vectordb_gpu_kernels_total", "device", lbl),
		kernelDims: cfg.Obs.Counter("vectordb_gpu_kernel_dims_total", "device", lbl),
	}
}

// ID returns the device id.
func (d *Device) ID() int { return d.id }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Clock returns the modeled busy time accumulated so far.
func (d *Device) Clock() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock
}

// ResetClock zeroes the modeled clock and transfer counters (memory
// residency is preserved — warm cache across experiment phases).
func (d *Device) ResetClock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock, d.xfers, d.xferred = 0, 0, 0
}

// Stats reports transfer counters.
func (d *Device) Stats() (copies int64, bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.xfers, d.xferred
}

// ResidentBytes reports current device-memory occupancy.
func (d *Device) ResidentBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Resident reports whether key is in device memory.
func (d *Device) Resident(key string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.resident[key]
	return ok
}

// EnsureResident makes the keyed byte ranges resident, charging one PCIe
// copy for the whole set of misses (the multi-bucket copy of Sec. 3.4; pass
// buckets one at a time to model Faiss's bucket-by-bucket behaviour).
// Evicts least-recently-used entries when memory is full. Returns the bytes
// actually transferred. It is an error for a single entry to exceed device
// memory.
func (d *Device) EnsureResident(keys []string, sizes []int64) (int64, error) {
	if len(keys) != len(sizes) {
		return 0, fmt.Errorf("gpu: %d keys but %d sizes", len(keys), len(sizes))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var missBytes int64
	for i, k := range keys {
		if sizes[i] > d.cfg.MemBytes {
			return 0, fmt.Errorf("gpu: entry %q (%d bytes) exceeds device memory (%d bytes)", k, sizes[i], d.cfg.MemBytes)
		}
		if e, ok := d.resident[k]; ok {
			d.lruSeq++
			e.seq = d.lruSeq
			continue
		}
		missBytes += sizes[i]
	}
	if missBytes == 0 {
		return 0, nil
	}
	for i, k := range keys {
		if _, ok := d.resident[k]; ok {
			continue
		}
		d.evictFor(sizes[i])
		d.lruSeq++
		d.resident[k] = &residentEntry{bytes: sizes[i], seq: d.lruSeq}
		d.used += sizes[i]
	}
	d.clock += d.cfg.PCIeLatency + time.Duration(float64(missBytes)/d.cfg.PCIeBandwidth*float64(time.Second))
	d.xfers++
	d.xferred += missBytes
	d.xferC.Inc()
	d.xferBytesC.Add(missBytes)
	return missBytes, nil
}

// evictFor frees memory (LRU) until need bytes fit. Caller holds mu.
func (d *Device) evictFor(need int64) {
	for d.used+need > d.cfg.MemBytes {
		var victim string
		var oldest int64 = 1<<63 - 1
		for k, e := range d.resident {
			if e.seq < oldest {
				oldest, victim = e.seq, k
			}
		}
		if victim == "" {
			return
		}
		d.used -= d.resident[victim].bytes
		delete(d.resident, victim)
	}
}

// Evict removes a key from device memory (segment dropped after a merge).
func (d *Device) Evict(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.resident[key]; ok {
		d.used -= e.bytes
		delete(d.resident, key)
	}
}

// RunKernel charges a kernel over distDims distance-dimension units (one
// unit = one float multiply-accumulate of a distance computation).
func (d *Device) RunKernel(distDims int64) {
	if distDims <= 0 {
		return
	}
	d.mu.Lock()
	d.clock += time.Duration(float64(distDims) / d.cfg.KernelThroughput * float64(time.Second))
	d.mu.Unlock()
	d.kernelC.Inc()
	d.kernelDims.Add(distDims)
}

// CPUModel prices the same work units on the host CPU so that plans
// executed on different processors are comparable on one virtual timescale
// (Fig. 13 compares pure CPU, pure GPU and SQ8H).
type CPUModel struct {
	// DistThroughput is host distance-dims/sec across all cores; the paper's
	// 16-vCPU Cascade Lake with AVX512 sustains roughly 2e9 dims/s/core.
	DistThroughput float64
}

// DefaultCPUModel approximates the paper's ecs.g6e.4xlarge instance.
func DefaultCPUModel() CPUModel { return CPUModel{DistThroughput: 3.2e10} }

// Cost prices distDims units of distance work on the CPU.
func (m CPUModel) Cost(distDims int64) time.Duration {
	if distDims <= 0 {
		return 0
	}
	return time.Duration(float64(distDims) / m.DistThroughput * float64(time.Second))
}
