package gpu

import (
	"sort"

	"vectordb/internal/topk"
)

// TopKLargeK implements the round-by-round large-k retrieval of Sec. 3.3.
// A real GPU kernel can only return MaxKernelK (1024) results per launch due
// to shared-memory limits; for k up to 16384 Milvus runs multiple rounds:
// each round takes the next MaxKernelK results, remembering the previous
// round's worst distance dl and the IDs tied at dl, and filters out anything
// already returned (distance < dl, or distance == dl with a recorded ID).
//
// ids/dists are the candidate pool computed by the scan kernel; the device
// is charged one kernel pass over the remaining pool per round.
func (d *Device) TopKLargeK(ids []int64, dists []float32, k int) []topk.Result {
	if k <= 0 || len(ids) == 0 {
		return nil
	}
	if k > len(ids) {
		k = len(ids)
	}
	maxK := d.cfg.MaxKernelK
	out := make([]topk.Result, 0, k)
	var dl float32
	tied := map[int64]struct{}{}
	first := true
	for len(out) < k {
		need := k - len(out)
		if need > maxK {
			need = maxK
		}
		// One kernel launch: selection over the pool. Charge pool size.
		d.RunKernel(int64(len(ids)))
		h := topk.GetHeap(need)
		for i, id := range ids {
			dist := dists[i]
			if !first {
				if dist < dl {
					continue // already returned in an earlier round
				}
				if dist == dl {
					if _, dup := tied[id]; dup {
						continue
					}
				}
			}
			h.Push(id, dist)
		}
		round := h.Results()
		topk.PutHeap(h)
		if len(round) == 0 {
			break // pool exhausted
		}
		out = append(out, round...)
		newDl := round[len(round)-1].Distance
		if first || newDl != dl {
			dl = newDl
			tied = map[int64]struct{}{}
		}
		// Record every returned ID tied at the new dl so the next round can
		// exclude them without excluding distinct vectors at equal distance.
		for _, r := range out {
			if r.Distance == dl {
				tied[r.ID] = struct{}{}
			}
		}
		first = false
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	return out
}
