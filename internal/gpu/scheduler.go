package gpu

import (
	"fmt"
	"sync"
)

// Scheduler implements the segment-based multi-GPU scheduling of Sec. 3.3:
// users select any number of devices at runtime (not compile time), each
// segment-level search task is served by exactly one device, and new tasks
// go to the least-loaded device — so an elastically added GPU immediately
// picks up the next task.
type Scheduler struct {
	mu      sync.Mutex
	devices map[int]*Device
	// sticky maps a segment key to the device currently holding it, so a
	// segment's data is not duplicated across devices.
	sticky map[string]int
}

// NewScheduler creates an empty scheduler; add devices with AddDevice.
func NewScheduler() *Scheduler {
	return &Scheduler{devices: map[int]*Device{}, sticky: map[string]int{}}
}

// AddDevice registers a device at runtime. Duplicate ids are an error.
func (s *Scheduler) AddDevice(d *Device) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.devices[d.ID()]; dup {
		return fmt.Errorf("gpu: device %d already registered", d.ID())
	}
	s.devices[d.ID()] = d
	return nil
}

// RemoveDevice deregisters a device (elastic scale-down); its sticky
// segments are released so other devices can claim them.
func (s *Scheduler) RemoveDevice(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.devices[id]; !ok {
		return fmt.Errorf("gpu: device %d not registered", id)
	}
	delete(s.devices, id)
	for seg, dev := range s.sticky {
		if dev == id {
			delete(s.sticky, seg)
		}
	}
	return nil
}

// Devices returns the number of registered devices.
func (s *Scheduler) Devices() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.devices)
}

// Device returns a registered device by id.
func (s *Scheduler) Device(id int) (*Device, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devices[id]
	return d, ok
}

// Assign picks the device to serve a search task on the given segment:
// the segment's sticky device if still present, otherwise the device with
// the smallest modeled clock (least loaded), which becomes sticky.
func (s *Scheduler) Assign(segment string) (*Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.devices) == 0 {
		return nil, fmt.Errorf("gpu: no devices available")
	}
	if id, ok := s.sticky[segment]; ok {
		if d, live := s.devices[id]; live {
			return d, nil
		}
		delete(s.sticky, segment)
	}
	var best *Device
	for _, d := range s.devices {
		if best == nil || d.Clock() < best.Clock() || (d.Clock() == best.Clock() && d.ID() < best.ID()) {
			best = d
		}
	}
	s.sticky[segment] = best.ID()
	return best, nil
}

// Resident reports whether the segment's sticky device currently holds
// its data — the planner's residency signal: a warm segment amortizes the
// PCIe copy away, a cold one must pay it before the kernel runs.
func (s *Scheduler) Resident(segment string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.sticky[segment]
	if !ok {
		return false
	}
	d, live := s.devices[id]
	return live && d.Resident(segment)
}

// MaxClock returns the largest device clock — the modeled makespan of work
// spread across the devices.
func (s *Scheduler) MaxClock() (max int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.devices {
		if c := int64(d.Clock()); c > max {
			max = c
		}
	}
	return max
}
