package vec

import (
	"math"
	"math/bits"
)

// Binary vectors travel through the engine bit-packed inside []float32
// storage: each float32 carries one 32-bit word of the fingerprint
// (bit-preserving — the words are never used arithmetically). This lets
// Hamming/Jaccard/Tanimoto collections reuse the entire columnar/LSM/index
// machinery built for float vectors; Metric.Dist dispatches to the
// word-wise distances below for binary metrics.

// WordsForBits returns the float32-word count that holds nbits bits.
func WordsForBits(nbits int) int { return (nbits + 31) / 32 }

// FloatsFromBinary packs a BinaryVector into float32 words of the given
// word count.
func FloatsFromBinary(v BinaryVector, words int) []float32 {
	out := make([]float32, words)
	for i := range out {
		w64 := i / 2
		var w32 uint32
		if w64 < len(v) {
			if i%2 == 0 {
				w32 = uint32(v[w64])
			} else {
				w32 = uint32(v[w64] >> 32)
			}
		}
		out[i] = math.Float32frombits(w32)
	}
	return out
}

// BinaryFromFloats reverses FloatsFromBinary.
func BinaryFromFloats(f []float32) BinaryVector {
	v := NewBinaryVector(len(f) * 32)
	for i, x := range f {
		w32 := uint64(math.Float32bits(x))
		if i%2 == 0 {
			v[i/2] |= w32
		} else {
			v[i/2] |= w32 << 32
		}
	}
	return v
}

// hammingFloats counts differing bits of two packed vectors.
func hammingFloats(a, b []float32) float32 {
	n := 0
	for i := range a {
		n += bits.OnesCount32(math.Float32bits(a[i]) ^ math.Float32bits(b[i]))
	}
	return float32(n)
}

// jaccardFloats is 1 - |a∧b|/|a∨b| over packed vectors.
func jaccardFloats(a, b []float32) float32 {
	var inter, union int
	for i := range a {
		x, y := math.Float32bits(a[i]), math.Float32bits(b[i])
		inter += bits.OnesCount32(x & y)
		union += bits.OnesCount32(x | y)
	}
	if union == 0 {
		return 0
	}
	return 1 - float32(inter)/float32(union)
}

// tanimotoFloats is 1 - |a∧b|/(|a|+|b|-|a∧b|) over packed vectors.
func tanimotoFloats(a, b []float32) float32 {
	var inter, ca, cb int
	for i := range a {
		x, y := math.Float32bits(a[i]), math.Float32bits(b[i])
		inter += bits.OnesCount32(x & y)
		ca += bits.OnesCount32(x)
		cb += bits.OnesCount32(y)
	}
	den := ca + cb - inter
	if den == 0 {
		return 0
	}
	return 1 - float32(inter)/float32(den)
}
