package vec

// Real SIMD on amd64. The paper's Sec. 3.2.2 compiles every similarity
// function four times (SSE/AVX/AVX2/AVX512) and hooks the variant matching
// the host's CPUID flags at startup. This file is that mechanism for the
// batch entry points: hand-written AVX2+FMA and AVX-512 kernels (see
// asm_amd64.s) are installed into the kernel table for the AVX2/AVX512
// tiers when — and only when — CPUID and XCR0 report the host supports
// them. Every other tier, and every other architecture, keeps the
// register-blocked pure-Go kernels, which double as the reference
// implementation the asm is fuzz-tested against.
//
// The pairwise (single-distance) kernels intentionally stay in Go: a call
// per row cannot amortize the vector setup/reduction anyway, which is the
// whole argument for blocked scans.

//go:noescape
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func l2BatchFMA(q, data, out *float32, dim, n int)

//go:noescape
func ipBatchFMA(q, data, out *float32, dim, n int)

//go:noescape
func l2BatchZ(q, data, out *float32, dim, n int)

//go:noescape
func ipBatchZ(q, data, out *float32, dim, n int)

// haveAVX2FMA / haveAVX512 report actual host support (instruction sets
// present and the OS saving the extended register state).
var haveAVX2FMA, haveAVX512 = detectx86()

func detectx86() (avx2fma, avx512 bool) {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false, false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 || c1&fmaBit == 0 {
		return false, false
	}
	xlo, _ := xgetbv0()
	if xlo&0x06 != 0x06 { // XMM + YMM state enabled in XCR0
		return false, false
	}
	_, b7, _, _ := cpuidex(7, 0)
	const (
		avx2Bit    = 1 << 5
		avx512fBit = 1 << 16
	)
	avx2fma = b7&avx2Bit != 0
	avx512 = b7&avx512fBit != 0 && xlo&0xe0 == 0xe0 // opmask + ZMM state
	return avx2fma, avx512
}

// installASMKernels swaps the SIMD batch kernels into the tier table for
// the tiers the host can actually run. Called from the package init before
// the first SetLevel, so both the hooked path and the explicit At-variants
// (and with them every tier-equivalence test) see the asm kernels.
func installASMKernels() {
	if haveAVX2FMA {
		kernels[LevelAVX2].l2b = l2BatchAVX2
		kernels[LevelAVX2].ipb = ipBatchAVX2
		kernels[LevelAVX2].l2bb = l2BoundAVX2
		kernels[LevelAVX2].l2t = l2TileAVX2
		kernels[LevelAVX2].ipt = ipTileAVX2
	}
	switch {
	case haveAVX512:
		kernels[LevelAVX512].l2b = l2BatchAVX512
		kernels[LevelAVX512].ipb = ipBatchAVX512
		kernels[LevelAVX512].l2bb = l2BoundAVX512
		kernels[LevelAVX512].l2t = l2TileAVX512
		kernels[LevelAVX512].ipt = ipTileAVX512
	case haveAVX2FMA:
		// Widest-tier requests on an AVX2-only host still get vector code.
		kernels[LevelAVX512].l2b = l2BatchAVX2
		kernels[LevelAVX512].ipb = ipBatchAVX2
		kernels[LevelAVX512].l2bb = l2BoundAVX2
		kernels[LevelAVX512].l2t = l2TileAVX2
		kernels[LevelAVX512].ipt = ipTileAVX2
	}
}

// bestLevelForHost maps the detected features to a dispatch tier.
func bestLevelForHost() Level {
	switch {
	case haveAVX512:
		return LevelAVX512
	case haveAVX2FMA:
		return LevelAVX2
	default:
		// Pre-AVX2 x86: the pure-Go 8-wide tier is safe everywhere.
		return LevelAVX
	}
}

func l2BatchAVX2(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	if n == 0 {
		return
	}
	_, _ = q[dim-1], out[n-1] // bounds hints; the asm trusts these lengths
	l2BatchFMA(&q[0], &data[0], &out[0], dim, n)
}

func ipBatchAVX2(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	if n == 0 {
		return
	}
	_, _ = q[dim-1], out[n-1]
	ipBatchFMA(&q[0], &data[0], &out[0], dim, n)
}

func l2BatchAVX512(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	if n == 0 {
		return
	}
	_, _ = q[dim-1], out[n-1]
	l2BatchZ(&q[0], &data[0], &out[0], dim, n)
}

func ipBatchAVX512(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	if n == 0 {
		return
	}
	_, _ = q[dim-1], out[n-1]
	ipBatchZ(&q[0], &data[0], &out[0], dim, n)
}

// l2BoundAVX2/l2BoundAVX512 satisfy the bound-kernel contract (rows below
// the bound exact, rows at or above it reported >= bound) by computing
// every row exactly: with FMA vectors a full 128-dim row costs less than
// the scalar early-abandon bookkeeping, so abandonment only pays on the
// pure-Go tiers, which keep it.
func l2BoundAVX2(q, data []float32, dim int, _ float32, out []float32) {
	l2BatchAVX2(q, data, dim, out)
}

func l2BoundAVX512(q, data []float32, dim int, _ float32, out []float32) {
	l2BatchAVX512(q, data, dim, out)
}

// The tile entry points run the one-query batch kernel per query of the
// group: the cache reuse the tile exists for happens at the caller's block
// granularity (the block stays resident across the query loop), and per
// query the asm kernel already saturates the FMA ports.
func l2TileAVX2(qs, data []float32, dim, nq int, out []float32) {
	n := len(data) / dim
	if n == 0 {
		return
	}
	for qi := 0; qi < nq; qi++ {
		l2BatchAVX2(qs[qi*dim:(qi+1)*dim], data, dim, out[qi*n:(qi+1)*n])
	}
}

func ipTileAVX2(qs, data []float32, dim, nq int, out []float32) {
	n := len(data) / dim
	if n == 0 {
		return
	}
	for qi := 0; qi < nq; qi++ {
		ipBatchAVX2(qs[qi*dim:(qi+1)*dim], data, dim, out[qi*n:(qi+1)*n])
	}
}

func l2TileAVX512(qs, data []float32, dim, nq int, out []float32) {
	n := len(data) / dim
	if n == 0 {
		return
	}
	for qi := 0; qi < nq; qi++ {
		l2BatchAVX512(qs[qi*dim:(qi+1)*dim], data, dim, out[qi*n:(qi+1)*n])
	}
}

func ipTileAVX512(qs, data []float32, dim, nq int, out []float32) {
	n := len(data) / dim
	if n == 0 {
		return
	}
	for qi := 0; qi < nq; qi++ {
		ipBatchAVX512(qs[qi*dim:(qi+1)*dim], data, dim, out[qi*n:(qi+1)*n])
	}
}
