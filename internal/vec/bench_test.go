package vec

import (
	"math"
	"math/rand"
	"testing"
)

// Kernel microbenchmarks at the Fig. 8 operating point (dim 128). The
// pairwise loop is the pre-blocking baseline every batch kernel is
// measured against; cmd/benchkernels drives the same shapes to produce
// BENCH_kernels.json.

func benchData(n, dim int) (q, data []float32) {
	r := rand.New(rand.NewSource(71))
	q = make([]float32, dim)
	data = make([]float32, n*dim)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	for i := range data {
		data[i] = float32(r.NormFloat64())
	}
	return q, data
}

const benchDim = 128
const benchRowsN = 4096

func BenchmarkL2Pairwise(b *testing.B) {
	q, data := benchData(benchRowsN, benchDim)
	out := make([]float32, benchRowsN)
	b.SetBytes(int64(benchRowsN * benchDim * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < benchRowsN; r++ {
			out[r] = L2Squared(q, data[r*benchDim:(r+1)*benchDim])
		}
	}
}

func BenchmarkL2Batch(b *testing.B) {
	q, data := benchData(benchRowsN, benchDim)
	out := make([]float32, benchRowsN)
	b.SetBytes(int64(benchRowsN * benchDim * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L2SquaredBatch(q, data, benchDim, out)
	}
}

func BenchmarkL2BatchBound(b *testing.B) {
	q, data := benchData(benchRowsN, benchDim)
	out := make([]float32, benchRowsN)
	// A bound at roughly the distance median: about half the rows abandon.
	L2SquaredBatch(q, data, benchDim, out)
	cp := append([]float32(nil), out...)
	bound := medianOf(cp)
	b.SetBytes(int64(benchRowsN * benchDim * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L2SquaredBatchBound(q, data, benchDim, bound, out)
	}
}

// BenchmarkL2BatchBoundTight is the scan steady state: once a top-k heap
// is full its worst distance is near the distribution's low tail, so
// nearly every row abandons at the first abandonChunk checkpoint.
func BenchmarkL2BatchBoundTight(b *testing.B) {
	q, data := benchData(benchRowsN, benchDim)
	out := make([]float32, benchRowsN)
	L2SquaredBatch(q, data, benchDim, out)
	min := out[0]
	for _, v := range out {
		if v < min {
			min = v
		}
	}
	bound := min * 1.1
	b.SetBytes(int64(benchRowsN * benchDim * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L2SquaredBatchBound(q, data, benchDim, bound, out)
	}
}

func BenchmarkDotBatch(b *testing.B) {
	q, data := benchData(benchRowsN, benchDim)
	out := make([]float32, benchRowsN)
	b.SetBytes(int64(benchRowsN * benchDim * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotBatch(q, data, benchDim, out)
	}
}

func BenchmarkL2Tile4Queries(b *testing.B) {
	_, data := benchData(benchRowsN, benchDim)
	qs, _ := benchData(0, 4*benchDim)
	out := make([]float32, 4*benchRowsN)
	b.SetBytes(int64(4 * benchRowsN * benchDim * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L2SquaredTile(qs, data, benchDim, out)
	}
}

func medianOf(v []float32) float32 {
	// Selection by repeated halving is overkill for a benchmark setup;
	// a simple sort-free nth-element via counting against a pivot sweep.
	lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	for iter := 0; iter < 30; iter++ {
		mid := (lo + hi) / 2
		n := 0
		for _, x := range v {
			if x <= mid {
				n++
			}
		}
		if n < len(v)/2 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
