//go:build !amd64

package vec

import "runtime"

// Non-amd64 hosts run the pure-Go register-blocked kernels on every tier.

const haveAVX2FMA = false
const haveAVX512 = false

func installASMKernels() {}

func bestLevelForHost() Level {
	if runtime.GOARCH == "arm64" {
		// Wide NEON-class cores: the 16-wide unrolled Go tier wins.
		return LevelAVX512
	}
	return LevelSSE
}
