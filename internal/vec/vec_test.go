package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if math.Abs(a-b) <= eps {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return den > 0 && math.Abs(a-b)/den <= eps
}

func refL2(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func refDot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func randVec(r *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

func TestKernelTiersAgree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	levels := []Level{LevelScalar, LevelSSE, LevelAVX, LevelAVX2, LevelAVX512}
	for _, dim := range []int{1, 2, 3, 4, 7, 8, 15, 16, 17, 31, 32, 96, 128, 129} {
		a, b := randVec(r, dim), randVec(r, dim)
		wantL2 := refL2(a, b)
		wantIP := refDot(a, b)
		for _, l := range levels {
			gotL2 := float64(L2SquaredAt(l, a, b))
			gotIP := float64(DotAt(l, a, b))
			if !almostEqual(gotL2, wantL2, 1e-4) {
				t.Errorf("dim %d level %v: L2 = %v, want %v", dim, l, gotL2, wantL2)
			}
			if !almostEqual(gotIP, wantIP, 1e-4) {
				t.Errorf("dim %d level %v: IP = %v, want %v", dim, l, gotIP, wantIP)
			}
		}
	}
}

func TestSetLevelHooks(t *testing.T) {
	defer SetLevel(DetectLevel())
	for _, l := range []Level{LevelScalar, LevelSSE, LevelAVX, LevelAVX2, LevelAVX512} {
		SetLevel(l)
		if CurrentLevel() != l {
			t.Fatalf("CurrentLevel = %v, want %v", CurrentLevel(), l)
		}
		a := []float32{1, 2, 3, 4, 5}
		b := []float32{5, 4, 3, 2, 1}
		if got := L2Squared(a, b); !almostEqual(float64(got), 40, 1e-5) {
			t.Fatalf("level %v: L2Squared = %v, want 40", l, got)
		}
		if got := Dot(a, b); !almostEqual(float64(got), 35, 1e-5) {
			t.Fatalf("level %v: Dot = %v, want 35", l, got)
		}
	}
}

func TestSetLevelOutOfRangeFallsBackToScalar(t *testing.T) {
	defer SetLevel(DetectLevel())
	SetLevel(Level(99))
	if CurrentLevel() != LevelScalar {
		t.Fatalf("CurrentLevel = %v, want scalar", CurrentLevel())
	}
}

func TestParseLevelRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelScalar, LevelSSE, LevelAVX, LevelAVX2, LevelAVX512} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLevel("mmx"); err == nil {
		t.Error("ParseLevel(mmx) succeeded, want error")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	L2Squared([]float32{1, 2}, []float32{1})
}

func TestBatchMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	dim, n := 24, 57
	data := randVec(r, dim*n)
	q := randVec(r, dim)
	outL2 := make([]float32, n)
	outIP := make([]float32, n)
	L2SquaredBatch(q, data, dim, outL2)
	DotBatch(q, data, dim, outIP)
	for i := 0; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		if !almostEqual(float64(outL2[i]), refL2(q, row), 1e-4) {
			t.Errorf("row %d: batch L2 = %v, want %v", i, outL2[i], refL2(q, row))
		}
		if !almostEqual(float64(outIP[i]), refDot(q, row), 1e-4) {
			t.Errorf("row %d: batch IP = %v, want %v", i, outIP[i], refDot(q, row))
		}
	}
}

func TestNormAndNormalize(t *testing.T) {
	v := []float32{3, 4}
	if got := Norm(v); !almostEqual(float64(got), 5, 1e-6) {
		t.Fatalf("Norm = %v, want 5", got)
	}
	Normalize(v)
	if got := Norm(v); !almostEqual(float64(got), 1, 1e-6) {
		t.Fatalf("Norm after Normalize = %v, want 1", got)
	}
	z := []float32{0, 0, 0}
	Normalize(z) // must not NaN
	for _, x := range z {
		if x != 0 {
			t.Fatal("Normalize(zero) mutated the vector")
		}
	}
}

func TestCosineDistance(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := CosineDistance(a, b); !almostEqual(float64(got), 1, 1e-6) {
		t.Errorf("orthogonal cosine distance = %v, want 1", got)
	}
	if got := CosineDistance(a, a); !almostEqual(float64(got), 0, 1e-6) {
		t.Errorf("self cosine distance = %v, want 0", got)
	}
	if got := CosineDistance(a, []float32{0, 0}); got != 1 {
		t.Errorf("zero-vector cosine distance = %v, want 1", got)
	}
}

func TestMetricStringsAndParse(t *testing.T) {
	for _, m := range []Metric{L2, IP, Cosine, Hamming, Jaccard, Tanimoto} {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMetric(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMetric("MANHATTAN"); err == nil {
		t.Error("ParseMetric(MANHATTAN) succeeded, want error")
	}
}

func TestMetricDistSmallerIsBetter(t *testing.T) {
	q := []float32{1, 1}
	near := []float32{1, 0.9}
	far := []float32{-1, -1}
	for _, m := range []Metric{L2, IP, Cosine} {
		d := m.Dist()
		if !(d(q, near) < d(q, far)) {
			t.Errorf("%v: near %v !< far %v", m, d(q, near), d(q, far))
		}
	}
}

func TestBinaryDistances(t *testing.T) {
	a := NewBinaryVector(128)
	b := NewBinaryVector(128)
	a.SetBit(0)
	a.SetBit(5)
	a.SetBit(127)
	b.SetBit(5)
	b.SetBit(64)
	if got := HammingDistance(a, b); got != 3 {
		t.Errorf("Hamming = %d, want 3", got)
	}
	// |a∧b|=1 |a∨b|=4 → Jaccard = 0.75
	if got := JaccardDistance(a, b); !almostEqual(float64(got), 0.75, 1e-6) {
		t.Errorf("Jaccard = %v, want 0.75", got)
	}
	// Tanimoto: 1 - 1/(3+2-1) = 0.75
	if got := TanimotoDistance(a, b); !almostEqual(float64(got), 0.75, 1e-6) {
		t.Errorf("Tanimoto = %v, want 0.75", got)
	}
	if got := a.PopCount(); got != 3 {
		t.Errorf("PopCount = %d, want 3", got)
	}
	if !a.Bit(127) || a.Bit(126) {
		t.Error("Bit accessor wrong")
	}
}

func TestBinaryEmptyVectors(t *testing.T) {
	a := NewBinaryVector(64)
	b := NewBinaryVector(64)
	if got := JaccardDistance(a, b); got != 0 {
		t.Errorf("Jaccard(empty, empty) = %v, want 0", got)
	}
	if got := TanimotoDistance(a, b); got != 0 {
		t.Errorf("Tanimoto(empty, empty) = %v, want 0", got)
	}
}

func TestMetricBinaryClassification(t *testing.T) {
	for _, m := range []Metric{Hamming, Jaccard, Tanimoto} {
		if !m.Binary() {
			t.Errorf("%v.Binary() = false", m)
		}
	}
	for _, m := range []Metric{L2, IP, Cosine} {
		if m.Binary() {
			t.Errorf("%v.Binary() = true", m)
		}
	}
}

func TestBinaryMetricDistOverPackedFloats(t *testing.T) {
	// Binary metrics now provide distances over bit-packed float words,
	// matching the BinaryVector distances exactly.
	a := NewBinaryVector(64)
	b := NewBinaryVector(64)
	a.SetBit(0)
	a.SetBit(5)
	a.SetBit(40)
	b.SetBit(5)
	b.SetBit(63)
	fa := FloatsFromBinary(a, WordsForBits(64))
	fb := FloatsFromBinary(b, WordsForBits(64))
	if got := Hamming.Dist()(fa, fb); got != float32(HammingDistance(a, b)) {
		t.Fatalf("Hamming over floats = %v, want %v", got, HammingDistance(a, b))
	}
	if got, want := Jaccard.Dist()(fa, fb), JaccardDistance(a, b); got != want {
		t.Fatalf("Jaccard over floats = %v, want %v", got, want)
	}
	if got, want := Tanimoto.Dist()(fa, fb), TanimotoDistance(a, b); got != want {
		t.Fatalf("Tanimoto over floats = %v, want %v", got, want)
	}
}

func TestBinaryFloatPackRoundTrip(t *testing.T) {
	v := NewBinaryVector(96)
	for _, i := range []int{0, 31, 32, 63, 64, 95} {
		v.SetBit(i)
	}
	back := BinaryFromFloats(FloatsFromBinary(v, WordsForBits(96)))
	for i := 0; i < 96; i++ {
		if v.Bit(i) != back.Bit(i) {
			t.Fatalf("bit %d lost in round trip", i)
		}
	}
}

// Property: for any vectors, Jaccard and Tanimoto agree on binary data and
// both lie in [0, 1]; Hamming is symmetric and zero iff equal.
func TestBinaryDistanceProperties(t *testing.T) {
	f := func(aw, bw [4]uint64) bool {
		a := BinaryVector(aw[:])
		b := BinaryVector(bw[:])
		j, tn := JaccardDistance(a, b), TanimotoDistance(a, b)
		if j < 0 || j > 1 || tn < 0 || tn > 1 {
			return false
		}
		if !almostEqual(float64(j), float64(tn), 1e-6) {
			return false
		}
		if HammingDistance(a, b) != HammingDistance(b, a) {
			return false
		}
		if HammingDistance(a, a) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: L2Squared satisfies the parallelogram-ish identity with Dot:
// |a-b|² = |a|² + |b|² - 2⟨a,b⟩.
func TestL2DotIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		dim := 1 + rr.Intn(64)
		a, b := randVec(r, dim), randVec(r, dim)
		lhs := float64(L2Squared(a, b))
		rhs := refDot(a, a) + refDot(b, b) - 2*refDot(a, b)
		return almostEqual(lhs, rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSqrt32(t *testing.T) {
	for _, x := range []float32{0, 1, 2, 4, 100, 12345.678} {
		want := float32(math.Sqrt(float64(x)))
		if got := sqrt32(x); !almostEqual(float64(got), float64(want), 1e-6) {
			t.Errorf("sqrt32(%v) = %v, want %v", x, got, want)
		}
	}
	if got := sqrt32(-1); got != 0 {
		t.Errorf("sqrt32(-1) = %v, want 0", got)
	}
}

func BenchmarkL2Tiers(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	x, y := randVec(r, 128), randVec(r, 128)
	for _, l := range []Level{LevelScalar, LevelSSE, LevelAVX2, LevelAVX512} {
		b.Run(l.String(), func(b *testing.B) {
			var s float32
			for i := 0; i < b.N; i++ {
				s += L2SquaredAt(l, x, y)
			}
			_ = s
		})
	}
}
