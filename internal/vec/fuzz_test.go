package vec

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeVecPair splits fuzz bytes into two equal-dimension float32 vectors.
func decodeVecPair(data []byte) (a, b []float32) {
	dim := len(data) / 8
	for i := 0; i < dim; i++ {
		a = append(a, math.Float32frombits(binary.LittleEndian.Uint32(data[i*8:])))
		b = append(b, math.Float32frombits(binary.LittleEndian.Uint32(data[i*8+4:])))
	}
	return a, b
}

// FuzzKernelTiersAgree feeds arbitrary vectors — NaN, Inf, denormals,
// zero length — through every SIMD tier and checks they agree with a
// float64 reference: same NaN-ness, and close values when the reference is
// comfortably inside float32 range. Tiers sum in different orders, so a
// reference that overflows float32 may overflow in some tiers and not
// others; those inputs only have their NaN-ness compared.
func FuzzKernelTiersAgree(f *testing.F) {
	add := func(vals ...float32) {
		var buf []byte
		for _, v := range vals {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		f.Add(buf)
	}
	add()                                               // zero-length vectors
	add(1, 2)                                           // dim 1
	add(1, 2, 3, 4, 5, 6, 7, 8)                         // dim 4: exercises unroll tails
	add(float32(math.NaN()), 1, 2, float32(math.NaN())) // NaN components
	add(float32(math.Inf(1)), 1, float32(math.Inf(-1)), 2)
	add(3e38, 3e38, -3e38, 3e38)    // float32-overflow territory
	add(1e-40, 1e-40, 2e-40, 3e-40) // denormals
	f.Add([]byte{1, 2, 3})          // ragged tail bytes are dropped

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 8*256 {
			return // cap dimension; larger adds nothing
		}
		a, b := decodeVecPair(data)
		var refL2, refIP, ipMag float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			refL2 += d * d
			refIP += float64(a[i]) * float64(b[i])
			ipMag += math.Abs(float64(a[i]) * float64(b[i]))
		}
		refNaN := refL2 != refL2
		refIPNaN := refIP != refIP
		// Products that overflow float32 turn into ±Inf there, and opposing
		// infinities cancel to NaN — a float64 reference sees neither. The
		// Dot NaN-ness comparison is only meaningful when no product
		// overflows (or the reference itself is NaN, which must propagate).
		ipNaNComparable := refIPNaN || ipMag < 3e38
		// Values beyond ~1e37 can overflow float32 partial sums in some
		// accumulation orders but not others; only NaN-ness is comparable.
		valueComparable := math.Abs(refL2) < 1e37 && !math.IsInf(refL2, 0)
		ipComparable := ipMag < 1e37
		for _, l := range []Level{LevelScalar, LevelSSE, LevelAVX, LevelAVX2, LevelAVX512} {
			l2 := L2SquaredAt(l, a, b)
			ip := DotAt(l, a, b)
			if gotNaN := l2 != l2; gotNaN != refNaN {
				t.Fatalf("%v: L2 NaN-ness %v, reference %v (a=%v b=%v)", l, gotNaN, refNaN, a, b)
			}
			if gotNaN := ip != ip; ipNaNComparable && gotNaN != refIPNaN {
				t.Fatalf("%v: Dot NaN-ness %v, reference %v (a=%v b=%v)", l, gotNaN, refIPNaN, a, b)
			}
			if !refNaN && valueComparable && !math.IsInf(float64(l2), 0) {
				tol := 1e-3*math.Abs(refL2) + 1e-5
				if math.Abs(float64(l2)-refL2) > tol {
					t.Fatalf("%v: L2=%v, reference %v (a=%v b=%v)", l, l2, refL2, a, b)
				}
			}
			if !refIPNaN && ipComparable && !math.IsInf(float64(ip), 0) {
				// Cancellation makes |refIP| arbitrarily small relative to
				// the rounding error of the partial products, so tolerance
				// scales with the products' total magnitude.
				tol := 1e-4*ipMag + 1e-5
				if math.Abs(float64(ip)-refIP) > tol {
					t.Fatalf("%v: Dot=%v, reference %v (a=%v b=%v)", l, ip, refIP, a, b)
				}
			}
		}
	})
}

// FuzzDimensionMismatchPanics: every kernel tier must reject mismatched
// dimensions with the package's diagnostic panic — never a silent wrong
// answer or an out-of-bounds crash.
func FuzzDimensionMismatchPanics(f *testing.F) {
	f.Add(uint8(4), uint8(3))
	f.Add(uint8(0), uint8(1))
	f.Add(uint8(17), uint8(16))
	f.Fuzz(func(t *testing.T, na, nb uint8) {
		if na == nb {
			return
		}
		a, b := make([]float32, na), make([]float32, nb)
		for _, l := range []Level{LevelScalar, LevelSSE, LevelAVX, LevelAVX2, LevelAVX512} {
			for name, call := range map[string]func(){
				"L2SquaredAt": func() { L2SquaredAt(l, a, b) },
				"DotAt":       func() { DotAt(l, a, b) },
			} {
				func() {
					defer func() {
						if recover() == nil {
							t.Fatalf("%s at %v accepted dims %d vs %d", name, l, na, nb)
						}
					}()
					call()
				}()
			}
		}
	})
}
