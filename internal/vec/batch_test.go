package vec

import (
	"math"
	"math/rand"
	"testing"
)

// The blocked, early-abandon and tile kernels are exercised against the
// float64 scalar references across every tier, with the dims the register
// blocking finds hardest: 1 and 3 (pure tail), 17 (one chunk + tail at
// every width), 100 (4/8-wide exact, 16-wide tail), 131 (tail everywhere),
// plus the power-of-two fast path 128.

var equivDims = []int{1, 3, 17, 100, 131, 128}

// equivNs covers empty blocks, sub-row-block sizes and both row-tail
// shapes of the 4-row blocking.
var equivNs = []int{0, 1, 3, 4, 5, 7, 64}

func TestBatchKernelsMatchScalarAllTiers(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, dim := range equivDims {
		for _, n := range equivNs {
			data := randVec(r, dim*n)
			q := randVec(r, dim)
			for _, l := range Levels() {
				outL2 := make([]float32, n)
				outIP := make([]float32, n)
				L2SquaredBatchAt(l, q, data, dim, outL2)
				DotBatchAt(l, q, data, dim, outIP)
				for i := 0; i < n; i++ {
					row := data[i*dim : (i+1)*dim]
					if !almostEqual(float64(outL2[i]), refL2(q, row), 1e-4) {
						t.Fatalf("dim %d n %d level %v row %d: L2 %v, want %v", dim, n, l, i, outL2[i], refL2(q, row))
					}
					if !almostEqual(float64(outIP[i]), refDot(q, row), 1e-4) {
						t.Fatalf("dim %d n %d level %v row %d: IP %v, want %v", dim, n, l, i, outIP[i], refDot(q, row))
					}
				}
			}
		}
	}
}

func TestTileKernelsMatchScalarAllTiers(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	// nq values straddle the 4-query tile width (pure tile, tile+remainder,
	// pure remainder).
	for _, nq := range []int{1, 2, 3, 4, 5, 8, 9} {
		for _, dim := range equivDims {
			for _, n := range []int{0, 1, 5, 33} {
				queries := randVec(r, nq*dim)
				data := randVec(r, n*dim)
				for _, l := range Levels() {
					outL2 := make([]float32, nq*n)
					outIP := make([]float32, nq*n)
					L2SquaredTileAt(l, queries, data, dim, outL2)
					DotTileAt(l, queries, data, dim, outIP)
					for qi := 0; qi < nq; qi++ {
						q := queries[qi*dim : (qi+1)*dim]
						for i := 0; i < n; i++ {
							row := data[i*dim : (i+1)*dim]
							if !almostEqual(float64(outL2[qi*n+i]), refL2(q, row), 1e-4) {
								t.Fatalf("nq %d dim %d n %d level %v (%d,%d): tile L2 %v, want %v",
									nq, dim, n, l, qi, i, outL2[qi*n+i], refL2(q, row))
							}
							if !almostEqual(float64(outIP[qi*n+i]), refDot(q, row), 1e-4) {
								t.Fatalf("nq %d dim %d n %d level %v (%d,%d): tile IP %v, want %v",
									nq, dim, n, l, qi, i, outIP[qi*n+i], refDot(q, row))
							}
						}
					}
				}
			}
		}
	}
}

// TestBoundKernelInvariant pins the early-abandon contract on every tier:
// rows whose true distance is below the bound come out exact (same
// tolerance as the plain batch kernel); rows at or above the bound come
// out >= bound (possibly +Inf when abandoned mid-row). Bounds are drawn
// from the observed distance distribution so both outcomes occur.
func TestBoundKernelInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, dim := range equivDims {
		for _, n := range equivNs {
			data := randVec(r, dim*n)
			q := randVec(r, dim)
			ref := make([]float64, n)
			for i := 0; i < n; i++ {
				ref[i] = refL2(q, data[i*dim:(i+1)*dim])
			}
			bounds := []float32{0, float32(math.Inf(1))}
			if n > 0 {
				bounds = append(bounds, float32(ref[n/2]), float32(ref[0]*0.5), float32(ref[0]*2))
			}
			for _, bound := range bounds {
				for _, l := range Levels() {
					out := make([]float32, n)
					L2SquaredBatchBoundAt(l, q, data, dim, bound, out)
					for i := 0; i < n; i++ {
						if ref[i] < float64(bound)*(1-1e-4) {
							if !almostEqual(float64(out[i]), ref[i], 1e-4) {
								t.Fatalf("dim %d n %d level %v bound %v row %d: %v, want exact %v",
									dim, n, l, bound, i, out[i], ref[i])
							}
						} else if ref[i] > float64(bound)*(1+1e-4) {
							if float64(out[i]) < float64(bound)*(1-1e-4) {
								t.Fatalf("dim %d n %d level %v bound %v row %d: %v below bound (true %v)",
									dim, n, l, bound, i, out[i], ref[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestBatchKernelsNaNInf: non-finite inputs must propagate identically to
// the pairwise kernels — NaN rows stay NaN (the bound kernel must not
// "abandon" them into +Inf: NaN partials never satisfy s >= bound), and
// Inf rows produce Inf/NaN exactly as IEEE arithmetic dictates.
func TestBatchKernelsNaNInf(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	dim := 9
	q := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	rows := [][]float32{
		{1, 2, 3, 4, 5, 6, 7, 8, 9},
		{nan, 2, 3, 4, 5, 6, 7, 8, 9},
		{1, 2, 3, 4, inf, 6, 7, 8, 9},
		{-inf, 2, 3, 4, inf, 6, 7, 8, 9},
		{1, 2, 3, 4, 5, 6, 7, 8, nan},
	}
	var data []float32
	for _, row := range rows {
		data = append(data, row...)
	}
	n := len(rows)
	for _, l := range Levels() {
		out := make([]float32, n)
		outB := make([]float32, n)
		outT := make([]float32, n)
		L2SquaredBatchAt(l, q, data, dim, out)
		L2SquaredBatchBoundAt(l, q, data, dim, inf, outB)
		L2SquaredTileAt(l, q, data, dim, outT)
		for i, row := range rows {
			want := L2SquaredAt(LevelScalar, q, row)
			for variant, got := range map[string]float32{"batch": out[i], "bound": outB[i], "tile": outT[i]} {
				if (want != want) != (got != got) {
					t.Fatalf("level %v %s row %d: NaN-ness %v, want %v", l, variant, i, got, want)
				}
				if want == want && !almostEqual(float64(got), float64(want), 1e-4) && !math.IsInf(float64(want), 0) {
					t.Fatalf("level %v %s row %d: %v, want %v", l, variant, i, got, want)
				}
			}
		}
	}
}

// TestBatchBoundAbandonedRowsAreInf: with a bound the first dimensions
// already exceed, every row must be reported as +Inf, not a garbage
// partial sum.
func TestBatchBoundAbandonedRowsAreInf(t *testing.T) {
	dim := 64
	n := 8
	q := make([]float32, dim)
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = 100 // distance 10000*dim from the zero query
	}
	for _, l := range Levels() {
		out := make([]float32, n)
		L2SquaredBatchBoundAt(l, q, data, dim, 1, out)
		for i, d := range out {
			if d < 1 {
				t.Fatalf("level %v row %d: %v below bound 1", l, i, d)
			}
		}
	}
}

func TestNegDotVariants(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	dim, n := 33, 11
	q := randVec(r, dim)
	data := randVec(r, n*dim)
	out := make([]float32, n)
	NegDotBatch(q, data, dim, out)
	for i := 0; i < n; i++ {
		want := -refDot(q, data[i*dim:(i+1)*dim])
		if !almostEqual(float64(out[i]), want, 1e-4) {
			t.Fatalf("NegDotBatch row %d: %v, want %v", i, out[i], want)
		}
	}
	tile := make([]float32, n)
	NegDotTile(q, data, dim, tile)
	for i := 0; i < n; i++ {
		if !almostEqual(float64(tile[i]), -refDot(q, data[i*dim:(i+1)*dim]), 1e-4) {
			t.Fatalf("NegDotTile row %d: %v", i, tile[i])
		}
	}
}

// TestBatchDispatchCounters: the hooked batch entry points must count once
// per call against the active tier, independently of the pairwise counter.
func TestBatchDispatchCounters(t *testing.T) {
	prev := DispatchCounting()
	SetDispatchCounting(true)
	defer SetDispatchCounting(prev)
	ResetDispatchCounts()
	q := []float32{1, 2, 3, 4}
	data := []float32{0, 0, 0, 0, 1, 1, 1, 1}
	out := make([]float32, 2)
	L2SquaredBatch(q, data, 4, out)
	DotBatch(q, data, 4, out)
	L2SquaredBatchBound(q, data, 4, float32(math.Inf(1)), out)
	L2SquaredTile(q, data, 4, out)
	if got := BatchDispatchTotal(); got != 4 {
		t.Fatalf("BatchDispatchTotal = %d, want 4", got)
	}
	if DispatchCount(CurrentLevel()) != 0 {
		t.Fatalf("batch calls leaked into the pairwise counter")
	}
	ResetDispatchCounts()
	if BatchDispatchTotal() != 0 {
		t.Fatal("ResetDispatchCounts did not clear batch counters")
	}
}
