package vec

import "math"

// Blocked batch kernels. The pairwise kernels in kernels.go amortize nothing
// across rows: every distance pays the dispatch atomic loads, the length
// check and a function call. The batch kernels below process a whole
// contiguous row-major block per dispatch and, like a GEMM micro-kernel,
// register-block the computation: each step holds one query chunk in
// registers and streams batchRows data rows against it, so query loads are
// amortized batchRows× and the independent per-row accumulators provide the
// instruction-level parallelism that the multi-accumulator pairwise kernels
// get from extra accumulators. Tiers differ in the dim-chunk width (4/8/16),
// mirroring the SSE/AVX/AVX512 register widths they stand in for.
//
// Three kernel families:
//
//   - one-query batch: distances from one query to every row (flat scans,
//     IVF bucket scans, segment scans);
//   - bound batch: same, but with early abandonment — L2 partial sums are
//     monotone, so a row whose partial already exceeds the caller's bound
//     (the current top-k worst) is abandoned mid-row and reported as +Inf;
//   - query tile: a q×v register tile (4 queries × a data block) for the
//     cache-aware multi-query engine, streaming each data row once per four
//     queries instead of once per query (the blocking behind Eq. (1)).

// batchRows is the register row-block of the one-query batch kernels.
const batchRows = 4

// abandonChunk is the dim granularity at which the bound kernels compare the
// partial sum against the caller's bound. Coarse enough that the check is
// noise, fine enough that a full heap prunes most of a 128-d row.
const abandonChunk = 32

func inf32() float32 { return float32(math.Inf(1)) }

// l2c4/ipc4/ipc8 are the chunk primitives the blocked kernels compose.
// They are sized to the gc inlining budget (l2c4 costs 68 of the 80-node
// allowance, ipc8 exactly 80): the compiler inlines them, so every chunk
// loop body below compiles to straight-line code. That matters because gc
// never unrolls loops — an inner `for k` loop over the chunk would pay a
// compare-and-branch per four multiplies and lose to the fully unrolled
// pairwise kernels it is supposed to beat.

func l2c4(x, y *[4]float32) float32 {
	d0 := x[0] - y[0]
	d1 := x[1] - y[1]
	d2 := x[2] - y[2]
	d3 := x[3] - y[3]
	return (d0*d0 + d1*d1) + (d2*d2 + d3*d3)
}

func ipc4(x, y *[4]float32) float32 {
	return (x[0]*y[0] + x[1]*y[1]) + (x[2]*y[2] + x[3]*y[3])
}

func ipc8(x, y *[8]float32) float32 {
	return (x[0]*y[0] + x[1]*y[1] + x[2]*y[2] + x[3]*y[3]) +
		(x[4]*y[4] + x[5]*y[5] + x[6]*y[6] + x[7]*y[7])
}

// ---------------------------------------------------------------------------
// Scalar tier (reference semantics for every other tier).

func l2BatchScalar(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	for i := 0; i < n; i++ {
		out[i] = l2Scalar(q, data[i*dim:(i+1)*dim])
	}
}

func ipBatchScalar(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	for i := 0; i < n; i++ {
		out[i] = ipScalar(q, data[i*dim:(i+1)*dim])
	}
}

// l2BoundScalar is the early-abandon reference: plain scalar accumulation
// with a bound check per abandonChunk dims. An abandoned row reports +Inf;
// NaN partial sums never satisfy s >= bound, so NaN rows complete and report
// NaN exactly like the plain kernels (the heap rejects NaN either way).
func l2BoundScalar(q, data []float32, dim int, bound float32, out []float32) {
	n := len(data) / dim
	for i := 0; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		var s float32
		d := 0
		for d < dim {
			end := d + abandonChunk
			if end > dim {
				end = dim
			}
			for ; d < end; d++ {
				t := q[d] - row[d]
				s += t * t
			}
			if d < dim && s >= bound {
				s = inf32()
				break
			}
		}
		out[i] = s
	}
}

func l2TileScalar(qs, data []float32, dim, nq int, out []float32) {
	n := len(data) / dim
	for qi := 0; qi < nq; qi++ {
		q := qs[qi*dim : (qi+1)*dim]
		o := out[qi*n : (qi+1)*n]
		for i := 0; i < n; i++ {
			o[i] = l2Scalar(q, data[i*dim:(i+1)*dim])
		}
	}
}

func ipTileScalar(qs, data []float32, dim, nq int, out []float32) {
	n := len(data) / dim
	for qi := 0; qi < nq; qi++ {
		q := qs[qi*dim : (qi+1)*dim]
		o := out[qi*n : (qi+1)*n]
		for i := 0; i < n; i++ {
			o[i] = ipScalar(q, data[i*dim:(i+1)*dim])
		}
	}
}

// ---------------------------------------------------------------------------
// 4-wide tier (SSE): 4 rows × 4-dim chunks.

func l2Batch4x4(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	i := 0
	for ; i+batchRows <= n; i += batchRows {
		r0 := data[(i+0)*dim : (i+0)*dim+dim]
		r1 := data[(i+1)*dim : (i+1)*dim+dim]
		r2 := data[(i+2)*dim : (i+2)*dim+dim]
		r3 := data[(i+3)*dim : (i+3)*dim+dim]
		var s0, s1, s2, s3 float32
		d := 0
		for ; d+4 <= dim; d += 4 {
			x := (*[4]float32)(q[d : d+4])
			s0 += l2c4(x, (*[4]float32)(r0[d:d+4]))
			s1 += l2c4(x, (*[4]float32)(r1[d:d+4]))
			s2 += l2c4(x, (*[4]float32)(r2[d:d+4]))
			s3 += l2c4(x, (*[4]float32)(r3[d:d+4]))
		}
		for ; d < dim; d++ {
			xk := q[d]
			t0 := xk - r0[d]
			t1 := xk - r1[d]
			t2 := xk - r2[d]
			t3 := xk - r3[d]
			s0 += t0 * t0
			s1 += t1 * t1
			s2 += t2 * t2
			s3 += t3 * t3
		}
		out[i], out[i+1], out[i+2], out[i+3] = s0, s1, s2, s3
	}
	for ; i < n; i++ {
		out[i] = l2Unroll4(q, data[i*dim:(i+1)*dim])
	}
}

func ipBatch4x4(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	i := 0
	for ; i+batchRows <= n; i += batchRows {
		r0 := data[(i+0)*dim : (i+0)*dim+dim]
		r1 := data[(i+1)*dim : (i+1)*dim+dim]
		r2 := data[(i+2)*dim : (i+2)*dim+dim]
		r3 := data[(i+3)*dim : (i+3)*dim+dim]
		var s0, s1, s2, s3 float32
		d := 0
		for ; d+4 <= dim; d += 4 {
			x := (*[4]float32)(q[d : d+4])
			s0 += ipc4(x, (*[4]float32)(r0[d:d+4]))
			s1 += ipc4(x, (*[4]float32)(r1[d:d+4]))
			s2 += ipc4(x, (*[4]float32)(r2[d:d+4]))
			s3 += ipc4(x, (*[4]float32)(r3[d:d+4]))
		}
		for ; d < dim; d++ {
			xk := q[d]
			s0 += xk * r0[d]
			s1 += xk * r1[d]
			s2 += xk * r2[d]
			s3 += xk * r3[d]
		}
		out[i], out[i+1], out[i+2], out[i+3] = s0, s1, s2, s3
	}
	for ; i < n; i++ {
		out[i] = ipUnroll4(q, data[i*dim:(i+1)*dim])
	}
}

// ---------------------------------------------------------------------------
// 8-wide tier (AVX/AVX2): 4 rows × 8-dim chunks.

func l2Batch4x8(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	i := 0
	for ; i+batchRows <= n; i += batchRows {
		r0 := data[(i+0)*dim : (i+0)*dim+dim]
		r1 := data[(i+1)*dim : (i+1)*dim+dim]
		r2 := data[(i+2)*dim : (i+2)*dim+dim]
		r3 := data[(i+3)*dim : (i+3)*dim+dim]
		var s0, s1, s2, s3 float32
		d := 0
		for ; d+8 <= dim; d += 8 {
			xa := (*[4]float32)(q[d : d+4])
			xb := (*[4]float32)(q[d+4 : d+8])
			s0 += l2c4(xa, (*[4]float32)(r0[d:d+4])) + l2c4(xb, (*[4]float32)(r0[d+4:d+8]))
			s1 += l2c4(xa, (*[4]float32)(r1[d:d+4])) + l2c4(xb, (*[4]float32)(r1[d+4:d+8]))
			s2 += l2c4(xa, (*[4]float32)(r2[d:d+4])) + l2c4(xb, (*[4]float32)(r2[d+4:d+8]))
			s3 += l2c4(xa, (*[4]float32)(r3[d:d+4])) + l2c4(xb, (*[4]float32)(r3[d+4:d+8]))
		}
		for ; d < dim; d++ {
			xk := q[d]
			t0 := xk - r0[d]
			t1 := xk - r1[d]
			t2 := xk - r2[d]
			t3 := xk - r3[d]
			s0 += t0 * t0
			s1 += t1 * t1
			s2 += t2 * t2
			s3 += t3 * t3
		}
		out[i], out[i+1], out[i+2], out[i+3] = s0, s1, s2, s3
	}
	for ; i < n; i++ {
		out[i] = l2Unroll8(q, data[i*dim:(i+1)*dim])
	}
}

func ipBatch4x8(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	i := 0
	for ; i+batchRows <= n; i += batchRows {
		r0 := data[(i+0)*dim : (i+0)*dim+dim]
		r1 := data[(i+1)*dim : (i+1)*dim+dim]
		r2 := data[(i+2)*dim : (i+2)*dim+dim]
		r3 := data[(i+3)*dim : (i+3)*dim+dim]
		var s0, s1, s2, s3 float32
		d := 0
		for ; d+8 <= dim; d += 8 {
			x := (*[8]float32)(q[d : d+8])
			s0 += ipc8(x, (*[8]float32)(r0[d:d+8]))
			s1 += ipc8(x, (*[8]float32)(r1[d:d+8]))
			s2 += ipc8(x, (*[8]float32)(r2[d:d+8]))
			s3 += ipc8(x, (*[8]float32)(r3[d:d+8]))
		}
		for ; d < dim; d++ {
			xk := q[d]
			s0 += xk * r0[d]
			s1 += xk * r1[d]
			s2 += xk * r2[d]
			s3 += xk * r3[d]
		}
		out[i], out[i+1], out[i+2], out[i+3] = s0, s1, s2, s3
	}
	for ; i < n; i++ {
		out[i] = ipUnroll8(q, data[i*dim:(i+1)*dim])
	}
}

// ---------------------------------------------------------------------------
// 16-wide tier (AVX512): 4 rows × 16-dim chunks, two accumulator banks per
// row so each row's dependency chain matches the pairwise 16-wide kernel.

func l2Batch4x16(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	i := 0
	for ; i+batchRows <= n; i += batchRows {
		r0 := data[(i+0)*dim : (i+0)*dim+dim]
		r1 := data[(i+1)*dim : (i+1)*dim+dim]
		r2 := data[(i+2)*dim : (i+2)*dim+dim]
		r3 := data[(i+3)*dim : (i+3)*dim+dim]
		var s0a, s1a, s2a, s3a float32
		var s0b, s1b, s2b, s3b float32
		d := 0
		for ; d+16 <= dim; d += 16 {
			x := (*[16]float32)(q[d : d+16])
			y := (*[16]float32)(r0[d : d+16])
			e0 := x[0] - y[0]
			e1 := x[1] - y[1]
			e2 := x[2] - y[2]
			e3 := x[3] - y[3]
			e4 := x[4] - y[4]
			e5 := x[5] - y[5]
			e6 := x[6] - y[6]
			e7 := x[7] - y[7]
			e8 := x[8] - y[8]
			e9 := x[9] - y[9]
			e10 := x[10] - y[10]
			e11 := x[11] - y[11]
			e12 := x[12] - y[12]
			e13 := x[13] - y[13]
			e14 := x[14] - y[14]
			e15 := x[15] - y[15]
			s0a += (e0*e0 + e1*e1 + e2*e2 + e3*e3) + (e4*e4 + e5*e5 + e6*e6 + e7*e7)
			s0b += (e8*e8 + e9*e9 + e10*e10 + e11*e11) + (e12*e12 + e13*e13 + e14*e14 + e15*e15)
			y = (*[16]float32)(r1[d : d+16])
			e0 = x[0] - y[0]
			e1 = x[1] - y[1]
			e2 = x[2] - y[2]
			e3 = x[3] - y[3]
			e4 = x[4] - y[4]
			e5 = x[5] - y[5]
			e6 = x[6] - y[6]
			e7 = x[7] - y[7]
			e8 = x[8] - y[8]
			e9 = x[9] - y[9]
			e10 = x[10] - y[10]
			e11 = x[11] - y[11]
			e12 = x[12] - y[12]
			e13 = x[13] - y[13]
			e14 = x[14] - y[14]
			e15 = x[15] - y[15]
			s1a += (e0*e0 + e1*e1 + e2*e2 + e3*e3) + (e4*e4 + e5*e5 + e6*e6 + e7*e7)
			s1b += (e8*e8 + e9*e9 + e10*e10 + e11*e11) + (e12*e12 + e13*e13 + e14*e14 + e15*e15)
			y = (*[16]float32)(r2[d : d+16])
			e0 = x[0] - y[0]
			e1 = x[1] - y[1]
			e2 = x[2] - y[2]
			e3 = x[3] - y[3]
			e4 = x[4] - y[4]
			e5 = x[5] - y[5]
			e6 = x[6] - y[6]
			e7 = x[7] - y[7]
			e8 = x[8] - y[8]
			e9 = x[9] - y[9]
			e10 = x[10] - y[10]
			e11 = x[11] - y[11]
			e12 = x[12] - y[12]
			e13 = x[13] - y[13]
			e14 = x[14] - y[14]
			e15 = x[15] - y[15]
			s2a += (e0*e0 + e1*e1 + e2*e2 + e3*e3) + (e4*e4 + e5*e5 + e6*e6 + e7*e7)
			s2b += (e8*e8 + e9*e9 + e10*e10 + e11*e11) + (e12*e12 + e13*e13 + e14*e14 + e15*e15)
			y = (*[16]float32)(r3[d : d+16])
			e0 = x[0] - y[0]
			e1 = x[1] - y[1]
			e2 = x[2] - y[2]
			e3 = x[3] - y[3]
			e4 = x[4] - y[4]
			e5 = x[5] - y[5]
			e6 = x[6] - y[6]
			e7 = x[7] - y[7]
			e8 = x[8] - y[8]
			e9 = x[9] - y[9]
			e10 = x[10] - y[10]
			e11 = x[11] - y[11]
			e12 = x[12] - y[12]
			e13 = x[13] - y[13]
			e14 = x[14] - y[14]
			e15 = x[15] - y[15]
			s3a += (e0*e0 + e1*e1 + e2*e2 + e3*e3) + (e4*e4 + e5*e5 + e6*e6 + e7*e7)
			s3b += (e8*e8 + e9*e9 + e10*e10 + e11*e11) + (e12*e12 + e13*e13 + e14*e14 + e15*e15)
		}
		s0 := s0a + s0b
		s1 := s1a + s1b
		s2 := s2a + s2b
		s3 := s3a + s3b
		for ; d < dim; d++ {
			xk := q[d]
			t0 := xk - r0[d]
			t1 := xk - r1[d]
			t2 := xk - r2[d]
			t3 := xk - r3[d]
			s0 += t0 * t0
			s1 += t1 * t1
			s2 += t2 * t2
			s3 += t3 * t3
		}
		out[i], out[i+1], out[i+2], out[i+3] = s0, s1, s2, s3
	}
	for ; i < n; i++ {
		out[i] = l2Unroll16(q, data[i*dim:(i+1)*dim])
	}
}

func ipBatch4x16(q, data []float32, dim int, out []float32) {
	n := len(data) / dim
	i := 0
	for ; i+batchRows <= n; i += batchRows {
		r0 := data[(i+0)*dim : (i+0)*dim+dim]
		r1 := data[(i+1)*dim : (i+1)*dim+dim]
		r2 := data[(i+2)*dim : (i+2)*dim+dim]
		r3 := data[(i+3)*dim : (i+3)*dim+dim]
		var s0a, s1a, s2a, s3a float32
		var s0b, s1b, s2b, s3b float32
		d := 0
		for ; d+16 <= dim; d += 16 {
			xa := (*[8]float32)(q[d : d+8])
			xb := (*[8]float32)(q[d+8 : d+16])
			s0a += ipc8(xa, (*[8]float32)(r0[d:d+8]))
			s0b += ipc8(xb, (*[8]float32)(r0[d+8:d+16]))
			s1a += ipc8(xa, (*[8]float32)(r1[d:d+8]))
			s1b += ipc8(xb, (*[8]float32)(r1[d+8:d+16]))
			s2a += ipc8(xa, (*[8]float32)(r2[d:d+8]))
			s2b += ipc8(xb, (*[8]float32)(r2[d+8:d+16]))
			s3a += ipc8(xa, (*[8]float32)(r3[d:d+8]))
			s3b += ipc8(xb, (*[8]float32)(r3[d+8:d+16]))
		}
		s0 := s0a + s0b
		s1 := s1a + s1b
		s2 := s2a + s2b
		s3 := s3a + s3b
		for ; d < dim; d++ {
			xk := q[d]
			s0 += xk * r0[d]
			s1 += xk * r1[d]
			s2 += xk * r2[d]
			s3 += xk * r3[d]
		}
		out[i], out[i+1], out[i+2], out[i+3] = s0, s1, s2, s3
	}
	for ; i < n; i++ {
		out[i] = ipUnroll16(q, data[i*dim:(i+1)*dim])
	}
}

// ---------------------------------------------------------------------------
// Bound (early-abandon) kernels. The blocked variant accumulates each row in
// abandonChunk-dim chunks through the tier's pairwise kernel; between chunks
// the partial sum is compared against the bound. All L2 terms are
// non-negative, so partial >= bound proves the full distance is too.

func l2BoundChunked(l2 func(a, b []float32) float32) func(q, data []float32, dim int, bound float32, out []float32) {
	return func(q, data []float32, dim int, bound float32, out []float32) {
		n := len(data) / dim
		for i := 0; i < n; i++ {
			row := data[i*dim : (i+1)*dim]
			var s float32
			d := 0
			for d+abandonChunk <= dim {
				s += l2(q[d:d+abandonChunk], row[d:d+abandonChunk])
				d += abandonChunk
				if d < dim && s >= bound {
					s = inf32()
					break
				}
			}
			if s < inf32() && d < dim {
				s += l2(q[d:dim], row[d:dim])
			}
			out[i] = s
		}
	}
}

var l2Bound4 = l2BoundChunked(l2Unroll4)

// l2Bound8 is the fully unrolled early-abandon kernel of the 8-wide
// tier: straight-line 8-dim chunks with a bound check every
// abandonChunk dims, and a direct pairwise call only for the sub-chunk
// tail. Same control flow (and NaN semantics) as l2BoundChunked, minus
// the indirect call per chunk.
func l2Bound8(q, data []float32, dim int, bound float32, out []float32) {
	n := len(data) / dim
	for i := 0; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		var s float32
		d := 0
		for d+abandonChunk <= dim {
			x := (*[8]float32)(q[d+0 : d+8])
			y := (*[8]float32)(row[d+0 : d+8])
			e0 := x[0] - y[0]
			e1 := x[1] - y[1]
			e2 := x[2] - y[2]
			e3 := x[3] - y[3]
			e4 := x[4] - y[4]
			e5 := x[5] - y[5]
			e6 := x[6] - y[6]
			e7 := x[7] - y[7]
			p0 := (e0*e0 + e1*e1 + e2*e2 + e3*e3) + (e4*e4 + e5*e5 + e6*e6 + e7*e7)
			x = (*[8]float32)(q[d+8 : d+16])
			y = (*[8]float32)(row[d+8 : d+16])
			e0 = x[0] - y[0]
			e1 = x[1] - y[1]
			e2 = x[2] - y[2]
			e3 = x[3] - y[3]
			e4 = x[4] - y[4]
			e5 = x[5] - y[5]
			e6 = x[6] - y[6]
			e7 = x[7] - y[7]
			p1 := (e0*e0 + e1*e1 + e2*e2 + e3*e3) + (e4*e4 + e5*e5 + e6*e6 + e7*e7)
			x = (*[8]float32)(q[d+16 : d+24])
			y = (*[8]float32)(row[d+16 : d+24])
			e0 = x[0] - y[0]
			e1 = x[1] - y[1]
			e2 = x[2] - y[2]
			e3 = x[3] - y[3]
			e4 = x[4] - y[4]
			e5 = x[5] - y[5]
			e6 = x[6] - y[6]
			e7 = x[7] - y[7]
			p2 := (e0*e0 + e1*e1 + e2*e2 + e3*e3) + (e4*e4 + e5*e5 + e6*e6 + e7*e7)
			x = (*[8]float32)(q[d+24 : d+32])
			y = (*[8]float32)(row[d+24 : d+32])
			e0 = x[0] - y[0]
			e1 = x[1] - y[1]
			e2 = x[2] - y[2]
			e3 = x[3] - y[3]
			e4 = x[4] - y[4]
			e5 = x[5] - y[5]
			e6 = x[6] - y[6]
			e7 = x[7] - y[7]
			p3 := (e0*e0 + e1*e1 + e2*e2 + e3*e3) + (e4*e4 + e5*e5 + e6*e6 + e7*e7)
			s += (p0 + p1) + (p2 + p3)
			d += abandonChunk
			if d < dim && s >= bound {
				s = inf32()
				break
			}
		}
		if s < inf32() && d < dim {
			s += l2Unroll8(q[d:dim], row[d:dim])
		}
		out[i] = s
	}
}

// l2Bound16 is the fully unrolled early-abandon kernel of the 16-wide
// tier: straight-line 16-dim chunks with a bound check every
// abandonChunk dims, and a direct pairwise call only for the sub-chunk
// tail. Same control flow (and NaN semantics) as l2BoundChunked, minus
// the indirect call per chunk.
func l2Bound16(q, data []float32, dim int, bound float32, out []float32) {
	n := len(data) / dim
	for i := 0; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		var s float32
		d := 0
		for d+abandonChunk <= dim {
			x := (*[16]float32)(q[d+0 : d+16])
			y := (*[16]float32)(row[d+0 : d+16])
			e0 := x[0] - y[0]
			e1 := x[1] - y[1]
			e2 := x[2] - y[2]
			e3 := x[3] - y[3]
			e4 := x[4] - y[4]
			e5 := x[5] - y[5]
			e6 := x[6] - y[6]
			e7 := x[7] - y[7]
			e8 := x[8] - y[8]
			e9 := x[9] - y[9]
			e10 := x[10] - y[10]
			e11 := x[11] - y[11]
			e12 := x[12] - y[12]
			e13 := x[13] - y[13]
			e14 := x[14] - y[14]
			e15 := x[15] - y[15]
			p0 := (e0*e0 + e1*e1 + e2*e2 + e3*e3 + e4*e4 + e5*e5 + e6*e6 + e7*e7) + (e8*e8 + e9*e9 + e10*e10 + e11*e11 + e12*e12 + e13*e13 + e14*e14 + e15*e15)
			x = (*[16]float32)(q[d+16 : d+32])
			y = (*[16]float32)(row[d+16 : d+32])
			e0 = x[0] - y[0]
			e1 = x[1] - y[1]
			e2 = x[2] - y[2]
			e3 = x[3] - y[3]
			e4 = x[4] - y[4]
			e5 = x[5] - y[5]
			e6 = x[6] - y[6]
			e7 = x[7] - y[7]
			e8 = x[8] - y[8]
			e9 = x[9] - y[9]
			e10 = x[10] - y[10]
			e11 = x[11] - y[11]
			e12 = x[12] - y[12]
			e13 = x[13] - y[13]
			e14 = x[14] - y[14]
			e15 = x[15] - y[15]
			p1 := (e0*e0 + e1*e1 + e2*e2 + e3*e3 + e4*e4 + e5*e5 + e6*e6 + e7*e7) + (e8*e8 + e9*e9 + e10*e10 + e11*e11 + e12*e12 + e13*e13 + e14*e14 + e15*e15)
			s += (p0 + p1)
			d += abandonChunk
			if d < dim && s >= bound {
				s = inf32()
				break
			}
		}
		if s < inf32() && d < dim {
			s += l2Unroll16(q[d:dim], row[d:dim])
		}
		out[i] = s
	}
}

// ---------------------------------------------------------------------------
// Query-tile kernels: 4 queries held in registers per data row, so a row
// loaded into cache serves four queries before being re-streamed. Shared by
// all unrolled tiers (the register tile, not the chunk width, is the win);
// the scalar tier keeps a straight reference.

func l2Tile4(qs, data []float32, dim, nq int, out []float32) {
	n := len(data) / dim
	if n == 0 {
		return
	}
	qg := 0
	for ; qg+4 <= nq; qg += 4 {
		q0 := qs[(qg+0)*dim : (qg+0)*dim+dim]
		q1 := qs[(qg+1)*dim : (qg+1)*dim+dim]
		q2 := qs[(qg+2)*dim : (qg+2)*dim+dim]
		q3 := qs[(qg+3)*dim : (qg+3)*dim+dim]
		o0 := out[(qg+0)*n : (qg+0)*n+n]
		o1 := out[(qg+1)*n : (qg+1)*n+n]
		o2 := out[(qg+2)*n : (qg+2)*n+n]
		o3 := out[(qg+3)*n : (qg+3)*n+n]
		for i := 0; i < n; i++ {
			row := data[i*dim : i*dim+dim]
			var s0, s1, s2, s3 float32
			d := 0
			for ; d+8 <= dim; d += 8 {
				xa := (*[4]float32)(row[d : d+4])
				xb := (*[4]float32)(row[d+4 : d+8])
				s0 += l2c4((*[4]float32)(q0[d:d+4]), xa) + l2c4((*[4]float32)(q0[d+4:d+8]), xb)
				s1 += l2c4((*[4]float32)(q1[d:d+4]), xa) + l2c4((*[4]float32)(q1[d+4:d+8]), xb)
				s2 += l2c4((*[4]float32)(q2[d:d+4]), xa) + l2c4((*[4]float32)(q2[d+4:d+8]), xb)
				s3 += l2c4((*[4]float32)(q3[d:d+4]), xa) + l2c4((*[4]float32)(q3[d+4:d+8]), xb)
			}
			if d+4 <= dim {
				x := (*[4]float32)(row[d : d+4])
				s0 += l2c4((*[4]float32)(q0[d:d+4]), x)
				s1 += l2c4((*[4]float32)(q1[d:d+4]), x)
				s2 += l2c4((*[4]float32)(q2[d:d+4]), x)
				s3 += l2c4((*[4]float32)(q3[d:d+4]), x)
				d += 4
			}
			for ; d < dim; d++ {
				xk := row[d]
				t0 := q0[d] - xk
				t1 := q1[d] - xk
				t2 := q2[d] - xk
				t3 := q3[d] - xk
				s0 += t0 * t0
				s1 += t1 * t1
				s2 += t2 * t2
				s3 += t3 * t3
			}
			o0[i], o1[i], o2[i], o3[i] = s0, s1, s2, s3
		}
	}
	for ; qg < nq; qg++ {
		l2Batch4x8(qs[qg*dim:(qg+1)*dim], data, dim, out[qg*n:(qg+1)*n])
	}
}

func ipTile4(qs, data []float32, dim, nq int, out []float32) {
	n := len(data) / dim
	if n == 0 {
		return
	}
	qg := 0
	for ; qg+4 <= nq; qg += 4 {
		q0 := qs[(qg+0)*dim : (qg+0)*dim+dim]
		q1 := qs[(qg+1)*dim : (qg+1)*dim+dim]
		q2 := qs[(qg+2)*dim : (qg+2)*dim+dim]
		q3 := qs[(qg+3)*dim : (qg+3)*dim+dim]
		o0 := out[(qg+0)*n : (qg+0)*n+n]
		o1 := out[(qg+1)*n : (qg+1)*n+n]
		o2 := out[(qg+2)*n : (qg+2)*n+n]
		o3 := out[(qg+3)*n : (qg+3)*n+n]
		for i := 0; i < n; i++ {
			row := data[i*dim : i*dim+dim]
			var s0, s1, s2, s3 float32
			d := 0
			for ; d+8 <= dim; d += 8 {
				x := (*[8]float32)(row[d : d+8])
				s0 += ipc8((*[8]float32)(q0[d:d+8]), x)
				s1 += ipc8((*[8]float32)(q1[d:d+8]), x)
				s2 += ipc8((*[8]float32)(q2[d:d+8]), x)
				s3 += ipc8((*[8]float32)(q3[d:d+8]), x)
			}
			if d+4 <= dim {
				x := (*[4]float32)(row[d : d+4])
				s0 += ipc4((*[4]float32)(q0[d:d+4]), x)
				s1 += ipc4((*[4]float32)(q1[d:d+4]), x)
				s2 += ipc4((*[4]float32)(q2[d:d+4]), x)
				s3 += ipc4((*[4]float32)(q3[d:d+4]), x)
				d += 4
			}
			for ; d < dim; d++ {
				xk := row[d]
				s0 += q0[d] * xk
				s1 += q1[d] * xk
				s2 += q2[d] * xk
				s3 += q3[d] * xk
			}
			o0[i], o1[i], o2[i], o3[i] = s0, s1, s2, s3
		}
	}
	for ; qg < nq; qg++ {
		ipBatch4x8(qs[qg*dim:(qg+1)*dim], data, dim, out[qg*n:(qg+1)*n])
	}
}
