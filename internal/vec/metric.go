package vec

import "fmt"

// Metric names a similarity function supported by vectordb (Sec. 2.1 lists
// Euclidean distance, inner product, cosine similarity, Hamming distance and
// Jaccard distance; Tanimoto is added for the chemical-structure application
// of Sec. 6.2).
type Metric int

const (
	// L2 is squared Euclidean distance (monotone in true Euclidean distance,
	// so top-k order is identical and the sqrt is skipped).
	L2 Metric = iota
	// IP is inner-product similarity; internally converted to a distance by
	// negation so that "smaller is better" holds for every metric.
	IP
	// Cosine is 1 - cosine similarity.
	Cosine
	// Hamming counts differing bits of binary vectors.
	Hamming
	// Jaccard is 1 - |a∧b|/|a∨b| over binary vectors.
	Jaccard
	// Tanimoto is the bit-fingerprint distance used in cheminformatics:
	// 1 - |a∧b| / (|a| + |b| - |a∧b|). For binary data it coincides with
	// Jaccard but is kept distinct because applications name it explicitly.
	Tanimoto
)

// String returns the canonical metric name used by the REST API.
func (m Metric) String() string {
	switch m {
	case L2:
		return "L2"
	case IP:
		return "IP"
	case Cosine:
		return "COSINE"
	case Hamming:
		return "HAMMING"
	case Jaccard:
		return "JACCARD"
	case Tanimoto:
		return "TANIMOTO"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// ParseMetric converts a canonical metric name to a Metric.
func ParseMetric(s string) (Metric, error) {
	for _, m := range []Metric{L2, IP, Cosine, Hamming, Jaccard, Tanimoto} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("vec: unknown metric %q", s)
}

// Binary reports whether the metric operates on binary vectors.
func (m Metric) Binary() bool {
	return m == Hamming || m == Jaccard || m == Tanimoto
}

// DistFunc is a float-vector distance where smaller means more similar.
type DistFunc func(a, b []float32) float32

// Dist returns the DistFunc for the metric. Binary metrics operate on
// bit-packed float words (see FloatsFromBinary), so every metric yields a
// distance over []float32 storage and the full engine applies uniformly.
func (m Metric) Dist() DistFunc {
	switch m {
	case L2:
		return L2Squared
	case IP:
		return NegDot
	case Cosine:
		return CosineDistance
	case Hamming:
		return hammingFloats
	case Jaccard:
		return jaccardFloats
	case Tanimoto:
		return tanimotoFloats
	default:
		panic("vec: metric " + m.String() + " has no distance function")
	}
}

// NegDot is inner product negated into a distance (smaller = more similar).
func NegDot(a, b []float32) float32 { return -Dot(a, b) }

// BatchEligible reports whether the metric's distance decomposes per
// dimension so the blocked batch and tile kernels apply (L2 and IP; cosine
// needs per-pair norms and the binary metrics operate on packed bit words).
func (m Metric) BatchEligible() bool { return m == L2 || m == IP }

// Decomposable reports whether the metric's distance over a concatenation of
// sub-vectors equals the sum of per-sub-vector distances. Inner product is;
// so is L2 (squared), which the vector-fusion path exploits; cosine is not
// unless the data is normalized (in which case it reduces to IP).
func (m Metric) Decomposable() bool { return m == IP || m == L2 }
