// AVX2/FMA and AVX-512 batch distance kernels (amd64). These are the real
// SIMD implementations behind the LevelAVX2/LevelAVX512 batch entry points;
// the pure-Go register-blocked kernels remain the portable fallback and the
// reference semantics. Layout of every kernel:
//
//   - outer loop over n rows of the row-major block;
//   - inner loop over dim in 4 vector-register chunks with independent
//     accumulators (VFMADD231PS), then single-chunk steps, then a scalar
//     VEX tail for dim % lanes;
//   - horizontal reduction into out[i].
//
// Unaligned loads (VMOVUPS) throughout: callers hand arbitrary subslices.
// For L2 the operand order of VSUBPS is irrelevant (the difference is
// squared). NaN/Inf propagate per IEEE exactly as in the Go kernels; only
// summation order differs, which the package's 1e-5 relative tolerance
// doctrine covers.

#include "textflag.h"

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func l2BatchFMA(q, data, out *float32, dim, n int)
TEXT ·l2BatchFMA(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), SI
	MOVQ data+8(FP), DI
	MOVQ out+16(FP), DX
	MOVQ dim+24(FP), CX
	MOVQ n+32(FP), BX

l2f_row:
	TESTQ BX, BX
	JE   l2f_done
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	MOVQ SI, R10
	MOVQ DI, R11
	MOVQ CX, R8

l2f_chunk32:
	CMPQ R8, $32
	JLT  l2f_chunk8
	VMOVUPS (R10), Y0
	VMOVUPS (R11), Y1
	VSUBPS  Y1, Y0, Y0
	VFMADD231PS Y0, Y0, Y4
	VMOVUPS 32(R10), Y1
	VMOVUPS 32(R11), Y2
	VSUBPS  Y2, Y1, Y1
	VFMADD231PS Y1, Y1, Y5
	VMOVUPS 64(R10), Y2
	VMOVUPS 64(R11), Y3
	VSUBPS  Y3, Y2, Y2
	VFMADD231PS Y2, Y2, Y6
	VMOVUPS 96(R10), Y3
	VMOVUPS 96(R11), Y0
	VSUBPS  Y0, Y3, Y3
	VFMADD231PS Y3, Y3, Y7
	ADDQ $128, R10
	ADDQ $128, R11
	SUBQ $32, R8
	JMP  l2f_chunk32

l2f_chunk8:
	CMPQ R8, $8
	JLT  l2f_reduce
	VMOVUPS (R10), Y0
	VMOVUPS (R11), Y1
	VSUBPS  Y1, Y0, Y0
	VFMADD231PS Y0, Y0, Y4
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $8, R8
	JMP  l2f_chunk8

l2f_reduce:
	VADDPS Y5, Y4, Y4
	VADDPS Y7, Y6, Y6
	VADDPS Y6, Y4, Y4
	VEXTRACTF128 $1, Y4, X1
	VADDPS X1, X4, X4
	VHADDPS X4, X4, X4
	VHADDPS X4, X4, X4

	TESTQ R8, R8
	JE   l2f_store

l2f_scalar:
	VMOVSS (R10), X1
	VMOVSS (R11), X2
	VSUBSS X2, X1, X1
	VMULSS X1, X1, X1
	VADDSS X1, X4, X4
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ R8
	JNE  l2f_scalar

l2f_store:
	VMOVSS X4, (DX)
	ADDQ $4, DX
	MOVQ R11, DI
	DECQ BX
	JMP  l2f_row

l2f_done:
	VZEROUPPER
	RET

// func ipBatchFMA(q, data, out *float32, dim, n int)
TEXT ·ipBatchFMA(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), SI
	MOVQ data+8(FP), DI
	MOVQ out+16(FP), DX
	MOVQ dim+24(FP), CX
	MOVQ n+32(FP), BX

ipf_row:
	TESTQ BX, BX
	JE   ipf_done
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	MOVQ SI, R10
	MOVQ DI, R11
	MOVQ CX, R8

ipf_chunk32:
	CMPQ R8, $32
	JLT  ipf_chunk8
	VMOVUPS (R10), Y0
	VMOVUPS (R11), Y1
	VFMADD231PS Y1, Y0, Y4
	VMOVUPS 32(R10), Y2
	VMOVUPS 32(R11), Y3
	VFMADD231PS Y3, Y2, Y5
	VMOVUPS 64(R10), Y0
	VMOVUPS 64(R11), Y1
	VFMADD231PS Y1, Y0, Y6
	VMOVUPS 96(R10), Y2
	VMOVUPS 96(R11), Y3
	VFMADD231PS Y3, Y2, Y7
	ADDQ $128, R10
	ADDQ $128, R11
	SUBQ $32, R8
	JMP  ipf_chunk32

ipf_chunk8:
	CMPQ R8, $8
	JLT  ipf_reduce
	VMOVUPS (R10), Y0
	VMOVUPS (R11), Y1
	VFMADD231PS Y1, Y0, Y4
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $8, R8
	JMP  ipf_chunk8

ipf_reduce:
	VADDPS Y5, Y4, Y4
	VADDPS Y7, Y6, Y6
	VADDPS Y6, Y4, Y4
	VEXTRACTF128 $1, Y4, X1
	VADDPS X1, X4, X4
	VHADDPS X4, X4, X4
	VHADDPS X4, X4, X4

	TESTQ R8, R8
	JE   ipf_store

ipf_scalar:
	VMOVSS (R10), X1
	VMOVSS (R11), X2
	VMULSS X2, X1, X1
	VADDSS X1, X4, X4
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ R8
	JNE  ipf_scalar

ipf_store:
	VMOVSS X4, (DX)
	ADDQ $4, DX
	MOVQ R11, DI
	DECQ BX
	JMP  ipf_row

ipf_done:
	VZEROUPPER
	RET

// func l2BatchZ(q, data, out *float32, dim, n int)
TEXT ·l2BatchZ(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), SI
	MOVQ data+8(FP), DI
	MOVQ out+16(FP), DX
	MOVQ dim+24(FP), CX
	MOVQ n+32(FP), BX

l2z_row:
	TESTQ BX, BX
	JE   l2z_done
	VXORPS Z4, Z4, Z4
	VXORPS Z5, Z5, Z5
	VXORPS Z6, Z6, Z6
	VXORPS Z7, Z7, Z7
	MOVQ SI, R10
	MOVQ DI, R11
	MOVQ CX, R8

l2z_chunk64:
	CMPQ R8, $64
	JLT  l2z_chunk16
	VMOVUPS (R10), Z0
	VMOVUPS (R11), Z1
	VSUBPS  Z1, Z0, Z0
	VFMADD231PS Z0, Z0, Z4
	VMOVUPS 64(R10), Z1
	VMOVUPS 64(R11), Z2
	VSUBPS  Z2, Z1, Z1
	VFMADD231PS Z1, Z1, Z5
	VMOVUPS 128(R10), Z2
	VMOVUPS 128(R11), Z3
	VSUBPS  Z3, Z2, Z2
	VFMADD231PS Z2, Z2, Z6
	VMOVUPS 192(R10), Z3
	VMOVUPS 192(R11), Z0
	VSUBPS  Z0, Z3, Z3
	VFMADD231PS Z3, Z3, Z7
	ADDQ $256, R10
	ADDQ $256, R11
	SUBQ $64, R8
	JMP  l2z_chunk64

l2z_chunk16:
	CMPQ R8, $16
	JLT  l2z_reduce
	VMOVUPS (R10), Z0
	VMOVUPS (R11), Z1
	VSUBPS  Z1, Z0, Z0
	VFMADD231PS Z0, Z0, Z4
	ADDQ $64, R10
	ADDQ $64, R11
	SUBQ $16, R8
	JMP  l2z_chunk16

l2z_reduce:
	VADDPS Z5, Z4, Z4
	VADDPS Z7, Z6, Z6
	VADDPS Z6, Z4, Z4
	VEXTRACTF64X4 $1, Z4, Y1
	VADDPS Y1, Y4, Y4
	VEXTRACTF128 $1, Y4, X1
	VADDPS X1, X4, X4
	VHADDPS X4, X4, X4
	VHADDPS X4, X4, X4

	TESTQ R8, R8
	JE   l2z_store

l2z_scalar:
	VMOVSS (R10), X1
	VMOVSS (R11), X2
	VSUBSS X2, X1, X1
	VMULSS X1, X1, X1
	VADDSS X1, X4, X4
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ R8
	JNE  l2z_scalar

l2z_store:
	VMOVSS X4, (DX)
	ADDQ $4, DX
	MOVQ R11, DI
	DECQ BX
	JMP  l2z_row

l2z_done:
	VZEROUPPER
	RET

// func ipBatchZ(q, data, out *float32, dim, n int)
TEXT ·ipBatchZ(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), SI
	MOVQ data+8(FP), DI
	MOVQ out+16(FP), DX
	MOVQ dim+24(FP), CX
	MOVQ n+32(FP), BX

ipz_row:
	TESTQ BX, BX
	JE   ipz_done
	VXORPS Z4, Z4, Z4
	VXORPS Z5, Z5, Z5
	VXORPS Z6, Z6, Z6
	VXORPS Z7, Z7, Z7
	MOVQ SI, R10
	MOVQ DI, R11
	MOVQ CX, R8

ipz_chunk64:
	CMPQ R8, $64
	JLT  ipz_chunk16
	VMOVUPS (R10), Z0
	VMOVUPS (R11), Z1
	VFMADD231PS Z1, Z0, Z4
	VMOVUPS 64(R10), Z2
	VMOVUPS 64(R11), Z3
	VFMADD231PS Z3, Z2, Z5
	VMOVUPS 128(R10), Z0
	VMOVUPS 128(R11), Z1
	VFMADD231PS Z1, Z0, Z6
	VMOVUPS 192(R10), Z2
	VMOVUPS 192(R11), Z3
	VFMADD231PS Z3, Z2, Z7
	ADDQ $256, R10
	ADDQ $256, R11
	SUBQ $64, R8
	JMP  ipz_chunk64

ipz_chunk16:
	CMPQ R8, $16
	JLT  ipz_reduce
	VMOVUPS (R10), Z0
	VMOVUPS (R11), Z1
	VFMADD231PS Z1, Z0, Z4
	ADDQ $64, R10
	ADDQ $64, R11
	SUBQ $16, R8
	JMP  ipz_chunk16

ipz_reduce:
	VADDPS Z5, Z4, Z4
	VADDPS Z7, Z6, Z6
	VADDPS Z6, Z4, Z4
	VEXTRACTF64X4 $1, Z4, Y1
	VADDPS Y1, Y4, Y4
	VEXTRACTF128 $1, Y4, X1
	VADDPS X1, X4, X4
	VHADDPS X4, X4, X4
	VHADDPS X4, X4, X4

	TESTQ R8, R8
	JE   ipz_store

ipz_scalar:
	VMOVSS (R10), X1
	VMOVSS (R11), X2
	VMULSS X2, X1, X1
	VADDSS X1, X4, X4
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ R8
	JNE  ipz_scalar

ipz_store:
	VMOVSS X4, (DX)
	ADDQ $4, DX
	MOVQ R11, DI
	DECQ BX
	JMP  ipz_row

ipz_done:
	VZEROUPPER
	RET
