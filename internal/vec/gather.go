package vec

import "vectordb/internal/bufferpool"

// Gather kernels: the sparse half of bitset pushdown. When a filter leaves
// too few survivors in a block for in-place runs to pay off, the scan driver
// hands the survivor row list here; the rows are compacted into a pooled
// contiguous scratch block and then handed to the hooked batch kernels, so
// even a 1%-selectivity scan is one SIMD dispatch per block rather than one
// scalar distance per surviving row. Gathering lives inside internal/vec on
// purpose — the kerneldispatch analyzer guarantees callers cannot reach a
// per-tier kernel around the dispatch table, and keeping the copy next to
// the kernel keeps that guarantee airtight for the filtered path too.

// L2SquaredGatherBound computes the squared L2 distance from q to each row
// rows[i] of the row-major matrix data into out[i] (len(out) >= len(rows)),
// with the same early-abandonment contract as L2SquaredBatchBound: rows
// whose partial sum reaches bound are reported as +Inf.
func L2SquaredGatherBound(q, data []float32, dim int, rows []int32, bound float32, out []float32) {
	if len(rows) == 0 {
		return
	}
	buf := bufferpool.GetFloats(len(rows) * dim)
	gatherRows(*buf, data, dim, rows)
	L2SquaredBatchBound(q, *buf, dim, bound, out)
	bufferpool.PutFloats(buf)
}

// NegDotGather computes the negated inner product (distance form) of q with
// each row rows[i] of data into out[i].
func NegDotGather(q, data []float32, dim int, rows []int32, out []float32) {
	if len(rows) == 0 {
		return
	}
	buf := bufferpool.GetFloats(len(rows) * dim)
	gatherRows(*buf, data, dim, rows)
	NegDotBatch(q, *buf, dim, out[:len(rows)])
	bufferpool.PutFloats(buf)
}

// gatherRows compacts the selected rows of data into dst, front to back.
func gatherRows(dst, data []float32, dim int, rows []int32) {
	for i, r := range rows {
		copy(dst[i*dim:(i+1)*dim], data[int(r)*dim:int(r+1)*dim])
	}
}
