package vec

import "math/bits"

// BinaryVector is a packed bit vector (64 bits per word) used for Hamming,
// Jaccard and Tanimoto metrics, e.g. chemical fingerprints (Sec. 6.2).
type BinaryVector []uint64

// NewBinaryVector returns a zeroed vector able to hold nbits bits.
func NewBinaryVector(nbits int) BinaryVector {
	return make(BinaryVector, (nbits+63)/64)
}

// SetBit sets bit i.
func (v BinaryVector) SetBit(i int) { v[i/64] |= 1 << (uint(i) % 64) }

// Bit reports bit i.
func (v BinaryVector) Bit(i int) bool { return v[i/64]&(1<<(uint(i)%64)) != 0 }

// PopCount returns the number of set bits.
func (v BinaryVector) PopCount() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// HammingDistance counts differing bits between a and b.
func HammingDistance(a, b BinaryVector) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] ^ b[i])
	}
	return n
}

// JaccardDistance is 1 - |a∧b|/|a∨b|. Two empty sets have distance 0.
func JaccardDistance(a, b BinaryVector) float32 {
	var inter, union int
	for i := range a {
		inter += bits.OnesCount64(a[i] & b[i])
		union += bits.OnesCount64(a[i] | b[i])
	}
	if union == 0 {
		return 0
	}
	return 1 - float32(inter)/float32(union)
}

// TanimotoDistance is 1 - |a∧b|/(|a|+|b|-|a∧b|). On binary data this equals
// Jaccard; it is exposed under its cheminformatics name.
func TanimotoDistance(a, b BinaryVector) float32 {
	var inter, ca, cb int
	for i := range a {
		inter += bits.OnesCount64(a[i] & b[i])
		ca += bits.OnesCount64(a[i])
		cb += bits.OnesCount64(b[i])
	}
	den := ca + cb - inter
	if den == 0 {
		return 0
	}
	return 1 - float32(inter)/float32(den)
}

// BinaryDist returns the distance function for a binary metric.
func (m Metric) BinaryDist() func(a, b BinaryVector) float32 {
	switch m {
	case Hamming:
		return func(a, b BinaryVector) float32 { return float32(HammingDistance(a, b)) }
	case Jaccard:
		return JaccardDistance
	case Tanimoto:
		return TanimotoDistance
	default:
		panic("vec: " + m.String() + " is not a binary metric")
	}
}
