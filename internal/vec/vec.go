// Package vec provides the low-level vector math substrate of vectordb:
// similarity/distance kernels for float vectors and binary fingerprints,
// with runtime selection between several unrolled kernel tiers.
//
// The paper (Sec. 3.2.2) factors every similarity-computing function into
// four SIMD variants (SSE, AVX, AVX2, AVX512), compiles each separately and
// hooks the right function pointers at runtime based on CPU flags. Go has no
// stdlib SIMD intrinsics, so this package reproduces the *mechanism* — one
// kernel per tier, selected once at startup through function pointers — with
// unrolled multi-accumulator kernels standing in for wider registers:
//
//	LevelScalar  — straight loop                 (no SIMD)
//	LevelSSE     — 4-wide unroll, 1 accumulator  (128-bit registers)
//	LevelAVX     — 8-wide unroll, 2 accumulators (256-bit registers)
//	LevelAVX2    — 8-wide unroll, 2 accumulators + FMA-style fusion
//	LevelAVX512  — 16-wide unroll, 4 accumulators (512-bit registers)
//
// Wider tiers expose more instruction-level parallelism and are measurably
// faster, preserving the shape of the paper's Fig. 12 (AVX512 ≈ 1.5× AVX2).
package vec

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
)

// Level identifies a SIMD kernel tier.
type Level int32

const (
	LevelScalar Level = iota
	LevelSSE
	LevelAVX
	LevelAVX2
	LevelAVX512
)

// String returns the conventional instruction-set name for the tier.
func (l Level) String() string {
	switch l {
	case LevelScalar:
		return "scalar"
	case LevelSSE:
		return "sse"
	case LevelAVX:
		return "avx"
	case LevelAVX2:
		return "avx2"
	case LevelAVX512:
		return "avx512"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel converts a tier name ("sse", "avx2", ...) to a Level.
func ParseLevel(s string) (Level, error) {
	for _, l := range []Level{LevelScalar, LevelSSE, LevelAVX, LevelAVX2, LevelAVX512} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("vec: unknown SIMD level %q", s)
}

// kernelSet is the set of hooked function pointers for one tier.
type kernelSet struct {
	l2  func(a, b []float32) float32
	ip  func(a, b []float32) float32
	l2b func(q []float32, data []float32, dim int, out []float32)
	ipb func(q []float32, data []float32, dim int, out []float32)
}

var kernels = [...]kernelSet{
	LevelScalar: {l2Scalar, ipScalar, l2BatchGeneric, ipBatchGeneric},
	LevelSSE:    {l2Unroll4, ipUnroll4, l2BatchGeneric, ipBatchGeneric},
	LevelAVX:    {l2Unroll8, ipUnroll8, l2BatchGeneric, ipBatchGeneric},
	LevelAVX2:   {l2Unroll8, ipUnroll8, l2BatchGeneric, ipBatchGeneric},
	LevelAVX512: {l2Unroll16, ipUnroll16, l2BatchGeneric, ipBatchGeneric},
}

var currentLevel atomic.Int32

// active holds the hooked kernel pointers. It is an atomic pointer so that
// SetLevel (startup, tests) can retarget the kernels while searches are in
// flight on other goroutines without a data race; each kernelSet is
// immutable once published.
var active atomic.Pointer[kernelSet]

func init() {
	SetLevel(DetectLevel())
}

// DetectLevel picks the best tier supported by the running CPU. Real CPUID
// probing is unavailable from the stdlib, so on amd64/arm64 the widest tier
// is assumed (every mainstream 2020+ server CPU supports 256-bit vectors and
// the unrolled kernels are portable Go anyway). The VECTORDB_SIMD environment
// variable overrides detection, mirroring the paper's single-binary-many-CPUs
// requirement: the same binary adapts per host without recompilation.
func DetectLevel() Level {
	if s := os.Getenv("VECTORDB_SIMD"); s != "" {
		if l, err := ParseLevel(s); err == nil {
			return l
		}
	}
	switch runtime.GOARCH {
	case "amd64", "arm64":
		return LevelAVX512
	default:
		return LevelSSE
	}
}

// SetLevel hooks the kernel function pointers for the given tier.
func SetLevel(l Level) {
	if l < LevelScalar || l > LevelAVX512 {
		l = LevelScalar
	}
	ks := kernels[l]
	active.Store(&ks)
	currentLevel.Store(int32(l))
}

// CurrentLevel reports the tier currently hooked.
func CurrentLevel() Level { return Level(currentLevel.Load()) }

// L2Squared returns the squared Euclidean distance between a and b using the
// hooked kernel. Panics if lengths differ (programming error, not data error).
func L2Squared(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	countCurrent()
	return active.Load().l2(a, b)
}

// Dot returns the inner product of a and b using the hooked kernel.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	countCurrent()
	return active.Load().ip(a, b)
}

// L2SquaredAt computes L2Squared with an explicit tier, bypassing the hook.
// Benchmarks use it to compare tiers side by side (Fig. 12).
func L2SquaredAt(l Level, a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	return kernels[l].l2(a, b)
}

// DotAt computes Dot with an explicit tier, bypassing the hook.
func DotAt(l Level, a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	return kernels[l].ip(a, b)
}

// L2SquaredBatch computes the squared L2 distance from q to every row of the
// flat row-major matrix data (len(data) = n*dim) into out (len n).
func L2SquaredBatch(q, data []float32, dim int, out []float32) {
	countCurrent()
	active.Load().l2b(q, data, dim, out)
}

// DotBatch computes the inner product of q with every row of data into out.
func DotBatch(q, data []float32, dim int, out []float32) {
	countCurrent()
	active.Load().ipb(q, data, dim, out)
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 { return sqrt32(Dot(a, a)) }

// Normalize scales a in place to unit Euclidean norm. Zero vectors are left
// unchanged.
func Normalize(a []float32) {
	n := Norm(a)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
}

// CosineDistance returns 1 - cos(a, b) in [0, 2]. Zero vectors are treated as
// maximally distant from everything (distance 1).
func CosineDistance(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - Dot(a, b)/(na*nb)
}

func sqrt32(x float32) float32 {
	// Newton refinement over a float64 seed keeps this dependency-free and
	// exact to float32 precision.
	if x <= 0 {
		return 0
	}
	f := float64(x)
	g := f
	for i := 0; i < 32; i++ {
		ng := 0.5 * (g + f/g)
		if ng == g {
			break
		}
		g = ng
	}
	return float32(g)
}
