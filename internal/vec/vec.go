// Package vec provides the low-level vector math substrate of vectordb:
// similarity/distance kernels for float vectors and binary fingerprints,
// with runtime selection between several unrolled kernel tiers.
//
// The paper (Sec. 3.2.2) factors every similarity-computing function into
// four SIMD variants (SSE, AVX, AVX2, AVX512), compiles each separately and
// hooks the right function pointers at runtime based on CPU flags. This
// package reproduces that mechanism — one kernel set per tier, selected
// once at startup through function pointers:
//
//	LevelScalar  — straight loop                 (no SIMD)
//	LevelSSE     — 4-wide unroll, 1 accumulator  (128-bit registers)
//	LevelAVX     — 8-wide unroll, 2 accumulators (256-bit registers)
//	LevelAVX2    — 8-wide unroll + FMA-style fusion
//	LevelAVX512  — 16-wide unroll, 4 accumulators (512-bit registers)
//
// Every tier has portable register-blocked pure-Go kernels (multi-
// accumulator unrolls standing in for wider registers). On amd64, the
// *batch* entry points of the AVX2/AVX512 tiers are additionally backed by
// hand-written AVX2+FMA / AVX-512 assembly (asm_amd64.s), installed at
// startup only when CPUID and XCR0 confirm host support — the Go kernels
// remain the reference semantics the asm is fuzz-tested against, and the
// fallback everywhere else. Wider tiers are measurably faster, preserving
// the shape of the paper's Fig. 12.
package vec

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Level identifies a SIMD kernel tier.
type Level int32

const (
	LevelScalar Level = iota
	LevelSSE
	LevelAVX
	LevelAVX2
	LevelAVX512
)

// String returns the conventional instruction-set name for the tier.
func (l Level) String() string {
	switch l {
	case LevelScalar:
		return "scalar"
	case LevelSSE:
		return "sse"
	case LevelAVX:
		return "avx"
	case LevelAVX2:
		return "avx2"
	case LevelAVX512:
		return "avx512"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel converts a tier name ("sse", "avx2", ...) to a Level.
func ParseLevel(s string) (Level, error) {
	for _, l := range []Level{LevelScalar, LevelSSE, LevelAVX, LevelAVX2, LevelAVX512} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("vec: unknown SIMD level %q", s)
}

// kernelSet is the set of hooked function pointers for one tier.
type kernelSet struct {
	l2   func(a, b []float32) float32
	ip   func(a, b []float32) float32
	l2b  func(q []float32, data []float32, dim int, out []float32)
	ipb  func(q []float32, data []float32, dim int, out []float32)
	l2bb func(q []float32, data []float32, dim int, bound float32, out []float32)
	l2t  func(qs []float32, data []float32, dim, nq int, out []float32)
	ipt  func(qs []float32, data []float32, dim, nq int, out []float32)
}

var kernels = [...]kernelSet{
	LevelScalar: {l2Scalar, ipScalar, l2BatchScalar, ipBatchScalar, l2BoundScalar, l2TileScalar, ipTileScalar},
	LevelSSE:    {l2Unroll4, ipUnroll4, l2Batch4x4, ipBatch4x4, l2Bound4, l2Tile4, ipTile4},
	LevelAVX:    {l2Unroll8, ipUnroll8, l2Batch4x8, ipBatch4x8, l2Bound8, l2Tile4, ipTile4},
	LevelAVX2:   {l2Unroll8, ipUnroll8, l2Batch4x8, ipBatch4x8, l2Bound8, l2Tile4, ipTile4},
	LevelAVX512: {l2Unroll16, ipUnroll16, l2Batch4x16, ipBatch4x16, l2Bound16, l2Tile4, ipTile4},
}

var currentLevel atomic.Int32

// active holds the hooked kernel pointers. It is an atomic pointer so that
// SetLevel (startup, tests) can retarget the kernels while searches are in
// flight on other goroutines without a data race; each kernelSet is
// immutable once published.
var active atomic.Pointer[kernelSet]

func init() {
	installASMKernels()
	SetLevel(DetectLevel())
}

// DetectLevel picks the best tier supported by the running CPU. On amd64
// the decision comes from real CPUID/XCR0 probing (see asm_amd64.go):
// AVX-512 F, else AVX2+FMA, else the portable Go tiers. Elsewhere the Go
// kernels run everywhere and the widest useful tier is assumed. The
// VECTORDB_SIMD environment variable overrides detection, mirroring the
// paper's single-binary-many-CPUs requirement: the same binary adapts per
// host without recompilation. A forced tier is always safe — the asm
// kernels are installed per tier only when the host supports them.
func DetectLevel() Level {
	if s := os.Getenv("VECTORDB_SIMD"); s != "" {
		if l, err := ParseLevel(s); err == nil {
			return l
		}
	}
	return bestLevelForHost()
}

// SetLevel hooks the kernel function pointers for the given tier.
func SetLevel(l Level) {
	if l < LevelScalar || l > LevelAVX512 {
		l = LevelScalar
	}
	ks := kernels[l]
	active.Store(&ks)
	currentLevel.Store(int32(l))
}

// CurrentLevel reports the tier currently hooked.
func CurrentLevel() Level { return Level(currentLevel.Load()) }

// L2Squared returns the squared Euclidean distance between a and b using the
// hooked kernel. Panics if lengths differ (programming error, not data error).
func L2Squared(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	countCurrent()
	return active.Load().l2(a, b)
}

// Dot returns the inner product of a and b using the hooked kernel.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	countCurrent()
	return active.Load().ip(a, b)
}

// L2SquaredAt computes L2Squared with an explicit tier, bypassing the hook.
// Benchmarks use it to compare tiers side by side (Fig. 12).
func L2SquaredAt(l Level, a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	return kernels[l].l2(a, b)
}

// DotAt computes Dot with an explicit tier, bypassing the hook.
func DotAt(l Level, a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	return kernels[l].ip(a, b)
}

// L2SquaredBatch computes the squared L2 distance from q to every row of the
// flat row-major matrix data (len(data) = n*dim) into out (len >= n), using
// the hooked tier's register-blocked batch kernel: one dispatch per block
// instead of one per row.
func L2SquaredBatch(q, data []float32, dim int, out []float32) {
	countCurrentBatch()
	active.Load().l2b(q, data, dim, out)
}

// DotBatch computes the inner product of q with every row of data into out.
func DotBatch(q, data []float32, dim int, out []float32) {
	countCurrentBatch()
	active.Load().ipb(q, data, dim, out)
}

// NegDotBatch is DotBatch negated into distances (smaller = more similar),
// the batch analogue of NegDot for inner-product scans.
func NegDotBatch(q, data []float32, dim int, out []float32) {
	countCurrentBatch()
	active.Load().ipb(q, data, dim, out)
	n := len(data) / dim
	for i := 0; i < n; i++ {
		out[i] = -out[i]
	}
}

// L2SquaredBatchBound is L2SquaredBatch with early abandonment: a row whose
// partial sum reaches bound part-way through its dimensions is abandoned and
// reported as +Inf (its true distance provably >= bound, partial sums being
// monotone). Rows whose distance is below bound are reported exactly as
// L2SquaredBatch would. Callers feed the current top-k worst distance as
// bound so heap pruning reaches inside the block; bound = +Inf disables
// abandonment.
func L2SquaredBatchBound(q, data []float32, dim int, bound float32, out []float32) {
	countCurrentBatch()
	active.Load().l2bb(q, data, dim, bound, out)
}

// L2SquaredTile computes the full query×data distance tile: nq =
// len(queries)/dim contiguous queries against n = len(data)/dim rows, out
// laid out query-major (out[qi*n+i] = distance of query qi to row i, len >=
// nq*n). The kernel register-blocks four queries per data row, so a data
// block loaded into cache is reused across the query block instead of being
// re-streamed per query — the blocking mechanism behind the paper's Eq. (1).
func L2SquaredTile(queries, data []float32, dim int, out []float32) {
	countCurrentBatch()
	active.Load().l2t(queries, data, dim, len(queries)/dim, out)
}

// DotTile is L2SquaredTile for inner products (not negated).
func DotTile(queries, data []float32, dim int, out []float32) {
	countCurrentBatch()
	active.Load().ipt(queries, data, dim, len(queries)/dim, out)
}

// NegDotTile is DotTile negated into distances.
func NegDotTile(queries, data []float32, dim int, out []float32) {
	countCurrentBatch()
	nq := len(queries) / dim
	active.Load().ipt(queries, data, dim, nq, out)
	n := len(data) / dim
	for i := 0; i < nq*n; i++ {
		out[i] = -out[i]
	}
}

// L2SquaredBatchAt runs the batch kernel of an explicit tier (tests,
// benchmarks).
func L2SquaredBatchAt(l Level, q, data []float32, dim int, out []float32) {
	kernels[l].l2b(q, data, dim, out)
}

// DotBatchAt runs the dot batch kernel of an explicit tier.
func DotBatchAt(l Level, q, data []float32, dim int, out []float32) {
	kernels[l].ipb(q, data, dim, out)
}

// L2SquaredBatchBoundAt runs the bound kernel of an explicit tier.
func L2SquaredBatchBoundAt(l Level, q, data []float32, dim int, bound float32, out []float32) {
	kernels[l].l2bb(q, data, dim, bound, out)
}

// L2SquaredTileAt runs the tile kernel of an explicit tier.
func L2SquaredTileAt(l Level, queries, data []float32, dim int, out []float32) {
	kernels[l].l2t(queries, data, dim, len(queries)/dim, out)
}

// DotTileAt runs the dot tile kernel of an explicit tier.
func DotTileAt(l Level, queries, data []float32, dim int, out []float32) {
	kernels[l].ipt(queries, data, dim, len(queries)/dim, out)
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 { return sqrt32(Dot(a, a)) }

// Normalize scales a in place to unit Euclidean norm. Zero vectors are left
// unchanged.
func Normalize(a []float32) {
	n := Norm(a)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
}

// CosineDistance returns 1 - cos(a, b) in [0, 2]. Zero vectors are treated as
// maximally distant from everything (distance 1).
func CosineDistance(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - Dot(a, b)/(na*nb)
}

func sqrt32(x float32) float32 {
	// Newton refinement over a float64 seed keeps this dependency-free and
	// exact to float32 precision.
	if x <= 0 {
		return 0
	}
	f := float64(x)
	g := f
	for i := 0; i < 32; i++ {
		ng := 0.5 * (g + f/g)
		if ng == g {
			break
		}
		g = ng
	}
	return float32(g)
}
