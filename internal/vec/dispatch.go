package vec

import "sync/atomic"

// Kernel-tier dispatch accounting: when enabled, every call through the
// hooked distance entry points (L2Squared, Dot and their batch variants)
// bumps a per-tier counter, so /metrics can show which SIMD tier actually
// served queries. Off by default — the hot path then pays one atomic load
// of the enable flag and nothing else.

var (
	countDispatch       atomic.Bool
	dispatchCounts      [int(LevelAVX512) + 1]atomic.Int64
	batchDispatchCounts [int(LevelAVX512) + 1]atomic.Int64
)

// SetDispatchCounting turns per-tier dispatch counting on or off.
func SetDispatchCounting(on bool) { countDispatch.Store(on) }

// DispatchCounting reports whether dispatch counting is enabled.
func DispatchCounting() bool { return countDispatch.Load() }

// DispatchCount returns the number of hooked-kernel dispatches served by
// the given tier since the last reset.
func DispatchCount(l Level) int64 {
	if l < LevelScalar || l > LevelAVX512 {
		return 0
	}
	return dispatchCounts[l].Load()
}

// BatchDispatchCount returns the number of hooked *batch* kernel dispatches
// (L2SquaredBatch/DotBatch/bound/tile entry points) served by the given tier
// since the last reset. The internal scan paths are required to go through
// these entry points — the conformance tests assert this count is non-zero
// after a scan, which is the guard against a path silently regressing to a
// per-pair loop over a contiguous block.
func BatchDispatchCount(l Level) int64 {
	if l < LevelScalar || l > LevelAVX512 {
		return 0
	}
	return batchDispatchCounts[l].Load()
}

// BatchDispatchTotal sums batch-kernel dispatches across all tiers.
func BatchDispatchTotal() int64 {
	var t int64
	for i := range batchDispatchCounts {
		t += batchDispatchCounts[i].Load()
	}
	return t
}

// ResetDispatchCounts zeroes all per-tier dispatch counters, pairwise and
// batch.
func ResetDispatchCounts() {
	for i := range dispatchCounts {
		dispatchCounts[i].Store(0)
		batchDispatchCounts[i].Store(0)
	}
}

// Levels lists all kernel tiers, lowest first.
func Levels() []Level {
	return []Level{LevelScalar, LevelSSE, LevelAVX, LevelAVX2, LevelAVX512}
}

// countCurrent records one dispatch against the currently hooked tier.
func countCurrent() {
	if countDispatch.Load() {
		dispatchCounts[currentLevel.Load()].Add(1)
	}
}

// countCurrentBatch records one batch-kernel dispatch against the currently
// hooked tier.
func countCurrentBatch() {
	if countDispatch.Load() {
		batchDispatchCounts[currentLevel.Load()].Add(1)
	}
}
