package vec

import "sync/atomic"

// Kernel-tier dispatch accounting: when enabled, every call through the
// hooked distance entry points (L2Squared, Dot and their batch variants)
// bumps a per-tier counter, so /metrics can show which SIMD tier actually
// served queries. Off by default — the hot path then pays one atomic load
// of the enable flag and nothing else.

var (
	countDispatch  atomic.Bool
	dispatchCounts [int(LevelAVX512) + 1]atomic.Int64
)

// SetDispatchCounting turns per-tier dispatch counting on or off.
func SetDispatchCounting(on bool) { countDispatch.Store(on) }

// DispatchCounting reports whether dispatch counting is enabled.
func DispatchCounting() bool { return countDispatch.Load() }

// DispatchCount returns the number of hooked-kernel dispatches served by
// the given tier since the last reset.
func DispatchCount(l Level) int64 {
	if l < LevelScalar || l > LevelAVX512 {
		return 0
	}
	return dispatchCounts[l].Load()
}

// ResetDispatchCounts zeroes all per-tier dispatch counters.
func ResetDispatchCounts() {
	for i := range dispatchCounts {
		dispatchCounts[i].Store(0)
	}
}

// Levels lists all kernel tiers, lowest first.
func Levels() []Level {
	return []Level{LevelScalar, LevelSSE, LevelAVX, LevelAVX2, LevelAVX512}
}

// countCurrent records one dispatch against the currently hooked tier.
func countCurrent() {
	if countDispatch.Load() {
		dispatchCounts[currentLevel.Load()].Add(1)
	}
}
