package vec

import (
	"math"
	"math/rand"
	"testing"
)

func TestGatherKernelsMatchPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{4, 16, 33, 128} {
		const n = 300
		data := make([]float32, n*dim)
		q := make([]float32, dim)
		for i := range data {
			data[i] = rng.Float32()
		}
		for i := range q {
			q[i] = rng.Float32()
		}
		// Scattered survivor list with duplicates-free random rows.
		var rows []int32
		for i := 0; i < n; i += 1 + rng.Intn(5) {
			rows = append(rows, int32(i))
		}
		out := make([]float32, len(rows))

		L2SquaredGatherBound(q, data, dim, rows, inf32(), out)
		for i, r := range rows {
			want := L2Squared(q, data[int(r)*dim:(int(r)+1)*dim])
			if math.Abs(float64(out[i]-want)) > 1e-4*float64(1+want) {
				t.Fatalf("dim=%d L2 gather row %d: got %v want %v", dim, r, out[i], want)
			}
		}

		NegDotGather(q, data, dim, rows, out)
		for i, r := range rows {
			want := -Dot(q, data[int(r)*dim:(int(r)+1)*dim])
			if math.Abs(float64(out[i]-want)) > 1e-4*(1+math.Abs(float64(want))) {
				t.Fatalf("dim=%d IP gather row %d: got %v want %v", dim, r, out[i], want)
			}
		}
	}
}

func TestGatherBoundAbandons(t *testing.T) {
	// dim must exceed abandonChunk so the bound kernel has a mid-row
	// checkpoint at which to abandon.
	const dim, n = 2 * abandonChunk, 64
	data := make([]float32, n*dim)
	q := make([]float32, dim)
	for i := range q {
		q[i] = 1
	}
	// Row 0 identical to q (distance 0), the rest far away.
	copy(data[:dim], q)
	for i := dim; i < len(data); i++ {
		data[i] = 100
	}
	rows := []int32{0, 5, 10, 63}
	out := make([]float32, len(rows))
	L2SquaredGatherBound(q, data, dim, rows, 1.0, out)
	if out[0] != 0 {
		t.Fatalf("row 0 distance = %v, want 0", out[0])
	}
	// The bound contract: rows below bound are exact; rows at or past it
	// are either abandoned (+Inf) or exact — never a value below bound.
	exact := L2Squared(q, data[5*dim:6*dim])
	for i := 1; i < len(rows); i++ {
		if got := float64(out[i]); got < 1.0 {
			t.Fatalf("far row %d reported %v below bound", rows[i], out[i])
		} else if !math.IsInf(got, 1) && math.Abs(got-float64(exact)) > 1e-2*float64(exact) {
			t.Fatalf("far row %d neither abandoned nor exact: %v (exact %v)", rows[i], out[i], exact)
		}
	}
}

func TestGatherRoutesThroughDispatchTable(t *testing.T) {
	SetDispatchCounting(true)
	defer SetDispatchCounting(false)
	ResetDispatchCounts()

	const dim = 16
	data := make([]float32, 10*dim)
	q := make([]float32, dim)
	rows := []int32{1, 3, 7}
	out := make([]float32, len(rows))
	L2SquaredGatherBound(q, data, dim, rows, inf32(), out)
	NegDotGather(q, data, dim, rows, out)
	if got := BatchDispatchTotal(); got < 2 {
		t.Fatalf("gather kernels dispatched %d batch kernels, want >= 2 (must route through the dispatch table)", got)
	}
}

func TestGatherAllocs(t *testing.T) {
	const dim = 16
	data := make([]float32, 256*dim)
	q := make([]float32, dim)
	rows := make([]int32, 64)
	for i := range rows {
		rows[i] = int32(i * 3)
	}
	out := make([]float32, len(rows))
	// Warm the float pool.
	L2SquaredGatherBound(q, data, dim, rows, inf32(), out)
	n := testing.AllocsPerRun(100, func() {
		L2SquaredGatherBound(q, data, dim, rows, inf32(), out)
	})
	if n > 0 {
		t.Fatalf("L2SquaredGatherBound allocs/op = %v, want 0", n)
	}
}
