package vec

// Kernel tiers. Each function computes over the common prefix handled by its
// unroll width and finishes the tail with a scalar loop. Multiple independent
// accumulators break the floating-point dependency chain, which is the scalar
// analogue of wider SIMD registers: the 16-wide/4-accumulator kernel is the
// stand-in for AVX512, the 8-wide/2-accumulator one for AVX/AVX2, the 4-wide
// one for SSE.

func l2Scalar(a, b []float32) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func ipScalar(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func l2Unroll4(a, b []float32) float32 {
	n := len(a)
	var s float32
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s += d0*d0 + d1*d1 + d2*d2 + d3*d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func ipUnroll4(a, b []float32) float32 {
	n := len(a)
	var s float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

func l2Unroll8(a, b []float32) float32 {
	n := len(a)
	var s0, s1 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		x := (*[8]float32)(a[i : i+8])
		y := (*[8]float32)(b[i : i+8])
		d0 := x[0] - y[0]
		d1 := x[1] - y[1]
		d2 := x[2] - y[2]
		d3 := x[3] - y[3]
		s0 += d0*d0 + d1*d1 + d2*d2 + d3*d3
		d4 := x[4] - y[4]
		d5 := x[5] - y[5]
		d6 := x[6] - y[6]
		d7 := x[7] - y[7]
		s1 += d4*d4 + d5*d5 + d6*d6 + d7*d7
	}
	s := s0 + s1
	for ; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func ipUnroll8(a, b []float32) float32 {
	n := len(a)
	var s0, s1 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		x := (*[8]float32)(a[i : i+8])
		y := (*[8]float32)(b[i : i+8])
		s0 += x[0]*y[0] + x[1]*y[1] + x[2]*y[2] + x[3]*y[3]
		s1 += x[4]*y[4] + x[5]*y[5] + x[6]*y[6] + x[7]*y[7]
	}
	s := s0 + s1
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

func l2Unroll16(a, b []float32) float32 {
	n := len(a)
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+16 <= n; i += 16 {
		x := (*[16]float32)(a[i : i+16])
		y := (*[16]float32)(b[i : i+16])
		d0 := x[0] - y[0]
		d1 := x[1] - y[1]
		d2 := x[2] - y[2]
		d3 := x[3] - y[3]
		s0 += d0*d0 + d1*d1 + d2*d2 + d3*d3
		d4 := x[4] - y[4]
		d5 := x[5] - y[5]
		d6 := x[6] - y[6]
		d7 := x[7] - y[7]
		s1 += d4*d4 + d5*d5 + d6*d6 + d7*d7
		d8 := x[8] - y[8]
		d9 := x[9] - y[9]
		d10 := x[10] - y[10]
		d11 := x[11] - y[11]
		s2 += d8*d8 + d9*d9 + d10*d10 + d11*d11
		d12 := x[12] - y[12]
		d13 := x[13] - y[13]
		d14 := x[14] - y[14]
		d15 := x[15] - y[15]
		s3 += d12*d12 + d13*d13 + d14*d14 + d15*d15
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func ipUnroll16(a, b []float32) float32 {
	n := len(a)
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+16 <= n; i += 16 {
		x := (*[16]float32)(a[i : i+16])
		y := (*[16]float32)(b[i : i+16])
		s0 += x[0]*y[0] + x[1]*y[1] + x[2]*y[2] + x[3]*y[3]
		s1 += x[4]*y[4] + x[5]*y[5] + x[6]*y[6] + x[7]*y[7]
		s2 += x[8]*y[8] + x[9]*y[9] + x[10]*y[10] + x[11]*y[11]
		s3 += x[12]*y[12] + x[13]*y[13] + x[14]*y[14] + x[15]*y[15]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
