// Package batchform coalesces concurrent single-query searches into small
// compatible batches executed through the cache-aware tile kernels — the
// paper's Fig. 11 / Eq. (1) offline batching win applied to live serving.
// A Former sits between admission and the worker pool: it holds a query
// for a short auto-tuned window (or until enough compatible peers arrive),
// runs the group as one batch, and fans results back per caller with each
// query's own cancellation still honored.
package batchform

import (
	"sync"
	"time"
)

// Clock abstracts every time source the former consults, so trigger logic
// (size trip, window trip, auto-tune) is deterministic under test: the
// production clock is Wall, tests inject a Fake and advance it explicitly.
// vectordblint's clockinject analyzer keeps the rest of this package off
// the time package; the two pragmas below are the only sanctioned callers.
type Clock interface {
	Now() time.Time
	// AfterFunc arms a one-shot timer that runs fn after d elapses.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is an armed one-shot timer. Stop reports whether the call
// prevented the timer from firing.
type Timer interface{ Stop() bool }

// Wall returns the process wall clock.
func Wall() Clock { return wallClock{} }

type wallClock struct{}

func (wallClock) Now() time.Time {
	//lint:allow clockinject the wall Clock implementation is the one sanctioned time caller
	return time.Now()
}

func (wallClock) AfterFunc(d time.Duration, fn func()) Timer {
	//lint:allow clockinject the wall Clock implementation is the one sanctioned time caller
	return time.AfterFunc(d, fn)
}

// Fake is a deterministic Clock for tests: time moves only via Advance,
// and due timers fire synchronously on the advancing goroutine, so trigger
// tests need no wall-clock sleeps at all.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
	armed  []time.Duration
}

// NewFake returns a Fake clock starting at the Unix epoch.
func NewFake() *Fake { return &Fake{now: time.Unix(0, 0)} }

type fakeTimer struct {
	c       *Fake
	when    time.Time
	fn      func()
	stopped bool
	fired   bool
}

func (t *fakeTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	active := !t.stopped && !t.fired
	t.stopped = true
	return active
}

func (c *Fake) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{c: c, when: c.now.Add(d), fn: fn}
	c.timers = append(c.timers, t)
	c.armed = append(c.armed, d)
	return t
}

// Advance moves the clock forward by d, firing due timers in deadline
// order on the calling goroutine. The clock's lock is released around each
// callback so a timer body may re-enter the clock (arm, stop, read Now).
func (c *Fake) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		var next *fakeTimer
		for _, t := range c.timers {
			if t.stopped || t.fired || t.when.After(target) {
				continue
			}
			if next == nil || t.when.Before(next.when) {
				next = t
			}
		}
		if next == nil {
			break
		}
		next.fired = true
		if next.when.After(c.now) {
			c.now = next.when
		}
		c.mu.Unlock()
		next.fn()
		c.mu.Lock()
	}
	c.now = target
	c.mu.Unlock()
}

// Armed returns the duration of every timer armed so far, in arming order
// — the auto-tune tests' window probe.
func (c *Fake) Armed() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.armed...)
}
