package batchform

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vectordb/internal/topk"
)

// testRunner delivers a per-slot sentinel result (ID = slot index) to
// every live item and records each batch it ran.
type testRunner struct {
	mu      sync.Mutex
	batches [][]*Item
	ctxErrs []error // joined-ctx state observed at run time
}

func (r *testRunner) run(ctx context.Context, key Key, items []*Item) {
	r.mu.Lock()
	r.batches = append(r.batches, items)
	r.ctxErrs = append(r.ctxErrs, ctx.Err())
	r.mu.Unlock()
	for i, it := range items {
		if it.Live() {
			it.Deliver([]topk.Result{{ID: int64(i)}}, nil)
		}
	}
}

func (r *testRunner) batchCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.batches)
}

// waitPending spins (yielding, never sleeping) until n queries are parked
// in forming groups.
func waitPending(t *testing.T, f *Former, n int) {
	t.Helper()
	for i := 0; i < 1<<24; i++ {
		if f.Pending() == n {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("pending never reached %d (now %d)", n, f.Pending())
}

type submitResult struct {
	res []topk.Result
	occ int
	err error
}

// submitAsync runs one Submit on its own goroutine and returns the
// channel its outcome lands on.
func submitAsync(ctx context.Context, f *Former, key Key, q []float32) chan submitResult {
	ch := make(chan submitResult, 1)
	go func() {
		res, occ, err := f.Submit(ctx, key, q)
		ch <- submitResult{res, occ, err}
	}()
	return ch
}

func testKey() Key { return Key{Collection: "c", Dim: 1, Metric: "L2", K: 1} }

func newTestFormer(r *testRunner, clock Clock, load *atomic.Int64) *Former {
	return New(Config{
		MaxBatch:  4,
		MinWindow: 500 * time.Microsecond,
		MaxWindow: 2 * time.Millisecond,
		LoadScale: 16,
		Clock:     clock,
		Load:      func() int { return int(load.Load()) },
		Run:       r.run,
	})
}

func TestPassThroughWhenIdle(t *testing.T) {
	r := &testRunner{}
	var load atomic.Int64 // 0: idle
	f := newTestFormer(r, NewFake(), &load)
	defer f.Close()
	_, _, err := f.Submit(context.Background(), testKey(), []float32{1})
	if !errors.Is(err, ErrPassThrough) {
		t.Fatalf("idle Submit err = %v, want ErrPassThrough", err)
	}
	if got := f.Pending(); got != 0 {
		t.Fatalf("pending after pass-through = %d, want 0", got)
	}
	if r.batchCount() != 0 {
		t.Fatalf("pass-through formed %d batches, want 0", r.batchCount())
	}
	if w := f.Window(); w != 0 {
		t.Fatalf("idle window = %v, want 0", w)
	}
}

func TestSizeTrip(t *testing.T) {
	r := &testRunner{}
	var load atomic.Int64
	load.Store(16) // saturated: trip = MaxBatch = 4
	clock := NewFake()
	f := newTestFormer(r, clock, &load)
	defer f.Close()
	key := testKey()
	var chs []chan submitResult
	for i := 0; i < 3; i++ {
		chs = append(chs, submitAsync(context.Background(), f, key, []float32{1}))
	}
	waitPending(t, f, 3)
	if r.batchCount() != 0 {
		t.Fatalf("batch ran before the size trip")
	}
	// The 4th submitter trips the batch and runs it inline — the fake
	// clock never advances, proving the trigger was size, not window.
	res, occ, err := f.Submit(context.Background(), key, []float32{1})
	if err != nil || occ != 4 || len(res) != 1 {
		t.Fatalf("tripping Submit = (%v, %d, %v), want (1 result, occupancy 4, nil)", res, occ, err)
	}
	for _, ch := range chs {
		out := <-ch
		if out.err != nil || out.occ != 4 || len(out.res) != 1 {
			t.Fatalf("co-batched Submit = (%v, %d, %v), want (1 result, occupancy 4, nil)", out.res, out.occ, out.err)
		}
	}
	if r.batchCount() != 1 {
		t.Fatalf("ran %d batches, want 1", r.batchCount())
	}
}

func TestWindowTrip(t *testing.T) {
	r := &testRunner{}
	var load atomic.Int64
	load.Store(2) // trip = 3, so two members must ride the window
	clock := NewFake()
	f := newTestFormer(r, clock, &load)
	defer f.Close()
	key := testKey()
	ch1 := submitAsync(context.Background(), f, key, []float32{1})
	ch2 := submitAsync(context.Background(), f, key, []float32{2})
	waitPending(t, f, 2)
	if r.batchCount() != 0 {
		t.Fatalf("batch ran before the window elapsed")
	}
	clock.Advance(f.cfg.MaxWindow)
	for _, ch := range []chan submitResult{ch1, ch2} {
		out := <-ch
		if out.err != nil || out.occ != 2 || len(out.res) != 1 {
			t.Fatalf("window-tripped Submit = (%v, %d, %v), want (1 result, occupancy 2, nil)", out.res, out.occ, out.err)
		}
	}
	if r.batchCount() != 1 {
		t.Fatalf("ran %d batches, want 1", r.batchCount())
	}
}

func TestAutoTuneWidensAndNarrows(t *testing.T) {
	r := &testRunner{}
	var load atomic.Int64
	clock := NewFake()
	f := newTestFormer(r, clock, &load)
	defer f.Close()
	key := testKey()

	// Backlog 1 → the window narrows to MinWindow.
	load.Store(1)
	ch := submitAsync(context.Background(), f, key, []float32{1})
	waitPending(t, f, 1)
	if w := f.Window(); w != f.cfg.MinWindow {
		t.Fatalf("window at load 1 = %v, want MinWindow %v", w, f.cfg.MinWindow)
	}
	clock.Advance(f.cfg.MaxWindow)
	<-ch

	// Backlog ≥ LoadScale → the window widens to MaxWindow.
	load.Store(16)
	ch = submitAsync(context.Background(), f, key, []float32{1})
	waitPending(t, f, 1)
	if w := f.Window(); w != f.cfg.MaxWindow {
		t.Fatalf("window at load 16 = %v, want MaxWindow %v", w, f.cfg.MaxWindow)
	}
	clock.Advance(f.cfg.MaxWindow)
	<-ch

	// The armed timers must match the tuned windows, in order.
	armed := clock.Armed()
	if len(armed) != 2 || armed[0] != f.cfg.MinWindow || armed[1] != f.cfg.MaxWindow {
		t.Fatalf("armed windows = %v, want [%v %v]", armed, f.cfg.MinWindow, f.cfg.MaxWindow)
	}
	// Mid-range backlog lands strictly between the bounds.
	load.Store(8)
	ch = submitAsync(context.Background(), f, key, []float32{1})
	waitPending(t, f, 1)
	if w := f.Window(); w <= f.cfg.MinWindow || w >= f.cfg.MaxWindow {
		t.Fatalf("window at load 8 = %v, want strictly inside (%v, %v)", w, f.cfg.MinWindow, f.cfg.MaxWindow)
	}
	clock.Advance(f.cfg.MaxWindow)
	<-ch
}

// deadlineCtx advertises a deadline in fake-clock time without ever
// expiring on its own.
type deadlineCtx struct {
	context.Context
	dl time.Time
}

func (d deadlineCtx) Deadline() (time.Time, bool) { return d.dl, true }

func TestWindowClampedByDeadline(t *testing.T) {
	r := &testRunner{}
	var load atomic.Int64
	load.Store(16) // wants MaxWindow = 2ms
	clock := NewFake()
	f := newTestFormer(r, clock, &load)
	defer f.Close()
	// A fake-time deadline: context.WithDeadline would arm a real-clock
	// timer (and 1ms past the fake epoch is decades in the past), so the
	// deadline is declared on a wrapper the clamp reads with clock.Now.
	ctx := deadlineCtx{Context: context.Background(), dl: clock.Now().Add(1 * time.Millisecond)}
	ch := submitAsync(ctx, f, testKey(), []float32{1})
	waitPending(t, f, 1)
	armed := clock.Armed()
	// Half the remaining deadline (500µs) beats the tuned 2ms window: the
	// coalesce wait must never push a live query into its timeout.
	if len(armed) != 1 || armed[0] != 500*time.Microsecond {
		t.Fatalf("armed = %v, want [500µs] (half the 1ms deadline)", armed)
	}
	clock.Advance(500 * time.Microsecond)
	out := <-ch
	if out.err != nil || out.occ != 1 {
		t.Fatalf("deadline-clamped Submit = (%d, %v), want occupancy 1, nil err", out.occ, out.err)
	}
}

func TestCancelledMemberDoesNotAbortPeers(t *testing.T) {
	r := &testRunner{}
	var load atomic.Int64
	load.Store(2) // trip = 3: both members wait on the window
	clock := NewFake()
	f := newTestFormer(r, clock, &load)
	defer f.Close()
	key := testKey()
	ctxA, cancelA := context.WithCancel(context.Background())
	chA := submitAsync(ctxA, f, key, []float32{1})
	chB := submitAsync(context.Background(), f, key, []float32{2})
	waitPending(t, f, 2)
	cancelA()
	outA := <-chA // A abandons its slot immediately, before the batch runs
	if !errors.Is(outA.err, context.Canceled) {
		t.Fatalf("cancelled Submit err = %v, want context.Canceled", outA.err)
	}
	clock.Advance(f.cfg.MaxWindow)
	outB := <-chB
	if outB.err != nil || len(outB.res) != 1 {
		t.Fatalf("peer Submit = (%v, %v), want its result and nil err", outB.res, outB.err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.batches) != 1 || len(r.batches[0]) != 2 {
		t.Fatalf("batches = %d (sizes %v), want one batch of 2", len(r.batches), r.batches)
	}
	// The joined batch context stays live while any member is: B was.
	if r.ctxErrs[0] != nil {
		t.Fatalf("joined ctx already dead with a live member: %v", r.ctxErrs[0])
	}
}

func TestJoinedContextDiesWithAllMembers(t *testing.T) {
	r := &testRunner{}
	var load atomic.Int64
	load.Store(2)
	clock := NewFake()
	f := newTestFormer(r, clock, &load)
	defer f.Close()
	key := testKey()
	ctxA, cancelA := context.WithCancel(context.Background())
	ctxB, cancelB := context.WithCancel(context.Background())
	chA := submitAsync(ctxA, f, key, []float32{1})
	chB := submitAsync(ctxB, f, key, []float32{2})
	waitPending(t, f, 2)
	cancelA()
	cancelB()
	<-chA
	<-chB
	clock.Advance(f.cfg.MaxWindow)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ctxErrs) != 1 || r.ctxErrs[0] == nil {
		t.Fatalf("joined ctx errs = %v, want one cancelled batch", r.ctxErrs)
	}
}

func TestCloseFlushesFormingGroups(t *testing.T) {
	r := &testRunner{}
	var load atomic.Int64
	load.Store(2)
	clock := NewFake()
	f := newTestFormer(r, clock, &load)
	key := testKey()
	ch := submitAsync(context.Background(), f, key, []float32{1})
	waitPending(t, f, 1)
	f.Close()
	out := <-ch
	if out.err != nil || len(out.res) != 1 {
		t.Fatalf("flushed Submit = (%v, %v), want its result", out.res, out.err)
	}
	// A closed former is a permanent pass-through.
	if _, _, err := f.Submit(context.Background(), key, []float32{1}); !errors.Is(err, ErrPassThrough) {
		t.Fatalf("Submit after Close err = %v, want ErrPassThrough", err)
	}
}

func TestStaleTimerDoesNotDoubleFire(t *testing.T) {
	r := &testRunner{}
	var load atomic.Int64
	load.Store(3) // trip = 4 = MaxBatch
	clock := NewFake()
	f := newTestFormer(r, clock, &load)
	defer f.Close()
	key := testKey()
	var chs []chan submitResult
	for i := 0; i < 4; i++ {
		chs = append(chs, submitAsync(context.Background(), f, key, []float32{1}))
		waitPending(t, f, (i+1)%4) // 4th submit size-trips back to 0 pending
	}
	for _, ch := range chs {
		if out := <-ch; out.err != nil || out.occ != 4 {
			t.Fatalf("Submit = (%d, %v), want occupancy 4", out.occ, out.err)
		}
	}
	// The group's window timer was armed, then obsoleted by the size trip;
	// advancing past it must not re-run the (already-taken) group.
	clock.Advance(10 * f.cfg.MaxWindow)
	if r.batchCount() != 1 {
		t.Fatalf("ran %d batches, want 1 (stale timer fired)", r.batchCount())
	}
}

// TestGroupsAreKeyHomogeneous: items submitted under different keys must
// never land in the same batch, no matter how interleaved their arrival.
func TestGroupsAreKeyHomogeneous(t *testing.T) {
	r := &testRunner{}
	var load atomic.Int64
	load.Store(16)
	clock := NewFake()
	f := newTestFormer(r, clock, &load) // MaxBatch 4
	defer f.Close()
	keyA := Key{Collection: "c", K: 1}
	keyB := Key{Collection: "c", K: 2} // one knob differs → incompatible
	var chs []chan submitResult
	for i := 0; i < 8; i++ {
		key, q := keyA, []float32{1}
		if i%2 == 1 {
			key, q = keyB, []float32{2}
		}
		chs = append(chs, submitAsync(context.Background(), f, key, q))
	}
	// 4 of each key: both groups size-trip at MaxBatch.
	for _, ch := range chs {
		if out := <-ch; out.err != nil || out.occ != 4 {
			t.Fatalf("Submit = (%d, %v), want occupancy 4", out.occ, out.err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.batches) != 2 {
		t.Fatalf("ran %d batches, want 2", len(r.batches))
	}
	for _, b := range r.batches {
		for _, it := range b {
			if it.Query()[0] != b[0].Query()[0] {
				t.Fatalf("batch mixes keys: queries %v and %v", b[0].Query(), it.Query())
			}
		}
	}
}

func TestRunnerMissingSlotIsBackstopped(t *testing.T) {
	var load atomic.Int64
	load.Store(16)
	f := New(Config{
		MaxBatch: 2,
		Clock:    NewFake(),
		Load:     func() int { return int(load.Load()) },
		Run:      func(ctx context.Context, key Key, items []*Item) {}, // delivers nothing
	})
	defer f.Close()
	ch := submitAsync(context.Background(), f, testKey(), []float32{1})
	waitPending(t, f, 1)
	_, _, err := f.Submit(context.Background(), testKey(), []float32{2})
	if err == nil {
		t.Fatal("missed slot returned nil error")
	}
	if out := <-ch; out.err == nil {
		t.Fatal("missed slot returned nil error on the co-batched member")
	}
}

// probeFormer is a Former at load 0 with a fake clock: the only way it can
// batch is the bootstrap (dense-arrival probe → occupancy boost).
func probeFormer(r *testRunner) (*Former, *Fake) {
	clock := NewFake()
	var load atomic.Int64 // stays 0: the pool signal never sees anything
	return newTestFormer(r, clock, &load), clock
}

// TestBootstrapProbeFormsPair: at pool-load zero, a run of close-spaced
// arrivals earns one probe — the prober is held in a forming group and a
// hidden peer trips the pair at size 2, proving scheduler-hidden
// concurrency that the load signal cannot see. All timing is fake-clock;
// the submits never advance time, so their spacing reads as dense.
func TestBootstrapProbeFormsPair(t *testing.T) {
	r := &testRunner{}
	f, clock := probeFormer(r)
	defer f.Close()
	key := testKey()

	// First arrival has no history; the next three build the dense run.
	// All four pass through untouched — the probe must not fire early.
	for i := 0; i < 4; i++ {
		if _, _, err := f.Submit(context.Background(), key, []float32{1}); !errors.Is(err, ErrPassThrough) {
			t.Fatalf("pre-probe submit %d: err = %v, want ErrPassThrough", i, err)
		}
	}
	// The 5th dense arrival probes: held in a group, window MinWindow and
	// the arrival-gap close MinWindow/gapDiv armed behind it.
	probe := submitAsync(context.Background(), f, key, []float32{1})
	waitPending(t, f, 1)
	armed := clock.Armed()
	if len(armed) != 2 || armed[0] != f.cfg.MinWindow || armed[1] != f.cfg.MinWindow/gapDiv {
		t.Fatalf("armed after probe = %v, want [%v %v]", armed, f.cfg.MinWindow, f.cfg.MinWindow/gapDiv)
	}
	// A hidden peer joins and trips the pair at size 2 — no clock advance:
	// the trigger is size, not any timer.
	peer := submitAsync(context.Background(), f, key, []float32{2})
	for _, ch := range []chan submitResult{probe, peer} {
		if out := <-ch; out.err != nil || out.occ != 2 {
			t.Fatalf("probe pair Submit = (%d, %v), want occupancy 2", out.occ, out.err)
		}
	}
	if r.batchCount() != 1 {
		t.Fatalf("ran %d batches, want 1", r.batchCount())
	}

	// Occupancy 2 turned the boost on: the next submits batch without any
	// probing, and the arrival-gap close fires a formed pair when the
	// supply dries up mid-group.
	a := submitAsync(context.Background(), f, key, []float32{3})
	waitPending(t, f, 1)
	b := submitAsync(context.Background(), f, key, []float32{4})
	waitPending(t, f, 2)
	clock.Advance(f.cfg.MinWindow / gapDiv)
	for _, ch := range []chan submitResult{a, b} {
		if out := <-ch; out.err != nil || out.occ != 2 {
			t.Fatalf("boosted Submit = (%d, %v), want occupancy 2", out.occ, out.err)
		}
	}

	// The trip tracks discovered supply with headroom (2 → trip 3): three
	// boosted submits size-trip at 3 with no timer involved.
	var chs []chan submitResult
	for i := 0; i < 3; i++ {
		chs = append(chs, submitAsync(context.Background(), f, key, []float32{5}))
		if i < 2 {
			waitPending(t, f, i+1)
		}
	}
	for _, ch := range chs {
		if out := <-ch; out.err != nil || out.occ != 3 {
			t.Fatalf("grown Submit = (%d, %v), want occupancy 3", out.occ, out.err)
		}
	}
	if r.batchCount() != 3 {
		t.Fatalf("ran %d batches, want 3", r.batchCount())
	}
}

// TestBootstrapProbeBacksOff: a probe that stays alone costs one
// arrival-gap wait and is followed by ever-longer pass-through spans —
// cooldown 16 after the first failure, 32 after the second — so a
// genuinely sequential client pays a vanishing amortized tax.
func TestBootstrapProbeBacksOff(t *testing.T) {
	r := &testRunner{}
	f, clock := probeFormer(r)
	defer f.Close()
	key := testKey()

	// probeRound drives wantPT dense pass-through submits, then the probe:
	// held alone, closed by the arrival gap as a singleton.
	probeRound := func(wantPT int) {
		t.Helper()
		for i := 0; i < wantPT; i++ {
			if _, _, err := f.Submit(context.Background(), key, []float32{1}); !errors.Is(err, ErrPassThrough) {
				t.Fatalf("submit %d of %d: err = %v, want ErrPassThrough", i, wantPT, err)
			}
		}
		ch := submitAsync(context.Background(), f, key, []float32{1})
		waitPending(t, f, 1)
		clock.Advance(f.cfg.MinWindow / gapDiv)
		if out := <-ch; out.err != nil || out.occ != 1 {
			t.Fatalf("failed probe Submit = (%d, %v), want occupancy 1", out.occ, out.err)
		}
	}

	probeRound(4)  // no history + 3 dense arrivals, probe on the 5th
	probeRound(18) // dense rebuild (3) + cooldown 16, probe next
	probeRound(34) // each failure doubled the backoff: cooldown 32
	probeRound(66) // and again: cooldown 64
	if got := r.batchCount(); got != 4 {
		t.Fatalf("ran %d batches, want 4 singleton probes", got)
	}
}

// TestWindowDeferredWhileRunningChains: a window trip that lands while a
// batch for the same key is executing must not chop the forming group —
// it keeps accumulating and runs when the in-flight batch completes
// (group commit), on its own goroutine.
func TestWindowDeferredWhileRunningChains(t *testing.T) {
	r := &testRunner{}
	gate := make(chan struct{})
	var gated atomic.Bool
	blockFirst := func(ctx context.Context, key Key, items []*Item) {
		if gated.CompareAndSwap(false, true) {
			r.mu.Lock()
			r.batches = append(r.batches, items)
			r.mu.Unlock()
			<-gate
			for i, it := range items {
				if it.Live() {
					it.Deliver([]topk.Result{{ID: int64(i)}}, nil)
				}
			}
			return
		}
		r.run(ctx, key, items)
	}
	var load atomic.Int64
	load.Store(3) // trip = 4 = MaxBatch
	clock := NewFake()
	f := New(Config{
		MaxBatch:  4,
		MinWindow: 500 * time.Microsecond,
		MaxWindow: 2 * time.Millisecond,
		LoadScale: 16,
		Clock:     clock,
		Load:      func() int { return int(load.Load()) },
		Run:       blockFirst,
	})
	defer f.Close()
	key := testKey()

	// Four submits size-trip; the runner parks inside Run holding the
	// batch (the gate), like a long scan occupying the CPU.
	var first []chan submitResult
	for i := 0; i < 4; i++ {
		first = append(first, submitAsync(context.Background(), f, key, []float32{1}))
		if i < 3 {
			waitPending(t, f, i+1)
		}
	}
	for i := 0; i < 1<<24 && r.batchCount() == 0; i++ {
		runtime.Gosched()
	}
	if r.batchCount() != 1 {
		t.Fatal("first batch never started")
	}

	// Two more queries form the next group; its window fires mid-run and
	// must defer, not execute.
	var second []chan submitResult
	for i := 0; i < 2; i++ {
		second = append(second, submitAsync(context.Background(), f, key, []float32{2}))
		waitPending(t, f, i+1)
	}
	clock.Advance(f.cfg.MaxWindow)
	if got := r.batchCount(); got != 1 {
		t.Fatalf("deferred window ran a batch mid-run: %d batches", got)
	}

	// Completion of the in-flight batch chains the deferred group.
	close(gate)
	for _, ch := range first {
		if out := <-ch; out.err != nil || out.occ != 4 {
			t.Fatalf("first batch Submit = (%d, %v), want occupancy 4", out.occ, out.err)
		}
	}
	for _, ch := range second {
		if out := <-ch; out.err != nil || out.occ != 2 {
			t.Fatalf("chained Submit = (%d, %v), want occupancy 2", out.occ, out.err)
		}
	}
	if got := r.batchCount(); got != 2 {
		t.Fatalf("ran %d batches, want 2 (size + chain)", got)
	}
}
