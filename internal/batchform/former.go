package batchform

import (
	"context"
	"errors"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vectordb/internal/obs"
	"vectordb/internal/topk"
)

// Key is a query's compatibility class: only queries with identical keys
// may share a batch, because a formed batch executes as ONE plan — same
// collection, vector field, metric kernel, K, and index search knobs.
// Filter discriminates filter strategies; plain vector queries leave it
// empty and filtered paths either bypass the former entirely or use a
// distinct non-empty value, so a filtered query can never be co-batched
// with an unfiltered one.
type Key struct {
	Collection string
	Field      int
	Dim        int
	Metric     string
	K          int
	Nprobe     int
	Ef         int
	SearchL    int
	Filter     string
	// Venue is the planner's placement decision for the query; queries may
	// only share a batch when placed on the same venue, so a formed batch
	// never mixes execution venues.
	Venue string
}

// outcome is what a batch run delivers to one item.
type outcome struct {
	results []topk.Result
	err     error
}

// Item is one query riding through the former. The submitting goroutine
// blocks in Submit until the batch runner delivers an Outcome — or until
// its own context dies, in which case it abandons the slot and the late
// delivery lands in the buffered channel as garbage (the runner never
// blocks on an abandoned item, and co-batched peers are unaffected).
type Item struct {
	ctx   context.Context
	query []float32
	enq   time.Time
	occ   int
	done  chan outcome
	once  sync.Once
}

// NewItem wraps a query for direct batch execution outside the former
// (core's SearchBatchCtx drives the same Runner deterministically). The
// item behaves exactly like a coalesced one.
func NewItem(ctx context.Context, query []float32) *Item {
	return &Item{ctx: ctx, query: query, done: make(chan outcome, 1)}
}

// Context returns the submitting query's context. Runners consult it to
// skip dead slots (Live) and to return the right per-query error.
func (it *Item) Context() context.Context { return it.ctx }

// Query returns the query vector occupying this batch slot.
func (it *Item) Query() []float32 { return it.query }

// Live reports whether the submitting query is still waiting: a cancelled
// query's slot is simply skipped — never aborting co-batched peers.
func (it *Item) Live() bool { return it.ctx.Err() == nil }

// Deliver hands this item its results or error. Only the first call
// counts; the former backstops runners that miss a slot (see runBatch) so
// a bug surfaces as an error, not a hung query.
func (it *Item) Deliver(res []topk.Result, err error) {
	it.once.Do(func() { it.done <- outcome{results: res, err: err} })
}

// Outcome returns the delivered result plus the occupancy of the batch the
// item rode in. Only valid after the Runner returned; Submit does the
// blocking wait for coalesced items.
func (it *Item) Outcome() ([]topk.Result, int, error) {
	select {
	case out := <-it.done:
		return out.results, it.occ, out.err
	default:
		return nil, it.occ, errMissedSlot
	}
}

var errMissedSlot = errors.New("batchform: runner delivered no result for a batch slot")

// ErrPassThrough is Submit declining to batch (idle pool or closed
// former): the caller runs the query on the ordinary per-query path, which
// at zero load has zero added latency — the auto-tuner's idle contract.
var ErrPassThrough = errors.New("batchform: pass through")

// Runner executes one formed batch and must Deliver to every item. ctx is
// the joined batch context: cancelled only once EVERY member's context is
// done, so one cancelled member never aborts its co-batched peers while a
// fully-abandoned batch still stops scanning promptly.
type Runner func(ctx context.Context, key Key, items []*Item)

// Config tunes a Former. Zero values mean defaults.
type Config struct {
	// MaxBatch caps a group's size; a group also trips early once it
	// reaches the live concurrency (see Submit), so MaxBatch only binds
	// under deep backlog (default 16; the tile kernels carve the batch
	// into register blocks of 4 downstream).
	MaxBatch int
	// MinWindow and MaxWindow bound the coalescing window. The live
	// window tunes between them from Load: backlog 1 pays MinWindow
	// (default 500µs), backlog ≥ LoadScale pays MaxWindow (default 2ms),
	// linear in between; zero backlog passes through entirely.
	MinWindow time.Duration
	MaxWindow time.Duration
	// LoadScale is the backlog that saturates the window (default 16).
	LoadScale int
	// Clock is the former's only time source (nil means Wall).
	Clock Clock
	// Load reports the live read-path backlog — queued segment tasks plus
	// queries waiting or running, excluding the submitter itself. Nil
	// means always idle, i.e. a former that always passes through.
	Load func() int
	// Obs receives the vectordb_batchform_* series; nil disables scraping.
	Obs *obs.Registry
	// Collection labels this former's metric series.
	Collection string
	// Run executes formed batches. Required.
	Run Runner
}

// group is one forming batch: the items accumulated so far for a key, the
// window timer racing them, and (in bootstrap mode) the arrival-gap timer
// that closes the group as soon as the supply of co-arriving queries dries
// up. gen is a former-wide generation stamp so a stale timer (its group
// already taken by a size trip) fires into nothing. deferred records a
// timer close that arrived while a sibling batch was executing: the group
// keeps accumulating and runs when that batch completes (see fire).
type group struct {
	items    []*Item
	timer    Timer
	gap      Timer
	gen      uint64
	trip     int // size trip; sticky-max so a low-trip joiner cannot chop a forming batch
	deferred bool
}

// Bootstrap tuning: when the pool's load signal reads zero, concurrency
// can still be hiding in the runtime scheduler — on few-core machines,
// CPU-bound queries serialize without ever waiting in the pool, so
// Inflight stays at 1 no matter how many clients are live. The former
// discovers that concurrency by probing: after denseRunNeed arrivals
// spaced closer than half MinWindow, one query is held in a forming
// group. A probing submitter blocks, which is exactly what lets the
// scheduler surface any hidden peer — the peer joins the group and trips
// it at size 2 within microseconds. A probe that stays alone costs one
// arrival-gap wait (MinWindow/gapDiv) and backs off exponentially, so a
// genuinely sequential client pays a vanishing amortized tax.
const (
	denseRunNeed    = 4    // close-spaced arrivals before the first probe
	probeBackoffMin = 16   // idle submits between probes after one failure
	probeBackoffMax = 8192 // cap on the probe backoff
	// boostTTLWindows sets the boost lifetime in MaxWindow units. It must
	// comfortably exceed a full batch's execution time (MaxBatch × the
	// per-query cost), or the boost expires while a batch is still running
	// and its members re-arrive to a former that has forgotten them; a
	// stale boost costs at most boostMissMax gap-closed singletons.
	boostTTLWindows = 64
	boostMissMax    = 3 // consecutive singletons before boost drops
	gapDiv          = 4 // arrival-gap close = MinWindow / gapDiv
)

// Former coalesces compatible concurrent queries into batches. One Former
// serves one collection; Submit is safe for any number of goroutines.
type Former struct {
	cfg   Config
	clock Clock
	met   *metrics

	mu      sync.Mutex
	groups  map[Key]*group
	running map[Key]int // batches currently executing, per key (chaining)
	gen     uint64
	closed  bool

	window  atomic.Int64 // last tuned window, nanoseconds
	pending atomic.Int64 // items currently waiting in forming groups

	// Bootstrap state for pool-invisible concurrency (see the constants
	// above). boostOcc/boostAt carry the occupancy feedback: a formed
	// batch with ≥2 members proves co-arriving queries exist, so batching
	// stays on without re-probing until the signal goes stale.
	lastArrival atomic.Int64 // clock nanos of the previous idle-pool Submit
	denseRun    atomic.Int64 // consecutive close-spaced idle arrivals
	cooldown    atomic.Int64 // idle submits left before the next probe
	backoff     atomic.Int64 // cooldown reload, doubled per failed probe
	boostOcc    atomic.Int64 // last formed occupancy ≥ 2, else 0
	boostAt     atomic.Int64 // clock nanos when boostOcc was observed
	boostMiss   atomic.Int64 // consecutive singleton batches while boosted
}

// New builds a Former. Run is required; everything else defaults.
func New(cfg Config) *Former {
	if cfg.Run == nil {
		panic("batchform: Config.Run is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.MinWindow <= 0 {
		cfg.MinWindow = 500 * time.Microsecond
	}
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = 2 * time.Millisecond
	}
	if cfg.MinWindow > cfg.MaxWindow {
		cfg.MinWindow = cfg.MaxWindow
	}
	if cfg.LoadScale <= 0 {
		cfg.LoadScale = 16
	}
	if cfg.Clock == nil {
		cfg.Clock = Wall()
	}
	f := &Former{
		cfg:     cfg,
		clock:   cfg.Clock,
		groups:  map[Key]*group{},
		running: map[Key]int{},
		met:     newMetrics(cfg.Obs, cfg.Collection),
	}
	// A first arrival must never look dense: park the last-arrival stamp
	// far in the past (half-range, so the subtraction cannot overflow).
	f.lastArrival.Store(math.MinInt64 / 2)
	f.backoff.Store(probeBackoffMin)
	f.met.registerGauges(f)
	return f
}

// Window returns the last auto-tuned coalescing window.
func (f *Former) Window() time.Duration { return time.Duration(f.window.Load()) }

// Pending returns the number of queries currently waiting in forming
// groups (the value behind vectordb_batchform_pending).
func (f *Former) Pending() int { return int(f.pending.Load()) }

// tune recomputes the window and the size trip from the live backlog.
// Idle → window 0 (pass through, unless the bootstrap detects pool-
// invisible concurrency). The size trip is the backlog plus the submitter
// itself, capped at MaxBatch: a group cannot organically exceed the
// number of queries concurrently in the system, so waiting past that
// point buys occupancy that is not coming — trip immediately instead. The
// window then only backstops stragglers (mixed-compatibility loads whose
// groups never reach the trip). A non-zero gap switches the group to
// arrival-gap closing: each join rearms a short timer and the group runs
// when the supply of co-arriving queries dries up, so occupancy discovers
// itself without knowing the concurrency in advance.
func (f *Former) tune() (window time.Duration, trip int, gap time.Duration) {
	load := 0
	if f.cfg.Load != nil {
		load = f.cfg.Load()
	}
	if load <= 0 {
		boost, probe := f.bootstrap()
		switch {
		case boost:
			// Supply is proven. Trip at the discovered supply (last
			// occupancy) plus 50% headroom so growth is still noticed —
			// tripping at MaxBatch outright would stall every batch a full
			// window whenever the live supply is smaller. The arrival-gap
			// close detects the supply drying up mid-group; it is generous
			// (MinWindow/gapDiv) because between batches the woken members
			// re-join with per-submit overhead spacing, and a too-tight gap
			// reads that spacing as exhaustion.
			window = f.cfg.MinWindow
			f.window.Store(int64(window))
			return window, f.boostTrip(), f.cfg.MinWindow / gapDiv
		case probe:
			// Supply unproven: hold the prober no longer than the arrival
			// gap. One hidden peer joining trips the pair immediately.
			window = f.cfg.MinWindow
			f.window.Store(int64(window))
			return window, 2, f.cfg.MinWindow / gapDiv
		}
		f.window.Store(0)
		return 0, 2, 0
	}
	window = f.cfg.MaxWindow
	if load < f.cfg.LoadScale {
		span := f.cfg.MaxWindow - f.cfg.MinWindow
		window = f.cfg.MinWindow + span*time.Duration(load-1)/time.Duration(f.cfg.LoadScale-1)
	}
	f.window.Store(int64(window))
	trip = load + 1
	if trip > f.cfg.MaxBatch {
		trip = f.cfg.MaxBatch
	}
	if trip < 2 {
		trip = 2
	}
	// The pool signal undercounts when queries run inline (few-core boxes:
	// load flickers 0↔1 while dozens of clients are scheduler-hidden). A
	// fresh boost is direct evidence of real batch supply — don't let a
	// momentary load=1 reading chop groups at 2.
	if bt := 0; f.boostFresh() {
		if bt = f.boostTrip(); bt > trip {
			trip = bt
		}
	}
	return window, trip, 0
}

// boostTrip is the size trip under a fresh boost: the discovered supply
// plus 50% headroom, clamped to [2, MaxBatch].
func (f *Former) boostTrip() int {
	t := int(f.boostOcc.Load())
	t += t / 2
	if t > f.cfg.MaxBatch {
		t = f.cfg.MaxBatch
	}
	if t < 2 {
		t = 2
	}
	return t
}

// boostFresh reports whether recent occupancy feedback proves co-arriving
// queries (see bootstrap).
func (f *Former) boostFresh() bool {
	return f.boostOcc.Load() >= 2 &&
		f.clock.Now().UnixNano()-f.boostAt.Load() <= int64(boostTTLWindows*f.cfg.MaxWindow)
}

// bootstrap reports whether an idle-pool Submit should batch anyway.
// Recent occupancy ≥ 2 is proof of co-arriving queries (boost); otherwise
// a run of close-spaced arrivals earns one probe, rate-limited by the
// backoff so sequential clients are left alone.
func (f *Former) bootstrap() (boost, probe bool) {
	now := f.clock.Now().UnixNano()
	// Stamp every arrival — including boosted ones — so the dense-run
	// detector is already warm when the boost drops and re-entry does not
	// have to rebuild its arrival history from scratch.
	gap := now - f.lastArrival.Swap(now)
	if f.boostFresh() {
		return true, false
	}
	if gap > int64(f.cfg.MinWindow/2) {
		f.denseRun.Store(0)
		return false, false
	}
	if f.denseRun.Add(1) < denseRunNeed {
		return false, false
	}
	if f.cooldown.Add(-1) > 0 {
		return false, false
	}
	f.cooldown.Store(f.backoff.Load())
	f.denseRun.Store(0)
	return false, true
}

// Submit offers one query to the former and blocks until its batch has run
// (or ctx dies first, abandoning the slot). It returns the query's top-k
// plus the occupancy of the batch it rode in. ErrPassThrough means the
// former declined and the caller must run the query itself.
func (f *Former) Submit(ctx context.Context, key Key, query []float32) ([]topk.Result, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	window, trip, gap := f.tune()
	it, tripped := f.enqueue(ctx, key, query, window, trip, gap)
	if it == nil {
		f.met.passthrough.Inc()
		return nil, 0, ErrPassThrough
	}
	if tripped != nil {
		// This submitter completed the batch: it runs the whole group
		// inline, then collects its own slot like everyone else.
		f.runBatch(key, tripped, "size")
	}
	select {
	case out := <-it.done:
		return out.results, it.occ, out.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// enqueue adds one query to its forming group under the lock. A nil item
// means pass through; a non-nil tripped slice means the group hit the size
// trip and the caller must run it. A non-zero gap (bootstrap mode) rearms
// the group's arrival-gap timer on every join, closing the group as soon
// as no further query arrives within the gap.
func (f *Former) enqueue(ctx context.Context, key Key, query []float32, window time.Duration, trip int, gap time.Duration) (it *Item, tripped []*Item) {
	f.mu.Lock()
	defer f.mu.Unlock()
	g := f.groups[key]
	if f.closed || (window <= 0 && g == nil) {
		return nil, nil
	}
	it = &Item{ctx: ctx, query: query, enq: f.clock.Now(), done: make(chan outcome, 1)}
	if g == nil {
		f.gen++
		g = &group{gen: f.gen, trip: trip}
		f.groups[key] = g
	} else if trip > g.trip {
		// The trip is a property of the group, raised but never lowered by
		// joiners: a probe submitter (trip 2) landing in a boost group
		// (trip MaxBatch) must not chop the forming batch at 2.
		g.trip = trip
	}
	g.items = append(g.items, it)
	f.pending.Add(1)
	f.met.batched.Inc()
	if len(g.items) >= g.trip {
		return it, f.takeLocked(key, g)
	}
	gen := g.gen
	if g.timer == nil {
		g.timer = f.clock.AfterFunc(f.clampWindow(ctx, window), func() { f.fire(key, gen) })
	}
	if gap > 0 {
		if g.gap != nil {
			g.gap.Stop()
		}
		g.gap = f.clock.AfterFunc(f.clampWindow(ctx, gap), func() { f.fire(key, gen) })
	}
	return it, nil
}

// clampWindow keeps the coalesce wait well inside the submitting query's
// deadline: batching trades a bounded sliver of latency for throughput and
// must never convert a live query into a timeout.
func (f *Former) clampWindow(ctx context.Context, w time.Duration) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return w
	}
	if rem := dl.Sub(f.clock.Now()) / 2; rem < w {
		w = rem
	}
	if w < 0 {
		w = 0
	}
	return w
}

// takeLocked detaches a forming group for execution and records the key as
// having a batch in flight (chaining). Caller holds f.mu.
func (f *Former) takeLocked(key Key, g *group) []*Item {
	if g.timer != nil {
		g.timer.Stop()
	}
	if g.gap != nil {
		g.gap.Stop()
	}
	delete(f.groups, key)
	f.running[key]++
	return g.items
}

// fire is the window trip, run by the group's timer. gen guards against a
// stale timer whose group was already taken by a size trip (or replaced by
// a fresh group under the same key). If a batch for this key is currently
// executing, the close is deferred instead (group commit): the group keeps
// accumulating joiners while the CPU is busy and runs when the in-flight
// batch completes, so a busy machine forms full batches rather than the
// 2–3 members a wall-clock timer happens to catch between runs.
func (f *Former) fire(key Key, gen uint64) {
	f.mu.Lock()
	g := f.groups[key]
	if g == nil || g.gen != gen {
		f.mu.Unlock()
		return
	}
	if f.running[key] > 0 {
		g.deferred = true
		f.mu.Unlock()
		return
	}
	items := f.takeLocked(key, g)
	f.mu.Unlock()
	f.runBatch(key, items, "window")
}

// runBatch executes one formed batch on the calling goroutine — the
// size-tripping submitter, the window timer, or Close.
func (f *Former) runBatch(key Key, items []*Item, trigger string) {
	f.pending.Add(-int64(len(items)))
	now := f.clock.Now()
	for _, it := range items {
		it.occ = len(items)
		f.met.wait.Observe(now.Sub(it.enq))
	}
	// Occupancy feedback for the bootstrap: a batch that formed proves (or
	// disproves) co-arriving queries. ≥2 keeps batching on without probes.
	// Singletons happen at the tail of every burst, so one alone does not
	// drop the boost — boostMissMax in a row do, and back the next probe
	// off.
	if occ := len(items); occ >= 2 {
		f.boostOcc.Store(int64(occ))
		f.boostAt.Store(now.UnixNano())
		f.boostMiss.Store(0)
		f.backoff.Store(probeBackoffMin)
	} else if f.boostMiss.Add(1) >= boostMissMax || f.boostOcc.Load() == 0 {
		f.boostOcc.Store(0)
		if b := 2 * f.backoff.Load(); b <= probeBackoffMax {
			f.backoff.Store(b)
		}
	}
	f.met.batch(trigger).Inc()
	f.met.occupancy(len(items)).Inc()
	ctx, stop := joinedContext(items)
	defer stop()
	f.cfg.Run(ctx, key, items)
	for _, it := range items {
		it.Deliver(nil, errMissedSlot)
	}
	// Chain: if a timer close was deferred while this batch ran, the group
	// has been accumulating the whole time — run it now on its own
	// goroutine (never the submitter's, whose caller is owed a return).
	f.mu.Lock()
	if f.running[key]--; f.running[key] <= 0 {
		delete(f.running, key)
	}
	var chained []*Item
	if g := f.groups[key]; g != nil && g.deferred {
		chained = f.takeLocked(key, g)
	}
	f.mu.Unlock()
	if chained != nil {
		go f.runBatch(key, chained, "chain")
	}
}

// joinedContext derives the batch's execution context: cancelled only when
// EVERY member's context is done. One cancelled query therefore never
// aborts co-batched peers, while a fully-abandoned batch stops promptly.
func joinedContext(items []*Item) (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	var left atomic.Int64
	left.Store(int64(len(items)))
	down := func() {
		if left.Add(-1) == 0 {
			cancel()
		}
	}
	stops := make([]func() bool, 0, len(items))
	for _, it := range items {
		// Members already dead at formation are counted synchronously
		// (AfterFunc would fire on its own goroutine, leaving a batch of
		// all-cancelled members briefly uncancelled and racy to test); a
		// member that dies between the check and the registration simply
		// takes the AfterFunc path, so nothing is counted twice.
		if it.ctx.Err() != nil {
			down()
			continue
		}
		stops = append(stops, context.AfterFunc(it.ctx, down))
	}
	return ctx, func() {
		for _, s := range stops {
			s()
		}
		cancel()
	}
}

// Close flushes every forming group (members still get their results) and
// turns the former into a permanent pass-through. Safe to call twice.
func (f *Former) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	type flush struct {
		key   Key
		items []*Item
	}
	var fl []flush
	for key, g := range f.groups {
		items := f.takeLocked(key, g)
		if len(items) > 0 {
			fl = append(fl, flush{key, items})
		}
	}
	f.mu.Unlock()
	for _, b := range fl {
		f.runBatch(b.key, b.items, "close")
	}
}

// metrics is the former's resolved vectordb_batchform_* handles, labeled
// by collection (same once-resolved pattern as core's colMetrics; every
// handle works unregistered when reg is nil).
type metrics struct {
	reg  *obs.Registry
	name string

	batched     *obs.Counter   // queries that entered a forming group
	passthrough *obs.Counter   // queries declined to the per-query path
	wait        *obs.Histogram // coalesce wait, enqueue → batch formed
}

func newMetrics(reg *obs.Registry, name string) *metrics {
	reg.Help("vectordb_batchform_queries_total", "Queries entering the batch former, by path (batched vs passthrough).")
	reg.Help("vectordb_batchform_batches_total", "Formed batches, by trigger (size, window, chain, close).")
	reg.Help("vectordb_batchform_occupancy_total", "Formed batches, by member count at formation.")
	reg.Help("vectordb_batchform_wait_seconds", "Coalesce wait from enqueue to batch formation.")
	reg.Help("vectordb_batchform_window_nanos", "Current auto-tuned coalescing window.")
	reg.Help("vectordb_batchform_pending", "Queries currently waiting in forming groups.")
	return &metrics{
		reg:         reg,
		name:        name,
		batched:     reg.Counter("vectordb_batchform_queries_total", "collection", name, "path", "batched"),
		passthrough: reg.Counter("vectordb_batchform_queries_total", "collection", name, "path", "passthrough"),
		wait:        reg.Histogram("vectordb_batchform_wait_seconds", nil, "collection", name),
	}
}

func (m *metrics) registerGauges(f *Former) {
	m.reg.GaugeFunc("vectordb_batchform_window_nanos", f.window.Load, "collection", m.name)
	m.reg.GaugeFunc("vectordb_batchform_pending", f.pending.Load, "collection", m.name)
}

// batch returns the per-trigger formed-batch counter.
func (m *metrics) batch(trigger string) *obs.Counter {
	return m.reg.Counter("vectordb_batchform_batches_total", "collection", m.name, "trigger", trigger)
}

// occupancy returns the formed-batch counter for one occupancy size.
func (m *metrics) occupancy(n int) *obs.Counter {
	return m.reg.Counter("vectordb_batchform_occupancy_total", "collection", m.name, "size", strconv.Itoa(n))
}
