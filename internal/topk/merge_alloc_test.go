package topk

import (
	"testing"
)

func TestHeapInitReusesCapacity(t *testing.T) {
	h := New(8)
	for i := 0; i < 8; i++ {
		h.Push(int64(i), float32(i))
	}
	h.Init(4)
	if h.K() != 4 || h.Len() != 0 {
		t.Fatalf("after Init(4): k=%d len=%d", h.K(), h.Len())
	}
	h.Push(1, 1)
	h.Push(2, 0.5)
	got := h.Results()
	if len(got) != 2 || got[0].ID != 2 {
		t.Fatalf("results after reuse: %v", got)
	}
	var zero Heap
	zero.Init(3)
	zero.Push(7, 7)
	if zero.Len() != 1 {
		t.Fatalf("zero-value heap after Init: len=%d", zero.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Init(0) did not panic")
		}
	}()
	h.Init(0)
}

// TestMergeAllocs pins Merge's allocation budget: the scratch heap is
// pooled, so steady-state Merge allocates only the returned slice (1
// alloc). A regression that reintroduces a per-call heap (+ backing
// array) would at least triple this.
func TestMergeAllocs(t *testing.T) {
	lists := [][]Result{
		{{1, 0.5}, {2, 0.1}, {3, 0.9}},
		{{4, 0.2}, {5, 0.8}},
		{{6, 0.3}, {7, 0.7}, {8, 0.4}},
	}
	// Warm the free list so the measured runs hit steady state.
	_ = Merge(4, lists...)
	avg := testing.AllocsPerRun(200, func() {
		if got := Merge(4, lists...); len(got) != 4 {
			t.Fatalf("merge returned %d results", len(got))
		}
	})
	if avg > 2 {
		t.Fatalf("Merge allocates %.1f objects/op, want <= 2 (pooled heap regressed?)", avg)
	}
}

func TestMergeStillCorrectAfterPooling(t *testing.T) {
	// Interleave different k values so pooled heaps are re-armed across
	// calls with both growing and shrinking bounds.
	for trial := 0; trial < 50; trial++ {
		k := 1 + trial%7
		var lists [][]Result
		want := map[int64]bool{}
		for l := 0; l < 3; l++ {
			var list []Result
			for i := 0; i < 5; i++ {
				id := int64(trial*100 + l*10 + i)
				list = append(list, Result{ID: id, Distance: float32(id % 13)})
			}
			lists = append(lists, list)
		}
		got := Merge(k, lists...)
		if len(got) != min(k, 15) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), min(k, 15))
		}
		for i := 1; i < len(got); i++ {
			prev, cur := got[i-1], got[i]
			if cur.Distance < prev.Distance || (cur.Distance == prev.Distance && cur.ID < prev.ID) {
				t.Fatalf("trial %d: results out of order at %d: %v", trial, i, got)
			}
			if want[cur.ID] {
				t.Fatalf("trial %d: duplicate id %d", trial, cur.ID)
			}
			want[cur.ID] = true
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	const k, lists, per = 10, 8, 64
	in := make([][]Result, lists)
	for l := range in {
		in[l] = make([]Result, per)
		for i := range in[l] {
			x := uint64(l*per+i)*0x9E3779B97F4A7C15 + 1
			x ^= x >> 29
			in[l][i] = Result{ID: int64(l*per + i), Distance: float32(x%4096) / 4096}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Merge(k, in...); len(got) != k {
			b.Fatal("bad merge")
		}
	}
}
