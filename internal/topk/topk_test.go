package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapKeepsKSmallest(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(200)
		k := 1 + r.Intn(20)
		ds := make([]float32, n)
		h := New(k)
		for i := range ds {
			ds[i] = r.Float32()
			h.Push(int64(i), ds[i])
		}
		got := h.Results()
		sorted := append([]float32(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			t.Fatalf("len = %d, want %d", len(got), want)
		}
		for i, res := range got {
			if res.Distance != sorted[i] {
				t.Fatalf("result[%d] = %v, want %v", i, res.Distance, sorted[i])
			}
		}
	}
}

func TestHeapOrderingAndTies(t *testing.T) {
	h := New(4)
	h.Push(3, 1.0)
	h.Push(1, 1.0)
	h.Push(2, 0.5)
	h.Push(4, 2.0)
	h.Push(5, 0.1) // evicts 2.0
	got := h.Results()
	wantIDs := []int64{5, 2, 1, 3}
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Fatalf("got %v, want IDs %v", got, wantIDs)
		}
	}
}

func TestAcceptsAndWorst(t *testing.T) {
	h := New(2)
	if _, ok := h.Worst(); ok {
		t.Fatal("Worst on empty heap reported ok")
	}
	if !h.Accepts(100) {
		t.Fatal("non-full heap must accept anything")
	}
	h.Push(1, 1)
	h.Push(2, 2)
	if w, ok := h.Worst(); !ok || w != 2 {
		t.Fatalf("Worst = %v,%v want 2,true", w, ok)
	}
	if h.Accepts(2) {
		t.Fatal("equal distance must be rejected when full")
	}
	if !h.Accepts(1.5) {
		t.Fatal("better distance must be accepted")
	}
}

func TestSnapshotDoesNotConsume(t *testing.T) {
	h := New(3)
	h.Push(1, 1)
	h.Push(2, 2)
	s1 := h.Snapshot()
	s2 := h.Snapshot()
	if len(s1) != 2 || len(s2) != 2 {
		t.Fatalf("Snapshot consumed the heap: %v %v", s1, s2)
	}
	if got := h.Results(); len(got) != 2 {
		t.Fatalf("Results after Snapshot = %v", got)
	}
	if h.Len() != 0 {
		t.Fatal("Results did not drain heap")
	}
}

func TestResetReuse(t *testing.T) {
	h := New(2)
	h.Push(1, 1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not empty heap")
	}
	h.Push(9, 9)
	if got := h.Results(); len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("after reset got %v", got)
	}
}

func TestNewPanicsOnNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestMerge(t *testing.T) {
	a := []Result{{1, 0.1}, {2, 0.4}}
	b := []Result{{3, 0.2}, {4, 0.3}}
	got := Merge(3, a, b)
	wantIDs := []int64{1, 3, 4}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Fatalf("got %v, want %v", got, wantIDs)
		}
	}
}

func TestMatrixMerge(t *testing.T) {
	m := NewMatrix(3, 2, 2)
	// thread t contributes distance t+query*0.1 for id t*10+query
	for th := 0; th < 3; th++ {
		for q := 0; q < 2; q++ {
			m.At(th, q).Push(int64(th*10+q), float32(th)+float32(q)*0.1)
		}
	}
	got := m.MergeQuery(0, 2)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 10 {
		t.Fatalf("MergeQuery(0) = %v", got)
	}
	got = m.MergeQuery(1, 2)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 11 {
		t.Fatalf("MergeQuery(1) = %v", got)
	}
	m.Reset()
	if m.At(1, 1).Len() != 0 {
		t.Fatal("Reset did not clear matrix heaps")
	}
}

// Property: merging any partition of a stream equals collecting the stream
// in one heap — the invariant the per-thread heap design depends on.
func TestMergePartitionInvariance(t *testing.T) {
	f := func(seed int64, parts uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(100)
		p := int(parts%7) + 1
		k := 1 + r.Intn(12)
		whole := New(k)
		lists := make([][]Result, p)
		for i := 0; i < n; i++ {
			d := r.Float32()
			whole.Push(int64(i), d)
			pi := r.Intn(p)
			h := New(k)
			for _, res := range lists[pi] {
				h.Push(res.ID, res.Distance)
			}
			h.Push(int64(i), d)
			lists[pi] = h.Results()
		}
		want := whole.Results()
		got := Merge(k, lists...)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHeapPush(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	ds := make([]float32, 4096)
	for i := range ds {
		ds[i] = r.Float32()
	}
	h := New(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(int64(i), ds[i%len(ds)])
	}
}
