// Package topk implements bounded top-k result collection for vector search.
//
// Search keeps the k best (smallest-distance) candidates seen so far in a
// bounded max-heap: the root is the current worst retained result, so an
// incoming candidate is admitted only if it beats the root (O(1) rejection on
// the hot path). The paper's cache-aware engine (Sec. 3.2.1) dedicates one
// such heap per (query, thread) pair and merges them afterwards; Merge and
// the preallocated Matrix support that design.
package topk

import (
	"slices"

	"vectordb/internal/bufferpool"
)

// Result is one search hit. Distance follows the smaller-is-better
// convention (inner product is negated upstream).
type Result struct {
	ID       int64
	Distance float32
}

// Heap is a bounded max-heap of the k smallest-distance results.
// The zero value is unusable; call New.
type Heap struct {
	k    int
	data []Result
}

// New returns a heap retaining the k best results. k must be positive.
func New(k int) *Heap {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Heap{k: k, data: make([]Result, 0, k)}
}

// Init re-arms a heap (possibly the zero value, possibly recycled from a
// free list) for a new bound k, reusing the backing array when it is large
// enough. k must be positive.
func (h *Heap) Init(k int) {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	h.k = k
	if cap(h.data) < k {
		h.data = make([]Result, 0, k)
	} else {
		h.data = h.data[:0]
	}
}

// Reset empties the heap, retaining capacity.
func (h *Heap) Reset() { h.data = h.data[:0] }

// K returns the bound.
func (h *Heap) K() int { return h.k }

// Len returns the number of retained results.
func (h *Heap) Len() int { return len(h.data) }

// Full reports whether k results are retained.
func (h *Heap) Full() bool { return len(h.data) == h.k }

// Worst returns the largest retained distance. It is only meaningful when
// the heap is non-empty; on an empty heap it returns +inf semantics via ok.
func (h *Heap) Worst() (float32, bool) {
	if len(h.data) == 0 {
		return 0, false
	}
	return h.data[0].Distance, true
}

// Accepts reports whether a candidate with distance d would be admitted.
func (h *Heap) Accepts(d float32) bool {
	return len(h.data) < h.k || d < h.data[0].Distance
}

// Push offers a candidate; it is retained if it is among the k best so far.
// NaN distances are rejected: NaN compares false against everything, so an
// admitted NaN could never be evicted and would silently shrink the usable
// heap (kernel edge cases — all-Inf inputs — can produce one).
func (h *Heap) Push(id int64, d float32) {
	if d != d {
		return
	}
	if len(h.data) < h.k {
		h.data = append(h.data, Result{id, d})
		h.up(len(h.data) - 1)
		return
	}
	if d >= h.data[0].Distance {
		return
	}
	h.data[0] = Result{id, d}
	h.down(0)
}

func (h *Heap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.data[p].Distance >= h.data[i].Distance {
			return
		}
		h.data[p], h.data[i] = h.data[i], h.data[p]
		i = p
	}
}

func (h *Heap) down(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.data[l].Distance > h.data[big].Distance {
			big = l
		}
		if r < n && h.data[r].Distance > h.data[big].Distance {
			big = r
		}
		if big == i {
			return
		}
		h.data[i], h.data[big] = h.data[big], h.data[i]
		i = big
	}
}

// Results returns the retained results sorted ascending by distance, ties
// broken by ID for determinism. The heap is left empty.
func (h *Heap) Results() []Result {
	out := make([]Result, len(h.data))
	copy(out, h.data)
	h.data = h.data[:0]
	sortResults(out)
	return out
}

// Snapshot returns the retained results sorted ascending by distance without
// consuming the heap.
func (h *Heap) Snapshot() []Result {
	out := make([]Result, len(h.data))
	copy(out, h.data)
	sortResults(out)
	return out
}

func sortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		switch {
		case a.Distance < b.Distance:
			return -1
		case a.Distance > b.Distance:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}

// mergeHeaps recycles Merge's scratch heaps: Merge runs once per query per
// merge level on the hot path, and a fresh k-sized heap per call was a
// measurable allocation source (see TestMergeAllocs).
var mergeHeaps = bufferpool.NewFree(func() *Heap { return new(Heap) })

// GetHeap returns a pooled heap armed for k. It serves the per-task scratch
// heaps of the scan paths (flat search, IVF batch workers, GPU top-k
// rounds); Results/Snapshot copy out, so the heap can be recycled with
// PutHeap as soon as its results have been taken.
func GetHeap(k int) *Heap {
	h := mergeHeaps.Get()
	h.Init(k)
	return h
}

// PutHeap recycles a heap obtained from GetHeap (or Merge's pool). The
// caller must not use it afterwards.
func PutHeap(h *Heap) { mergeHeaps.Put(h) }

// Merge combines several sorted-or-unsorted result lists into the global
// top-k, as the cache-aware engine does across per-thread heaps. The
// scratch heap is pooled; only the returned slice is allocated.
func Merge(k int, lists ...[]Result) []Result {
	h := mergeHeaps.Get()
	h.Init(k)
	for _, l := range lists {
		for _, r := range l {
			h.Push(r.ID, r.Distance)
		}
	}
	out := h.Results()
	mergeHeaps.Put(h)
	return out
}

// Matrix is the t×s grid of heaps used by the blocked batch engine: one heap
// per (thread, query-in-block) pair so threads never contend on a lock
// (Sec. 3.2.1, Fig. 3).
type Matrix struct {
	threads int
	queries int
	heaps   []*Heap
}

// NewMatrix allocates a threads×queries grid of k-bounded heaps.
func NewMatrix(threads, queries, k int) *Matrix {
	m := &Matrix{threads: threads, queries: queries, heaps: make([]*Heap, threads*queries)}
	for i := range m.heaps {
		m.heaps[i] = New(k)
	}
	return m
}

// At returns the heap dedicated to (thread, query).
func (m *Matrix) At(thread, query int) *Heap { return m.heaps[thread*m.queries+query] }

// Reset empties every heap for block reuse.
func (m *Matrix) Reset() {
	for _, h := range m.heaps {
		h.Reset()
	}
}

// MergeQuery merges all per-thread heaps of one query into its final top-k.
func (m *Matrix) MergeQuery(query, k int) []Result {
	lists := make([][]Result, m.threads)
	for t := 0; t < m.threads; t++ {
		lists[t] = m.At(t, query).Snapshot()
	}
	return Merge(k, lists...)
}
