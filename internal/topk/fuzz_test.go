package topk

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzHeapPush feeds the heap arbitrary (id, distance) streams — including
// NaN, ±Inf and denormals — and checks the invariants no input may break:
// the heap never exceeds k, Results is sorted ascending, NaN never enters
// (a NaN worst-element would wedge the heap: no finite distance evicts it),
// and Snapshot agrees with Results.
func FuzzHeapPush(f *testing.F) {
	nan := math.Float32bits(float32(math.NaN()))
	posInf := math.Float32bits(float32(math.Inf(1)))
	negInf := math.Float32bits(float32(math.Inf(-1)))
	mk := func(k byte, pairs ...uint32) []byte {
		out := []byte{k}
		for i := 0; i < len(pairs); i += 2 {
			out = binary.LittleEndian.AppendUint32(out, pairs[i])
			out = binary.LittleEndian.AppendUint32(out, pairs[i+1])
		}
		return out
	}
	f.Add(mk(3, 1, math.Float32bits(1.5), 2, math.Float32bits(0.5), 3, math.Float32bits(2.5)))
	f.Add(mk(1, 7, nan, 8, math.Float32bits(1)))                 // NaN first, then finite
	f.Add(mk(4, 1, posInf, 2, negInf, 3, nan, 4, nan))           // all the specials
	f.Add(mk(2, 5, math.Float32bits(0), 5, math.Float32bits(0))) // duplicate id, tied distance
	f.Add(mk(0))                                                 // k byte maps to minimum 1
	f.Add([]byte{255})                                           // large k, no pushes
	f.Add(mk(8, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7))       // denormal distances

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		k := int(data[0])%64 + 1
		h := New(k)
		data = data[1:]
		pushed := 0
		for len(data) >= 8 {
			id := int64(binary.LittleEndian.Uint32(data))
			d := math.Float32frombits(binary.LittleEndian.Uint32(data[4:]))
			data = data[8:]
			h.Push(id, d)
			if d == d {
				pushed++
			}
		}
		if h.Len() > k {
			t.Fatalf("heap holds %d > k=%d", h.Len(), k)
		}
		if pushed >= k && !h.Full() {
			t.Fatalf("heap not full after %d valid pushes with k=%d", pushed, k)
		}
		snap := h.Snapshot()
		res := h.Results()
		if len(snap) != len(res) {
			t.Fatalf("Snapshot len %d != Results len %d", len(snap), len(res))
		}
		for i, r := range res {
			if r.Distance != r.Distance {
				t.Fatalf("NaN distance survived at rank %d", i)
			}
			if i > 0 && r.Distance < res[i-1].Distance {
				t.Fatalf("results unsorted at rank %d: %v < %v", i, r.Distance, res[i-1].Distance)
			}
		}
	})
}

// FuzzMerge checks that merging arbitrary partitions of a result stream
// never produces more than k results, keeps them sorted, and equals the
// heap built over the whole stream when distances are unique.
func FuzzMerge(f *testing.F) {
	f.Add([]byte{4, 2, 1, 10, 2, 20, 3, 30, 4, 40, 5, 50})
	f.Add([]byte{1, 1, 9, 200})
	f.Add([]byte{8, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		k := int(data[0])%16 + 1
		parts := int(data[1])%4 + 1
		data = data[2:]
		lists := make([][]Result, parts)
		whole := New(k)
		for i := 0; len(data) >= 2; i++ {
			id, d := int64(data[0]), float32(data[1])
			data = data[2:]
			p := New(k)
			for _, r := range lists[i%parts] {
				p.Push(r.ID, r.Distance)
			}
			p.Push(id, d)
			lists[i%parts] = p.Results()
			whole.Push(id, d)
		}
		merged := Merge(k, lists...)
		if len(merged) > k {
			t.Fatalf("merge produced %d > k=%d results", len(merged), k)
		}
		for i := 1; i < len(merged); i++ {
			if merged[i].Distance < merged[i-1].Distance {
				t.Fatalf("merged results unsorted at %d", i)
			}
		}
		want := whole.Results()
		if len(merged) != len(want) {
			t.Fatalf("merge kept %d results, single heap kept %d", len(merged), len(want))
		}
		for i := range merged {
			if merged[i].Distance != want[i].Distance {
				t.Fatalf("rank %d: merged distance %v, single-heap %v", i, merged[i].Distance, want[i].Distance)
			}
		}
	})
}
