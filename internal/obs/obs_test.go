package obs

import (
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // negative deltas ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var nilC *Counter
	nilC.Inc()
	nilC.Add(3)
	if nilC.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	var nilG *Gauge
	nilG.Set(5)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "k", "1", "z", "2")
	b := r.Counter("x_total", "z", "2", "k", "1") // label order canonicalized
	if a != b {
		t.Fatal("same (name, labels) must return the same handle")
	}
	if c := r.Counter("x_total", "k", "1", "z", "3"); c == a {
		t.Fatal("different labels must return a different handle")
	}
	if r.Counter("y_total") != r.Counter("y_total") {
		t.Fatal("unlabeled series must be shared too")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge type mismatch")
		}
	}()
	r.Gauge("m_total")
}

func TestRegistryOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd label list")
		}
	}()
	r.Counter("m_total", "key_without_value")
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]time.Duration{10 * time.Millisecond, time.Millisecond}) // unsorted on purpose
	h.Observe(500 * time.Microsecond)                                           // ≤ 1ms
	h.Observe(time.Millisecond)                                                 // boundary: ≤ 1ms
	h.Observe(5 * time.Millisecond)                                             // ≤ 10ms
	h.Observe(time.Second)                                                      // +Inf
	h.Observe(-time.Second)                                                     // clamped to 0 → ≤ 1ms
	if got := h.buckets[0].Load(); got != 3 {
		t.Fatalf("bucket ≤1ms = %d, want 3", got)
	}
	if got := h.buckets[1].Load(); got != 1 {
		t.Fatalf("bucket ≤10ms = %d, want 1", got)
	}
	if got := h.buckets[2].Load(); got != 1 {
		t.Fatalf("bucket +Inf = %d, want 1", got)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	want := 500*time.Microsecond + time.Millisecond + 5*time.Millisecond + time.Second
	if h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	if h.Bounds()[0] != time.Millisecond {
		t.Fatal("bounds must be sorted ascending")
	}
}

func TestDefaultBucketsUsedWhenNil(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", nil)
	if len(h.Bounds()) != len(DefLatencyBuckets) {
		t.Fatalf("default bounds: got %d, want %d", len(h.Bounds()), len(DefLatencyBuckets))
	}
	// Bounds fixed at family creation; later calls inherit them.
	h2 := r.Histogram("lat_seconds", []time.Duration{time.Hour})
	if h2 != h {
		t.Fatal("same series must return same histogram")
	}
}

func TestNilRegistryReturnsWorkingHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "l", "v")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter must still count")
	}
	g := r.Gauge("b")
	g.Set(2)
	if g.Value() != 2 {
		t.Fatal("nil-registry gauge must still hold values")
	}
	h := r.Histogram("c_seconds", nil)
	h.Observe(time.Millisecond)
	if h.Count() != 1 {
		t.Fatal("nil-registry histogram must still observe")
	}
	r.CounterFunc("d_total", func() int64 { return 1 })
	r.GaugeFunc("e", func() int64 { return 1 })
	r.Help("a_total", "help")
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal("nil-registry scrape must be a no-op")
	}
}

func TestTraceSpansAndAttrs(t *testing.T) {
	tr := NewTrace("vector")
	if tr.Op() != "vector" {
		t.Fatalf("op = %q", tr.Op())
	}
	tr.Annotate("placement", "cpu")
	tr.Annotate("placement", "gpu") // last wins
	tr.AnnotateInt("k", 10)

	parent := tr.StartSpan("segments")
	child := parent.StartChild("index_search")
	child.AnnotateInt("rows", 100)
	child.End()
	child.End() // idempotent
	parent.End()
	merge := tr.StartSpan("topk_merge")
	merge.End()

	d1 := tr.Finish()
	d2 := tr.Finish()
	if d1 != d2 || d1 <= 0 {
		t.Fatalf("finish must be idempotent and positive: %v vs %v", d1, d2)
	}
	if v, ok := tr.Attr("placement"); !ok || v != "gpu" {
		t.Fatalf("attr placement = %q, %v", v, ok)
	}
	if v, _ := tr.Attr("k"); v != "10" {
		t.Fatalf("attr k = %q", v)
	}
	if _, ok := tr.Attr("absent"); ok {
		t.Fatal("absent attr must report !ok")
	}

	s := tr.Summary()
	if s.Op != "vector" || s.Duration != d1 {
		t.Fatalf("summary op/duration mismatch: %+v", s)
	}
	stages := s.Stages()
	want := []string{"segments", "index_search", "topk_merge"}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stages = %v, want %v", stages, want)
		}
	}
	if s.Spans[1].Parent != "segments" {
		t.Fatalf("child parent = %q", s.Spans[1].Parent)
	}
	bd := s.StageBreakdown()
	if bd["index_search"] <= 0 {
		t.Fatal("breakdown must include ended child span")
	}
	if v, ok := s.Attr("placement"); !ok || v != "gpu" {
		t.Fatalf("summary attr = %q, %v", v, ok)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil trace must hand out nil spans")
	}
	sp.End()
	sp.Annotate("a", "b")
	sp.AnnotateInt("c", 1)
	if sp.StartChild("y") != nil {
		t.Fatal("nil span child must be nil")
	}
	tr.Annotate("a", "b")
	tr.AnnotateInt("c", 1)
	if _, ok := tr.Attr("a"); ok {
		t.Fatal("nil trace has no attrs")
	}
	if tr.Finish() != 0 || tr.Duration() != 0 || tr.Op() != "" {
		t.Fatal("nil trace must return zero values")
	}
	if len(tr.Stages()) != 0 {
		t.Fatal("nil trace has no stages")
	}
	var sum TraceSummary = tr.Summary()
	if sum.Op != "" {
		t.Fatal("nil trace summary must be zero")
	}
}

func TestTraceLiveDuration(t *testing.T) {
	tr := NewTrace("op")
	time.Sleep(time.Millisecond)
	if tr.Duration() <= 0 {
		t.Fatal("open trace must report live duration")
	}
	if tr.Summary().Duration <= 0 {
		t.Fatal("open trace summary must report live duration")
	}
}

func TestQueryLogRingsAndSlowLog(t *testing.T) {
	l := NewQueryLog(3, 2, 10*time.Millisecond)
	mk := func(op string, d time.Duration) TraceSummary {
		return TraceSummary{
			Op:       op,
			Duration: d,
			Spans:    []SpanSummary{{Name: "scan", Duration: d}},
		}
	}
	l.RecordSummary(mk("q1", time.Millisecond))
	l.RecordSummary(mk("q2", 20*time.Millisecond))
	l.RecordSummary(mk("q3", time.Millisecond))
	l.RecordSummary(mk("q4", 30*time.Millisecond)) // evicts q1 from recent
	l.RecordSummary(mk("q5", 40*time.Millisecond)) // evicts slow q2

	recent := l.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent len = %d, want 3", len(recent))
	}
	if recent[0].Op != "q5" || recent[1].Op != "q4" || recent[2].Op != "q3" {
		t.Fatalf("recent order: %s %s %s", recent[0].Op, recent[1].Op, recent[2].Op)
	}
	slow := l.Slow()
	if len(slow) != 2 {
		t.Fatalf("slow len = %d, want 2", len(slow))
	}
	if slow[0].Op != "q5" || slow[1].Op != "q4" {
		t.Fatalf("slow order: %s %s", slow[0].Op, slow[1].Op)
	}
	if slow[0].Breakdown["scan"] != 40*time.Millisecond {
		t.Fatalf("slow breakdown = %v", slow[0].Breakdown)
	}
	if l.Total() != 5 || l.SlowTotal() != 3 {
		t.Fatalf("total = %d slow = %d", l.Total(), l.SlowTotal())
	}
}

func TestQueryLogThresholdAndNil(t *testing.T) {
	l := NewQueryLog(0, 0, 0) // defaults; slow log disabled
	tr := NewTrace("op")
	tr.Finish()
	l.Record(tr)
	l.Record(nil)
	if len(l.Recent()) != 1 || len(l.Slow()) != 0 {
		t.Fatalf("recent=%d slow=%d", len(l.Recent()), len(l.Slow()))
	}
	l.SetSlowThreshold(time.Nanosecond)
	l.RecordSummary(TraceSummary{Op: "s", Duration: time.Second})
	if len(l.Slow()) != 1 {
		t.Fatal("threshold change must enable slow capture")
	}

	var nilLog *QueryLog
	nilLog.Record(tr)
	nilLog.RecordSummary(TraceSummary{})
	nilLog.SetSlowThreshold(time.Second)
	if nilLog.Recent() != nil || nilLog.Slow() != nil || nilLog.Total() != 0 || nilLog.SlowTotal() != 0 {
		t.Fatal("nil query log must be inert")
	}
}
