package obs

import (
	"strings"
	"testing"
)

func TestRegisterCacheMetrics(t *testing.T) {
	r := NewRegistry()
	st := CacheStats{Hits: 3, Misses: 2, Evictions: 7, Bytes: 4096, Entries: 9, Detail: true}
	r.RegisterCacheMetrics("vectordb_testcache", func() CacheStats { return st }, "cache", "c1")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`vectordb_testcache_hits_total{cache="c1"} 3`,
		`vectordb_testcache_misses_total{cache="c1"} 2`,
		`vectordb_testcache_evictions_total{cache="c1"} 7`,
		`vectordb_testcache_bytes{cache="c1"} 4096`,
		`vectordb_testcache_entries{cache="c1"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Values are collected at scrape time, not registration time.
	st.Hits = 10
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !strings.Contains(b.String(), `vectordb_testcache_hits_total{cache="c1"} 10`) {
		t.Fatalf("scrape did not observe live hits:\n%s", b.String())
	}
}

func TestRegisterCacheMetricsBasicShape(t *testing.T) {
	r := NewRegistry()
	// Detail=false registers only the hit/miss pair (the cluster-reader
	// shape).
	r.RegisterCacheMetrics("vectordb_simplecache", func() CacheStats {
		return CacheStats{Hits: 1, Misses: 1}
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "vectordb_simplecache_hits_total 1") {
		t.Fatalf("hits missing:\n%s", out)
	}
	if strings.Contains(out, "vectordb_simplecache_bytes") || strings.Contains(out, "vectordb_simplecache_evictions_total") {
		t.Fatalf("detail series registered for a basic cache:\n%s", out)
	}

	// Nil registry and nil stats func are both safe no-ops.
	var nilReg *Registry
	nilReg.RegisterCacheMetrics("vectordb_x", func() CacheStats { return CacheStats{} })
	r.RegisterCacheMetrics("vectordb_y", nil)
}
