package obs_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"vectordb/internal/obs"
	"vectordb/internal/obs/promtext"
)

// goldenRegistry builds a registry with every metric kind, deterministic
// values, and label values that exercise the escaping rules.
func goldenRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Help("vdb_queries_total", `Total queries; escapes: \ and newline`+"\n"+`end`)
	r.Counter("vdb_queries_total", "collection", "a").Add(3)
	r.Counter("vdb_queries_total", "collection", "q\"uo\\te\nnl").Inc()
	r.Gauge("vdb_up").Set(1)
	h := r.Histogram("vdb_lat_seconds",
		[]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond},
		"collection", "a")
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(time.Second)
	r.GaugeFunc("vdb_fn", func() int64 { return 7 })
	return r
}

const golden = `# TYPE vdb_fn gauge
vdb_fn 7
# TYPE vdb_lat_seconds histogram
vdb_lat_seconds_bucket{collection="a",le="0.001"} 1
vdb_lat_seconds_bucket{collection="a",le="0.01"} 2
vdb_lat_seconds_bucket{collection="a",le="0.1"} 3
vdb_lat_seconds_bucket{collection="a",le="+Inf"} 4
vdb_lat_seconds_sum{collection="a"} 1.0555
vdb_lat_seconds_count{collection="a"} 4
# HELP vdb_queries_total Total queries; escapes: \\ and newline\nend
# TYPE vdb_queries_total counter
vdb_queries_total{collection="a"} 3
vdb_queries_total{collection="q\"uo\\te\nnl"} 1
# TYPE vdb_up gauge
vdb_up 1
`

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != golden {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

func TestWritePrometheusStableOrdering(t *testing.T) {
	// Two scrapes of the same registry must be byte-identical, and a
	// registry populated in a different order must expose identically.
	r := goldenRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("repeated scrapes must be identical")
	}

	r2 := obs.NewRegistry()
	r2.Counter("b_total", "y", "2", "x", "1").Inc()
	r2.Counter("a_total").Inc()
	r3 := obs.NewRegistry()
	r3.Counter("a_total").Inc()
	r3.Counter("b_total", "x", "1", "y", "2").Inc()
	var o2, o3 bytes.Buffer
	if err := r2.WritePrometheus(&o2); err != nil {
		t.Fatal(err)
	}
	if err := r3.WritePrometheus(&o3); err != nil {
		t.Fatal(err)
	}
	if o2.String() != o3.String() {
		t.Fatalf("insertion order leaked into exposition:\n%s\nvs\n%s", o2.String(), o3.String())
	}
}

func TestPromtextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*promtext.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	q := byName["vdb_queries_total"]
	if q == nil || q.Type != "counter" {
		t.Fatalf("vdb_queries_total family: %+v", q)
	}
	if want := "Total queries; escapes: \\ and newline\nend"; q.Help != want {
		t.Fatalf("help round-trip: %q != %q", q.Help, want)
	}
	found := false
	for _, s := range q.Samples {
		if s.Labels["collection"] == "q\"uo\\te\nnl" && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped label value did not round-trip: %+v", q.Samples)
	}

	hist := byName["vdb_lat_seconds"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family: %+v", hist)
	}
	// Bucket cumulativity: values must be non-decreasing in le order and
	// the +Inf bucket must equal _count.
	var prev float64 = -1
	var inf, count float64
	for _, s := range hist.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if s.Value < prev {
				t.Fatalf("bucket regression: %v after %v", s.Value, prev)
			}
			prev = s.Value
			if s.Labels["le"] == "+Inf" {
				inf = s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			if s.Value <= 1.0 || s.Value >= 1.1 {
				t.Fatalf("sum = %v, want ~1.0555", s.Value)
			}
		}
	}
	if inf != 4 || count != 4 {
		t.Fatalf("le=+Inf (%v) must equal _count (%v) = 4", inf, count)
	}

	if f := byName["vdb_fn"]; f == nil || f.Type != "gauge" || f.Samples[0].Value != 7 {
		t.Fatalf("gauge-func family: %+v", f)
	}
}

func TestPromtextMalformed(t *testing.T) {
	for _, in := range []string{
		"no_value_here\n",
		`bad_label{x=unquoted} 1` + "\n",
		`bad_escape{x="\q"} 1` + "\n",
		`unterminated{x="abc 1` + "\n",
		"name 12x34\n",
		"# TYPE only_two\n",
	} {
		if _, err := promtext.Parse([]byte(in)); err == nil {
			t.Errorf("Parse(%q) = nil error, want failure", in)
		}
	}
	// Bare comments and blank lines are fine.
	fams, err := promtext.Parse([]byte("\n# just a comment\nok_total 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || fams[0].Samples[0].Value != 1 {
		t.Fatalf("fams = %+v", fams)
	}
}
