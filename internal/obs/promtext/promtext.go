// Package promtext parses the Prometheus text exposition format 0.0.4 —
// the subset emitted by obs.Registry.WritePrometheus: HELP/TYPE comments,
// integer and float sample values, and escaped label values. It exists so
// tests can round-trip /metrics output instead of string-matching it.
package promtext

import (
	"fmt"
	"strconv"
	"strings"
)

// Sample is one series sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family groups the samples of one metric family. Histogram child series
// (_bucket, _sum, _count) are attached to their base family.
type Family struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, or untyped
	Samples []Sample
}

// Parse decodes exposition text into families, in input order.
func Parse(data []byte) ([]*Family, error) {
	byName := map[string]*Family{}
	var order []*Family
	fam := func(name string) *Family {
		if f := byName[name]; f != nil {
			return f
		}
		f := &Family{Name: name, Type: "untyped"}
		byName[name] = f
		order = append(order, f)
		return f
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, fam); err != nil {
				return nil, fmt.Errorf("promtext: line %d: %w", ln+1, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", ln+1, err)
		}
		f := fam(familyFor(s.Name, byName))
		f.Samples = append(f.Samples, s)
	}
	return order, nil
}

// familyFor maps a sample name to its family: histogram children attach
// to the declared base family, everything else to the exact name.
func familyFor(name string, byName map[string]*Family) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f := byName[base]; f != nil && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

func parseComment(line string, fam func(string) *Family) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // bare comment; ignored
	}
	switch fields[1] {
	case "HELP":
		help := ""
		if len(fields) == 4 {
			help = unescapeHelp(fields[3])
		}
		fam(fields[2]).Help = help
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		fam(fields[2]).Type = fields[3]
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		rest, err = parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("malformed value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {k="v",...} block and returns the remainder.
func parseLabels(in string, out map[string]string) (string, error) {
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return "", fmt.Errorf("malformed label block %q", in)
		}
		key := in[i : i+eq]
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return "", fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return "", fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '\\' {
				if i+1 >= len(in) {
					return "", fmt.Errorf("dangling escape in %q", in)
				}
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return "", fmt.Errorf("unknown escape \\%c in %q", in[i+1], in)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		out[key] = b.String()
	}
}

// unescapeHelp reverses HELP escaping in one pass (sequential ReplaceAll
// would corrupt a literal backslash followed by 'n').
func unescapeHelp(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			}
		}
		b.WriteByte(v[i])
	}
	return b.String()
}
