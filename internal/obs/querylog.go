package obs

import (
	"sync"
	"time"
)

// SlowQuery is a slow-log entry: the full trace summary plus the
// per-stage duration breakdown precomputed at record time.
type SlowQuery struct {
	TraceSummary
	Breakdown map[string]time.Duration `json:"breakdown"`
}

// QueryLog keeps two fixed-size rings of finished query traces: every
// recent query, and the subset slower than a settable threshold (with
// per-stage breakdowns). Recording is O(1) and allocation-light; readers
// get copies and never block recorders for long.
type QueryLog struct {
	mu      sync.Mutex
	recent  []TraceSummary
	rNext   int
	rFull   bool
	slow    []SlowQuery
	sNext   int
	sFull   bool
	slowAt  time.Duration
	total   int64
	slowCnt int64
}

// NewQueryLog sizes the rings and sets the slow threshold. Non-positive
// capacities fall back to small defaults; a non-positive threshold
// disables the slow log until SetSlowThreshold.
func NewQueryLog(recentCap, slowCap int, slowThreshold time.Duration) *QueryLog {
	if recentCap <= 0 {
		recentCap = 64
	}
	if slowCap <= 0 {
		slowCap = 32
	}
	return &QueryLog{
		recent: make([]TraceSummary, recentCap),
		slow:   make([]SlowQuery, slowCap),
		slowAt: slowThreshold,
	}
}

// SetSlowThreshold changes the slow-log latency cutoff. Zero or negative
// disables slow capture.
func (l *QueryLog) SetSlowThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.slowAt = d
	l.mu.Unlock()
}

// Record captures a finished trace. Nil-safe on both the log and the
// trace.
func (l *QueryLog) Record(t *Trace) {
	if l == nil || t == nil {
		return
	}
	l.RecordSummary(t.Summary())
}

// RecordSummary captures an already-snapshotted trace.
func (l *QueryLog) RecordSummary(s TraceSummary) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	l.recent[l.rNext] = s
	l.rNext++
	if l.rNext == len(l.recent) {
		l.rNext, l.rFull = 0, true
	}
	if l.slowAt > 0 && s.Duration >= l.slowAt {
		l.slowCnt++
		l.slow[l.sNext] = SlowQuery{TraceSummary: s, Breakdown: s.StageBreakdown()}
		l.sNext++
		if l.sNext == len(l.slow) {
			l.sNext, l.sFull = 0, true
		}
	}
}

// Recent returns the captured traces, most recent first.
func (l *QueryLog) Recent() []TraceSummary {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.rNext
	if l.rFull {
		n = len(l.recent)
	}
	out := make([]TraceSummary, 0, n)
	for i := 0; i < n; i++ {
		idx := (l.rNext - 1 - i + len(l.recent)) % len(l.recent)
		out = append(out, l.recent[idx])
	}
	return out
}

// Slow returns the slow-log entries, most recent first.
func (l *QueryLog) Slow() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.sNext
	if l.sFull {
		n = len(l.slow)
	}
	out := make([]SlowQuery, 0, n)
	for i := 0; i < n; i++ {
		idx := (l.sNext - 1 - i + len(l.slow)) % len(l.slow)
		out = append(out, l.slow[idx])
	}
	return out
}

// Total returns how many traces were ever recorded (including ones the
// ring has since overwritten).
func (l *QueryLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// SlowTotal returns how many traces crossed the slow threshold.
func (l *QueryLog) SlowTotal() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.slowCnt
}
