package obs_test

import (
	"io"
	"sync"
	"testing"
	"time"

	"vectordb/internal/obs"
	"vectordb/internal/obs/promtext"
)

// TestConcurrentWritersAndScrape hammers counters, histograms, traces and
// the query log from many goroutines while a scraper renders /metrics
// output. Run under -race (make ci does) to prove the hot paths are
// synchronization-clean.
func TestConcurrentWritersAndScrape(t *testing.T) {
	reg := obs.NewRegistry()
	qlog := obs.NewQueryLog(32, 16, time.Nanosecond)
	const (
		writers   = 8
		perWriter = 500
	)
	var writersWG, auxWG sync.WaitGroup
	stop := make(chan struct{})

	// Scraper: render continuously, and parse occasionally to make sure
	// concurrent output is always well-formed.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%10 == 0 {
				var buf writerBuffer
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				if _, err := promtext.Parse(buf.b); err != nil {
					t.Errorf("scrape not parseable under concurrency: %v", err)
					return
				}
			} else if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Readers of the query log race with recorders.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = qlog.Recent()
			_ = qlog.Slow()
		}
	}()

	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			c := reg.Counter("race_ops_total", "writer", string(rune('a'+w)))
			shared := reg.Counter("race_shared_total")
			h := reg.Histogram("race_lat_seconds", nil)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				shared.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				reg.Gauge("race_depth", "writer", string(rune('a'+w))).Set(int64(i))
				tr := obs.NewTrace("race")
				sp := tr.StartSpan("stage")
				sp.StartChild("sub").End()
				sp.End()
				tr.Finish()
				qlog.Record(tr)
			}
		}(w)
	}

	writersWG.Wait()
	close(stop)
	auxWG.Wait()

	if got := reg.Counter("race_shared_total").Value(); got != writers*perWriter {
		t.Fatalf("shared counter = %d, want %d", got, writers*perWriter)
	}
	if got := reg.Histogram("race_lat_seconds", nil).Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := qlog.Total(); got != writers*perWriter {
		t.Fatalf("qlog total = %d, want %d", got, writers*perWriter)
	}
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
