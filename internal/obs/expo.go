package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WritePrometheus writes every registered series in Prometheus text
// exposition format 0.0.4. Families are sorted by name and series by
// canonical label string, so output order is stable across scrapes.
// Histogram buckets are emitted cumulatively with a final le="+Inf" bucket
// equal to the _count line, and _sum in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot family/series structure under the lock, then read the
	// atomic values outside it so scrapes never stall writers.
	type expoSeries struct {
		labels string
		c      *Counter
		g      *Gauge
		h      *Histogram
		fn     func() int64
	}
	type expoFamily struct {
		name   string
		help   string
		typ    metricType
		series []expoSeries
	}
	r.mu.Lock()
	fams := make([]expoFamily, 0, len(r.fams))
	for name, f := range r.fams {
		ef := expoFamily{name: name, help: r.helps[name], typ: f.typ}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ef.series = append(ef.series, expoSeries{labels: s.labels, c: s.c, g: s.g, h: s.h, fn: s.fn})
		}
		fams = append(fams, ef)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.fn != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.fn())
			case s.c != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case s.h != nil:
				writeHistogram(bw, f.name, s.labels, s.h)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits one histogram series. The +Inf bucket and _count
// line both use the cumulative total computed from the bucket array, so
// the exposition is internally consistent even if Observe calls race with
// the scrape.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	cum := int64(0)
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, formatSeconds(h.bounds[i])), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatSeconds(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
}

// bucketLabels splices le into an already-rendered label block.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}
