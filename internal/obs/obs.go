// Package obs is vectordb's observability substrate: lock-cheap atomic
// counters, gauges and fixed-bucket latency histograms in a global-free
// Registry, lightweight span tracing for the query path, and a ring-buffer
// slow-query log. The package is stdlib-only and imports nothing else from
// this repo, so every layer (wal, vec, gpu, query, core, cluster, rest) can
// depend on it without cycles.
//
// All metric handles and the Registry itself are nil-safe: methods on a nil
// *Registry return working-but-unregistered handles, and methods on nil
// handles are no-ops. Instrumented code therefore never needs an "is
// telemetry enabled?" conditional on the hot path.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets is the default histogram bucketing: roughly
// exponential from 50µs to 10s, tuned for query/build latencies.
var DefLatencyBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	10 * time.Second,
}

// Histogram is a fixed-bucket duration histogram. Buckets are cumulative
// only at exposition time; Observe touches exactly one bucket plus the
// count and sum, all atomically and without locks.
type Histogram struct {
	bounds  []time.Duration // upper bounds, ascending
	buckets []atomic.Int64  // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := make([]time.Duration, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []time.Duration {
	if h == nil {
		return nil
	}
	return h.bounds
}

// metric families

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family. Exactly one of c/g/h/fn
// is set, matching the family's type (fn may back a counter or a gauge).
type series struct {
	labels string // canonical rendered label block: "" or `{k="v",...}`
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() int64
}

type family struct {
	name   string
	typ    metricType
	bounds []time.Duration
	series map[string]*series
}

// Registry is a get-or-create namespace of metric families. The same
// (name, labels) pair always resolves to the same handle, so callers may
// either cache handles (hot paths) or re-resolve by name (tests, scrapes).
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	helps map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}, helps: map[string]string{}}
}

// Help sets the HELP text emitted for the named family.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.helps[name] = help
	r.mu.Unlock()
}

// Counter returns the counter for (name, labels), creating it on first use.
// labels alternate key, value and must come in pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.get(name, typeCounter, nil, labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.get(name, typeGauge, nil, labels).g
}

// Histogram returns the histogram for (name, labels), creating it on first
// use. bounds applies only at family creation (nil means
// DefLatencyBuckets); later calls inherit the family's bucketing.
func (r *Registry) Histogram(name string, bounds []time.Duration, labels ...string) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	return r.get(name, typeHistogram, bounds, labels).h
}

// CounterFunc registers a counter series whose value is collected from fn
// at scrape time. Re-registering the same (name, labels) replaces fn,
// which lets a rebuilt component (e.g. a reader after a crash) take over
// its series.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...string) {
	if r == nil {
		return
	}
	r.get(name, typeCounter, nil, labels).fn = fn
}

// GaugeFunc registers a gauge series collected from fn at scrape time.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...string) {
	if r == nil {
		return
	}
	r.get(name, typeGauge, nil, labels).fn = fn
}

func (r *Registry) get(name string, typ metricType, bounds []time.Duration, labels []string) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, typ: typ, series: map[string]*series{}}
		if typ == typeHistogram {
			if len(bounds) == 0 {
				bounds = DefLatencyBuckets
			}
			f.bounds = bounds
		}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.typ, typ))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.series[key] = s
	}
	return s
}

// renderLabels canonicalizes a key/value list into a Prometheus label
// block, sorted by key so equal label sets always produce equal strings.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escaping rules for
// label values: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline only (quotes are
// legal in help strings).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
