package obs

// CacheStats is the scrape-time snapshot a cache exposes through
// RegisterCacheMetrics. Hits and Misses are always meaningful; Evictions,
// Bytes and Entries are registered only when Detail is set (simple caches
// like the cluster reader's segment pool track just the hit ratio).
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64
	Entries   int64
	Detail    bool
}

// RegisterCacheMetrics registers the standard series family for one cache
// under prefix (a vectordb_-namespaced literal at the call site):
// <prefix>_hits_total and <prefix>_misses_total always, plus
// <prefix>_evictions_total, <prefix>_bytes and <prefix>_entries when the
// first snapshot reports Detail. Funcs rather than counters, so a cache
// that is replaced wholesale (e.g. a reader rebuilt after a crash) keeps
// its series pointing at the live instance — every cache in the process
// shares this one registration shape.
func (r *Registry) RegisterCacheMetrics(prefix string, stats func() CacheStats, labels ...string) {
	if r == nil || stats == nil {
		return
	}
	//lint:allow metricreg cache families compose literal vectordb_-prefixed call-site prefixes with fixed suffixes; one shared registration shape for every cache
	r.CounterFunc(prefix+"_hits_total", func() int64 { return stats().Hits }, labels...)
	//lint:allow metricreg see prefix rationale above
	r.CounterFunc(prefix+"_misses_total", func() int64 { return stats().Misses }, labels...)
	if !stats().Detail {
		return
	}
	//lint:allow metricreg see prefix rationale above
	r.CounterFunc(prefix+"_evictions_total", func() int64 { return stats().Evictions }, labels...)
	//lint:allow metricreg see prefix rationale above
	r.GaugeFunc(prefix+"_bytes", func() int64 { return stats().Bytes }, labels...)
	//lint:allow metricreg see prefix rationale above
	r.GaugeFunc(prefix+"_entries", func() int64 { return stats().Entries }, labels...)
}
