package obs

import (
	"strconv"
	"sync"
	"time"
)

// KV is a string attribute on a trace or span. Integer values are
// formatted by AnnotateInt so the whole summary stays JSON-trivial.
type KV struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Trace captures one query's execution as a flat list of spans with
// parent linkage plus trace-level attributes (placement, strategy, ...).
// A nil *Trace is a valid no-op tracer: StartSpan returns a nil *Span and
// every other method returns zero values, so instrumented code threads
// traces unconditionally.
type Trace struct {
	op    string
	begin time.Time

	mu    sync.Mutex
	attrs []KV
	spans []*Span
	dur   time.Duration
	done  bool
}

// Span is one timed stage within a trace. Spans are created via
// Trace.StartSpan or Span.StartChild and closed with End.
type Span struct {
	tr     *Trace
	name   string
	parent *Span
	start  time.Time
	dur    time.Duration
	ended  bool
	attrs  []KV
}

// NewTrace starts a trace for the named operation.
func NewTrace(op string) *Trace {
	return &Trace{op: op, begin: time.Now()}
}

// Op returns the operation name.
func (t *Trace) Op() string {
	if t == nil {
		return ""
	}
	return t.op
}

// StartSpan opens a new root-level span.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Annotate attaches a trace-level attribute. Repeated keys are appended;
// Attr returns the latest value.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, KV{key, value})
	t.mu.Unlock()
}

// AnnotateInt attaches an integer trace-level attribute.
func (t *Trace) AnnotateInt(key string, value int64) {
	t.Annotate(key, formatInt(value))
}

// Attr returns the latest value annotated under key.
func (t *Trace) Attr(key string) (string, bool) {
	if t == nil {
		return "", false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.attrs) - 1; i >= 0; i-- {
		if t.attrs[i].Key == key {
			return t.attrs[i].Value, true
		}
	}
	return "", false
}

// Finish closes the trace, fixing its duration. Idempotent; spans still
// open keep whatever duration they had (zero if never ended).
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.dur = time.Since(t.begin)
		t.done = true
	}
	return t.dur
}

// Duration returns the trace duration (through Finish, or live if the
// trace is still open).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.dur
	}
	return time.Since(t.begin)
}

// StartChild opens a span parented under s. Child spans of a nil span
// are root-level spans of no trace (no-ops).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	sp := &Span{tr: s.tr, name: name, parent: s, start: time.Now()}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, sp)
	s.tr.mu.Unlock()
	return sp
}

// End closes the span. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.tr.mu.Unlock()
}

// Annotate attaches a span attribute.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, KV{key, value})
	s.tr.mu.Unlock()
}

// AnnotateInt attaches an integer span attribute.
func (s *Span) AnnotateInt(key string, value int64) {
	s.Annotate(key, formatInt(value))
}

// SpanSummary is the exported, immutable view of one span.
type SpanSummary struct {
	Name     string        `json:"name"`
	Parent   string        `json:"parent,omitempty"`
	StartOff time.Duration `json:"start_offset_ns"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []KV          `json:"attrs,omitempty"`
}

// TraceSummary is the exported, immutable view of a whole trace, safe to
// retain and serialize after the query returns.
type TraceSummary struct {
	Op       string        `json:"op"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []KV          `json:"attrs,omitempty"`
	Spans    []SpanSummary `json:"spans,omitempty"`
}

// Summary snapshots the trace. Open spans appear with zero duration.
func (t *Trace) Summary() TraceSummary {
	if t == nil {
		return TraceSummary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	dur := t.dur
	if !t.done {
		dur = time.Since(t.begin)
	}
	out := TraceSummary{
		Op:       t.op,
		Start:    t.begin,
		Duration: dur,
		Attrs:    append([]KV(nil), t.attrs...),
	}
	for _, sp := range t.spans {
		ss := SpanSummary{
			Name:     sp.name,
			StartOff: sp.start.Sub(t.begin),
			Duration: sp.dur,
			Attrs:    append([]KV(nil), sp.attrs...),
		}
		if sp.parent != nil {
			ss.Parent = sp.parent.name
		}
		out.Spans = append(out.Spans, ss)
	}
	return out
}

// Stages returns the distinct span names in first-appearance order.
func (t *Trace) Stages() []string {
	return t.Summary().Stages()
}

// Stages returns the distinct span names in first-appearance order.
func (s TraceSummary) Stages() []string {
	seen := map[string]bool{}
	var out []string
	for _, sp := range s.Spans {
		if !seen[sp.Name] {
			seen[sp.Name] = true
			out = append(out, sp.Name)
		}
	}
	return out
}

// StageBreakdown sums span durations by stage name.
func (s TraceSummary) StageBreakdown() map[string]time.Duration {
	out := make(map[string]time.Duration, len(s.Spans))
	for _, sp := range s.Spans {
		out[sp.Name] += sp.Duration
	}
	return out
}

// Attr returns the latest trace-level attribute under key.
func (s TraceSummary) Attr(key string) (string, bool) {
	for i := len(s.Attrs) - 1; i >= 0; i-- {
		if s.Attrs[i].Key == key {
			return s.Attrs[i].Value, true
		}
	}
	return "", false
}

func formatInt(v int64) string {
	return strconv.FormatInt(v, 10)
}
