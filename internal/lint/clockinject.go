package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// clockForbidden are the time-package entry points that read or schedule
// wall-clock time. Pure conversions and constructors (time.Unix,
// time.Date, time.Duration arithmetic) are fine — they do not make the
// code's behaviour depend on when it runs.
var clockForbidden = map[string]bool{
	"Now":       true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
}

// NewClockInject returns the clockinject analyzer: inside
// internal/batchform (subpackages included), every timing decision must go
// through the package's injectable Clock interface — calling the time
// package directly would make the former's trigger logic (size trip,
// window trip, auto-tune) untestable without wall-clock sleeps, which is
// exactly the flakiness the Clock abstraction exists to prevent. The Wall
// clock implementation is the one sanctioned caller and carries
// //lint:allow clockinject pragmas.
func NewClockInject() *Analyzer {
	a := &Analyzer{
		Name: "clockinject",
		Doc:  "internal/batchform reads time only through its injectable Clock, never the time package directly",
	}
	a.Run = func(pass *Pass) {
		if !inClockInjectedPkg(pass.PkgPath) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || funcPkgPath(fn) != "time" || !clockForbidden[fn.Name()] {
					return true
				}
				// Methods like time.Time.After or time.Time.Since are pure
				// value arithmetic; only the package-level functions touch
				// the process clock.
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				pass.Reportf(call.Pos(), "time.%s bypasses the injected Clock: route every timing decision through Config.Clock so tests stay deterministic",
					fn.Name())
				return true
			})
		}
	}
	return a
}

// inClockInjectedPkg reports whether pkgPath is internal/batchform or a
// subpackage of it.
func inClockInjectedPkg(pkgPath string) bool {
	segs := strings.Split(pkgPath, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && segs[i+1] == "batchform" {
			return true
		}
	}
	return false
}
