package lint

import (
	"fmt"
	"sort"
	"strings"
)

// lockorder builds the module-wide lock-order graph — an edge A→B whenever
// some execution path acquires lock class B while holding class A, whether
// the two acquisitions sit in one function or at opposite ends of a call
// chain — and reports every cycle as a potential deadlock, printing the
// full acquisition chain. Lock classes abstract over instances: all values
// of field DB.mu are one node, which is exactly the granularity at which
// an AB/BA inversion between two goroutines deadlocks.
type lockOrder struct {
	ip *interp
}

// NewLockOrder returns the lockorder analyzer sharing ip's call graph.
func NewLockOrder(ip *interp) *Analyzer {
	lo := &lockOrder{ip: ip}
	return &Analyzer{
		Name:   "lockorder",
		Doc:    "detect lock-order cycles (potential deadlocks) across the whole module via the interprocedural lock graph",
		Run:    func(pass *Pass) { lo.ip.visit(pass) },
		Finish: lo.finish,
		Stats:  ip.graphStats,
	}
}

func (lo *lockOrder) finish(report reportFunc) {
	ip := lo.ip
	ip.finish()
	for _, scc := range lockSCCs(ip.lockGraph) {
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		start := scc[0]
		for _, n := range scc[1:] {
			if ip.lockDisp[n] < ip.lockDisp[start] {
				start = n
			}
		}
		cycle := findLockCycle(ip.lockGraph, inSCC, start)
		if cycle == nil {
			continue // singleton SCC without a self-loop: acyclic
		}
		seq := ip.lockDisp[start]
		var details []string
		for _, e := range cycle {
			seq += " → " + ip.lockDisp[e.to]
			d := fmt.Sprintf("%s→%s in %s", e.fromDisp, e.toDisp, e.funcDisp)
			if len(e.chain) > 0 {
				d += " via " + strings.Join(e.chain, " → ")
			}
			details = append(details, d)
		}
		report(cycle[0].pos, "potential deadlock: lock-order cycle %s (%s)", seq, strings.Join(details, "; "))
	}
}

// findLockCycle walks the lock graph from start back to start, restricted
// to one strongly connected component; in an SCC every node lies on such a
// cycle, so this always succeeds for SCCs of size ≥ 2 and for self-loops.
func findLockCycle(graph map[string][]lockEdge, inSCC map[string]bool, start string) []lockEdge {
	var path []lockEdge
	visited := map[string]bool{start: true}
	var dfs func(n string) bool
	dfs = func(n string) bool {
		for _, e := range graph[n] {
			if !inSCC[e.to] {
				continue
			}
			if e.to == start {
				path = append(path, e)
				return true
			}
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			path = append(path, e)
			if dfs(e.to) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	if dfs(start) {
		return path
	}
	return nil
}

// lockSCCs condenses the lock graph into strongly connected components,
// returned sorted by their smallest member for deterministic reporting.
func lockSCCs(graph map[string][]lockEdge) [][]string {
	nodes := make([]string, 0, len(graph))
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	keys := make([]string, 0, len(graph))
	for k := range graph {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		addNode(k)
		for _, e := range graph[k] {
			addNode(e.to)
		}
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strong func(n string)
	strong = func(n string) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range graph[n] {
			if _, ok := index[e.to]; !ok {
				strong(e.to)
				if low[e.to] < low[n] {
					low[n] = low[e.to]
				}
			} else if onStack[e.to] && index[e.to] < low[n] {
				low[n] = index[e.to]
			}
		}
		if low[n] == index[n] {
			var scc []string
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strong(n)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}
