package lint

import (
	"go/ast"
	"go/types"
)

// blockcachePkg is the import-path suffix of the block-cache package whose
// pins the analyzer tracks.
const blockcachePkg = "internal/blockcache"

// NewBlockPin returns the blockpin analyzer: every pin acquired with
// blockcache Cache.GetOrLoad must be released with Pin.Release (or a defer
// of it) on every path out of the acquiring function. The discipline is the
// same lexical one poolfree enforces — a pin that escapes (stored in a
// struct, passed along, captured, returned) transfers ownership and stops
// being tracked — plus the (Pin, error) refinement: on the `err != nil`
// branch of the acquisition's error check the pin is its zero value, so
// error returns need no release.
//
// A leaked pin is worse than a leaked pool buffer: it holds a refcount on
// the cache entry, so eviction skips the block forever and the
// capacity-bounded cache degrades into an unbounded one.
func NewBlockPin() *Analyzer {
	a := &Analyzer{
		Name: "blockpin",
		Doc:  "block-cache pins (blockcache Cache.GetOrLoad) must be released on all return paths",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, scope := range functionScopes(f) {
				checkPinScope(pass, scope)
			}
		}
	}
	return a
}

// pinSpec adapts the shared release-flow interpreter to block-cache pins:
// release is a nullary Release() method call on the tracked value resolving
// into the blockcache package.
func pinSpec() poolSpec {
	return poolSpec{
		noun:    "cache pin",
		getDesc: "blockcache GetOrLoad",
		relDesc: "its Release method",
		isRelease: func(info *types.Info, call *ast.CallExpr, v types.Object) bool {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
				return false
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || info.Uses[id] != v {
				return false
			}
			fn := calleeFunc(info, call)
			return fn != nil && pathHasSuffix(funcPkgPath(fn), blockcachePkg)
		},
	}
}

// isPinAcquire reports whether call statically resolves to the block
// cache's GetOrLoad method.
func isPinAcquire(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == "GetOrLoad" && pathHasSuffix(funcPkgPath(fn), blockcachePkg)
}

func checkPinScope(pass *Pass, body *ast.BlockStmt) {
	// Find acquisitions directly in this scope (not in nested FuncLits —
	// including GetOrLoad's own load callback, which is a separate scope).
	var acqs []poolAcq
	inspectScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isPinAcquire(pass.Info, call) {
				return
			}
			if len(n.Lhs) != 2 {
				return
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				pass.Reportf(call.Pos(), "pin returned by GetOrLoad is discarded: the cache entry stays pinned and can never be evicted")
				return
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				return
			}
			acq := poolAcq{spec: pinSpec(), v: obj, stmt: n}
			// Pair the error result so the flow can refine `err != nil`
			// branches to the zero-pin state.
			if eid, ok := n.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
				if eobj := pass.Info.Defs[eid]; eobj != nil {
					acq.errv = eobj
				} else {
					acq.errv = pass.Info.Uses[eid]
				}
			}
			acqs = append(acqs, acq)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isPinAcquire(pass.Info, call) {
				pass.Reportf(call.Pos(), "pin returned by GetOrLoad is discarded: the cache entry stays pinned and can never be evicted")
			}
		}
	})
	flowAcqs(pass, body, acqs)
}
