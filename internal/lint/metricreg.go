package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// metricNameRE is the namespace contract for every series the obs
// registry exports: the vectordb_ prefix keeps the /metrics page
// greppable and collision-free when scraped next to other processes.
var metricNameRE = regexp.MustCompile(`^vectordb_[a-z0-9_]+$`)

// regKind is the metric family type implied by a registration call.
type regKind string

var regMethodKind = map[string]regKind{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

// regSite is one registration call site.
type regSite struct {
	name string
	kind regKind
	fn   string // "pkgpath.FuncName" that contains the call
	pos  token.Position
}

// NewMetricReg returns the metricreg analyzer: every obs.Registry metric
// name must be a compile-time constant matching vectordb_[a-z0-9_]+, and
// each family name must be registered from exactly one function — label
// variants of one family registered together are fine; the same name
// popping up in unrelated call sites is either an accidental collision or
// a latent type-mismatch panic (the registry panics when one name is
// requested as two different metric types). The same-function rule is
// checked module-wide in the Finish phase, across packages.
func NewMetricReg() *Analyzer {
	a := &Analyzer{
		Name: "metricreg",
		Doc:  "obs metric names are vectordb_-namespaced constants, each family registered from one function",
	}
	var sites []regSite
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			curFn := pass.PkgPath + ".<init>"
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					curFn = pass.PkgPath + "." + fd.Name.Name
					collectMetricCalls(pass, fd.Body, curFn, &sites)
				} else if gd, ok := d.(*ast.GenDecl); ok {
					collectMetricCalls(pass, gd, pass.PkgPath+".<init>", &sites)
				}
			}
		}
	}
	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		byName := map[string][]regSite{}
		for _, s := range sites {
			byName[s.name] = append(byName[s.name], s)
		}
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			group := byName[n]
			first := group[0]
			for _, s := range group[1:] {
				if s.kind != first.kind {
					report(s.pos, "metric %q is registered as a %s here but as a %s at %s:%d: the registry panics on the second type",
						n, s.kind, first.kind, first.pos.Filename, first.pos.Line)
					continue
				}
				if s.fn != first.fn {
					report(s.pos, "metric %q is also registered in %s (%s:%d): register a family from a single function so its labels and help stay coherent",
						n, first.fn, first.pos.Filename, first.pos.Line)
				}
			}
		}
	}
	return a
}

// collectMetricCalls finds obs.Registry registration calls under root and
// validates their name argument.
func collectMetricCalls(pass *Pass, root ast.Node, fnName string, sites *[]regSite) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || !pathHasSuffix(funcPkgPath(fn), "internal/obs") {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !typeIs(sig.Recv().Type(), "internal/obs", "Registry") {
			return true
		}
		kind, isReg := regMethodKind[fn.Name()]
		isHelp := fn.Name() == "Help"
		if !isReg && !isHelp {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		nameArg := call.Args[0]
		tv := pass.Info.Types[nameArg]
		if tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(nameArg.Pos(), "metric name passed to Registry.%s is not a compile-time constant: dynamic names defeat static registration checks and HELP coherence",
				fn.Name())
			return true
		}
		name := constant.StringVal(tv.Value)
		if !metricNameRE.MatchString(name) {
			pass.Reportf(nameArg.Pos(), "metric name %q does not match %s: all series share the vectordb_ namespace",
				name, metricNameRE.String())
		}
		if isReg {
			*sites = append(*sites, regSite{name: name, kind: kind, fn: fnName, pos: pass.Fset.Position(call.Pos())})
		}
		return true
	})
}
