package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE matches golden expectations in testdata sources:
//
//	// want <analyzer> "substring"        — finding expected on this line
//	// want-below <analyzer> "substring"  — finding expected one line down
//	// want-above <analyzer> "substring"  — finding expected one line up
//
// The quoted text is matched as a substring of the finding's message.
// want-below marks declarations whose finding lands on the code line
// under a doc comment; want-above marks pragma findings, which are
// reported at the pragma comment itself (where no second comment fits).
var wantRE = regexp.MustCompile(`// want(-below|-above)? ([a-z]+) "([^"]+)"`)

type expectation struct {
	file     string
	line     int
	analyzer string
	substr   string
	matched  bool
}

func collectWants(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for ln := 1; sc.Scan(); ln++ {
			for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				line := ln
				switch m[1] {
				case "-below":
					line++
				case "-above":
					line--
				}
				wants = append(wants, &expectation{file: path, line: line, analyzer: m[2], substr: m[3]})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatal("no // want expectations found under", root)
	}
	return wants
}

// TestGolden runs the full suite over the synthetic module in testdata
// and requires an exact match between findings and // want comments:
// every seeded violation must be caught on its annotated line, and
// nothing else may be reported (so the legal control shapes in each
// fixture double as false-positive tests, and the //lint:allow fixtures
// prove suppression works end to end).
func TestGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "lintest"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root, []string{"./..."}, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, root)

	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line &&
				w.analyzer == f.Analyzer && strings.Contains(f.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing finding: want [%s] %q at %s:%d", w.analyzer, w.substr, w.file, w.line)
		}
	}

	// Every shipped analyzer (and the pragma validator) must be exercised
	// by at least one golden finding, so a silently-broken analyzer cannot
	// pass as "clean".
	for _, a := range Defaults() {
		if byAnalyzer[a.Name] == 0 {
			t.Errorf("analyzer %s produced no golden findings", a.Name)
		}
	}
	if byAnalyzer["pragma"] == 0 {
		t.Error("malformed-pragma validation produced no golden findings")
	}
}

// TestGoldenSelect runs a single analyzer over the whole golden module
// and checks the subsetting: only that analyzer's findings appear, except
// that genuinely malformed pragmas are still reported (they are broken
// regardless of which analyzers run), while valid pragmas naming
// unselected analyzers must not be.
func TestGoldenSelect(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "lintest"))
	if err != nil {
		t.Fatal(err)
	}
	analyzers, unknown := Select([]string{"kerneldispatch"})
	if len(unknown) > 0 || len(analyzers) != 1 {
		t.Fatalf("Select(kerneldispatch) = %d analyzers, unknown %v", len(analyzers), unknown)
	}
	findings, err := Run(root, []string{"./..."}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.Analyzer]++
		switch f.Analyzer {
		case "kerneldispatch":
			if !strings.HasSuffix(filepath.Dir(f.Pos.Filename), filepath.FromSlash("internal/index/kernelbad")) {
				t.Errorf("kerneldispatch finding outside the kernelbad fixture: %s", f)
			}
		case "pragma":
			if !strings.HasSuffix(filepath.Dir(f.Pos.Filename), filepath.FromSlash("internal/core/allowok")) {
				t.Errorf("pragma finding outside the allowok fixture: %s", f)
			}
		default:
			t.Errorf("selected run leaked a %s finding: %s", f.Analyzer, f)
		}
	}
	if counts["kerneldispatch"] != 3 || counts["pragma"] != 2 || len(findings) != 5 {
		t.Fatalf("got %v, want 3 kerneldispatch + 2 pragma:\n%s", counts, renderFindings(findings))
	}
}

// TestSelectUnknown verifies the driver's unknown-analyzer handling.
func TestSelectUnknown(t *testing.T) {
	analyzers, unknown := Select([]string{"poolfree", "nosuch"})
	if len(analyzers) != 1 || analyzers[0].Name != "poolfree" {
		t.Errorf("Select kept %d analyzers", len(analyzers))
	}
	if len(unknown) != 1 || unknown[0] != "nosuch" {
		t.Errorf("unknown = %v, want [nosuch]", unknown)
	}
}

// TestFindingString pins the canonical driver output format.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "ctxflow", Message: "msg"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	if got, want := f.String(), "a/b.go:3:7: [ctxflow] msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintln(&b, f)
	}
	return b.String()
}
