package lint

import "strings"

// lockdisciplinex is the transitive extension of lockdiscipline: it flags
// a blocking operation — channel op, defaultless select, WaitGroup.Wait,
// exec pool submission, blockcache GetOrLoad — reached through ANY call
// chain while a mutex is held, where the intraprocedural fast path only
// sees the operation when it sits lexically inside the locked region.
// The fast path stays authoritative for direct violations: this analyzer
// reports (a) held-across blockcache GetOrLoad, which the fast path does
// not model, and (b) held-at call sites whose callee may transitively
// block, skipping direct calls into the exec pool's submit family that
// the fast path already flags.
type lockDisciplineX struct {
	ip *interp
}

// NewLockDisciplineX returns the transitive lock-discipline analyzer
// sharing ip's call graph.
func NewLockDisciplineX(ip *interp) *Analyzer {
	lx := &lockDisciplineX{ip: ip}
	return &Analyzer{
		Name:   "lockdisciplinex",
		Doc:    "flag blocking operations reached through any call chain while a mutex is held (transitive lockdiscipline)",
		Run:    func(pass *Pass) { lx.ip.visit(pass) },
		Finish: lx.finish,
	}
}

func (lx *lockDisciplineX) finish(report reportFunc) {
	ip := lx.ip
	ip.finish()
	for _, key := range ip.order {
		s := ip.funcs[key]
		for _, b := range s.blocks {
			// The fast path flags every other direct blocking op; GetOrLoad
			// (which parks on the per-key singleflight) is modelled only here.
			if b.what == "blockcache GetOrLoad" && len(b.held) > 0 {
				report(b.pos, "%s held across %s: the load fn runs arbitrary I/O and other goroutines wait on the same key", heldNames(b.held), b.what)
			}
		}
		for _, c := range s.calls {
			if len(c.held) == 0 {
				continue
			}
			cs, ok := ip.funcs[c.callee]
			if !ok || cs.fastPathBlock || cs.blockW == nil {
				continue
			}
			w := cs.blockW
			via := ""
			if len(w.chain) > 0 {
				via = " via " + strings.Join(w.chain, " → ")
			}
			report(c.pos, "%s held across call to %s, which may block on %s%s (%s:%d)", heldNames(c.held), c.disp, w.what, via, w.pos.Filename, w.pos.Line)
		}
	}
}

// heldNames renders the held-lock set for a message.
func heldNames(held []heldLock) string {
	names := make([]string, len(held))
	for i, h := range held {
		names[i] = h.disp
	}
	return strings.Join(names, ", ")
}
