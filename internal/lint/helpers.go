package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the static callee of a call expression: a package
// function, a method (through the selection), or nil for calls through
// function-typed values, built-ins and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation Fn[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// funcPkgPath returns the package path a function belongs to ("" for
// builtins and methods on types from no package).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// pathHasSuffix reports whether an import path is, or ends with, the given
// slash-separated suffix. Matching by suffix rather than exact path lets
// the analyzers recognize both the real packages ("vectordb/internal/vec")
// and the stub packages of the golden-test module
// ("vectordb/internal/lint/testdata/...", "lintest.example/internal/vec").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isCallTo reports whether call statically resolves to a function named
// name in a package whose path ends with pkgSuffix.
func isCallTo(info *types.Info, call *ast.CallExpr, pkgSuffix, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && pathHasSuffix(funcPkgPath(fn), pkgSuffix)
}

// restrictedReadPathPkgs are the package families whose hot paths must
// thread context.Context (ctxflow) — the read-path layers PR 3 converted.
var restrictedReadPathPkgs = []string{"core", "index", "query", "exec", "gpu", "cluster"}

// inRestrictedReadPath reports whether pkgPath is one of the
// internal/{core,index,query,exec,gpu,cluster} families (subpackages
// included, e.g. internal/index/ivf).
func inRestrictedReadPath(pkgPath string) bool {
	segs := strings.Split(pkgPath, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] != "internal" {
			continue
		}
		for _, fam := range restrictedReadPathPkgs {
			if segs[i+1] == fam {
				return true
			}
		}
	}
	return false
}

// namedTypePath returns (package path, type name) of t's core named type,
// unwrapping pointers and aliases; ok is false for unnamed types.
func namedTypePath(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// typeIs reports whether t (or *t) is the named type pkgSuffix.name.
func typeIs(t types.Type, pkgSuffix, name string) bool {
	p, n, ok := namedTypePath(t)
	return ok && n == name && pathHasSuffix(p, pkgSuffix)
}

// enclosingFuncs yields every function body in the file: declarations and
// function literals, each visited exactly once as its own scope.
func enclosingFuncs(f *ast.File, visit func(name string, decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd, fd.Body)
	}
}
