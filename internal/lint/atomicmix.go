package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewAtomicMix returns the atomicmix analyzer: once any access to a
// variable or struct field goes through the legacy sync/atomic functions
// (atomic.LoadInt64(&x.n), atomic.AddInt64(&x.n, 1), ...), every access
// must — a plain read races with the atomic writers, and a plain write can
// be lost entirely. The analyzer collects every `&v` handed to a
// sync/atomic call in the package, then flags any other mention of the
// same variable that is not itself inside an atomic call.
//
// The check is per package, which matches how such fields can be reached:
// they are almost always unexported. Typed atomics (atomic.Int64 et al.)
// need no check — their value is unreachable except through methods — and
// are the recommended fix for any finding.
func NewAtomicMix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc:  "variables accessed via sync/atomic must never be read or written plainly",
	}
	a.Run = func(pass *Pass) {
		// Pass 1: variables used atomically, and the exact AST mentions
		// that occur inside atomic calls (sanctioned uses).
		atomicVars := map[*types.Var]token.Pos{}
		sanctioned := map[*ast.Ident]bool{}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || funcPkgPath(fn) != "sync/atomic" {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil {
					return true // typed-atomic method: safe by construction
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					id := baseIdent(un.X)
					if id == nil {
						continue
					}
					if v, ok := objectOf(pass.Info, id).(*types.Var); ok {
						if _, seen := atomicVars[v]; !seen {
							atomicVars[v] = call.Pos()
						}
						sanctioned[id] = true
					}
				}
				return true
			})
		}
		if len(atomicVars) == 0 {
			return
		}
		// Struct-literal keys (S{n: 0}) resolve to the field object but
		// are initializers, not accesses: the struct is not shared yet.
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				t := pass.Info.TypeOf(cl)
				if t == nil {
					return true
				}
				if ptr, ok := t.Underlying().(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if _, ok := t.Underlying().(*types.Struct); !ok {
					return true
				}
				for _, elt := range cl.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							sanctioned[id] = true
						}
					}
				}
				return true
			})
		}
		// Pass 2: every other mention is a mixed access.
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || sanctioned[id] {
					return true
				}
				v, ok := objectOf(pass.Info, id).(*types.Var)
				if !ok {
					return true
				}
				firstPos, tracked := atomicVars[v]
				if !tracked || id.Pos() == v.Pos() {
					return true // not tracked, or the declaration itself
				}
				pass.Reportf(id.Pos(), "%s is accessed with sync/atomic (e.g. line %d) but plainly here: use sync/atomic for every access, or migrate to a typed atomic",
					id.Name, pass.Fset.Position(firstPos).Line)
				return true
			})
		}
	}
	return a
}

// baseIdent returns the field identifier of a selector chain (x.y.z -> z)
// or a bare identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
