// Package lint is vectordb's in-tree static-analysis framework: a small
// analyzer API over the standard library's go/ast and go/types (no
// golang.org/x/tools dependency — the repo is stdlib-only), plus a package
// loader driven by `go list -json` and a runner with module-wide
// aggregation for cross-package invariants.
//
// The shipped analyzers machine-check the hot-path conventions PRs 1–4
// established by hand: pooled scratch must be released on every path
// (poolfree), the read path must thread context.Context instead of minting
// background contexts (ctxflow), distance kernels are only reached through
// the internal/vec dispatch table (kerneldispatch), locks are not held
// across blocking operations and lock-bearing structs are not copied
// (lockdiscipline), fields touched with sync/atomic are never accessed
// plainly (atomicmix), and obs metric names are namespaced and uniquely
// registered (metricreg).
//
// Intentional exceptions are annotated in the source with
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line directly above it; the runner drops
// findings covered by a pragma and reports pragmas that are malformed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position // file:line:col of the violation
	Analyzer string         // analyzer name, e.g. "poolfree"
	Message  string
}

// String renders the canonical driver output line.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named invariant check. Run is invoked once per loaded
// package; Finish, when set, is invoked once after every package has been
// visited and is where cross-package state (collected by Run closures) is
// checked. Analyzer values returned by the constructors in this package
// carry per-instance state, so build a fresh set per run (see Defaults).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// Finish reports module-wide findings after all packages ran.
	Finish reportFuncConsumer
	// Stats, when set, contributes analyzer-specific counters (call-graph
	// size and the like) to RunStats.Extra after Finish has run.
	Stats func(put func(name string, v int64))
}

// reportFunc is the reporting callback handed to Finish phases.
type reportFunc = func(pos token.Position, format string, args ...any)

type reportFuncConsumer = func(report reportFunc)

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	PkgPath  string

	runner *Runner
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.runner.report(p.Fset.Position(pos), p.Analyzer.Name, fmt.Sprintf(format, args...))
}

// Runner executes a set of analyzers over loaded packages, applying
// //lint:allow pragmas and collecting findings.
type Runner struct {
	Analyzers []*Analyzer

	findings   []Finding
	suppressed int
	// allow maps filename -> line -> analyzer names allowed there.
	allow map[string]map[int]map[string]bool
	// nanos accumulates per-analyzer wall time across Run and Finish.
	nanos map[string]int64
}

// NewRunner returns a runner over the given analyzers.
func NewRunner(analyzers []*Analyzer) *Runner {
	return &Runner{
		Analyzers: analyzers,
		allow:     map[string]map[int]map[string]bool{},
		nanos:     map[string]int64{},
	}
}

// report records a finding unless an allow pragma covers it. Pragmas are
// collected per file before any analyzer runs on it, and the only
// reporting entry points (Pass.Reportf, Finish's report func) funnel here,
// so suppression is uniform.
func (r *Runner) report(pos token.Position, analyzer, msg string) {
	if lines, ok := r.allow[pos.Filename]; ok {
		// A pragma suppresses findings on its own line (trailing comment)
		// and on the line directly below it (preceding-line comment).
		if lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer] {
			r.suppressed++
			return
		}
	}
	r.findings = append(r.findings, Finding{Pos: pos, Analyzer: analyzer, Message: msg})
}

// Findings returns all findings sorted by position.
func (r *Runner) Findings() []Finding {
	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i], r.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return r.findings
}

// Suppressed reports how many findings allow pragmas dropped.
func (r *Runner) Suppressed() int { return r.suppressed }

// RunPackage collects pragmas from pkg's files, then runs every analyzer
// on it.
func (r *Runner) RunPackage(pkg *LoadedPackage) {
	// Pragmas are validated against every shipped analyzer, not just the
	// selected subset: running `-run kerneldispatch` must not flag a
	// legitimate `//lint:allow ctxflow ...` as malformed.
	known := map[string]bool{}
	for _, a := range Defaults() {
		known[a.Name] = true
	}
	for _, a := range r.Analyzers {
		known[a.Name] = true
	}
	for _, f := range pkg.Syntax {
		r.collectPragmas(pkg.Fset, f, known)
	}
	for _, a := range r.Analyzers {
		if a.Run == nil {
			continue
		}
		start := time.Now()
		a.Run(&Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Syntax,
			Pkg:      pkg.Types,
			Info:     pkg.TypesInfo,
			PkgPath:  pkg.ImportPath,
			runner:   r,
		})
		r.nanos[a.Name] += time.Since(start).Nanoseconds()
	}
}

// Finish runs every analyzer's module-wide phase.
func (r *Runner) Finish() {
	for _, a := range r.Analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		start := time.Now()
		a.Finish(func(pos token.Position, format string, args ...any) {
			r.report(pos, name, fmt.Sprintf(format, args...))
		})
		r.nanos[name] += time.Since(start).Nanoseconds()
	}
}

// collectPragmas scans a file's comments for //lint:allow directives.
// Malformed pragmas (unknown analyzer, missing reason) are themselves
// findings under the reserved name "pragma" and cannot be suppressed.
func (r *Runner) collectPragmas(fset *token.FileSet, f *ast.File, known map[string]bool) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:allow")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) == 0 || !known[fields[0]] {
				r.findings = append(r.findings, Finding{
					Pos:      pos,
					Analyzer: "pragma",
					Message:  fmt.Sprintf("malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" with a known analyzer, got %q", strings.TrimSpace(text)),
				})
				continue
			}
			if len(fields) < 2 {
				r.findings = append(r.findings, Finding{
					Pos:      pos,
					Analyzer: "pragma",
					Message:  fmt.Sprintf("//lint:allow %s needs a reason: the next reader must learn why the invariant is waived here", fields[0]),
				})
				continue
			}
			lines := r.allow[pos.Filename]
			if lines == nil {
				lines = map[int]map[string]bool{}
				r.allow[pos.Filename] = lines
			}
			set := lines[pos.Line]
			if set == nil {
				set = map[string]bool{}
				lines[pos.Line] = set
			}
			set[fields[0]] = true
		}
	}
}

// RunStats describes one run for the driver's -stats flag: package count,
// per-analyzer wall time, analyzer-contributed counters (call-graph size),
// and how many findings allow pragmas suppressed.
type RunStats struct {
	Packages      int
	AnalyzerNanos map[string]int64
	Extra         map[string]int64
	Suppressed    int
}

// Run is the one-call entry point used by cmd/vectordblint and the tests:
// load patterns relative to dir, run analyzers over every loaded package,
// then the cross-package Finish phase.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunWithStats(dir, patterns, analyzers)
	return findings, err
}

// RunWithStats is Run plus per-analyzer timing and size counters.
func RunWithStats(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, *RunStats, error) {
	prog, err := Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	r := NewRunner(analyzers)
	for _, pkg := range prog.Packages {
		r.RunPackage(pkg)
	}
	r.Finish()
	stats := &RunStats{
		Packages:      len(prog.Packages),
		AnalyzerNanos: r.nanos,
		Extra:         map[string]int64{},
		Suppressed:    r.suppressed,
	}
	for _, a := range analyzers {
		if a.Stats != nil {
			a.Stats(func(name string, v int64) { stats.Extra[name] = v })
		}
	}
	return r.Findings(), stats, nil
}
