package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewCtxFlow returns the ctxflow analyzer, enforcing the read path's
// cancellation discipline from PR 3:
//
//  1. Inside the internal/{core,index,query,exec,gpu,cluster} families,
//     no function may mint a fresh context with context.Background() or
//     context.TODO(): the caller's context must be threaded down, or
//     cancellation and deadlines silently stop propagating. Compatibility
//     wrappers that intentionally anchor a background context carry a
//     //lint:allow ctxflow pragma.
//  2. A function whose name ends in "Ctx" advertises that it threads a
//     context; one that declares a context.Context parameter and then
//     never uses it has dropped the caller's cancellation on the floor.
func NewCtxFlow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "read-path packages must thread context.Context, not mint Background/TODO or drop ctx params",
	}
	a.Run = func(pass *Pass) {
		restricted := inRestrictedReadPath(pass.PkgPath)
		for _, f := range pass.Files {
			if restricted {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pass.Info, call)
					if fn == nil || funcPkgPath(fn) != "context" {
						return true
					}
					if fn.Name() == "Background" || fn.Name() == "TODO" {
						pass.Reportf(call.Pos(), "context.%s() inside a read-path package severs cancellation: thread the caller's ctx instead",
							fn.Name())
					}
					return true
				})
			}
			enclosingFuncs(f, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
				checkCtxVariant(pass, name, decl, body)
			})
		}
	}
	return a
}

// checkCtxVariant flags *Ctx functions that accept a context parameter but
// never consult it.
func checkCtxVariant(pass *Pass, name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
	if !strings.HasSuffix(name, "Ctx") || len(name) == len("Ctx") {
		return
	}
	var ctxParam *types.Var
	var paramName string
	if decl.Type.Params == nil {
		return
	}
	for _, field := range decl.Type.Params.List {
		t := pass.Info.Types[field.Type].Type
		if t == nil || !typeIs(t, "context", "Context") {
			continue
		}
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(), "%s declares an unnamed context.Context parameter it cannot use: name it and thread it down", name)
			return
		}
		for _, id := range field.Names {
			if id.Name == "_" {
				pass.Reportf(id.Pos(), "%s discards its context.Context parameter (_): thread it down or drop the Ctx suffix", name)
				return
			}
			if v, ok := pass.Info.Defs[id].(*types.Var); ok {
				ctxParam = v
				paramName = id.Name
			}
		}
		break
	}
	if ctxParam == nil {
		return
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == ctxParam {
			used = true
		}
		return !used
	})
	if !used {
		pass.Reportf(decl.Name.Pos(), "%s never uses its context parameter %q: cancellation and deadlines are silently dropped",
			name, paramName)
	}
}
