package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewKernelDispatch returns the kerneldispatch analyzer: outside
// internal/vec itself, distance kernels may only be reached through the
// hooked dispatch entry points (L2Squared, Dot, the Batch/Bound/Tile
// family, Metric.Dist) — never through the tier-explicit *At variants,
// which take an explicit vec.Level and bypass both the CPU-feature
// dispatch table and the per-tier dispatch counters the conformance tests
// assert on. Pinning a tier (vec.SetLevel) is likewise a process-level
// decision reserved for main packages and the VECTORDB_SIMD override.
//
// This is the type-aware replacement for the old grep-based
// `make kernel-guard` symbol check: instead of grepping for entry-point
// names, any call that statically resolves into internal/vec, takes a
// vec.Level and operates on float32 data is flagged wherever it appears.
// The dynamic half of the old guard — conformance tests asserting the
// batch dispatch counters tick during scans — still runs in CI.
func NewKernelDispatch() *Analyzer {
	a := &Analyzer{
		Name: "kerneldispatch",
		Doc:  "distance kernels are called only via the internal/vec dispatch table, never per-tier",
	}
	a.Run = func(pass *Pass) {
		if pathHasSuffix(pass.PkgPath, "internal/vec") {
			return
		}
		mainPkg := pass.Pkg != nil && pass.Pkg.Name() == "main"
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || !pathHasSuffix(funcPkgPath(fn), "internal/vec") {
					return true
				}
				if isTierExplicitKernel(fn) {
					pass.Reportf(call.Pos(), "%s bypasses the SIMD dispatch table: call the hooked entry point (%s) so tier selection and dispatch counting stay centralized",
						fn.Name(), strings.TrimSuffix(fn.Name(), "At"))
				} else if fn.Name() == "SetLevel" && !mainPkg {
					pass.Reportf(call.Pos(), "SetLevel pins the kernel tier process-wide: only main packages (or the VECTORDB_SIMD override) may do that")
				}
				return true
			})
		}
	}
	return a
}

// isTierExplicitKernel reports whether fn is a vec kernel entry that takes
// an explicit Level alongside kernel data — i.e. a per-tier kernel, as
// opposed to Level-typed metadata accessors like DispatchCount. Kernel
// data is any slice the SIMD tiers operate on: float32 vectors, int32
// gather row lists, or uint8 quantized codes — so a tier-explicit gather
// or SQ8 variant cannot slip past by carrying no float32 parameter.
func isTierExplicitKernel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	hasLevel, hasData := false, false
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if typeIs(t, "internal/vec", "Level") {
			hasLevel = true
		}
		if sl, ok := types.Unalias(t).(*types.Slice); ok {
			if b, ok := sl.Elem().(*types.Basic); ok {
				switch b.Kind() {
				case types.Float32, types.Int32, types.Uint8:
					hasData = true
				}
			}
		}
	}
	return hasLevel && hasData
}
