package lint

// goleak checks that every goroutine spawned in non-test internal/*
// packages has a bounded termination path. A spawn is accepted when the
// spawned function (transitively, through the call graph):
//
//   - observes a termination signal — selects/receives on ctx.Done(), a
//     done-ish channel (done/stop/quit/close/exit), a comma-ok receive,
//     or ranges over a channel (ends on close); or
//   - contains no unbounded loop (`for` without a condition) anywhere on
//     its call paths — straight-line bodies terminate by construction; or
//   - is joined via a sync.WaitGroup whose Wait is reachable somewhere in
//     the module (the body Done()s a WaitGroup the module Wait()s on).
//
// Spawns of function values the analysis cannot resolve are skipped
// (bounded treatment); intentional daemons carry //lint:allow goleak with
// a reason.
type goLeak struct {
	ip *interp
}

// NewGoLeak returns the goroutine-leak analyzer sharing ip's call graph.
func NewGoLeak(ip *interp) *Analyzer {
	gl := &goLeak{ip: ip}
	return &Analyzer{
		Name:   "goleak",
		Doc:    "require a bounded termination path (ctx/done signal, finite body, or WaitGroup join) for every goroutine spawned under internal/",
		Run:    func(pass *Pass) { gl.ip.visit(pass) },
		Finish: gl.finish,
	}
}

func (gl *goLeak) finish(report reportFunc) {
	ip := gl.ip
	ip.finish()
	for _, key := range ip.order {
		s := ip.funcs[key]
		if !inInternal(s.pkg) {
			continue
		}
		for _, sp := range s.spawns {
			if sp.callee == "" {
				continue // unresolved function value: bounded treatment
			}
			cs, ok := ip.funcs[sp.callee]
			if !ok {
				continue // spawned function outside the loaded module
			}
			if cs.doneReach || cs.loopW == nil || wgJoined(ip, cs) {
				continue
			}
			w := cs.loopW
			report(sp.pos, "goroutine leak: %s has an %s (%s:%d) but never observes ctx.Done/a done channel and is not joined by a waited WaitGroup", sp.disp, w.what, w.pos.Filename, w.pos.Line)
		}
	}
}

// wgJoined reports whether the spawned function Done()s a WaitGroup the
// module Wait()s on somewhere — directly or through its callees.
func wgJoined(ip *interp, s *funcSummary) bool {
	seen := map[string]bool{s.key: true}
	stack := []*funcSummary{s}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range cur.wgDones {
			if ip.wgWaited[w] {
				return true
			}
		}
		for _, c := range cur.calls {
			if cs, ok := ip.funcs[c.callee]; ok && !seen[c.callee] {
				seen[c.callee] = true
				stack = append(stack, cs)
			}
		}
	}
	return false
}
