package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewLockDiscipline returns the lockdiscipline analyzer, which enforces
// two lock-hygiene rules from the PR 1/PR 3 concurrency model:
//
//  1. No blocking operation while holding a mutex: channel sends and
//     receives, select statements, ranging over a channel, waiting on a
//     sync.WaitGroup, and submitting to the shared execution pool
//     (exec.Pool.Map/Run/Admit/Close) all park the goroutine for an
//     unbounded time; doing so under a sync.Mutex or sync.RWMutex turns a
//     slow consumer into a lock convoy — or, against the bounded exec
//     queue's caller-runs fallback, a self-deadlock.
//  2. No copying a value whose type transitively contains a sync lock
//     (Mutex, RWMutex, WaitGroup, Once, Cond, Map, Pool) or a sync/atomic
//     value type: the copy shares no state with the original, so guarded
//     invariants silently split.
//
// Rule 1 is lexical: it tracks Lock/RLock...Unlock/RUnlock pairs in
// source order within each function, treating a deferred unlock as
// holding the lock for the rest of the function.
func NewLockDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "lockdiscipline",
		Doc:  "no blocking ops (channel, pool submit, WaitGroup.Wait) under a mutex; no copying lock-bearing values",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, scope := range functionScopes(f) {
				lw := &lockWalker{pass: pass}
				lw.walkList(scope.List, map[string]token.Pos{})
			}
			checkLockCopies(pass, f)
		}
	}
	return a
}

// lockWalker tracks held mutexes through one function body.
type lockWalker struct {
	pass *Pass
}

func (lw *lockWalker) walkList(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		lw.walkStmt(s, held)
	}
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (lw *lockWalker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.ExprStmt:
		lw.inspectExpr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lw.inspectExpr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		lw.flagIfHeld(s.Pos(), held, "channel send")
		lw.inspectExpr(s.Chan, held)
		lw.inspectExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lw.inspectExpr(e, held)
		}
		for _, e := range s.Lhs {
			lw.inspectExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lw.inspectExpr(e, held)
		}
	case *ast.IfStmt:
		lw.walkStmt(s.Init, held)
		lw.inspectExpr(s.Cond, held)
		lw.walkList(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			lw.walkStmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		lw.walkStmt(s.Init, held)
		if s.Cond != nil {
			lw.inspectExpr(s.Cond, held)
		}
		lw.walkStmt(s.Post, held)
		lw.walkList(s.Body.List, cloneHeld(held))
	case *ast.RangeStmt:
		if t := lw.pass.Info.Types[s.X].Type; t != nil {
			if _, isChan := types.Unalias(t).Underlying().(*types.Chan); isChan {
				lw.flagIfHeld(s.Pos(), held, "range over channel")
			}
		}
		lw.inspectExpr(s.X, held)
		lw.walkList(s.Body.List, cloneHeld(held))
	case *ast.SelectStmt:
		lw.flagIfHeld(s.Pos(), held, "select")
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			lw.walkStmt(cc.Comm, cloneHeld(held))
			lw.walkList(cc.Body, cloneHeld(held))
		}
	case *ast.SwitchStmt:
		lw.walkStmt(s.Init, held)
		if s.Tag != nil {
			lw.inspectExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			lw.walkList(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			lw.walkList(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.BlockStmt:
		lw.walkList(s.List, cloneHeld(held))
	case *ast.LabeledStmt:
		lw.walkStmt(s.Stmt, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the rest of the
		// function body (which is exactly why it is tracked but not
		// removed from held); deferred blocking ops run after the body and
		// are not flagged.
	case *ast.GoStmt:
		// Spawning a goroutine under a lock is fine; the goroutine body is
		// its own scope (functionScopes visits it with an empty held set).
	}
}

// inspectExpr scans one expression tree (not descending into function
// literals) for lock transitions, channel receives and blocking calls.
func (lw *lockWalker) inspectExpr(e ast.Expr, held map[string]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lw.flagIfHeld(n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			lw.applyCall(n, held)
		}
		return true
	})
}

func (lw *lockWalker) applyCall(call *ast.CallExpr, held map[string]token.Pos) {
	fn := calleeFunc(lw.pass.Info, call)
	if fn == nil {
		return
	}
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	switch {
	case funcPkgPath(fn) == "sync" && sel != nil:
		switch fn.Name() {
		case "Lock", "RLock":
			if isMutexRecv(lw.pass.Info, sel.X) {
				held[types.ExprString(sel.X)] = call.Pos()
			}
		case "Unlock", "RUnlock":
			if isMutexRecv(lw.pass.Info, sel.X) {
				delete(held, types.ExprString(sel.X))
			}
		case "Wait":
			// sync.WaitGroup.Wait blocks; sync.Cond.Wait releases its own
			// lock by contract and is exempt.
			if recvT := lw.pass.Info.Types[sel.X].Type; recvT != nil && typeIs(recvT, "sync", "WaitGroup") {
				lw.flagIfHeld(call.Pos(), held, "sync.WaitGroup.Wait")
			}
		}
	case pathHasSuffix(funcPkgPath(fn), "internal/exec"):
		switch fn.Name() {
		case "Map", "Run", "Admit", "Close":
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && typeIs(sig.Recv().Type(), "internal/exec", "Pool") {
				lw.flagIfHeld(call.Pos(), held, "exec pool "+fn.Name())
			}
		}
	}
}

func isMutexRecv(info *types.Info, recv ast.Expr) bool {
	t := info.Types[recv].Type
	if t == nil {
		return false
	}
	return typeIs(t, "sync", "Mutex") || typeIs(t, "sync", "RWMutex") ||
		// s.Lock() via an embedded mutex: the receiver is the outer struct.
		embedsMutex(t)
}

func embedsMutex(t types.Type) bool {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := types.Unalias(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && (typeIs(f.Type(), "sync", "Mutex") || typeIs(f.Type(), "sync", "RWMutex")) {
			return true
		}
	}
	return false
}

func (lw *lockWalker) flagIfHeld(pos token.Pos, held map[string]token.Pos, what string) {
	for name, lockPos := range held {
		lw.pass.Reportf(pos, "%s while holding %s (locked at line %d): blocking under a mutex convoys every other locker",
			what, name, lw.pass.Fset.Position(lockPos).Line)
		return // one report per site is enough
	}
}

// checkLockCopies flags by-value copies of lock-bearing types: value
// parameters, results and receivers, plain assignments from an existing
// value, and range clauses that copy elements.
func checkLockCopies(pass *Pass, f *ast.File) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Recv != nil {
			for _, field := range fd.Recv.List {
				reportLockField(pass, field, "receiver")
			}
		}
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				reportLockField(pass, field, "parameter")
			}
		}
		if fd.Type.Results != nil {
			for _, field := range fd.Type.Results.List {
				reportLockField(pass, field, "result")
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				checkCopyExpr(pass, rhs)
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				checkCopyExpr(pass, v)
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			// In a := range the value is a defined ident, recorded in Defs
			// rather than the expression-type map.
			t := pass.Info.Types[n.Value].Type
			if t == nil {
				if id, ok := n.Value.(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						t = obj.Type()
					}
				}
			}
			if t != nil && lockBearing(pass, t) {
				pass.Reportf(n.Value.Pos(), "range clause copies a value of type %s, which contains %s: range over indexes or pointers instead",
					types.TypeString(t, types.RelativeTo(pass.Pkg)), lockBearingWhy(pass, t))
			}
		}
		return true
	})
}

func reportLockField(pass *Pass, field *ast.Field, role string) {
	t := pass.Info.Types[field.Type].Type
	if t == nil {
		return
	}
	if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
		return
	}
	if lockBearing(pass, t) {
		pass.Reportf(field.Pos(), "%s passes %s by value, copying %s: use a pointer",
			role, types.TypeString(t, types.RelativeTo(pass.Pkg)), lockBearingWhy(pass, t))
	}
}

// checkCopyExpr flags reads that copy an existing lock-bearing value:
// dereferences, variable reads, field selections and index expressions.
// Composite literals are construction, not copying, and stay legal.
func checkCopyExpr(pass *Pass, e ast.Expr) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.Info.Types[e].Type
	if t == nil || !lockBearing(pass, t) {
		return
	}
	pass.Reportf(e.Pos(), "assignment copies a value of type %s, which contains %s: share it through a pointer",
		types.TypeString(t, types.RelativeTo(pass.Pkg)), lockBearingWhy(pass, t))
}

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// lockBearing reports whether t transitively contains (by value) a sync
// lock type or a sync/atomic value type.
func lockBearing(pass *Pass, t types.Type) bool {
	return lockBearingRec(t, map[types.Type]bool{})
}

func lockBearingRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if p, n, ok := namedTypePath(t); ok {
		if _, isPtr := types.Unalias(t).(*types.Pointer); !isPtr {
			if p == "sync" && syncLockTypes[n] {
				return true
			}
			if p == "sync/atomic" && atomicValueTypes[n] {
				return true
			}
		}
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockBearingRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockBearingRec(u.Elem(), seen)
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return lockBearingRec(named.Underlying(), seen)
	}
	return false
}

// lockBearingWhy names the first lock-ish component found, for messages.
func lockBearingWhy(pass *Pass, t types.Type) string {
	return lockBearingWhyRec(t, map[types.Type]bool{})
}

func lockBearingWhyRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if p, n, ok := namedTypePath(t); ok {
		if _, isPtr := types.Unalias(t).(*types.Pointer); !isPtr {
			if p == "sync" && syncLockTypes[n] {
				return "a sync." + n
			}
			if p == "sync/atomic" && atomicValueTypes[n] {
				return "an atomic." + n
			}
		}
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if why := lockBearingWhyRec(u.Field(i).Type(), seen); why != "" {
				return why
			}
		}
	case *types.Array:
		return lockBearingWhyRec(u.Elem(), seen)
	}
	return ""
}
