package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// interp is the shared interprocedural state behind lockorder,
// lockdisciplinex and goleak: per-function summaries collected during the
// Run phase (summary.go) and a module-wide call graph condensed into
// strongly connected components, over which the transitive closures
// (locks acquired, blocking effects, unbounded loops, termination-signal
// reachability) are computed bottom-up in the Finish phase.
//
// Bounded treatment of dynamic calls: interface method calls resolve to
// every module type implementing the interface, capped at ifaceFanoutCap
// implementations (beyond that the call is treated as opaque); calls
// through plain function values add no edges. Both keep the analysis
// sound enough to be useful without chasing unbounded aliasing.
type interp struct {
	visited   map[string]bool
	funcs     map[string]*funcSummary
	order     []string // summary creation order: deterministic processing
	named     []*types.Named
	namedSeen map[string]bool

	resolved   bool
	edges      int
	ifaceEdges int
	sccCount   int
	lockGraph  map[string][]lockEdge
	lockDisp   map[string]string
	wgWaited   map[string]bool
}

// ifaceFanoutCap bounds how many concrete implementations a single
// interface call site may fan out to before it is treated as opaque.
const ifaceFanoutCap = 10

// chainCap bounds witness chain length in messages.
const chainCap = 6

func newInterp() *interp {
	return &interp{
		visited:   map[string]bool{},
		funcs:     map[string]*funcSummary{},
		namedSeen: map[string]bool{},
	}
}

// visit summarizes every function of one package. Each of the three
// interprocedural analyzers calls it from Run; the first one in wins.
func (ip *interp) visit(pass *Pass) {
	if ip.visited[pass.PkgPath] {
		return
	}
	ip.visited[pass.PkgPath] = true
	ip.collectNamed(pass.Pkg)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := ip.summarize(pass, funcKey(fn), funcDisp(fn), fd.Name.Pos(), fd.Body)
			s.fastPathBlock = isExecPoolBlocking(fn)
		}
		// Literals in top-level var initializers (and any other literal a
		// walker did not reach) become independent roots.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				ip.summarizeLit(pass, lit)
				return false
			}
			return true
		})
	}
}

// isExecPoolBlocking matches the exec pool's submit family — the calls
// lockdiscipline's intraprocedural fast path already flags directly.
func isExecPoolBlocking(fn *types.Func) bool {
	if !pathHasSuffix(funcPkgPath(fn), "internal/exec") {
		return false
	}
	switch fn.Name() {
	case "Map", "Run", "Admit", "Close":
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Recv() != nil && typeIs(sig.Recv().Type(), "internal/exec", "Pool")
	}
	return false
}

// collectNamed harvests the package's named types for interface
// resolution.
func (ip *interp) collectNamed(pkg *types.Package) {
	if pkg == nil {
		return
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		key := pkg.Path() + "." + name
		if !ip.namedSeen[key] {
			ip.namedSeen[key] = true
			ip.named = append(ip.named, named)
		}
	}
}

// lockEdge is one observed acquisition order: while `from` was held,
// `to` was acquired — directly, or through the printed call chain.
type lockEdge struct {
	from, to string
	fromDisp string
	toDisp   string
	funcDisp string
	pos      token.Position
	chain    []string // callee display chain to the acquisition, nil = direct
}

// finish resolves interface calls, condenses the call graph into SCCs,
// and computes the bottom-up closures. Idempotent: the first Finish-phase
// analyzer to ask performs the work.
func (ip *interp) finish() {
	if ip.resolved {
		return
	}
	ip.resolved = true
	ip.resolveIfaces()
	ip.countEdges()
	ip.computeClosures()
	ip.buildLockGraph()
	ip.collectWgWaits()
}

// resolveIfaces turns interface call sites into concrete call edges,
// bounded by ifaceFanoutCap.
func (ip *interp) resolveIfaces() {
	// Index module methods by name so each site only tests types that
	// even have a method of the right name.
	byMethod := map[string][]*types.Named{}
	for _, n := range ip.named {
		ms := types.NewMethodSet(types.NewPointer(n))
		for i := 0; i < ms.Len(); i++ {
			if fn, ok := ms.At(i).Obj().(*types.Func); ok {
				byMethod[fn.Name()] = append(byMethod[fn.Name()], n)
			}
		}
	}
	for _, key := range ip.order {
		s := ip.funcs[key]
		for _, site := range s.ifaces {
			var impls []*types.Func
			for _, n := range byMethod[site.method] {
				if !types.Implements(types.NewPointer(n), site.iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, n.Obj().Pkg(), site.method)
				if fn, ok := obj.(*types.Func); ok {
					impls = append(impls, fn)
				}
				if len(impls) > ifaceFanoutCap {
					break
				}
			}
			if len(impls) == 0 || len(impls) > ifaceFanoutCap {
				continue // opaque: no module impls, or fan-out too wide
			}
			for _, fn := range impls {
				k := funcKey(fn)
				if _, ok := ip.funcs[k]; !ok {
					continue
				}
				s.calls = append(s.calls, callSite{
					callee: k, disp: funcDisp(fn), pos: site.pos, held: site.held,
				})
				ip.ifaceEdges++
			}
		}
	}
}

func (ip *interp) countEdges() {
	for _, key := range ip.order {
		for _, c := range ip.funcs[key].calls {
			if _, ok := ip.funcs[c.callee]; ok {
				ip.edges++
			}
		}
	}
}

// computeClosures runs Tarjan's SCC algorithm over the call graph and
// propagates summaries bottom-up: SCCs pop in reverse topological order
// (callees before callers), so by the time a component is processed every
// callee outside it is final; within a component the members iterate to a
// fixpoint (witnesses are first-wins, sets only grow, so it terminates).
func (ip *interp) computeClosures() {
	sccs := ip.tarjan()
	ip.sccCount = len(sccs)
	for _, scc := range sccs {
		for changed := true; changed; {
			changed = false
			for _, key := range scc {
				if ip.propagate(ip.funcs[key]) {
					changed = true
				}
			}
		}
	}
}

// propagate folds local facts and callee closures into s. Reports whether
// anything changed.
func (ip *interp) propagate(s *funcSummary) bool {
	changed := false
	if s.mayAcquire == nil {
		s.mayAcquire = map[string]*acqWitness{}
	}
	for i := range s.acquires {
		a := &s.acquires[i]
		if a.class != "" && s.mayAcquire[a.class] == nil {
			s.mayAcquire[a.class] = &acqWitness{disp: a.disp, write: a.write, pos: a.pos}
			changed = true
		}
	}
	if s.blockW == nil && len(s.blocks) > 0 {
		b := s.blocks[0]
		s.blockW = &effectWitness{what: b.what, pos: b.pos}
		changed = true
	}
	if s.loopW == nil && s.loopPos.Line != 0 {
		s.loopW = &effectWitness{what: "unbounded for-loop", pos: s.loopPos}
		changed = true
	}
	if s.doneSignal && !s.doneReach {
		s.doneReach = true
		changed = true
	}
	for _, c := range s.calls {
		cs, ok := ip.funcs[c.callee]
		if !ok || cs == s {
			continue
		}
		for class, w := range cs.mayAcquire {
			if s.mayAcquire[class] == nil {
				s.mayAcquire[class] = &acqWitness{
					disp: w.disp, write: w.write, pos: w.pos,
					chain: extendChain(cs.disp, w.chain),
				}
				changed = true
			}
		}
		if s.blockW == nil && cs.blockW != nil {
			s.blockW = &effectWitness{
				what: cs.blockW.what, pos: cs.blockW.pos,
				chain: extendChain(cs.disp, cs.blockW.chain),
			}
			changed = true
		}
		if s.loopW == nil && cs.loopW != nil {
			s.loopW = &effectWitness{
				what: cs.loopW.what, pos: cs.loopW.pos,
				chain: extendChain(cs.disp, cs.loopW.chain),
			}
			changed = true
		}
		if cs.doneReach && !s.doneReach {
			s.doneReach = true
			changed = true
		}
	}
	return changed
}

func extendChain(head string, tail []string) []string {
	chain := append([]string{head}, tail...)
	if len(chain) > chainCap {
		chain = chain[:chainCap]
	}
	return chain
}

// tarjan returns the call graph's strongly connected components in
// reverse topological order of the condensation (sinks first).
func (ip *interp) tarjan() [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	// Iterative Tarjan: an explicit frame stack keeps deep call chains
	// from overflowing the goroutine stack on large modules.
	type frame struct {
		key  string
		edge int
	}
	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{key: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			s := ip.funcs[f.key]
			if f.edge == 0 {
				index[f.key] = next
				low[f.key] = next
				next++
				stack = append(stack, f.key)
				onStack[f.key] = true
			}
			advanced := false
			for f.edge < len(s.calls) {
				c := s.calls[f.edge]
				f.edge++
				if _, ok := ip.funcs[c.callee]; !ok || c.callee == f.key {
					continue
				}
				if _, seen := index[c.callee]; !seen {
					frames = append(frames, frame{key: c.callee})
					advanced = true
					break
				}
				if onStack[c.callee] && index[c.callee] < low[f.key] {
					low[f.key] = index[c.callee]
				}
			}
			if advanced {
				continue
			}
			// All edges explored: pop the frame, fold lowlink upward.
			if len(frames) > 1 {
				parent := &frames[len(frames)-2]
				if low[f.key] < low[parent.key] {
					low[parent.key] = low[f.key]
				}
			}
			if low[f.key] == index[f.key] {
				var scc []string
				for {
					k := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[k] = false
					scc = append(scc, k)
					if k == f.key {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			frames = frames[:len(frames)-1]
		}
	}
	for _, key := range ip.order {
		if _, seen := index[key]; !seen {
			visit(key)
		}
	}
	return sccs
}

// buildLockGraph derives the module-wide lock-order graph: an edge A→B
// for every site that acquires class B — locally or through a call chain
// — while class A is held. First witness per (A,B) pair wins.
func (ip *interp) buildLockGraph() {
	ip.lockGraph = map[string][]lockEdge{}
	ip.lockDisp = map[string]string{}
	seen := map[[2]string]bool{}
	add := func(e lockEdge) {
		k := [2]string{e.from, e.to}
		if seen[k] {
			return
		}
		seen[k] = true
		ip.lockDisp[e.from] = e.fromDisp
		ip.lockDisp[e.to] = e.toDisp
		ip.lockGraph[e.from] = append(ip.lockGraph[e.from], e)
	}
	for _, key := range ip.order {
		s := ip.funcs[key]
		for _, a := range s.acquires {
			if a.class == "" {
				continue
			}
			for _, h := range a.held {
				if h.class == "" {
					continue
				}
				add(lockEdge{
					from: h.class, to: a.class, fromDisp: h.disp, toDisp: a.disp,
					funcDisp: s.disp, pos: a.pos,
				})
			}
		}
		for _, c := range s.calls {
			cs, ok := ip.funcs[c.callee]
			if !ok || len(c.held) == 0 {
				continue
			}
			for _, h := range c.held {
				if h.class == "" {
					continue
				}
				for class, w := range cs.mayAcquire {
					add(lockEdge{
						from: h.class, to: class, fromDisp: h.disp, toDisp: w.disp,
						funcDisp: s.disp, pos: c.pos,
						chain: extendChain(cs.disp, w.chain),
					})
				}
			}
		}
	}
}

// collectWgWaits gathers every WaitGroup identity the module Wait()s on,
// for goleak's "joined via a WaitGroup whose Wait is reachable" rule.
func (ip *interp) collectWgWaits() {
	ip.wgWaited = map[string]bool{}
	for _, key := range ip.order {
		for _, w := range ip.funcs[key].wgWaits {
			ip.wgWaited[w] = true
		}
	}
}

// graphStats reports call-graph sizing for the driver's -stats flag.
func (ip *interp) graphStats(put func(name string, v int64)) {
	put("callgraph_functions", int64(len(ip.funcs)))
	put("callgraph_edges", int64(ip.edges))
	put("callgraph_iface_edges", int64(ip.ifaceEdges))
	put("callgraph_sccs", int64(ip.sccCount))
	put("lockorder_classes", int64(len(ip.lockDisp)))
	lockEdges := 0
	for _, es := range ip.lockGraph {
		lockEdges += len(es)
	}
	put("lockorder_edges", int64(lockEdges))
}

// inInternal reports whether pkgPath is under an internal/ tree — the
// scope of the goleak rule.
func inInternal(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/") || strings.HasPrefix(pkgPath, "internal/")
}
