package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// This file builds the per-function summaries the interprocedural
// analyzers (lockorder, lockdisciplinex, goleak) consume. One summary is
// computed per function body — declarations and function literals alike —
// during the Run phase, while the AST and type info are in hand; the
// Finish phase (callgraph.go) then works on summaries only, so the
// module-wide pass never re-walks syntax.

// heldLock is one mutex held at a program point. class is the module-wide
// lock identity ("pkgpath.Type.field" for locks that are fields of named
// types, "pkgpath.var" for package-level locks, "" for function-local
// locks that cannot alias across functions); disp is the short display
// form used in messages (e.g. "DB.mu").
type heldLock struct {
	class string
	disp  string
	pos   token.Position // where it was locked
}

// callSite is one statically resolved call out of a function, with the
// set of locks the caller holds lexically at the site.
type callSite struct {
	callee   string // funcKey of the callee
	disp     string // callee display name
	pos      token.Position
	held     []heldLock
	deferred bool // deferred calls run with an unknowable held set; kept empty
}

// ifaceSite is a dynamic call through an interface method, resolved to
// concrete module methods in the Finish phase (bounded fan-out).
type ifaceSite struct {
	iface  *types.Interface
	method string
	pos    token.Position
	held   []heldLock
}

// acquireSite is one Lock/RLock call, with the locks already held before
// it — the raw material of the lock-order graph.
type acquireSite struct {
	class string
	disp  string
	write bool // Lock vs RLock
	pos   token.Position
	held  []heldLock
}

// blockSite is one operation that can park the goroutine for an unbounded
// time: channel send/receive, defaultless select, range over a channel,
// sync.WaitGroup.Wait, submitting to the shared exec pool, or a
// blockcache GetOrLoad (which waits on the per-key singleflight).
type blockSite struct {
	what string
	pos  token.Position
	held []heldLock
}

// spawnSite is one `go` statement. callee is the funcKey of the spawned
// function ("" when the target is a function value the analysis cannot
// resolve — bounded treatment: such spawns are not checked).
type spawnSite struct {
	pos    token.Position
	callee string
	disp   string
}

// funcSummary is everything the Finish-phase analyses need to know about
// one function without re-reading its body.
type funcSummary struct {
	key  string
	disp string
	pkg  string
	pos  token.Position

	calls    []callSite
	ifaces   []ifaceSite
	acquires []acquireSite
	blocks   []blockSite
	spawns   []spawnSite

	// loopPos is the position of a `for` with no condition — the marker of
	// a potentially unbounded loop. Zero Line means none.
	loopPos token.Position
	// doneSignal: the body observes a termination signal — ctx.Done()/
	// ctx.Err(), a receive or select case on a done-ish channel, a
	// comma-ok receive, or ranging over a channel (ends on close).
	doneSignal bool
	// wgDones / wgWaits record WaitGroup identities (class, or
	// "local:<expr>" for locals) the body Done()s or Wait()s on.
	wgDones []string
	wgWaits []string
	// fastPathBlock marks the exec pool's submit family, which the
	// intraprocedural lockdiscipline analyzer already flags when called
	// directly under a lock; lockdisciplinex skips those sites.
	fastPathBlock bool

	// Computed by the Finish-phase closure (callgraph.go):
	mayAcquire map[string]*acqWitness
	blockW     *effectWitness
	loopW      *effectWitness
	doneReach  bool
}

// acqWitness explains how a function comes to acquire a lock class: the
// display chain of callees leading to the Lock call.
type acqWitness struct {
	disp  string
	write bool
	chain []string
	pos   token.Position
}

// effectWitness explains a transitive effect (blocking op, unbounded
// loop): the chain of callee display names and the effect's position.
type effectWitness struct {
	what  string
	chain []string
	pos   token.Position
}

// funcKey returns the stable module-wide identity of a function: the
// go/types full name of its generic origin, identical whether the object
// came from source type-checking or from export data.
func funcKey(fn *types.Func) string { return fn.Origin().FullName() }

// funcDisp renders a short human name: pkg.Func or pkg.Type.Method.
func funcDisp(fn *types.Func) string {
	base := "?"
	if fn.Pkg() != nil {
		base = path.Base(fn.Pkg().Path())
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, tn, ok := namedTypePath(sig.Recv().Type()); ok {
			return base + "." + tn + "." + fn.Name()
		}
	}
	return base + "." + fn.Name()
}

// lockIdentity classifies the receiver expression of a Lock/Unlock (or a
// WaitGroup Done/Wait): a module-wide class plus a display name. Locks
// that are fields of named types class by (type, field) — every instance
// of DB.mu is one class, the abstraction the lock-order graph is keyed
// on. Package-level locks class by (package, var). Everything else (a
// local mutex, an element of a map) gets class "" — still tracked as held
// within a function, but never related across functions.
func lockIdentity(pass *Pass, e ast.Expr) (class, disp string) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if t := pass.Info.Types[x.X].Type; t != nil {
			if p, n, ok := namedTypePath(t); ok {
				return p + "." + n + "." + x.Sel.Name, n + "." + x.Sel.Name
			}
		}
		if obj, ok := pass.Info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name(), obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[x].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name(), obj.Pkg().Name() + "." + obj.Name()
		}
		// t.Lock() through an embedded mutex: class by the outer type.
		if t := pass.Info.Types[x].Type; t != nil && embedsMutex(t) {
			if p, n, ok := namedTypePath(t); ok {
				return p + "." + n + ".Mutex", n + ".Mutex"
			}
		}
	}
	return "", types.ExprString(e)
}

// wgIdentity is lockIdentity adapted for WaitGroup join matching: local
// WaitGroups get a name-keyed pseudo-class so a literal body's wg.Done()
// can match the spawner's wg.Wait().
func wgIdentity(pass *Pass, e ast.Expr) string {
	class, disp := lockIdentity(pass, e)
	if class != "" {
		return class
	}
	return "local:" + disp
}

// summarizer walks one function body, tracking lexically held locks the
// same way lockdiscipline's fast path does (clone-per-branch, deferred
// unlocks hold to function end) while recording the interprocedural facts.
type summarizer struct {
	pass *Pass
	ip   *interp
	sum  *funcSummary
}

// summarize builds (and registers) the summary for one function body.
func (ip *interp) summarize(pass *Pass, key, disp string, pos token.Pos, body *ast.BlockStmt) *funcSummary {
	if s, ok := ip.funcs[key]; ok {
		return s
	}
	s := &funcSummary{key: key, disp: disp, pkg: pass.PkgPath, pos: pass.Fset.Position(pos)}
	ip.funcs[key] = s
	ip.order = append(ip.order, key)
	sm := &summarizer{pass: pass, ip: ip, sum: s}
	sm.walkList(body.List, map[string]heldLock{})
	return s
}

func (sm *summarizer) heldSnapshot(held map[string]heldLock) []heldLock {
	if len(held) == 0 {
		return nil
	}
	out := make([]heldLock, 0, len(held))
	for _, h := range held {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].disp < out[j].disp })
	return out
}

func cloneHeldLocks(held map[string]heldLock) map[string]heldLock {
	c := make(map[string]heldLock, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (sm *summarizer) walkList(stmts []ast.Stmt, held map[string]heldLock) {
	for _, s := range stmts {
		sm.walkStmt(s, held)
	}
}

func (sm *summarizer) walkStmt(s ast.Stmt, held map[string]heldLock) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.ExprStmt:
		sm.inspectExpr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sm.inspectExpr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		sm.block("channel send", s.Pos(), held)
		sm.inspectExpr(s.Chan, held)
		sm.inspectExpr(s.Value, held)
	case *ast.AssignStmt:
		// A two-valued receive (v, ok := <-ch) observes channel close —
		// a termination signal for the enclosing goroutine.
		if len(s.Lhs) == 2 && len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				sm.sum.doneSignal = true
			}
		}
		for _, e := range s.Rhs {
			sm.inspectExpr(e, held)
		}
		for _, e := range s.Lhs {
			sm.inspectExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			sm.inspectExpr(e, held)
		}
	case *ast.IfStmt:
		sm.walkStmt(s.Init, held)
		sm.inspectExpr(s.Cond, held)
		sm.walkList(s.Body.List, cloneHeldLocks(held))
		if s.Else != nil {
			sm.walkStmt(s.Else, cloneHeldLocks(held))
		}
	case *ast.ForStmt:
		if s.Cond == nil && sm.sum.loopPos.Line == 0 {
			sm.sum.loopPos = sm.pass.Fset.Position(s.Pos())
		}
		sm.walkStmt(s.Init, held)
		if s.Cond != nil {
			sm.inspectExpr(s.Cond, held)
		}
		sm.walkStmt(s.Post, held)
		sm.walkList(s.Body.List, cloneHeldLocks(held))
	case *ast.RangeStmt:
		if t := sm.pass.Info.Types[s.X].Type; t != nil {
			if _, isChan := types.Unalias(t).Underlying().(*types.Chan); isChan {
				sm.block("range over channel", s.Pos(), held)
				sm.sum.doneSignal = true // ends when the channel closes
			}
		}
		sm.inspectExpr(s.X, held)
		sm.walkList(s.Body.List, cloneHeldLocks(held))
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			sm.block("select", s.Pos(), held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			sm.walkComm(cc.Comm, cloneHeldLocks(held))
			sm.walkList(cc.Body, cloneHeldLocks(held))
		}
	case *ast.SwitchStmt:
		sm.walkStmt(s.Init, held)
		if s.Tag != nil {
			sm.inspectExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			sm.walkList(c.(*ast.CaseClause).Body, cloneHeldLocks(held))
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			sm.walkList(c.(*ast.CaseClause).Body, cloneHeldLocks(held))
		}
	case *ast.BlockStmt:
		sm.walkList(s.List, cloneHeldLocks(held))
	case *ast.LabeledStmt:
		sm.walkStmt(s.Stmt, held)
	case *ast.DeferStmt:
		// Deferred calls run at return with an unknowable held set (later
		// defers may have released locks); record the edge with no held
		// locks so the callee's effects still propagate upward, and keep a
		// deferred unlock holding for the rest of the body (by not
		// processing the Unlock here).
		sm.call(s.Call, map[string]heldLock{}, true)
	case *ast.GoStmt:
		sm.spawn(s)
	}
}

// walkComm processes one select comm clause. The channel operation itself
// is NOT a block site — blocking is the select's property (recorded by the
// caller when no default clause exists; with a default every comm is a
// non-blocking attempt) — but done-channel receives still count as a
// termination signal and subexpressions are still scanned for calls.
func (sm *summarizer) walkComm(comm ast.Stmt, held map[string]heldLock) {
	noteRecv := func(e ast.Expr) bool {
		if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			sm.noteDoneRecv(u.X)
			sm.inspectExpr(u.X, held)
			return true
		}
		return false
	}
	switch s := comm.(type) {
	case nil:
	case *ast.SendStmt:
		sm.inspectExpr(s.Chan, held)
		sm.inspectExpr(s.Value, held)
	case *ast.AssignStmt:
		if len(s.Lhs) == 2 {
			sm.sum.doneSignal = true // comma-ok receive observes close
		}
		for _, e := range s.Rhs {
			if !noteRecv(e) {
				sm.inspectExpr(e, held)
			}
		}
	case *ast.ExprStmt:
		if !noteRecv(s.X) {
			sm.inspectExpr(s.X, held)
		}
	default:
		sm.walkStmt(comm, held)
	}
}

// inspectExpr scans one expression tree for receives, calls and literals.
// Function literals are their own summaries and are not descended into.
func (sm *summarizer) inspectExpr(e ast.Expr, held map[string]heldLock) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal reached here is being stored or passed, not
			// invoked: summarize it as an independent root (the immediate
			// call and go/defer cases intercept before this).
			sm.ip.summarizeLit(sm.pass, n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				sm.block("channel receive", n.Pos(), held)
				sm.noteDoneRecv(n.X)
			}
		case *ast.CallExpr:
			sm.call(n, held, false)
		}
		return true
	})
}

// noteDoneRecv marks the done signal when the received-from expression is
// a context Done() or a done-ish channel.
func (sm *summarizer) noteDoneRecv(ch ast.Expr) {
	ch = ast.Unparen(ch)
	if call, ok := ch.(*ast.CallExpr); ok {
		if fn := calleeFunc(sm.pass.Info, call); fn != nil && fn.Name() == "Done" {
			sm.sum.doneSignal = true
		}
		return
	}
	if doneishName(ch) {
		sm.sum.doneSignal = true
	}
}

// doneishName reports whether the channel expression's terminal name
// reads as a termination signal.
func doneishName(e ast.Expr) bool {
	name := ""
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	}
	name = strings.ToLower(name)
	for _, s := range []string{"done", "stop", "quit", "close", "exit"} {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

func (sm *summarizer) block(what string, pos token.Pos, held map[string]heldLock) {
	sm.sum.blocks = append(sm.sum.blocks, blockSite{
		what: what, pos: sm.pass.Fset.Position(pos), held: sm.heldSnapshot(held),
	})
}

// call processes one call expression: lock transitions, blocking
// specials, WaitGroup joins, done signals, and the call-graph edge.
func (sm *summarizer) call(call *ast.CallExpr, held map[string]heldLock, deferred bool) {
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		// Immediately invoked (or deferred) literal: summarize it and add
		// a real call edge — it runs on this goroutine.
		key, disp := sm.ip.summarizeLit(sm.pass, lit)
		sm.addCall(key, disp, call.Pos(), held, deferred)
		return
	}
	fn := calleeFunc(sm.pass.Info, call)
	if fn == nil {
		// Function value: opaque under the bounded treatment (the value's
		// definition site is still analyzed as its own root).
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		// Dynamic dispatch: record for bounded Finish-phase resolution to
		// module implementations. ctx.Done()/ctx.Err() double as the
		// canonical goroutine termination signal.
		if funcPkgPath(fn) == "context" && (fn.Name() == "Done" || fn.Name() == "Err") {
			sm.sum.doneSignal = true
		}
		sm.ifaceCall(call, held)
		return
	}
	sel, _ := fun.(*ast.SelectorExpr)
	switch {
	case funcPkgPath(fn) == "sync" && sel != nil:
		switch fn.Name() {
		case "Lock", "RLock":
			if isMutexRecv(sm.pass.Info, sel.X) {
				class, disp := lockIdentity(sm.pass, sel.X)
				h := heldLock{class: class, disp: disp, pos: sm.pass.Fset.Position(call.Pos())}
				sm.sum.acquires = append(sm.sum.acquires, acquireSite{
					class: class, disp: disp, write: fn.Name() == "Lock",
					pos: h.pos, held: sm.heldSnapshot(held),
				})
				held[types.ExprString(sel.X)] = h
			}
			return
		case "Unlock", "RUnlock":
			if isMutexRecv(sm.pass.Info, sel.X) {
				delete(held, types.ExprString(sel.X))
			}
			return
		case "Wait":
			if recvT := sm.pass.Info.Types[sel.X].Type; recvT != nil && typeIs(recvT, "sync", "WaitGroup") {
				sm.block("sync.WaitGroup.Wait", call.Pos(), held)
				sm.sum.wgWaits = append(sm.sum.wgWaits, wgIdentity(sm.pass, sel.X))
			}
			return
		case "Done":
			if recvT := sm.pass.Info.Types[sel.X].Type; recvT != nil && typeIs(recvT, "sync", "WaitGroup") {
				sm.sum.wgDones = append(sm.sum.wgDones, wgIdentity(sm.pass, sel.X))
			}
			return
		}
	case pathHasSuffix(funcPkgPath(fn), "internal/exec"):
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && typeIs(sig.Recv().Type(), "internal/exec", "Pool") {
			switch fn.Name() {
			case "Map", "Run", "Admit", "Close":
				sm.block("exec pool "+fn.Name(), call.Pos(), held)
			}
		}
	case pathHasSuffix(funcPkgPath(fn), "internal/blockcache") && fn.Name() == "GetOrLoad":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && typeIs(sig.Recv().Type(), "internal/blockcache", "Cache") {
			sm.block("blockcache GetOrLoad", call.Pos(), held)
		}
	}
	if fn.Pkg() == nil {
		return
	}
	sm.addCall(funcKey(fn), funcDisp(fn), call.Pos(), held, deferred)
}

// ifaceCall records a dynamic interface method call for bounded Finish-
// phase resolution.
func (sm *summarizer) ifaceCall(call *ast.CallExpr, held map[string]heldLock) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := sm.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	recvT := selection.Recv()
	iface, ok := types.Unalias(recvT).Underlying().(*types.Interface)
	if !ok {
		return
	}
	sm.sum.ifaces = append(sm.sum.ifaces, ifaceSite{
		iface: iface, method: sel.Sel.Name,
		pos: sm.pass.Fset.Position(call.Pos()), held: sm.heldSnapshot(held),
	})
}

func (sm *summarizer) addCall(key, disp string, pos token.Pos, held map[string]heldLock, deferred bool) {
	hs := sm.heldSnapshot(held)
	if deferred {
		hs = nil
	}
	sm.sum.calls = append(sm.sum.calls, callSite{
		callee: key, disp: disp, pos: sm.pass.Fset.Position(pos), held: hs, deferred: deferred,
	})
}

// spawn records a `go` statement and resolves its target.
func (sm *summarizer) spawn(s *ast.GoStmt) {
	pos := sm.pass.Fset.Position(s.Pos())
	// Arguments are evaluated on the spawning goroutine.
	for _, a := range s.Call.Args {
		sm.inspectExpr(a, map[string]heldLock{})
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		key, disp := sm.ip.summarizeLit(sm.pass, lit)
		sm.sum.spawns = append(sm.sum.spawns, spawnSite{pos: pos, callee: key, disp: disp})
		return
	}
	if fn := calleeFunc(sm.pass.Info, s.Call); fn != nil && fn.Pkg() != nil {
		sm.sum.spawns = append(sm.sum.spawns, spawnSite{pos: pos, callee: funcKey(fn), disp: funcDisp(fn)})
		return
	}
	// Function-value spawn: unresolvable, left unchecked (bounded
	// treatment — the value's definition site is analyzed as a root).
	sm.sum.spawns = append(sm.sum.spawns, spawnSite{pos: pos})
}

// summarizeLit registers a function literal as its own summary node,
// keyed by position so each literal is summarized exactly once however
// many walkers encounter it.
func (ip *interp) summarizeLit(pass *Pass, lit *ast.FuncLit) (key, disp string) {
	p := pass.Fset.Position(lit.Pos())
	key = fmt.Sprintf("%s.func@%s:%d:%d", pass.PkgPath, path.Base(p.Filename), p.Line, p.Column)
	disp = fmt.Sprintf("%s.func@%s:%d", path.Base(pass.PkgPath), path.Base(p.Filename), p.Line)
	ip.summarize(pass, key, disp, lit.Pos(), lit.Body)
	return key, disp
}
