package lint

// Defaults returns a fresh instance of every shipped analyzer. Instances
// carry per-run state (metricreg aggregates registration sites across
// packages; the interprocedural trio share one call graph), so callers
// must not share a set between concurrent runs.
func Defaults() []*Analyzer {
	ip := newInterp()
	return []*Analyzer{
		NewPoolFree(),
		NewBlockPin(),
		NewCtxFlow(),
		NewKernelDispatch(),
		NewLockDiscipline(),
		NewAtomicMix(),
		NewMetricReg(),
		NewClockInject(),
		NewLockOrder(ip),
		NewLockDisciplineX(ip),
		NewGoLeak(ip),
	}
}

// Select returns the subset of Defaults named in names; empty names means
// all. Unknown names are reported through the error-shaped second result
// as a list for the driver to print.
func Select(names []string) (analyzers []*Analyzer, unknown []string) {
	all := Defaults()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	for _, n := range names {
		if a, ok := byName[n]; ok {
			analyzers = append(analyzers, a)
		} else {
			unknown = append(unknown, n)
		}
	}
	return analyzers, unknown
}
