package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	osexec "os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// LoadedPackage is one parsed and type-checked package of the module under
// analysis.
type LoadedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Program is the loaded analysis universe: every package matched by the
// load patterns, sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*LoadedPackage
}

// listedPackage mirrors the fields of `go list -json` the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns (e.g. "./...") with the go tool, parses the
// matched packages' non-test sources, and type-checks them against
// compiler export data.
//
// The pipeline is the classic stdlib-only driver shape: `go list -export
// -deps -json` both enumerates packages and compiles export data for every
// dependency (stdlib included) into the build cache; the matched packages
// are then parsed with go/parser and checked with go/types, whose gc
// importer reads dependencies from that export data instead of
// re-type-checking them from source. Test files are deliberately not
// loaded: the invariants the analyzers enforce are hot-path production
// conventions (tests may mint background contexts, re-resolve metrics by
// name, and so on).
func Load(dir string, patterns []string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly"}, patterns...)
	cmd := osexec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	// The gc importer resolves every import through the export data files
	// go list just produced; one importer instance caches packages across
	// all target checks so shared dependencies load once.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	prog := &Program{Fset: fset}
	for _, t := range targets {
		lp, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, lp)
	}
	return prog, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, t listedPackage) (*LoadedPackage, error) {
	lp := &LoadedPackage{
		ImportPath: t.ImportPath,
		Name:       t.Name,
		Dir:        t.Dir,
		GoFiles:    t.GoFiles,
		Fset:       fset,
	}
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		lp.Syntax = append(lp.Syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(t.ImportPath, fset, lp.Syntax, info)
	if len(typeErrs) > 0 {
		// Analysis on a package that does not type-check would report
		// nonsense; the tree is expected to build before linting.
		return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, typeErrs[0])
	}
	lp.Types = pkg
	lp.TypesInfo = info
	return lp, nil
}
