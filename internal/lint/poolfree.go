package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolPair names one acquire/release pair of a pooled resource.
type poolPair struct {
	pkgSuffix string // package path suffix owning the pair
	get, put  string
	noun      string // what leaks, for messages
}

// poolPairs are the pooled-scratch conventions of the read path: blocked
// scans draw distance buffers from bufferpool.GetFloats and scan/merge
// heaps from topk.GetHeap; both must go back on every path or the free
// list silently degrades to plain allocation.
var poolPairs = []poolPair{
	{pkgSuffix: "internal/bufferpool", get: "GetFloats", put: "PutFloats", noun: "pooled buffer"},
	{pkgSuffix: "internal/bufferpool", get: "GetInt32s", put: "PutInt32s", noun: "pooled row list"},
	{pkgSuffix: "internal/bufferpool", get: "GetBytes", put: "PutBytes", noun: "pooled byte buffer"},
	{pkgSuffix: "internal/bitset", get: "Get", put: "Put", noun: "pooled bitset"},
	{pkgSuffix: "internal/topk", get: "GetHeap", put: "PutHeap", noun: "pooled heap"},
}

// NewPoolFree returns the poolfree analyzer: every bufferpool/topk scratch
// acquisition must be matched by its release (or a defer of it) on every
// path out of the acquiring function. A value that escapes — stored,
// passed to another function, captured by a closure, returned — transfers
// ownership and stops being tracked.
func NewPoolFree() *Analyzer {
	a := &Analyzer{
		Name: "poolfree",
		Doc:  "pooled scratch (bufferpool.GetFloats, topk.GetHeap) must be released on all return paths",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, scope := range functionScopes(f) {
				checkPoolScope(pass, scope)
			}
		}
	}
	return a
}

// functionScopes collects every function body in the file — declarations
// and function literals — as independent analysis scopes. A FuncLit is its
// own scope: an acquisition inside it must be released inside it (or
// escape), and an outer acquisition used inside it counts as an escape.
func functionScopes(f *ast.File) []*ast.BlockStmt {
	var scopes []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				scopes = append(scopes, n.Body)
			}
		case *ast.FuncLit:
			scopes = append(scopes, n.Body)
		}
		return true
	})
	return scopes
}

// poolSpec abstracts one resource discipline over the shared release-flow
// interpreter: how the resource reads in messages and what constitutes a
// release. poolfree instantiates it per get/put pair; blockpin instantiates
// it for blockcache pins (method acquire, method release).
type poolSpec struct {
	noun    string // what leaks, for messages
	getDesc string // how the value was acquired, for messages
	relDesc string // how to release it, for messages
	// isRelease reports whether call releases the value held in v.
	isRelease func(info *types.Info, call *ast.CallExpr, v types.Object) bool
}

// spec adapts a get/put pair to the shared flow: release is a call to the
// pair's put function with the tracked value among its arguments.
func (p poolPair) spec() poolSpec {
	return poolSpec{
		noun:    p.noun,
		getDesc: p.get,
		relDesc: p.pkgSuffix + "." + p.put,
		isRelease: func(info *types.Info, call *ast.CallExpr, v types.Object) bool {
			if !isCallTo(info, call, p.pkgSuffix, p.put) {
				return false
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == v {
					return true
				}
			}
			return false
		},
	}
}

// poolAcq is one tracked acquisition site.
type poolAcq struct {
	spec poolSpec
	v    types.Object    // the variable holding the pooled value
	errv types.Object    // error result paired with the acquisition (nil if none)
	stmt *ast.AssignStmt // the acquiring statement
}

func checkPoolScope(pass *Pass, body *ast.BlockStmt) {
	// Find acquisitions directly in this scope (not in nested FuncLits).
	var acqs []poolAcq
	inspectScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			for _, pair := range poolPairs {
				if !isCallTo(pass.Info, call, pair.pkgSuffix, pair.get) {
					continue
				}
				if len(n.Lhs) != 1 {
					return
				}
				id, ok := n.Lhs[0].(*ast.Ident)
				if !ok || id.Name == "_" {
					pass.Reportf(call.Pos(), "result of %s.%s is discarded: the %s can never be released with %s",
						pair.pkgSuffix, pair.get, pair.noun, pair.put)
					return
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil {
					acqs = append(acqs, poolAcq{spec: pair.spec(), v: obj, stmt: n})
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				for _, pair := range poolPairs {
					if isCallTo(pass.Info, call, pair.pkgSuffix, pair.get) {
						pass.Reportf(call.Pos(), "result of %s.%s is discarded: the %s can never be released with %s",
							pair.pkgSuffix, pair.get, pair.noun, pair.put)
					}
				}
			}
		}
	})
	flowAcqs(pass, body, acqs)
}

// flowAcqs runs the release-flow interpreter over a scope for each tracked
// acquisition, reporting values still live when the scope falls off its
// end. (Return-path leaks are reported by the interpreter itself.)
func flowAcqs(pass *Pass, body *ast.BlockStmt, acqs []poolAcq) {
	for _, acq := range acqs {
		fl := &poolFlow{pass: pass, acq: acq}
		st, term, _ := fl.flowList(body.List, pfState{})
		// Falling off the end of the scope (void function or closure) with
		// the value still live and unreleased is a leak too.
		if !term && st.active && !st.freed && !st.escaped {
			pass.Reportf(acq.stmt.Pos(), "%s from %s is not released before the function returns: call %s or defer it",
				acq.spec.noun, acq.spec.getDesc, acq.spec.relDesc)
		}
	}
}

// inspectScope walks a function body without descending into nested
// function literals (which are separate scopes).
func inspectScope(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// pfState is the abstract state of one acquisition along one control-flow
// path: active once the acquiring statement has executed, freed once the
// matching put (or a defer of it) has, escaped once ownership left the
// function.
type pfState struct {
	active, freed, escaped bool
}

func mergePf(a, b pfState) pfState {
	if !a.active {
		return b
	}
	if !b.active {
		return a
	}
	return pfState{active: true, freed: a.freed && b.freed, escaped: a.escaped || b.escaped}
}

// poolFlow evaluates the statement tree for one acquisition. It is a
// lexical abstract interpreter, not a full CFG: branches merge
// conservatively (released only if released on every branch), loops are
// assumed to run at least once, and goto abandons tracking. That is
// deliberately the cheap end of the design space — the conventions it
// checks keep release sites structured, and //lint:allow covers the rest.
type poolFlow struct {
	pass *Pass
	acq  poolAcq
}

// flowList evaluates stmts under st. It returns the fall-through state,
// whether the list terminated (return/panic/branch), and the states
// carried by break statements for the enclosing loop or switch to merge.
func (fl *poolFlow) flowList(stmts []ast.Stmt, st pfState) (out pfState, terminated bool, breaks []pfState) {
	for _, s := range stmts {
		var term bool
		var br []pfState
		st, term, br = fl.flowStmt(s, st)
		breaks = append(breaks, br...)
		if term {
			return st, true, breaks
		}
	}
	return st, false, breaks
}

func (fl *poolFlow) flowStmt(s ast.Stmt, st pfState) (out pfState, terminated bool, breaks []pfState) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s == fl.acq.stmt {
			return pfState{active: true}, false, nil
		}
		st = fl.applyUses(s, st)
		return st, false, nil

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && fl.pass.Info.Uses[id] == nil {
				return st, true, nil // builtin panic terminates the path
			}
		}
		return fl.applyUses(s, st), false, nil

	case *ast.DeferStmt:
		if st.active && fl.deferReleases(s) {
			st.freed = true
			return st, false, nil
		}
		return fl.applyUses(s, st), false, nil

	case *ast.ReturnStmt:
		if st.active && !st.freed && !st.escaped {
			if fl.usesValue(s) {
				return st, true, nil // returned to the caller: ownership transfer
			}
			fl.pass.Reportf(s.Pos(), "%s from %s (line %d) is not released on this return path: call %s or defer it after acquisition",
				fl.acq.spec.noun, fl.acq.spec.getDesc, fl.pass.Fset.Position(fl.acq.stmt.Pos()).Line,
				fl.acq.spec.relDesc)
		}
		return st, true, nil

	case *ast.BlockStmt:
		return fl.flowList(s.List, st)

	case *ast.IfStmt:
		if s.Init != nil {
			st, _, _ = fl.flowStmt(s.Init, st)
		}
		st = fl.applyExprUses(s.Cond, st)
		// Error-guard refinement for (value, err) acquisitions: on the
		// `err != nil` branch the acquire failed and the tracked value is
		// its zero value — releasing is a no-op, there is nothing to leak —
		// so tracking stops on that branch (and symmetrically, `err == nil`
		// stops tracking on the else branch).
		thenEntry, elseEntry := st, st
		if fl.errGuard(s.Cond, token.NEQ) {
			thenEntry.active = false
		} else if fl.errGuard(s.Cond, token.EQL) {
			elseEntry.active = false
		}
		thenSt, thenTerm, thenBr := fl.flowList(s.Body.List, thenEntry)
		elseSt, elseTerm := elseEntry, false
		var elseBr []pfState
		if s.Else != nil {
			elseSt, elseTerm, elseBr = fl.flowStmt(s.Else, elseEntry)
		}
		breaks = append(thenBr, elseBr...)
		switch {
		case thenTerm && elseTerm:
			return st, true, breaks
		case thenTerm:
			return elseSt, false, breaks
		case elseTerm:
			return thenSt, false, breaks
		default:
			return mergePf(thenSt, elseSt), false, breaks
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st, _, _ = fl.flowStmt(s.Init, st)
		}
		if s.Cond != nil {
			st = fl.applyExprUses(s.Cond, st)
		}
		bodySt, bodyTerm, bodyBreaks := fl.flowList(s.Body.List, st)
		out = st
		if !bodyTerm {
			out = mergePf(out, bodySt)
		}
		for _, b := range bodyBreaks {
			out = mergePf(out, b)
		}
		// An infinite loop whose only exits are returns/breaks already
		// handled: if cond == nil and every path terminates, treat the
		// loop as terminating the list when it cannot fall through.
		if s.Cond == nil && bodyTerm && len(bodyBreaks) == 0 {
			return out, true, nil
		}
		return out, false, nil

	case *ast.RangeStmt:
		st = fl.applyExprUses(s.X, st)
		bodySt, bodyTerm, bodyBreaks := fl.flowList(s.Body.List, st)
		out = st
		if !bodyTerm {
			out = mergePf(out, bodySt)
		}
		for _, b := range bodyBreaks {
			out = mergePf(out, b)
		}
		return out, false, nil

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return fl.flowCases(s, st)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return st, true, []pfState{st}
		case token.CONTINUE:
			return st, true, nil
		default: // goto / labeled jumps: abandon tracking rather than guess
			if st.active {
				st.escaped = true
			}
			return st, false, nil
		}

	case *ast.LabeledStmt:
		return fl.flowStmt(s.Stmt, st)

	case *ast.GoStmt:
		return fl.applyUses(s, st), false, nil

	default:
		return fl.applyUses(s, st), false, nil
	}
}

// flowCases merges the clause bodies of a switch or select. A missing
// default leaves a fall-past path carrying the entry state.
func (fl *poolFlow) flowCases(s ast.Stmt, st pfState) (pfState, bool, []pfState) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _, _ = fl.flowStmt(s.Init, st)
		}
		if s.Tag != nil {
			st = fl.applyExprUses(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var states []pfState
	allTerm := true
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				st = fl.applyExprUses(e, st)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				st, _, _ = fl.flowStmt(c.Comm, st)
			}
			list = c.Body
		}
		cs, term, br := fl.flowList(list, st)
		// Unlabeled breaks inside a switch/select exit the switch itself:
		// each carries its own fall-past state.
		states = append(states, br...)
		if !term {
			states = append(states, cs)
			allTerm = false
		} else if len(br) > 0 {
			allTerm = false
		}
	}
	if !hasDefault {
		states = append(states, st)
		allTerm = false
	}
	if allTerm && len(states) == 0 {
		return st, true, nil
	}
	out := pfState{}
	first := true
	for _, s := range states {
		if first {
			out, first = s, false
		} else {
			out = mergePf(out, s)
		}
	}
	return out, false, nil
}

// deferReleases reports whether a defer statement releases the tracked
// value: either `defer Put(v)` / `defer v.Release()` directly or a defer
// of a closure containing the release call.
func (fl *poolFlow) deferReleases(d *ast.DeferStmt) bool {
	if fl.isReleaseCall(d.Call) {
		return true
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && fl.isReleaseCall(call) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

func (fl *poolFlow) isReleaseCall(call *ast.CallExpr) bool {
	return fl.acq.spec.isRelease(fl.pass.Info, call, fl.acq.v)
}

// errGuard reports whether cond compares the acquisition's paired error
// against nil with the given operator (`err != nil` for NEQ, `err == nil`
// for EQL).
func (fl *poolFlow) errGuard(cond ast.Expr, op token.Token) bool {
	if fl.acq.errv == nil {
		return false
	}
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return false
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNilExpr(fl.pass.Info, x) {
		x, y = y, x
	}
	if !isNilExpr(fl.pass.Info, y) {
		return false
	}
	id, ok := x.(*ast.Ident)
	return ok && fl.pass.Info.Uses[id] == fl.acq.errv
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// usesValue reports whether the statement mentions the tracked variable at
// all.
func (fl *poolFlow) usesValue(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && fl.pass.Info.Uses[id] == fl.acq.v {
			found = true
		}
		return !found
	})
	return found
}

// applyUses classifies every mention of the tracked variable in a
// statement: a put call releases it; dereferences, indexing, field and
// method access, and comparisons are plain uses; anything else — passing
// it to another function, storing it, sending it, capturing it in a
// closure, taking its address — makes ownership escape and ends tracking.
func (fl *poolFlow) applyUses(s ast.Stmt, st pfState) pfState {
	if !st.active || st.escaped {
		return st
	}
	var stack []ast.Node
	ast.Inspect(s, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok && fl.pass.Info.Uses[id] == fl.acq.v {
			switch fl.classifyUse(stack, id) {
			case useFreed:
				st.freed = true
			case useEscape:
				st.escaped = true
			}
		}
		stack = append(stack, n)
		return true
	})
	return st
}

func (fl *poolFlow) applyExprUses(e ast.Expr, st pfState) pfState {
	if e == nil {
		return st
	}
	return fl.applyUses(&ast.ExprStmt{X: e}, st)
}

type useKind int

const (
	usePlain useKind = iota
	useFreed
	useEscape
)

func (fl *poolFlow) classifyUse(stack []ast.Node, id *ast.Ident) useKind {
	// A mention inside a nested function literal is a capture: the
	// closure's lifetime is unknown here, so ownership escapes (defer-put
	// closures are recognized earlier, before this classification).
	for _, n := range stack {
		if _, ok := n.(*ast.FuncLit); ok {
			return useEscape
		}
	}
	if len(stack) == 0 {
		return useEscape
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.StarExpr:
		return usePlain // *v: reading through the pooled pointer
	case *ast.SelectorExpr:
		if p.X == id {
			// v.Release() for a method-released resource frees it; every
			// other field or method access is a plain read.
			if len(stack) >= 2 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) && fl.isReleaseCall(call) {
					return useFreed
				}
			}
			return usePlain // v.field / v.Method(...)
		}
	case *ast.IndexExpr:
		if p.X == id {
			return usePlain // v[i]
		}
	case *ast.BinaryExpr:
		return usePlain // comparisons (v != nil)
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if ast.Unparen(arg) == ast.Expr(id) {
				if fl.isReleaseCall(p) {
					return useFreed
				}
				return useEscape // handed to another function
			}
		}
		return usePlain
	}
	return useEscape
}
