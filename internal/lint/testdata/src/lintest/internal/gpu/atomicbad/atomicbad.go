// Package atomicbad seeds atomicmix violations: a field accessed through
// sync/atomic in one place and plainly in another.
package atomicbad

import "sync/atomic"

// Hits counts through the legacy atomic functions.
type Hits struct {
	n int64
}

// Inc is the atomic writer that puts n under atomicmix tracking.
func (h *Hits) Inc() { atomic.AddInt64(&h.n, 1) }

// Racy reads the same field without atomic.
func (h *Hits) Racy() int64 {
	return h.n // want atomicmix "accessed with sync/atomic"
}

// RacyWrite loses updates entirely.
func (h *Hits) RacyWrite() {
	h.n = 0 // want atomicmix "accessed with sync/atomic"
}

// Load is a sanctioned atomic read: no finding.
func (h *Hits) Load() int64 { return atomic.LoadInt64(&h.n) }

// NewHits initializes via a struct literal, which is construction, not a
// shared access: no finding.
func NewHits() *Hits { return &Hits{n: 0} }

// Plain has its own field n that is never touched atomically: plain
// access to it is fine, proving tracking is per-object, not per-name.
type Plain struct {
	n int64
}

// Bump writes Plain.n plainly: no finding.
func (p *Plain) Bump() { p.n++ }

// Typed uses atomic.Int64, safe by construction: no finding.
type Typed struct {
	n atomic.Int64
}

// Inc bumps through the typed atomic's method.
func (t *Typed) Inc() { t.n.Add(1) }
