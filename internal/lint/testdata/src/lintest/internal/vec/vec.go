// Package vec stubs the real module's kernel dispatch table: hooked
// entry points, tier-explicit *At variants and the process-wide tier pin.
package vec

// Level is a SIMD tier.
type Level int

// Tiers.
const (
	Generic Level = iota
	AVX2
)

// L2SquaredBatch is a hooked dispatch entry point.
func L2SquaredBatch(q, data []float32, dim int, out []float32) { _ = q }

// L2SquaredBatchAt is the tier-explicit variant of L2SquaredBatch.
func L2SquaredBatchAt(l Level, q, data []float32, dim int, out []float32) { _ = l }

// L2SquaredGatherBound is a hooked gather entry point: distances for a
// sparse row list against a blocked column.
func L2SquaredGatherBound(q, data []float32, dim int, rows []int32, bound float32, out []float32) {
	_ = rows
}

// SQ8GatherAt is a tier-explicit gather kernel over quantized codes: no
// float32 parameter at all, only uint8 codes and an int32 row list. The
// analyzer must still recognize these as kernel data.
func SQ8GatherAt(l Level, codes []uint8, dim int, rows []int32, out []int32) { _ = l }

// SetLevel pins the dispatch tier process-wide.
func SetLevel(l Level) { _ = l }

// DispatchCount is Level-typed metadata, not a kernel: it must not be
// flagged by kerneldispatch (no float32 data parameter).
func DispatchCount(l Level) int64 { return int64(l) }
