// Package vec stubs the real module's kernel dispatch table: hooked
// entry points, tier-explicit *At variants and the process-wide tier pin.
package vec

// Level is a SIMD tier.
type Level int

// Tiers.
const (
	Generic Level = iota
	AVX2
)

// L2SquaredBatch is a hooked dispatch entry point.
func L2SquaredBatch(q, data []float32, dim int, out []float32) { _ = q }

// L2SquaredBatchAt is the tier-explicit variant of L2SquaredBatch.
func L2SquaredBatchAt(l Level, q, data []float32, dim int, out []float32) { _ = l }

// SetLevel pins the dispatch tier process-wide.
func SetLevel(l Level) { _ = l }

// DispatchCount is Level-typed metadata, not a kernel: it must not be
// flagged by kerneldispatch (no float32 data parameter).
func DispatchCount(l Level) int64 { return int64(l) }
