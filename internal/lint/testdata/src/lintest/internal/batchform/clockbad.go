// Package batchform seeds clockinject violations: direct time-package
// calls inside the package that must route all timing through its
// injectable Clock.
package batchform

import "time"

// WindowElapsed reads the wall clock directly.
func WindowElapsed(start time.Time) bool {
	return time.Since(start) > time.Millisecond // want clockinject "time.Since bypasses the injected Clock"
}

// ArmTrip schedules on the global timer wheel.
func ArmTrip(fn func()) *time.Timer {
	return time.AfterFunc(time.Millisecond, fn) // want clockinject "time.AfterFunc bypasses the injected Clock"
}

// Stamp reads absolute time.
func Stamp() time.Time {
	return time.Now() // want clockinject "time.Now bypasses the injected Clock"
}

// Elapsed uses a time.Time METHOD named like a forbidden function: value
// arithmetic, not a clock read — no finding.
func Elapsed(a, b time.Time) bool {
	return b.After(a)
}

// CoalesceWait sleeps on the wall clock.
func CoalesceWait() {
	time.Sleep(time.Microsecond) // want clockinject "time.Sleep bypasses the injected Clock"
}

// SanctionedWall is the one legitimate caller, waived by pragma.
func SanctionedWall() time.Time {
	//lint:allow clockinject the wall Clock implementation is the sanctioned caller
	return time.Now()
}

// BuildEpoch is fine: time.Unix is a pure conversion, not a clock read.
func BuildEpoch() time.Time {
	return time.Unix(0, 0)
}
