// Package bufferpool stubs the real module's pooled float buffers: the
// analyzers match packages by import-path suffix, so this stand-in
// triggers the same poolfree tracking as vectordb/internal/bufferpool.
package bufferpool

// GetFloats draws a pooled float slice of length n.
func GetFloats(n int) *[]float32 {
	s := make([]float32, n)
	return &s
}

// PutFloats returns a slice drawn with GetFloats.
func PutFloats(p *[]float32) { _ = p }
