// Package pkgb is half of the cross-package lock-order cycle fixture:
// it owns lock class B.Mu (and the self-inversion fixture S), while the
// inverted acquisition orders live in pkgb's importer, pkga — so the
// cycle is invisible to any per-package pass and only the module-wide
// lockorder graph can see it.
package pkgb

import "sync"

// B exposes its mutex so the importing package can take it directly.
type B struct {
	Mu sync.Mutex
	n  int
}

// Grab acquires B.Mu (one edge endpoint when called under another lock).
func (b *B) Grab() {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	b.n++
}

// S seeds the same-class self-inversion: one instance's method acquires
// another instance's lock of the same class while holding its own.
type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) inner() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// Outer holds s.mu while taking o.mu through inner — class S.mu twice,
// a deadlock when two goroutines run Outer(each other's S).
func (s *S) Outer(o *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o.inner() // want lockorder "lock-order cycle S.mu → S.mu"
}

// Disjoint takes only its own lock before a lock-free helper: no finding.
func (s *S) Disjoint() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = plain(s.n)
}

func plain(n int) int { return n + 1 }
