// Package pkga is the other half of the cross-package lock-order cycle
// fixture: Forward acquires A.mu → B.Mu, Backward acquires B.Mu → A.mu,
// each through one call of indirection. Neither package alone contains a
// cycle; only the module-wide lock graph does.
package pkga

import (
	"sync"

	"lintest.example/internal/locks/pkgb"
)

// A owns lock class A.mu.
type A struct {
	mu sync.Mutex
	n  int
}

func (a *A) take() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
}

// Forward holds A.mu while Grab acquires B.Mu.
func (a *A) Forward(b *pkgb.B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.Grab() // want lockorder "lock-order cycle A.mu → B.Mu → A.mu"
}

// Backward holds B.Mu while take acquires A.mu — the inversion.
func (a *A) Backward(b *pkgb.B) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	a.take()
}

// Consistent takes A.mu then B.Mu in the same order as Forward — an edge
// the graph already has, so no new cycle and no finding here.
func (a *A) Consistent(b *pkgb.B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.Grab()
}
