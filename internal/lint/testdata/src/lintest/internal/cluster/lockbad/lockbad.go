// Package lockbad seeds lockdiscipline violations: blocking operations
// under a held mutex and by-value copies of lock-bearing structs.
package lockbad

import (
	"sync"

	"lintest.example/internal/exec"
)

// Guarded couples a mutex with a channel, inviting every mistake below.
type Guarded struct {
	mu sync.Mutex
	ch chan int
}

// SendUnder sends on a channel between Lock and Unlock.
func (g *Guarded) SendUnder() {
	g.mu.Lock()
	g.ch <- 1 // want lockdiscipline "channel send while holding"
	g.mu.Unlock()
}

// RecvUnderDefer holds via defer for the whole body.
func (g *Guarded) RecvUnderDefer() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want lockdiscipline "channel receive while holding"
}

// DeclRecv hides the receive inside a var declaration.
func (g *Guarded) DeclRecv() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	var v = <-g.ch // want lockdiscipline "channel receive while holding"
	return v
}

// WaitUnder parks on a WaitGroup with the lock held.
func (g *Guarded) WaitUnder(wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want lockdiscipline "sync.WaitGroup.Wait while holding"
	g.mu.Unlock()
}

// SubmitUnder blocks on the shared execution pool's drain under the lock.
func (g *Guarded) SubmitUnder(p *exec.Pool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p.Close() // want lockdiscipline "exec pool Close while holding"
}

// SendAfter releases before the send: no finding.
func (g *Guarded) SendAfter() {
	g.mu.Lock()
	g.mu.Unlock()
	g.ch <- 1
}

// Copies receives the lock-bearing struct by value. // want-below lockdiscipline "by value, copying"
func Copies(g Guarded) int {
	return cap(g.ch)
}

// Deref copies through a pointer dereference.
func Deref(g *Guarded) int {
	cp := *g // want lockdiscipline "assignment copies a value"
	return cap(cp.ch)
}

// RangeCopy copies each element out of a slice of lock-bearing values.
func RangeCopy(gs []Guarded) int {
	n := 0
	for _, g := range gs { // want lockdiscipline "range clause copies a value"
		n += cap(g.ch)
	}
	return n
}

// PointerParam shares through a pointer: no finding.
func PointerParam(g *Guarded) {}
