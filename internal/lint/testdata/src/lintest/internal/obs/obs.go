// Package obs stubs the real module's metrics registry; metricreg keys
// on the Registry receiver type and these method names.
package obs

// Registry is a get-or-create metric family registry.
type Registry struct{}

// Counter is a metric handle.
type Counter struct{}

// Value reads the counter.
func (c *Counter) Value() int64 { return 0 }

// Counter registers or resolves a counter family.
func (r *Registry) Counter(name string, labels ...string) *Counter { return &Counter{} }

// Gauge registers or resolves a gauge family.
func (r *Registry) Gauge(name string, labels ...string) *Counter { return &Counter{} }

// Histogram registers or resolves a histogram family.
func (r *Registry) Histogram(name string, labels ...string) *Counter { return &Counter{} }

// CounterFunc registers a pull-style counter.
func (r *Registry) CounterFunc(name string, fn func() int64) { _ = fn }

// GaugeFunc registers a pull-style gauge.
func (r *Registry) GaugeFunc(name string, fn func() int64) { _ = fn }

// Help attaches help text to a family.
func (r *Registry) Help(name, help string) { _ = help }
