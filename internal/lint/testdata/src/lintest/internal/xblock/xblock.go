// Package xblock seeds lockdisciplinex violations: blocking operations
// reached through a call chain while a mutex is held — invisible to the
// intraprocedural fast path, which only sees ops lexically inside the
// locked region — plus the held-across-GetOrLoad case the fast path does
// not model at all.
package xblock

import (
	"sync"

	"lintest.example/internal/blockcache"
)

// D couples a mutex with a channel, one call away from every mistake.
type D struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// notify blocks on the channel; callers must not hold d.mu.
func (d *D) notify() {
	d.ch <- 1
}

// relay adds a second level of indirection over notify.
func (d *D) relay() {
	d.notify()
}

// Bad reaches the channel send through one call while holding the lock.
func (d *D) Bad() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.notify() // want lockdisciplinex "D.mu held across call to xblock.D.notify, which may block on channel send"
}

// BadDeep reaches it through two calls; the chain is printed.
func (d *D) BadDeep() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.relay() // want lockdisciplinex "which may block on channel send via xblock.D.notify"
}

// BadLoad holds the lock across a blockcache load: other goroutines
// missing on the same key wait on this one's singleflight.
func (d *D) BadLoad(c *blockcache.Cache, k blockcache.Key) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	pin, err := c.GetOrLoad(k, func() ([]byte, error) { return nil, nil }) // want lockdisciplinex "D.mu held across blockcache GetOrLoad"
	if err != nil {
		return nil
	}
	b := pin.Bytes()
	pin.Release()
	return b
}

// Unlocked releases before notifying: no finding.
func (d *D) Unlocked() {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
	d.notify()
}

// tryNotify uses a non-blocking select, safe to reach under the lock.
func (d *D) tryNotify() {
	select {
	case d.ch <- 1:
	default:
	}
}

// GoodTry holds the lock across a non-blocking attempt: no finding.
func (d *D) GoodTry() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tryNotify()
}

// Allowed documents an intentional hold; the pragma suppresses it.
func (d *D) Allowed() {
	d.mu.Lock()
	defer d.mu.Unlock()
	//lint:allow lockdisciplinex fixture: intentional hold proving pragma coverage for the transitive analyzer
	d.notify()
}
