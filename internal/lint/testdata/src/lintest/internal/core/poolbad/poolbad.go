// Package poolbad seeds poolfree violations: leaked, discarded and
// branch-dependent pooled scratch, next to the legal shapes (defer,
// escape, ownership transfer) that must stay silent.
package poolbad

import (
	"errors"

	"lintest.example/internal/bufferpool"
	"lintest.example/internal/topk"
)

// LeakOnError releases only on the success path.
func LeakOnError(fail bool) error {
	bp := bufferpool.GetFloats(8)
	if fail {
		return errors.New("boom") // want poolfree "not released on this return path"
	}
	bufferpool.PutFloats(bp)
	return nil
}

// Discarded never binds the pooled value at all.
func Discarded() {
	bufferpool.GetFloats(8)     // want poolfree "is discarded"
	_ = bufferpool.GetFloats(8) // want poolfree "is discarded"
}

// LeakToEnd falls off the end of the function with the heap live.
func LeakToEnd() {
	h := topk.GetHeap(4) // want poolfree "not released before the function returns"
	h.Push(1, 2)
}

// BranchyLeak releases on one branch only, so the merged fall-through
// state is unreleased.
func BranchyLeak(flag bool) {
	bp := bufferpool.GetFloats(8) // want poolfree "not released before the function returns"
	if flag {
		bufferpool.PutFloats(bp)
	}
}

// Deferred is the canonical legal shape.
func Deferred() float32 {
	bp := bufferpool.GetFloats(8)
	defer bufferpool.PutFloats(bp)
	return (*bp)[0]
}

// Transfer returns the pooled value: ownership moves to the caller.
func Transfer() *[]float32 {
	bp := bufferpool.GetFloats(8)
	return bp
}

// EscapeCall hands the pooled value to another function, which owns it
// from then on.
func EscapeCall(sink func(*[]float32)) {
	bp := bufferpool.GetFloats(8)
	sink(bp)
}

// HeapRoundTrip snapshots and releases before both returns.
func HeapRoundTrip(n int) []topk.Result {
	h := topk.GetHeap(4)
	for i := 0; i < n; i++ {
		h.Push(int64(i), float32(i))
	}
	if n > 10 {
		topk.PutHeap(h)
		return nil
	}
	out := h.Snapshot()
	topk.PutHeap(h)
	return out
}
