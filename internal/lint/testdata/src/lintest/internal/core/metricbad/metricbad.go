// Package metricbad seeds metricreg violations: names outside the
// vectordb_ namespace, dynamic names, cross-type collisions and the same
// family registered from unrelated functions.
package metricbad

import "lintest.example/internal/obs"

// Register is the first registration site.
func Register(r *obs.Registry) {
	r.Counter("queries_total")     // want metricreg "does not match"
	r.Counter("vectordb_Bad_Name") // want metricreg "does not match"
	name := "vectordb_dynamic_total"
	r.Counter(name) // want metricreg "not a compile-time constant"
	r.Counter("vectordb_dup_total")
	r.Counter("vectordb_split_total")
	// Label variants of one family from one function are legal.
	r.Counter("vectordb_ok_total", "collection", "a")
	r.Counter("vectordb_ok_total", "collection", "b")
	r.Help("vectordb_ok_total", "A family registered coherently.")
}

// RegisterAgain collides with Register's families.
func RegisterAgain(r *obs.Registry) {
	r.Gauge("vectordb_dup_total")     // want metricreg "the registry panics on the second type"
	r.Counter("vectordb_split_total") // want metricreg "also registered in"
}
