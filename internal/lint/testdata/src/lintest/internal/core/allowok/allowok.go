// Package allowok exercises the //lint:allow pragma: correctly-waived
// violations stay silent, malformed pragmas are findings themselves.
package allowok

import "context"

// Detached anchors a background context deliberately; the pragma on the
// preceding line waives the ctxflow finding.
func Detached() context.Context {
	//lint:allow ctxflow test fixture deliberately anchors a background context
	return context.Background()
}

// Inline carries the pragma as a trailing comment on the offending line.
func Inline() context.Context {
	return context.Background() //lint:allow ctxflow trailing pragma on the offending line
}

// Unknown analyzer name: the pragma itself is reported and cannot be
// suppressed.
//lint:allow bogusname some reason
// want-above pragma "malformed //lint:allow"

// Missing reason: likewise reported.
//lint:allow ctxflow
// want-above pragma "needs a reason"

// Unwaived keeps one live finding so suppression is visibly selective.
func Unwaived() context.Context {
	return context.TODO() // want ctxflow "severs cancellation"
}
