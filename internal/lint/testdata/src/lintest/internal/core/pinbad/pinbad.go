// Package pinbad seeds blockpin violations: leaked, discarded and
// branch-dependent cache pins, next to the legal shapes (defer, error
// return on the zero pin, escape to a struct field) that must stay silent.
package pinbad

import (
	"lintest.example/internal/blockcache"
)

func loadBlock() ([]byte, error) { return make([]byte, 64), nil }

// LeakToEnd falls off the end of the function with the pin live, so the
// cache entry's refcount never drops and eviction skips it forever.
func LeakToEnd(c *blockcache.Cache, k blockcache.Key) {
	pin, err := c.GetOrLoad(k, loadBlock) // want blockpin "not released before the function returns"
	if err != nil {
		return
	}
	sum := 0
	for _, b := range pin.Bytes() {
		sum += int(b)
	}
	_ = sum
}

// Discarded never binds the pin at all; nothing can ever release it.
func Discarded(c *blockcache.Cache, k blockcache.Key) {
	c.GetOrLoad(k, loadBlock)           // want blockpin "is discarded"
	_, err := c.GetOrLoad(k, loadBlock) // want blockpin "is discarded"
	_ = err
}

// BranchyLeak releases on one branch only, so the merged fall-through
// state is unreleased.
func BranchyLeak(c *blockcache.Cache, k blockcache.Key, flag bool) {
	pin, err := c.GetOrLoad(k, loadBlock) // want blockpin "not released before the function returns"
	if err != nil {
		return
	}
	if flag {
		pin.Release()
	}
}

// EarlyReturnLeak releases at the end but leaks on the mid-function
// return, which runs with the pin held.
func EarlyReturnLeak(c *blockcache.Cache, k blockcache.Key, n int) int {
	pin, err := c.GetOrLoad(k, loadBlock)
	if err != nil {
		return 0
	}
	if n > len(pin.Bytes()) {
		return 0 // want blockpin "not released on this return path"
	}
	pin.Release()
	return n
}

// Deferred is the canonical legal shape: the error return carries the
// zero pin (Release is a no-op, nothing is held), every later path runs
// the defer.
func Deferred(c *blockcache.Cache, k blockcache.Key) (byte, error) {
	pin, err := c.GetOrLoad(k, loadBlock)
	if err != nil {
		return 0, err
	}
	defer pin.Release()
	return pin.Bytes()[0], nil
}

// ReleaseBothPaths releases explicitly before each return.
func ReleaseBothPaths(c *blockcache.Cache, k blockcache.Key, flag bool) int {
	pin, err := c.GetOrLoad(k, loadBlock)
	if err != nil {
		return 0
	}
	if flag {
		n := len(pin.Bytes())
		pin.Release()
		return n
	}
	pin.Release()
	return 0
}

// source mirrors the real tier sources: the pin escapes into the struct,
// whose Release method owns it from then on.
type source struct {
	pin blockcache.Pin
}

// EscapeToField stores the pin in a longer-lived struct: ownership
// transfers and tracking stops.
func (s *source) EscapeToField(c *blockcache.Cache, k blockcache.Key) []byte {
	s.pin.Release()
	pin, err := c.GetOrLoad(k, loadBlock)
	if err != nil {
		return nil
	}
	s.pin = pin
	return pin.Bytes()
}

// Transfer returns the pin: the caller owns it.
func Transfer(c *blockcache.Cache, k blockcache.Key) (blockcache.Pin, error) {
	pin, err := c.GetOrLoad(k, loadBlock)
	return pin, err
}
