// Package ctxbad seeds ctxflow violations: minted background contexts in
// a read-path package and *Ctx functions that drop their context.
package ctxbad

import "context"

// Mint severs cancellation by creating a fresh root context.
func Mint() context.Context {
	return context.Background() // want ctxflow "severs cancellation"
}

// MintTODO does the same with TODO.
func MintTODO() context.Context {
	return context.TODO() // want ctxflow "severs cancellation"
}

// SearchCtx declares a context and never consults it. // want-below ctxflow "never uses its context parameter"
func SearchCtx(ctx context.Context, q []float32) int {
	return len(q)
}

// ScanCtx explicitly discards its context. // want-below ctxflow "discards its context.Context parameter"
func ScanCtx(_ context.Context) {}

// ReadCtx cannot even name its context. // want-below ctxflow "unnamed context.Context parameter"
func ReadCtx(context.Context) {}

// FilterCtx threads its context properly: no finding.
func FilterCtx(ctx context.Context, q []float32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_ = q
	return nil
}
