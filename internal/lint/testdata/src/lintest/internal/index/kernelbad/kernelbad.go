// Package kernelbad seeds kerneldispatch violations: tier-explicit
// kernel calls and a tier pin outside a main package.
package kernelbad

import "lintest.example/internal/vec"

// Scan bypasses the dispatch table with an explicit tier.
func Scan(q, data []float32, dim int, out []float32) {
	vec.L2SquaredBatchAt(vec.AVX2, q, data, dim, out) // want kerneldispatch "bypasses the SIMD dispatch table"
}

// Pin pins the process-wide tier from a library package.
func Pin() {
	vec.SetLevel(vec.Generic) // want kerneldispatch "pins the kernel tier process-wide"
}

// Hooked uses the dispatch entry point: no finding.
func Hooked(q, data []float32, dim int, out []float32) {
	vec.L2SquaredBatch(q, data, dim, out)
}

// Meta reads Level-typed metadata, which is not a kernel: no finding.
func Meta() int64 {
	return vec.DispatchCount(vec.Generic)
}
