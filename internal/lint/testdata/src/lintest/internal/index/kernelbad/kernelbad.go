// Package kernelbad seeds kerneldispatch violations: tier-explicit
// kernel calls and a tier pin outside a main package.
package kernelbad

import "lintest.example/internal/vec"

// Scan bypasses the dispatch table with an explicit tier.
func Scan(q, data []float32, dim int, out []float32) {
	vec.L2SquaredBatchAt(vec.AVX2, q, data, dim, out) // want kerneldispatch "bypasses the SIMD dispatch table"
}

// GatherScan bypasses the dispatch table through a quantized gather
// kernel whose data parameters are uint8 codes and int32 rows — no
// float32 slice anywhere in the signature.
func GatherScan(codes []uint8, dim int, rows []int32, out []int32) {
	vec.SQ8GatherAt(vec.AVX2, codes, dim, rows, out) // want kerneldispatch "bypasses the SIMD dispatch table"
}

// Pin pins the process-wide tier from a library package.
func Pin() {
	vec.SetLevel(vec.Generic) // want kerneldispatch "pins the kernel tier process-wide"
}

// Hooked uses the dispatch entry point: no finding.
func Hooked(q, data []float32, dim int, out []float32) {
	vec.L2SquaredBatch(q, data, dim, out)
}

// HookedGather uses the gather dispatch entry point: int32 rows are
// kernel data, but without an explicit Level the call is legal.
func HookedGather(q, data []float32, dim int, rows []int32, out []float32) {
	vec.L2SquaredGatherBound(q, data, dim, rows, 0, out)
}

// Meta reads Level-typed metadata, which is not a kernel: no finding.
func Meta() int64 {
	return vec.DispatchCount(vec.Generic)
}
