// Package goleakbad seeds goleak violations — goroutines with no bounded
// termination path — alongside every accepted shape: ctx.Done selection,
// done-channel selection, range-over-channel, WaitGroup fork-join,
// loop-free bodies, and the documented-daemon pragma.
package goleakbad

import (
	"context"
	"sync"
)

// W owns the channels the spawned goroutines drain.
type W struct {
	ch   chan int
	done chan struct{}
	n    int
}

// loop spins forever with no termination signal.
func (w *W) loop() {
	for {
		w.n++
	}
}

// start hides the unbounded loop behind one call of indirection.
func (w *W) start() {
	w.n = 0
	w.loop()
}

// BadDirect spawns the unbounded loop directly.
func (w *W) BadDirect() {
	go w.loop() // want goleak "goroutine leak: goleakbad.W.loop has an unbounded for-loop"
}

// BadIndirect leaks through one call of indirection: start itself has no
// loop, only the module-wide closure sees the loop it reaches.
func (w *W) BadIndirect() {
	go w.start() // want goleak "goroutine leak: goleakbad.W.start has an unbounded for-loop"
}

// BadLit leaks an anonymous daemon.
func (w *W) BadLit() {
	go func() { // want goleak "has an unbounded for-loop"
		for {
			w.n++
		}
	}()
}

// GoodCtx terminates when the context is cancelled: no finding.
func (w *W) GoodCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-w.ch:
				w.n += v
			}
		}
	}()
}

// GoodDone terminates on the done channel: no finding.
func (w *W) GoodDone() {
	go func() {
		for {
			select {
			case <-w.done:
				return
			case v := <-w.ch:
				w.n += v
			}
		}
	}()
}

// GoodRange drains until the channel closes: no finding.
func (w *W) GoodRange() {
	go func() {
		for v := range w.ch {
			w.n += v
		}
	}()
}

// GoodJoined is a fork-join: the worker Done()s a WaitGroup this
// function Wait()s on, so the spawn is bounded by the join.
func (w *W) GoodJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if w.n > 10 {
				return
			}
			w.n++
		}
	}()
	wg.Wait()
}

// GoodBounded terminates by construction — no unbounded loop anywhere.
func (w *W) GoodBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			w.n++
		}
	}()
}

// Daemon is an intentional forever-goroutine, documented via pragma.
func (w *W) Daemon() {
	//lint:allow goleak fixture daemon: runs for the process lifetime by design
	go w.loop()
}
