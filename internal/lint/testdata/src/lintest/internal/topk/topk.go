// Package topk stubs the real module's pooled result heaps.
package topk

// Result is one scored neighbor.
type Result struct {
	ID       int64
	Distance float32
}

// Heap is a bounded top-k accumulator.
type Heap struct {
	k   int
	res []Result
}

// GetHeap draws a pooled heap of capacity k.
func GetHeap(k int) *Heap { return &Heap{k: k} }

// PutHeap returns a heap drawn with GetHeap.
func PutHeap(h *Heap) { _ = h }

// Push offers one candidate.
func (h *Heap) Push(id int64, d float32) { h.res = append(h.res, Result{id, d}) }

// Snapshot copies out the current contents.
func (h *Heap) Snapshot() []Result { return append([]Result(nil), h.res...) }
