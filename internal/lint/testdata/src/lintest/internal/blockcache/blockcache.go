// Package blockcache stubs the real module's block cache: the analyzers
// match packages by import-path suffix, so this stand-in triggers the same
// blockpin tracking as vectordb/internal/blockcache.
package blockcache

// Key identifies one cached block of one extent of one owner.
type Key struct {
	Owner uint64
	Ext   uint32
	Block uint32
}

// Pin is a live reference to a cached block; the zero Pin is a no-op.
type Pin struct {
	b []byte
}

// Bytes returns the pinned block.
func (p Pin) Bytes() []byte { return p.b }

// Release drops the reference.
func (p Pin) Release() {}

// Cache is a capacity-bounded block cache.
type Cache struct{}

// New returns a cache with the given capacity.
func New(capacity int64, shards int) *Cache { return &Cache{} }

// GetOrLoad returns a pinned view of the block for k, invoking load on a
// miss. The returned Pin must be released on every path.
func (c *Cache) GetOrLoad(k Key, load func() ([]byte, error)) (Pin, error) {
	b, err := load()
	if err != nil {
		return Pin{}, err
	}
	return Pin{b: b}, nil
}
