// Package exec stubs the real module's shared execution pool; the
// lockdiscipline analyzer flags its blocking methods when called under a
// mutex.
package exec

import "context"

// Pool is a bounded worker pool.
type Pool struct{}

// Default returns the shared pool.
func Default() *Pool { return &Pool{} }

// Map runs fn(0)..fn(n-1) on the pool, blocking until all complete.
func (p *Pool) Map(ctx context.Context, n int, fn func(int)) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		fn(i)
	}
	return ctx.Err()
}

// Run runs worker-loop bodies, blocking until all return.
func (p *Pool) Run(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Admit blocks for an in-flight slot and returns its release.
func (p *Pool) Admit() func() { return func() {} }

// Close drains the pool, blocking until every worker exits.
func (p *Pool) Close() {}
