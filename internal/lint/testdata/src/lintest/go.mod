module lintest.example

go 1.22
