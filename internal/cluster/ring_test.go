package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: consistent hashing only moves keys to/from the node being added
// or removed — never between unrelated survivors.
func TestRingMinimalMovementProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ring := NewRing(64)
		nodes := []string{"n0", "n1", "n2", "n3", "n4"}
		for _, n := range nodes {
			ring.Add(n)
		}
		keys := make([]string, 200)
		before := map[string]string{}
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%d-%d", seed, i)
			before[keys[i]] = ring.Lookup(keys[i])
		}
		victim := nodes[r.Intn(len(nodes))]
		ring.Remove(victim)
		for _, k := range keys {
			after := ring.Lookup(k)
			if before[k] != victim && after != before[k] {
				return false // unrelated key moved
			}
			if after == victim {
				return false // removed node still owns keys
			}
		}
		// Re-adding restores the original ownership exactly.
		ring.Add(victim)
		for _, k := range keys {
			if ring.Lookup(k) != before[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRingCloneIndependence(t *testing.T) {
	r := NewRing(32)
	r.Add("a")
	c := r.Clone()
	c.Add("b")
	if r.Size() != 1 || c.Size() != 2 {
		t.Fatalf("clone not independent: %d/%d", r.Size(), c.Size())
	}
	if r.Lookup("k") != "a" {
		t.Fatal("original ring changed")
	}
}
