// Package cluster implements the distributed deployment of Sec. 5.3: a
// shared-storage architecture with compute/storage separation, a highly
// available coordinator layer (three replicas standing in for the
// Zookeeper-managed instances), a single writer, and elastically scalable
// readers over which data is sharded by consistent hashing. Computing
// instances are stateless: a crashed instance is replaced (as Kubernetes
// would) and rebuilds its state from shared storage; writer atomicity comes
// from replaying the write-ahead log shipped to shared storage.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes, mapping shard keys
// (segment keys) to node names (reader IDs).
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	hashes  []uint64
	owner   map[uint64]string
	members map[string]bool
}

// NewRing creates a ring with the given virtual-node count per member
// (default 64 when ≤ 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, owner: map[uint64]string{}, members: map[string]bool{}}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV alone clusters badly on short sequential keys; a splitmix64
	// finalizer gives the avalanche the ring needs for balance.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member; idempotent.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[node] {
		return
	}
	r.members[node] = true
	for v := 0; v < r.vnodes; v++ {
		h := hash64(fmt.Sprintf("%s#%d", node, v))
		r.owner[h] = node
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a member; idempotent.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[node] {
		return
	}
	delete(r.members, node)
	kept := r.hashes[:0]
	for _, h := range r.hashes {
		if r.owner[h] == node {
			delete(r.owner, h)
			continue
		}
		kept = append(kept, h)
	}
	r.hashes = kept
}

// Lookup maps a key to its owning member ("" when the ring is empty).
func (r *Ring) Lookup(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owner[r.hashes[i]]
}

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Clone returns an independent copy (coordinator replication). State is
// copied directly — not rebuilt through Add — so no second Ring lock is
// taken while r.mu is held and members are not re-hashed and re-sorted.
func (r *Ring) Clone() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := NewRing(r.vnodes)
	c.hashes = append(c.hashes, r.hashes...)
	for h, n := range r.owner {
		c.owner[h] = n
	}
	for m := range r.members {
		c.members[m] = true
	}
	return c
}
