package cluster

import (
	"encoding/json"
	"fmt"
	"strconv"

	"vectordb/internal/core"
	"vectordb/internal/objstore"
	"vectordb/internal/vec"
)

// Manifest is the per-collection metadata the writer publishes to shared
// storage after every flush: the current segment set, the tombstones, the
// schema, and the WAL watermark covered by those segments. Readers serve
// queries from the manifest; a restarted writer replays WAL entries past
// AppliedSeq to recover un-flushed writes.
type Manifest struct {
	Collection  string          `json:"collection"`
	Version     int64           `json:"version"`
	Schema      SchemaJSON      `json:"schema"`
	SegmentKeys []string        `json:"segment_keys"`
	Tombstones  []TombstoneJSON `json:"tombstones,omitempty"`
	AppliedSeq  int64           `json:"applied_seq"`
}

// TombstoneJSON is one sequence-scoped tombstone.
type TombstoneJSON struct {
	ID  int64 `json:"id"`
	Seq int64 `json:"seq"`
}

// SchemaJSON is the wire form of core.Schema.
type SchemaJSON struct {
	VectorFields []VectorFieldJSON `json:"vector_fields"`
	AttrFields   []string          `json:"attr_fields,omitempty"`
	CatFields    []string          `json:"cat_fields,omitempty"`
}

// VectorFieldJSON is the wire form of core.VectorField.
type VectorFieldJSON struct {
	Name   string `json:"name"`
	Dim    int    `json:"dim"`
	Metric string `json:"metric"`
}

// SchemaToJSON converts a core schema to its wire form.
func SchemaToJSON(s *core.Schema) SchemaJSON {
	out := SchemaJSON{
		AttrFields: append([]string(nil), s.AttrFields...),
		CatFields:  append([]string(nil), s.CatFields...),
	}
	for _, f := range s.VectorFields {
		out.VectorFields = append(out.VectorFields, VectorFieldJSON{Name: f.Name, Dim: f.Dim, Metric: f.Metric.String()})
	}
	return out
}

// ToSchema converts the wire form back to a core schema.
func (sj SchemaJSON) ToSchema() (core.Schema, error) {
	var s core.Schema
	for _, f := range sj.VectorFields {
		m, err := vec.ParseMetric(f.Metric)
		if err != nil {
			return s, err
		}
		s.VectorFields = append(s.VectorFields, core.VectorField{Name: f.Name, Dim: f.Dim, Metric: m})
	}
	s.AttrFields = append([]string(nil), sj.AttrFields...)
	s.CatFields = append([]string(nil), sj.CatFields...)
	return s, s.Validate()
}

// TombstonesToMap converts the wire form to the core map.
func (m *Manifest) TombstonesToMap() map[int64]int64 {
	out := make(map[int64]int64, len(m.Tombstones))
	for _, t := range m.Tombstones {
		out[t.ID] = t.Seq
	}
	return out
}

func manifestKey(collection string) string { return "manifest/" + collection }

func walKey(collection string, seq int64) string {
	return fmt.Sprintf("wal/%s/%012d", collection, seq)
}

func walSeqFromKey(collection, key string) (int64, error) {
	prefix := fmt.Sprintf("wal/%s/", collection)
	if len(key) <= len(prefix) {
		return 0, fmt.Errorf("cluster: bad wal key %q", key)
	}
	return strconv.ParseInt(key[len(prefix):], 10, 64)
}

// PublishManifest writes the manifest blob and bumps the coordinator's
// version.
func PublishManifest(store objstore.Store, coord *Coordinator, m *Manifest) error {
	v, err := coord.BumpManifest(m.Collection)
	if err != nil {
		return err
	}
	m.Version = v
	blob, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return store.Put(manifestKey(m.Collection), blob)
}

// LoadManifest reads a collection's manifest from shared storage.
func LoadManifest(store objstore.Store, collection string) (*Manifest, error) {
	blob, err := store.Get(manifestKey(collection))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("cluster: manifest %s: %w", collection, err)
	}
	return &m, nil
}
