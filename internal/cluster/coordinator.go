package cluster

import (
	"fmt"
	"sync"
)

// coordState is the replicated metadata of the coordinator layer: reader
// membership (the sharding ring) and per-collection manifest versions.
type coordState struct {
	ring        *Ring
	manifestVer map[string]int64
}

func newCoordState(vnodes int) *coordState {
	return &coordState{ring: NewRing(vnodes), manifestVer: map[string]int64{}}
}

func (s *coordState) clone() *coordState {
	c := &coordState{ring: s.ring.Clone(), manifestVer: map[string]int64{}}
	for k, v := range s.manifestVer {
		c.manifestVer[k] = v
	}
	return c
}

// Coordinator is the metadata layer of Fig. 5: it maintains sharding and
// load-balancing information. It is highly available with three replicas;
// every update applies to all live replicas synchronously (the
// Zookeeper-managed ensemble of the paper), so killing the leader loses
// nothing.
type Coordinator struct {
	mu       sync.Mutex
	replicas []*coordState
	alive    []bool
	leader   int
}

// NewCoordinator creates the three-replica ensemble.
func NewCoordinator() *Coordinator {
	c := &Coordinator{}
	for i := 0; i < 3; i++ {
		c.replicas = append(c.replicas, newCoordState(64))
		c.alive = append(c.alive, true)
	}
	return c
}

// Leader returns the current leader replica index.
func (c *Coordinator) Leader() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leader
}

// KillLeader crashes the leader replica; a live standby is promoted.
// Returns an error when no replica remains.
func (c *Coordinator) KillLeader() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.alive[c.leader] = false
	for i, a := range c.alive {
		if a {
			c.leader = i
			return nil
		}
	}
	return fmt.Errorf("cluster: coordinator lost all replicas")
}

// ReviveReplica restarts a crashed replica, copying state from the leader.
func (c *Coordinator) ReviveReplica(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.replicas) {
		return fmt.Errorf("cluster: no replica %d", i)
	}
	if c.alive[i] {
		return nil
	}
	c.replicas[i] = c.replicas[c.leader].clone()
	c.alive[i] = true
	return nil
}

// AliveReplicas counts live replicas.
func (c *Coordinator) AliveReplicas() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	return n
}

// update applies fn to every live replica (synchronous replication).
func (c *Coordinator) update(fn func(*coordState)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.alive[c.leader] {
		return fmt.Errorf("cluster: coordinator unavailable")
	}
	for i, s := range c.replicas {
		if c.alive[i] {
			fn(s)
		}
	}
	return nil
}

func (c *Coordinator) read() (*coordState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.alive[c.leader] {
		return nil, fmt.Errorf("cluster: coordinator unavailable")
	}
	return c.replicas[c.leader], nil
}

// RegisterReader adds a reader to the sharding ring.
func (c *Coordinator) RegisterReader(id string) error {
	return c.update(func(s *coordState) { s.ring.Add(id) })
}

// DeregisterReader removes a reader from the sharding ring.
func (c *Coordinator) DeregisterReader(id string) error {
	return c.update(func(s *coordState) { s.ring.Remove(id) })
}

// Ring returns a copy of the current sharding ring.
func (c *Coordinator) Ring() (*Ring, error) {
	s, err := c.read()
	if err != nil {
		return nil, err
	}
	return s.ring.Clone(), nil
}

// Readers lists the registered readers.
func (c *Coordinator) Readers() ([]string, error) {
	s, err := c.read()
	if err != nil {
		return nil, err
	}
	return s.ring.Members(), nil
}

// BumpManifest advances a collection's manifest version (writer publishes).
func (c *Coordinator) BumpManifest(collection string) (int64, error) {
	var v int64
	err := c.update(func(s *coordState) {
		s.manifestVer[collection]++
		v = s.manifestVer[collection]
	})
	return v, err
}

// ManifestVersion reads a collection's manifest version.
func (c *Coordinator) ManifestVersion(collection string) (int64, error) {
	s, err := c.read()
	if err != nil {
		return 0, err
	}
	return s.manifestVer[collection], nil
}
