package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vectordb/internal/bufferpool"
	"vectordb/internal/core"
	"vectordb/internal/index"
	"vectordb/internal/objstore"
	"vectordb/internal/obs"
	"vectordb/internal/topk"
)

// ReaderConfig tunes a reader instance.
type ReaderConfig struct {
	// CacheBytes is the local buffer capacity standing in for the
	// instance's "significant amount of buffer memory and SSDs" (Sec. 5.3);
	// default 256 MiB.
	CacheBytes int64
	// IndexRows, IndexType, IndexParams control local per-segment index
	// builds on loaded segments (default: IVF_FLAT on segments ≥ 4096 rows).
	IndexRows   int
	IndexType   string
	IndexParams map[string]string
	// Obs, when set, receives per-reader series (vectordb_reader_* labeled
	// reader="<id>") including the cache hit/miss counters.
	Obs *obs.Registry
}

func (c *ReaderConfig) defaults() {
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.IndexRows <= 0 {
		c.IndexRows = 4096
	}
	if c.IndexType == "" {
		c.IndexType = "IVF_FLAT"
	}
}

// Reader is one stateless read instance: it serves queries for the shard of
// segments that consistent hashing assigns to it, caching segment data
// loaded from shared storage and building local indexes for large segments.
type Reader struct {
	ID    string
	store objstore.Store
	cfg   ReaderConfig

	// mu is an RWMutex: the hot query path only reads (liveness check,
	// manifest lookup, pool pointer), so concurrent searches proceed
	// without contending; Crash/Restart/manifest refresh take the write
	// lock.
	mu        sync.RWMutex
	alive     bool
	pool      *bufferpool.Pool
	manifests map[string]*readerManifest

	searches *obs.Counter
	segLoads *obs.Counter
	idxMet   *index.Metrics
}

type readerManifest struct {
	version int64
	man     *Manifest
	schema  core.Schema
}

// NewReader creates a live reader instance.
func NewReader(id string, store objstore.Store, cfg ReaderConfig) *Reader {
	cfg.defaults()
	r := &Reader{ID: id, store: store, cfg: cfg, alive: true, manifests: map[string]*readerManifest{}}
	r.pool = bufferpool.New(cfg.CacheBytes, r.loadSegment)
	r.searches = cfg.Obs.Counter("vectordb_reader_searches_total", "reader", id)
	r.segLoads = cfg.Obs.Counter("vectordb_reader_segment_loads_total", "reader", id)
	r.idxMet = index.NewMetrics(cfg.Obs)
	// The shared cache-metrics shape: scrape-time funcs rather than
	// counters, because the pool counts internally and is replaced
	// wholesale on Crash — collection always reflects the live pool.
	cfg.Obs.RegisterCacheMetrics("vectordb_reader_cache", func() obs.CacheStats {
		h, m := r.CacheStats()
		return obs.CacheStats{Hits: h, Misses: m}
	}, "reader", id)
	return r
}

// Alive reports whether the instance is up.
func (r *Reader) Alive() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.alive
}

// Crash simulates an instance crash: the cache and manifest state die.
func (r *Reader) Crash() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.alive = false
	r.manifests = map[string]*readerManifest{}
	r.pool = bufferpool.New(r.cfg.CacheBytes, r.loadSegment)
}

// Restart brings a crashed instance back with cold caches (as a K8s
// replacement pod would come up).
func (r *Reader) Restart() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.alive = true
}

// CacheStats reports buffer pool hits and misses.
func (r *Reader) CacheStats() (hits, misses int64) {
	r.mu.RLock()
	pool := r.pool
	r.mu.RUnlock()
	return pool.Stats()
}

// loadSegment is the bufferpool loader: fetch + decode a segment blob and
// build its local index if it is large.
func (r *Reader) loadSegment(key string) (any, int64, error) {
	// key = "<collection>\x00<segmentKey>"
	var collection, segKey string
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			collection, segKey = key[:i], key[i+1:]
			break
		}
	}
	r.mu.RLock()
	rm := r.manifests[collection]
	r.mu.RUnlock()
	if rm == nil {
		return nil, 0, fmt.Errorf("cluster: reader %s has no manifest for %q", r.ID, collection)
	}
	blob, err := r.store.Get(segKey)
	if err != nil {
		return nil, 0, err
	}
	seg, err := core.UnmarshalSegment(blob, len(rm.schema.AttrFields), len(rm.schema.CatFields))
	if err != nil {
		return nil, 0, err
	}
	r.segLoads.Inc()
	for f, vf := range rm.schema.VectorFields {
		// Prefer the index the writer persisted with the segment
		// (Sec. 2.3: index and data live together); build locally only for
		// large segments without one. Scan remains the fallback.
		if idx, ok := core.LoadSegmentIndex(r.store, segKey, f, vf.Metric, vf.Dim); ok {
			seg.SetIndex(f, r.idxMet.Instrument(idx))
			continue
		}
		if seg.Rows() >= r.cfg.IndexRows {
			t0 := time.Now()
			err := seg.BuildIndex(&rm.schema, f, r.cfg.IndexType, r.cfg.IndexParams)
			r.idxMet.ObserveBuild(r.cfg.IndexType, time.Since(t0), err)
			if err == nil {
				if idx := seg.Index(f); idx != nil {
					seg.SetIndex(f, r.idxMet.Instrument(idx))
				}
			}
		}
	}
	return seg, seg.SizeBytes(), nil
}

// refreshManifest ensures the reader has the manifest at version (readers
// poll shared storage when the coordinator's version moves).
func (r *Reader) refreshManifest(collection string, version int64) (*readerManifest, error) {
	r.mu.RLock()
	rm := r.manifests[collection]
	r.mu.RUnlock()
	if rm != nil && rm.version >= version {
		return rm, nil
	}
	m, err := LoadManifest(r.store, collection)
	if err != nil {
		return nil, err
	}
	schema, err := m.Schema.ToSchema()
	if err != nil {
		return nil, err
	}
	rm = &readerManifest{version: m.Version, man: m, schema: schema}
	r.mu.Lock()
	r.manifests[collection] = rm
	r.mu.Unlock()
	return rm, nil
}

// ErrReaderDown marks liveness failures; the cluster router fails over on
// this error and only this error (a bad request must not deregister
// healthy readers).
var ErrReaderDown = errors.New("cluster: reader down")

// RangeFilter is a serializable attribute constraint pushed down to the
// readers (the distributed form of attribute filtering, Sec. 4.1 + 5.3):
// each reader resolves it against its shard's sorted attribute columns.
type RangeFilter struct {
	Attr   string `json:"attr"`
	Lo, Hi int64
}

// SearchOwned answers a top-k query over the segments this reader owns
// under the given ring. version pins the manifest version the query must
// reflect (snapshot consistency across the fleet). rf, when non-nil, is an
// attribute constraint evaluated shard-locally.
func (r *Reader) SearchOwned(collection string, version int64, ring *Ring, query []float32, opts core.SearchOptions, rf ...*RangeFilter) ([]topk.Result, error) {
	//lint:allow ctxflow ctx-less compat wrapper: public API without a context anchors at Background
	return r.SearchOwnedCtx(context.Background(), collection, version, ring, query, opts, rf...)
}

// SearchOwnedCtx is SearchOwned with cancellation: the shard scan checks
// ctx before loading each owned segment, so a cancelled or timed-out
// distributed query stops pulling segments from shared storage.
func (r *Reader) SearchOwnedCtx(ctx context.Context, collection string, version int64, ring *Ring, query []float32, opts core.SearchOptions, rf ...*RangeFilter) ([]topk.Result, error) {
	r.mu.RLock()
	alive := r.alive
	pool := r.pool
	r.mu.RUnlock()
	if !alive {
		return nil, fmt.Errorf("%w: reader %s", ErrReaderDown, r.ID)
	}
	r.searches.Inc()
	rm, err := r.refreshManifest(collection, version)
	if err != nil {
		return nil, err
	}
	field := 0
	if opts.Field != "" {
		if field, err = rm.schema.VectorFieldIndex(opts.Field); err != nil {
			return nil, err
		}
	}
	var filter *RangeFilter
	if len(rf) > 0 {
		filter = rf[0]
	}
	attr := -1
	if filter != nil {
		if attr, err = rm.schema.AttrFieldIndex(filter.Attr); err != nil {
			return nil, err
		}
	}
	deleted := rm.man.TombstonesToMap()
	sn := &core.Snapshot{Deleted: deleted}
	p := opts
	h := topk.New(opts.K)
	for _, segKey := range rm.man.SegmentKeys {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ring.Lookup(segKey) != r.ID {
			continue
		}
		v, err := pool.Get(collection + "\x00" + segKey)
		if err != nil {
			return nil, err
		}
		seg := v.(*core.Segment)
		userFilter := opts.Filter
		if filter != nil {
			inner := userFilter
			seg := seg
			userFilter = func(id int64) bool {
				val, ok := seg.AttrByID(attr, id)
				if !ok || val < filter.Lo || val > filter.Hi {
					return false
				}
				return inner == nil || inner(id)
			}
		}
		sp := p.Params()
		sp.Filter = sn.FilterFor(seg.ID, userFilter)
		for _, res := range seg.Search(&rm.schema, field, query, sp) {
			h.Push(res.ID, res.Distance)
		}
	}
	return h.Results(), nil
}
