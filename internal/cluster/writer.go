package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"vectordb/internal/core"
	"vectordb/internal/objstore"
	"vectordb/internal/obs"
	"vectordb/internal/wal"
)

// Writer is the single writer instance of Fig. 5. It handles insertions,
// deletions and updates; it ships logs (not data) to shared storage before
// applying them locally — the Aurora-style optimization of Sec. 5.3 — and
// publishes a manifest after each flush. Because the instance is stateless,
// a crash loses nothing: Restart rebuilds from the manifests and replays
// the WAL tail.
type Writer struct {
	store objstore.Store
	coord *Coordinator

	// mu is an RWMutex so that read-side lookups (Collection, which serves
	// the standalone search path) never serialize behind ship+apply of a
	// write batch; mutations of the collection map and per-collection WAL
	// sequence take the write lock.
	mu    sync.RWMutex
	alive bool
	cols  map[string]*writerCollection
	cfg   core.Config

	shipped        *obs.Counter
	shippedRecords *obs.Counter
	replayedRecs   *obs.Counter
	tornBatches    *obs.Counter
}

type writerCollection struct {
	col    *core.Collection
	schema core.Schema
	seq    int64 // last WAL sequence shipped
}

// NewWriter creates a live writer over shared storage.
func NewWriter(store objstore.Store, coord *Coordinator, cfg core.Config) *Writer {
	w := &Writer{store: store, coord: coord, cfg: cfg, alive: true, cols: map[string]*writerCollection{}}
	w.shipped = cfg.Obs.Counter("vectordb_wal_batches_shipped_total")
	w.shippedRecords = cfg.Obs.Counter("vectordb_wal_shipped_records_total")
	w.replayedRecs = cfg.Obs.Counter("vectordb_wal_replayed_records_total")
	w.tornBatches = cfg.Obs.Counter("vectordb_wal_torn_batches_total")
	return w
}

func (w *Writer) get(collection string) (*writerCollection, error) {
	if !w.alive {
		return nil, fmt.Errorf("cluster: writer is down")
	}
	wc, ok := w.cols[collection]
	if !ok {
		return nil, fmt.Errorf("cluster: collection %q does not exist", collection)
	}
	return wc, nil
}

// CreateCollection registers a collection and publishes its first manifest.
func (w *Writer) CreateCollection(name string, schema core.Schema) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.alive {
		return fmt.Errorf("cluster: writer is down")
	}
	if _, dup := w.cols[name]; dup {
		return fmt.Errorf("cluster: collection %q already exists", name)
	}
	col, err := core.NewCollection(name, schema, w.store, w.cfg)
	if err != nil {
		return err
	}
	w.cols[name] = &writerCollection{col: col, schema: schema}
	return w.publishLocked(name)
}

// ship durably writes a WAL batch to shared storage and returns its seq.
func (w *Writer) ship(collection string, wc *writerCollection, records []*wal.Record) error {
	wc.seq++
	if err := w.store.Put(walKey(collection, wc.seq), wal.MarshalBatch(records)); err != nil {
		wc.seq--
		return fmt.Errorf("cluster: ship wal: %w", err)
	}
	w.shipped.Inc()
	w.shippedRecords.Add(int64(len(records)))
	return nil
}

// Insert ships the log and applies locally.
func (w *Writer) Insert(collection string, entities []core.Entity) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	wc, err := w.get(collection)
	if err != nil {
		return err
	}
	records := make([]*wal.Record, len(entities))
	for i := range entities {
		records[i] = &wal.Record{Type: wal.RecordInsert, ID: entities[i].ID, Vectors: entities[i].Vectors, Attrs: entities[i].Attrs}
	}
	if err := w.ship(collection, wc, records); err != nil {
		return err
	}
	return wc.col.Insert(entities)
}

// Delete ships the log and applies locally.
func (w *Writer) Delete(collection string, ids []int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	wc, err := w.get(collection)
	if err != nil {
		return err
	}
	records := make([]*wal.Record, len(ids))
	for i, id := range ids {
		records[i] = &wal.Record{Type: wal.RecordDelete, ID: id}
	}
	if err := w.ship(collection, wc, records); err != nil {
		return err
	}
	return wc.col.Delete(ids)
}

// Flush makes all shipped writes visible and publishes the manifest.
func (w *Writer) Flush(collection string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	wc, err := w.get(collection)
	if err != nil {
		return err
	}
	//lint:allow lockdisciplinex w.mu must keep Flush and manifest publish atomic: a manifest whose AppliedSeq ran ahead of its segments would make recovery skip WAL replay
	if err := wc.col.Flush(); err != nil {
		return err
	}
	return w.publishLocked(collection)
}

func (w *Writer) publishLocked(collection string) error {
	wc := w.cols[collection]
	m := &Manifest{
		Collection:  collection,
		Schema:      SchemaToJSON(wc.col.Schema()),
		SegmentKeys: wc.col.SegmentKeys(),
		AppliedSeq:  wc.seq,
	}
	for id, seq := range wc.col.Tombstones() {
		m.Tombstones = append(m.Tombstones, TombstoneJSON{ID: id, Seq: seq})
	}
	sort.Slice(m.Tombstones, func(i, j int) bool { return m.Tombstones[i].ID < m.Tombstones[j].ID })
	if err := PublishManifest(w.store, w.coord, m); err != nil {
		return err
	}
	// WAL entries covered by the manifest are obsolete; trim them.
	keys, err := w.store.List(fmt.Sprintf("wal/%s/", collection))
	if err != nil {
		return nil // trimming is best-effort
	}
	for _, k := range keys {
		if seq, err := walSeqFromKey(collection, k); err == nil && seq <= m.AppliedSeq {
			_ = w.store.Delete(k)
		}
	}
	return nil
}

// Collection exposes the writer's local collection (same-process reads in
// the standalone deployment). Read lock only: searches must not serialize
// behind in-flight write batches.
func (w *Writer) Collection(name string) (*core.Collection, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	wc, err := w.get(name)
	if err != nil {
		return nil, err
	}
	return wc.col, nil
}

// Crash simulates a process crash: all buffered (unflushed) state dies.
func (w *Writer) Crash() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, wc := range w.cols {
		wc.col.Abandon()
	}
	w.cols = map[string]*writerCollection{}
	w.alive = false
}

// Restart rebuilds the writer from shared storage: manifests restore
// flushed segments, and the WAL tail past each manifest's watermark is
// replayed — the atomicity guarantee of Sec. 5.3.
func (w *Writer) Restart() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.alive {
		return fmt.Errorf("cluster: writer already running")
	}
	manifests, err := w.store.List("manifest/")
	if err != nil {
		return err
	}
	w.cols = map[string]*writerCollection{}
	for _, mk := range manifests {
		name := mk[len("manifest/"):]
		m, err := LoadManifest(w.store, name)
		if err != nil {
			return err
		}
		schema, err := m.Schema.ToSchema()
		if err != nil {
			return err
		}
		//lint:allow lockdisciplinex recovery runs before the writer serves; holding w.mu until state is rebuilt is the point
		col, err := core.RestoreCollection(name, schema, w.store, w.cfg, m.SegmentKeys, m.TombstonesToMap())
		if err != nil {
			return err
		}
		wc := &writerCollection{col: col, schema: schema, seq: m.AppliedSeq}
		// Replay the WAL tail.
		walKeys, err := w.store.List(fmt.Sprintf("wal/%s/", name))
		if err != nil {
			return err
		}
		sort.Strings(walKeys)
		for _, k := range walKeys {
			seq, err := walSeqFromKey(name, k)
			if err != nil || seq <= m.AppliedSeq {
				continue
			}
			blob, err := w.store.Get(k)
			if err != nil {
				return err
			}
			records, err := wal.ReplayBatch(blob)
			if err != nil {
				if !errors.Is(err, wal.ErrTorn) {
					return err
				}
				// A torn tail means the shipping Put died mid-write, so the
				// batch was never acknowledged; replay the clean prefix
				// (at-least-once for durably written records) and move on.
				w.tornBatches.Inc()
			}
			w.replayedRecs.Add(int64(len(records)))
			for _, r := range records {
				switch r.Type {
				case wal.RecordInsert:
					if err := col.Insert([]core.Entity{{ID: r.ID, Vectors: r.Vectors, Attrs: r.Attrs}}); err != nil {
						return err
					}
				case wal.RecordDelete:
					if err := col.Delete([]int64{r.ID}); err != nil {
						return err
					}
				}
			}
			if seq > wc.seq {
				wc.seq = seq
			}
		}
		w.cols[name] = wc
	}
	w.alive = true
	// Make replayed writes visible and republish.
	for name := range w.cols {
		//lint:allow lockdisciplinex recovery runs before the writer serves; holding w.mu until replayed state is published is the point
		if err := w.cols[name].col.Flush(); err != nil {
			return err
		}
		if err := w.publishLocked(name); err != nil {
			return err
		}
	}
	return nil
}
