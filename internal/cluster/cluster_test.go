package cluster

import (
	"fmt"
	"testing"

	"vectordb/internal/core"
	"vectordb/internal/dataset"
	"vectordb/internal/objstore"
	"vectordb/internal/vec"
)

func clusterSchema(dim int) core.Schema {
	return core.Schema{
		VectorFields: []core.VectorField{{Name: "v", Dim: dim, Metric: vec.L2}},
		AttrFields:   []string{"price"},
	}
}

func writerCfg() core.Config {
	return core.Config{FlushRows: 128, FlushInterval: -1, IndexRows: 1 << 20, SyncIndex: true}
}

func entitiesFrom(d *dataset.Dataset, attrs []int64) []core.Entity {
	out := make([]core.Entity, d.N)
	for i := 0; i < d.N; i++ {
		out[i] = core.Entity{ID: int64(i + 1), Vectors: [][]float32{d.Row(i)}, Attrs: []int64{attrs[i]}}
	}
	return out
}

func newTestCluster(t *testing.T, readers int) (*Cluster, *dataset.Dataset) {
	t.Helper()
	cl, err := NewCluster(objstore.NewMemory(), readers, writerCfg(), ReaderConfig{IndexRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.DeepLike(600, 1)
	attrs := dataset.Attributes(d.N, 10000, 2)
	if err := cl.Writer().CreateCollection("c", clusterSchema(d.Dim)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Writer().Insert("c", entitiesFrom(d, attrs)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Writer().Flush("c"); err != nil {
		t.Fatal(err)
	}
	return cl, d
}

func TestRingDistributionAndStability(t *testing.T) {
	r := NewRing(256)
	r.Add("a")
	r.Add("b")
	r.Add("c")
	counts := map[string]int{}
	owner1 := map[string]string{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("seg/%d", i)
		o := r.Lookup(k)
		counts[o]++
		owner1[k] = o
	}
	for n, c := range counts {
		if c < 300 {
			t.Errorf("node %s owns only %d/3000 keys (imbalanced)", n, c)
		}
	}
	// Removing one node must not move keys between surviving nodes.
	r.Remove("b")
	for k, o := range owner1 {
		if o == "b" {
			continue
		}
		if got := r.Lookup(k); got != o {
			t.Fatalf("key %s moved from %s to %s after unrelated removal", k, o, got)
		}
	}
	if r.Lookup("x") == "b" {
		t.Fatal("removed node still owns keys")
	}
	r.Remove("b") // idempotent
	r.Add("a")    // idempotent
	if r.Size() != 2 {
		t.Fatalf("Size = %d", r.Size())
	}
	empty := NewRing(0)
	if empty.Lookup("k") != "" {
		t.Fatal("empty ring returned an owner")
	}
}

func TestClusterSearchMatchesSingleNode(t *testing.T) {
	cl, d := newTestCluster(t, 3)
	qs := dataset.Queries(d, 10, 3)
	gt := dataset.GroundTruth(d, qs, 10, vec.L2)
	for qi := 0; qi < 10; qi++ {
		q := qs[qi*d.Dim : (qi+1)*d.Dim]
		res, err := cl.Search("c", q, core.SearchOptions{K: 10})
		if err != nil {
			t.Fatal(err)
		}
		// Readers scan exactly (FLAT segments) so results must be exact,
		// modulo the +1 ID shift of entitiesFrom.
		for i, r := range res {
			if r.ID != gt[qi][i].ID+1 {
				t.Fatalf("query %d rank %d: id %d, want %d", qi, i, r.ID, gt[qi][i].ID+1)
			}
		}
	}
}

func TestShardsArePartitioned(t *testing.T) {
	cl, d := newTestCluster(t, 4)
	q := dataset.Queries(d, 1, 4)
	if _, err := cl.Search("c", q, core.SearchOptions{K: 5}); err != nil {
		t.Fatal(err)
	}
	// Every segment key must be owned by exactly one reader.
	man, err := LoadManifest(cl.Store, "c")
	if err != nil {
		t.Fatal(err)
	}
	ring, _ := cl.Coord.Ring()
	owners := map[string]int{}
	for _, k := range man.SegmentKeys {
		owners[ring.Lookup(k)]++
	}
	total := 0
	for _, n := range owners {
		total += n
	}
	if total != len(man.SegmentKeys) {
		t.Fatalf("ownership double-counts: %v", owners)
	}
}

func TestDeleteVisibleAcrossCluster(t *testing.T) {
	cl, d := newTestCluster(t, 2)
	q := dataset.Queries(d, 1, 5)
	res, err := cl.Search("c", q, core.SearchOptions{K: 1})
	if err != nil || len(res) != 1 {
		t.Fatalf("search: %v %v", res, err)
	}
	victim := res[0].ID
	cl.Writer().Delete("c", []int64{victim})
	cl.Writer().Flush("c")
	res2, err := cl.Search("c", q, core.SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res2 {
		if r.ID == victim {
			t.Fatal("deleted entity still returned by readers")
		}
	}
}

func TestReaderCrashFailover(t *testing.T) {
	cl, d := newTestCluster(t, 3)
	q := dataset.Queries(d, 1, 6)
	ids, _ := cl.Coord.Readers()
	if err := cl.CrashReader(ids[0]); err != nil {
		t.Fatal(err)
	}
	// The query must succeed despite the dead reader (failover reroutes
	// its shards), and return the full result set.
	res, err := cl.Search("c", q, core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("failover search returned %d results", len(res))
	}
	after, _ := cl.Coord.Readers()
	if len(after) != 2 {
		t.Fatalf("dead reader not deregistered: %v", after)
	}
	// K8s replacement: restart the instance; it re-registers and serves.
	if err := cl.RestartReader(ids[0]); err != nil {
		t.Fatal(err)
	}
	res2, err := cl.Search("c", q, core.SearchOptions{K: 10})
	if err != nil || len(res2) != 10 {
		t.Fatalf("post-restart search: %v %v", res2, err)
	}
	if cl.Readers() != 3 {
		t.Fatalf("Readers = %d", cl.Readers())
	}
}

func TestAllReadersDead(t *testing.T) {
	cl, d := newTestCluster(t, 2)
	ids, _ := cl.Coord.Readers()
	for _, id := range ids {
		cl.CrashReader(id)
	}
	q := dataset.Queries(d, 1, 7)
	if _, err := cl.Search("c", q, core.SearchOptions{K: 5}); err == nil {
		t.Fatal("search succeeded with every reader dead")
	}
}

func TestWriterCrashRecovery(t *testing.T) {
	cl, d := newTestCluster(t, 2)
	// Write more entities but crash before Flush: the WAL must recover them.
	extra := make([]core.Entity, 10)
	for i := range extra {
		v := make([]float32, d.Dim)
		v[0] = float32(i)
		extra[i] = core.Entity{ID: int64(9000 + i), Vectors: [][]float32{v}, Attrs: []int64{1}}
	}
	if err := cl.Writer().Insert("c", extra); err != nil {
		t.Fatal(err)
	}
	cl.Writer().Crash()
	if err := cl.Writer().Insert("c", extra); err == nil {
		t.Fatal("crashed writer accepted writes")
	}
	if err := cl.Writer().Restart(); err != nil {
		t.Fatal(err)
	}
	col, err := cl.Writer().Collection("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := col.Count(); got != 610 {
		t.Fatalf("Count after recovery = %d, want 610", got)
	}
	if _, ok := col.Get(9005); !ok {
		t.Fatal("replayed entity missing")
	}
	// Readers see the recovered data through the republished manifest.
	q := make([]float32, d.Dim)
	q[0] = 5
	res, err := cl.Search("c", q, core.SearchOptions{K: 1})
	if err != nil || len(res) != 1 {
		t.Fatalf("search after recovery: %v %v", res, err)
	}
	if res[0].ID != 9005 {
		t.Fatalf("recovered entity not found by readers: got %d", res[0].ID)
	}
}

func TestWALTrimming(t *testing.T) {
	cl, _ := newTestCluster(t, 1)
	keys, err := cl.Store.List("wal/c/")
	if err != nil {
		t.Fatal(err)
	}
	// After Flush, WAL entries covered by the manifest are trimmed.
	if len(keys) != 0 {
		t.Fatalf("WAL not trimmed after flush: %v", keys)
	}
}

func TestCoordinatorHAFailover(t *testing.T) {
	c := NewCoordinator()
	c.RegisterReader("r1")
	c.BumpManifest("col")
	if err := c.KillLeader(); err != nil {
		t.Fatal(err)
	}
	// State survives leader loss.
	readers, err := c.Readers()
	if err != nil || len(readers) != 1 || readers[0] != "r1" {
		t.Fatalf("readers after failover: %v %v", readers, err)
	}
	v, err := c.ManifestVersion("col")
	if err != nil || v != 1 {
		t.Fatalf("manifest version after failover: %d %v", v, err)
	}
	// Updates continue on the new leader; a revived replica catches up.
	c.RegisterReader("r2")
	if err := c.ReviveReplica(0); err != nil {
		t.Fatal(err)
	}
	if c.AliveReplicas() != 3 {
		t.Fatalf("AliveReplicas = %d", c.AliveReplicas())
	}
	c.KillLeader()
	c.KillLeader()
	readers, err = c.Readers()
	if err != nil || len(readers) != 2 {
		t.Fatalf("readers on last replica: %v %v", readers, err)
	}
	if err := c.KillLeader(); err == nil {
		t.Fatal("losing the last replica did not error")
	}
	if _, err := c.Readers(); err == nil {
		t.Fatal("reads succeed with no replicas")
	}
}

func TestElasticScaleOutServesQueries(t *testing.T) {
	cl, d := newTestCluster(t, 1)
	q := dataset.Queries(d, 1, 8)
	res1, err := cl.Search("c", q, core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.AddReader(); err != nil {
			t.Fatal(err)
		}
	}
	res2, err := cl.Search("c", q, core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1) != len(res2) {
		t.Fatalf("result count changed after scale-out: %d vs %d", len(res1), len(res2))
	}
	for i := range res1 {
		if res1[i].ID != res2[i].ID {
			t.Fatalf("results changed after scale-out at rank %d", i)
		}
	}
}

func TestReaderCacheHits(t *testing.T) {
	cl, d := newTestCluster(t, 2)
	q := dataset.Queries(d, 1, 9)
	for i := 0; i < 3; i++ {
		if _, err := cl.Search("c", q, core.SearchOptions{K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	var hits int64
	ids, _ := cl.Coord.Readers()
	for _, id := range ids {
		r, _ := cl.Reader(id)
		h, _ := r.CacheStats()
		hits += h
	}
	if hits == 0 {
		t.Fatal("segment cache never hit across repeated queries")
	}
}

func TestClusterOnS3SimWithFault(t *testing.T) {
	s3 := objstore.NewS3Sim(0)
	cl, err := NewCluster(s3, 2, writerCfg(), ReaderConfig{IndexRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.DeepLike(200, 10)
	attrs := dataset.Attributes(d.N, 100, 11)
	if err := cl.Writer().CreateCollection("c", clusterSchema(d.Dim)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Writer().Insert("c", entitiesFrom(d, attrs)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Writer().Flush("c"); err != nil {
		t.Fatal(err)
	}
	// Transient S3 failure during insert surfaces as an error and does not
	// corrupt the manifest state.
	s3.FailNext(1)
	if err := cl.Writer().Insert("c", entitiesFrom(d, attrs)[:1]); err == nil {
		t.Fatal("insert during S3 outage succeeded")
	}
	q := dataset.Queries(d, 1, 12)
	if _, err := cl.Search("c", q, core.SearchOptions{K: 5}); err != nil {
		t.Fatalf("search after outage: %v", err)
	}
}

func TestDistributedAttributeFiltering(t *testing.T) {
	cl, d := newTestCluster(t, 3)
	q := dataset.Queries(d, 1, 20)
	// Reconstruct the ground truth: attrs were generated with seed 2.
	attrs := dataset.Attributes(d.N, 10000, 2)
	res, err := cl.SearchFiltered("c", q, core.SearchOptions{K: 10}, &RangeFilter{Attr: "price", Lo: 0, Hi: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("filtered cluster search returned nothing")
	}
	for _, r := range res {
		a := attrs[r.ID-1] // entitiesFrom assigns ID = i+1
		if a < 0 || a > 3000 {
			t.Fatalf("id %d has attr %d outside [0,3000]", r.ID, a)
		}
	}
	// Unknown attribute surfaces as an error (every reader rejects it).
	if _, err := cl.SearchFiltered("c", q, core.SearchOptions{K: 5}, &RangeFilter{Attr: "nope", Lo: 0, Hi: 1}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	// Filtered and unfiltered results agree when the range covers everything.
	all, err := cl.SearchFiltered("c", q, core.SearchOptions{K: 10}, &RangeFilter{Attr: "price", Lo: 0, Hi: 99999})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := cl.Search("c", q, core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if all[i] == plain[i] {
			continue
		}
		// The filtered scan runs the pairwise kernels while the unfiltered
		// scan runs the blocked batch kernels; their summation orders
		// differ, so distances may disagree by ulps (documented 1e-5
		// relative tolerance) and ulp-close neighbors may swap ranks.
		diff := all[i].Distance - plain[i].Distance
		if diff < 0 {
			diff = -diff
		}
		scale := float32(1)
		if plain[i].Distance > scale {
			scale = plain[i].Distance
		}
		if diff > 1e-5*scale {
			t.Fatalf("covering filter changed results at %d: %v vs %v", i, all[i], plain[i])
		}
	}
}

// TestWriterRecoveryTornWALTail crashes the writer while its last WAL batch
// is torn in shared storage — the shipping Put died mid-write, as S3 would
// leave a partial multipart upload. Restart must replay the clean prefix of
// the torn batch, report nothing fatal, and never panic on the garbage tail.
func TestWriterRecoveryTornWALTail(t *testing.T) {
	cl, d := newTestCluster(t, 2)
	extra := make([]core.Entity, 10)
	for i := range extra {
		v := make([]float32, d.Dim)
		v[0] = float32(i)
		extra[i] = core.Entity{ID: int64(9000 + i), Vectors: [][]float32{v}, Attrs: []int64{1}}
	}
	if err := cl.Writer().Insert("c", extra); err != nil {
		t.Fatal(err)
	}
	keys, err := cl.Store.List("wal/c/")
	if err != nil || len(keys) == 0 {
		t.Fatalf("expected unflushed WAL batches: %v %v", keys, err)
	}
	last := keys[len(keys)-1]
	blob, err := cl.Store.Get(last)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail: drop the final 3 bytes, corrupting only the last
	// record's CRC trailer. Records 9000..9008 stay intact.
	if err := cl.Store.Put(last, blob[:len(blob)-3]); err != nil {
		t.Fatal(err)
	}
	cl.Writer().Crash()
	if err := cl.Writer().Restart(); err != nil {
		t.Fatalf("restart over torn WAL tail: %v", err)
	}
	col, err := cl.Writer().Collection("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := col.Count(); got != 609 {
		t.Fatalf("Count after torn-tail recovery = %d, want 609 (600 base + 9 clean-prefix records)", got)
	}
	if _, ok := col.Get(9008); !ok {
		t.Fatal("last clean-prefix record missing after recovery")
	}
	if _, ok := col.Get(9009); ok {
		t.Fatal("torn record resurrected: it was never durably shipped")
	}

	// A WAL blob truncated inside a frame header (fewer than 4 bytes) is
	// the degenerate tear; recovery must treat it as an empty batch.
	if err := cl.Writer().Insert("c", []core.Entity{{ID: 9100, Vectors: [][]float32{make([]float32, d.Dim)}, Attrs: []int64{1}}}); err != nil {
		t.Fatal(err)
	}
	keys, _ = cl.Store.List("wal/c/")
	last = keys[len(keys)-1]
	blob, _ = cl.Store.Get(last)
	if err := cl.Store.Put(last, blob[:2]); err != nil {
		t.Fatal(err)
	}
	cl.Writer().Crash()
	if err := cl.Writer().Restart(); err != nil {
		t.Fatalf("restart over header-torn WAL: %v", err)
	}
	col, _ = cl.Writer().Collection("c")
	if _, ok := col.Get(9100); ok {
		t.Fatal("record from header-torn batch resurrected")
	}
}
