package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"vectordb/internal/core"
	"vectordb/internal/exec"
	"vectordb/internal/objstore"
	"vectordb/internal/topk"
)

// Cluster assembles the full distributed deployment of Fig. 5: shared
// storage, the coordinator ensemble, one writer, and N readers. It plays
// the roles of both the client router (fan-out + merge across readers) and
// the Kubernetes control loop (replacing crashed instances on request).
type Cluster struct {
	Store objstore.Store
	Coord *Coordinator

	mu        sync.Mutex
	writer    *Writer
	readers   map[string]*Reader
	nextID    int
	readerCfg ReaderConfig
}

// NewCluster builds a cluster with nReaders reader instances over store
// (a fresh in-memory store when nil).
func NewCluster(store objstore.Store, nReaders int, writerCfg core.Config, readerCfg ReaderConfig) (*Cluster, error) {
	if store == nil {
		store = objstore.NewMemory()
	}
	cl := &Cluster{
		Store:     store,
		Coord:     NewCoordinator(),
		readers:   map[string]*Reader{},
		readerCfg: readerCfg,
	}
	cl.writer = NewWriter(store, cl.Coord, writerCfg)
	for i := 0; i < nReaders; i++ {
		if _, err := cl.AddReader(); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// Writer returns the single writer instance.
func (cl *Cluster) Writer() *Writer { return cl.writer }

// AddReader elastically adds a reader instance (K8s scale-up, Sec. 5.3) and
// returns its ID.
func (cl *Cluster) AddReader() (string, error) {
	cl.mu.Lock()
	cl.nextID++
	id := fmt.Sprintf("reader-%d", cl.nextID)
	r := NewReader(id, cl.Store, cl.readerCfg)
	cl.readers[id] = r
	cl.mu.Unlock()
	if err := cl.Coord.RegisterReader(id); err != nil {
		return "", err
	}
	return id, nil
}

// RemoveReader scales a reader away; its shards redistribute over the ring.
func (cl *Cluster) RemoveReader(id string) error {
	cl.mu.Lock()
	_, ok := cl.readers[id]
	delete(cl.readers, id)
	cl.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: reader %q not found", id)
	}
	return cl.Coord.DeregisterReader(id)
}

// CrashReader simulates a reader crash (the instance stays registered until
// a query notices, as in a real failure).
func (cl *Cluster) CrashReader(id string) error {
	cl.mu.Lock()
	r, ok := cl.readers[id]
	cl.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: reader %q not found", id)
	}
	r.Crash()
	return nil
}

// RestartReader is the K8s replacement pod: same identity, cold cache.
func (cl *Cluster) RestartReader(id string) error {
	cl.mu.Lock()
	r, ok := cl.readers[id]
	cl.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: reader %q not found", id)
	}
	r.Restart()
	return cl.Coord.RegisterReader(id) // idempotent
}

// Readers returns the live reader count.
func (cl *Cluster) Readers() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	n := 0
	for _, r := range cl.readers {
		if r.Alive() {
			n++
		}
	}
	return n
}

// Reader returns a reader instance by ID (tests, stats).
func (cl *Cluster) Reader(id string) (*Reader, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	r, ok := cl.readers[id]
	return r, ok
}

// Search fans a top-k query out to every reader on the ring and merges the
// shard results. A dead reader is detected, deregistered (its shards
// redistribute), and the query retries — the availability path of Sec. 5.3.
func (cl *Cluster) Search(collection string, query []float32, opts core.SearchOptions) ([]topk.Result, error) {
	//lint:allow ctxflow ctx-less compat wrapper: public API without a context anchors at Background
	return cl.SearchFilteredCtx(context.Background(), collection, query, opts, nil)
}

// SearchCtx is Search with cancellation: the router stops retrying and the
// per-reader shard scans stop loading segments once ctx ends.
func (cl *Cluster) SearchCtx(ctx context.Context, collection string, query []float32, opts core.SearchOptions) ([]topk.Result, error) {
	return cl.SearchFilteredCtx(ctx, collection, query, opts, nil)
}

// SearchFiltered is Search with an attribute range pushed down to every
// reader (distributed attribute filtering).
func (cl *Cluster) SearchFiltered(collection string, query []float32, opts core.SearchOptions, rf *RangeFilter) ([]topk.Result, error) {
	//lint:allow ctxflow ctx-less compat wrapper: public API without a context anchors at Background
	return cl.SearchFilteredCtx(context.Background(), collection, query, opts, rf)
}

// SearchFilteredCtx is SearchFiltered with cancellation. The per-reader
// fan-out runs as tasks on the shared execution pool: the router goroutine
// participates when the pool is saturated, so a cluster query can never
// deadlock against collection-level queries sharing the pool.
func (cl *Cluster) SearchFilteredCtx(ctx context.Context, collection string, query []float32, opts core.SearchOptions, rf *RangeFilter) ([]topk.Result, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		version, err := cl.Coord.ManifestVersion(collection)
		if err != nil {
			return nil, err
		}
		ring, err := cl.Coord.Ring()
		if err != nil {
			return nil, err
		}
		members := ring.Members()
		if len(members) == 0 {
			return nil, fmt.Errorf("cluster: no readers available")
		}
		type shardResult struct {
			res []topk.Result
			err error
		}
		shards := make([]shardResult, len(members))
		if err := exec.Default().Map(ctx, len(members), func(i int) {
			id := members[i]
			cl.mu.Lock()
			r := cl.readers[id]
			cl.mu.Unlock()
			if r == nil {
				shards[i].err = fmt.Errorf("%w: reader %s gone", ErrReaderDown, id)
				return
			}
			shards[i].res, shards[i].err = r.SearchOwnedCtx(ctx, collection, version, ring, query, opts, rf)
		}); err != nil {
			return nil, err
		}
		var lists [][]topk.Result
		var failed []string
		var reqErr error
		for i, sr := range shards {
			switch {
			case sr.err == nil:
				lists = append(lists, sr.res)
			case errors.Is(sr.err, ErrReaderDown):
				failed = append(failed, members[i])
			default:
				// A request-level error (bad field, bad filter): surface it,
				// never treat the reader as dead.
				if reqErr == nil {
					reqErr = sr.err
				}
			}
		}
		if reqErr != nil {
			return nil, reqErr
		}
		if len(failed) == 0 {
			return topk.Merge(opts.K, lists...), nil
		}
		if attempt >= len(members) {
			return nil, fmt.Errorf("cluster: readers kept failing: %v", failed)
		}
		// Failover: drop dead readers from the ring and retry.
		for _, id := range failed {
			_ = cl.Coord.DeregisterReader(id)
		}
	}
}
