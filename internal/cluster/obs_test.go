package cluster

import (
	"bytes"
	"testing"

	"vectordb/internal/core"
	"vectordb/internal/dataset"
	"vectordb/internal/objstore"
	"vectordb/internal/obs"
	"vectordb/internal/obs/promtext"
)

// scrapeValue reads one series through the exposition — the only view
// that collects func-backed series like the reader cache counters.
func scrapeValue(t *testing.T, reg *obs.Registry, name, labelKey, labelVal string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		for _, s := range f.Samples {
			if s.Labels[labelKey] == labelVal {
				return s.Value
			}
		}
	}
	t.Fatalf("series %s{%s=%q} not scraped", name, labelKey, labelVal)
	return 0
}

// TestClusterObsCounters: the distributed layer reports WAL shipping,
// replay, reader searches and segment-cache traffic through the registry —
// and the cache series, being scrape-time funcs over the live pool, track
// the same numbers CacheStats reports even across a reader crash.
func TestClusterObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	wCfg := writerCfg()
	wCfg.Obs = reg
	rCfg := ReaderConfig{IndexRows: 1 << 20, Obs: reg}
	cl, err := NewCluster(objstore.NewMemory(), 1, wCfg, rCfg)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.DeepLike(300, 21)
	attrs := dataset.Attributes(d.N, 100, 22)
	if err := cl.Writer().CreateCollection("c", clusterSchema(d.Dim)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Writer().Insert("c", entitiesFrom(d, attrs)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Writer().Flush("c"); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("vectordb_wal_batches_shipped_total").Value(); got < 1 {
		t.Errorf("shipped batches = %d, want >= 1", got)
	}
	if got := reg.Counter("vectordb_wal_shipped_records_total").Value(); got != int64(d.N) {
		t.Errorf("shipped records = %d, want %d", got, d.N)
	}

	q := dataset.Queries(d, 1, 23)
	for i := 0; i < 3; i++ {
		if _, err := cl.Search("c", q, core.SearchOptions{K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	ids, _ := cl.Coord.Readers()
	if len(ids) != 1 {
		t.Fatalf("readers = %v, want one", ids)
	}
	r, _ := cl.Reader(ids[0])
	if got := reg.Counter("vectordb_reader_searches_total", "reader", ids[0]).Value(); got != 3 {
		t.Errorf("reader searches = %d, want 3", got)
	}
	hits, misses := r.CacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("cache stats hits=%d misses=%d: repeated queries should hit and first should miss", hits, misses)
	}
	if got := scrapeValue(t, reg, "vectordb_reader_cache_hits_total", "reader", ids[0]); got != float64(hits) {
		t.Errorf("cache hits series = %v, CacheStats = %d", got, hits)
	}
	if got := scrapeValue(t, reg, "vectordb_reader_cache_misses_total", "reader", ids[0]); got != float64(misses) {
		t.Errorf("cache misses series = %v, CacheStats = %d", got, misses)
	}

	// Crash replaces the pool; the scrape-time funcs must follow the live
	// pool, not the dead one.
	r.Crash()
	r.Restart()
	h2, m2 := r.CacheStats()
	if got := scrapeValue(t, reg, "vectordb_reader_cache_hits_total", "reader", ids[0]); got != float64(h2) {
		t.Errorf("post-crash cache hits series = %v, CacheStats = %d", got, h2)
	}
	if got := scrapeValue(t, reg, "vectordb_reader_cache_misses_total", "reader", ids[0]); got != float64(m2) {
		t.Errorf("post-crash cache misses series = %v, CacheStats = %d", got, m2)
	}

	// Writer crash + restart replays the WAL tail past the manifest.
	if err := cl.Writer().Insert("c", []core.Entity{{ID: 9001, Vectors: [][]float32{d.Row(0)}, Attrs: []int64{1}}}); err != nil {
		t.Fatal(err)
	}
	cl.Writer().Crash()
	if err := cl.Writer().Restart(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("vectordb_wal_replayed_records_total").Value(); got < 1 {
		t.Errorf("replayed records = %d, want >= 1 after restart", got)
	}
}
