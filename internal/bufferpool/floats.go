package bufferpool

// Pooled float32 scratch slices for the blocked distance kernels: every scan
// path (flat, IVF bucket, segment, batch engines) needs a per-block distance
// buffer, and allocating it per call puts a slice-sized garbage object on
// every query. The free list hands out the same few buffers process-wide;
// they grow to the largest block requested and stay there.

var floatSlices = NewFree(func() *[]float32 { return new([]float32) })

// GetFloats returns a pooled float32 slice of length n (contents undefined —
// callers must overwrite before reading). Release it with PutFloats.
func GetFloats(n int) *[]float32 {
	p := floatSlices.Get()
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

// PutFloats recycles a slice obtained from GetFloats. The caller must not
// use the slice afterwards.
func PutFloats(p *[]float32) { floatSlices.Put(p) }
