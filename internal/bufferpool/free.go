package bufferpool

import "sync"

// Free is a typed free list over sync.Pool for hot-path scratch objects
// (per-merge heaps, per-query buffers): unlike the LRU Pool, entries have
// no identity — Get hands out any recycled value, Put returns it. Callers
// must re-initialize values from Get; the GC may drop pooled entries at
// any time, so Free only ever saves allocations, never correctness.
type Free[T any] struct {
	p sync.Pool
}

// NewFree returns a free list whose Get falls back to newT when empty.
func NewFree[T any](newT func() *T) *Free[T] {
	f := &Free[T]{}
	f.p.New = func() any { return newT() }
	return f
}

// Get takes a value off the free list, allocating if none is available.
func (f *Free[T]) Get() *T { return f.p.Get().(*T) }

// Put recycles a value. The caller must not use it afterwards.
func (f *Free[T]) Put(x *T) { f.p.Put(x) }
