package bufferpool

// Pooled byte scratch slices for the out-of-core scan paths: block-cache
// loaders and the code-shaped (SQ8) range sources stitch straddling
// blocks into scratch that must not be a per-block allocation.

var byteSlices = NewFree(func() *[]byte { return new([]byte) })

// GetBytes returns a pooled byte slice of length n (contents undefined —
// callers must overwrite before reading). Release it with PutBytes.
func GetBytes(n int) *[]byte {
	p := byteSlices.Get()
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

// PutBytes recycles a slice obtained from GetBytes. The caller must not
// use the slice afterwards.
func PutBytes(p *[]byte) { byteSlices.Put(p) }
