package bufferpool

import "testing"

func TestFreeRoundTrip(t *testing.T) {
	type scratch struct{ buf []int }
	var news int
	f := NewFree(func() *scratch {
		news++
		return &scratch{buf: make([]int, 0, 16)}
	})
	s := f.Get()
	if s == nil || cap(s.buf) != 16 {
		t.Fatalf("Get() = %+v", s)
	}
	s.buf = append(s.buf, 1, 2, 3)
	f.Put(s)
	s2 := f.Get()
	// Whether or not the same object comes back (the GC may clear the
	// pool), it must be usable and the constructor must work when empty.
	s2.buf = s2.buf[:0]
	f.Put(s2)
	if news < 1 {
		t.Fatal("constructor never ran")
	}
}

func TestFreeAllocsSteadyState(t *testing.T) {
	f := NewFree(func() *[]byte { b := make([]byte, 4096); return &b })
	f.Put(f.Get())
	avg := testing.AllocsPerRun(100, func() {
		b := f.Get()
		(*b)[0] = 1
		f.Put(b)
	})
	if avg > 1 {
		t.Fatalf("Get/Put allocates %.1f objects/op in steady state", avg)
	}
}
