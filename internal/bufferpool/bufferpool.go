// Package bufferpool implements the LRU buffer manager of Sec. 2.4. Milvus
// assumes most data is memory resident; when it is not, segments — the
// basic unit of searching, scheduling and buffering (Sec. 2.3) — are cached
// under an LRU policy and reloaded from the object store on miss.
package bufferpool

import (
	"container/list"
	"fmt"
	"sync"
)

// Loader materializes an evicted entry on a cache miss.
type Loader func(key string) (value any, size int64, err error)

// Pool is an LRU cache keyed by segment name, bounded by total byte size.
type Pool struct {
	capacity int64
	load     Loader

	mu      sync.Mutex
	order   *list.List // front = most recent
	entries map[string]*list.Element
	used    int64
	hits    int64
	misses  int64
}

type entry struct {
	key   string
	value any
	size  int64
}

// New creates a pool of the given byte capacity.
func New(capacity int64, load Loader) *Pool {
	if capacity <= 0 {
		panic("bufferpool: capacity must be positive")
	}
	return &Pool{capacity: capacity, load: load, order: list.New(), entries: map[string]*list.Element{}}
}

// Get returns the cached value for key, loading it on a miss and evicting
// LRU entries to fit. Values larger than the pool are returned uncached.
func (p *Pool) Get(key string) (any, error) {
	p.mu.Lock()
	if el, ok := p.entries[key]; ok {
		p.order.MoveToFront(el)
		p.hits++
		v := el.Value.(*entry).value
		p.mu.Unlock()
		return v, nil
	}
	p.misses++
	p.mu.Unlock()

	v, size, err := p.load(key)
	if err != nil {
		return nil, fmt.Errorf("bufferpool: load %q: %w", key, err)
	}
	if size > p.capacity {
		return v, nil // too big to cache: serve uncached
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok { // racing loader won
		p.order.MoveToFront(el)
		return el.Value.(*entry).value, nil
	}
	for p.used+size > p.capacity {
		back := p.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		p.order.Remove(back)
		delete(p.entries, e.key)
		p.used -= e.size
	}
	p.entries[key] = p.order.PushFront(&entry{key: key, value: v, size: size})
	p.used += size
	return v, nil
}

// Put inserts (or refreshes) a value directly — used when a freshly flushed
// segment is already in memory.
func (p *Pool) Put(key string, value any, size int64) {
	if size > p.capacity {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		e := el.Value.(*entry)
		p.used += size - e.size
		e.value, e.size = value, size
		p.order.MoveToFront(el)
	} else {
		p.entries[key] = p.order.PushFront(&entry{key: key, value: value, size: size})
		p.used += size
	}
	for p.used > p.capacity {
		back := p.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		p.order.Remove(back)
		delete(p.entries, e.key)
		p.used -= e.size
	}
}

// Evict removes key (e.g. a segment garbage-collected after a merge).
func (p *Pool) Evict(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		p.used -= el.Value.(*entry).size
		p.order.Remove(el)
		delete(p.entries, key)
	}
}

// Contains reports whether key is cached (no LRU effect).
func (p *Pool) Contains(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.entries[key]
	return ok
}

// Used reports cached bytes.
func (p *Pool) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Stats reports hit/miss counters.
func (p *Pool) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}
