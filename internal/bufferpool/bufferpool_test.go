package bufferpool

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestGetLoadsAndCaches(t *testing.T) {
	loads := 0
	p := New(100, func(key string) (any, int64, error) {
		loads++
		return "v:" + key, 10, nil
	})
	v, err := p.Get("a")
	if err != nil || v != "v:a" {
		t.Fatalf("Get = %v, %v", v, err)
	}
	p.Get("a")
	if loads != 1 {
		t.Fatalf("loads = %d, want 1 (second Get must hit)", loads)
	}
	h, m := p.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d hits %d misses", h, m)
	}
}

func TestLRUEviction(t *testing.T) {
	p := New(30, func(key string) (any, int64, error) { return key, 10, nil })
	p.Get("a")
	p.Get("b")
	p.Get("c")
	p.Get("a") // refresh a; b is now LRU
	p.Get("d") // evicts b
	if p.Contains("b") {
		t.Fatal("b not evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !p.Contains(k) {
			t.Fatalf("%s wrongly evicted", k)
		}
	}
	if p.Used() != 30 {
		t.Fatalf("Used = %d", p.Used())
	}
}

func TestOversizeServedUncached(t *testing.T) {
	p := New(5, func(key string) (any, int64, error) { return key, 10, nil })
	v, err := p.Get("big")
	if err != nil || v != "big" {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if p.Contains("big") || p.Used() != 0 {
		t.Fatal("oversize value was cached")
	}
	p.Put("big", "x", 10)
	if p.Contains("big") {
		t.Fatal("oversize Put was cached")
	}
}

func TestLoaderErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	p := New(10, func(key string) (any, int64, error) { return nil, 0, boom })
	if _, err := p.Get("x"); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestPutAndEvict(t *testing.T) {
	p := New(100, func(key string) (any, int64, error) { return nil, 0, errors.New("no loader") })
	p.Put("seg1", 42, 20)
	v, err := p.Get("seg1")
	if err != nil || v != 42 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	p.Put("seg1", 43, 30) // refresh with new size
	if p.Used() != 30 {
		t.Fatalf("Used = %d, want 30", p.Used())
	}
	p.Evict("seg1")
	if p.Contains("seg1") || p.Used() != 0 {
		t.Fatal("Evict failed")
	}
	p.Evict("seg1") // idempotent
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, nil)
}

func TestConcurrentAccess(t *testing.T) {
	p := New(64, func(key string) (any, int64, error) { return key, 8, nil })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w+i)%16)
				if v, err := p.Get(k); err != nil || v != k {
					t.Errorf("Get(%s) = %v, %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if p.Used() > 64 {
		t.Fatalf("Used = %d exceeds capacity", p.Used())
	}
}
