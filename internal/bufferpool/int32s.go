package bufferpool

// Pooled int32 scratch slices for the sparse gather path: the scan driver
// accumulates surviving row indices per block before handing them to the
// gather kernels, and that list must not be a per-block allocation.

var int32Slices = NewFree(func() *[]int32 { return new([]int32) })

// GetInt32s returns a pooled int32 slice of length n (contents undefined —
// callers must overwrite before reading). Release it with PutInt32s.
func GetInt32s(n int) *[]int32 {
	p := int32Slices.Get()
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

// PutInt32s recycles a slice obtained from GetInt32s. The caller must not
// use the slice afterwards.
func PutInt32s(p *[]int32) { int32Slices.Put(p) }
