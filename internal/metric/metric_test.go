package metric

import (
	"testing"

	"vectordb/internal/topk"
)

func TestRecall(t *testing.T) {
	truth := []topk.Result{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	got := []topk.Result{{ID: 2}, {ID: 4}, {ID: 9}, {ID: 10}}
	if r := Recall(truth, got); r != 0.5 {
		t.Fatalf("Recall = %v, want 0.5", r)
	}
	if r := Recall(nil, got); r != 1 {
		t.Fatalf("Recall(empty truth) = %v, want 1", r)
	}
	if r := Recall(truth, nil); r != 0 {
		t.Fatalf("Recall(empty got) = %v, want 0", r)
	}
}

func TestMeanRecall(t *testing.T) {
	truth := [][]topk.Result{{{ID: 1}}, {{ID: 2}}}
	got := [][]topk.Result{{{ID: 1}}, {{ID: 3}}}
	if r := MeanRecall(truth, got); r != 0.5 {
		t.Fatalf("MeanRecall = %v, want 0.5", r)
	}
	if r := MeanRecall(nil, nil); r != 1 {
		t.Fatalf("MeanRecall(empty) = %v, want 1", r)
	}
}

func TestThroughputPositive(t *testing.T) {
	qps := Throughput(100, func() {})
	if qps <= 0 {
		t.Fatalf("Throughput = %v", qps)
	}
	d := Timer(func() {})
	if d < 0 {
		t.Fatalf("Timer = %v", d)
	}
}
