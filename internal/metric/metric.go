// Package metric implements the evaluation metrics of Sec. 7.1: recall
// (|S∩S′|/|S| against brute-force ground truth) and query throughput.
package metric

import (
	"time"

	"vectordb/internal/topk"
)

// Recall returns |truth ∩ got| / |truth| for one query.
func Recall(truth, got []topk.Result) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[int64]struct{}, len(truth))
	for _, r := range truth {
		set[r.ID] = struct{}{}
	}
	hit := 0
	for _, r := range got {
		if _, ok := set[r.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// MeanRecall averages Recall over query batches.
func MeanRecall(truth, got [][]topk.Result) float64 {
	if len(truth) == 0 {
		return 1
	}
	var s float64
	for i := range truth {
		s += Recall(truth[i], got[i])
	}
	return s / float64(len(truth))
}

// Throughput runs fn once and reports queries/second for nq queries.
func Throughput(nq int, fn func()) float64 {
	start := time.Now()
	fn()
	el := time.Since(start)
	if el <= 0 {
		el = time.Nanosecond
	}
	return float64(nq) / el.Seconds()
}

// Timer measures wall-clock duration of fn.
func Timer(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
