// Package kmeans implements the K-means clustering used to construct the
// codebooks of quantization-based indexes (Sec. 3.1): the coarse quantizer
// clusters vectors into K buckets, and the product quantizer runs K-means
// independently in each sub-space.
package kmeans

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"vectordb/internal/vec"
)

// Config controls a clustering run.
type Config struct {
	K        int   // number of centroids; required
	MaxIter  int   // Lloyd iterations; default 16
	Seed     int64 // RNG seed for k-means++ init; default 1
	MinPoint int   // informational: training warns below MinPoint*K points
	Threads  int   // worker goroutines; default GOMAXPROCS
}

func (c *Config) defaults() {
	if c.MaxIter <= 0 {
		c.MaxIter = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
}

// Result holds trained centroids in a flat row-major matrix.
type Result struct {
	K         int
	Dim       int
	Centroids []float32 // K*Dim
}

// Centroid returns centroid i as a slice view.
func (r *Result) Centroid(i int) []float32 { return r.Centroids[i*r.Dim : (i+1)*r.Dim] }

// Assign returns the index of the centroid closest to v (the quantizer z(v)
// of Sec. 3.1) and the squared distance to it.
func (r *Result) Assign(v []float32) (int, float32) {
	best, bestD := 0, float32(0)
	for i := 0; i < r.K; i++ {
		d := vec.L2Squared(v, r.Centroid(i))
		if i == 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// Train clusters n vectors (flat row-major, n = len(data)/dim) into cfg.K
// centroids with k-means++ initialization and Lloyd refinement.
func Train(data []float32, dim int, cfg Config) (*Result, error) {
	cfg.defaults()
	if dim <= 0 {
		return nil, fmt.Errorf("kmeans: dim must be positive, got %d", dim)
	}
	if len(data)%dim != 0 {
		return nil, fmt.Errorf("kmeans: data length %d not a multiple of dim %d", len(data), dim)
	}
	n := len(data) / dim
	if cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: K must be positive, got %d", cfg.K)
	}
	if n == 0 {
		return nil, fmt.Errorf("kmeans: no training vectors")
	}
	if n < cfg.K {
		// Degenerate but legal: every point is its own centroid, remaining
		// centroids duplicate existing points so Assign stays total.
		res := &Result{K: cfg.K, Dim: dim, Centroids: make([]float32, cfg.K*dim)}
		for i := 0; i < cfg.K; i++ {
			copy(res.Centroids[i*dim:(i+1)*dim], data[(i%n)*dim:(i%n+1)*dim])
		}
		return res, nil
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	cents := initPlusPlus(data, dim, n, cfg.K, r)
	res := &Result{K: cfg.K, Dim: dim, Centroids: cents}

	assign := make([]int, n)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		changed := assignAll(data, dim, n, res, assign, cfg.Threads)
		recompute(data, dim, n, res, assign, r)
		if !changed {
			break
		}
	}
	return res, nil
}

// initPlusPlus seeds centroids with the k-means++ D² sampling scheme.
func initPlusPlus(data []float32, dim, n, k int, r *rand.Rand) []float32 {
	cents := make([]float32, k*dim)
	first := r.Intn(n)
	copy(cents[:dim], data[first*dim:(first+1)*dim])

	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = float64(vec.L2Squared(data[i*dim:(i+1)*dim], cents[:dim]))
	}
	for c := 1; c < k; c++ {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var pick int
		if sum <= 0 {
			pick = r.Intn(n)
		} else {
			target := r.Float64() * sum
			for i, d := range d2 {
				target -= d
				if target <= 0 {
					pick = i
					break
				}
			}
		}
		cent := cents[c*dim : (c+1)*dim]
		copy(cent, data[pick*dim:(pick+1)*dim])
		for i := 0; i < n; i++ {
			d := float64(vec.L2Squared(data[i*dim:(i+1)*dim], cent))
			if d < d2[i] {
				d2[i] = d
			}
		}
	}
	return cents
}

func assignAll(data []float32, dim, n int, res *Result, assign []int, threads int) bool {
	if threads > n {
		threads = n
	}
	var changed sync.Once
	var anyChanged bool
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			local := false
			for i := lo; i < hi; i++ {
				a, _ := res.Assign(data[i*dim : (i+1)*dim])
				if assign[i] != a {
					assign[i] = a
					local = true
				}
			}
			if local {
				changed.Do(func() { anyChanged = true })
			}
		}(lo, hi)
	}
	wg.Wait()
	return anyChanged
}

func recompute(data []float32, dim, n int, res *Result, assign []int, r *rand.Rand) {
	counts := make([]int, res.K)
	next := make([]float64, res.K*dim)
	for i := 0; i < n; i++ {
		c := assign[i]
		counts[c]++
		row := data[i*dim : (i+1)*dim]
		acc := next[c*dim : (c+1)*dim]
		for j, x := range row {
			acc[j] += float64(x)
		}
	}
	for c := 0; c < res.K; c++ {
		if counts[c] == 0 {
			// Empty cluster: reseed from a random point so K stays honest.
			p := r.Intn(n)
			copy(res.Centroids[c*dim:(c+1)*dim], data[p*dim:(p+1)*dim])
			continue
		}
		inv := 1 / float64(counts[c])
		for j := 0; j < dim; j++ {
			res.Centroids[c*dim+j] = float32(next[c*dim+j] * inv)
		}
	}
}
