package kmeans

import (
	"math/rand"
	"testing"

	"vectordb/internal/vec"
)

// clusteredData produces k well-separated Gaussian blobs.
func clusteredData(r *rand.Rand, k, perCluster, dim int, spread float64) ([]float32, [][]float32) {
	centers := make([][]float32, k)
	data := make([]float32, 0, k*perCluster*dim)
	for c := 0; c < k; c++ {
		center := make([]float32, dim)
		for j := range center {
			center[j] = float32(r.NormFloat64() * 50)
		}
		centers[c] = center
		for i := 0; i < perCluster; i++ {
			for j := 0; j < dim; j++ {
				data = append(data, center[j]+float32(r.NormFloat64()*spread))
			}
		}
	}
	return data, centers
}

func TestTrainRecoversWellSeparatedClusters(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	dim := 8
	data, centers := clusteredData(r, 4, 100, dim, 0.5)
	res, err := Train(data, dim, Config{K: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Every true center must have a trained centroid very close to it.
	for _, c := range centers {
		_, d := res.Assign(c)
		if d > 5 {
			t.Errorf("no centroid near true center (d=%v)", d)
		}
	}
}

func TestAssignConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	dim := 4
	data, _ := clusteredData(r, 3, 50, dim, 1)
	res, err := Train(data, dim, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Assign must pick the genuinely nearest centroid.
	for i := 0; i < 20; i++ {
		v := data[i*dim : (i+1)*dim]
		got, gotD := res.Assign(v)
		for c := 0; c < res.K; c++ {
			if d := vec.L2Squared(v, res.Centroid(c)); d < gotD {
				t.Fatalf("Assign picked %d (d=%v) but %d has d=%v", got, gotD, c, d)
			}
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train([]float32{1, 2, 3}, 2, Config{K: 1}); err == nil {
		t.Error("ragged data accepted")
	}
	if _, err := Train([]float32{1, 2}, 0, Config{K: 1}); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := Train([]float32{1, 2}, 2, Config{K: 0}); err == nil {
		t.Error("zero K accepted")
	}
	if _, err := Train(nil, 2, Config{K: 1}); err == nil {
		t.Error("empty data accepted")
	}
}

func TestTrainFewerPointsThanK(t *testing.T) {
	data := []float32{1, 1, 5, 5}
	res, err := Train(data, 2, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("K = %d, want 4", res.K)
	}
	// Assign must still be total and exact for the training points.
	if c, d := res.Assign([]float32{1, 1}); d != 0 {
		t.Errorf("Assign(point) = %d with d=%v, want d=0", c, d)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	dim := 6
	data, _ := clusteredData(r, 5, 40, dim, 1)
	a, err := Train(data, dim, Config{K: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, dim, Config{K: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatal("same seed produced different centroids")
		}
	}
}

func TestNoEmptyClustersOnDuplicateData(t *testing.T) {
	// All points identical: reseeding keeps centroids defined (not NaN).
	data := make([]float32, 32*4)
	for i := range data {
		data[i] = 7
	}
	res, err := Train(data, 4, Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range res.Centroids {
		if x != 7 {
			t.Fatalf("centroid drifted to %v on constant data", x)
		}
	}
}

func BenchmarkTrain(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	dim := 32
	data, _ := clusteredData(r, 16, 256, dim, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(data, dim, Config{K: 16, MaxIter: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
