package query

import (
	"math/rand"
	"testing"

	"vectordb/internal/dataset"
	_ "vectordb/internal/index/all"
	"vectordb/internal/metric"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// filterTable builds a table over clustered vectors with one uniform
// attribute in [0, 10000), matching the Fig. 14 setup.
func filterTable(t testing.TB, n int, indexType string) *Table {
	t.Helper()
	d := dataset.SIFTLike(n, 1)
	attrs := dataset.Attributes(n, 10000, 2)
	tab, err := NewTable(vec.L2, d.Dim, d.Data, nil, [][]int64{attrs})
	if err != nil {
		t.Fatal(err)
	}
	if indexType != "" {
		if err := tab.BuildIndex(indexType, map[string]string{"nlist": "32", "iter": "4"}); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// exactFiltered is the brute-force reference for attribute filtering.
func exactFiltered(tab *Table, rc RangeCond, vc VecCond) []topk.Result {
	h := topk.New(vc.K)
	for _, id := range tab.ids {
		v, _ := tab.AttrValue(rc.Attr, id)
		if v < rc.Lo || v > rc.Hi {
			continue
		}
		d, _ := tab.DistanceByID(vc.Field, vc.Query, id)
		h.Push(id, d)
	}
	return h.Results()
}

func recallOf(truth, got []topk.Result) float64 {
	return metric.Recall(truth, got)
}

func TestStrategyAIsExact(t *testing.T) {
	tab := filterTable(t, 2000, "")
	q := dataset.Queries(&dataset.Dataset{Dim: 128, N: 2000, Data: tab.data}, 1, 3)
	rc := RangeCond{Attr: 0, Lo: 2000, Hi: 7000}
	vc := VecCond{Field: 0, Query: q, K: 10}
	got := StrategyA(tab, rc, vc)
	want := exactFiltered(tab, rc, vc)
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestStrategiesAgreeOnExactIndex(t *testing.T) {
	// With a FLAT index every strategy must return the exact answer.
	tab := filterTable(t, 1500, "")
	q := dataset.Queries(&dataset.Dataset{Dim: 128, N: 1500, Data: tab.data}, 1, 4)
	for _, rng := range [][2]int64{{0, 9999}, {100, 5000}, {9000, 9999}, {5000, 5100}} {
		rc := RangeCond{Attr: 0, Lo: rng[0], Hi: rng[1]}
		vc := VecCond{Field: 0, Query: q, K: 10}
		want := exactFiltered(tab, rc, vc)
		for name, got := range map[string][]topk.Result{
			"A": StrategyA(tab, rc, vc),
			"B": StrategyB(tab, rc, vc),
			"C": StrategyC(tab, rc, vc),
		} {
			if r := recallOf(want, got); r < 0.999 {
				t.Errorf("range %v strategy %s: recall %.3f", rng, name, r)
			}
		}
		resD, chosen := StrategyD(tab, rc, vc, DefaultCostModel())
		if r := recallOf(want, resD); r < 0.999 {
			t.Errorf("range %v strategy D (%s): recall %.3f", rng, chosen, r)
		}
	}
}

func TestStrategyBEmptyPredicate(t *testing.T) {
	tab := filterTable(t, 100, "")
	vc := VecCond{Field: 0, Query: make([]float32, 128), K: 5}
	if got := StrategyB(tab, RangeCond{Attr: 0, Lo: 50000, Hi: 60000}, vc); got != nil {
		t.Fatalf("empty predicate returned %v", got)
	}
}

func TestStrategyCRetriesUntilK(t *testing.T) {
	// Highly selective predicate: C must re-fetch until it has k results.
	tab := filterTable(t, 2000, "")
	q := make([]float32, 128)
	rc := RangeCond{Attr: 0, Lo: 0, Hi: 200} // ~2% pass
	vc := VecCond{Field: 0, Query: q, K: 10}
	got := StrategyC(tab, rc, vc)
	want := exactFiltered(tab, rc, vc)
	if len(got) != len(want) {
		t.Fatalf("C returned %d results, want %d", len(got), len(want))
	}
	if r := recallOf(want, got); r < 0.999 {
		t.Fatalf("C recall %.3f after retries", r)
	}
}

func TestCostModelPicksAWhenHighlySelective(t *testing.T) {
	tab := filterTable(t, 5000, "")
	m := DefaultCostModel()
	vc := VecCond{Field: 0, Query: make([]float32, 128), K: 10}
	// ~0.5% pass: A scans ~25 vectors, B probes ~400.
	if got := m.Choose(tab, RangeCond{Attr: 0, Lo: 0, Hi: 50}, vc); got != StratA {
		t.Errorf("highly selective predicate chose %s, want A", got)
	}
	// ~95% pass: C is feasible and cheapest.
	if got := m.Choose(tab, RangeCond{Attr: 0, Lo: 0, Hi: 9500}, vc); got != StratC {
		t.Errorf("permissive predicate chose %s, want C", got)
	}
	// ~30% pass: B.
	if got := m.Choose(tab, RangeCond{Attr: 0, Lo: 0, Hi: 3000}, vc); got != StratB {
		t.Errorf("moderate predicate chose %s, want B", got)
	}
}

func TestStrategyEMatchesExact(t *testing.T) {
	tab := filterTable(t, 3000, "")
	parts, err := tab.PartitionByAttr(0, 6, "FLAT", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 6 {
		t.Fatalf("%d partitions, want 6", len(parts))
	}
	// Partitions must be disjoint in attribute range and cover all rows.
	total := 0
	for i := 1; i < len(parts); i++ {
		_, prevHi, _ := parts[i-1].AttrBounds(0)
		lo, _, _ := parts[i].AttrBounds(0)
		if lo <= prevHi {
			t.Fatalf("partition %d overlaps previous: lo=%d prevHi=%d", i, lo, prevHi)
		}
	}
	for _, p := range parts {
		total += p.TotalRows()
	}
	if total != 3000 {
		t.Fatalf("partitions cover %d rows, want 3000", total)
	}
	q := dataset.Queries(&dataset.Dataset{Dim: 128, N: 3000, Data: tab.data}, 1, 5)
	for _, rng := range [][2]int64{{0, 9999}, {50, 250}, {4000, 6000}, {9900, 9999}} {
		rc := RangeCond{Attr: 0, Lo: rng[0], Hi: rng[1]}
		vc := VecCond{Field: 0, Query: q, K: 10}
		want := exactFiltered(tab, rc, vc)
		got := StrategyE(Partitions(parts), rc, vc, DefaultCostModel())
		if r := recallOf(want, got); r < 0.999 {
			t.Errorf("range %v: strategy E recall %.3f", rng, r)
		}
	}
}

func TestStrategyEWithRealIndexHighRecall(t *testing.T) {
	tab := filterTable(t, 4000, "IVF_FLAT")
	parts, err := tab.PartitionByAttr(0, 4, "IVF_FLAT", map[string]string{"nlist": "16", "iter": "4"})
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.Queries(&dataset.Dataset{Dim: 128, N: 4000, Data: tab.data}, 1, 6)
	rc := RangeCond{Attr: 0, Lo: 1000, Hi: 9000}
	vc := VecCond{Field: 0, Query: q, K: 10, Nprobe: 8}
	want := exactFiltered(tab, rc, vc)
	got := StrategyE(Partitions(parts), rc, vc, DefaultCostModel())
	if r := recallOf(want, got); r < 0.8 {
		t.Errorf("strategy E with IVF recall %.3f", r)
	}
}

func TestPartitionByAttrErrors(t *testing.T) {
	tab := filterTable(t, 100, "")
	if _, err := tab.PartitionByAttr(0, 0, "", nil); err == nil {
		t.Error("rho=0 accepted")
	}
	parts, err := tab.PartitionByAttr(0, 1000, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) > 100 {
		t.Errorf("%d partitions from 100 rows", len(parts))
	}
}

func TestFreqTracker(t *testing.T) {
	ft := NewFreqTracker()
	if _, ok := ft.Hottest(); ok {
		t.Fatal("empty tracker reported a hottest attr")
	}
	ft.Touch(2)
	ft.Touch(2)
	ft.Touch(5)
	if a, ok := ft.Hottest(); !ok || a != 2 {
		t.Fatalf("Hottest = %d,%v", a, ok)
	}
	if ft.Count(2) != 2 || ft.Count(5) != 1 || ft.Count(9) != 0 {
		t.Fatal("counts wrong")
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := NewTable(vec.L2, 4, []float32{1, 2, 3}, nil, nil); err == nil {
		t.Error("ragged data accepted")
	}
	if _, err := NewTable(vec.L2, 2, []float32{1, 2, 3, 4}, nil, [][]int64{{1}}); err == nil {
		t.Error("short attrs accepted")
	}
	tab, err := NewTable(vec.L2, 2, []float32{1, 2, 3, 4}, []int64{7, 8}, [][]int64{{5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.BuildIndex("NOPE", nil); err == nil {
		t.Error("unknown index type accepted")
	}
	if _, ok := tab.AttrValue(0, 99); ok {
		t.Error("missing id resolved")
	}
	if _, ok := tab.DistanceByID(0, []float32{0, 0}, 99); ok {
		t.Error("missing id resolved")
	}
	if v, ok := tab.AttrValue(0, 8); !ok || v != 6 {
		t.Errorf("AttrValue = %d,%v", v, ok)
	}
}

// Property-ish test: across random ranges, D's choice never loses more than
// trivial recall vs. exact, and E equals D's answer set on a FLAT index.
func TestStrategyDERandomRanges(t *testing.T) {
	tab := filterTable(t, 1200, "")
	parts, err := tab.PartitionByAttr(0, 5, "FLAT", nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	q := dataset.Queries(&dataset.Dataset{Dim: 128, N: 1200, Data: tab.data}, 1, 8)
	for trial := 0; trial < 10; trial++ {
		lo := r.Int63n(10000)
		hi := lo + r.Int63n(10000-lo)
		rc := RangeCond{Attr: 0, Lo: lo, Hi: hi}
		vc := VecCond{Field: 0, Query: q, K: 5}
		want := exactFiltered(tab, rc, vc)
		gotD, _ := StrategyD(tab, rc, vc, DefaultCostModel())
		gotE := StrategyE(Partitions(parts), rc, vc, DefaultCostModel())
		if rD := recallOf(want, gotD); rD < 0.999 {
			t.Errorf("trial %d range [%d,%d]: D recall %.3f", trial, lo, hi, rD)
		}
		if rE := recallOf(want, gotE); rE < 0.999 {
			t.Errorf("trial %d range [%d,%d]: E recall %.3f", trial, lo, hi, rE)
		}
	}
}
