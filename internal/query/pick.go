package query

import (
	"strconv"

	"vectordb/internal/plan"
	"vectordb/internal/topk"
)

// Shaped is an optional Source extension: the engine reports the physical
// shape of the data under the vector leg (row counts, index family, IVF
// geometry, live pool load) so the planner can price filter strategies.
// The Matched field is left for PickStrategy to fill from the zone-map
// estimate.
type Shaped interface {
	PlanFilterShape(field int) plan.FilterShape
}

// PickStrategy routes one filtered query through the cost-based planner:
// the zone-map-estimated selectivity (CountRange — no bitset is compiled
// to decide) and the source's physical shape pick pushdown (strategy B /
// filtered graph traversal) or the attribute-first exact scan (strategy
// A). This replaces the static dense/sparse crossover for strategy
// choice: below the calibrated crossover the O(n) bitset compile
// outweighs the partial scan and A wins — the BENCH_filter.json
// low-selectivity regression. The decision and its estimate are recorded
// on the trace as a filter_plan span.
func PickStrategy(p *plan.Planner, s Source, rc RangeCond, vc VecCond) (string, plan.Decision) {
	fs := plan.FilterShape{Dim: len(vc.Query), K: vc.K}
	if sh, ok := s.(Shaped); ok {
		fs = sh.PlanFilterShape(vc.Field)
		fs.Dim, fs.K = len(vc.Query), vc.K
	} else {
		fs.Rows = s.TotalRows()
	}
	if vc.Nprobe > 0 {
		fs.Nprobe = vc.Nprobe
	}
	fs.Matched = s.CountRange(rc.Attr, rc.Lo, rc.Hi)
	dec := p.PickFilterStrategy(fs)
	sp := vc.Trace.StartSpan("filter_plan")
	sp.Annotate("chosen", dec.Choice())
	sp.Annotate("est_selectivity", strconv.FormatFloat(fs.Selectivity(), 'f', 4, 64))
	sp.AnnotateInt("est_ns", dec.Est.Nanoseconds())
	sp.End()
	if dec.Strategy == plan.StrategyPrefilter {
		return StratA, dec
	}
	return StratB, dec
}

// StrategyPlanned picks via PickStrategy and executes the chosen
// strategy: A's exact scan over the qualifying rows, or B's pushdown
// (which a graph-indexed source serves with filtered traversal). Returns
// the results, the strategy letter, and the planner decision so the
// caller can feed the actual latency back through Planner.Observe.
func StrategyPlanned(p *plan.Planner, s Source, rc RangeCond, vc VecCond) ([]topk.Result, string, plan.Decision) {
	strat, dec := PickStrategy(p, s, rc, vc)
	if strat == StratA {
		return StrategyA(s, rc, vc), StratA, dec
	}
	return StrategyB(s, rc, vc), StratB, dec
}
