package query

import (
	"encoding/json"
	"os"
	"testing"

	"vectordb/internal/plan"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// planTestProfile mirrors the plan package's synthetic test profile so the
// strategy crossover is machine-independent here too.
func planTestProfile() *plan.Profile {
	kernel := map[string]float64{}
	for _, l := range vec.Levels() {
		kernel[l.String()] = 8e9
	}
	return &plan.Profile{
		Fingerprint:      plan.Fingerprint(),
		GOMAXPROCS:       8,
		KernelDimsPerSec: kernel,
		SQ8DimsPerSec:    16e9,
		RowOverheadNs:    30,
		RowNsPerDim:      0.5,
		LookupNs:         40,
		BitsetNsPerRow:   1.2,
		BitsetNsPerMatch: 20,
		PCIeBytesPerSec:  1.5e9,
		PCIeLatencyNs:    30e3,
		GPUDimsPerSec:    6.4e10,
	}
}

// shapedSource is a minimal Shaped Source: CountRange returns a fixed
// estimate and the shape is fixed; the vector methods record which path
// ran.
type shapedSource struct {
	shape    plan.FilterShape
	matched  int
	ranPlain bool // StrategyA path (RangeRows + DistanceByID)
	ranPush  bool // StrategyB path (VectorQuery fallback; no pushdown here)
}

func (s *shapedSource) PlanFilterShape(int) plan.FilterShape { return s.shape }
func (s *shapedSource) TotalRows() int                       { return s.shape.Rows }
func (s *shapedSource) CountRange(int, int64, int64) int     { return s.matched }

func (s *shapedSource) RangeRows(int, int64, int64) []int64 {
	s.ranPlain = true
	ids := make([]int64, s.matched)
	for i := range ids {
		ids[i] = int64(i)
	}
	return ids
}

func (s *shapedSource) AttrValue(int, int64) (int64, bool) { return 0, true }

func (s *shapedSource) VectorQuery(_ int, _ []float32, k, _ int, filter func(int64) bool) []topk.Result {
	s.ranPush = true
	return nil
}

func (s *shapedSource) DistanceByID(_ int, _ []float32, id int64) (float32, bool) {
	return float32(id), true
}

// TestPickStrategyCrossover: below the calibrated crossover PickStrategy
// routes to strategy A (no bitset compiled), above it to strategy B.
func TestPickStrategyCrossover(t *testing.T) {
	p := plan.New(plan.Config{Profile: planTestProfile()})
	base := plan.FilterShape{Rows: 100000, Dim: 128, K: 10, Indexed: true, Nlist: 64, Nprobe: 32}
	vc := VecCond{Field: 0, Query: make([]float32, 128), K: 10, Nprobe: 32}
	rc := RangeCond{Attr: 0, Lo: 0, Hi: 100}

	low := &shapedSource{shape: base, matched: 1000} // sel 0.01
	strat, dec := PickStrategy(p, low, rc, vc)
	if strat != StratA || dec.Strategy != plan.StrategyPrefilter {
		t.Errorf("sel 0.01: got strategy %s (%s), want A/prefilter", strat, dec.Strategy)
	}

	high := &shapedSource{shape: base, matched: 60000} // sel 0.6
	strat, dec = PickStrategy(p, high, rc, vc)
	if strat != StratB || dec.Strategy != plan.StrategyPushdown {
		t.Errorf("sel 0.6: got strategy %s (%s), want B/pushdown", strat, dec.Strategy)
	}
}

// TestStrategyPlannedExecutes: the chosen strategy actually runs — A's
// exact scan for the sub-crossover query, B's search for the dense one.
func TestStrategyPlannedExecutes(t *testing.T) {
	p := plan.New(plan.Config{Profile: planTestProfile()})
	base := plan.FilterShape{Rows: 100000, Dim: 128, K: 10, Indexed: true, Nlist: 64, Nprobe: 32}
	vc := VecCond{Field: 0, Query: make([]float32, 128), K: 10, Nprobe: 32}
	rc := RangeCond{Attr: 0, Lo: 0, Hi: 100}

	low := &shapedSource{shape: base, matched: 500}
	res, strat, _ := StrategyPlanned(p, low, rc, vc)
	if strat != StratA || !low.ranPlain || low.ranPush {
		t.Errorf("low selectivity: strat=%s ranPlain=%v ranPush=%v", strat, low.ranPlain, low.ranPush)
	}
	if len(res) != vc.K {
		t.Errorf("strategy A returned %d results, want %d", len(res), vc.K)
	}

	high := &shapedSource{shape: base, matched: 60000}
	_, strat, _ = StrategyPlanned(p, high, rc, vc)
	if strat != StratB || !high.ranPush {
		t.Errorf("high selectivity: strat=%s ranPush=%v", strat, high.ranPush)
	}
}

// benchFilterReport mirrors the cells of BENCH_filter.json this planner
// must fix: the measured IVF pushdown speedups by selectivity.
type benchFilterReport struct {
	Environment struct {
		Workload string `json:"workload"`
	} `json:"environment"`
	IVFSearch []struct {
		Selectivity float64 `json:"selectivity"`
		Layout      string  `json:"layout"`
		Speedup     float64 `json:"speedup"`
	} `json:"ivf_search"`
}

// TestBenchFilterLosingCells is the regression gate for the static
// crossover this planner replaces: in the measured BENCH_filter.json grid
// (n=100k dim=128 k=10, IVF nlist=64 nprobe=32), pushdown LOSES at
// selectivity 0.01 (speedup 0.73x clustered) because the O(n) bitset
// compile outweighs the probe savings. The planner must route those cells
// to strategy A, and must keep pushdown for every cell where it wins by
// 2x+. The sel-0.1 shuffled cell also dips below 1.0x, but only from row
// layout — which the physical shape cannot see — so the gate covers the
// selectivity-driven cells: every cell at or below 0.01, and every cell
// at or above 0.5.
func TestBenchFilterLosingCells(t *testing.T) {
	buf, err := os.ReadFile("../../BENCH_filter.json")
	if err != nil {
		t.Skipf("BENCH_filter.json not present: %v", err)
	}
	var rep benchFilterReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("parse BENCH_filter.json: %v", err)
	}
	if len(rep.IVFSearch) == 0 {
		t.Fatal("BENCH_filter.json has no ivf_search cells")
	}
	p := plan.New(plan.Config{Profile: planTestProfile()})
	const rows = 100000
	for _, cell := range rep.IVFSearch {
		s := plan.FilterShape{
			Rows: rows, Dim: 128, K: 10,
			Indexed: true, Nlist: 64, Nprobe: 32,
			Matched: int(cell.Selectivity * rows),
		}
		dec := p.PickFilterStrategy(s)
		switch {
		case cell.Selectivity <= 0.01:
			if dec.Strategy != plan.StrategyPrefilter {
				t.Errorf("sel %.2f %s (measured speedup %.2fx): planner picked %s, want prefilter",
					cell.Selectivity, cell.Layout, cell.Speedup, dec.Strategy)
			}
		case cell.Selectivity >= 0.5:
			if dec.Strategy != plan.StrategyPushdown {
				t.Errorf("sel %.2f %s (measured speedup %.2fx): planner picked %s, want pushdown",
					cell.Selectivity, cell.Layout, cell.Speedup, dec.Strategy)
			}
		}
	}
}
