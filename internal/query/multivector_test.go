package query

import (
	"testing"

	"vectordb/internal/dataset"
	"vectordb/internal/metric"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

func recipeSource(t testing.TB, n int) (*MultiTable, [][]float32) {
	t.Helper()
	mv := dataset.RecipeLike(n, []int{16, 24}, 1)
	mt, err := NewMultiTable(vec.L2, mv.Dims, mv.Fields, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := [][]float32{
		append([]float32(nil), mv.Field(0, 5)...),
		append([]float32(nil), mv.Field(1, 5)...),
	}
	// Perturb so the query isn't an exact member.
	for _, qv := range q {
		for j := range qv {
			qv[j] += 0.01
		}
	}
	return mt, q
}

func TestNRAExactOnFullLists(t *testing.T) {
	// With complete per-field lists (x = n), NRA must determine the exact
	// top-k: it equals the exhaustive ground truth.
	mt, q := recipeSource(t, 300)
	w := []float32{1, 0.5}
	truth := mt.GroundTruth(q, w, 10)
	res := BoundedNRA(mt, q, w, 10, 300)
	if !res.Determined {
		t.Fatal("NRA over complete lists not determined")
	}
	if r := metric.Recall(truth, res.Results); r < 0.999 {
		t.Fatalf("NRA recall %.3f", r)
	}
	for i := range truth {
		if res.Results[i].ID != truth[i].ID {
			t.Fatalf("rank %d: %d != %d", i, res.Results[i].ID, truth[i].ID)
		}
	}
}

func TestBoundedNRALowRecall(t *testing.T) {
	// The paper's NRA-k baseline: with lists bounded at k the recall is
	// poor (≈0.1 in Fig. 16); it must at least be clearly below the
	// iterative-merging recall on the same workload.
	mt, q := recipeSource(t, 1000)
	w := []float32{1, 1}
	truth := mt.GroundTruth(q, w, 50)
	nraRes := BoundedNRA(mt, q, w, 50, 50)
	img := IterativeMerging(mt, q, w, 50, 4096)
	rNRA := metric.Recall(truth, nraRes.Results)
	rIMG := metric.Recall(truth, img)
	if rIMG < 0.9 {
		t.Fatalf("IMG recall %.3f too low", rIMG)
	}
	if rNRA >= rIMG {
		t.Fatalf("bounded NRA recall %.3f not below IMG %.3f", rNRA, rIMG)
	}
}

func TestIterativeMergingEarlyStop(t *testing.T) {
	// With a huge threshold IMG must stop as soon as NRA determines the
	// answer, not at the threshold.
	mt, q := recipeSource(t, 400)
	w := []float32{1, 1}
	truth := mt.GroundTruth(q, w, 5)
	got := IterativeMerging(mt, q, w, 5, 1<<20)
	if r := metric.Recall(truth, got); r < 0.999 {
		t.Fatalf("IMG recall %.3f", r)
	}
}

func TestNaiveUnionRecall(t *testing.T) {
	mt, q := recipeSource(t, 800)
	w := []float32{1, 1}
	truth := mt.GroundTruth(q, w, 20)
	naive := Naive(mt, q, w, 20)
	img := IterativeMerging(mt, q, w, 20, 2048)
	rNaive := metric.Recall(truth, naive)
	rIMG := metric.Recall(truth, img)
	if rNaive > rIMG {
		t.Fatalf("naive recall %.3f exceeds IMG %.3f", rNaive, rIMG)
	}
	if len(naive) != 20 {
		t.Fatalf("naive returned %d results", len(naive))
	}
}

func TestNRAUnitWeightsDefault(t *testing.T) {
	lists := [][]topk.Result{
		{{ID: 1, Distance: 0.1}, {ID: 2, Distance: 0.2}},
		{{ID: 2, Distance: 0.1}, {ID: 1, Distance: 0.3}},
	}
	res := NRA(lists, nil, 1)
	// exact scores: id1 = 0.4, id2 = 0.3 → id2 wins
	if len(res.Results) != 1 || res.Results[0].ID != 2 {
		t.Fatalf("NRA = %+v", res)
	}
	if !res.Determined {
		t.Fatal("complete 2-element lists should determine top-1")
	}
}

func TestNRAAccessesCounted(t *testing.T) {
	lists := [][]topk.Result{
		{{ID: 1, Distance: 0.1}},
		{{ID: 1, Distance: 0.2}},
	}
	res := NRA(lists, nil, 1)
	if res.Accesses != 2 {
		t.Fatalf("Accesses = %d, want 2", res.Accesses)
	}
}

func TestNRAEmptyLists(t *testing.T) {
	res := NRA([][]topk.Result{{}, {}}, nil, 5)
	if len(res.Results) != 0 || res.Determined {
		t.Fatalf("empty lists: %+v", res)
	}
}

func TestMultiTableErrors(t *testing.T) {
	if _, err := NewMultiTable(vec.L2, []int{2}, nil, nil); err == nil {
		t.Error("dims/fields mismatch accepted")
	}
	if _, err := NewMultiTable(vec.L2, []int{2, 2}, [][]float32{{1, 2}, {1, 2, 3, 4}}, nil); err == nil {
		t.Error("row mismatch accepted")
	}
	mt, err := NewMultiTable(vec.L2, []int{2}, [][]float32{{1, 2, 3, 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.BuildIndex("NOPE", nil); err == nil {
		t.Error("unknown index accepted")
	}
	if mt.Fields() != 1 {
		t.Error("Fields wrong")
	}
}
