package query

import (
	"testing"

	"vectordb/internal/dataset"
	"vectordb/internal/metric"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

func TestStandardNRAMatchesRoundNRA(t *testing.T) {
	// Same inputs → same top-k; the variants differ only in bookkeeping
	// schedule (per-access vs per-round).
	mv := dataset.RecipeLike(400, []int{8, 8}, 31)
	mt, err := NewMultiTable(vec.L2, mv.Dims, mv.Fields, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := [][]float32{
		append([]float32(nil), mv.Field(0, 3)...),
		append([]float32(nil), mv.Field(1, 3)...),
	}
	lists := make([][]topk.Result, 2)
	for f := range lists {
		lists[f] = mt.FieldQuery(f, q[f], 400)
	}
	w := []float32{1, 2}
	a := NRA(lists, w, 10)
	b := StandardNRA(lists, w, 10)
	if a.Determined != b.Determined {
		t.Fatalf("Determined: %v vs %v", a.Determined, b.Determined)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i].ID != b.Results[i].ID {
			t.Fatalf("rank %d: %d vs %d", i, a.Results[i].ID, b.Results[i].ID)
		}
	}
	truth := mt.GroundTruth(q, w, 10)
	if r := metric.Recall(truth, b.Results); r < 0.999 {
		t.Fatalf("StandardNRA recall %.3f over complete lists", r)
	}
}

func TestStandardNRAEarlyStopUsesFewerAccesses(t *testing.T) {
	// Per-access checking must stop no later than the depth the round
	// variant needs (it checks more often).
	mv := dataset.RecipeLike(600, []int{8, 8}, 32)
	mt, err := NewMultiTable(vec.L2, mv.Dims, mv.Fields, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := [][]float32{
		append([]float32(nil), mv.Field(0, 7)...),
		append([]float32(nil), mv.Field(1, 7)...),
	}
	lists := make([][]topk.Result, 2)
	for f := range lists {
		lists[f] = mt.FieldQuery(f, q[f], 600)
	}
	a := NRA(lists, nil, 5)
	b := StandardNRA(lists, nil, 5)
	if !a.Determined || !b.Determined {
		t.Skip("workload did not determine; nothing to compare")
	}
	if b.Accesses > a.Accesses {
		t.Fatalf("standard NRA used %d accesses, round NRA %d", b.Accesses, a.Accesses)
	}
}

func TestStandardNRAEmptyAndBounded(t *testing.T) {
	res := StandardNRA([][]topk.Result{{}, {}}, nil, 3)
	if res.Determined || len(res.Results) != 0 {
		t.Fatalf("empty lists: %+v", res)
	}
	lists := [][]topk.Result{
		{{ID: 1, Distance: 0.1}, {ID: 2, Distance: 0.5}},
		{{ID: 2, Distance: 0.2}, {ID: 1, Distance: 0.4}},
	}
	res = StandardNRA(lists, nil, 1)
	if len(res.Results) != 1 {
		t.Fatalf("results: %+v", res)
	}
	// exact: id1 = 0.5, id2 = 0.7
	if res.Results[0].ID != 1 {
		t.Fatalf("top-1 = %d, want 1", res.Results[0].ID)
	}
}
