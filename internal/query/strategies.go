package query

import (
	"strconv"

	"vectordb/internal/obs"
	"vectordb/internal/topk"
)

// Strategy names, as in Fig. 4.
const (
	StratA = "A" // attribute-first-vector-full-scan
	StratB = "B" // attribute-first-vector-search
	StratC = "C" // vector-first-attribute-full-scan
	StratD = "D" // cost-based (AnalyticDB-V)
	StratE = "E" // partition-based (Milvus)
)

// Theta is the over-fetch factor θ of strategy C: the vector search returns
// θ·k candidates so that k survive attribute verification (θ = 1.1 in the
// paper's experiments; this implementation retries with a doubled factor
// when verification underfills).
const Theta = 1.1

// StrategyA: attribute-first-vector-full-scan. The attribute constraint is
// resolved through the sorted column (binary search + skip pointers), then
// every qualifying entity is compared against the query vector. Exact.
func StrategyA(s Source, rc RangeCond, vc VecCond) []topk.Result {
	vc.Trace.Annotate("filter_strategy", StratA)
	filter := vc.Trace.StartSpan("attr_filter")
	rows := s.RangeRows(rc.Attr, rc.Lo, rc.Hi)
	filter.AnnotateInt("rows", int64(len(rows)))
	filter.End()
	scan := vc.Trace.StartSpan("exact_scan")
	defer scan.End()
	h := topk.New(vc.K)
	for i, id := range rows {
		// Cancellation point: the qualifying set can span the whole
		// collection, so a dead query must not finish the scan.
		if i&255 == 0 && vc.cancelled() {
			break
		}
		if d, ok := s.DistanceByID(vc.Field, vc.Query, id); ok {
			h.Push(id, d)
		}
	}
	return h.Results()
}

// StrategyB: attribute-first-vector-search. The attribute constraint
// produces a bitmap of qualifying IDs; normal vector query processing runs
// with the bitmap tested on every encountered vector. Sources supporting
// pushdown compile the constraint to per-segment bitsets instead, evaluated
// beneath the batch kernels; plain sources keep the map-based path.
func StrategyB(s Source, rc RangeCond, vc VecCond) []topk.Result {
	vc.Trace.Annotate("filter_strategy", StratB)
	if ps, ok := s.(PushdownSource); ok {
		if pf, ok := ps.CompileRange(rc.Attr, rc.Lo, rc.Hi); ok {
			defer pf.Release()
			filter := vc.Trace.StartSpan("attr_filter")
			filter.AnnotateInt("rows", int64(pf.Matched))
			filter.End()
			AnnotatePushed(vc.Trace, pf)
			if pf.Matched == 0 {
				return nil
			}
			return ps.VectorQueryPushed(vc.Field, vc.Query, vc.K, vc.Nprobe, pf)
		}
	}
	filter := vc.Trace.StartSpan("attr_filter")
	rows := s.RangeRows(rc.Attr, rc.Lo, rc.Hi)
	bitmap := make(map[int64]struct{}, len(rows))
	for _, id := range rows {
		bitmap[id] = struct{}{}
	}
	filter.AnnotateInt("rows", int64(len(bitmap)))
	filter.End()
	if len(bitmap) == 0 {
		return nil
	}
	return s.VectorQuery(vc.Field, vc.Query, vc.K, vc.Nprobe, func(id int64) bool {
		_, ok := bitmap[id]
		return ok
	})
}

// AnnotatePushed records the pushed filter's selectivity and evaluation
// mode on the trace, so cost-based decisions are auditable afterwards.
func AnnotatePushed(tr *obs.Trace, pf *PushedFilter) {
	tr.Annotate("filter_mode", pf.Mode)
	tr.Annotate("filter_selectivity", strconv.FormatFloat(pf.Selectivity(), 'f', 4, 64))
}

// StrategyC: vector-first-attribute-full-scan. Vector query processing
// fetches θ·k candidates; the attribute constraint is verified afterwards.
// If fewer than k survive, the fetch factor doubles (up to the full data
// size) — the paper's "to make sure there are k final results".
func StrategyC(s Source, rc RangeCond, vc VecCond) []topk.Result {
	vc.Trace.Annotate("filter_strategy", StratC)
	fetch := int(float64(vc.K)*Theta + 0.5)
	if fetch < vc.K {
		fetch = vc.K
	}
	total := s.TotalRows()
	for {
		if vc.cancelled() {
			return nil
		}
		vec := vc.Trace.StartSpan("vector_first")
		vec.AnnotateInt("fetch", int64(fetch))
		cands := s.VectorQuery(vc.Field, vc.Query, fetch, vc.Nprobe, nil)
		vec.End()
		verify := vc.Trace.StartSpan("verify")
		h := topk.New(vc.K)
		for _, c := range cands {
			v, ok := s.AttrValue(rc.Attr, c.ID)
			if !ok || v < rc.Lo || v > rc.Hi {
				continue
			}
			h.Push(c.ID, c.Distance)
		}
		verify.AnnotateInt("candidates", int64(len(cands)))
		verify.AnnotateInt("passed", int64(h.Len()))
		verify.End()
		if h.Len() >= vc.K || fetch >= total || len(cands) < fetch {
			return h.Results()
		}
		fetch *= 2
		if fetch > total {
			fetch = total
		}
	}
}

// CostModel prices the three base strategies in distance-computation units
// so strategy D can choose among them. The constants reflect the structural
// costs: A scans exactly the qualifying rows; B runs an index probe over the
// whole collection restricted by a bitmap; C runs an index probe and
// verifies θ·k candidates, but only works when enough candidates pass.
type CostModel struct {
	// ProbeFraction approximates the fraction of the collection an index
	// probe touches (nprobe/nlist for IVF); default 0.08.
	ProbeFraction float64
}

// DefaultCostModel mirrors the experiment configuration.
func DefaultCostModel() CostModel { return CostModel{ProbeFraction: 0.08} }

// Choose picks the cheapest feasible strategy for the given conditions.
func (m CostModel) Choose(s Source, rc RangeCond, vc VecCond) string {
	if m.ProbeFraction <= 0 {
		m.ProbeFraction = 0.08
	}
	total := s.TotalRows()
	if total == 0 {
		return StratA
	}
	matched := s.CountRange(rc.Attr, rc.Lo, rc.Hi)
	passRate := float64(matched) / float64(total)

	costA := float64(matched)
	probe := m.ProbeFraction * float64(total)
	costB := probe + 0.1*float64(matched) // probe + bitmap build/testing
	costC := probe + float64(vc.K)*Theta
	// C is only feasible when enough of the candidate stream passes the
	// attribute check; otherwise it degenerates into repeated re-fetches.
	cFeasible := passRate >= 1/Theta*0.5

	best, bestCost := StratA, costA
	if costB < bestCost {
		best, bestCost = StratB, costB
	}
	if cFeasible && costC < bestCost {
		best = StratC
	}
	return best
}

// StrategyD: cost-based selection among A, B and C (AnalyticDB-V's
// approach). Returns the results and the strategy chosen.
func StrategyD(s Source, rc RangeCond, vc VecCond, m CostModel) ([]topk.Result, string) {
	plan := vc.Trace.StartSpan("filter_plan")
	chosen := m.Choose(s, rc, vc)
	plan.Annotate("chosen", chosen)
	plan.End()
	switch chosen {
	case StratA:
		return StrategyA(s, rc, vc), StratA
	case StratC:
		return StrategyC(s, rc, vc), StratC
	default:
		return StrategyB(s, rc, vc), StratB
	}
}

// Partition is a Source covering one attribute range of a partitioned
// dataset (strategy E).
type Partition interface {
	Source
	// AttrBounds returns the partition's [min, max] on the partitioning
	// attribute.
	AttrBounds(attr int) (lo, hi int64, ok bool)
}

// StrategyE: Milvus's partition-based filtering. The dataset is partitioned
// offline on the frequently-searched attribute; a query touches only the
// partitions whose range overlaps the predicate, and partitions fully
// covered by the predicate skip the attribute check entirely — pure vector
// query processing.
func StrategyE(parts []Partition, rc RangeCond, vc VecCond, m CostModel) []topk.Result {
	// The caller's probe budget is sized for the whole dataset; partitions
	// are ~ρ× smaller, so each picks its own budget (0 = index default /
	// structural minimum) — otherwise every partition over-scans by ρ×.
	vc.Trace.Annotate("filter_strategy", StratE)
	pvc := vc
	pvc.Nprobe = 0
	// Per-partition delegation runs untraced: the inner strategies would
	// otherwise overwrite filter_strategy=E with their own letter. Each
	// partition instead gets a span recording what happened to it.
	pvc.Trace = nil
	lists := make([][]topk.Result, 0, len(parts))
	for i, p := range parts {
		if vc.cancelled() {
			break
		}
		span := vc.Trace.StartSpan("partition")
		span.AnnotateInt("partition", int64(i))
		lo, hi, ok := p.AttrBounds(rc.Attr)
		if !ok {
			span.Annotate("action", "no_bounds")
			span.End()
			continue
		}
		if hi < rc.Lo || lo > rc.Hi {
			span.Annotate("action", "pruned")
			span.End()
			continue // no overlap: pruned
		}
		if lo >= rc.Lo && hi <= rc.Hi {
			// Fully covered: every vector qualifies, no attribute check.
			span.Annotate("action", "full_vector")
			lists = append(lists, p.VectorQuery(pvc.Field, pvc.Query, pvc.K, pvc.Nprobe, nil))
			span.End()
			continue
		}
		res, strat := StrategyD(p, rc, pvc, m)
		span.Annotate("action", "delegated")
		span.Annotate("strategy", strat)
		lists = append(lists, res)
		span.End()
	}
	merge := vc.Trace.StartSpan("topk_merge")
	defer merge.End()
	return topk.Merge(vc.K, lists...)
}

// FreqTracker maintains the per-attribute query frequencies strategy E uses
// to decide which attribute to partition on ("we maintain the frequency of
// each searched attribute in a hash table").
type FreqTracker struct {
	counts map[int]int64
}

// NewFreqTracker creates an empty tracker.
func NewFreqTracker() *FreqTracker { return &FreqTracker{counts: map[int]int64{}} }

// Touch records that a query referenced attr.
func (t *FreqTracker) Touch(attr int) { t.counts[attr]++ }

// Hottest returns the most-queried attribute (ok=false when none recorded).
func (t *FreqTracker) Hottest() (attr int, ok bool) {
	var best int64 = -1
	for a, c := range t.counts {
		if c > best || (c == best && a < attr) {
			attr, best = a, c
		}
	}
	return attr, best >= 0
}

// Count reports the recorded frequency of attr.
func (t *FreqTracker) Count(attr int) int64 { return t.counts[attr] }
