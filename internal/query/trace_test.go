package query

import (
	"testing"

	"vectordb/internal/dataset"
	"vectordb/internal/obs"
)

// TestStrategiesRecordTrace verifies that every filtering strategy stamps
// the trace with its identity and per-phase spans: the exported
// TraceSummary is the contract the slow-query log and /debug/queries rely
// on to explain which of the paper's plans (Fig. 4) served a query.
func TestStrategiesRecordTrace(t *testing.T) {
	tab := filterTable(t, 2000, "IVF_FLAT")
	q := dataset.Queries(&dataset.Dataset{Dim: 128, N: 2000, Data: tab.data}, 1, 7)
	rc := RangeCond{Attr: 0, Lo: 2000, Hi: 7000}

	cases := []struct {
		name      string
		run       func(vc VecCond)
		strategy  string // expected filter_strategy attr ("" = any of A/B/C)
		wantSpans []string
	}{
		{
			name:      "A",
			run:       func(vc VecCond) { StrategyA(tab, rc, vc) },
			strategy:  StratA,
			wantSpans: []string{"attr_filter", "exact_scan"},
		},
		{
			name:      "B",
			run:       func(vc VecCond) { StrategyB(tab, rc, vc) },
			strategy:  StratB,
			wantSpans: []string{"attr_filter"},
		},
		{
			name:      "C",
			run:       func(vc VecCond) { StrategyC(tab, rc, vc) },
			strategy:  StratC,
			wantSpans: []string{"vector_first", "verify"},
		},
		{
			name:      "D",
			run:       func(vc VecCond) { StrategyD(tab, rc, vc, DefaultCostModel()) },
			strategy:  "", // D delegates; the chosen letter is on the plan span
			wantSpans: []string{"filter_plan"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := obs.NewTrace("filtered")
			vc := VecCond{Field: 0, Query: q, K: 10, Trace: tr}
			tc.run(vc)
			tr.Finish()
			sum := tr.Summary()

			got, _ := sum.Attr("filter_strategy")
			if tc.strategy != "" && got != tc.strategy {
				t.Errorf("filter_strategy = %q, want %q", got, tc.strategy)
			}
			if tc.strategy == "" && got != StratA && got != StratB && got != StratC {
				t.Errorf("filter_strategy = %q, want one of A/B/C", got)
			}
			stages := map[string]bool{}
			for _, s := range sum.Stages() {
				stages[s] = true
			}
			for _, want := range tc.wantSpans {
				if !stages[want] {
					t.Errorf("missing span %q; have %v", want, sum.Stages())
				}
			}
		})
	}

	// D's plan span must carry the chosen strategy, matching what it ran.
	t.Run("D-chosen", func(t *testing.T) {
		tr := obs.NewTrace("filtered")
		vc := VecCond{Field: 0, Query: q, K: 10, Trace: tr}
		_, chosen := StrategyD(tab, rc, vc, DefaultCostModel())
		tr.Finish()
		sum := tr.Summary()
		var planChosen string
		for _, sp := range sum.Spans {
			if sp.Name != "filter_plan" {
				continue
			}
			for _, kv := range sp.Attrs {
				if kv.Key == "chosen" {
					planChosen = kv.Value
				}
			}
		}
		if planChosen != chosen {
			t.Errorf("filter_plan chosen = %q, but D ran %q", planChosen, chosen)
		}
		if got, _ := sum.Attr("filter_strategy"); got != chosen {
			t.Errorf("filter_strategy = %q, want delegate %q", got, chosen)
		}
	})
}

// TestStrategyETrace checks E's trace shape: the strategy letter stays E
// (inner delegation must not overwrite it), and every partition gets a
// span recording whether it was pruned, fully covered, or delegated.
func TestStrategyETrace(t *testing.T) {
	tab := filterTable(t, 3000, "")
	parts, err := tab.PartitionByAttr(0, 6, "FLAT", nil)
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.Queries(&dataset.Dataset{Dim: 128, N: 3000, Data: tab.data}, 1, 8)

	// A mid-range predicate: some partitions pruned, some fully covered,
	// the two boundary ones delegated.
	lo, _, _ := parts[1].AttrBounds(0)
	_, hi, _ := parts[4].AttrBounds(0)
	rc := RangeCond{Attr: 0, Lo: lo + 1, Hi: hi - 1}

	tr := obs.NewTrace("filtered")
	vc := VecCond{Field: 0, Query: q, K: 10, Trace: tr}
	StrategyE(Partitions(parts), rc, vc, DefaultCostModel())
	tr.Finish()
	sum := tr.Summary()

	if got, _ := sum.Attr("filter_strategy"); got != StratE {
		t.Fatalf("filter_strategy = %q, want E (inner strategies must not overwrite it)", got)
	}
	actions := map[string]int{}
	partSpans := 0
	for _, sp := range sum.Spans {
		if sp.Name != "partition" {
			continue
		}
		partSpans++
		for _, kv := range sp.Attrs {
			if kv.Key == "action" {
				actions[kv.Value]++
			}
		}
	}
	if partSpans != len(parts) {
		t.Fatalf("%d partition spans, want one per partition (%d)", partSpans, len(parts))
	}
	if actions["pruned"] == 0 {
		t.Errorf("no partition recorded as pruned; actions=%v", actions)
	}
	if actions["full_vector"] == 0 {
		t.Errorf("no partition recorded as fully covered; actions=%v", actions)
	}
	if actions["delegated"] == 0 {
		t.Errorf("no partition recorded as delegated; actions=%v", actions)
	}
	stages := sum.Stages()
	found := false
	for _, s := range stages {
		if s == "topk_merge" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing topk_merge span; stages=%v", stages)
	}
}
