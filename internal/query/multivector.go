package query

import (
	"context"
	"sort"

	"vectordb/internal/topk"
)

// Multi-vector query processing (Sec. 4.2): each entity carries µ vectors;
// a query finds the top-k entities by a monotone aggregation g over the
// per-field similarity functions. Distances follow the smaller-is-better
// convention, so the implemented aggregation is a weighted sum of per-field
// distances — monotone non-decreasing in each component, covering weighted
// sum / average of similarities in the paper's sense.

// aggregate computes Σ w_f · d_f.
func aggregate(weights, dists []float32) float32 {
	var s float32
	for i, d := range dists {
		s += weights[i] * d
	}
	return s
}

// unitWeights returns [1, 1, ...] when w is nil.
func unitWeights(w []float32, fields int) []float32 {
	if w != nil {
		return w
	}
	w = make([]float32, fields)
	for i := range w {
		w[i] = 1
	}
	return w
}

// exactScore computes the exact aggregated distance of an entity via random
// access to every field, reporting ok=false when the entity is missing.
func exactScore(ms MultiSource, queries [][]float32, weights []float32, id int64) (float32, bool) {
	var s float32
	for f := 0; f < ms.Fields(); f++ {
		d, ok := ms.FieldDistance(f, queries[f], id)
		if !ok {
			return 0, false
		}
		s += weights[f] * d
	}
	return s, true
}

// Naive is the widely-used baseline: an independent top-k query per field,
// then exact re-scoring of the candidate union. It misses entities that are
// good on aggregate but in no single field's top-k, which is why the paper
// measures recall as low as 0.1 for it.
func Naive(ms MultiSource, queries [][]float32, weights []float32, k int) []topk.Result {
	weights = unitWeights(weights, ms.Fields())
	seen := map[int64]struct{}{}
	for f := 0; f < ms.Fields(); f++ {
		for _, r := range ms.FieldQuery(f, queries[f], k) {
			seen[r.ID] = struct{}{}
		}
	}
	h := topk.New(k)
	for id := range seen {
		if s, ok := exactScore(ms, queries, weights, id); ok {
			h.Push(id, s)
		}
	}
	return h.Results()
}

// NRAResult is the outcome of one NRA pass.
type NRAResult struct {
	Results []topk.Result
	// Determined reports whether the top-k was fully determined (NRA's safe
	// stopping condition held before the lists were exhausted).
	Determined bool
	// Accesses counts sorted accesses consumed.
	Accesses int
}

// NRA runs Fagin's No-Random-Access algorithm over per-field result lists
// (each sorted ascending by distance). With distance aggregation the bounds
// are: an entity's best case uses the current list frontiers for unseen
// fields (no unseen distance can be smaller than the frontier); its score
// is exact once seen in every list. The algorithm stops when k exact scores
// are at most every other entity's best case — including the virtual
// never-seen entity whose best case is the sum of all frontiers.
//
// When the lists are exhausted first, Determined is false and the returned
// ranking falls back to best-case ordering, which is exactly why bounded
// NRA-x in Fig. 16 has low recall.
func NRA(lists [][]topk.Result, weights []float32, k int) NRAResult {
	nf := len(lists)
	weights = unitWeights(weights, nf)
	type state struct {
		partial float32
		mask    uint64
		seen    int
	}
	objs := map[int64]*state{}
	frontier := make([]float32, nf)
	depth := 0
	maxDepth := 0
	for _, l := range lists {
		if len(l) > maxDepth {
			maxDepth = len(l)
		}
	}
	accesses := 0

	bestCase := func(st *state) float32 {
		b := st.partial
		for f := 0; f < nf; f++ {
			if st.mask&(1<<uint(f)) == 0 {
				b += weights[f] * frontier[f]
			}
		}
		return b
	}

	checkStop := func() ([]topk.Result, bool) {
		// Gather exact-scored entities.
		var exact []topk.Result
		for id, st := range objs {
			if st.seen == nf {
				exact = append(exact, topk.Result{ID: id, Distance: st.partial})
			}
		}
		if len(exact) < k {
			return nil, false
		}
		sort.Slice(exact, func(i, j int) bool {
			if exact[i].Distance != exact[j].Distance {
				return exact[i].Distance < exact[j].Distance
			}
			return exact[i].ID < exact[j].ID
		})
		exact = exact[:k]
		tau := exact[k-1].Distance
		// Virtual unseen entity.
		var unseenBest float32
		for f := 0; f < nf; f++ {
			unseenBest += weights[f] * frontier[f]
		}
		if tau > unseenBest {
			return nil, false
		}
		inTop := map[int64]struct{}{}
		for _, e := range exact {
			inTop[e.ID] = struct{}{}
		}
		for id, st := range objs {
			if _, ok := inTop[id]; ok {
				continue
			}
			if bestCase(st) < tau {
				return nil, false
			}
		}
		return exact, true
	}

	// The stopping condition is evaluated at geometrically spaced depths
	// (and at exhaustion) rather than after every access: with distance
	// aggregation the bounds only tighten with depth, so a deferred check
	// is still sound, and skipping the O(|candidates|) rescan per access is
	// exactly the heap-maintenance saving iterative merging claims over
	// standard NRA (Sec. 4.2; compare StandardNRA).
	nextCheck := k
	for depth < maxDepth {
		for f := 0; f < nf; f++ {
			if depth >= len(lists[f]) {
				continue
			}
			r := lists[f][depth]
			accesses++
			frontier[f] = r.Distance
			st := objs[r.ID]
			if st == nil {
				st = &state{}
				objs[r.ID] = st
			}
			if st.mask&(1<<uint(f)) == 0 {
				st.mask |= 1 << uint(f)
				st.seen++
				st.partial += weights[f] * r.Distance
			}
		}
		depth++
		if depth >= nextCheck || depth == maxDepth {
			nextCheck *= 2
			if res, ok := checkStop(); ok {
				return NRAResult{Results: res, Determined: true, Accesses: accesses}
			}
		}
	}
	// Lists exhausted: best-effort ranking by best-case bound.
	all := make([]topk.Result, 0, len(objs))
	for id, st := range objs {
		all = append(all, topk.Result{ID: id, Distance: bestCase(st)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Distance != all[j].Distance {
			return all[i].Distance < all[j].Distance
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return NRAResult{Results: all, Determined: false, Accesses: accesses}
}

// BoundedNRA is the paper's NRA-x baseline: fetch the top-x results per
// field once and run NRA over those bounded lists.
func BoundedNRA(ms MultiSource, queries [][]float32, weights []float32, k, x int) NRAResult {
	lists := make([][]topk.Result, ms.Fields())
	for f := range lists {
		lists[f] = ms.FieldQuery(f, queries[f], x)
	}
	return NRA(lists, weights, k)
}

// IterativeMerging is Algorithm 2: issue a top-k′ query per field, run NRA
// over the lists; if the top-k is fully determined, stop; otherwise double
// k′ until the threshold. On fallback it returns the top-k of the candidate
// union ∪Rᵢ, scored exactly.
func IterativeMerging(ms MultiSource, queries [][]float32, weights []float32, k, threshold int) []topk.Result {
	//lint:allow ctxflow ctx-less compat wrapper: public API without a context anchors at Background
	return IterativeMergingCtx(context.Background(), ms, queries, weights, k, threshold)
}

// IterativeMergingCtx is IterativeMerging with a cancellation point before
// every doubling round and every per-field query: a cancelled query stops
// issuing sub-queries and returns nil (the caller inspects ctx.Err()).
func IterativeMergingCtx(ctx context.Context, ms MultiSource, queries [][]float32, weights []float32, k, threshold int) []topk.Result {
	weights = unitWeights(weights, ms.Fields())
	kp := k
	if threshold < k {
		threshold = k
	}
	fieldQueries := func(kp int) [][]topk.Result {
		lists := make([][]topk.Result, ms.Fields())
		for f := range lists {
			if ctx.Err() != nil {
				return nil
			}
			lists[f] = ms.FieldQuery(f, queries[f], kp)
		}
		return lists
	}
	var lists [][]topk.Result
	for kp < threshold {
		if lists = fieldQueries(kp); lists == nil {
			return nil
		}
		if res := NRA(lists, weights, k); res.Determined {
			return res.Results
		}
		kp *= 2
	}
	// return top-k results from ∪Rᵢ (line 9).
	if lists == nil {
		if lists = fieldQueries(kp); lists == nil {
			return nil
		}
	}
	seen := map[int64]struct{}{}
	for _, l := range lists {
		for _, r := range l {
			seen[r.ID] = struct{}{}
		}
	}
	h := topk.New(k)
	for id := range seen {
		if ctx.Err() != nil {
			return nil
		}
		if s, ok := exactScore(ms, queries, weights, id); ok {
			h.Push(id, s)
		}
	}
	return h.Results()
}
