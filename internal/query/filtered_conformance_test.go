package query

import (
	"strconv"
	"testing"

	"vectordb/internal/dataset"
	_ "vectordb/internal/index/all"
	"vectordb/internal/obs"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// inRange reports whether id satisfies rc on tab — the zero-violation
// invariant every strategy must uphold.
func inRange(tab *Table, rc RangeCond, id int64) bool {
	v, ok := tab.AttrValue(rc.Attr, id)
	return ok && v >= rc.Lo && v <= rc.Hi
}

// strategyMatrix runs strategies A/B/C/D/E for one table+range and returns
// the results keyed by strategy letter. E runs over a fresh partitioning.
func strategyMatrix(t *testing.T, tab *Table, parts []Partition, rc RangeCond, vc VecCond) map[string][]topk.Result {
	t.Helper()
	out := map[string][]topk.Result{
		"A": StrategyA(tab, rc, vc),
		"B": StrategyB(tab, rc, vc),
		"C": StrategyC(tab, rc, vc),
	}
	resD, _ := StrategyD(tab, rc, vc, DefaultCostModel())
	out["D"] = resD
	if parts != nil {
		out["E"] = StrategyE(parts, rc, vc, DefaultCostModel())
	}
	return out
}

// deepFilterTable builds a table over uniform (DeepLike) vectors, where
// graph indexes navigate well, with the same uniform attribute in
// [0, 10000) the Fig. 14 harness uses.
func deepFilterTable(t testing.TB, n int, indexType string, params map[string]string) *Table {
	t.Helper()
	d := dataset.DeepLike(n, 1)
	attrs := dataset.Attributes(n, 10000, 2)
	tab, err := NewTable(vec.L2, d.Dim, d.Data, nil, [][]int64{attrs})
	if err != nil {
		t.Fatal(err)
	}
	if indexType != "" {
		if err := tab.BuildIndex(indexType, params); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// strategyFloor is the mean-recall floor for one strategy on one index
// type. Strategy A never touches the index, so it is exact everywhere; B/C/D
// on FLAT or full-probe IVF are exact; graph indexes carry an approximate
// floor (RNSG's bootstrap graph is weaker than HNSW's at small pools); E
// delegates to per-partition indexes probing their structural minimum, so
// it gets the loosest bound.
func strategyFloor(indexType, strat string) float64 {
	if strat == "A" {
		return 0.999
	}
	if strat == "E" {
		// E prunes to overlapping partitions, each probing its structural
		// minimum — the paper's deliberate recall-for-speed trade.
		return 0.60
	}
	switch indexType {
	case "", "IVF_FLAT":
		return 0.999
	case "HNSW":
		return 0.85
	default: // RNSG
		return 0.70
	}
}

// buildParamsFor returns per-index build parameters for the strategy
// matrix: full-size kNN bootstrap for RNSG (its default pool is tuned for
// larger collections), kmeans budgets for IVF.
func buildParamsFor(indexType string) map[string]string {
	switch indexType {
	case "IVF_FLAT":
		return map[string]string{"nlist": "32", "iter": "4"}
	case "RNSG":
		return map[string]string{"knn": "60", "l": "300", "r": "48"}
	}
	return nil
}

// TestStrategyFilteredConformance: every strategy × index type against the
// filter-then-scan oracle over a Table. Two contracts: no strategy ever
// returns a filtered-out ID (hard invariant, any index, any query), and
// mean recall over the query set clears a per-strategy/per-index floor.
func TestStrategyFilteredConformance(t *testing.T) {
	const n, k, nq = 2000, 10, 5
	ranges := [][2]int64{
		{0, 9999},    // ~100%
		{0, 4999},    // ~50%
		{1000, 1999}, // ~10%
		{400, 499},   // ~1%
	}
	for _, indexType := range []string{"", "IVF_FLAT", "HNSW", "RNSG"} {
		tab := deepFilterTable(t, n, indexType, buildParamsFor(indexType))
		parts, err := tab.PartitionByAttr(0, 4, indexType, buildParamsFor(indexType))
		if err != nil {
			t.Fatal(err)
		}
		d := dataset.DeepLike(n, 1)
		qs := dataset.Queries(d, nq, 9)
		for _, rng := range ranges {
			rc := RangeCond{Attr: 0, Lo: rng[0], Hi: rng[1]}
			recallSum := map[string]float64{}
			for qi := 0; qi < nq; qi++ {
				q := qs[qi*d.Dim : (qi+1)*d.Dim]
				// Full probe on IVF (nprobe = nlist) so scan pushdown is exact.
				vc := VecCond{Field: 0, Query: q, K: k, Nprobe: 32}
				want := exactFiltered(tab, rc, vc)
				for strat, got := range strategyMatrix(t, tab, Partitions(parts), rc, vc) {
					for i, r := range got {
						if !inRange(tab, rc, r.ID) {
							t.Fatalf("%s/%s range %v: filtered-out id %d returned", indexType, strat, rng, r.ID)
						}
						if i > 0 && r.Distance < got[i-1].Distance {
							t.Fatalf("%s/%s range %v: unsorted at %d", indexType, strat, rng, i)
						}
					}
					if len(got) > len(want) {
						t.Fatalf("%s/%s range %v: %d results, oracle has %d", indexType, strat, rng, len(got), len(want))
					}
					recallSum[strat] += recallOf(want, got)
				}
			}
			for strat, sum := range recallSum {
				floor := strategyFloor(indexType, strat)
				if r := sum / nq; r < floor {
					t.Errorf("%s/%s range %v: mean recall %.3f < %.3f", indexType, strat, rng, r, floor)
				}
			}
		}
	}
}

// TestSelectivitySweepModes sweeps selectivity 0.1%–99% through strategy B
// on a pushdown Table and asserts the dense/sparse crossover is what the
// trace annotations claim: filter_mode=sparse below the 10% threshold,
// dense at or above it, and filter_selectivity within rounding of the true
// match fraction. Results stay exact throughout (FLAT index).
func TestSelectivitySweepModes(t *testing.T) {
	const n, k = 4000, 10
	tab := filterTable(t, n, "")
	q := dataset.Queries(&dataset.Dataset{Dim: 128, N: n, Data: tab.data}, 1, 11)
	for _, sel := range []float64{0.001, 0.005, 0.01, 0.05, 0.09, 0.12, 0.25, 0.50, 0.90, 0.99} {
		hi := int64(sel*10000) - 1
		if hi < 0 {
			hi = 0
		}
		rc := RangeCond{Attr: 0, Lo: 0, Hi: hi}
		tr := obs.NewTrace("sweep")
		vc := VecCond{Field: 0, Query: q, K: k, Trace: tr}
		got := StrategyB(tab, rc, vc)
		want := exactFiltered(tab, rc, vc)
		if r := recallOf(want, got); r < 0.999 {
			t.Errorf("sel=%.3f: recall %.3f", sel, r)
		}
		matched := tab.CountRange(0, rc.Lo, rc.Hi)
		trueSel := float64(matched) / float64(n)
		wantMode := "sparse"
		if trueSel >= 0.10 {
			wantMode = "dense"
		}
		if mode, ok := tr.Attr("filter_mode"); !ok || mode != wantMode {
			t.Errorf("sel=%.3f (true %.4f): filter_mode=%q, want %q", sel, trueSel, mode, wantMode)
		}
		selStr, ok := tr.Attr("filter_selectivity")
		if !ok {
			t.Fatalf("sel=%.3f: filter_selectivity missing", sel)
		}
		gotSel, err := strconv.ParseFloat(selStr, 64)
		if err != nil || gotSel < trueSel-0.0001 || gotSel > trueSel+0.0001 {
			t.Errorf("sel=%.3f: filter_selectivity=%q, true %.4f", sel, selStr, trueSel)
		}
		if strat, _ := tr.Attr("filter_strategy"); strat != StratB {
			t.Errorf("sel=%.3f: filter_strategy=%q", sel, strat)
		}
	}
}

// TestSelectivitySweepGraphMode: on a graph index the pushed filter is
// evaluated by filtered traversal, and the trace must say so.
func TestSelectivitySweepGraphMode(t *testing.T) {
	tab := filterTable(t, 1000, "HNSW")
	q := dataset.Queries(&dataset.Dataset{Dim: 128, N: 1000, Data: tab.data}, 1, 12)
	tr := obs.NewTrace("sweep")
	rc := RangeCond{Attr: 0, Lo: 0, Hi: 4999}
	got := StrategyB(tab, rc, vecCondTraced(q, 10, tr))
	if len(got) == 0 {
		t.Fatal("no results")
	}
	for _, r := range got {
		if !inRange(tab, rc, r.ID) {
			t.Fatalf("graph mode returned filtered-out id %d", r.ID)
		}
	}
	if mode, _ := tr.Attr("filter_mode"); mode != "graph" {
		t.Errorf("filter_mode=%q on HNSW, want graph", mode)
	}
}

func vecCondTraced(q []float32, k int, tr *obs.Trace) VecCond {
	return VecCond{Field: 0, Query: q, K: k, Trace: tr}
}

// TestStrategyBPushedAllocs pins strategy B's per-query allocation count on
// a pushdown source. The legacy path allocated a map[int64]struct{} with one
// entry per qualifying row — O(matched) allocations; the pooled-bitset path
// must stay a small constant independent of how many rows match.
func TestStrategyBPushedAllocs(t *testing.T) {
	tab := filterTable(t, 4096, "")
	q := dataset.Queries(&dataset.Dataset{Dim: 128, N: 4096, Data: tab.data}, 1, 13)
	run := func(rc RangeCond) float64 {
		vc := VecCond{Field: 0, Query: q, K: 10}
		StrategyB(tab, rc, vc) // warm the bitset pool
		return testing.AllocsPerRun(20, func() {
			StrategyB(tab, rc, vc)
		})
	}
	narrow := run(RangeCond{Attr: 0, Lo: 0, Hi: 99}) // ~1% matched
	wide := run(RangeCond{Attr: 0, Lo: 0, Hi: 4999}) // ~50% matched
	full := run(RangeCond{Attr: 0, Lo: 0, Hi: 9999}) // 100% matched
	const ceiling = 24                               // small constant, not O(matched)
	for _, c := range []struct {
		name   string
		allocs float64
	}{{"narrow", narrow}, {"wide", wide}, {"full", full}} {
		if c.allocs > ceiling {
			t.Errorf("%s: %.0f allocs/query, want ≤ %d", c.name, c.allocs, ceiling)
		}
	}
	// ~2000 extra matched rows must not show up as extra allocations.
	if wide > narrow+8 || full > narrow+8 {
		t.Errorf("allocs scale with matched rows: narrow=%.0f wide=%.0f full=%.0f", narrow, wide, full)
	}
}
