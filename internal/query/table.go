package query

import (
	"fmt"
	"sort"

	"vectordb/internal/bitset"
	"vectordb/internal/colstore"
	"vectordb/internal/index"
	"vectordb/internal/index/flat"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// Table is a self-contained in-memory Source: one vector field, any number
// of attributes, an optional vector index. The experiment harness (Figs. 14
// and 15) and strategy E's partitions are built from Tables; the same
// algorithms also run over LSM collections through the core adapter.
type Table struct {
	dim    int
	metric vec.Metric
	data   []float32
	ids    []int64
	pos    map[int64]int32
	attrs  [][]int64 // raw, row-aligned
	cols   []*colstore.AttributeColumn
	idx    index.Index
}

var _ PushdownSource = (*Table)(nil)
var _ Partition = (*Table)(nil)

// NewTable builds a table over flat row-major vectors. attrs[a][i] is
// attribute a of row i; ids nil means positions.
func NewTable(metric vec.Metric, dim int, data []float32, ids []int64, attrs [][]int64) (*Table, error) {
	n, err := index.ValidateBuildInput(data, ids, dim)
	if err != nil {
		return nil, err
	}
	ids = index.IDsOrDefault(ids, n)
	t := &Table{dim: dim, metric: metric, data: data, ids: ids, attrs: attrs}
	t.pos = make(map[int64]int32, n)
	for i, id := range ids {
		t.pos[id] = int32(i)
	}
	for a, raw := range attrs {
		if len(raw) != n {
			return nil, fmt.Errorf("query: attr %d has %d values for %d rows", a, len(raw), n)
		}
		t.cols = append(t.cols, colstore.BuildAttributeColumn(raw, ids))
	}
	// Default index: exact scan.
	fi, err := flat.NewBuilder(metric, dim).Build(data, ids)
	if err != nil {
		return nil, err
	}
	t.idx = fi
	return t, nil
}

// BuildIndex replaces the table's vector index.
func (t *Table) BuildIndex(indexType string, params map[string]string) error {
	b, err := index.NewBuilder(indexType, t.metric, t.dim, params)
	if err != nil {
		return err
	}
	idx, err := b.Build(t.data, t.ids)
	if err != nil {
		return err
	}
	t.idx = idx
	return nil
}

// Index returns the current vector index.
func (t *Table) Index() index.Index { return t.idx }

// TotalRows implements Source.
func (t *Table) TotalRows() int { return len(t.ids) }

// CountRange implements Source.
func (t *Table) CountRange(attr int, lo, hi int64) int { return t.cols[attr].CountRange(lo, hi) }

// RangeRows implements Source.
func (t *Table) RangeRows(attr int, lo, hi int64) []int64 { return t.cols[attr].RangeRows(lo, hi) }

// AttrValue implements Source.
func (t *Table) AttrValue(attr int, id int64) (int64, bool) {
	p, ok := t.pos[id]
	if !ok {
		return 0, false
	}
	return t.attrs[attr][p], true
}

// VectorQuery implements Source.
func (t *Table) VectorQuery(field int, q []float32, k, nprobe int, filter func(int64) bool) []topk.Result {
	if nprobe <= 0 {
		nprobe = t.EffectiveNprobe(k)
	}
	return t.idx.Search(q, index.SearchParams{K: k, Nprobe: nprobe, Filter: filter})
}

// graphIndex reports whether an index applies pushed bitsets by filtered
// traversal rather than by scan pushdown (the filter_mode=graph regime).
func graphIndex(idx index.Index) bool {
	switch idx.Name() {
	case "HNSW", "RNSG":
		return true
	}
	return false
}

// pushedMode names how idx will evaluate a filter of the given selectivity.
func pushedMode(idx index.Index, selectivity float64) string {
	if graphIndex(idx) {
		return "graph"
	}
	return index.FilterModeName(selectivity)
}

// CompileRange implements PushdownSource: the attribute constraint becomes
// one pooled bitset over build positions, filled from the sorted column's
// zone-map walk when selective and from the raw row-aligned array when the
// range covers most of the table (cheaper than per-row PosOf resolution).
func (t *Table) CompileRange(attr int, lo, hi int64) (*PushedFilter, bool) {
	if attr < 0 || attr >= len(t.cols) {
		return nil, false
	}
	n := len(t.ids)
	bits := bitset.Get(n)
	matched := t.cols[attr].CountRange(lo, hi)
	if matched*8 >= n {
		// Word-at-a-time branchless fill: on a wide range roughly half the
		// rows miss, so a per-row `if` pays a branch mispredict per miss
		// (~9ns/row measured); comparison bits OR'd into a word cost none.
		// XOR of the sign bit maps signed order onto unsigned, avoiding
		// subtraction overflow for any bounds.
		vals := t.attrs[attr]
		const sign = uint64(1) << 63
		ulo, uhi := uint64(lo)^sign, uint64(hi)^sign
		for w0 := 0; w0 < n; w0 += 64 {
			end := w0 + 64
			if end > n {
				end = n
			}
			var word uint64
			for j, v := range vals[w0:end] {
				uv := uint64(v) ^ sign
				word |= (b2u(uv >= ulo) & b2u(uv <= uhi)) << uint(j)
			}
			bits.SetWord(w0/64, word)
		}
	} else {
		t.cols[attr].RangeEach(lo, hi, func(row int64) {
			if p, ok := t.pos[row]; ok {
				bits.Set(int(p))
			}
		})
	}
	sel := 0.0
	if n > 0 {
		sel = float64(matched) / float64(n)
	}
	return NewPushedFilter(matched, n, pushedMode(t.idx, sel), bits, func() { bitset.Put(bits) }), true
}

// b2u compiles to a flagless SETcc, the building block of the branchless
// word fill.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// VectorQueryPushed implements PushdownSource.
func (t *Table) VectorQueryPushed(field int, q []float32, k, nprobe int, pf *PushedFilter) []topk.Result {
	bits, ok := pf.Handle().(*bitset.Bitset)
	if !ok {
		return t.VectorQuery(field, q, k, nprobe, nil)
	}
	if nprobe <= 0 {
		nprobe = t.EffectiveNprobe(k)
	}
	p := index.SearchParams{K: k, Nprobe: nprobe, Bits: bits}
	if graphIndex(t.idx) && pf.Matched > 0 && pf.Total > 0 {
		// Filtered graph traversal visits ~1/selectivity nodes per survivor:
		// widen the beam so the pool still holds enough qualifying
		// candidates (skip-but-expand keeps navigating through filtered-out
		// nodes, but only survivors occupy result slots).
		boost := 4 * k * pf.Total / pf.Matched
		if boost > pf.Total {
			boost = pf.Total
		}
		if boost > 64 {
			p.Ef, p.SearchL = boost, boost
		}
	}
	return t.idx.Search(q, p)
}

// EffectiveNprobe returns the probe count a top-k query structurally needs
// on an IVF index: at least enough buckets to hold ~1.3·k candidates —
// retrieving deep result lists is intrinsically more expensive, which is
// what makes bounded-NRA baselines slow (Sec. 4.2).
func (t *Table) EffectiveNprobe(k int) int {
	type nlister interface{ Nlist() int }
	nl, ok := t.idx.(nlister)
	if !ok {
		return 0
	}
	nlist := nl.Nlist()
	n := len(t.ids)
	if n == 0 || nlist == 0 {
		return 0
	}
	avg := n / nlist
	if avg < 1 {
		avg = 1
	}
	need := (13*k/10 + avg - 1) / avg
	min := nlist / 16
	if min < 1 {
		min = 1
	}
	if need < min {
		need = min
	}
	if need > nlist {
		need = nlist
	}
	return need
}

// DistanceByID implements Source.
func (t *Table) DistanceByID(field int, q []float32, id int64) (float32, bool) {
	p, ok := t.pos[id]
	if !ok {
		return 0, false
	}
	return t.metric.Dist()(q, t.data[int(p)*t.dim:(int(p)+1)*t.dim]), true
}

// AttrBounds implements Partition.
func (t *Table) AttrBounds(attr int) (int64, int64, bool) { return t.cols[attr].MinMax() }

// PartitionByAttr splits the table into ρ partitions of near-equal row
// counts along attribute attr (offline partitioning on the hot attribute,
// Sec. 4.1 strategy E; the paper recommends ρ such that each partition
// holds ≈1M vectors). Each partition is an independent Table whose vector
// index is built with the given type/params.
func (t *Table) PartitionByAttr(attr, rho int, indexType string, params map[string]string) ([]*Table, error) {
	if rho <= 0 {
		return nil, fmt.Errorf("query: rho must be positive, got %d", rho)
	}
	n := len(t.ids)
	if rho > n {
		rho = n
	}
	// Order rows by the attribute, then cut into ρ equal-count ranges.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return t.attrs[attr][order[a]] < t.attrs[attr][order[b]] })

	var parts []*Table
	per := (n + rho - 1) / rho
	for start := 0; start < n; {
		end := start + per
		if end > n {
			end = n
		}
		// Extend the cut so equal attribute values never straddle partitions
		// (ranges must be disjoint for covered-partition pruning to hold).
		for end < n && t.attrs[attr][order[end]] == t.attrs[attr][order[end-1]] {
			end++
		}
		rows := order[start:end]
		data := make([]float32, 0, len(rows)*t.dim)
		ids := make([]int64, 0, len(rows))
		attrs := make([][]int64, len(t.attrs))
		for _, r := range rows {
			data = append(data, t.data[r*t.dim:(r+1)*t.dim]...)
			ids = append(ids, t.ids[r])
			for a := range t.attrs {
				attrs[a] = append(attrs[a], t.attrs[a][r])
			}
		}
		pt, err := NewTable(t.metric, t.dim, data, ids, attrs)
		if err != nil {
			return nil, err
		}
		if indexType != "" && indexType != "FLAT" {
			if err := pt.BuildIndex(indexType, params); err != nil {
				return nil, err
			}
		}
		parts = append(parts, pt)
		start = end
	}
	return parts, nil
}

// Partitions converts tables to the Partition interface slice StrategyE
// consumes.
func Partitions(tables []*Table) []Partition {
	out := make([]Partition, len(tables))
	for i, t := range tables {
		out[i] = t
	}
	return out
}
