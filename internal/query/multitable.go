package query

import (
	"fmt"

	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// MultiTable is an in-memory MultiSource: one Table per vector field over a
// shared ID space (the column-grouped multi-vector layout of Sec. 2.4).
type MultiTable struct {
	tables []*Table
}

// NewMultiTable builds a MultiSource from per-field flat matrices.
func NewMultiTable(metric vec.Metric, dims []int, fields [][]float32, ids []int64) (*MultiTable, error) {
	if len(dims) != len(fields) || len(dims) == 0 {
		return nil, fmt.Errorf("query: %d dims for %d fields", len(dims), len(fields))
	}
	m := &MultiTable{}
	for f := range fields {
		t, err := NewTable(metric, dims[f], fields[f], ids, nil)
		if err != nil {
			return nil, fmt.Errorf("query: field %d: %w", f, err)
		}
		m.tables = append(m.tables, t)
	}
	rows := m.tables[0].TotalRows()
	for f, t := range m.tables {
		if t.TotalRows() != rows {
			return nil, fmt.Errorf("query: field %d has %d rows, want %d", f, t.TotalRows(), rows)
		}
	}
	return m, nil
}

// BuildIndex builds the same index type on every field.
func (m *MultiTable) BuildIndex(indexType string, params map[string]string) error {
	for f, t := range m.tables {
		if err := t.BuildIndex(indexType, params); err != nil {
			return fmt.Errorf("query: field %d: %w", f, err)
		}
	}
	return nil
}

// Fields implements MultiSource.
func (m *MultiTable) Fields() int { return len(m.tables) }

// FieldQuery implements MultiSource.
func (m *MultiTable) FieldQuery(field int, q []float32, k int) []topk.Result {
	return m.tables[field].VectorQuery(0, q, k, 0, nil)
}

// FieldDistance implements MultiSource.
func (m *MultiTable) FieldDistance(field int, q []float32, id int64) (float32, bool) {
	return m.tables[field].DistanceByID(0, q, id)
}

// Table exposes one field's table (benchmarks).
func (m *MultiTable) Table(field int) *Table { return m.tables[field] }

// GroundTruth computes the exact aggregated top-k by exhaustive scan — the
// reference for multi-vector recall in Fig. 16.
func (m *MultiTable) GroundTruth(queries [][]float32, weights []float32, k int) []topk.Result {
	weights = unitWeights(weights, m.Fields())
	h := topk.New(k)
	t0 := m.tables[0]
	for _, id := range t0.ids {
		var s float32
		ok := true
		for f, t := range m.tables {
			d, found := t.DistanceByID(0, queries[f], id)
			if !found {
				ok = false
				break
			}
			s += weights[f] * d
		}
		if ok {
			h.Push(id, s)
		}
	}
	return h.Results()
}
