package query

import (
	"sort"

	"vectordb/internal/topk"
)

// StandardNRA is the textbook No-Random-Access algorithm (Fagin et al.,
// cited as [19]) used as the Fig. 16 baseline. Unlike the round-based NRA
// check inside IterativeMerging, the standard algorithm interleaves its
// bookkeeping with every sorted access: after each access it refreshes the
// affected bounds and rescans the candidate set for the stopping condition.
// That per-access maintenance is precisely the overhead the paper calls out
// ("it incurs significant overhead to maintain the heap since every access
// in NRA needs to update the scores of the current objects"), and what
// iterative merging's batched rounds avoid.
func StandardNRA(lists [][]topk.Result, weights []float32, k int) NRAResult {
	nf := len(lists)
	weights = unitWeights(weights, nf)
	type cand struct {
		id      int64
		partial float32
		mask    uint64
		seen    int
	}
	byID := map[int64]*cand{}
	var cands []*cand
	frontier := make([]float32, nf)
	accesses := 0

	bestCase := func(c *cand) float32 {
		b := c.partial
		for f := 0; f < nf; f++ {
			if c.mask&(1<<uint(f)) == 0 {
				b += weights[f] * frontier[f]
			}
		}
		return b
	}

	// stop scans the whole candidate set — the standard algorithm's
	// per-access cost.
	stop := func() []topk.Result {
		var exact []topk.Result
		for _, c := range cands {
			if c.seen == nf {
				exact = append(exact, topk.Result{ID: c.id, Distance: c.partial})
			}
		}
		if len(exact) < k {
			return nil
		}
		sort.Slice(exact, func(i, j int) bool {
			if exact[i].Distance != exact[j].Distance {
				return exact[i].Distance < exact[j].Distance
			}
			return exact[i].ID < exact[j].ID
		})
		exact = exact[:k]
		tau := exact[k-1].Distance
		var unseen float32
		for f := 0; f < nf; f++ {
			unseen += weights[f] * frontier[f]
		}
		if tau > unseen {
			return nil
		}
		inTop := map[int64]struct{}{}
		for _, e := range exact {
			inTop[e.ID] = struct{}{}
		}
		for _, c := range cands {
			if _, ok := inTop[c.id]; ok {
				continue
			}
			if bestCase(c) < tau {
				return nil
			}
		}
		return exact
	}

	maxDepth := 0
	for _, l := range lists {
		if len(l) > maxDepth {
			maxDepth = len(l)
		}
	}
	for depth := 0; depth < maxDepth; depth++ {
		for f := 0; f < nf; f++ {
			if depth >= len(lists[f]) {
				continue
			}
			r := lists[f][depth]
			accesses++
			frontier[f] = r.Distance
			c := byID[r.ID]
			if c == nil {
				c = &cand{id: r.ID}
				byID[r.ID] = c
				cands = append(cands, c)
			}
			if c.mask&(1<<uint(f)) == 0 {
				c.mask |= 1 << uint(f)
				c.seen++
				c.partial += weights[f] * r.Distance
			}
			// Per-access stopping check: the standard algorithm's
			// characteristic O(|candidates|) bookkeeping.
			if res := stop(); res != nil {
				return NRAResult{Results: res, Determined: true, Accesses: accesses}
			}
		}
	}
	// Exhausted: best-effort ranking by best-case bound.
	all := make([]topk.Result, 0, len(cands))
	for _, c := range cands {
		all = append(all, topk.Result{ID: c.id, Distance: bestCase(c)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Distance != all[j].Distance {
			return all[i].Distance < all[j].Distance
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return NRAResult{Results: all, Determined: false, Accesses: accesses}
}

// BoundedStandardNRA is the paper's NRA-x baseline: fetch the top-x per
// field once and run the standard per-access NRA over the bounded lists.
func BoundedStandardNRA(ms MultiSource, queries [][]float32, weights []float32, k, x int) NRAResult {
	lists := make([][]topk.Result, ms.Fields())
	for f := range lists {
		lists[f] = ms.FieldQuery(f, queries[f], x)
	}
	return StandardNRA(lists, weights, k)
}
