// Package query implements the advanced query processing of Sec. 4:
// attribute filtering (strategies A through E, including the paper's new
// partition-based strategy E) and multi-vector query processing (naive
// per-field search, Fagin's NRA, iterative merging, and vector fusion
// support). The algorithms are written against small interfaces so they run
// identically over the LSM collection engine, over partitions, and over the
// in-memory tables the experiment harness uses.
package query

import (
	"context"

	"vectordb/internal/obs"
	"vectordb/internal/topk"
)

// RangeCond is the attribute constraint Cα: lo ≤ attr ≤ hi (Sec. 4.1).
type RangeCond struct {
	Attr   int
	Lo, Hi int64
}

// VecCond is the vector constraint Cν: top-K most similar to Query on Field.
type VecCond struct {
	Field  int
	Query  []float32
	K      int
	Nprobe int // passed through to the index
	// Trace, when set, receives the strategy chosen (filter_strategy
	// attribute) and per-phase spans. Nil disables tracing (obs traces
	// are nil-safe).
	Trace *obs.Trace
	// Ctx, when set, cancels the strategy: scans and per-round loops
	// check it periodically and stop early, returning whatever partial
	// results exist. Callers that care inspect Ctx.Err() afterwards and
	// discard the partials. Nil means never cancelled.
	Ctx context.Context
}

// cancelled reports whether the condition's context has ended.
func (vc *VecCond) cancelled() bool {
	return vc.Ctx != nil && vc.Ctx.Err() != nil
}

// Source is what the filtering strategies need from the data under search.
type Source interface {
	// TotalRows is the number of searchable entities.
	TotalRows() int
	// CountRange counts entities satisfying the attribute constraint
	// (selectivity estimation for the cost-based strategy D).
	CountRange(attr int, lo, hi int64) int
	// RangeRows returns the IDs satisfying the attribute constraint,
	// resolved through the sorted attribute column (strategy A).
	RangeRows(attr int, lo, hi int64) []int64
	// AttrValue returns an entity's attribute (strategy C verification).
	AttrValue(attr int, id int64) (int64, bool)
	// VectorQuery is normal top-k vector query processing, optionally
	// restricted by a filter evaluated inside the scan (strategy B).
	VectorQuery(field int, q []float32, k, nprobe int, filter func(int64) bool) []topk.Result
	// DistanceByID computes the exact query↔entity distance (strategy A's
	// full scan over the attribute-qualified candidates).
	DistanceByID(field int, q []float32, id int64) (float32, bool)
}

// MultiSource is what multi-vector query processing needs: per-field vector
// queries plus exact per-field distances for candidate scoring.
type MultiSource interface {
	Fields() int
	FieldQuery(field int, q []float32, k int) []topk.Result
	FieldDistance(field int, q []float32, id int64) (float32, bool)
}
