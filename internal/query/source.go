// Package query implements the advanced query processing of Sec. 4:
// attribute filtering (strategies A through E, including the paper's new
// partition-based strategy E) and multi-vector query processing (naive
// per-field search, Fagin's NRA, iterative merging, and vector fusion
// support). The algorithms are written against small interfaces so they run
// identically over the LSM collection engine, over partitions, and over the
// in-memory tables the experiment harness uses.
package query

import (
	"context"

	"vectordb/internal/obs"
	"vectordb/internal/topk"
)

// RangeCond is the attribute constraint Cα: lo ≤ attr ≤ hi (Sec. 4.1).
type RangeCond struct {
	Attr   int
	Lo, Hi int64
}

// VecCond is the vector constraint Cν: top-K most similar to Query on Field.
type VecCond struct {
	Field  int
	Query  []float32
	K      int
	Nprobe int // passed through to the index
	// Trace, when set, receives the strategy chosen (filter_strategy
	// attribute) and per-phase spans. Nil disables tracing (obs traces
	// are nil-safe).
	Trace *obs.Trace
	// Ctx, when set, cancels the strategy: scans and per-round loops
	// check it periodically and stop early, returning whatever partial
	// results exist. Callers that care inspect Ctx.Err() afterwards and
	// discard the partials. Nil means never cancelled.
	Ctx context.Context
}

// cancelled reports whether the condition's context has ended.
func (vc *VecCond) cancelled() bool {
	return vc.Ctx != nil && vc.Ctx.Err() != nil
}

// Source is what the filtering strategies need from the data under search.
type Source interface {
	// TotalRows is the number of searchable entities.
	TotalRows() int
	// CountRange counts entities satisfying the attribute constraint
	// (selectivity estimation for the cost-based strategy D).
	CountRange(attr int, lo, hi int64) int
	// RangeRows returns the IDs satisfying the attribute constraint,
	// resolved through the sorted attribute column (strategy A).
	RangeRows(attr int, lo, hi int64) []int64
	// AttrValue returns an entity's attribute (strategy C verification).
	AttrValue(attr int, id int64) (int64, bool)
	// VectorQuery is normal top-k vector query processing, optionally
	// restricted by a filter evaluated inside the scan (strategy B).
	VectorQuery(field int, q []float32, k, nprobe int, filter func(int64) bool) []topk.Result
	// DistanceByID computes the exact query↔entity distance (strategy A's
	// full scan over the attribute-qualified candidates).
	DistanceByID(field int, q []float32, id int64) (float32, bool)
}

// PushedFilter is a compiled attribute constraint: the source resolved the
// predicate to dense per-segment bitsets over build positions, so vector
// query processing tests membership with word loads under the batch kernels
// instead of a map probe per encountered ID. Release returns the pooled
// bitsets; the filter must not be used afterwards.
type PushedFilter struct {
	// Matched/Total give the constraint's selectivity (tombstones already
	// cleared from Matched).
	Matched, Total int
	// Mode records how the source will apply the filter — "dense" (run
	// extraction through the batch kernels), "sparse" (gather path) or
	// "graph" (filtered traversal) — for the filter_mode trace annotation.
	Mode    string
	handle  any
	release func()
}

// NewPushedFilter wraps a source-owned compiled filter. handle is opaque to
// the strategies and flows back through VectorQueryPushed; release (may be
// nil) returns pooled storage.
func NewPushedFilter(matched, total int, mode string, handle any, release func()) *PushedFilter {
	return &PushedFilter{Matched: matched, Total: total, Mode: mode, handle: handle, release: release}
}

// Handle returns the source-owned payload passed to NewPushedFilter.
func (pf *PushedFilter) Handle() any { return pf.handle }

// Selectivity is Matched/Total (0 when the source is empty).
func (pf *PushedFilter) Selectivity() float64 {
	if pf.Total == 0 {
		return 0
	}
	return float64(pf.Matched) / float64(pf.Total)
}

// Release returns pooled bitsets to their pool.
func (pf *PushedFilter) Release() {
	if pf.release != nil {
		pf.release()
		pf.release = nil
	}
}

// PushdownSource is a Source that can compile attribute constraints to
// bitsets and push them beneath its vector scans (the strategy-B upgrade:
// same plan shape, bitmap replaced by a word-aligned bitset evaluated
// inside the kernels).
type PushdownSource interface {
	Source
	// CompileRange compiles lo ≤ attr ≤ hi to a pushed filter; ok=false
	// means pushdown is unavailable (unknown attribute) and the caller
	// falls back to the bitmap path.
	CompileRange(attr int, lo, hi int64) (pf *PushedFilter, ok bool)
	// VectorQueryPushed is VectorQuery with the compiled filter applied
	// beneath the index scan.
	VectorQueryPushed(field int, q []float32, k, nprobe int, pf *PushedFilter) []topk.Result
}

// MultiSource is what multi-vector query processing needs: per-field vector
// queries plus exact per-field distances for candidate scoring.
type MultiSource interface {
	Fields() int
	FieldQuery(field int, q []float32, k int) []topk.Result
	FieldDistance(field int, q []float32, id int64) (float32, bool)
}
