package plan

import (
	"math"
	"testing"
	"time"

	"vectordb/internal/vec"
)

// testProfile is a fixed synthetic calibration profile so decision tests
// are machine-independent: every SIMD tier gets the same batch-kernel
// rate, and the remaining primitives are set to plausible magnitudes that
// reproduce the measured strategy crossovers.
func testProfile() *Profile {
	kernel := map[string]float64{}
	for _, l := range vec.Levels() {
		kernel[l.String()] = 8e9 // 0.125 ns per dim
	}
	return &Profile{
		Fingerprint:      Fingerprint(),
		GOMAXPROCS:       8,
		KernelDimsPerSec: kernel,
		SQ8DimsPerSec:    16e9,
		RowOverheadNs:    30,
		RowNsPerDim:      0.5,
		LookupNs:         40,
		BitsetNsPerRow:   1.2,
		BitsetNsPerMatch: 20,
		PCIeBytesPerSec:  1.5e9,
		PCIeLatencyNs:    30e3,
		GPUDimsPerSec:    6.4e10,
	}
}

func testPlanner() *Planner {
	return New(Config{Profile: testProfile()})
}

// TestVenueGolden pins the placement decision table: each row is a query
// shape whose cheapest venue is structurally forced by the cost model.
func TestVenueGolden(t *testing.T) {
	p := testPlanner()
	cases := []struct {
		name   string
		shape  QueryShape
		venues []Venue
		want   Venue
	}{
		{
			// A small single query over an unindexed in-RAM collection with
			// a cold device: the PCIe copy dwarfs the CPU scan.
			name:   "small_flat_cold_device",
			shape:  QueryShape{NQ: 1, K: 10, Dim: 128, HotRows: 10000},
			venues: []Venue{VenueFlatCPU, VenueGPU},
			want:   VenueFlatCPU,
		},
		{
			// The same scan with the data already resident on the device:
			// the kernel rate advantage decides.
			name:   "flat_warm_device",
			shape:  QueryShape{NQ: 1, K: 10, Dim: 128, HotRows: 1000000, DeviceResidentFrac: 1},
			venues: []Venue{VenueFlatCPU, VenueGPU},
			want:   VenueGPU,
		},
		{
			// A single probe against a cold device must stream its probed
			// buckets over PCIe — the copy dwarfs the CPU probe.
			name:   "ivf_beats_cold_device",
			shape:  QueryShape{NQ: 1, K: 10, Dim: 128, HotRows: 1000000, Nlist: 4096, Nprobe: 256},
			venues: []Venue{VenueIVFCPU, VenueGPU},
			want:   VenueIVFCPU,
		},
		{
			// Fig. 13's large-batch regime: 512 queries amortize the one-time
			// bucket stream and the device kernel-rate advantage takes over,
			// so pure-GPU beats the CPU probe even from cold.
			name:   "batch_amortizes_cold_copy",
			shape:  QueryShape{NQ: 512, K: 10, Dim: 128, HotRows: 1000000, Nlist: 4096, Nprobe: 256},
			venues: []Venue{VenueIVFCPU, VenueGPU},
			want:   VenueGPU,
		},
		{
			// A warm device running the coarse ranking plus the probed-bucket
			// scan at the device kernel rate beats the same probe on the CPU.
			name:   "warm_device_probe_beats_cpu",
			shape:  QueryShape{NQ: 1, K: 10, Dim: 128, HotRows: 1000000, Nlist: 4096, Nprobe: 256, DeviceResidentFrac: 1},
			venues: []Venue{VenueIVFCPU, VenueGPU},
			want:   VenueGPU,
		},
		{
			// Fig. 13's regime: quantized hybrid beats the pure-CPU probe at
			// small nq because step 1 runs on the resident centroids.
			name:   "sq8h_small_batch",
			shape:  QueryShape{NQ: 1, K: 10, Dim: 128, HotRows: 1000000, Nlist: 512, Nprobe: 32, SQ8: true, DeviceResidentFrac: 1},
			venues: []Venue{VenueSQ8H, VenueFlatCPU},
			want:   VenueSQ8H,
		},
	}
	for _, tc := range cases {
		got := p.PlaceQuery("golden/"+tc.name, tc.shape, tc.venues...)
		if got.Venue != tc.want {
			costs := map[Venue]float64{}
			for _, v := range tc.venues {
				costs[v] = p.CostVenue(v, tc.shape)
			}
			t.Errorf("%s: got %s want %s (costs %v)", tc.name, got.Venue, tc.want, costs)
		}
		if got.Est <= 0 {
			t.Errorf("%s: non-positive estimate %v", tc.name, got.Est)
		}
	}
}

// TestFilterStrategyGolden pins the filter-strategy crossover: the O(n)
// bitset compile makes pushdown lose at very low selectivity and win at
// high selectivity — the BENCH_filter regression this planner fixes.
func TestFilterStrategyGolden(t *testing.T) {
	p := testPlanner()
	base := FilterShape{Rows: 100000, Dim: 128, K: 10, Indexed: true, Nlist: 64, Nprobe: 32}
	cases := []struct {
		name    string
		matched int
		graph   bool
		want    Strategy
	}{
		{"sel_0.001", 100, false, StrategyPrefilter},
		{"sel_0.01", 1000, false, StrategyPrefilter},
		{"sel_0.5", 50000, false, StrategyPushdown},
		{"sel_1.0", 100000, false, StrategyPushdown},
		{"graph_sel_0.5", 50000, true, StrategyGraph},
	}
	for _, tc := range cases {
		s := base
		s.Matched = tc.matched
		s.Graph = tc.graph
		if tc.graph {
			s.Indexed = false
		}
		got := p.PickFilterStrategy(s)
		if got.Strategy != tc.want {
			t.Errorf("%s: got %s want %s (A=%.0f push=%.0f)",
				tc.name, got.Strategy, tc.want, p.CostPrefilter(s), p.CostPushdown(s))
		}
	}
}

// TestCostMonotonicNQ: every venue's cost strictly increases with nq.
func TestCostMonotonicNQ(t *testing.T) {
	p := testPlanner()
	for _, v := range []Venue{VenueFlatCPU, VenueIVFCPU, VenueGPU, VenueSQ8H} {
		prev := 0.0
		for nq := 1; nq <= 1<<12; nq *= 2 {
			s := QueryShape{NQ: nq, K: 10, Dim: 128, HotRows: 100000, Nlist: 256, Nprobe: 16}
			c := p.CostVenue(v, s)
			if !(c > prev) {
				t.Errorf("%s: cost not strictly increasing at nq=%d (%.0f <= %.0f)", v, nq, c, prev)
			}
			prev = c
		}
	}
}

// TestCostMonotonicRows: every venue's cost strictly increases with the
// row count (fixed explicit IVF geometry so the probed fraction is stable).
func TestCostMonotonicRows(t *testing.T) {
	p := testPlanner()
	for _, v := range []Venue{VenueFlatCPU, VenueIVFCPU, VenueGPU, VenueSQ8H} {
		prev := 0.0
		for n := 1024; n <= 1<<24; n *= 4 {
			s := QueryShape{NQ: 4, K: 10, Dim: 128, HotRows: n, Nlist: 256, Nprobe: 16}
			c := p.CostVenue(v, s)
			if !(c > prev) {
				t.Errorf("%s: cost not strictly increasing at n=%d (%.0f <= %.0f)", v, n, c, prev)
			}
			prev = c
		}
	}
}

// TestCostNeverNaNOrNegative fuzzes the estimators with degenerate and
// adversarial shapes: costs must always come back finite and >= 0.
func TestCostNeverNaNOrNegative(t *testing.T) {
	p := testPlanner()
	shapes := []QueryShape{
		{},
		{NQ: -5, K: -1, Dim: -128},
		{NQ: 1 << 30, K: 1 << 30, Dim: 1 << 20, HotRows: 1 << 30, MappedRows: 1 << 30, ColdRows: 1 << 30},
		{NQ: 1, Dim: 128, HotRows: 1000, DeviceResidentFrac: 42},
		{NQ: 1, Dim: 128, HotRows: 1000, DeviceResidentFrac: -3},
		{NQ: 1, Dim: 128, HotRows: 1000, Nlist: -7, Nprobe: 1 << 30},
		{NQ: 1, Dim: 128, QueueDepth: -100, Workers: -1},
	}
	for _, s := range shapes {
		for _, v := range []Venue{VenueFlatCPU, VenueIVFCPU, VenueGPU, VenueSQ8H, Venue("bogus")} {
			c := p.CostVenue(v, s)
			if math.IsNaN(c) || c < 0 || math.IsInf(c, 0) {
				t.Errorf("venue %s shape %+v: bad cost %v", v, s, c)
			}
		}
	}
	fshapes := []FilterShape{
		{},
		{Rows: -10, Matched: -4, Dim: -1},
		{Rows: 1 << 30, Matched: 1 << 31, Dim: 1 << 20, K: 1 << 30, Indexed: true},
		{Rows: 100, Matched: 1000, Graph: true, K: -1},
	}
	for _, s := range fshapes {
		for _, c := range []float64{p.CostPrefilter(s), p.CostPushdown(s)} {
			if math.IsNaN(c) || c < 0 || math.IsInf(c, 0) {
				t.Errorf("filter shape %+v: bad cost %v", s, c)
			}
		}
	}
}

// TestHysteresis: once a venue is chosen for a shape bucket, a challenger
// within the switch margin does not flip it; a decisively cheaper one does.
func TestHysteresis(t *testing.T) {
	prof := testProfile()
	p := New(Config{Profile: prof})
	// Shape where flat and GPU are close — the partial residency leaves
	// just enough PCIe traffic to keep the (cheaper) GPU within the 20%
	// margin band of the flat scan.
	s := QueryShape{NQ: 1, K: 10, Dim: 128, HotRows: 30000, DeviceResidentFrac: 0.962}
	cFlat := p.CostFlatCPU(s)
	cGPU := p.CostGPU(s)
	if !(cGPU < cFlat && cGPU > (1-p.cfg.SwitchMargin)*cFlat) {
		t.Fatalf("test shape not in the margin band: flat=%.0f gpu=%.0f", cFlat, cGPU)
	}
	// First decision with only the CPU venue installs flat as incumbent.
	d1 := p.PlaceQuery("h", s, VenueFlatCPU)
	if d1.Venue != VenueFlatCPU {
		t.Fatalf("incumbent setup: got %s", d1.Venue)
	}
	// GPU now offered and cheaper — but within the margin: incumbent holds.
	d2 := p.PlaceQuery("h", s, VenueFlatCPU, VenueGPU)
	if d2.Venue != VenueFlatCPU || !d2.Sticky {
		t.Errorf("margin challenger flipped the venue: got %s (sticky=%v)", d2.Venue, d2.Sticky)
	}
	// A decisively cheaper challenger (way more rows → flat blows up,
	// GPU resident stays cheap) lands in a different shape bucket; instead
	// keep the bucket and make GPU decisively cheaper via a fresh planner
	// scope with a shape where gpu << flat.
	big := QueryShape{NQ: 1, K: 10, Dim: 128, HotRows: 1000000, DeviceResidentFrac: 1}
	d3 := p.PlaceQuery("h2", big, VenueFlatCPU)
	if d3.Venue != VenueFlatCPU {
		t.Fatalf("h2 incumbent setup: got %s", d3.Venue)
	}
	d4 := p.PlaceQuery("h2", big, VenueFlatCPU, VenueGPU)
	if d4.Venue != VenueGPU {
		t.Errorf("decisive challenger did not flip: got %s", d4.Venue)
	}
}

// TestPlacementDeterministic: identical decision sequences produce
// identical plans — the stress suite's placement-flapping invariant in
// miniature.
func TestPlacementDeterministic(t *testing.T) {
	shapes := []QueryShape{
		{NQ: 1, K: 10, Dim: 64, HotRows: 50000},
		{NQ: 8, K: 100, Dim: 64, HotRows: 50000, Nlist: 128, Nprobe: 8},
		{NQ: 1, K: 10, Dim: 64, HotRows: 50000, DeviceResidentFrac: 1},
		{NQ: 64, K: 10, Dim: 64, MappedRows: 50000, Nlist: 128, Nprobe: 8},
	}
	run := func() []Venue {
		p := testPlanner()
		var out []Venue
		for round := 0; round < 3; round++ {
			for _, s := range shapes {
				out = append(out, p.PlaceQuery("det", s, VenueFlatCPU, VenueIVFCPU, VenueGPU).Venue)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestObserveMispredict: only ratios beyond the 8x band above the noise
// floor count as mispredictions.
func TestObserveMispredict(t *testing.T) {
	p := testPlanner()
	d := Decision{Venue: VenueFlatCPU, Est: time.Millisecond}
	p.Observe(d, time.Millisecond)     // exact: fine
	p.Observe(d, 7*time.Millisecond)   // within 8x: fine
	p.Observe(d, 100*time.Millisecond) // 100x: mispredict
	p.Observe(d, time.Microsecond)     // 1/1000x: mispredict
	// Tiny on both sides: noise-floored.
	p.Observe(Decision{Venue: VenueFlatCPU, Est: time.Microsecond}, 40*time.Microsecond)
	// The metrics are nil-registry handles; the assertions above are that
	// none of these calls panic and the classification logic is exercised
	// (counted classification is covered in the core metrics test).
}

// TestQueueBucketLoad: load shifts CPU costs only at bucket boundaries
// and never affects the device legs.
func TestQueueBucketLoad(t *testing.T) {
	p := testPlanner()
	s := QueryShape{NQ: 1, K: 10, Dim: 128, HotRows: 100000, Workers: 8}
	idle := p.CostFlatCPU(s)
	s.QueueDepth = 7 // < workers: bucket 1
	b1 := p.CostFlatCPU(s)
	if !(b1 > idle) {
		t.Errorf("load did not raise CPU cost: %.0f <= %.0f", b1, idle)
	}
	s2 := s
	s2.QueueDepth = 5 // same bucket
	if got := p.CostFlatCPU(s2); got != b1 {
		t.Errorf("same load bucket changed cost: %.0f != %.0f", got, b1)
	}
	g := QueryShape{NQ: 1, K: 10, Dim: 128, HotRows: 100000, Workers: 8}
	gpuIdle := p.CostGPU(g)
	g.QueueDepth = 100
	if got := p.CostGPU(g); got != gpuIdle {
		t.Errorf("pool load leaked into the GPU leg: %.0f != %.0f", got, gpuIdle)
	}
}

// TestResidencyPenalty: mapped and cold rows raise CPU venue costs in
// order hot < mapped < cold.
func TestResidencyPenalty(t *testing.T) {
	p := testPlanner()
	hot := p.CostFlatCPU(QueryShape{NQ: 1, K: 10, Dim: 128, HotRows: 100000})
	mapped := p.CostFlatCPU(QueryShape{NQ: 1, K: 10, Dim: 128, MappedRows: 100000})
	cold := p.CostFlatCPU(QueryShape{NQ: 1, K: 10, Dim: 128, ColdRows: 100000})
	if !(hot < mapped && mapped < cold) {
		t.Errorf("residency ordering violated: hot=%.0f mapped=%.0f cold=%.0f", hot, mapped, cold)
	}
}
