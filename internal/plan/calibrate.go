package plan

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"vectordb/internal/bitset"
	"vectordb/internal/colstore"
	"vectordb/internal/gpu"
	"vectordb/internal/quantizer"
	"vectordb/internal/vec"
)

// Profile holds the calibrated machine primitives every cost estimate is
// built from. A profile is immutable after calibration; persist.go writes
// it beside the tier directory keyed by Fingerprint.
type Profile struct {
	// Fingerprint identifies the hardware/runtime shape the measurements
	// belong to (schema version, detected SIMD tier, GOMAXPROCS); a
	// mismatch on load marks the profile stale.
	Fingerprint string `json:"fingerprint"`
	CreatedUnix int64  `json:"created_unix"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// KernelDimsPerSec is the blocked batch-kernel throughput per SIMD
	// tier (the fig12 measurement shape), in distance-dims per second.
	KernelDimsPerSec map[string]float64 `json:"kernel_dims_per_sec"`
	// SQ8DimsPerSec is the fused ADC scan throughput over uint8 codes.
	SQ8DimsPerSec float64 `json:"sq8_dims_per_sec"`

	// RowOverheadNs + dim·RowNsPerDim models one single-row exact
	// distance call (strategy A's inner loop, sans the ID lookup).
	RowOverheadNs float64 `json:"row_overhead_ns"`
	RowNsPerDim   float64 `json:"row_ns_per_dim"`
	// LookupNs is one sorted-ID binary search (DistanceByID's posOf).
	LookupNs float64 `json:"lookup_ns"`

	// BitsetNsPerRow·rows + BitsetNsPerMatch·matches models one
	// predicate→bitset compile (colstore.CompilePred): the per-row word
	// pass plus the per-match zone-map/postings walk.
	BitsetNsPerRow   float64 `json:"bitset_ns_per_row"`
	BitsetNsPerMatch float64 `json:"bitset_ns_per_match"`

	// Device model rates (virtual clocks from internal/gpu).
	PCIeBytesPerSec float64 `json:"pcie_bytes_per_sec"`
	PCIeLatencyNs   float64 `json:"pcie_latency_ns"`
	GPUDimsPerSec   float64 `json:"gpu_dims_per_sec"`
}

// kernelNsPerDim is the CPU scan cost per distance-dim at the active SIMD
// tier (or the fused ADC rate for quantized codes).
func (p *Profile) kernelNsPerDim(sq8 bool) float64 {
	if sq8 {
		return nsPerUnit(p.SQ8DimsPerSec)
	}
	rate := p.KernelDimsPerSec[vec.CurrentLevel().String()]
	if rate <= 0 {
		for _, r := range p.KernelDimsPerSec {
			if r > rate {
				rate = r
			}
		}
	}
	return nsPerUnit(rate)
}

func (p *Profile) pcieNsPerByte() float64 { return nsPerUnit(p.PCIeBytesPerSec) }
func (p *Profile) gpuNsPerDim() float64   { return nsPerUnit(p.GPUDimsPerSec) }

// nsPerUnit inverts a units-per-second rate into ns-per-unit, guarding
// against unset/zero rates (fall back to a conservative 1 GB-ish rate so
// costs stay finite and positive).
func nsPerUnit(rate float64) float64 {
	if rate <= 0 {
		rate = 1e9
	}
	return 1e9 / rate
}

var (
	sharedOnce sync.Once
	sharedProf *Profile
)

// SharedProfile runs the calibration pass once per process and returns
// the shared result — the "first-use, lazily" path; servers that persist
// calibration call Calibrate/LoadOrCalibrate instead.
func SharedProfile() *Profile {
	sharedOnce.Do(func() { sharedProf = Calibrate() })
	return sharedProf
}

// Calibration workload sizing: large enough to amortize dispatch, small
// enough that the whole pass stays in the low tens of milliseconds.
const (
	calRows = 2048
	calDim  = 128
)

// Calibrate measures every profile primitive on this machine: per-tier
// batch-kernel throughput (the fig12 measurement shape), fused SQ8 ADC
// throughput, single-row distance and ID-lookup costs, bitset compile
// cost, and the gpu package's device-model rates (the virtual PCIe and
// kernel clocks GPU plans are priced with).
func Calibrate() *Profile {
	data, query := calData(calRows, calDim)
	p := &Profile{
		CreatedUnix:      time.Now().Unix(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		KernelDimsPerSec: map[string]float64{},
	}
	p.Fingerprint = Fingerprint()

	out := make([]float32, calRows)
	for _, l := range vec.Levels() {
		l := l
		ns := measure(func() {
			//lint:allow kerneldispatch calibration measures each SIMD tier explicitly, like the fig12 experiment
			vec.L2SquaredBatchAt(l, query, data, calDim, out)
		})
		p.KernelDimsPerSec[l.String()] = ratePerSec(calRows*calDim, ns)
	}

	if sq, err := quantizer.TrainSQ8(data, calDim); err == nil {
		codes := make([]uint8, calRows*calDim)
		for i := 0; i < calRows; i++ {
			sq.Encode(data[i*calDim:(i+1)*calDim], codes[i*calDim:(i+1)*calDim])
		}
		qt := sq.L2Query(query)
		ns := measure(func() { qt.DistanceBatch(codes, out) })
		p.SQ8DimsPerSec = ratePerSec(calRows*calDim, ns)
	}

	p.RowOverheadNs, p.RowNsPerDim = calibrateRowDistance(data, query)
	p.LookupNs = calibrateLookup()
	p.BitsetNsPerRow, p.BitsetNsPerMatch = calibrateBitset()

	devCfg := gpu.NewDevice(0, gpu.Config{}).Config()
	p.PCIeBytesPerSec = devCfg.PCIeBandwidth
	p.PCIeLatencyNs = float64(devCfg.PCIeLatency.Nanoseconds())
	p.GPUDimsPerSec = devCfg.KernelThroughput
	return p
}

// calData builds a deterministic pseudo-random dataset (seeded LCG, no
// clock involvement) plus one query row.
func calData(rows, dim int) (data, query []float32) {
	data = make([]float32, rows*dim)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float32 {
		state = state*6364136223846793005 + 1442695040888963407
		return float32(int32(state>>33)) / float32(1<<31)
	}
	for i := range data {
		data[i] = next()
	}
	query = make([]float32, dim)
	for i := range query {
		query[i] = next()
	}
	return data, query
}

// measure times one op: warm once, then repeat until ≥500µs of samples,
// returning ns per op.
func measure(op func()) float64 {
	op()
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			op()
		}
		elapsed := time.Since(start)
		if elapsed >= 500*time.Microsecond || iters >= 1<<20 {
			return float64(elapsed.Nanoseconds()) / float64(iters)
		}
		iters *= 2
	}
}

func ratePerSec(units int, nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		nsPerOp = 1
	}
	return float64(units) / nsPerOp * 1e9
}

// calibrateRowDistance fits t(dim) = overhead + dim·perDim from
// single-row exact distance calls at two dimensionalities — the strategy-A
// inner loop, which cannot amortize dispatch across rows.
func calibrateRowDistance(data, query []float32) (overheadNs, perDimNs float64) {
	var sink float32
	perCall := func(d int) float64 {
		rows := len(data) / calDim
		ns := measure(func() {
			for i := 0; i < rows; i++ {
				row := data[i*calDim : i*calDim+d]
				sink += vec.L2Squared(query[:d], row)
			}
		})
		return ns / float64(rows)
	}
	d0, d1 := 32, calDim
	t0, t1 := perCall(d0), perCall(d1)
	_ = sink
	perDimNs = (t1 - t0) / float64(d1-d0)
	if perDimNs <= 0 {
		perDimNs = t1 / float64(d1)
	}
	overheadNs = t0 - perDimNs*float64(d0)
	if overheadNs < 0 {
		overheadNs = 0
	}
	return overheadNs, perDimNs
}

// calibrateLookup times one binary search over a sorted ID array — the
// posOf step of every DistanceByID in strategy A.
func calibrateLookup() float64 {
	const n = 1 << 15
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i) * 3
	}
	probe := 0
	var hit int
	ns := measure(func() {
		probe = (probe*31 + 7) % n
		target := ids[probe]
		hit = sort.Search(n, func(i int) bool { return ids[i] >= target })
	})
	_ = hit
	return ns
}

// calCols adapts a synthetic attribute column to the predicate compiler.
type calCols struct {
	rows int
	attr *colstore.AttributeColumn
}

func (c calCols) Rows() int                                 { return c.rows }
func (c calCols) AttrColumn(int) *colstore.AttributeColumn  { return c.attr }
func (c calCols) CatColumn(int) *colstore.CategoricalColumn { return nil }
func (c calCols) PosOf(row int64) (int32, bool)             { return int32(row), true }

// calibrateBitset fits compile(rows, matches) = rows·perRow +
// matches·perMatch from two CompilePred runs at different selectivities
// over the same column.
func calibrateBitset() (perRowNs, perMatchNs float64) {
	const n = 1 << 15
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(i % 4096)
	}
	cols := calCols{rows: n, attr: colstore.BuildAttributeColumn(values, nil)}
	bs := bitset.New(n)
	run := func(hi int64) float64 {
		return measure(func() {
			_ = colstore.CompilePred(colstore.RangePred{Attr: 0, Lo: 0, Hi: hi}, cols, bs)
		})
	}
	tLo := run(40)   // ~1% selectivity
	tHi := run(4095) // 100% selectivity
	mLo, mHi := float64(n)*41/4096, float64(n)
	perMatchNs = (tHi - tLo) / (mHi - mLo)
	if perMatchNs < 0 {
		perMatchNs = 0
	}
	perRowNs = (tLo - mLo*perMatchNs) / float64(n)
	if perRowNs <= 0 {
		perRowNs = 0.05
	}
	return perRowNs, perMatchNs
}
