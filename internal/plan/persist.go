package plan

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"vectordb/internal/colstore"
	"vectordb/internal/vec"
)

// profileVersion bumps whenever the Profile schema or the cost model's
// interpretation of it changes; persisted profiles from other versions
// are stale by definition.
const profileVersion = 1

// CalibrationFile is the file name a server writes its profile under,
// beside the tier directory.
const CalibrationFile = "plan-calibration.json"

// Fingerprint identifies the machine/runtime shape calibration measured:
// schema version, the CPU's detected SIMD feature tier, and GOMAXPROCS
// (throughputs move with both). A persisted profile whose fingerprint
// differs is re-measured rather than trusted.
func Fingerprint() string {
	return fmt.Sprintf("v%d/simd=%s/gomaxprocs=%d",
		profileVersion, vec.DetectLevel(), runtime.GOMAXPROCS(0))
}

// Stale reports whether the profile was measured under a different
// machine/runtime shape than the current process.
func (p *Profile) Stale() bool {
	return p == nil || p.Fingerprint != Fingerprint()
}

// Save persists the profile as JSON at path (atomic temp+rename write).
func (p *Profile) Save(path string) error {
	buf, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("plan: marshal profile: %w", err)
	}
	return colstore.WriteFileAtomic(path, append(buf, '\n'))
}

// Load reads a persisted profile. It does not check staleness; callers
// decide (LoadOrCalibrate does).
func Load(path string) (*Profile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(buf, &p); err != nil {
		return nil, fmt.Errorf("plan: parse profile %s: %w", path, err)
	}
	return &p, nil
}

// LoadOrCalibrate returns a current profile for this machine: a persisted
// one when path holds a fresh (fingerprint-matching) profile and force is
// false; otherwise it calibrates and persists the result. loaded reports
// whether re-measurement was skipped. A write failure is reported but the
// freshly calibrated profile is still returned — persistence is an
// optimization, not a correctness requirement.
func LoadOrCalibrate(path string, force bool) (p *Profile, loaded bool, err error) {
	if !force {
		if prev, lerr := Load(path); lerr == nil && !prev.Stale() {
			return prev, true, nil
		}
	}
	p = Calibrate()
	return p, false, p.Save(path)
}
