// Package plan implements the cost-based query planner: a calibrated
// per-query choice of execution venue (flat-CPU / IVF-CPU / GPU / SQ8H)
// and of filter strategy (pushdown vs attribute-first exact scan vs
// filtered graph traversal).
//
// "To GPU or Not to GPU" (PAPERS.md) argues placement must be decided per
// query from transfer-vs-compute cost, and the paper's Fig. 13 shows the
// best SQ8 venue flipping with batch size; BENCH_filter.json shows IVF
// pushdown losing below ~10% selectivity because the O(n) bitset compile
// outweighs the partial scan. This package prices each candidate with a
// handful of calibrated machine primitives (per-SIMD-tier kernel
// throughput, SQ8 ADC throughput, bitset compile ns/row, per-row exact
// distance cost, PCIe latency and bandwidth from the gpu device model) and
// picks the cheapest — recording the decision, its estimate, and later the
// estimate-vs-actual ratio so mispredictions are auditable
// (vectordb_plan_decisions_total / vectordb_plan_mispredict_total, plus
// plan= trace annotations written by the callers).
//
// The planner changes venue, never results: callers only offer venues that
// return identical result sets for the query at hand (GPU and SQ8H compute
// exact host-side results; the device's virtual clock only prices the
// plan), so conformance gates hold whatever the planner picks.
package plan

import (
	"fmt"
	"math"
	"sync"
	"time"

	"vectordb/internal/obs"
)

// Venue is where a vector query executes.
type Venue string

const (
	// VenueFlatCPU is the brute-force blocked scan over every row.
	VenueFlatCPU Venue = "flat_cpu"
	// VenueIVFCPU probes an inverted-file index on the CPU.
	VenueIVFCPU Venue = "ivf_cpu"
	// VenueGPU ships segment data over PCIe and runs the scan kernel on a
	// device (results still computed exactly on the host; the device's
	// virtual clock prices the plan).
	VenueGPU Venue = "gpu"
	// VenueSQ8H is the hybrid index: coarse quantizer on the GPU, SQ8 ADC
	// scan of the probed buckets on the CPU (Fig. 13 / Algorithm 1).
	VenueSQ8H Venue = "sq8h"
)

// Strategy is how an attribute-filtered query evaluates its predicate.
type Strategy string

const (
	// StrategyPushdown compiles the predicate to per-segment bitsets
	// evaluated beneath the batch kernels (strategy B with pushdown).
	StrategyPushdown Strategy = "pushdown"
	// StrategyPrefilter resolves the predicate first and runs an exact
	// distance scan over only the qualifying rows (strategy A).
	StrategyPrefilter Strategy = "prefilter"
	// StrategyGraph is pushdown over a graph index: filtered traversal
	// with skip-but-expand and beam widening.
	StrategyGraph Strategy = "graph"
)

// QueryShape is everything venue placement looks at for one query.
type QueryShape struct {
	NQ  int // queries in the batch
	K   int
	Dim int

	// Residency split of the candidate rows (core/tier.go): hot rows live
	// on the Go heap, mapped rows fault through the block cache, cold rows
	// must first promote from spill.
	HotRows, MappedRows, ColdRows int

	// IVF geometry when an inverted-file index serves the segments
	// (0 = unindexed / unknown, estimated from the row count).
	Nlist, Nprobe int
	// SQ8 marks quantized codes (the scan leg runs the fused ADC kernel).
	SQ8 bool

	// DeviceResidentFrac is the fraction of the scan bytes already
	// resident in GPU memory (0 = everything must cross PCIe).
	DeviceResidentFrac float64

	// QueueDepth is the live exec-pool backlog (Collection.readLoad);
	// Workers the pool size. CPU venues slow down with the bucketed load,
	// device venues do not.
	QueueDepth int
	Workers    int
}

// Rows is the total candidate row count.
func (s QueryShape) Rows() int { return s.HotRows + s.MappedRows + s.ColdRows }

// FilterShape is everything filter-strategy selection looks at.
type FilterShape struct {
	Rows    int // total physical rows (bitset compile domain)
	Matched int // zone-map / postings-estimated predicate matches
	Dim     int
	K       int

	Indexed       bool // an IVF-family index serves the vector leg
	Graph         bool // a graph index serves it (HNSW/RNSG)
	SQ8           bool // quantized scan leg
	Nlist, Nprobe int

	QueueDepth int
	Workers    int
}

// Selectivity is Matched/Rows (0 on an empty source).
func (s FilterShape) Selectivity() float64 {
	if s.Rows <= 0 {
		return 0
	}
	return float64(s.Matched) / float64(s.Rows)
}

// Decision is one planner choice with its estimate. Exactly one of Venue
// and Strategy is set, depending on which question was asked.
type Decision struct {
	Venue    Venue
	Strategy Strategy
	Est      time.Duration // estimated cost of the chosen plan
	Sticky   bool          // held by hysteresis rather than strictly cheapest
}

// Choice is the decision's label value (venue or strategy name).
func (d Decision) Choice() string {
	if d.Venue != "" {
		return string(d.Venue)
	}
	return string(d.Strategy)
}

// Config tunes a planner.
type Config struct {
	// Obs receives vectordb_plan_* metrics; nil keeps handles unscraped.
	Obs *obs.Registry
	// Profile fixes the calibration profile (deterministic tests, loaded
	// persistence). Nil calibrates lazily, once per process.
	Profile *Profile

	// MappedPenalty scales the per-row cost of block-cache-resident rows
	// vs hot rows (default 1.5); ColdPenalty of spilled rows that must
	// promote first (default 6).
	MappedPenalty float64
	ColdPenalty   float64

	// SwitchMargin is the hysteresis band: a venue already chosen for a
	// query shape is kept unless a challenger is at least this fraction
	// cheaper (default 0.2). Prevents placement flapping on cost jitter.
	SwitchMargin float64
}

func (c *Config) defaults() {
	if c.MappedPenalty <= 0 {
		c.MappedPenalty = 1.5
	}
	if c.ColdPenalty <= 0 {
		c.ColdPenalty = 6
	}
	if c.SwitchMargin <= 0 {
		c.SwitchMargin = 0.2
	}
}

// Planner prices query plans against a calibration profile and remembers
// recent placements for hysteresis. Safe for concurrent use.
type Planner struct {
	cfg Config
	met *planMetrics

	mu   sync.Mutex
	prof *Profile
	last map[string]Venue // shape key → venue chosen last time
}

// maxRemembered bounds the hysteresis memory; shapes are coarse buckets,
// so real workloads use a handful of entries.
const maxRemembered = 1024

// New creates a planner. With a nil Config.Profile the first decision
// triggers the process-wide lazy calibration pass.
func New(cfg Config) *Planner {
	cfg.defaults()
	return &Planner{
		cfg:  cfg,
		met:  newPlanMetrics(cfg.Obs),
		prof: cfg.Profile,
		last: map[string]Venue{},
	}
}

// UseProfile replaces the calibration profile (e.g. after loading a
// persisted one, or after -recalibrate).
func (p *Planner) UseProfile(prof *Profile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.prof = prof
}

// Profile returns the active calibration profile, running the shared
// process-wide calibration pass on first use.
func (p *Planner) Profile() *Profile {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.prof == nil {
		p.prof = SharedProfile()
	}
	return p.prof
}

// fin clamps a cost estimate to a finite non-negative value: the
// estimator never returns NaN or a negative, whatever the inputs.
func fin(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 1) {
		return math.MaxFloat64 / 16
	}
	if x < 0 || math.IsInf(x, -1) {
		return 0
	}
	return x
}

// effRows weights the candidate rows by residency: mapped rows pay the
// block-cache fault path, cold rows the promote-from-spill path.
func (p *Planner) effRows(s QueryShape) float64 {
	return float64(s.HotRows) +
		p.cfg.MappedPenalty*float64(s.MappedRows) +
		p.cfg.ColdPenalty*float64(s.ColdRows)
}

// queueBucket coarsens the live backlog so load only shifts costs at
// order-of-magnitude boundaries — the "modulo queue-depth hysteresis" of
// the placement-flapping invariant.
func queueBucket(depth, workers int) int {
	if workers <= 0 {
		workers = 1
	}
	switch {
	case depth <= 0:
		return 0
	case depth < workers:
		return 1
	case depth < 4*workers:
		return 2
	default:
		return 3
	}
}

// loadFactor scales CPU costs by the bucketed pool backlog.
func loadFactor(depth, workers int) float64 {
	return 1 + 0.75*float64(queueBucket(depth, workers))
}

// ivfGeometry fills in the engine's defaults when the caller does not
// know the index parameters (ivf.Builder: nlist ≈ n/64 clamped to
// [1, 4096], nprobe = max(1, nlist/16)).
func ivfGeometry(rows, nlist, nprobe int) (nl, np int) {
	nl, np = nlist, nprobe
	if nl <= 0 {
		nl = rows / 64
		if nl < 1 {
			nl = 1
		}
		if nl > 4096 {
			nl = 4096
		}
	}
	if np <= 0 {
		np = nl / 16
		if np < 1 {
			np = 1
		}
	}
	if np > nl {
		np = nl
	}
	return nl, np
}

// Per-row structural constants that are not worth calibrating: pushing a
// candidate through the top-k heap, and triaging (skipping) a filtered-out
// row beneath the kernels. Triage is not just the word test — the masked
// probe still walks bucket layouts and block boundaries per skipped row,
// ~3ns/row measured on the IVF scan path.
const (
	heapNsPerRow   = 0.6
	triageNsPerRow = 3.0
)

// CostFlatCPU prices a brute-force blocked scan: every effective row's
// dims through the batch kernel of the active SIMD tier, plus heap
// maintenance, scaled by pool load.
func (p *Planner) CostFlatCPU(s QueryShape) float64 {
	prof := p.Profile()
	rows := p.effRows(s)
	perQ := rows*float64(s.Dim)*prof.kernelNsPerDim(false) + rows*heapNsPerRow
	return fin(float64(s.NQ) * perQ * loadFactor(s.QueueDepth, s.Workers))
}

// CostIVFCPU prices an inverted-file probe: the coarse quantizer over
// nlist centroids plus the scan of the probed fraction of rows (fused SQ8
// ADC when the codes are quantized).
func (p *Planner) CostIVFCPU(s QueryShape) float64 {
	prof := p.Profile()
	nl, np := ivfGeometry(s.Rows(), s.Nlist, s.Nprobe)
	frac := float64(np) / float64(nl)
	rows := p.effRows(s) * frac
	perQ := float64(nl)*float64(s.Dim)*prof.kernelNsPerDim(false) +
		rows*float64(s.Dim)*prof.kernelNsPerDim(s.SQ8) +
		rows*heapNsPerRow
	return fin(float64(s.NQ) * perQ * loadFactor(s.QueueDepth, s.Workers))
}

// CostGPU prices shipping the non-resident scan bytes over PCIe and
// running the scan on the device kernel. Unindexed data is a flat device
// scan of every row. With IVF geometry the device runs the coarse ranking
// and scans only the probed buckets (the pure-GPU plan of Fig. 13), and
// only the batch's probed buckets cross PCIe — their expected union grows
// with nq until the whole dataset is covered. Residency-driven either way:
// a warm device amortizes the copy away.
func (p *Planner) CostGPU(s QueryShape) float64 {
	prof := p.Profile()
	rows := float64(s.Rows())
	bytesPerRow := float64(s.Dim) * 4
	if s.SQ8 {
		bytesPerRow = float64(s.Dim)
	}
	scanRows, coarse, coverage, centroidBytes := rows, 0.0, 1.0, 0.0
	if s.Nlist > 0 {
		nl, np := ivfGeometry(s.Rows(), s.Nlist, s.Nprobe)
		frac := float64(np) / float64(nl)
		scanRows = rows * frac
		coarse = float64(nl) * float64(s.Dim)
		centroidBytes = float64(nl) * float64(s.Dim) * 4
		coverage = float64(s.NQ) * frac
		if coverage > 1 {
			coverage = 1
		}
	}
	miss := (1 - s.DeviceResidentFrac) * (coverage*rows*bytesPerRow + centroidBytes)
	if miss < 0 {
		miss = 0
	}
	cost := float64(s.NQ) * (coarse + scanRows*float64(s.Dim)) * prof.gpuNsPerDim()
	if miss > 0 {
		// The launch latency is a transfer cost: a fully-resident device
		// pays only kernel time, exactly as the virtual clock charges.
		cost += prof.PCIeLatencyNs + miss*prof.pcieNsPerByte()
	}
	return fin(cost)
}

// CostSQ8H prices the hybrid plan (Algorithm 1): step 1 compares every
// query to every bucket centroid on the GPU (centroids stay resident);
// step 2 scans the probed buckets' SQ8 codes on the CPU with the fused
// ADC kernel.
func (p *Planner) CostSQ8H(s QueryShape) float64 {
	prof := p.Profile()
	nl, np := ivfGeometry(s.Rows(), s.Nlist, s.Nprobe)
	frac := float64(np) / float64(nl)
	centroidMiss := (1 - s.DeviceResidentFrac) * float64(nl) * float64(s.Dim) * 4
	if centroidMiss < 0 {
		centroidMiss = 0
	}
	step1 := float64(s.NQ) * float64(nl) * float64(s.Dim) * prof.gpuNsPerDim()
	if centroidMiss > 0 {
		step1 += prof.PCIeLatencyNs + centroidMiss*prof.pcieNsPerByte()
	}
	rows := p.effRows(s) * frac
	step2 := float64(s.NQ) * (rows*float64(s.Dim)*prof.kernelNsPerDim(true) + rows*heapNsPerRow) *
		loadFactor(s.QueueDepth, s.Workers)
	return fin(step1 + step2)
}

// CostVenue dispatches to the venue's estimator.
func (p *Planner) CostVenue(v Venue, s QueryShape) float64 {
	switch v {
	case VenueFlatCPU:
		return p.CostFlatCPU(s)
	case VenueIVFCPU:
		return p.CostIVFCPU(s)
	case VenueGPU:
		return p.CostGPU(s)
	case VenueSQ8H:
		return p.CostSQ8H(s)
	default:
		return fin(math.MaxFloat64)
	}
}

// shapeKey buckets a query shape coarsely (log2 of nq, k and rows, plus
// the residency and load buckets) so hysteresis memory matches "the same
// kind of query" rather than exact parameters.
func shapeKey(scope string, s QueryShape) string {
	cold := 0
	if s.ColdRows > 0 {
		cold = 1
	} else if s.MappedRows > 0 {
		cold = 2
	}
	return fmt.Sprintf("%s/nq%d/k%d/n%d/r%d/q%d",
		scope, log2Bucket(s.NQ), log2Bucket(s.K), log2Bucket(s.Rows()), cold,
		queueBucket(s.QueueDepth, s.Workers))
}

func log2Bucket(v int) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// PlaceQuery picks the cheapest execution venue among the candidates the
// caller can serve result-identically. scope keys the hysteresis memory
// (collection/field); identical shapes keep their venue unless a
// challenger beats it by the switch margin.
func (p *Planner) PlaceQuery(scope string, s QueryShape, venues ...Venue) Decision {
	if len(venues) == 0 {
		venues = []Venue{VenueFlatCPU}
	}
	best, bestCost := venues[0], p.CostVenue(venues[0], s)
	costs := make(map[Venue]float64, len(venues))
	costs[best] = bestCost
	for _, v := range venues[1:] {
		c := p.CostVenue(v, s)
		costs[v] = c
		if c < bestCost {
			best, bestCost = v, c
		}
	}
	d := Decision{Venue: best, Est: time.Duration(bestCost)}
	key := shapeKey(scope, s)
	p.mu.Lock()
	if prev, ok := p.last[key]; ok && prev != best {
		if c, offered := costs[prev]; offered && bestCost >= (1-p.cfg.SwitchMargin)*c {
			// The incumbent is within the margin: hold it.
			d = Decision{Venue: prev, Est: time.Duration(c), Sticky: true}
		}
	}
	if len(p.last) >= maxRemembered {
		p.last = map[string]Venue{}
	}
	p.last[key] = d.Venue
	p.mu.Unlock()
	p.met.decision(d.Choice())
	return d
}

// CostPrefilter prices strategy A: resolve the predicate through the
// sorted column / postings, then one exact per-row distance (ID lookup +
// single-row kernel call) per match.
func (p *Planner) CostPrefilter(s FilterShape) float64 {
	prof := p.Profile()
	perRow := prof.LookupNs + prof.RowOverheadNs + float64(s.Dim)*prof.RowNsPerDim
	return fin(float64(s.Matched) * perRow * loadFactor(s.QueueDepth, s.Workers))
}

// CostPushdown prices strategy B with pushdown: compile the predicate to
// per-segment bitsets (a per-match walk plus a per-row word pass), then
// the vector leg over the probed fraction — triage word ops on skipped
// rows, kernel dims on matches.
func (p *Planner) CostPushdown(s FilterShape) float64 {
	prof := p.Profile()
	compile := float64(s.Rows)*prof.BitsetNsPerRow + float64(s.Matched)*prof.BitsetNsPerMatch
	frac := 1.0
	coarse := 0.0
	if s.Indexed || s.Graph {
		nl, np := ivfGeometry(s.Rows, s.Nlist, s.Nprobe)
		frac = float64(np) / float64(nl)
		coarse = float64(nl) * float64(s.Dim) * prof.kernelNsPerDim(false)
	}
	scan := coarse +
		frac*float64(s.Rows)*triageNsPerRow +
		frac*float64(s.Matched)*(float64(s.Dim)*prof.kernelNsPerDim(s.SQ8)+heapNsPerRow)
	if s.Graph {
		// Filtered traversal visits ~K·beam/selectivity nodes (beam
		// widening keeps recall at low selectivity), capped by the graph.
		sel := s.Selectivity()
		if sel < 1e-3 {
			sel = 1e-3
		}
		visits := float64(s.K) * 16 / sel
		if max := float64(s.Rows); visits > max {
			visits = max
		}
		scan = visits * (float64(s.Dim)*prof.kernelNsPerDim(false) + heapNsPerRow)
	}
	return fin(compile + scan*loadFactor(s.QueueDepth, s.Workers))
}

// PickFilterStrategy chooses the filter strategy for one query from the
// zone-map-estimated selectivity: below the calibrated crossover the
// attribute-first exact scan (strategy A) wins because the O(n) bitset
// compile outweighs the partial scan; above it the pushdown path wins.
// Deterministic in the shape — no hysteresis memory is needed because the
// inputs are already coarse.
func (p *Planner) PickFilterStrategy(s FilterShape) Decision {
	costA := p.CostPrefilter(s)
	costPush := p.CostPushdown(s)
	d := Decision{Strategy: StrategyPushdown, Est: time.Duration(costPush)}
	if s.Graph {
		d.Strategy = StrategyGraph
	}
	if costA < costPush {
		d = Decision{Strategy: StrategyPrefilter, Est: time.Duration(costA)}
	}
	p.met.decision(d.Choice())
	return d
}

// PickPushdown records a pushdown decision without arbitration — for
// predicates the engine cannot resolve to a row enumeration (arbitrary
// and/or/not trees), where the prefilter path is not executable and only
// the pushdown estimate is meaningful.
func (p *Planner) PickPushdown(s FilterShape) Decision {
	d := Decision{Strategy: StrategyPushdown, Est: time.Duration(p.CostPushdown(s))}
	if s.Graph {
		d.Strategy = StrategyGraph
	}
	p.met.decision(d.Choice())
	return d
}

// Mispredict bounds: an actual latency this many times off the estimate
// (beyond the noise floor) counts as a misprediction.
const (
	mispredictRatio = 8.0
	mispredictFloor = 50 * time.Microsecond
)

// Observe feeds the actual latency of an executed plan back to the
// planner's audit metrics. Small queries are noise-floored; beyond that,
// an estimate off by more than 8× either way is a misprediction.
func (p *Planner) Observe(d Decision, actual time.Duration) {
	if actual < mispredictFloor && d.Est < mispredictFloor {
		return
	}
	est := float64(d.Est)
	if est <= 0 {
		est = 1
	}
	ratio := float64(actual) / est
	if ratio > mispredictRatio || ratio < 1/mispredictRatio {
		p.met.mispredict(d.Choice())
	}
}
