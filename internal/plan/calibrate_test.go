package plan

import (
	"math"
	"testing"

	"vectordb/internal/vec"
)

// TestCalibratePositiveFinite: every measured primitive must come back
// finite and positive — the cost model divides by these rates.
func TestCalibratePositiveFinite(t *testing.T) {
	p := Calibrate()
	check := func(name string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Errorf("%s: bad calibrated value %v", name, v)
		}
	}
	for _, l := range vec.Levels() {
		check("kernel/"+l.String(), p.KernelDimsPerSec[l.String()])
	}
	check("sq8", p.SQ8DimsPerSec)
	check("row_per_dim", p.RowNsPerDim)
	if p.RowOverheadNs < 0 {
		t.Errorf("row overhead negative: %v", p.RowOverheadNs)
	}
	check("lookup", p.LookupNs)
	check("bitset_per_row", p.BitsetNsPerRow)
	if p.BitsetNsPerMatch < 0 {
		t.Errorf("bitset per-match negative: %v", p.BitsetNsPerMatch)
	}
	check("pcie_bandwidth", p.PCIeBytesPerSec)
	check("pcie_latency", p.PCIeLatencyNs)
	check("gpu_rate", p.GPUDimsPerSec)
	if p.Fingerprint != Fingerprint() {
		t.Errorf("fingerprint mismatch: %q vs %q", p.Fingerprint, Fingerprint())
	}
	if p.Stale() {
		t.Error("freshly calibrated profile reports stale")
	}
}

// TestSharedProfileSingleton: the lazy process-wide pass runs once.
func TestSharedProfileSingleton(t *testing.T) {
	a, b := SharedProfile(), SharedProfile()
	if a != b {
		t.Error("SharedProfile returned different instances")
	}
}

// TestPlannerLazyCalibration: a planner without a fixed profile decides
// with the shared profile rather than crashing or pricing with zeros.
func TestPlannerLazyCalibration(t *testing.T) {
	p := New(Config{})
	d := p.PlaceQuery("lazy", QueryShape{NQ: 1, K: 10, Dim: 32, HotRows: 4096}, VenueFlatCPU, VenueGPU)
	if d.Est <= 0 {
		t.Errorf("lazy-calibrated decision has non-positive estimate: %v", d.Est)
	}
}
