package plan

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, CalibrationFile)
	p := testProfile()
	p.CreatedUnix = 12345
	if err := p.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Fingerprint != p.Fingerprint || got.CreatedUnix != 12345 ||
		got.BitsetNsPerRow != p.BitsetNsPerRow || got.GPUDimsPerSec != p.GPUDimsPerSec {
		t.Errorf("round trip mismatch: %+v vs %+v", got, p)
	}
	if len(got.KernelDimsPerSec) != len(p.KernelDimsPerSec) {
		t.Errorf("kernel map lost entries: %v", got.KernelDimsPerSec)
	}
}

func TestStaleFingerprint(t *testing.T) {
	p := testProfile()
	if p.Stale() {
		t.Error("matching fingerprint reported stale")
	}
	p.Fingerprint = "v0/simd=abacus/gomaxprocs=1"
	if !p.Stale() {
		t.Error("foreign fingerprint not reported stale")
	}
	var nilProf *Profile
	if !nilProf.Stale() {
		t.Error("nil profile must be stale")
	}
}

// TestLoadOrCalibrate covers the three paths: fresh persisted profile is
// reused; a stale one is re-measured and overwritten; force re-measures
// even a fresh one.
func TestLoadOrCalibrate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, CalibrationFile)

	// No file yet: calibrates and persists.
	p1, loaded, err := LoadOrCalibrate(path, false)
	if err != nil || loaded {
		t.Fatalf("first call: loaded=%v err=%v", loaded, err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("profile not persisted: %v", err)
	}

	// Fresh file: loaded without re-measurement.
	p2, loaded, err := LoadOrCalibrate(path, false)
	if err != nil || !loaded {
		t.Fatalf("second call: loaded=%v err=%v", loaded, err)
	}
	if p2.CreatedUnix != p1.CreatedUnix {
		t.Errorf("reloaded profile differs: %d vs %d", p2.CreatedUnix, p1.CreatedUnix)
	}

	// Force: re-measures despite the fresh file.
	_, loaded, err = LoadOrCalibrate(path, true)
	if err != nil || loaded {
		t.Fatalf("forced call: loaded=%v err=%v", loaded, err)
	}

	// Stale file (foreign fingerprint): re-measures.
	p4 := testProfile()
	p4.Fingerprint = "v0/simd=abacus/gomaxprocs=1"
	if err := p4.Save(path); err != nil {
		t.Fatalf("save stale: %v", err)
	}
	p5, loaded, err := LoadOrCalibrate(path, false)
	if err != nil || loaded {
		t.Fatalf("stale call: loaded=%v err=%v", loaded, err)
	}
	if p5.Stale() {
		t.Error("re-measured profile still stale")
	}
}
