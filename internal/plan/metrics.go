package plan

import "vectordb/internal/obs"

// planMetrics holds the planner's resolved metric handles. Venues and
// strategies form a closed set, so every (family, decision) handle is
// resolved once here — the hot path never touches the registry, and both
// vectordb_plan_* families are registered in exactly this function.
type planMetrics struct {
	decisions   map[string]*obs.Counter
	mispredicts map[string]*obs.Counter
}

func newPlanMetrics(reg *obs.Registry) *planMetrics {
	m := &planMetrics{
		decisions:   map[string]*obs.Counter{},
		mispredicts: map[string]*obs.Counter{},
	}
	for _, choice := range []string{
		string(VenueFlatCPU), string(VenueIVFCPU), string(VenueGPU), string(VenueSQ8H),
		string(StrategyPushdown), string(StrategyPrefilter), string(StrategyGraph),
	} {
		m.decisions[choice] = reg.Counter("vectordb_plan_decisions_total", "decision", choice)
		m.mispredicts[choice] = reg.Counter("vectordb_plan_mispredict_total", "decision", choice)
	}
	return m
}

func (m *planMetrics) decision(choice string) {
	if c := m.decisions[choice]; c != nil {
		c.Inc()
	}
}

func (m *planMetrics) mispredict(choice string) {
	if c := m.mispredicts[choice]; c != nil {
		c.Inc()
	}
}
