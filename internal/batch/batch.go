// Package batch implements the CPU batch query engines of Sec. 3.2.1: given
// m queries and n data vectors, find each query's top-k.
//
// Two engines are provided:
//
//   - ThreadPerQuery reproduces the original Faiss/OpenMP design the paper
//     criticizes: each thread owns one query at a time and streams the entire
//     dataset through the CPU caches, so the data is read m/t times per
//     thread and small batches underuse the cores.
//
//   - CacheAware is Milvus's design (Fig. 3): threads are assigned to *data*
//     ranges instead of queries, queries are processed in blocks sized by
//     Equation (1) so that a block plus its heaps fits in L3, and every
//     (thread, query) pair gets a private heap to avoid synchronization.
//     Each thread then reads the data only m/(s·t) times.
//
// Both engines run their thread bodies on the shared execution pool
// (internal/exec) instead of spawning goroutines per request, so concurrent
// batches contend for a fixed worker set rather than oversubscribing the
// CPU.
package batch

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"vectordb/internal/bufferpool"
	"vectordb/internal/exec"
	"vectordb/internal/index"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// Request describes one multi-query batch.
type Request struct {
	Queries []float32 // m*Dim
	Data    []float32 // n*Dim
	IDs     []int64   // optional external IDs, len n
	Dim     int
	K       int
	// Metric selects the distance. When it is batch-eligible (L2, IP) and
	// Dist is nil, the engines run the blocked batch / query-tile kernels
	// instead of the row-at-a-time pairwise loop.
	Metric vec.Metric
	// Dist optionally overrides Metric with an arbitrary pairwise distance,
	// forcing the scalar path (used by ablations and custom metrics).
	Dist vec.DistFunc
}

func (r *Request) counts() (m, n int) {
	return len(r.Queries) / r.Dim, len(r.Data) / r.Dim
}

// dist resolves the pairwise distance for the scalar paths.
func (r *Request) dist() vec.DistFunc {
	if r.Dist != nil {
		return r.Dist
	}
	return r.Metric.Dist()
}

// tiled reports whether the blocked/tile kernels apply to this request.
func (r *Request) tiled() bool { return r.Dist == nil && r.Metric.BatchEligible() }

func (r *Request) id(i int) int64 {
	if r.IDs == nil {
		return int64(i)
	}
	return r.IDs[i]
}

// Engine answers multi-query batches.
type Engine interface {
	Name() string
	MultiQuery(req *Request) [][]topk.Result
	// MultiQueryCtx is MultiQuery with cancellation: a cancelled batch
	// stops claiming work and returns ctx's error with no usable results.
	MultiQueryCtx(ctx context.Context, req *Request) ([][]topk.Result, error)
}

// poolOf resolves an engine's pool field (nil means the process default).
func poolOf(p *exec.Pool) *exec.Pool {
	if p != nil {
		return p
	}
	return exec.Default()
}

// threadCount resolves an engine's Threads knob against the work size.
func threadCount(configured, work int) int {
	t := configured
	if t <= 0 {
		t = runtime.GOMAXPROCS(0)
	}
	if t > work {
		t = work
	}
	if t < 1 {
		t = 1
	}
	return t
}

// ThreadPerQuery is the baseline engine (original Faiss design).
type ThreadPerQuery struct {
	Threads int // default GOMAXPROCS
	// Pool runs the thread bodies; nil means exec.Default().
	Pool *exec.Pool
}

// Name implements Engine.
func (e *ThreadPerQuery) Name() string { return "thread-per-query" }

// MultiQuery implements Engine.
func (e *ThreadPerQuery) MultiQuery(req *Request) [][]topk.Result {
	out, _ := e.MultiQueryCtx(context.Background(), req)
	return out
}

// MultiQueryCtx implements Engine: pool tasks each own a pooled k-heap and
// claim one query at a time off an atomic cursor, scanning all n vectors
// (through the blocked batch kernels when the metric allows).
func (e *ThreadPerQuery) MultiQueryCtx(ctx context.Context, req *Request) ([][]topk.Result, error) {
	m, n := req.counts()
	out := make([][]topk.Result, m)
	threads := threadCount(e.Threads, m)
	tiled := req.tiled()
	var cursor atomic.Int64
	err := poolOf(e.Pool).Map(ctx, threads, func(int) {
		h := topk.GetHeap(req.K)
		for ctx.Err() == nil {
			qi := int(cursor.Add(1)) - 1
			if qi >= m {
				break
			}
			h.Reset()
			q := req.Queries[qi*req.Dim : (qi+1)*req.Dim]
			if tiled {
				index.ScanBlocked(h, req.Metric, q, req.Data, req.Dim, req.IDs, index.Selection{})
			} else {
				dist := req.dist()
				for i := 0; i < n; i++ {
					h.Push(req.id(i), dist(q, req.Data[i*req.Dim:(i+1)*req.Dim]))
				}
			}
			out[qi] = h.Results()
		}
		topk.PutHeap(h)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SharedHeap is an ablation engine: the cache-aware data partitioning but
// ONE mutex-protected heap per query instead of the per-(thread,query) heap
// matrix — quantifying the synchronization the paper's design avoids
// ("Milvus assigns a heap per query per thread" to minimize
// synchronization overhead, Sec. 3.2.1).
type SharedHeap struct {
	Threads int
	L3Bytes int64
	// Pool runs the thread bodies; nil means exec.Default().
	Pool *exec.Pool
}

// Name implements Engine.
func (e *SharedHeap) Name() string { return "shared-heap" }

// MultiQuery implements Engine.
func (e *SharedHeap) MultiQuery(req *Request) [][]topk.Result {
	out, _ := e.MultiQueryCtx(context.Background(), req)
	return out
}

// MultiQueryCtx implements Engine.
func (e *SharedHeap) MultiQueryCtx(ctx context.Context, req *Request) ([][]topk.Result, error) {
	m, n := req.counts()
	out := make([][]topk.Result, m)
	threads := threadCount(e.Threads, n)
	l3 := e.L3Bytes
	if l3 <= 0 {
		l3 = 32 << 20
	}
	s := BlockSize(l3, req.Dim, threads, req.K, m)
	chunk := (n + threads - 1) / threads
	pool := poolOf(e.Pool)

	heaps := make([]*topk.Heap, s)
	locks := make([]sync.Mutex, s)
	for i := range heaps {
		heaps[i] = topk.New(req.K)
	}
	for q0 := 0; q0 < m; q0 += s {
		q1 := q0 + s
		if q1 > m {
			q1 = m
		}
		blockLen := q1 - q0
		for i := 0; i < blockLen; i++ {
			heaps[i].Reset()
		}
		err := pool.Map(ctx, threads, func(w int) {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			dist := req.dist()
			for i := lo; i < hi; i++ {
				row := req.Data[i*req.Dim : (i+1)*req.Dim]
				id := req.id(i)
				for qj := 0; qj < blockLen; qj++ {
					q := req.Queries[(q0+qj)*req.Dim : (q0+qj+1)*req.Dim]
					d := dist(q, row)
					locks[qj].Lock()
					heaps[qj].Push(id, d)
					locks[qj].Unlock()
				}
			}
		})
		if err != nil {
			return nil, err
		}
		for qj := 0; qj < blockLen; qj++ {
			out[q0+qj] = heaps[qj].Snapshot()
		}
	}
	return out, nil
}

// CacheAware is Milvus's blocked engine.
type CacheAware struct {
	Threads int   // default GOMAXPROCS
	L3Bytes int64 // modeled L3 capacity; default 32 MiB
	// Pool runs the thread bodies; nil means exec.Default().
	Pool *exec.Pool
}

// Name implements Engine.
func (e *CacheAware) Name() string { return "cache-aware" }

// BlockSize evaluates Equation (1):
//
//	s = L3 / (d·sizeof(float) + t·k·(sizeof(int64)+sizeof(float)))
//
// clamped to [1, m].
func BlockSize(l3Bytes int64, dim, threads, k, m int) int {
	denom := int64(dim)*4 + int64(threads)*int64(k)*12
	s := int(l3Bytes / denom)
	if s < 1 {
		s = 1
	}
	if s > m {
		s = m
	}
	return s
}

// MultiQuery implements Engine.
func (e *CacheAware) MultiQuery(req *Request) [][]topk.Result {
	out, _ := e.MultiQueryCtx(context.Background(), req)
	return out
}

// tileRows sizes the data chunk of the engine's query-tile inner loop so
// the blockLen×rows distance tile stays cache-resident.
func tileRows(blockLen int) int {
	r := 16384 / blockLen
	if r < 16 {
		r = 16
	}
	if r > 256 {
		r = 256
	}
	return r
}

// tileRange runs one thread's data range against the whole query block
// through the query-tile kernels: the block is already contiguous in
// req.Queries, so each chunk of rows is one kernel call producing a
// blockLen×rows distance tile in a pooled buffer.
func tileRange(req *Request, heaps *topk.Matrix, w, lo, hi, q0, blockLen int) {
	dim := req.Dim
	qblock := req.Queries[q0*dim : (q0+blockLen)*dim]
	rows := tileRows(blockLen)
	op := bufferpool.GetFloats(blockLen * rows)
	out := *op
	ip := req.Metric == vec.IP
	for i0 := lo; i0 < hi; i0 += rows {
		i1 := i0 + rows
		if i1 > hi {
			i1 = hi
		}
		c := i1 - i0
		chunk := req.Data[i0*dim : i1*dim]
		tile := out[:blockLen*c]
		if ip {
			vec.NegDotTile(qblock, chunk, dim, tile)
		} else {
			vec.L2SquaredTile(qblock, chunk, dim, tile)
		}
		for qj := 0; qj < blockLen; qj++ {
			h := heaps.At(w, qj)
			for r, d := range tile[qj*c : (qj+1)*c] {
				h.Push(req.id(i0+r), d)
			}
		}
	}
	bufferpool.PutFloats(op)
}

// MultiQueryCtx implements Engine per Fig. 3: data is range-partitioned
// across threads; queries are processed block-by-block; each thread
// compares its data range against the whole in-cache block — through the
// query-tile kernels when the metric allows — filling its private heap row;
// per-query heaps are merged at block end.
func (e *CacheAware) MultiQueryCtx(ctx context.Context, req *Request) ([][]topk.Result, error) {
	m, n := req.counts()
	out := make([][]topk.Result, m)
	threads := threadCount(e.Threads, n)
	l3 := e.L3Bytes
	if l3 <= 0 {
		l3 = 32 << 20
	}
	s := BlockSize(l3, req.Dim, threads, req.K, m)

	chunk := (n + threads - 1) / threads
	heaps := topk.NewMatrix(threads, s, req.K)
	pool := poolOf(e.Pool)
	tiled := req.tiled()
	for q0 := 0; q0 < m; q0 += s {
		q1 := q0 + s
		if q1 > m {
			q1 = m
		}
		blockLen := q1 - q0
		heaps.Reset()
		err := pool.Map(ctx, threads, func(w int) {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				return
			}
			if tiled {
				tileRange(req, heaps, w, lo, hi, q0, blockLen)
				return
			}
			dist := req.dist()
			for i := lo; i < hi; i++ {
				row := req.Data[i*req.Dim : (i+1)*req.Dim]
				id := req.id(i)
				for qj := 0; qj < blockLen; qj++ {
					q := req.Queries[(q0+qj)*req.Dim : (q0+qj+1)*req.Dim]
					heaps.At(w, qj).Push(id, dist(q, row))
				}
			}
		})
		if err != nil {
			return nil, err
		}
		for qj := 0; qj < blockLen; qj++ {
			out[q0+qj] = heaps.MergeQuery(qj, req.K)
		}
	}
	return out, nil
}
