// Package batch implements the CPU batch query engines of Sec. 3.2.1: given
// m queries and n data vectors, find each query's top-k.
//
// Two engines are provided:
//
//   - ThreadPerQuery reproduces the original Faiss/OpenMP design the paper
//     criticizes: each thread owns one query at a time and streams the entire
//     dataset through the CPU caches, so the data is read m/t times per
//     thread and small batches underuse the cores.
//
//   - CacheAware is Milvus's design (Fig. 3): threads are assigned to *data*
//     ranges instead of queries, queries are processed in blocks sized by
//     Equation (1) so that a block plus its heaps fits in L3, and every
//     (thread, query) pair gets a private heap to avoid synchronization.
//     Each thread then reads the data only m/(s·t) times.
package batch

import (
	"runtime"
	"sync"

	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// Request describes one multi-query batch.
type Request struct {
	Queries []float32 // m*Dim
	Data    []float32 // n*Dim
	IDs     []int64   // optional external IDs, len n
	Dim     int
	K       int
	Dist    vec.DistFunc
}

func (r *Request) counts() (m, n int) {
	return len(r.Queries) / r.Dim, len(r.Data) / r.Dim
}

func (r *Request) id(i int) int64 {
	if r.IDs == nil {
		return int64(i)
	}
	return r.IDs[i]
}

// Engine answers multi-query batches.
type Engine interface {
	Name() string
	MultiQuery(req *Request) [][]topk.Result
}

// ThreadPerQuery is the baseline engine (original Faiss design).
type ThreadPerQuery struct {
	Threads int // default GOMAXPROCS
}

// Name implements Engine.
func (e *ThreadPerQuery) Name() string { return "thread-per-query" }

// MultiQuery implements Engine: a worker pool where each worker claims one
// query at a time and scans all n vectors with a private k-heap.
func (e *ThreadPerQuery) MultiQuery(req *Request) [][]topk.Result {
	m, n := req.counts()
	out := make([][]topk.Result, m)
	threads := e.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > m {
		threads = m
	}
	if threads < 1 {
		threads = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := topk.New(req.K)
			for qi := range next {
				h.Reset()
				q := req.Queries[qi*req.Dim : (qi+1)*req.Dim]
				for i := 0; i < n; i++ {
					h.Push(req.id(i), req.Dist(q, req.Data[i*req.Dim:(i+1)*req.Dim]))
				}
				out[qi] = h.Results()
			}
		}()
	}
	for qi := 0; qi < m; qi++ {
		next <- qi
	}
	close(next)
	wg.Wait()
	return out
}

// SharedHeap is an ablation engine: the cache-aware data partitioning but
// ONE mutex-protected heap per query instead of the per-(thread,query) heap
// matrix — quantifying the synchronization the paper's design avoids
// ("Milvus assigns a heap per query per thread" to minimize
// synchronization overhead, Sec. 3.2.1).
type SharedHeap struct {
	Threads int
	L3Bytes int64
}

// Name implements Engine.
func (e *SharedHeap) Name() string { return "shared-heap" }

// MultiQuery implements Engine.
func (e *SharedHeap) MultiQuery(req *Request) [][]topk.Result {
	m, n := req.counts()
	out := make([][]topk.Result, m)
	threads := e.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	l3 := e.L3Bytes
	if l3 <= 0 {
		l3 = 32 << 20
	}
	s := BlockSize(l3, req.Dim, threads, req.K, m)
	chunk := (n + threads - 1) / threads

	heaps := make([]*topk.Heap, s)
	locks := make([]sync.Mutex, s)
	for i := range heaps {
		heaps[i] = topk.New(req.K)
	}
	var wg sync.WaitGroup
	for q0 := 0; q0 < m; q0 += s {
		q1 := q0 + s
		if q1 > m {
			q1 = m
		}
		blockLen := q1 - q0
		for i := 0; i < blockLen; i++ {
			heaps[i].Reset()
		}
		for w := 0; w < threads; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					row := req.Data[i*req.Dim : (i+1)*req.Dim]
					id := req.id(i)
					for qj := 0; qj < blockLen; qj++ {
						q := req.Queries[(q0+qj)*req.Dim : (q0+qj+1)*req.Dim]
						d := req.Dist(q, row)
						locks[qj].Lock()
						heaps[qj].Push(id, d)
						locks[qj].Unlock()
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		for qj := 0; qj < blockLen; qj++ {
			out[q0+qj] = heaps[qj].Snapshot()
		}
	}
	return out
}

// CacheAware is Milvus's blocked engine.
type CacheAware struct {
	Threads int   // default GOMAXPROCS
	L3Bytes int64 // modeled L3 capacity; default 32 MiB
}

// Name implements Engine.
func (e *CacheAware) Name() string { return "cache-aware" }

// BlockSize evaluates Equation (1):
//
//	s = L3 / (d·sizeof(float) + t·k·(sizeof(int64)+sizeof(float)))
//
// clamped to [1, m].
func BlockSize(l3Bytes int64, dim, threads, k, m int) int {
	denom := int64(dim)*4 + int64(threads)*int64(k)*12
	s := int(l3Bytes / denom)
	if s < 1 {
		s = 1
	}
	if s > m {
		s = m
	}
	return s
}

// MultiQuery implements Engine per Fig. 3: data is range-partitioned across
// threads; queries are processed block-by-block; each thread compares its
// data range against the whole in-cache block, filling its private heap row;
// per-query heaps are merged at block end.
func (e *CacheAware) MultiQuery(req *Request) [][]topk.Result {
	m, n := req.counts()
	out := make([][]topk.Result, m)
	threads := e.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	l3 := e.L3Bytes
	if l3 <= 0 {
		l3 = 32 << 20
	}
	s := BlockSize(l3, req.Dim, threads, req.K, m)

	chunk := (n + threads - 1) / threads
	heaps := topk.NewMatrix(threads, s, req.K)
	var wg sync.WaitGroup
	for q0 := 0; q0 < m; q0 += s {
		q1 := q0 + s
		if q1 > m {
			q1 = m
		}
		blockLen := q1 - q0
		heaps.Reset()
		for w := 0; w < threads; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					row := req.Data[i*req.Dim : (i+1)*req.Dim]
					id := req.id(i)
					for qj := 0; qj < blockLen; qj++ {
						q := req.Queries[(q0+qj)*req.Dim : (q0+qj+1)*req.Dim]
						heaps.At(w, qj).Push(id, req.Dist(q, row))
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for qj := 0; qj < blockLen; qj++ {
			out[q0+qj] = heaps.MergeQuery(qj, req.K)
		}
	}
	return out
}
