package batch

import (
	"math/rand"
	"testing"

	"vectordb/internal/dataset"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

func makeReq(t testing.TB, n, m, dim, k int) *Request {
	t.Helper()
	d := dataset.Uniform(n, dim, 1)
	qs := dataset.Queries(d, m, 2)
	return &Request{Queries: qs, Data: d.Data, Dim: dim, K: k, Dist: vec.L2Squared}
}

func sameResults(a, b [][]topk.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestEnginesAgreeWithBruteForce(t *testing.T) {
	req := makeReq(t, 500, 37, 16, 7)
	m, n := req.counts()
	want := make([][]topk.Result, m)
	for qi := 0; qi < m; qi++ {
		h := topk.New(req.K)
		q := req.Queries[qi*req.Dim : (qi+1)*req.Dim]
		for i := 0; i < n; i++ {
			h.Push(int64(i), req.Dist(q, req.Data[i*req.Dim:(i+1)*req.Dim]))
		}
		want[qi] = h.Results()
	}
	for _, e := range []Engine{&ThreadPerQuery{}, &CacheAware{}, &ThreadPerQuery{Threads: 3}, &CacheAware{Threads: 3, L3Bytes: 4096}} {
		got := e.MultiQuery(req)
		if !sameResults(got, want) {
			t.Errorf("%s: results differ from brute force", e.Name())
		}
	}
}

func TestEnginesAgreeWithEachOther(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		n := 50 + r.Intn(400)
		m := 1 + r.Intn(60)
		dim := 4 + r.Intn(28)
		k := 1 + r.Intn(10)
		req := makeReq(t, n, m, dim, k)
		a := (&ThreadPerQuery{}).MultiQuery(req)
		b := (&CacheAware{}).MultiQuery(req)
		if !sameResults(a, b) {
			t.Fatalf("trial %d (n=%d m=%d dim=%d k=%d): engines disagree", trial, n, m, dim, k)
		}
	}
}

func TestCustomIDs(t *testing.T) {
	req := makeReq(t, 100, 5, 8, 3)
	req.IDs = make([]int64, 100)
	for i := range req.IDs {
		req.IDs[i] = int64(i) + 5000
	}
	for _, e := range []Engine{&ThreadPerQuery{}, &CacheAware{}} {
		for _, rs := range e.MultiQuery(req) {
			for _, r := range rs {
				if r.ID < 5000 {
					t.Fatalf("%s: id %d not remapped", e.Name(), r.ID)
				}
			}
		}
	}
}

func TestBlockSizeEquation(t *testing.T) {
	// Equation (1): s = L3 / (d*4 + t*k*12)
	got := BlockSize(36<<20, 128, 16, 50, 1<<30)
	want := int((36 << 20) / (128*4 + 16*50*12))
	if got != want {
		t.Fatalf("BlockSize = %d, want %d", got, want)
	}
	if BlockSize(1, 128, 16, 50, 100) != 1 {
		t.Fatal("BlockSize must clamp to 1")
	}
	if BlockSize(1<<40, 128, 16, 50, 10) != 10 {
		t.Fatal("BlockSize must clamp to m")
	}
}

func TestSingleQuerySingleVector(t *testing.T) {
	req := &Request{
		Queries: []float32{1, 2},
		Data:    []float32{1, 2},
		Dim:     2, K: 5, Dist: vec.L2Squared,
	}
	for _, e := range []Engine{&ThreadPerQuery{}, &CacheAware{}} {
		got := e.MultiQuery(req)
		if len(got) != 1 || len(got[0]) != 1 || got[0][0].ID != 0 || got[0][0].Distance != 0 {
			t.Fatalf("%s: %v", e.Name(), got)
		}
	}
}

func TestMoreThreadsThanData(t *testing.T) {
	req := makeReq(t, 3, 2, 4, 2)
	e := &CacheAware{Threads: 64}
	got := e.MultiQuery(req)
	if len(got) != 2 || len(got[0]) != 2 {
		t.Fatalf("got %v", got)
	}
}

// The cache-aware engine must touch the data fewer times; observable proxy:
// with a tiny modeled L3, block size collapses to 1 and both engines still
// agree (correctness under the degenerate block size).
func TestDegenerateBlockSize(t *testing.T) {
	req := makeReq(t, 200, 16, 32, 5)
	a := (&CacheAware{L3Bytes: 1}).MultiQuery(req)
	b := (&ThreadPerQuery{}).MultiQuery(req)
	if !sameResults(a, b) {
		t.Fatal("degenerate block size broke correctness")
	}
}

func BenchmarkEngines(b *testing.B) {
	d := dataset.SIFTLike(20000, 4)
	qs := dataset.Queries(d, 256, 5)
	req := &Request{Queries: qs, Data: d.Data, Dim: d.Dim, K: 50, Dist: vec.L2Squared}
	for _, e := range []Engine{&ThreadPerQuery{}, &CacheAware{}} {
		b.Run(e.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.MultiQuery(req)
			}
		})
	}
}

func TestSharedHeapEngineAgrees(t *testing.T) {
	req := makeReq(t, 300, 17, 12, 6)
	want := (&ThreadPerQuery{}).MultiQuery(req)
	got := (&SharedHeap{}).MultiQuery(req)
	if !sameResults(got, want) {
		t.Fatal("shared-heap engine diverges from baseline")
	}
	got = (&SharedHeap{Threads: 3, L3Bytes: 4096}).MultiQuery(req)
	if !sameResults(got, want) {
		t.Fatal("shared-heap engine diverges with custom config")
	}
}
