package batch

import (
	"math"
	"testing"

	"vectordb/internal/dataset"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// makeKernelReq builds a Request on the kernel path (Metric set, Dist nil).
func makeKernelReq(t testing.TB, n, m, dim, k int, metric vec.Metric) *Request {
	t.Helper()
	d := dataset.Uniform(n, dim, 7)
	qs := dataset.Queries(d, m, 8)
	return &Request{Queries: qs, Data: d.Data, Dim: dim, K: k, Metric: metric}
}

func approxSame(a, b [][]topk.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] == b[i][j] {
				continue
			}
			diff := float64(a[i][j].Distance) - float64(b[i][j].Distance)
			scale := math.Max(1, math.Abs(float64(b[i][j].Distance)))
			if math.Abs(diff) > 1e-5*scale {
				return false
			}
		}
	}
	return true
}

// TestKernelPathAgreesWithScalarPath: the blocked (ThreadPerQuery) and
// tiled (CacheAware) kernel paths must match the explicit-Dist scalar path
// within the documented FP tolerance, for both eligible metrics.
func TestKernelPathAgreesWithScalarPath(t *testing.T) {
	for _, metric := range []vec.Metric{vec.L2, vec.IP} {
		req := makeKernelReq(t, 700, 19, 24, 9, metric)
		scalar := *req
		scalar.Dist = metric.Dist()
		for _, e := range []Engine{&ThreadPerQuery{}, &CacheAware{}, &CacheAware{Threads: 3, L3Bytes: 8192}} {
			want := e.MultiQuery(&scalar)
			got := e.MultiQuery(req)
			if !approxSame(got, want) {
				t.Errorf("%s metric %v: kernel path diverges from scalar path", e.Name(), metric)
			}
		}
	}
}

// TestNonEligibleMetricFallsBack: cosine has no batch kernel; the engines
// must produce correct results through the pairwise fallback.
func TestNonEligibleMetricFallsBack(t *testing.T) {
	req := makeKernelReq(t, 300, 7, 16, 5, vec.Cosine)
	scalar := *req
	scalar.Dist = vec.CosineDistance
	a := (&ThreadPerQuery{}).MultiQuery(req)
	b := (&CacheAware{}).MultiQuery(&scalar)
	if !approxSame(a, b) {
		t.Fatal("cosine fallback diverges")
	}
}

// TestEnginesUseBatchKernels is the conformance counter guard for the
// batch engines: a kernel-path request must dispatch through the hooked
// batch/tile entry points, and a Dist-override request must not.
func TestEnginesUseBatchKernels(t *testing.T) {
	prev := vec.DispatchCounting()
	vec.SetDispatchCounting(true)
	defer vec.SetDispatchCounting(prev)
	req := makeKernelReq(t, 500, 8, 16, 5, vec.L2)
	for _, e := range []Engine{&ThreadPerQuery{}, &CacheAware{}} {
		vec.ResetDispatchCounts()
		e.MultiQuery(req)
		if vec.BatchDispatchTotal() == 0 {
			t.Errorf("%s: kernel-path request made no batch dispatches", e.Name())
		}
	}
	override := *req
	override.Dist = vec.L2Squared
	vec.ResetDispatchCounts()
	(&CacheAware{}).MultiQuery(&override)
	if vec.BatchDispatchTotal() != 0 {
		t.Error("Dist-override request went through batch kernels")
	}
}
