package stress

import (
	"flag"
	"testing"
	"time"
)

// -seed reproduces a failing run: the operation schedule (and the fault
// decision stream) is a pure function of it.
var seedFlag = flag.Int64("seed", 1, "stress schedule seed")

// -faults selects an extra fault mode for the dedicated fault tests
// ("cancel" arms the context-cancellation mode in TestStressCancel even
// under -short; "filtered" does the same for the attribute-filtered mode in
// TestStressFiltered; "spill" for the out-of-core demotion mode in
// TestStressSpill; "plan" for the query-planner mode in TestStressPlan).
var faultsFlag = flag.String("faults", "", `extra fault mode ("cancel", "filtered", "spill", "plan")`)

// TestScheduleDeterminism: the acceptance contract is that the same -seed
// yields the same operation schedule. The hash covers op kinds, batch sizes
// and the raw randomness used for target selection.
func TestScheduleDeterminism(t *testing.T) {
	a := ScheduleHash(*seedFlag, 4, 512)
	b := ScheduleHash(*seedFlag, 4, 512)
	if a != b {
		t.Fatalf("same seed produced different schedules: %x vs %x", a, b)
	}
	if c := ScheduleHash(*seedFlag+1, 4, 512); c == a {
		t.Fatalf("different seeds produced identical schedules: %x", a)
	}
	// Streams must be decorrelated across workers.
	s0, s1 := NewStream(*seedFlag, 0), NewStream(*seedFlag, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if s0.Next() == s1.Next() {
			same++
		}
	}
	if same > 8 {
		t.Fatalf("worker streams correlated: %d/64 identical ops", same)
	}
}

func TestVectorForIDDeterministic(t *testing.T) {
	a, b := VectorForID(42, 16), VectorForID(42, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("VectorForID not deterministic at %d", i)
		}
		if a[i] != a[i] {
			t.Fatalf("VectorForID produced NaN at %d", i)
		}
	}
	c := VectorForID(43, 16)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("adjacent IDs map to identical vectors")
	}
}

// TestStressClean runs the full mixed workload fault-free: 4 writers + 4
// searchers for over 2s (the acceptance floor), checking every invariant.
func TestStressClean(t *testing.T) {
	if testing.Short() {
		t.Skip("stress run skipped in -short mode")
	}
	rep, err := Run(Config{
		Seed:      *seedFlag,
		Writers:   4,
		Searchers: 4,
		Duration:  2200 * time.Millisecond,
	})
	t.Logf("clean: %s", rep)
	if err != nil {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal(err)
	}
	if rep.Inserted == 0 || rep.Searches == 0 {
		t.Fatalf("workload did not run: %s", rep)
	}
}

// TestStressFaults repeats the run with the fault layer armed: delayed
// flushes, failed object-store writes, and torn segment blobs. The system
// must tolerate the faults mid-run (acknowledged rows stay buffered and are
// retried) and drain to an exactly consistent state once faults stop.
func TestStressFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("stress run skipped in -short mode")
	}
	rep, err := Run(Config{
		Seed:      *seedFlag,
		Writers:   4,
		Searchers: 4,
		Duration:  2200 * time.Millisecond,
		Faults: FaultConfig{
			FailRate:  0.10,
			TornRate:  0.05,
			DelayRate: 0.20,
			MaxDelay:  2 * time.Millisecond,
		},
	})
	t.Logf("faults: %s", rep)
	if err != nil {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal(err)
	}
	if rep.Injected == 0 {
		t.Fatal("fault layer injected nothing; harness is not exercising failure paths")
	}
}

// TestStressCancel arms the cancellation fault mode: half the searcher
// queries run under contexts that are cancelled or expire mid-flight. The
// run must stay exactly consistent, every context error must be surfaced
// (never swallowed into bogus results), and Run's end-of-run checks verify
// no goroutine or snapshot leaks from the abandoned queries.
func TestStressCancel(t *testing.T) {
	if testing.Short() && *faultsFlag != "cancel" {
		t.Skip("stress run skipped in -short mode (force with -faults=cancel)")
	}
	dur := 2200 * time.Millisecond
	if testing.Short() {
		dur = 500 * time.Millisecond
	}
	rep, err := Run(Config{
		Seed:       *seedFlag,
		Writers:    4,
		Searchers:  4,
		Duration:   dur,
		CancelRate: 0.5,
	})
	t.Logf("cancel: %s", rep)
	if err != nil {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal(err)
	}
	if rep.Cancelled == 0 {
		t.Log("no query observed a context error this run (cancellation raced completion); mode still exercised")
	}
	if rep.Searches == 0 {
		t.Fatalf("workload did not run: %s", rep)
	}
}

// TestStressFiltered arms the attribute-filtered mode: half the searcher
// queries carry a range predicate over the ID-derived attribute, racing
// concurrent inserts, deletes, flushes and index builds. The predicate is
// checkable from result IDs alone, so the zero-filtered-out-IDs invariant
// holds mid-flight; quiesce then cross-checks filtered results exactly
// against a filter-then-scan oracle over the surviving rows.
func TestStressFiltered(t *testing.T) {
	if testing.Short() && *faultsFlag != "filtered" {
		t.Skip("stress run skipped in -short mode (force with -faults=filtered)")
	}
	dur := 2200 * time.Millisecond
	if testing.Short() {
		dur = 500 * time.Millisecond
	}
	rep, err := Run(Config{
		Seed:       *seedFlag,
		Writers:    4,
		Searchers:  4,
		Duration:   dur,
		FilterRate: 0.5,
	})
	t.Logf("filtered: %s", rep)
	if err != nil {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal(err)
	}
	if rep.Filtered == 0 {
		t.Fatalf("no filtered searches ran: %s", rep)
	}
}

// TestStressSpill arms the out-of-core mode with the full fault layer:
// sealed segments tier into mmap-backed extent files spilled through the
// fault-injected store, a tight mapped-bytes budget keeps the LRU
// demoting, and a background spiller force-demotes everything mapped every
// few milliseconds — so concurrent searches, gets and index builds promote
// cold segments back through failed and delayed spill reads for the whole
// run. Quiesce must still account for every acknowledged write exactly.
func TestStressSpill(t *testing.T) {
	if testing.Short() && *faultsFlag != "spill" {
		t.Skip("stress run skipped in -short mode (force with -faults=spill)")
	}
	dur := 2200 * time.Millisecond
	if testing.Short() {
		dur = 500 * time.Millisecond
	}
	rep, err := Run(Config{
		Seed:      *seedFlag,
		Writers:   4,
		Searchers: 4,
		Duration:  dur,
		Spill:     true,
		Faults: FaultConfig{
			FailRate:  0.10,
			TornRate:  0.05,
			DelayRate: 0.20,
			MaxDelay:  2 * time.Millisecond,
		},
	})
	t.Logf("spill: %s", rep)
	if err != nil {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal(err)
	}
	if rep.Tiered == 0 {
		t.Fatalf("no segments tiered: %s", rep)
	}
	if rep.Demoted == 0 {
		t.Fatalf("spiller never demoted a segment: %s", rep)
	}
	if rep.Injected == 0 {
		t.Fatal("fault layer injected nothing; spill promotions were not exercised under faults")
	}
}

// TestStressPlan arms the query-planner mode: half the searcher queries
// run traced and must carry a plan= decision while writers reshape the
// collection under them (flushes, merges and index builds all change the
// shape the planner prices). After quiesce the same 16-query workload is
// replayed back-to-back twice; on a drained system the plan sequences must
// be identical — any divergence is placement flapping, which the
// hysteresis margin exists to prevent.
func TestStressPlan(t *testing.T) {
	if testing.Short() && *faultsFlag != "plan" {
		t.Skip("stress run skipped in -short mode (force with -faults=plan)")
	}
	dur := 2200 * time.Millisecond
	if testing.Short() {
		dur = 500 * time.Millisecond
	}
	rep, err := Run(Config{
		Seed:      *seedFlag,
		Writers:   4,
		Searchers: 4,
		Duration:  dur,
		PlanCheck: true,
	})
	t.Logf("plan: %s", rep)
	if err != nil {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal(err)
	}
	if rep.Planned == 0 {
		t.Fatalf("no planned searches verified: %s", rep)
	}
}

// TestStressSmoke is the fast path for plain `go test`: a short clean run
// plus a short faulted run so every CI invocation exercises the harness.
func TestStressSmoke(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: *seedFlag, Writers: 2, Searchers: 2, Duration: 150 * time.Millisecond},
		{Seed: *seedFlag, Writers: 2, Searchers: 2, Duration: 150 * time.Millisecond,
			Faults: FaultConfig{FailRate: 0.1, TornRate: 0.1, DelayRate: 0.1}},
		{Seed: *seedFlag, Writers: 2, Searchers: 2, Duration: 150 * time.Millisecond,
			CancelRate: 0.5},
		{Seed: *seedFlag, Writers: 2, Searchers: 2, Duration: 150 * time.Millisecond,
			FilterRate: 0.5},
		{Seed: *seedFlag, Writers: 2, Searchers: 2, Duration: 150 * time.Millisecond,
			Spill: true, Faults: FaultConfig{FailRate: 0.1, DelayRate: 0.1}},
		{Seed: *seedFlag, Writers: 2, Searchers: 2, Duration: 150 * time.Millisecond,
			PlanCheck: true},
	} {
		rep, err := Run(cfg)
		t.Logf("smoke: %s", rep)
		if err != nil {
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			t.Fatal(err)
		}
	}
}
