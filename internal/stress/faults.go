// Package stress is a deterministic, seed-driven concurrent stress and
// fault-injection harness for the core query path. It drives a mixed
// insert/delete/search/flush/snapshot/index-build workload against one
// Collection from many goroutines, optionally through a fault-injecting
// object store, and checks the invariants that concurrency bugs break
// first: no lost acknowledged writes, snapshot monotonicity, well-formed
// search results, and a recall floor against a brute-force scan.
//
// The operation schedule is a pure function of the seed (see schedule.go),
// so a failing run reproduces with the same -seed; only the goroutine
// interleaving varies between runs.
package stress

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vectordb/internal/objstore"
)

// ErrInjected marks failures produced by a FaultStore, so callers can tell
// deliberate faults from real bugs.
var ErrInjected = errors.New("stress: injected fault")

// FaultConfig sets per-operation fault probabilities in [0,1].
type FaultConfig struct {
	// FailRate drops the operation entirely: a Put stores nothing, a
	// Get/Delete does nothing; the call returns ErrInjected.
	FailRate float64
	// TornRate applies only to Put: a random prefix of the blob is stored
	// and the call still returns ErrInjected — the write "tore" mid-object.
	// Readers must treat such blobs as corrupt, never as committed.
	TornRate float64
	// DelayRate stalls the operation by a random slice of MaxDelay before
	// performing it, widening race windows (a slow flush, a slow sync).
	DelayRate float64
	// MaxDelay bounds injected stalls; default 2ms.
	MaxDelay time.Duration
}

// FaultStore wraps an objstore.Store with seeded, probabilistic fault
// injection. It is safe for concurrent use; the fault decision stream is
// guarded by a mutex so the store composes with any store underneath.
type FaultStore struct {
	inner objstore.Store
	cfg   FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	enabled  atomic.Bool
	injected atomic.Int64
}

// NewFaultStore wraps inner with fault injection driven by seed.
func NewFaultStore(inner objstore.Store, seed int64, cfg FaultConfig) *FaultStore {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	fs := &FaultStore{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	fs.enabled.Store(true)
	return fs
}

// Disable stops all fault injection (quiesce phase: the system must be able
// to drain to a consistent state once faults cease).
func (fs *FaultStore) Disable() { fs.enabled.Store(false) }

// Enable re-arms fault injection.
func (fs *FaultStore) Enable() { fs.enabled.Store(true) }

// Injected reports how many faults have been injected so far.
func (fs *FaultStore) Injected() int64 { return fs.injected.Load() }

// decision is one sample of the fault stream.
type decision struct {
	fail, torn bool
	delay      time.Duration
	tornFrac   float64
}

func (fs *FaultStore) draw(isPut bool) decision {
	if !fs.enabled.Load() {
		return decision{}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var d decision
	if fs.rng.Float64() < fs.cfg.DelayRate {
		d.delay = time.Duration(fs.rng.Int63n(int64(fs.cfg.MaxDelay)))
	}
	if isPut && fs.rng.Float64() < fs.cfg.TornRate {
		d.torn = true
		d.tornFrac = fs.rng.Float64()
		return d
	}
	if fs.rng.Float64() < fs.cfg.FailRate {
		d.fail = true
	}
	return d
}

// Put implements objstore.Store with fail/torn/delay injection.
func (fs *FaultStore) Put(key string, data []byte) error {
	d := fs.draw(true)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.torn {
		fs.injected.Add(1)
		// Persist a strict prefix: the blob is present but incomplete, like
		// a crash mid-upload on a store without atomic puts.
		n := int(d.tornFrac * float64(len(data)))
		if n >= len(data) && len(data) > 0 {
			n = len(data) - 1
		}
		_ = fs.inner.Put(key, data[:n])
		return fmt.Errorf("%w: torn write of %s (%d/%d bytes)", ErrInjected, key, n, len(data))
	}
	if d.fail {
		fs.injected.Add(1)
		return fmt.Errorf("%w: put %s", ErrInjected, key)
	}
	return fs.inner.Put(key, data)
}

// Get implements objstore.Store with fail/delay injection.
func (fs *FaultStore) Get(key string) ([]byte, error) {
	d := fs.draw(false)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.fail {
		fs.injected.Add(1)
		return nil, fmt.Errorf("%w: get %s", ErrInjected, key)
	}
	return fs.inner.Get(key)
}

// Delete implements objstore.Store with fail/delay injection.
func (fs *FaultStore) Delete(key string) error {
	d := fs.draw(false)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.fail {
		fs.injected.Add(1)
		return fmt.Errorf("%w: delete %s", ErrInjected, key)
	}
	return fs.inner.Delete(key)
}

// List implements objstore.Store (never faulted: manifest listings are the
// control plane the harness itself relies on during verification).
func (fs *FaultStore) List(prefix string) ([]string, error) { return fs.inner.List(prefix) }
