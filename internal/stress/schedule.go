package stress

import (
	"hash/fnv"
	"math/rand"
)

// OpKind is one kind of workload operation.
type OpKind int

const (
	OpInsert   OpKind = iota // insert a batch of N new entities
	OpDelete                 // delete up to N previously acknowledged IDs
	OpSearch                 // run one top-k query
	OpFlush                  // force a flush barrier
	OpSnapshot               // acquire + release a snapshot (monotonicity probe)
	OpIndex                  // manual index build over current segments
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpSearch:
		return "search"
	case OpFlush:
		return "flush"
	case OpSnapshot:
		return "snapshot"
	case OpIndex:
		return "index"
	}
	return "unknown"
}

// Op is one scheduled operation. N sizes insert/delete batches; Arg is raw
// randomness the executor uses for data-dependent choices (which IDs to
// delete, query direction), keeping the schedule itself a pure function of
// the seed even though the *targets* depend on what earlier ops
// acknowledged.
type Op struct {
	Kind OpKind
	N    int
	Arg  uint64
}

// Stream is an infinite, deterministic operation stream for one worker.
// Two streams with the same (seed, worker) yield identical op sequences.
type Stream struct {
	rng *rand.Rand
}

// NewStream derives worker w's op stream from the harness seed. The mixing
// constant decorrelates adjacent workers sharing a seed.
func NewStream(seed int64, worker int) *Stream {
	mix := uint64(seed) ^ (uint64(worker+1) * 0x9E3779B97F4A7C15)
	return &Stream{rng: rand.New(rand.NewSource(int64(mix)))}
}

// Next returns the stream's next operation. Weights favour inserts so the
// collection grows enough to exercise flush, merge and auto-indexing.
func (s *Stream) Next() Op {
	op := Op{Arg: uint64(s.rng.Int63())}
	switch p := s.rng.Intn(100); {
	case p < 45:
		op.Kind = OpInsert
		op.N = 1 + s.rng.Intn(16)
	case p < 60:
		op.Kind = OpDelete
		op.N = 1 + s.rng.Intn(4)
	case p < 80:
		op.Kind = OpSearch
	case p < 90:
		op.Kind = OpFlush
	case p < 97:
		op.Kind = OpSnapshot
	default:
		op.Kind = OpIndex
	}
	return op
}

// ScheduleHash fingerprints the first n ops of every writer stream for a
// given seed. Equal seeds must produce equal hashes (reproducible
// schedules); it is what the determinism test asserts.
func ScheduleHash(seed int64, writers, n int) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 24)
	for w := 0; w < writers; w++ {
		s := NewStream(seed, w)
		for i := 0; i < n; i++ {
			op := s.Next()
			buf = buf[:0]
			buf = append(buf,
				byte(op.Kind), byte(op.N), byte(op.N>>8),
				byte(op.Arg), byte(op.Arg>>8), byte(op.Arg>>16), byte(op.Arg>>24),
				byte(op.Arg>>32), byte(op.Arg>>40), byte(op.Arg>>48), byte(op.Arg>>56))
			_, _ = h.Write(buf)
		}
	}
	return h.Sum64()
}

// VectorForID derives entity ID's vector deterministically, so the harness
// can reconstruct any acknowledged row's exact vector for brute-force
// verification without storing it. Components lie in [-1, 1).
func VectorForID(id int64, dim int) []float32 {
	x := uint64(id)*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019
	v := make([]float32, dim)
	for j := range v {
		x ^= x >> 33
		x *= 0xFF51AFD7ED558CCD
		x ^= x >> 33
		v[j] = float32(int32(uint32(x))) / float32(1<<31)
		x += 0x9E3779B97F4A7C15
	}
	return v
}
