package stress

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"vectordb/internal/core"
	"vectordb/internal/exec"
	"vectordb/internal/objstore"
	"vectordb/internal/obs"
	"vectordb/internal/obs/promtext"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// Config tunes one stress run. Zero values mean defaults.
type Config struct {
	Seed      int64         // drives schedules, faults and verification sampling
	Writers   int           // mixed-workload goroutines (default 4)
	Searchers int           // search/snapshot/get goroutines (default 4)
	Duration  time.Duration // wall-clock run length before quiesce (default 300ms)
	Dim       int           // vector dimensionality (default 16)
	K         int           // top-k for searches (default 8)

	// MaxOpsPerWriter hard-caps each writer's schedule so a slow machine
	// cannot grow the collection without bound (default 50000).
	MaxOpsPerWriter int

	// Faults configures the injected object-store fault layer; the zero
	// value runs fault-free.
	Faults FaultConfig

	// Spill arms the out-of-core mode: sealed segments tier into
	// mmap-backed extent files under a run-private temp dir and spill to
	// the (fault-injected) object store, a tight mapped-bytes budget keeps
	// the LRU churning, and a background spiller goroutine force-demotes
	// mapped segments throughout the run so live queries keep promoting
	// cold segments back — through whatever faults are armed (default off).
	Spill bool

	// CancelRate is the probability that a searcher wraps a query in a
	// context that is cancelled or times out mid-flight (default 0: off).
	// Such a query must either complete normally or return the context's
	// error; anything else — and any goroutine or snapshot leaked by the
	// abandoned query — is an invariant violation.
	CancelRate float64

	// FilterRate is the probability that a searcher runs an
	// attribute-filtered search instead of a plain one (default 0: off).
	// Every entity's attribute is derived from its ID (id & 1023), so the
	// predicate is checkable from the result IDs alone: a returned ID whose
	// attribute falls outside the queried range is a violation, mid-flight
	// or quiesced.
	FilterRate float64

	// PlanCheck arms the query-planner mode (default off): searchers run
	// traced searches and verify every one carries a plan= decision, and
	// after quiesce the same workload is replayed back-to-back twice — on
	// a drained system the two plan sequences must be identical (placement
	// may only flap under queue-depth changes, which quiesce rules out).
	PlanCheck bool

	// RecallFloor is the minimum average recall@K vs. a brute-force scan
	// over the surviving entities after quiesce (default 0.9).
	RecallFloor float64
	// RecallQueries is how many queries the recall check averages
	// (default 10).
	RecallQueries int
}

func (c *Config) defaults() {
	if c.Writers <= 0 {
		c.Writers = 4
	}
	if c.Searchers <= 0 {
		c.Searchers = 4
	}
	if c.Duration <= 0 {
		c.Duration = 300 * time.Millisecond
	}
	if c.Dim <= 0 {
		c.Dim = 16
	}
	if c.K <= 0 {
		c.K = 8
	}
	if c.MaxOpsPerWriter <= 0 {
		c.MaxOpsPerWriter = 50000
	}
	if c.RecallFloor <= 0 {
		c.RecallFloor = 0.9
	}
	if c.RecallQueries <= 0 {
		c.RecallQueries = 10
	}
}

// Report summarizes one run.
type Report struct {
	Inserted   int64 // acknowledged inserted rows
	Deleted    int64 // acknowledged deleted rows
	Searches   int64 // completed searches (writers + searchers)
	Filtered   int64 // completed attribute-filtered searches (FilterRate mode)
	Cancelled  int64 // searches that returned a context error (CancelRate mode)
	Flushes    int64 // explicit flush ops issued
	FlushErrs  int64 // flushes that surfaced an (injected) error
	IndexOps   int64 // manual index-build ops issued
	Injected   int64 // faults injected by the store layer
	Demoted    int64 // segments force-demoted by the spiller (Spill mode)
	Planned    int64 // traced searches whose plan= annotation was verified (PlanCheck mode)
	Tiered     int   // extent files under tier management at quiesce (Spill mode)
	FinalCount int   // collection Count() after quiesce
	Recall     float64
	Violations []string
}

func (r *Report) String() string {
	return fmt.Sprintf("inserted=%d deleted=%d searches=%d filtered=%d cancelled=%d flushes=%d flushErrs=%d injected=%d demoted=%d planned=%d tiered=%d final=%d recall=%.3f violations=%d",
		r.Inserted, r.Deleted, r.Searches, r.Filtered, r.Cancelled, r.Flushes, r.FlushErrs, r.Injected, r.Demoted, r.Planned, r.Tiered, r.FinalCount, r.Recall, len(r.Violations))
}

const (
	idShift      = 40 // entity ID = (writer+1)<<idShift | per-writer counter
	maxViolation = 20 // cap recorded violations; one is already a failure
)

// harness is the shared state of one run.
type harness struct {
	cfg    Config
	col    *core.Collection
	faults *FaultStore
	reg    *obs.Registry

	done chan struct{}

	mu         sync.Mutex
	violations []string

	inserted, deleted, searches, filtered, cancelled, flushes, flushErrs, indexOps, demoted, planned counter
}

type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) add(d int64) { c.mu.Lock(); c.n += d; c.mu.Unlock() }
func (c *counter) get() int64  { c.mu.Lock(); defer c.mu.Unlock(); return c.n }

func (h *harness) violate(format string, args ...any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.violations) < maxViolation {
		h.violations = append(h.violations, fmt.Sprintf(format, args...))
	}
}

// writerState is one writer's private model of what the system has
// acknowledged. Only its owning goroutine touches it until after the
// WaitGroup join, so it needs no lock.
type writerState struct {
	live    []int64 // acked inserts not (acked-)deleted; order irrelevant
	deleted []int64 // acked deletes
	nextID  int64   // per-writer ID counter
}

// Run executes one seeded stress run and verifies its invariants. It
// returns a non-nil error when any invariant was violated; the Report is
// always returned for inspection.
func Run(cfg Config) (*Report, error) {
	cfg.defaults()

	// Warm the shared execution pool before taking the goroutine baseline:
	// its fixed worker set is process-wide and outlives every run, so it
	// must not be confused with a leak.
	exec.Default().Workers()
	baseGoroutines := runtime.NumGoroutine()

	faults := NewFaultStore(objstore.NewMemory(), cfg.Seed*7349+11, cfg.Faults)
	schema := core.Schema{
		VectorFields: []core.VectorField{{Name: "v", Dim: cfg.Dim, Metric: vec.L2}},
		AttrFields:   []string{"a"},
	}
	// The run doubles as an observability stress: every query records into
	// reg (and the query log), searchers scrape concurrently, and quiesce
	// cross-checks the harness's own accounting against the counters.
	reg := obs.NewRegistry()
	ccfg := core.Config{
		FlushRows:      64,
		FlushInterval:  25 * time.Millisecond, // background flusher on: more interleavings
		MergeFactor:    4,
		MaxSegmentRows: 1 << 14,
		IndexRows:      256,
		IndexType:      "IVF_FLAT",
		IndexParams:    map[string]string{"nlist": "8"},
		Obs:            reg,
		QueryLog:       obs.NewQueryLog(64, 32, time.Millisecond),
	}
	if cfg.Spill {
		// Out-of-core mode: a run-private extent dir, a cache far smaller
		// than the dataset the writers will grow, and a mapped-bytes budget
		// of a few segments so the LRU demotes continuously even before the
		// spiller piles on. TierSpill is left nil, so cold-tier traffic rides
		// the same fault-injected store as segment blobs.
		dir, err := os.MkdirTemp("", "vectordb-stress-tier-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		ccfg.TierDir = dir
		ccfg.TierCacheBytes = 256 << 10
		ccfg.TierMappedBytes = 512 << 10
	}
	col, err := core.NewCollection("stress", schema, faults, ccfg)
	if err != nil {
		return nil, err
	}

	h := &harness{cfg: cfg, col: col, faults: faults, reg: reg, done: make(chan struct{})}

	states := make([]*writerState, cfg.Writers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		states[w] = &writerState{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h.writer(w, states[w])
		}(w)
	}
	for s := 0; s < cfg.Searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h.searcher(s)
		}(s)
	}
	if cfg.Spill {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.spiller()
		}()
	}

	time.Sleep(cfg.Duration)
	close(h.done)
	wg.Wait()

	rep := &Report{
		Inserted:  h.inserted.get(),
		Deleted:   h.deleted.get(),
		Searches:  h.searches.get(),
		Filtered:  h.filtered.get(),
		Cancelled: h.cancelled.get(),
		Flushes:   h.flushes.get(),
		FlushErrs: h.flushErrs.get(),
		IndexOps:  h.indexOps.get(),
		Demoted:   h.demoted.get(),
		Planned:   h.planned.get(),
	}
	h.quiesce(states, rep)
	if err := col.Close(); err != nil {
		h.violate("close: %v", err)
	}
	h.checkGoroutines(baseGoroutines)
	h.batchformInvariants(rep)
	rep.Injected = faults.Injected()
	rep.Violations = h.violations
	if len(rep.Violations) > 0 {
		return rep, fmt.Errorf("stress: %d invariant violation(s), first: %s", len(rep.Violations), rep.Violations[0])
	}
	return rep, nil
}

// writer executes its deterministic op stream until the run deadline.
func (h *harness) writer(w int, st *writerState) {
	stream := NewStream(h.cfg.Seed, w)
	lastSnap := int64(0)
	for ops := 0; ops < h.cfg.MaxOpsPerWriter; ops++ {
		select {
		case <-h.done:
			return
		default:
		}
		op := stream.Next()
		switch op.Kind {
		case OpInsert:
			ents := make([]core.Entity, op.N)
			ids := make([]int64, op.N)
			for i := range ents {
				st.nextID++
				id := int64(w+1)<<idShift | st.nextID
				ids[i] = id
				ents[i] = core.Entity{
					ID:      id,
					Vectors: [][]float32{VectorForID(id, h.cfg.Dim)},
					Attrs:   []int64{id & 1023},
				}
			}
			if err := h.col.Insert(ents); err != nil {
				h.violate("writer %d: insert failed: %v", w, err)
				return
			}
			st.live = append(st.live, ids...)
			h.inserted.add(int64(op.N))
		case OpDelete:
			n := op.N
			if n > len(st.live) {
				n = len(st.live)
			}
			if n == 0 {
				continue
			}
			victims := make([]int64, 0, n)
			arg := op.Arg
			for i := 0; i < n; i++ {
				j := int(arg % uint64(len(st.live)))
				arg = arg*6364136223846793005 + 1442695040888963407
				victims = append(victims, st.live[j])
				st.live[j] = st.live[len(st.live)-1]
				st.live = st.live[:len(st.live)-1]
			}
			if err := h.col.Delete(victims); err != nil {
				h.violate("writer %d: delete failed: %v", w, err)
				return
			}
			st.deleted = append(st.deleted, victims...)
			h.deleted.add(int64(len(victims)))
		case OpSearch:
			h.search(fmt.Sprintf("writer %d", w), int64(op.Arg>>1))
		case OpFlush:
			h.flushes.add(1)
			if err := h.col.Flush(); err != nil {
				h.flushErrs.add(1)
				if !errors.Is(err, ErrInjected) {
					h.violate("writer %d: non-injected flush error: %v", w, err)
				}
			}
		case OpSnapshot:
			lastSnap = h.snapshotProbe(fmt.Sprintf("writer %d", w), lastSnap)
		case OpIndex:
			h.indexOps.add(1)
			// Index failures are non-fatal by design (scan remains), but the
			// call must not race with merges/flushes — that is what this op
			// exercises.
			_ = h.col.BuildIndex("v", "IVF_FLAT", map[string]string{"nlist": "8"})
		}
	}
}

// searcher hammers the read path: searches, snapshot probes, point gets.
func (h *harness) searcher(s int) {
	rng := rand.New(rand.NewSource(int64(uint64(h.cfg.Seed) ^ uint64(s+1000)*0x9E3779B97F4A7C15)))
	who := fmt.Sprintf("searcher %d", s)
	lastSnap := int64(0)
	for {
		select {
		case <-h.done:
			return
		default:
		}
		switch p := rng.Intn(10); {
		case p < 5:
			switch {
			case h.cfg.CancelRate > 0 && rng.Float64() < h.cfg.CancelRate:
				h.searchCancel(who, rng)
			case h.cfg.FilterRate > 0 && rng.Float64() < h.cfg.FilterRate:
				h.searchFiltered(who, rng)
			case h.cfg.PlanCheck && rng.Intn(2) == 0:
				h.searchPlanned(who, rng)
			default:
				h.search(who, rng.Int63())
			}
		case p < 7:
			lastSnap = h.snapshotProbe(who, lastSnap)
		case p < 8:
			// Scrape concurrently with the writers: the exposition path must
			// tolerate racing counter/histogram updates.
			if err := h.reg.WritePrometheus(io.Discard); err != nil {
				h.violate("%s: metrics scrape failed: %v", who, err)
			}
		default:
			// Probe a random plausible ID. Existence is timing-dependent
			// mid-run, but any returned entity must be byte-identical to
			// what was inserted — a torn or cross-wired row is a bug.
			id := int64(rng.Intn(h.cfg.Writers)+1)<<idShift | int64(1+rng.Intn(4096))
			if e, ok := h.col.Get(id); ok {
				h.checkVector(who, id, e.Vectors[0])
			}
		}
	}
}

// spiller applies memory pressure for the run's whole duration: every few
// milliseconds it force-demotes all unpinned mapped segments to cold, so
// concurrent searches, point gets and index builds keep promoting extent
// files back from the (fault-injected) spill store. Demotion skips pinned
// segments by design, so a count of zero on a tick is not a violation —
// but across a run some demotions must land (asserted by the caller).
func (h *harness) spiller() {
	for {
		select {
		case <-h.done:
			return
		default:
		}
		time.Sleep(2 * time.Millisecond)
		h.demoted.add(int64(h.col.DemoteSegments()))
	}
}

// search runs one query and checks result shape invariants.
func (h *harness) search(who string, qseed int64) {
	query := VectorForID(qseed|1, h.cfg.Dim)
	res, err := h.col.Search(query, core.SearchOptions{K: h.cfg.K, Nprobe: 8})
	if err != nil {
		h.violate("%s: search error: %v", who, err)
		return
	}
	h.searches.add(1)
	h.checkResults(who, query, res)
}

// searchFiltered runs one attribute-filtered query mid-flight. The
// attribute of every entity is id & 1023, so the range predicate is
// verifiable from the result IDs alone, concurrently with inserts and
// deletes: whatever snapshot the query ran against, a returned ID whose
// derived attribute falls outside [lo, hi] can only mean the pushed filter
// leaked a filtered-out row.
func (h *harness) searchFiltered(who string, rng *rand.Rand) {
	lo := int64(rng.Intn(1024))
	hi := lo + int64(rng.Intn(512))
	if hi > 1023 {
		hi = 1023
	}
	query := VectorForID(rng.Int63()|1, h.cfg.Dim)
	res, err := h.col.SearchFiltered(query, "a", lo, hi, core.SearchOptions{K: h.cfg.K, Nprobe: 8})
	if err != nil {
		h.violate("%s: filtered search error: %v", who, err)
		return
	}
	h.filtered.add(1)
	h.checkResults(who, query, res)
	for _, r := range res {
		if a := r.ID & 1023; a < lo || a > hi {
			h.violate("%s: filtered search [%d,%d] returned id %d with attr %d", who, lo, hi, r.ID, a)
		}
	}
}

// searchPlanned runs one traced query mid-flight and verifies the planner
// stamped its decision: every search trace must carry a plan= annotation,
// even while writers are reshaping the collection (flushes, merges and
// index builds change the shape the planner sees between any two calls).
func (h *harness) searchPlanned(who string, rng *rand.Rand) {
	query := VectorForID(rng.Int63()|1, h.cfg.Dim)
	tr := obs.NewTrace("stress-plan")
	res, err := h.col.Search(query, core.SearchOptions{K: h.cfg.K, Nprobe: 8, Trace: tr})
	if err != nil {
		h.violate("%s: planned search error: %v", who, err)
		return
	}
	h.searches.add(1)
	h.checkResults(who, query, res)
	if choice, ok := tr.Summary().Attr("plan"); !ok || choice == "" {
		h.violate("%s: search trace missing plan= annotation", who)
		return
	}
	h.planned.add(1)
}

// searchCancel runs one query under a context that dies mid-flight: half of
// the time as an explicit cancel racing the query, half as a microsecond-scale
// deadline. The query must complete normally or surface the context's error;
// any other outcome is a violation. Leaked goroutines and snapshots are
// caught by Run's end-of-run checks.
func (h *harness) searchCancel(who string, rng *rand.Rand) {
	query := VectorForID(rng.Int63()|1, h.cfg.Dim)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fuse := time.Duration(rng.Intn(200)) * time.Microsecond
	if rng.Intn(2) == 0 {
		var expire context.CancelFunc
		ctx, expire = context.WithTimeout(ctx, fuse)
		defer expire()
	} else {
		timer := time.AfterFunc(fuse, cancel)
		defer timer.Stop()
	}
	res, err := h.col.SearchCtx(ctx, query, core.SearchOptions{K: h.cfg.K, Nprobe: 8})
	switch {
	case err == nil:
		h.searches.add(1)
		h.checkResults(who, query, res)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		h.cancelled.add(1)
		if res != nil {
			h.violate("%s: cancelled search returned results alongside error %v", who, err)
		}
	default:
		h.violate("%s: cancelled search returned unexpected error: %v", who, err)
	}
}

// checkGoroutines verifies everything the run started is gone: writers,
// searchers, background flusher, and any goroutine a cancelled query might
// have abandoned. Shutdown is asynchronous, so the check polls with a grace
// period before declaring a leak.
func (h *harness) checkGoroutines(base int) {
	const slack = 3 // runtime bookkeeping (finalizers, timer goroutine)
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			h.violate("goroutine leak: %d at exit vs %d at start", n, base)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// checkResults validates the structural invariants every search result set
// must satisfy regardless of interleaving. Every distance is recomputed
// against the deterministic vector stored for its ID: with queries now
// riding formed batches, a result row served from a co-batched peer's tile
// column would carry that peer's distance — this check is the cross-query
// bleed detector.
func (h *harness) checkResults(who string, query []float32, res []topk.Result) {
	if len(res) > h.cfg.K {
		h.violate("%s: %d results for k=%d", who, len(res), h.cfg.K)
	}
	seen := make(map[int64]bool, len(res))
	prev := float32(math.Inf(-1))
	for _, r := range res {
		if r.Distance != r.Distance {
			h.violate("%s: NaN distance for id %d", who, r.ID)
		}
		if r.Distance < prev {
			h.violate("%s: results not sorted (%f after %f)", who, r.Distance, prev)
		}
		prev = r.Distance
		if seen[r.ID] {
			h.violate("%s: duplicate id %d in results", who, r.ID)
		}
		seen[r.ID] = true
		if w := r.ID >> idShift; w < 1 || w > int64(h.cfg.Writers) || r.ID&(1<<idShift-1) == 0 {
			h.violate("%s: id %d outside valid id space", who, r.ID)
			continue
		}
		// Tolerance covers float32 accumulation-order drift between the
		// scalar, blocked and tile kernels — orders of magnitude below the
		// distance shift a wrong query column would produce.
		want := vec.L2Squared(query, VectorForID(r.ID, h.cfg.Dim))
		if diff := math.Abs(float64(r.Distance) - float64(want)); diff > 1e-3*math.Max(1, float64(want)) {
			h.violate("%s: id %d distance %g, but query-to-row distance is %g (cross-query bleed?)", who, r.ID, r.Distance, want)
		}
	}
}

// snapshotProbe checks that snapshot IDs observed by one goroutine never go
// backwards (MVCC installs are totally ordered).
func (h *harness) snapshotProbe(who string, last int64) int64 {
	sn := h.col.AcquireSnapshot()
	id := sn.ID
	h.col.ReleaseSnapshot(sn)
	if id < last {
		h.violate("%s: snapshot went backwards: %d after %d", who, id, last)
		return last
	}
	return id
}

// checkVector verifies a returned vector matches the deterministic vector
// inserted for id, element-exact.
func (h *harness) checkVector(who string, id int64, got []float32) {
	want := VectorForID(id, h.cfg.Dim)
	if len(got) != len(want) {
		h.violate("%s: id %d vector has dim %d, want %d", who, id, len(got), len(want))
		return
	}
	for j := range want {
		if got[j] != want[j] {
			h.violate("%s: id %d vector corrupted at component %d", who, id, j)
			return
		}
	}
}

// quiesce disables faults, drains the system to a stable state, and runs
// the end-state invariants: exact accounting of acknowledged writes, point
// readability, and a recall floor against brute force.
func (h *harness) quiesce(states []*writerState, rep *Report) {
	h.faults.Disable()

	// Acknowledged writes may still sit in the MemTable behind earlier
	// injected flush failures; with faults off, a bounded retry must drain
	// them. The WAL consumer is async, so give Flush a few chances.
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		if err = h.col.Flush(); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		h.violate("quiesce: flush never drained: %v", err)
		return
	}
	h.col.WaitIndexed()

	var live, deleted []int64
	for _, st := range states {
		live = append(live, st.live...)
		deleted = append(deleted, st.deleted...)
	}

	// Invariant: no lost (and no resurrected) acknowledged writes.
	rep.FinalCount = h.col.Count()
	if rep.FinalCount != len(live) {
		h.violate("quiesce: Count()=%d but %d acked rows should be live", rep.FinalCount, len(live))
	}

	rng := rand.New(rand.NewSource(h.cfg.Seed + 977))
	for _, id := range sampleIDs(rng, live, 2000) {
		e, ok := h.col.Get(id)
		if !ok {
			h.violate("quiesce: acked row %d lost", id)
			continue
		}
		h.checkVector("quiesce", id, e.Vectors[0])
	}
	for _, id := range sampleIDs(rng, deleted, 2000) {
		if _, ok := h.col.Get(id); ok {
			h.violate("quiesce: deleted row %d resurrected", id)
		}
	}

	// Counter accounting must be checked before recallCheck: its searches
	// would advance the query counter past what rep recorded.
	h.obsInvariants(rep)

	// Every sealed segment must live out of core: seal tiers or fails, so
	// fewer extent files than live segments means a segment escaped the
	// tier (index-payload files can only push the count higher).
	if h.cfg.Spill {
		ts := h.col.TierStats()
		rep.Tiered = ts.Tiered
		if segs := h.col.Stats().Segments; segs > 0 && ts.Tiered < segs {
			h.violate("quiesce: %d live segments but only %d tiered extent files", segs, ts.Tiered)
		}
	}

	rep.Recall = h.recallCheck(rng, live)
	if len(live) >= h.cfg.K && rep.Recall < h.cfg.RecallFloor {
		h.violate("quiesce: recall %.3f below floor %.3f", rep.Recall, h.cfg.RecallFloor)
	}
	if h.cfg.FilterRate > 0 {
		h.filteredQuiesceCheck(rng, live)
	}
	if h.cfg.PlanCheck {
		h.planFlapCheck(rng)
	}

	// Snapshot refcount invariant: with all queries joined, only the current
	// snapshot may be alive. A cancelled query that forgot to release its
	// snapshot would pin an old one here forever. The background flusher can
	// hold one transiently, so poll briefly before declaring a leak.
	for attempt := 0; ; attempt++ {
		if n := h.col.Stats().LiveSnapshots; n == 1 {
			break
		} else if attempt >= 100 {
			h.violate("quiesce: %d live snapshots, want 1 (leaked reference)", n)
			break
		}
		time.Sleep(time.Millisecond)
	}
}

// obsInvariants cross-checks the harness's own acknowledgement accounting
// against the observability counters after the system has quiesced: no
// acknowledged write may be missing from (or double-counted by) the
// metrics, and the WAL consumer must have applied exactly what was
// appended. The exposition must also round-trip through the parser while
// carrying the run's real series.
func (h *harness) obsInvariants(rep *Report) {
	counter := func(name string, labels ...string) int64 {
		//lint:allow metricreg read-side scrape helper re-resolves already-registered families by name
		return h.reg.Counter(name, labels...).Value()
	}
	if got := counter("vectordb_insert_rows_total", "collection", "stress"); got != rep.Inserted {
		h.violate("obs: insert counter %d != %d acked inserts", got, rep.Inserted)
	}
	if got := counter("vectordb_delete_rows_total", "collection", "stress"); got != rep.Deleted {
		h.violate("obs: delete counter %d != %d acked deletes", got, rep.Deleted)
	}
	appends := counter("vectordb_wal_appends_total", "collection", "stress")
	applied := counter("vectordb_wal_applied_total", "collection", "stress")
	if appends != applied {
		h.violate("obs: wal appends %d != applied %d after quiesce", appends, applied)
	}
	if want := rep.Inserted + rep.Deleted; appends != want {
		h.violate("obs: wal appends %d != %d acked records", appends, want)
	}
	// The query counter records attempts: a cancelled query was admitted to
	// the read path and counted before the context killed it.
	if got, want := counter("vectordb_query_total", "collection", "stress", "type", "vector"), rep.Searches+rep.Cancelled; got != want {
		h.violate("obs: query counter %d != %d attempts (%d completed + %d cancelled)", got, want, rep.Searches, rep.Cancelled)
	}
	if got := counter("vectordb_query_total", "collection", "stress", "type", "filtered"); got != rep.Filtered {
		h.violate("obs: filtered query counter %d != %d completed filtered searches", got, rep.Filtered)
	}
	var buf bytes.Buffer
	if err := h.reg.WritePrometheus(&buf); err != nil {
		h.violate("obs: final scrape failed: %v", err)
		return
	}
	fams, err := promtext.Parse(buf.Bytes())
	if err != nil {
		h.violate("obs: exposition does not parse: %v", err)
		return
	}
	if len(fams) == 0 {
		h.violate("obs: exposition is empty after a full run")
	}
}

// batchformInvariants checks the batch former's conservation laws from the
// final exposition. It runs after Close (which flushes forming groups) and
// after the goroutine check (which has waited out any window timer still
// executing a batch), so the counters are final: every query that entered
// a forming group must have ridden exactly one formed batch, every formed
// batch must carry exactly one trigger, and the two paths together must
// account for at least every search the run completed — a shortfall means
// a query was acked without being counted, an excess means double
// delivery.
func (h *harness) batchformInvariants(rep *Report) {
	var buf bytes.Buffer
	if err := h.reg.WritePrometheus(&buf); err != nil {
		h.violate("batchform: final scrape failed: %v", err)
		return
	}
	fams, err := promtext.Parse(buf.Bytes())
	if err != nil {
		h.violate("batchform: exposition does not parse: %v", err)
		return
	}
	series := map[string][]promtext.Sample{}
	for _, f := range fams {
		series[f.Name] = f.Samples
	}
	var batched, passthrough int64
	for _, s := range series["vectordb_batchform_queries_total"] {
		switch s.Labels["path"] {
		case "batched":
			batched = int64(s.Value)
		case "passthrough":
			passthrough = int64(s.Value)
		}
	}
	var riders, sized int64
	for _, s := range series["vectordb_batchform_occupancy_total"] {
		size, err := strconv.Atoi(s.Labels["size"])
		if err != nil || size < 1 {
			h.violate("batchform: malformed occupancy size label %q", s.Labels["size"])
			continue
		}
		riders += int64(size) * int64(s.Value)
		sized += int64(s.Value)
	}
	var triggered int64
	for _, s := range series["vectordb_batchform_batches_total"] {
		triggered += int64(s.Value)
	}
	if riders != batched {
		h.violate("batchform: occupancy series account for %d queries but %d entered forming groups", riders, batched)
	}
	if triggered != sized {
		h.violate("batchform: %d batches by trigger vs %d by occupancy", triggered, sized)
	}
	// Quiesce's recall queries run sequentially (idle pool → passthrough),
	// so the paths can exceed rep.Searches; falling short of it means a
	// search completed without being counted on either path.
	if got := batched + passthrough; got < rep.Searches {
		h.violate("batchform: %d queries counted across both paths but %d searches completed", got, rep.Searches)
	}
}

// filteredQuiesceCheck runs filtered searches against the drained
// collection and compares them with a brute-force filter-then-scan over the
// model's live rows: zero filtered-out or deleted IDs, and recall at the
// configured floor.
func (h *harness) filteredQuiesceCheck(rng *rand.Rand, live []int64) {
	for trial := 0; trial < 5; trial++ {
		lo := int64(rng.Intn(1024))
		hi := lo + int64(rng.Intn(512))
		if hi > 1023 {
			hi = 1023
		}
		query := VectorForID(rng.Int63()|1, h.cfg.Dim)
		gt := topk.New(h.cfg.K)
		for _, id := range live {
			if a := id & 1023; a >= lo && a <= hi {
				gt.Push(id, vec.L2Squared(query, VectorForID(id, h.cfg.Dim)))
			}
		}
		want := gt.Results()
		res, err := h.col.SearchFiltered(query, "a", lo, hi, core.SearchOptions{K: h.cfg.K, Nprobe: 8})
		if err != nil {
			h.violate("quiesce: filtered search error: %v", err)
			return
		}
		liveSet := make(map[int64]bool, len(live))
		for _, id := range live {
			liveSet[id] = true
		}
		for _, r := range res {
			if a := r.ID & 1023; a < lo || a > hi {
				h.violate("quiesce: filtered search [%d,%d] returned id %d with attr %d", lo, hi, r.ID, a)
			}
			if !liveSet[r.ID] {
				h.violate("quiesce: filtered search returned dead id %d", r.ID)
			}
		}
		if len(res) > len(want) {
			h.violate("quiesce: filtered search [%d,%d] returned %d results, oracle has %d", lo, hi, len(res), len(want))
		}
		if len(want) >= h.cfg.K {
			wantSet := map[int64]bool{}
			for _, r := range want {
				wantSet[r.ID] = true
			}
			hit := 0
			for _, r := range res {
				if wantSet[r.ID] {
					hit++
				}
			}
			if recall := float64(hit) / float64(len(want)); recall < h.cfg.RecallFloor {
				h.violate("quiesce: filtered recall %.3f below floor %.3f on [%d,%d]", recall, h.cfg.RecallFloor, lo, hi)
			}
		}
	}
}

// planFlapCheck replays one deterministic query workload twice against the
// drained collection and compares the planner's decisions position by
// position. With the system quiesced the planner's queue-depth input is
// constant, so the two passes see identical shapes — any divergence is
// placement flapping, exactly what the hysteresis margin exists to prevent.
func (h *harness) planFlapCheck(rng *rand.Rand) {
	const queries = 16
	vecs := make([][]float32, queries)
	ks := make([]int, queries)
	for i := range vecs {
		vecs[i] = VectorForID(rng.Int63()|1, h.cfg.Dim)
		ks[i] = 1 + rng.Intn(h.cfg.K)
	}
	pass := func() []string {
		plans := make([]string, 0, queries)
		for i := range vecs {
			tr := obs.NewTrace("stress-flap")
			if _, err := h.col.Search(vecs[i], core.SearchOptions{K: ks[i], Nprobe: 8, Trace: tr}); err != nil {
				h.violate("quiesce: flap-check search error: %v", err)
				return nil
			}
			choice, _ := tr.Summary().Attr("plan")
			plans = append(plans, choice)
		}
		return plans
	}
	first, second := pass(), pass()
	for i := range first {
		if i < len(second) && first[i] != second[i] {
			h.violate("quiesce: placement flapped on identical workload: query %d planned %s then %s", i, first[i], second[i])
		}
	}
}

// recallCheck compares Search against a brute-force scan over the model's
// live rows, averaging recall@K across queries. Nprobe is set to nlist so
// IVF probes exhaustively: any shortfall is lost rows or broken plumbing,
// not an accuracy trade-off.
func (h *harness) recallCheck(rng *rand.Rand, live []int64) float64 {
	if len(live) == 0 {
		return 1
	}
	k := h.cfg.K
	if k > len(live) {
		k = len(live)
	}
	total := 0.0
	for q := 0; q < h.cfg.RecallQueries; q++ {
		query := VectorForID(rng.Int63()|1, h.cfg.Dim)
		gt := topk.New(k)
		for _, id := range live {
			gt.Push(id, vec.L2Squared(query, VectorForID(id, h.cfg.Dim)))
		}
		want := map[int64]bool{}
		for _, r := range gt.Results() {
			want[r.ID] = true
		}
		res, err := h.col.Search(query, core.SearchOptions{K: k, Nprobe: 8})
		if err != nil {
			h.violate("quiesce: recall search error: %v", err)
			return 0
		}
		hit := 0
		for _, r := range res {
			if want[r.ID] {
				hit++
			}
		}
		total += float64(hit) / float64(len(want))
	}
	return total / float64(h.cfg.RecallQueries)
}

// sampleIDs returns up to n IDs drawn without replacement (all of them when
// len(ids) <= n), deterministically from rng.
func sampleIDs(rng *rand.Rand, ids []int64, n int) []int64 {
	if len(ids) <= n {
		return ids
	}
	out := append([]int64(nil), ids...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out[:n]
}
