// Package objstore provides the multi-storage abstraction of Sec. 2.4: the
// segment files behind a Milvus deployment can live on a local file system,
// Amazon S3, or HDFS. Here the backends are an in-memory map, a local
// directory, and a simulated S3 service (in-memory plus per-operation
// latency and injectable failures) standing in for the real cloud store.
package objstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotFound is returned when a key does not exist.
var ErrNotFound = errors.New("objstore: key not found")

// Store is a flat key → bytes object store.
type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	List(prefix string) ([]string, error)
}

// Memory is a map-backed store, safe for concurrent use.
type Memory struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// NewMemory creates an empty in-memory store.
func NewMemory() *Memory { return &Memory{data: map[string][]byte{}} }

// Put implements Store.
func (m *Memory) Put(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	m.data[key] = cp
	m.mu.Unlock()
	return nil
}

// Get implements Store.
func (m *Memory) Get(key string) ([]byte, error) {
	m.mu.RLock()
	d, ok := m.data[key]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return append([]byte(nil), d...), nil
}

// Delete implements Store (idempotent).
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	delete(m.data, key)
	m.mu.Unlock()
	return nil
}

// List implements Store; keys are returned sorted.
func (m *Memory) List(prefix string) ([]string, error) {
	m.mu.RLock()
	var out []string
	for k := range m.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	m.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// FS stores objects as files under a root directory, mapping "/" in keys to
// subdirectories.
type FS struct {
	root string
}

// NewFS creates (if necessary) and wraps a directory.
func NewFS(root string) (*FS, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("objstore: create root: %w", err)
	}
	return &FS{root: root}, nil
}

func (f *FS) path(key string) string { return filepath.Join(f.root, filepath.FromSlash(key)) }

// Put implements Store with an atomic rename so readers never observe
// partial objects.
func (f *FS) Put(key string, data []byte) error {
	p := f.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("objstore: mkdir: %w", err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("objstore: write: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("objstore: rename: %w", err)
	}
	return nil
}

// Get implements Store.
func (f *FS) Get(key string) ([]byte, error) {
	d, err := os.ReadFile(f.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("objstore: read: %w", err)
	}
	return d, nil
}

// Delete implements Store (idempotent).
func (f *FS) Delete(key string) error {
	err := os.Remove(f.path(key))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("objstore: delete: %w", err)
	}
	return nil
}

// List implements Store.
func (f *FS) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.Walk(f.root, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || strings.HasSuffix(p, ".tmp") {
			return err
		}
		rel, err := filepath.Rel(f.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			out = append(out, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("objstore: list: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

// S3Sim models a remote object service: an in-memory store charged with
// per-operation latency, plus a fault hook for availability testing. The
// distributed layer (Sec. 5.3) uses it as the shared storage.
type S3Sim struct {
	inner *Memory
	// OpLatency is slept on every operation (default 1 ms ≈ same-region S3
	// round trip at small object sizes).
	OpLatency time.Duration
	mu        sync.Mutex
	failNext  int
	ops       int64
}

// NewS3Sim creates a simulated S3 with the given per-op latency.
func NewS3Sim(latency time.Duration) *S3Sim {
	if latency < 0 {
		latency = 0
	}
	return &S3Sim{inner: NewMemory(), OpLatency: latency}
}

// FailNext makes the next n operations return an injected error.
func (s *S3Sim) FailNext(n int) {
	s.mu.Lock()
	s.failNext = n
	s.mu.Unlock()
}

// Ops returns the number of operations served (failed ones included).
func (s *S3Sim) Ops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

var errInjected = errors.New("objstore: injected S3 failure")

func (s *S3Sim) before() error {
	s.mu.Lock()
	s.ops++
	fail := s.failNext > 0
	if fail {
		s.failNext--
	}
	s.mu.Unlock()
	if s.OpLatency > 0 {
		time.Sleep(s.OpLatency)
	}
	if fail {
		return errInjected
	}
	return nil
}

// Put implements Store.
func (s *S3Sim) Put(key string, data []byte) error {
	if err := s.before(); err != nil {
		return err
	}
	return s.inner.Put(key, data)
}

// Get implements Store.
func (s *S3Sim) Get(key string) ([]byte, error) {
	if err := s.before(); err != nil {
		return nil, err
	}
	return s.inner.Get(key)
}

// Delete implements Store.
func (s *S3Sim) Delete(key string) error {
	if err := s.before(); err != nil {
		return err
	}
	return s.inner.Delete(key)
}

// List implements Store.
func (s *S3Sim) List(prefix string) ([]string, error) {
	if err := s.before(); err != nil {
		return nil, err
	}
	return s.inner.List(prefix)
}

// IsInjected reports whether err came from FailNext.
func IsInjected(err error) bool { return errors.Is(err, errInjected) }
