package objstore

import (
	"errors"
	"testing"
)

func storesUnderTest(t *testing.T) map[string]Store {
	fs, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"memory": NewMemory(),
		"fs":     fs,
		"s3sim":  NewS3Sim(0),
	}
}

func TestStoreContract(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
			}
			if err := s.Put("seg/1", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("seg/2", []byte("world")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("other/3", []byte("x")); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("seg/1")
			if err != nil || string(got) != "hello" {
				t.Fatalf("Get = %q, %v", got, err)
			}
			keys, err := s.List("seg/")
			if err != nil || len(keys) != 2 || keys[0] != "seg/1" || keys[1] != "seg/2" {
				t.Fatalf("List = %v, %v", keys, err)
			}
			// Overwrite
			if err := s.Put("seg/1", []byte("hello2")); err != nil {
				t.Fatal(err)
			}
			got, _ = s.Get("seg/1")
			if string(got) != "hello2" {
				t.Fatalf("overwrite failed: %q", got)
			}
			// Delete idempotent
			if err := s.Delete("seg/1"); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("seg/1"); err != nil {
				t.Fatalf("second delete: %v", err)
			}
			if _, err := s.Get("seg/1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key still readable: %v", err)
			}
		})
	}
}

func TestMemoryIsolation(t *testing.T) {
	m := NewMemory()
	data := []byte{1, 2, 3}
	m.Put("k", data)
	data[0] = 99 // caller mutation must not leak in
	got, _ := m.Get("k")
	if got[0] != 1 {
		t.Fatal("Put did not copy")
	}
	got[1] = 99 // reader mutation must not leak back
	got2, _ := m.Get("k")
	if got2[1] != 2 {
		t.Fatal("Get did not copy")
	}
}

func TestS3SimFailureInjection(t *testing.T) {
	s := NewS3Sim(0)
	s.Put("k", []byte("v"))
	s.FailNext(2)
	if _, err := s.Get("k"); !IsInjected(err) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	if err := s.Put("k2", nil); !IsInjected(err) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	if _, err := s.Get("k"); err != nil {
		t.Fatalf("failure persisted past budget: %v", err)
	}
	if s.Ops() != 4 {
		t.Fatalf("Ops = %d, want 4", s.Ops())
	}
}

func TestFSListSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs.Put("a/b", []byte("1"))
	keys, err := fs.List("")
	if err != nil || len(keys) != 1 || keys[0] != "a/b" {
		t.Fatalf("List = %v, %v", keys, err)
	}
}
