package experiments

import (
	"fmt"
	"runtime"
	"time"

	"vectordb/internal/dataset"
	"vectordb/internal/query"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// Fig. 14/15 workload (Sec. 7.5): SIFT-like vectors augmented with a
// uniform attribute in [0, 10000). "Query selectivity" is the fraction of
// entities that FAIL the attribute constraint, so selectivity s maps to the
// range [0, (1-s)·10000).
var selectivities = []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99}

func rangeFor(s float64) query.RangeCond {
	hi := int64((1 - s) * 10000)
	if hi < 1 {
		hi = 1
	}
	return query.RangeCond{Attr: 0, Lo: 0, Hi: hi - 1}
}

type filteringWorkload struct {
	tab     *query.Table
	parts   []query.Partition
	queries []float32
	dim     int
}

func buildFilteringWorkload(sc Scale) (*filteringWorkload, error) {
	d := dataset.SIFTLike(sc.N, 15)
	attrs := dataset.Attributes(sc.N, 10000, 16)
	tab, err := query.NewTable(vec.L2, d.Dim, d.Data, nil, [][]int64{attrs})
	if err != nil {
		return nil, err
	}
	ivfParams := map[string]string{"nlist": "128", "iter": "5"}
	if err := tab.BuildIndex("IVF_FLAT", ivfParams); err != nil {
		return nil, err
	}
	// Strategy E: ρ partitions on the hot attribute (paper: ~1M rows per
	// partition at billion scale; scaled to ~N/8 here).
	parts, err := tab.PartitionByAttr(0, 8, "IVF_FLAT", map[string]string{"nlist": "32", "iter": "5"})
	if err != nil {
		return nil, err
	}
	return &filteringWorkload{
		tab:     tab,
		parts:   query.Partitions(parts),
		queries: dataset.Queries(d, sc.NQ, 17),
		dim:     d.Dim,
	}, nil
}

func (w *filteringWorkload) runStrategy(name string, rc query.RangeCond, k, nprobe int) time.Duration {
	nq := len(w.queries) / w.dim
	m := query.DefaultCostModel()
	return timeIt(func() {
		for qi := 0; qi < nq; qi++ {
			vc := query.VecCond{Field: 0, Query: w.queries[qi*w.dim : (qi+1)*w.dim], K: k, Nprobe: nprobe}
			switch name {
			case query.StratA:
				query.StrategyA(w.tab, rc, vc)
			case query.StratB:
				query.StrategyB(w.tab, rc, vc)
			case query.StratC:
				query.StrategyC(w.tab, rc, vc)
			case query.StratD:
				query.StrategyD(w.tab, rc, vc, m)
			case query.StratE:
				query.StrategyE(w.parts, rc, vc, m)
			}
		}
	})
}

// ExpFig14 reproduces Fig. 14: attribute-filtering strategies A–E across
// query selectivity, in the paper's two configurations (k=50 and k=500).
func ExpFig14(sc Scale, k int) (*Table, error) {
	sc = sc.defaults()
	if k <= 0 {
		k = sc.K
	}
	w, err := buildFilteringWorkload(sc)
	if err != nil {
		return nil, err
	}
	nq := len(w.queries) / w.dim
	t := &Table{
		Name:   fmt.Sprintf("fig14-k%d", k),
		Title:  fmt.Sprintf("Attribute filtering strategies, n=%d nq=%d k=%d (Fig. 14)", sc.N, nq, k),
		Header: []string{"selectivity", "A", "B", "C", "D", "E"},
	}
	nprobe := 16
	for _, s := range selectivities {
		rc := rangeFor(s)
		row := []any{fmt.Sprintf("%.2f", s)}
		for _, strat := range []string{query.StratA, query.StratB, query.StratC, query.StratD, query.StratE} {
			row = append(row, w.runStrategy(strat, rc, k, nprobe))
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig. 15 baseline filtering models — each system filters the way its
// architecture permits (see internal/baseline's package comment):
//
//   - System A-like: post-filtering on a graph index with doubling
//     re-fetches (graph systems cannot push predicates into the scan).
//   - System B-like: brute-force scan of everything, filter applied per row.
//   - System C-like: strategy C through a row-at-a-time executor (modeled
//     by a per-candidate attribute lookup on the unsorted path).
//   - Vearch-like: bitmap filtering, but the bitmap is built by a linear
//     scan because the attribute column has no sorted index.
//   - Milvus: strategy E.
func (w *filteringWorkload) runSystem(name string, rc query.RangeCond, k, nprobe int) time.Duration {
	nq := len(w.queries) / w.dim
	m := query.DefaultCostModel()
	total := w.tab.TotalRows()
	return timeIt(func() {
		for qi := 0; qi < nq; qi++ {
			q := w.queries[qi*w.dim : (qi+1)*w.dim]
			vc := query.VecCond{Field: 0, Query: q, K: k, Nprobe: nprobe}
			switch name {
			case "System A":
				// post-filter with doubling fetch
				fetch := k
				for {
					cands := w.tab.VectorQuery(0, q, fetch, nprobe, nil)
					kept := 0
					for _, c := range cands {
						if v, ok := w.tab.AttrValue(0, c.ID); ok && v >= rc.Lo && v <= rc.Hi {
							kept++
						}
					}
					if kept >= k || fetch >= total || len(cands) < fetch {
						break
					}
					fetch *= 2
				}
			case "System B":
				// brute force scan with inline filter
				h := topk.New(k)
				for id := int64(0); id < int64(total); id++ {
					v, ok := w.tab.AttrValue(0, id)
					if !ok || v < rc.Lo || v > rc.Hi {
						continue
					}
					if dist, ok := w.tab.DistanceByID(0, q, id); ok {
						h.Push(id, dist)
					}
				}
				h.Results()
			case "System C":
				query.StrategyC(w.tab, rc, vc)
			case "Vearch":
				// bitmap built by linear attribute scan (no sorted column)
				bitmap := make(map[int64]struct{})
				for id := int64(0); id < int64(total); id++ {
					if v, ok := w.tab.AttrValue(0, id); ok && v >= rc.Lo && v <= rc.Hi {
						bitmap[id] = struct{}{}
					}
				}
				if len(bitmap) > 0 {
					w.tab.VectorQuery(0, q, k, nprobe, func(id int64) bool {
						_, ok := bitmap[id]
						return ok
					})
				}
			case "Milvus":
				query.StrategyE(w.parts, rc, vc, m)
			}
		}
	})
}

// ExpFig15 reproduces Fig. 15: attribute filtering across systems.
func ExpFig15(sc Scale, k int) (*Table, error) {
	sc = sc.defaults()
	if k <= 0 {
		k = sc.K
	}
	w, err := buildFilteringWorkload(sc)
	if err != nil {
		return nil, err
	}
	nq := len(w.queries) / w.dim
	t := &Table{
		Name:   fmt.Sprintf("fig15-k%d", k),
		Title:  fmt.Sprintf("Attribute filtering across systems, n=%d nq=%d k=%d (Fig. 15)", sc.N, nq, k),
		Header: []string{"selectivity", "SystemA", "SystemB", "SystemC", "Vearch", "Milvus"},
		Notes: []string{
			fmt.Sprintf("host exposes %d core(s); per-query work measured, each architecture's concurrency on the paper's node modeled as in fig8", runtime.GOMAXPROCS(0)),
		},
	}
	// Architectural concurrency on the paper's 16-vCPU node (see fig8).
	concurrency := map[string]float64{
		"System A": 2, "System B": 16, "System C": 8, "Vearch": 1, "Milvus": 16,
	}
	host := float64(runtime.GOMAXPROCS(0))
	for _, s := range selectivities {
		rc := rangeFor(s)
		row := []any{fmt.Sprintf("%.2f", s)}
		for _, sys := range []string{"System A", "System B", "System C", "Vearch", "Milvus"} {
			el := w.runSystem(sys, rc, k, 16)
			if c := concurrency[sys]; c > host {
				el = time.Duration(float64(el) * host / c)
			}
			row = append(row, el)
		}
		t.Add(row...)
	}
	return t, nil
}
