// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 7) at laptop scale. Each ExpXxx function returns a Table
// whose rows correspond to the series the paper plots; cmd/benchmark prints
// them and the root bench_test.go wraps them in testing.B benchmarks.
// EXPERIMENTS.md records how each measured shape compares to the paper.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"vectordb/internal/dataset"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// Table is one experiment's result.
type Table struct {
	Name   string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fms", float64(v.Microseconds())/1000)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.Name, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale controls experiment sizes. The paper runs SIFT10M/SIFT1B with
// 10,000 queries; the defaults here are ~100–500× smaller so the whole
// suite finishes in minutes of pure Go; shapes, not absolute numbers, are
// the reproduction target (DESIGN.md §1).
type Scale struct {
	N  int // dataset size; default 20000
	NQ int // query count; default 128
	K  int // top-k; default 50
}

func (s Scale) defaults() Scale {
	if s.N <= 0 {
		s.N = 20000
	}
	if s.NQ <= 0 {
		s.NQ = 128
	}
	if s.K <= 0 {
		s.K = 50
	}
	return s
}

// loadDataset maps the paper's dataset names to generators.
func loadDataset(name string, n int, seed int64) (*dataset.Dataset, vec.Metric, error) {
	switch name {
	case "sift", "SIFT10M", "sift10m":
		return dataset.SIFTLike(n, seed), vec.L2, nil
	case "deep", "Deep10M", "deep10m":
		// Deep1B evaluations use inner product on normalized CNN vectors.
		return dataset.DeepLike(n, seed), vec.IP, nil
	default:
		return nil, 0, fmt.Errorf("experiments: unknown dataset %q (sift|deep)", name)
	}
}

// recallOf computes mean recall against ground truth.
func recallOf(truth, got [][]topk.Result) float64 {
	if len(truth) == 0 {
		return 0
	}
	var s float64
	for i := range truth {
		set := make(map[int64]struct{}, len(truth[i]))
		for _, r := range truth[i] {
			set[r.ID] = struct{}{}
		}
		hit := 0
		for _, r := range got[i] {
			if _, ok := set[r.ID]; ok {
				hit++
			}
		}
		s += float64(hit) / float64(len(truth[i]))
	}
	return s / float64(len(truth))
}

// timeIt measures fn's wall time.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// qps converts a batch duration to queries/second.
func qps(nq int, d time.Duration) float64 {
	if d <= 0 {
		d = time.Nanosecond
	}
	return float64(nq) / d.Seconds()
}
