package experiments

import (
	"fmt"

	"vectordb/internal/dataset"
	"vectordb/internal/query"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// ExpFig16 reproduces Fig. 16: multi-vector query processing on a
// Recipe1M-like two-field dataset (text + image embeddings), comparing
// bounded NRA (NRA-50, NRA-2048), iterative merging (IMG-4096/8192/16384)
// and — for the decomposable inner-product metric — vector fusion.
// metricName is "L2" (Fig. 16a) or "IP" (Fig. 16b).
func ExpFig16(sc Scale, metricName string) (*Table, error) {
	sc = sc.defaults()
	m, err := vec.ParseMetric(metricName)
	if err != nil {
		return nil, err
	}
	// Noise 1.5 keeps the two modalities only weakly correlated, as
	// Recipe1M's text and image embeddings are.
	mv := dataset.RecipeLikeNoise(sc.N, []int{64, 64}, 1.5, 19)
	mt, err := query.NewMultiTable(m, mv.Dims, mv.Fields, nil)
	if err != nil {
		return nil, err
	}
	ivfParams := map[string]string{"nlist": "128", "iter": "5"}
	if err := mt.BuildIndex("IVF_FLAT", ivfParams); err != nil {
		return nil, err
	}

	nq := sc.NQ
	if nq > 64 {
		nq = 64 // ground truth is exhaustive over both fields
	}
	weights := []float32{1, 1}
	type qpair struct{ q [][]float32 }
	queries := make([]qpair, nq)
	{
		base := dataset.Queries(&dataset.Dataset{Name: "f0", Dim: 64, N: sc.N, Data: mv.Fields[0]}, nq, 20)
		base2 := dataset.Queries(&dataset.Dataset{Name: "f1", Dim: 64, N: sc.N, Data: mv.Fields[1]}, nq, 20)
		for i := 0; i < nq; i++ {
			queries[i] = qpair{q: [][]float32{base[i*64 : (i+1)*64], base2[i*64 : (i+1)*64]}}
		}
	}
	truth := make([][]topk.Result, nq)
	for i := range queries {
		truth[i] = mt.GroundTruth(queries[i].q, weights, sc.K)
	}

	// Vector fusion substrate: the concatenated field (Sec. 4.2).
	var fused *query.Table
	if m.Decomposable() && m == vec.IP {
		concat := make([]float32, 0, sc.N*128)
		for i := 0; i < sc.N; i++ {
			concat = append(concat, mv.Field(0, i)...)
			concat = append(concat, mv.Field(1, i)...)
		}
		fused, err = query.NewTable(m, 128, concat, nil, nil)
		if err != nil {
			return nil, err
		}
		if err := fused.BuildIndex("IVF_FLAT", ivfParams); err != nil {
			return nil, err
		}
	}

	t := &Table{
		Name:   "fig16-" + metricName,
		Title:  fmt.Sprintf("Multi-vector processing, %s, n=%d nq=%d k=%d (Fig. 16)", metricName, sc.N, nq, sc.K),
		Header: []string{"algorithm", "recall", "qps"},
	}

	run := func(label string, fn func(q [][]float32) []topk.Result) {
		got := make([][]topk.Result, nq)
		el := timeIt(func() {
			for i := range queries {
				got[i] = fn(queries[i].q)
			}
		})
		t.Add(label, recallOf(truth, got), qps(nq, el))
	}

	run("NRA-50", func(q [][]float32) []topk.Result {
		return query.BoundedStandardNRA(mt, q, weights, sc.K, 50).Results
	})
	run("NRA-2048", func(q [][]float32) []topk.Result {
		return query.BoundedStandardNRA(mt, q, weights, sc.K, 2048).Results
	})
	for _, th := range []int{4096, 8192, 16384} {
		th := th
		run(fmt.Sprintf("IMG-%d", th), func(q [][]float32) []topk.Result {
			return query.IterativeMerging(mt, q, weights, sc.K, th)
		})
	}
	if fused != nil {
		run("vector fusion", func(q [][]float32) []topk.Result {
			fq := make([]float32, 0, 128)
			fq = append(fq, q[0]...)
			fq = append(fq, q[1]...)
			return fused.VectorQuery(0, fq, sc.K, 32, nil)
		})
	} else {
		t.Notes = append(t.Notes, "vector fusion omitted: "+metricName+" with general weights is not decomposable (paper Sec. 4.2)")
	}
	return t, nil
}
