package experiments

import (
	"fmt"
	"runtime"

	"vectordb/internal/baseline"
	"vectordb/internal/dataset"
	"vectordb/internal/gpu"
	"vectordb/internal/index"
	"vectordb/internal/index/ivf"
	"vectordb/internal/index/sq8h"
)

// parallelSystem is a baseline.System that reports how many of the paper's
// 16 vCPUs its architecture can use.
type parallelSystem interface {
	baseline.System
	Parallelism() int
}

// modeledSpeedup returns the concurrency this host cannot provide but the
// architecture would use: the measurement already realizes min(host cores,
// Parallelism); the remainder is modeled (DESIGN.md §1 — this harness often
// runs on a single-core container where every engine serializes equally).
func modeledSpeedup(sys parallelSystem) float64 {
	host := runtime.GOMAXPROCS(0)
	p := sys.Parallelism()
	if p <= host {
		return 1
	}
	return float64(p) / float64(host)
}

// ExpFig8 reproduces Fig. 8: throughput vs. recall on IVF (quantization)
// indexes, comparing Milvus IVF_FLAT / IVF_SQ8 / IVF_PQ / GPU_SQ8H against
// SPTAG-like, Vearch-like, System B and System C on a SIFT- or Deep-like
// dataset. Accuracy sweeps nprobe.
func ExpFig8(datasetName string, sc Scale) (*Table, error) {
	sc = sc.defaults()
	d, metric, err := loadDataset(datasetName, sc.N, 1)
	if err != nil {
		return nil, err
	}
	queries := dataset.Queries(d, sc.NQ, 2)
	truth := dataset.GroundTruth(d, queries, sc.K, metric)

	t := &Table{
		Name:   "fig8-" + datasetName,
		Title:  fmt.Sprintf("IVF systems, %s n=%d nq=%d k=%d (Fig. 8)", d.Name, sc.N, sc.NQ, sc.K),
		Header: []string{"system", "knob", "recall", "qps", "memMB"},
	}

	ivfParams := map[string]string{"nlist": "256", "iter": "6"}
	sweep := []int{1, 2, 4, 8, 16, 32}

	systems := []struct {
		sys   parallelSystem
		knobs []int
	}{
		{&baseline.Milvus{IndexType: "IVF_FLAT", Params: ivfParams}, sweep},
		{&baseline.Milvus{IndexType: "IVF_SQ8", Params: ivfParams}, sweep},
		{&baseline.Milvus{IndexType: "IVF_PQ", Params: map[string]string{"nlist": "256", "iter": "6", "m": "32"}}, sweep},
		{&baseline.PerQueryLocked{Label: "Vearch-like", IndexType: "IVF_FLAT", Params: ivfParams}, sweep},
		{&baseline.SPTAGLike{}, []int{1, 2, 4}},
		{&baseline.SystemB{}, []int{0}},
		{&baseline.SystemC{}, []int{1, 4, 16}},
	}
	for _, s := range systems {
		if err := s.sys.Build(d, metric); err != nil {
			return nil, fmt.Errorf("%s: %w", s.sys.Name(), err)
		}
		for _, knob := range s.knobs {
			res := s.sys.SearchBatch(queries, sc.K, knob) // warm
			el := timeIt(func() { res = s.sys.SearchBatch(queries, sc.K, knob) })
			t.Add(s.sys.Name(), knob, recallOf(truth, res), qps(sc.NQ, el)*modeledSpeedup(s.sys), float64(s.sys.MemoryBytes())/float64(1<<20))
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("host exposes %d core(s); each system's architectural concurrency on the paper's 16-vCPU node is modeled on top of measured per-query work", runtime.GOMAXPROCS(0)))

	// GPU_SQ8H: modeled time over the device cost model (DESIGN.md §1).
	dev := gpu.NewDevice(0, gpu.Config{})
	sb, err := sq8h.NewBuilder(metric, d.Dim, ivf.Builder{Nlist: 256, MaxIter: 6}, sq8h.Config{Device: dev, Threshold: 64})
	if err != nil {
		return nil, err
	}
	built, err := sb.Build(d.Data, nil)
	if err != nil {
		return nil, err
	}
	hx := built.(*sq8h.SQ8H)
	for _, knob := range sweep {
		p := index.SearchParams{K: sc.K, Nprobe: knob}
		hx.SearchBatch(queries, p) // warm: at 10M scale the data fits in GPU memory (Sec. 7.2)
		res, stats := hx.SearchBatch(queries, p)
		t.Add("Milvus_GPU_SQ8H", knob, recallOf(truth, res), qps(sc.NQ, stats.Total()), float64(hx.MemoryBytes())/float64(1<<20))
	}
	t.Notes = append(t.Notes, "GPU_SQ8H throughput uses the device cost model's virtual clock (no GPU hardware available)")
	return t, nil
}

// ExpFig9 reproduces Fig. 9: throughput vs. recall on the HNSW index,
// comparing Milvus against System A (limited parallelism), Vearch-like
// (coarse lock) and System C (single-threaded legacy executor). Accuracy
// sweeps ef.
func ExpFig9(datasetName string, sc Scale) (*Table, error) {
	sc = sc.defaults()
	d, metric, err := loadDataset(datasetName, sc.N, 3)
	if err != nil {
		return nil, err
	}
	queries := dataset.Queries(d, sc.NQ, 4)
	truth := dataset.GroundTruth(d, queries, sc.K, metric)

	t := &Table{
		Name:   "fig9-" + datasetName,
		Title:  fmt.Sprintf("HNSW systems, %s n=%d nq=%d k=%d (Fig. 9)", d.Name, sc.N, sc.NQ, sc.K),
		Header: []string{"system", "ef", "recall", "qps"},
	}
	hnswParams := map[string]string{"m": "16", "ef_construction": "128"}
	sweep := []int{64, 128, 256}

	systems := []parallelSystem{
		&baseline.Milvus{Label: "Milvus_HNSW", IndexType: "HNSW", Params: hnswParams},
		&baseline.LimitedPool{Label: "System A", IndexType: "HNSW", Params: hnswParams, Workers: 2},
		&baseline.PerQueryLocked{Label: "Vearch-like", IndexType: "HNSW", Params: hnswParams},
		&baseline.LimitedPool{Label: "System C", IndexType: "HNSW", Params: hnswParams, Workers: 1},
	}
	for _, sys := range systems {
		if err := sys.Build(d, metric); err != nil {
			return nil, fmt.Errorf("%s: %w", sys.Name(), err)
		}
		for _, ef := range sweep {
			res := sys.SearchBatch(queries, sc.K, ef) // warm
			el := timeIt(func() { res = sys.SearchBatch(queries, sc.K, ef) })
			t.Add(sys.Name(), ef, recallOf(truth, res), qps(sc.NQ, el)*modeledSpeedup(sys))
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("host exposes %d core(s); architectural concurrency modeled as in fig8", runtime.GOMAXPROCS(0)))
	return t, nil
}
