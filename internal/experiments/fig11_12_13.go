package experiments

import (
	"fmt"

	"vectordb/internal/batch"
	"vectordb/internal/dataset"
	"vectordb/internal/gpu"
	"vectordb/internal/index"
	"vectordb/internal/index/ivf"
	"vectordb/internal/index/sq8h"
	"vectordb/internal/vec"
)

// ExpFig11 reproduces Fig. 11: the cache-aware blocked engine vs. the
// original thread-per-query engine across data sizes, with a batch of
// 256+ queries. The paper compares two physical CPUs (12 MB and 35.75 MB
// L3); physical cache cannot be varied here, so the table reports the
// original-vs-cache-aware speedup on this host's cache and the notes show
// Equation (1)'s block size under both of the paper's cache configurations
// (the mechanism the design hinges on).
func ExpFig11(sc Scale) (*Table, error) {
	sc = sc.defaults()
	nq := sc.NQ
	if nq < 256 {
		nq = 256
	}
	sizes := scaledSizes(sc.N)
	t := &Table{
		Name:   "fig11",
		Title:  fmt.Sprintf("Cache-aware design, batch=%d queries (Fig. 11)", nq),
		Header: []string{"dataSize", "original", "cacheAware", "speedup"},
	}
	for _, n := range sizes {
		d := dataset.SIFTLike(n, 9)
		queries := dataset.Queries(d, nq, 10)
		req := &batch.Request{Queries: queries, Data: d.Data, Dim: d.Dim, K: sc.K, Metric: vec.L2}
		orig := &batch.ThreadPerQuery{}
		ca := &batch.CacheAware{}
		orig.MultiQuery(req) // warm
		tOrig := timeIt(func() { orig.MultiQuery(req) })
		ca.MultiQuery(req)
		tCA := timeIt(func() { ca.MultiQuery(req) })
		t.Add(n, tOrig, tCA, float64(tOrig)/float64(tCA))
	}
	for _, cfg := range []struct {
		label string
		l3    int64
		th    int
	}{{"i7-8700 12MB/12t", 12 << 20, 12}, {"Xeon-8269 35.75MB/16t", 36886528, 16}} {
		s := batch.BlockSize(cfg.l3, 128, cfg.th, sc.K, 1<<30)
		t.Notes = append(t.Notes, fmt.Sprintf("Equation (1) block size on %s: s = %d queries", cfg.label, s))
	}
	t.Notes = append(t.Notes, "physical L3 cannot be varied on this host; the paper's two-machine comparison is replaced by the speedup column (see EXPERIMENTS.md)")
	return t, nil
}

// ExpFig12 reproduces Fig. 12: AVX2 vs AVX512 SIMD tiers on the same sweep
// as Fig. 11, single-threaded so only the kernels differ. Each tier scans
// through its hooked batch kernel — on amd64 hosts with the features, the
// AVX2/AVX512 tiers run real FMA assembly; elsewhere every tier is an
// unrolled multi-accumulator Go kernel and the gaps compress.
func ExpFig12(sc Scale) (*Table, error) {
	sc = sc.defaults()
	nq := sc.NQ
	sizes := scaledSizes(sc.N)
	t := &Table{
		Name:   "fig12",
		Title:  "SIMD kernel tiers, L2 over 128-d vectors (Fig. 12)",
		Header: []string{"dataSize", "scalar", "sse", "avx2", "avx512", "avx512/avx2", "avx512/sse"},
		Notes: []string{
			"tiers scan via their batch kernels (real AVX2+FMA/AVX-512 asm where the host supports it, unrolled multi-accumulator Go elsewhere); ordering matches the paper",
		},
	}
	for _, n := range sizes {
		d := dataset.SIFTLike(n, 11)
		queries := dataset.Queries(d, nq, 12)
		out := make([]float32, d.N)
		run := func(l vec.Level) func() {
			return func() {
				var sink float32
				for qi := 0; qi < nq; qi++ {
					q := queries[qi*d.Dim : (qi+1)*d.Dim]
					//lint:allow kerneldispatch the figure measures each SIMD tier explicitly; dispatch must not re-select
					vec.L2SquaredBatchAt(l, q, d.Data, d.Dim, out)
					sink += out[d.N-1]
				}
				_ = sink
			}
		}
		run(vec.LevelAVX512)() // warm
		ts := timeIt(run(vec.LevelScalar))
		t4 := timeIt(run(vec.LevelSSE))
		t2 := timeIt(run(vec.LevelAVX2))
		t5 := timeIt(run(vec.LevelAVX512))
		t.Add(n, ts, t4, t2, t5, float64(t2)/float64(t5), float64(t4)/float64(t5))
	}
	return t, nil
}

// ExpFig13 reproduces Fig. 13: SQ8H (Algorithm 1) vs pure CPU and pure GPU
// as the query batch grows, with data too large for device memory so the
// pure-GPU plan streams buckets over PCIe. Times come from the device cost
// model's virtual clock (DESIGN.md §1).
func ExpFig13(sc Scale) (*Table, error) {
	sc = sc.defaults()
	d := dataset.SIFTLike(sc.N, 13)
	dev := gpu.NewDevice(0, gpu.Config{
		MemBytes:         int64(sc.N) * int64(d.Dim) / 4, // holds ~25% of the SQ8 codes
		PCIeBandwidth:    1.0e9,                          // the paper's measured 1–2 GB/s
		KernelThroughput: 6.4e10,                         // ~2× the CPU model
	})
	b, err := sq8h.NewBuilder(vec.L2, d.Dim, ivf.Builder{Nlist: 512, MaxIter: 6}, sq8h.Config{Device: dev, Threshold: 1 << 30})
	if err != nil {
		return nil, err
	}
	built, err := b.Build(d.Data, nil)
	if err != nil {
		return nil, err
	}
	hx := built.(*sq8h.SQ8H)
	p := index.SearchParams{K: sc.K, Nprobe: 32}

	// Warm the centroids (resident setup state of SQ8H).
	hx.PlanHybrid(dataset.Queries(d, 1, 14), p)

	t := &Table{
		Name:   "fig13",
		Title:  fmt.Sprintf("GPU indexing: SQ8 plans vs batch size, n=%d (Fig. 13)", sc.N),
		Header: []string{"batch", "pureCPU", "pureGPU", "SQ8H", "gpuTransferMB"},
		Notes:  []string{"times from the device cost model's virtual clock; CPU priced by the same model for comparability"},
	}
	for _, nq := range []int{1, 50, 100, 200, 300, 400, 500} {
		queries := dataset.Queries(d, nq, int64(100+nq))
		// Evict buckets so every batch pays the stream (data ≫ GPU memory),
		// then restore the centroids SQ8H keeps resident permanently (the
		// previous pure-GPU stream may have pushed them out of the LRU).
		for bkt := 0; bkt < 512; bkt++ {
			dev.Evict(fmt.Sprintf("sq8h/bucket/%d", bkt))
		}
		hx.PlanHybrid(queries[:d.Dim], p)
		_, cpu := hx.PlanPureCPU(queries, p)
		_, hyb := hx.PlanHybrid(queries, p)
		_, gpuSt := hx.PlanPureGPU(queries, p)
		t.Add(nq, cpu.Total(), gpuSt.Total(), hyb.Total(), float64(gpuSt.TransferBytes)/float64(1<<20))
	}
	return t, nil
}

// scaledSizes derives the Fig. 11/12 data-size sweep from the configured
// scale (defaults reproduce 1k → 100k; the paper sweeps 10³ → 10⁷).
func scaledSizes(n int) []int {
	sizes := []int{n / 20, n / 2, n * 5 / 2, n * 5}
	for i, s := range sizes {
		if s < 100 {
			sizes[i] = 100
		}
	}
	return sizes
}
