package experiments

import (
	"fmt"
	"time"

	"vectordb/internal/batch"
	"vectordb/internal/core"
	"vectordb/internal/dataset"
	"vectordb/internal/gpu"
	"vectordb/internal/query"
	"vectordb/internal/vec"
)

// Ablations for the design choices DESIGN.md calls out beyond the paper's
// figures.

// ExpAblationHeaps isolates the per-(thread,query) heap matrix of
// Sec. 3.2.1 against a mutex-shared heap per query, holding the blocking
// and data partitioning constant.
func ExpAblationHeaps(sc Scale) (*Table, error) {
	sc = sc.defaults()
	d := dataset.SIFTLike(sc.N, 21)
	nq := sc.NQ
	if nq < 128 {
		nq = 128
	}
	queries := dataset.Queries(d, nq, 22)
	req := &batch.Request{Queries: queries, Data: d.Data, Dim: d.Dim, K: sc.K, Metric: vec.L2}
	t := &Table{
		Name:   "ablation-heaps",
		Title:  "Per-(thread,query) heaps vs shared locked heap (Sec. 3.2.1 ablation)",
		Header: []string{"engine", "time", "speedup-vs-shared"},
	}
	shared := &batch.SharedHeap{}
	matrix := &batch.CacheAware{}
	shared.MultiQuery(req)
	tShared := timeIt(func() { shared.MultiQuery(req) })
	matrix.MultiQuery(req)
	tMatrix := timeIt(func() { matrix.MultiQuery(req) })
	t.Add("shared-heap", tShared, 1.0)
	t.Add("heap-matrix", tMatrix, float64(tShared)/float64(tMatrix))
	return t, nil
}

// ExpAblationMultiBucketCopy isolates the grouped PCIe copy of Sec. 3.4
// against Faiss's bucket-at-a-time behaviour on the device cost model.
func ExpAblationMultiBucketCopy(sc Scale) (*Table, error) {
	sc = sc.defaults()
	nBuckets := 256
	bucketBytes := int64(64 << 10)
	t := &Table{
		Name:   "ablation-pcie",
		Title:  "Multi-bucket vs bucket-at-a-time PCIe copies (Sec. 3.4 ablation)",
		Header: []string{"strategy", "copies", "bytesMB", "modeledTime"},
	}
	cfg := gpu.Config{MemBytes: 1 << 30, PCIeBandwidth: 1.5e9, PCIeLatency: 30 * time.Microsecond}
	grouped := gpu.NewDevice(0, cfg)
	keys := make([]string, nBuckets)
	sizes := make([]int64, nBuckets)
	for i := range keys {
		keys[i] = fmt.Sprintf("b%d", i)
		sizes[i] = bucketBytes
	}
	if _, err := grouped.EnsureResident(keys, sizes); err != nil {
		return nil, err
	}
	oneByOne := gpu.NewDevice(1, cfg)
	for i := range keys {
		if _, err := oneByOne.EnsureResident(keys[i:i+1], sizes[i:i+1]); err != nil {
			return nil, err
		}
	}
	gc, gb := grouped.Stats()
	oc, ob := oneByOne.Stats()
	t.Add("multi-bucket (Milvus)", gc, float64(gb)/float64(1<<20), grouped.Clock())
	t.Add("bucket-at-a-time (Faiss)", oc, float64(ob)/float64(1<<20), oneByOne.Clock())
	return t, nil
}

// ExpAblationRho sweeps strategy E's partition count ρ, exposing the
// trade-off Sec. 4.1 discusses: too few partitions prune nothing, too many
// degrade each partition's index toward linear search.
func ExpAblationRho(sc Scale) (*Table, error) {
	sc = sc.defaults()
	d := dataset.SIFTLike(sc.N, 23)
	attrs := dataset.Attributes(sc.N, 10000, 24)
	tab, err := query.NewTable(vec.L2, d.Dim, d.Data, nil, [][]int64{attrs})
	if err != nil {
		return nil, err
	}
	queries := dataset.Queries(d, 16, 25)
	rc := query.RangeCond{Attr: 0, Lo: 2000, Hi: 4500} // 25% pass
	t := &Table{
		Name:   "ablation-rho",
		Title:  "Strategy E partition count sweep (Sec. 4.1 ablation)",
		Header: []string{"rho", "time"},
	}
	m := query.DefaultCostModel()
	for _, rho := range []int{1, 2, 4, 8, 16, 32} {
		parts, err := tab.PartitionByAttr(0, rho, "IVF_FLAT", map[string]string{"nlist": "32", "iter": "4"})
		if err != nil {
			return nil, err
		}
		ps := query.Partitions(parts)
		el := timeIt(func() {
			for qi := 0; qi < 16; qi++ {
				vc := query.VecCond{Field: 0, Query: queries[qi*d.Dim : (qi+1)*d.Dim], K: sc.K, Nprobe: 8}
				query.StrategyE(ps, rc, vc, m)
			}
		})
		t.Add(rho, el)
	}
	return t, nil
}

// ExpAblationMerge compares the tiered merge policy against no merging:
// segment counts and query latency after a stream of small flushes
// (Sec. 2.3: "smaller segments are merged into larger ones for fast
// sequential access").
func ExpAblationMerge(sc Scale) (*Table, error) {
	sc = sc.defaults()
	d := dataset.SIFTLike(8192, 26)
	t := &Table{
		Name:   "ablation-merge",
		Title:  "Tiered merging vs no merging (Sec. 2.3 ablation)",
		Header: []string{"policy", "segments", "searchTime"},
	}
	for _, mf := range []struct {
		label  string
		factor int
	}{{"tiered (factor 4)", 4}, {"no merge", 1 << 30}} {
		col, err := core.NewCollection("m", core.Schema{
			VectorFields: []core.VectorField{{Name: "v", Dim: d.Dim, Metric: vec.L2}},
		}, nil, core.Config{FlushRows: 256, FlushInterval: -1, MergeFactor: mf.factor, IndexRows: 1 << 30, SyncIndex: true})
		if err != nil {
			return nil, err
		}
		for b := 0; b < 32; b++ {
			ents := make([]core.Entity, 256)
			for i := range ents {
				row := b*256 + i
				ents[i] = core.Entity{ID: int64(row + 1), Vectors: [][]float32{d.Row(row)}}
			}
			if err := col.Insert(ents); err != nil {
				return nil, err
			}
			if err := col.Flush(); err != nil {
				return nil, err
			}
		}
		queries := dataset.Queries(d, 32, 27)
		el := timeIt(func() {
			for qi := 0; qi < 32; qi++ {
				_, _ = col.Search(queries[qi*d.Dim:(qi+1)*d.Dim], core.SearchOptions{K: sc.K})
			}
		})
		t.Add(mf.label, col.Stats().Segments, el)
		col.Close()
	}
	return t, nil
}

// ExpAblationLargeK exercises the k>1024 multi-round GPU top-k of Sec. 3.3,
// reporting the kernel rounds the round-by-round protocol needs.
func ExpAblationLargeK(sc Scale) (*Table, error) {
	sc = sc.defaults()
	n := sc.N
	ids := make([]int64, n)
	dists := make([]float32, n)
	for i := range ids {
		ids[i] = int64(i)
		dists[i] = float32((i * 2654435761) % 1000003)
	}
	t := &Table{
		Name:   "ablation-largek",
		Title:  "GPU large-k multi-round top-k (Sec. 3.3)",
		Header: []string{"k", "rounds", "modeledTime", "results"},
	}
	for _, k := range []int{1024, 2048, 4096, 8192, 16384} {
		dev := gpu.NewDevice(0, gpu.Config{MaxKernelK: 1024, KernelThroughput: 3.2e11})
		res := dev.TopKLargeK(ids, dists, k)
		rounds := (k + 1023) / 1024
		t.Add(k, rounds, dev.Clock(), len(res))
	}
	return t, nil
}

// ExpAblationMultiGPU exercises the segment-based multi-device scheduling
// of Sec. 3.3: a fixed set of segment search tasks spread over 1–4 devices;
// the makespan (max device clock) should shrink near-linearly, and an
// elastically added device must pick up work immediately.
func ExpAblationMultiGPU(sc Scale) (*Table, error) {
	sc = sc.defaults()
	const segments = 64
	segWork := int64(sc.N) * 128 / segments
	t := &Table{
		Name:   "ablation-multigpu",
		Title:  "Segment-based multi-GPU scheduling (Sec. 3.3 ablation)",
		Header: []string{"devices", "makespan", "speedup"},
	}
	var base time.Duration
	for _, nd := range []int{1, 2, 3, 4} {
		s := gpu.NewScheduler()
		for d := 0; d < nd; d++ {
			if err := s.AddDevice(gpu.NewDevice(d, gpu.Config{KernelThroughput: 1e9})); err != nil {
				return nil, err
			}
		}
		for seg := 0; seg < segments; seg++ {
			dev, err := s.Assign(fmt.Sprintf("seg-%d", seg))
			if err != nil {
				return nil, err
			}
			dev.RunKernel(segWork)
		}
		makespan := time.Duration(s.MaxClock())
		if nd == 1 {
			base = makespan
		}
		t.Add(nd, makespan, float64(base)/float64(makespan))
	}
	return t, nil
}
