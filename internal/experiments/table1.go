package experiments

import "vectordb/internal/baseline"

// ExpTable1 reproduces Table 1: the system capability matrix. Milvus's row
// is not copied from the paper — every claimed capability names the module
// of this repository that implements it.
func ExpTable1() *Table {
	t := &Table{
		Name:   "table1",
		Title:  "System comparison (Table 1)",
		Header: []string{"System", "Billion-Scale", "Dynamic", "GPU", "AttrFilter", "MultiVector", "Distributed"},
		Notes: []string{
			"Milvus row backed by: scale=internal/index+batch, dynamic=internal/core (LSM), gpu=internal/gpu+sq8h, filter=internal/query (A–E), multivector=internal/query (NRA/IMG/fusion), distributed=internal/cluster",
		},
	}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, row := range baseline.CapabilityMatrix {
		c := row.Caps
		t.Add(row.System, yn(c.BillionScale), yn(c.DynamicData), yn(c.GPU), yn(c.AttributeFilter), yn(c.MultiVectorQuery), yn(c.Distributed))
	}
	return t
}
