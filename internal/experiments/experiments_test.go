package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tiny keeps the smoke tests fast; shape assertions use the benchmark
// harness and EXPERIMENTS.md, not these tests.
var tiny = Scale{N: 1500, NQ: 8, K: 10}

func TestRegistryRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc := tiny
			if name == "ablation-largek" {
				sc.N = 5000
			}
			tab, err := Run(name, sc)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", name)
			}
			if len(tab.Header) == 0 {
				t.Fatalf("%s: missing header", name)
			}
			for i, r := range tab.Rows {
				if len(r) != len(tab.Header) {
					t.Fatalf("%s: row %d has %d cells for %d columns", name, i, len(r), len(tab.Header))
				}
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", tiny); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{Name: "x", Title: "demo", Header: []string{"a", "b"}, Notes: []string{"n1"}}
	tab.Add("v", 1.5)
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "a", "1.500", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fprint output missing %q:\n%s", want, out)
		}
	}
}

func TestFig13ShapeHolds(t *testing.T) {
	// N must stay well above the device memory (cfg sizes it at N·dim/4
	// bytes) for the transfer to dominate through batch 500, as in the
	// paper's SIFT1B-vs-16GB setting.
	tab, err := Run("fig13", Scale{N: 16000, NQ: 8, K: 20})
	if err != nil {
		t.Fatal(err)
	}
	// pure GPU must be slower than pure CPU on every row; SQ8H never the
	// slowest.
	for _, r := range tab.Rows {
		cpu, gpu, hyb := parseMS(t, r[1]), parseMS(t, r[2]), parseMS(t, r[3])
		if gpu <= cpu {
			t.Errorf("batch %s: gpu %v ≤ cpu %v", r[0], gpu, cpu)
		}
		if hyb > gpu {
			t.Errorf("batch %s: sq8h %v slower than pure gpu %v", r[0], hyb, gpu)
		}
	}
}

func parseMS(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
