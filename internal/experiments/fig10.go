package experiments

import (
	"fmt"
	"time"

	"vectordb/internal/baseline"
	"vectordb/internal/cluster"
	"vectordb/internal/core"
	"vectordb/internal/dataset"
	"vectordb/internal/objstore"
	"vectordb/internal/vec"
)

// ExpFig10a reproduces Fig. 10a: single-node throughput as the data size
// grows (the paper sweeps 1M→1B on SIFT1B; here the sweep is scaled down
// ~1000×). The expected shape: throughput drops roughly proportionally to
// data size.
func ExpFig10a(sc Scale) (*Table, error) {
	sc = sc.defaults()
	// Sweep sizes relative to the configured scale (defaults reproduce
	// 1k → 80k; the paper sweeps 1M → 1B).
	sizes := []int{sc.N / 20, sc.N / 4, sc.N, sc.N * 4}
	for i, n := range sizes {
		if n < 100 {
			sizes[i] = 100
		}
	}
	t := &Table{
		Name:   "fig10a",
		Title:  "Scalability: throughput vs data size, IVF_FLAT (Fig. 10a)",
		Header: []string{"dataSize", "recall", "qps"},
	}
	for _, n := range sizes {
		d := dataset.SIFTLike(n, 5)
		queries := dataset.Queries(d, sc.NQ, 6)
		truth := dataset.GroundTruth(d, queries, sc.K, vec.L2)
		sys := &baseline.Milvus{IndexType: "IVF_FLAT", Params: map[string]string{"iter": "6"}}
		if err := sys.Build(d, vec.L2); err != nil {
			return nil, err
		}
		nprobe := 8
		res := sys.SearchBatch(queries, sc.K, nprobe) // warm
		el := timeIt(func() { res = sys.SearchBatch(queries, sc.K, nprobe) })
		t.Add(n, recallOf(truth, res), qps(sc.NQ, el))
	}
	return t, nil
}

// ExpFig10b reproduces Fig. 10b: distributed throughput as readers are
// added. Data is sharded by consistent hashing; each query fans out to
// every reader, so per-query work per reader shrinks as 1/R.
//
// Hardware substitution (DESIGN.md §1): the readers are in-process and
// share this machine's cores, so wall-clock cannot show cross-machine
// scaling. Instead each reader's shard-local query time is measured for
// real on one core, and cluster throughput is modeled as 1/max_r(time_r) —
// the rate at which a fleet of single-core readers would drain queries.
func ExpFig10b(sc Scale) (*Table, error) {
	sc = sc.defaults()
	nodes := []int{1, 2, 4, 8, 12}
	t := &Table{
		Name:   "fig10b",
		Title:  "Scalability: modeled throughput vs #reader nodes (Fig. 10b)",
		Header: []string{"nodes", "maxShardRows", "qps"},
		Notes:  []string{"throughput = 1/max-per-reader-shard-query-time; shard work measured, fleet parallelism modeled"},
	}
	d := dataset.SIFTLike(sc.N, 7)
	queries := dataset.Queries(d, 16, 8)
	schema := core.Schema{VectorFields: []core.VectorField{{Name: "v", Dim: d.Dim, Metric: vec.L2}}}
	ents := make([]core.Entity, d.N)
	for i := 0; i < d.N; i++ {
		ents[i] = core.Entity{ID: int64(i + 1), Vectors: [][]float32{d.Row(i)}}
	}

	// Enough segments that every reader owns a meaningful shard even at 12
	// nodes (the paper shards 1B vectors; segment count scales with data).
	flushRows := sc.N / 64
	if flushRows < 64 {
		flushRows = 64
	}
	for _, nn := range nodes {
		cl, err := cluster.NewCluster(objstore.NewMemory(), nn,
			core.Config{FlushRows: flushRows, FlushInterval: -1, SyncIndex: true, IndexRows: 1 << 30, MergeFactor: 1 << 30},
			cluster.ReaderConfig{IndexRows: 1 << 30})
		if err != nil {
			return nil, err
		}
		if err := cl.Writer().CreateCollection("c", schema); err != nil {
			return nil, err
		}
		if err := cl.Writer().Insert("c", ents); err != nil {
			return nil, err
		}
		if err := cl.Writer().Flush("c"); err != nil {
			return nil, err
		}
		ring, err := cl.Coord.Ring()
		if err != nil {
			return nil, err
		}
		version, _ := cl.Coord.ManifestVersion("c")
		readers, _ := cl.Coord.Readers()

		// Warm every reader's cache, then measure per-reader shard time.
		var worst time.Duration
		maxShard := 0
		for _, id := range readers {
			r, _ := cl.Reader(id)
			for qi := 0; qi < 2; qi++ {
				if _, err := r.SearchOwned("c", version, ring, queries[:d.Dim], core.SearchOptions{K: sc.K, Nprobe: 8}); err != nil {
					return nil, err
				}
			}
			nq := len(queries) / d.Dim
			el := timeIt(func() {
				for qi := 0; qi < nq; qi++ {
					_, _ = r.SearchOwned("c", version, ring, queries[qi*d.Dim:(qi+1)*d.Dim], core.SearchOptions{K: sc.K, Nprobe: 8})
				}
			})
			per := el / time.Duration(nq)
			if per > worst {
				worst = per
			}
			// shard size for context
			man, _ := cluster.LoadManifest(cl.Store, "c")
			owned := 0
			for _, k := range man.SegmentKeys {
				if ring.Lookup(k) == id {
					owned++
				}
			}
			if owned > maxShard {
				maxShard = owned
			}
		}
		if worst <= 0 {
			worst = time.Nanosecond
		}
		t.Add(nn, fmt.Sprintf("%d segs", maxShard), 1/worst.Seconds())
	}
	return t, nil
}
