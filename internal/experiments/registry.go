package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one experiment at the given scale.
type Runner func(sc Scale) (*Table, error)

// Registry maps experiment IDs (as used by `benchmark -exp`) to runners.
var Registry = map[string]Runner{
	"table1":            func(Scale) (*Table, error) { return ExpTable1(), nil },
	"fig8":              func(sc Scale) (*Table, error) { return ExpFig8("sift", sc) },
	"fig8-deep":         func(sc Scale) (*Table, error) { return ExpFig8("deep", sc) },
	"fig9":              func(sc Scale) (*Table, error) { return ExpFig9("sift", sc) },
	"fig9-deep":         func(sc Scale) (*Table, error) { return ExpFig9("deep", sc) },
	"fig10a":            ExpFig10a,
	"fig10b":            ExpFig10b,
	"fig11":             ExpFig11,
	"fig12":             ExpFig12,
	"fig13":             ExpFig13,
	"fig14":             func(sc Scale) (*Table, error) { return ExpFig14(sc, 50) },
	"fig14-k500":        func(sc Scale) (*Table, error) { return ExpFig14(sc, 500) },
	"fig15":             func(sc Scale) (*Table, error) { return ExpFig15(sc, 50) },
	"fig15-k500":        func(sc Scale) (*Table, error) { return ExpFig15(sc, 500) },
	"fig16":             func(sc Scale) (*Table, error) { return ExpFig16(sc, "L2") },
	"fig16-ip":          func(sc Scale) (*Table, error) { return ExpFig16(sc, "IP") },
	"ablation-heaps":    ExpAblationHeaps,
	"ablation-pcie":     ExpAblationMultiBucketCopy,
	"ablation-rho":      ExpAblationRho,
	"ablation-merge":    ExpAblationMerge,
	"ablation-largek":   ExpAblationLargeK,
	"ablation-multigpu": ExpAblationMultiGPU,
}

// Names lists experiment IDs, sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for n := range Registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run executes a named experiment.
func Run(name string, sc Scale) (*Table, error) {
	r, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (available: %v)", name, Names())
	}
	return r(sc)
}
