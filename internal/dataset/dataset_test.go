package dataset

import (
	"math"
	"testing"

	"vectordb/internal/vec"
)

func TestSIFTLikeShape(t *testing.T) {
	d := SIFTLike(100, 1)
	if d.N != 100 || d.Dim != 128 || len(d.Data) != 100*128 {
		t.Fatalf("shape: N=%d Dim=%d len=%d", d.N, d.Dim, len(d.Data))
	}
	for i, x := range d.Data {
		if x < 0 || x > 255 {
			t.Fatalf("value %v at %d out of SIFT range", x, i)
		}
	}
}

func TestDeepLikeNormalized(t *testing.T) {
	d := DeepLike(50, 2)
	if d.Dim != 96 {
		t.Fatalf("Dim = %d, want 96", d.Dim)
	}
	for i := 0; i < d.N; i++ {
		n := vec.Norm(d.Row(i))
		if math.Abs(float64(n)-1) > 1e-4 {
			t.Fatalf("row %d norm = %v, want 1", i, n)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := SIFTLike(30, 7)
	b := SIFTLike(30, 7)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := SIFTLike(30, 8)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestQueriesHaveNearNeighbors(t *testing.T) {
	d := SIFTLike(200, 3)
	qs := Queries(d, 10, 4)
	gt := GroundTruth(d, qs, 1, vec.L2)
	for qi, res := range gt {
		if len(res) != 1 {
			t.Fatalf("query %d: no result", qi)
		}
		// A perturbed sample must be far closer to its source than the data
		// diameter; just require a finite small distance relative to dim.
		if res[0].Distance > 1e6 {
			t.Fatalf("query %d: nearest distance %v suspiciously large", qi, res[0].Distance)
		}
	}
}

func TestGroundTruthExactness(t *testing.T) {
	d := Uniform(50, 4, 5)
	qs := Queries(d, 5, 6)
	gt := GroundTruth(d, qs, 3, vec.L2)
	for qi := 0; qi < 5; qi++ {
		q := qs[qi*d.Dim : (qi+1)*d.Dim]
		// verify ordering and optimality by re-scan
		res := gt[qi]
		if len(res) != 3 {
			t.Fatalf("query %d: %d results", qi, len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i].Distance < res[i-1].Distance {
				t.Fatalf("query %d: unsorted results", qi)
			}
		}
		worst := res[len(res)-1].Distance
		better := 0
		for i := 0; i < d.N; i++ {
			if vec.L2Squared(q, d.Row(i)) < worst {
				better++
			}
		}
		if better > 3 {
			t.Fatalf("query %d: %d vectors beat the reported worst", qi, better)
		}
	}
}

func TestRecipeLikeCorrelation(t *testing.T) {
	m := RecipeLike(300, []int{16, 24}, 9)
	if m.N != 300 || len(m.Fields) != 2 {
		t.Fatalf("shape wrong")
	}
	if len(m.Field(0, 0)) != 16 || len(m.Field(1, 0)) != 24 {
		t.Fatalf("field dims wrong")
	}
	// Fields must be correlated: entities close in field 0 should be closer
	// than random in field 1 on average.
	var corrSum, randSum float64
	pairs := 0
	for i := 0; i < 100; i++ {
		// find i's nearest in field 0 among a sample
		best, bestD := -1, float32(math.MaxFloat32)
		for j := 0; j < 300; j++ {
			if j == i {
				continue
			}
			d := vec.L2Squared(m.Field(0, i), m.Field(0, j))
			if d < bestD {
				best, bestD = j, d
			}
		}
		corrSum += float64(vec.L2Squared(m.Field(1, i), m.Field(1, best)))
		randSum += float64(vec.L2Squared(m.Field(1, i), m.Field(1, (i+137)%300)))
		pairs++
	}
	if corrSum >= randSum {
		t.Fatalf("fields uncorrelated: nearest-by-field0 distance %v >= random %v", corrSum/float64(pairs), randSum/float64(pairs))
	}
}

func TestAttributesRange(t *testing.T) {
	attrs := Attributes(1000, 10000, 11)
	if len(attrs) != 1000 {
		t.Fatalf("len = %d", len(attrs))
	}
	var lo, hi int64 = 10000, -1
	for _, a := range attrs {
		if a < 0 || a >= 10000 {
			t.Fatalf("attribute %d out of range", a)
		}
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi-lo < 5000 {
		t.Fatalf("attributes not spread: lo=%d hi=%d", lo, hi)
	}
}
