// Package dataset generates the synthetic workloads used by the experiment
// harness. The paper evaluates on SIFT1B (128-d SIFT descriptors), Deep1B
// (96-d normalized CNN descriptors) and Recipe1M (two vectors per entity);
// none of those multi-hundred-GB corpora are available here, so this package
// produces deterministic laptop-scale stand-ins that preserve the structural
// properties the experiments depend on: cluster skew (drives IVF bucket
// selectivity), normalization (drives IP/cosine behaviour), and cross-field
// correlation (drives multi-vector aggregation). See DESIGN.md §1.
package dataset

import (
	"math/rand"

	"vectordb/internal/vec"
)

// Dataset is a flat row-major collection of float vectors.
type Dataset struct {
	Name string
	Dim  int
	N    int
	Data []float32 // N*Dim
}

// Row returns vector i as a slice view.
func (d *Dataset) Row(i int) []float32 { return d.Data[i*d.Dim : (i+1)*d.Dim] }

// SIFTLike generates n 128-dimensional vectors resembling SIFT descriptors:
// non-negative, heavy-tailed gradient histograms drawn around k latent
// cluster centers (natural image descriptors are strongly clustered, which
// is what makes IVF indexes effective on SIFT1B).
func SIFTLike(n int, seed int64) *Dataset {
	return clustered("sift-like", n, 128, 64, seed, func(r *rand.Rand, x float32) float32 {
		v := x + float32(r.NormFloat64()*8)
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		return v
	}, func(r *rand.Rand) float32 { return float32(r.Float64() * 128) })
}

// DeepLike generates n 96-dimensional L2-normalized vectors resembling
// Deep1B CNN descriptors: Gaussian mixture, then unit-normalized.
func DeepLike(n int, seed int64) *Dataset {
	d := clustered("deep-like", n, 96, 48, seed, func(r *rand.Rand, x float32) float32 {
		return x + float32(r.NormFloat64()*0.15)
	}, func(r *rand.Rand) float32 { return float32(r.NormFloat64()) })
	for i := 0; i < d.N; i++ {
		vec.Normalize(d.Row(i))
	}
	return d
}

// Uniform generates n dim-dimensional vectors uniform in [0,1); useful for
// worst-case (unclustered) index behaviour in ablations.
func Uniform(n, dim int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "uniform", Dim: dim, N: n, Data: make([]float32, n*dim)}
	for i := range d.Data {
		d.Data[i] = r.Float32()
	}
	return d
}

func clustered(name string, n, dim, k int, seed int64, perturb func(*rand.Rand, float32) float32, center func(*rand.Rand) float32) *Dataset {
	r := rand.New(rand.NewSource(seed))
	centers := make([]float32, k*dim)
	for i := range centers {
		centers[i] = center(r)
	}
	d := &Dataset{Name: name, Dim: dim, N: n, Data: make([]float32, n*dim)}
	for i := 0; i < n; i++ {
		c := r.Intn(k)
		row := d.Data[i*dim : (i+1)*dim]
		base := centers[c*dim : (c+1)*dim]
		for j := 0; j < dim; j++ {
			row[j] = perturb(r, base[j])
		}
	}
	return d
}

// Queries draws nq query vectors with the same distribution as d by sampling
// rows and re-perturbing them slightly (so queries have near neighbors but
// are not dataset members).
func Queries(d *Dataset, nq int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float32, nq*d.Dim)
	for i := 0; i < nq; i++ {
		src := d.Row(r.Intn(d.N))
		dst := out[i*d.Dim : (i+1)*d.Dim]
		for j := range dst {
			dst[j] = src[j] + float32(r.NormFloat64()*0.01*float64(absf(src[j])+1))
		}
	}
	return out
}

func absf(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// MultiVector is a dataset where every entity has F correlated vector fields
// (the Recipe1M stand-in: field 0 ≈ "text embedding", field 1 ≈ "image
// embedding"). Fields[f] is the flat matrix of field f.
type MultiVector struct {
	Name   string
	N      int
	Dims   []int
	Fields [][]float32
}

// Field returns vector i of field f.
func (m *MultiVector) Field(f, i int) []float32 {
	dim := m.Dims[f]
	return m.Fields[f][i*dim : (i+1)*dim]
}

// RecipeLike generates n entities with two vector fields of the given dims,
// both derived from a shared latent cluster plus independent noise, so the
// fields agree on coarse similarity but disagree in detail — exactly the
// regime where naive per-field top-k misses true multi-vector results.
func RecipeLike(n int, dims []int, seed int64) *MultiVector {
	return RecipeLikeNoise(n, dims, 0.4, seed)
}

// RecipeLikeNoise is RecipeLike with an explicit per-field noise level:
// higher noise weakens the cross-field correlation, approaching Recipe1M's
// weakly coupled text/image modalities.
func RecipeLikeNoise(n int, dims []int, noise float64, seed int64) *MultiVector {
	r := rand.New(rand.NewSource(seed))
	const k = 32
	m := &MultiVector{Name: "recipe-like", N: n, Dims: dims, Fields: make([][]float32, len(dims))}
	latents := make([][]float32, len(dims))
	for f, dim := range dims {
		latents[f] = make([]float32, k*dim)
		for i := range latents[f] {
			latents[f][i] = float32(r.NormFloat64())
		}
		m.Fields[f] = make([]float32, n*dim)
	}
	for i := 0; i < n; i++ {
		c := r.Intn(k)
		for f, dim := range dims {
			row := m.Fields[f][i*dim : (i+1)*dim]
			base := latents[f][c*dim : (c+1)*dim]
			for j := 0; j < dim; j++ {
				row[j] = base[j] + float32(r.NormFloat64()*noise)
			}
		}
	}
	return m
}

// Attributes generates one numerical attribute per row, uniform over
// [0, upper), matching the Fig. 14/15 setup ("augment each vector with an
// attribute of a random value ranging from 0 to 10000").
func Attributes(n int, upper int64, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63n(upper)
	}
	return out
}
