package dataset

import (
	"runtime"
	"sync"

	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// GroundTruth computes the exact top-k neighbors of every query by parallel
// brute force; it is the reference for recall (Sec. 7.1).
func GroundTruth(d *Dataset, queries []float32, k int, metric vec.Metric) [][]topk.Result {
	nq := len(queries) / d.Dim
	out := make([][]topk.Result, nq)
	dist := metric.Dist()
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range next {
				q := queries[qi*d.Dim : (qi+1)*d.Dim]
				h := topk.New(k)
				for i := 0; i < d.N; i++ {
					h.Push(int64(i), dist(q, d.Row(i)))
				}
				out[qi] = h.Results()
			}
		}()
	}
	for qi := 0; qi < nq; qi++ {
		next <- qi
	}
	close(next)
	wg.Wait()
	return out
}
