package quantizer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vectordb/internal/vec"
)

func randData(r *rand.Rand, n, dim int) []float32 {
	d := make([]float32, n*dim)
	for i := range d {
		d[i] = float32(r.NormFloat64() * 10)
	}
	return d
}

func TestSQ8RoundTripError(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	dim := 16
	data := randData(r, 500, dim)
	q, err := TrainSQ8(data, dim)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < 500; i++ {
		v := data[i*dim : (i+1)*dim]
		dec := q.Decode(q.Encode(v, nil), nil)
		for j := range v {
			e := math.Abs(float64(v[j] - dec[j]))
			// max error is half a quantization step
			step := float64(q.Step[j])
			if e > step/2+1e-5 {
				t.Fatalf("dim %d: error %v exceeds step/2 %v", j, e, step/2)
			}
			if e > worst {
				worst = e
			}
		}
	}
	if worst == 0 {
		t.Fatal("suspicious: zero quantization error on random data")
	}
}

func TestSQ8ClampsOutOfRange(t *testing.T) {
	data := []float32{0, 0, 10, 10} // two 2-d vectors
	q, err := TrainSQ8(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	code := q.Encode([]float32{-100, 100}, nil)
	if code[0] != 0 || code[1] != 255 {
		t.Fatalf("clamping failed: %v", code)
	}
}

func TestSQ8ConstantDimension(t *testing.T) {
	data := []float32{5, 1, 5, 2, 5, 3} // first dim constant
	q, err := TrainSQ8(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec := q.Decode(q.Encode([]float32{5, 2}, nil), nil)
	if dec[0] != 5 {
		t.Fatalf("constant dim decoded to %v, want 5", dec[0])
	}
}

func TestSQ8DistancesMatchDecoded(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	dim := 8
	data := randData(r, 200, dim)
	q, err := TrainSQ8(data, dim)
	if err != nil {
		t.Fatal(err)
	}
	query := randData(r, 1, dim)
	for i := 0; i < 50; i++ {
		v := data[i*dim : (i+1)*dim]
		code := q.Encode(v, nil)
		dec := q.Decode(code, nil)
		wantL2 := vec.L2Squared(query, dec)
		if got := q.L2Squared(query, code); math.Abs(float64(got-wantL2)) > 1e-2 {
			t.Fatalf("L2Squared = %v, want %v", got, wantL2)
		}
		wantIP := vec.Dot(query, dec)
		if got := q.Dot(query, code); math.Abs(float64(got-wantIP)) > 1e-2 {
			t.Fatalf("Dot = %v, want %v", got, wantIP)
		}
	}
}

func TestSQ8TrainErrors(t *testing.T) {
	if _, err := TrainSQ8(nil, 4); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := TrainSQ8([]float32{1, 2, 3}, 2); err == nil {
		t.Error("ragged data accepted")
	}
	if _, err := TrainSQ8([]float32{1}, 0); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestPQEncodeDecodeReducesError(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	dim := 16
	data := randData(r, 1000, dim)
	pq, err := TrainPQ(data, dim, PQConfig{M: 4, Ks: 64, MaxIter: 8})
	if err != nil {
		t.Fatal(err)
	}
	if pq.CodeSize() != 4 {
		t.Fatalf("CodeSize = %d, want 4", pq.CodeSize())
	}
	// Reconstruction must be much closer than a random other vector.
	var reconErr, randErr float64
	for i := 0; i < 200; i++ {
		v := data[i*dim : (i+1)*dim]
		dec := pq.Decode(pq.Encode(v, nil), nil)
		reconErr += float64(vec.L2Squared(v, dec))
		other := data[((i+500)%1000)*dim : ((i+500)%1000+1)*dim]
		randErr += float64(vec.L2Squared(v, other))
	}
	if reconErr >= randErr/4 {
		t.Fatalf("reconstruction error %v not ≪ random-pair error %v", reconErr, randErr)
	}
}

func TestPQADCTableMatchesDecodedDistance(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	dim := 8
	data := randData(r, 300, dim)
	pq, err := TrainPQ(data, dim, PQConfig{M: 2, Ks: 16, MaxIter: 6})
	if err != nil {
		t.Fatal(err)
	}
	q := randData(r, 1, dim)
	l2t := pq.L2Table(q)
	ipt := pq.IPTable(q)
	for i := 0; i < 50; i++ {
		code := pq.Encode(data[i*dim:(i+1)*dim], nil)
		dec := pq.Decode(code, nil)
		if got, want := l2t.Distance(code), vec.L2Squared(q, dec); math.Abs(float64(got-want)) > 1e-3 {
			t.Fatalf("ADC L2 = %v, want %v", got, want)
		}
		if got, want := ipt.Distance(code), -vec.Dot(q, dec); math.Abs(float64(got-want)) > 1e-3 {
			t.Fatalf("ADC IP = %v, want %v", got, want)
		}
	}
}

func TestPQConfigErrors(t *testing.T) {
	data := randData(rand.New(rand.NewSource(5)), 10, 8)
	if _, err := TrainPQ(data, 8, PQConfig{M: 3}); err == nil {
		t.Error("M not dividing dim accepted")
	}
	if _, err := TrainPQ(data, 8, PQConfig{M: 2, Ks: 300}); err == nil {
		t.Error("Ks > 256 accepted")
	}
	if _, err := TrainPQ(nil, 8, PQConfig{M: 2}); err == nil {
		t.Error("empty data accepted")
	}
}

// Property: SQ8 encode∘decode∘encode is idempotent (codes are fixed points).
func TestSQ8EncodeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	dim := 4
	data := randData(r, 64, dim)
	q, err := TrainSQ8(data, dim)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rr.NormFloat64() * 10)
		}
		c1 := q.Encode(v, nil)
		c2 := q.Encode(q.Decode(c1, nil), nil)
		for j := range c1 {
			// Allow off-by-one from rounding at bucket boundaries.
			d := int(c1[j]) - int(c2[j])
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSQ8L2(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	dim := 128
	data := randData(r, 100, dim)
	q, _ := TrainSQ8(data, dim)
	code := q.Encode(data[:dim], nil)
	query := randData(r, 1, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.L2Squared(query, code)
	}
}

func BenchmarkPQADC(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	dim := 128
	data := randData(r, 2000, dim)
	pq, err := TrainPQ(data, dim, PQConfig{M: 16, Ks: 256, MaxIter: 4})
	if err != nil {
		b.Fatal(err)
	}
	code := pq.Encode(data[:dim], nil)
	tab := pq.L2Table(randData(r, 1, dim))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Distance(code)
	}
}
