package quantizer

import (
	"math"
	"math/rand"
	"testing"
)

func randFloats(r *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

func relClose(a, b float64, eps float64) bool {
	if math.Abs(a-b) <= eps {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return den > 0 && math.Abs(a-b)/den <= eps
}

// TestSQ8QueryMatchesDecodeThenDistance pins the fused ADC against the
// reference it replaces: decode the code to floats, then run the plain
// distance. The fused form reassociates (r - t·step)² into
// r² + t·(t·step² - 2·r·step), so agreement is within FP tolerance
// (1e-3 relative — the coefficients square the step), not bit-exact.
func TestSQ8QueryMatchesDecodeThenDistance(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, dim := range []int{1, 3, 17, 100, 131} {
		data := randFloats(r, 200*dim)
		q8, err := TrainSQ8(data, dim)
		if err != nil {
			t.Fatal(err)
		}
		query := randFloats(r, dim)
		l2q := q8.L2Query(query)
		ipq := q8.IPQuery(query)
		dec := make([]float32, dim)
		for i := 0; i < 50; i++ {
			code := q8.Encode(data[i*dim:(i+1)*dim], nil)
			q8.Decode(code, dec)
			var wantL2, wantIP float64
			for j := 0; j < dim; j++ {
				d := float64(query[j]) - float64(dec[j])
				wantL2 += d * d
				wantIP += float64(query[j]) * float64(dec[j])
			}
			if got := float64(l2q.Distance(code)); !relClose(got, wantL2, 1e-3) {
				t.Fatalf("dim %d row %d: fused L2 %v, decode-then-L2 %v", dim, i, got, wantL2)
			}
			if got := float64(ipq.Distance(code)); !relClose(got, -wantIP, 1e-3) {
				t.Fatalf("dim %d row %d: fused IP %v, decode-then-negdot %v", dim, i, got, -wantIP)
			}
			// The fused scalar entry points the quantizer already exposes
			// must agree too (they share the decode semantics).
			if got, want := float64(l2q.Distance(code)), float64(q8.L2Squared(query, code)); !relClose(got, want, 1e-3) {
				t.Fatalf("dim %d row %d: fused L2 %v vs SQ8.L2Squared %v", dim, i, got, want)
			}
			if got, want := float64(ipq.Distance(code)), -float64(q8.Dot(query, code)); !relClose(got, want, 1e-3) {
				t.Fatalf("dim %d row %d: fused IP %v vs -SQ8.Dot %v", dim, i, got, want)
			}
		}
	}
}

// TestSQ8QueryDistanceBatch: the contiguous-block entry point must equal
// the one-code path exactly (same arithmetic, just batched).
func TestSQ8QueryDistanceBatch(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	dim, n := 24, 37
	data := randFloats(r, n*dim)
	q8, err := TrainSQ8(data, dim)
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]uint8, n*dim)
	for i := 0; i < n; i++ {
		q8.Encode(data[i*dim:(i+1)*dim], codes[i*dim:(i+1)*dim])
	}
	for _, ip := range []bool{false, true} {
		sq := q8.Query(randFloats(r, dim), ip)
		out := make([]float32, n)
		sq.DistanceBatch(codes, out)
		for i := 0; i < n; i++ {
			if want := sq.Distance(codes[i*dim : (i+1)*dim]); out[i] != want {
				t.Fatalf("ip=%v row %d: batch %v, single %v", ip, i, out[i], want)
			}
		}
		// Empty block is a no-op.
		sq.DistanceBatch(nil, out)
	}
}

func TestSQ8QueryDim(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	q8, err := TrainSQ8(randFloats(r, 50*8), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := q8.L2Query(randFloats(r, 8)).Dim(); got != 8 {
		t.Fatalf("Dim = %d", got)
	}
}
