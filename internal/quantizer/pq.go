package quantizer

import (
	"fmt"

	"vectordb/internal/kmeans"
	"vectordb/internal/vec"
)

// PQ is a product quantizer: the vector is split into M sub-vectors and each
// sub-space gets its own Ks-centroid codebook learned with K-means (Sec. 3.1,
// IVF_PQ). A vector encodes to M bytes (Ks ≤ 256).
type PQ struct {
	Dim    int
	M      int // number of sub-quantizers
	SubDim int // Dim / M
	Ks     int // centroids per sub-space, ≤ 256
	// Codebooks[m] is a flat Ks×SubDim matrix for sub-space m.
	Codebooks [][]float32
}

// PQConfig controls PQ training.
type PQConfig struct {
	M       int   // required; must divide dim
	Ks      int   // default 256
	MaxIter int   // K-means iterations per sub-space
	Seed    int64 // RNG seed
}

// TrainPQ learns per-sub-space codebooks from flat row-major training data.
func TrainPQ(data []float32, dim int, cfg PQConfig) (*PQ, error) {
	if cfg.Ks == 0 {
		cfg.Ks = 256
	}
	if cfg.Ks < 1 || cfg.Ks > 256 {
		return nil, fmt.Errorf("quantizer: Ks must be in [1,256], got %d", cfg.Ks)
	}
	if cfg.M <= 0 || dim%cfg.M != 0 {
		return nil, fmt.Errorf("quantizer: M=%d must divide dim=%d", cfg.M, dim)
	}
	if len(data) == 0 || len(data)%dim != 0 {
		return nil, fmt.Errorf("quantizer: bad training data length %d for dim %d", len(data), dim)
	}
	n := len(data) / dim
	sub := dim / cfg.M
	pq := &PQ{Dim: dim, M: cfg.M, SubDim: sub, Ks: cfg.Ks, Codebooks: make([][]float32, cfg.M)}
	subData := make([]float32, n*sub)
	for m := 0; m < cfg.M; m++ {
		for i := 0; i < n; i++ {
			copy(subData[i*sub:(i+1)*sub], data[i*dim+m*sub:i*dim+(m+1)*sub])
		}
		res, err := kmeans.Train(subData, sub, kmeans.Config{K: cfg.Ks, MaxIter: cfg.MaxIter, Seed: cfg.Seed + int64(m)})
		if err != nil {
			return nil, fmt.Errorf("quantizer: sub-space %d: %w", m, err)
		}
		cb := make([]float32, len(res.Centroids))
		copy(cb, res.Centroids)
		pq.Codebooks[m] = cb
	}
	return pq, nil
}

// Encode quantizes v into an M-byte code.
func (p *PQ) Encode(v []float32, code []uint8) []uint8 {
	if code == nil {
		code = make([]uint8, p.M)
	}
	for m := 0; m < p.M; m++ {
		subv := v[m*p.SubDim : (m+1)*p.SubDim]
		cb := p.Codebooks[m]
		best, bestD := 0, float32(0)
		for c := 0; c < p.Ks; c++ {
			d := vec.L2Squared(subv, cb[c*p.SubDim:(c+1)*p.SubDim])
			if c == 0 || d < bestD {
				best, bestD = c, d
			}
		}
		code[m] = uint8(best)
	}
	return code
}

// Decode reconstructs the approximate vector from an M-byte code.
func (p *PQ) Decode(code []uint8, out []float32) []float32 {
	if out == nil {
		out = make([]float32, p.Dim)
	}
	for m := 0; m < p.M; m++ {
		cb := p.Codebooks[m]
		c := int(code[m])
		copy(out[m*p.SubDim:(m+1)*p.SubDim], cb[c*p.SubDim:(c+1)*p.SubDim])
	}
	return out
}

// ADCTable holds precomputed per-sub-space distances from one query to every
// codebook centroid, enabling O(M) asymmetric distance computation per code.
type ADCTable struct {
	m, ks int
	tab   []float32 // m*ks
}

// L2Table precomputes the asymmetric squared-L2 table for query.
func (p *PQ) L2Table(query []float32) *ADCTable {
	t := &ADCTable{m: p.M, ks: p.Ks, tab: make([]float32, p.M*p.Ks)}
	for m := 0; m < p.M; m++ {
		subq := query[m*p.SubDim : (m+1)*p.SubDim]
		cb := p.Codebooks[m]
		for c := 0; c < p.Ks; c++ {
			t.tab[m*p.Ks+c] = vec.L2Squared(subq, cb[c*p.SubDim:(c+1)*p.SubDim])
		}
	}
	return t
}

// IPTable precomputes the inner-product table (stored negated so Distance
// stays smaller-is-better).
func (p *PQ) IPTable(query []float32) *ADCTable {
	t := &ADCTable{m: p.M, ks: p.Ks, tab: make([]float32, p.M*p.Ks)}
	for m := 0; m < p.M; m++ {
		subq := query[m*p.SubDim : (m+1)*p.SubDim]
		cb := p.Codebooks[m]
		for c := 0; c < p.Ks; c++ {
			t.tab[m*p.Ks+c] = -vec.Dot(subq, cb[c*p.SubDim:(c+1)*p.SubDim])
		}
	}
	return t
}

// Distance looks up the ADC distance of one code in O(M).
func (t *ADCTable) Distance(code []uint8) float32 {
	var s float32
	for m := 0; m < t.m; m++ {
		s += t.tab[m*t.ks+int(code[m])]
	}
	return s
}

// CodeSize returns the encoded size in bytes per vector.
func (p *PQ) CodeSize() int { return p.M }
