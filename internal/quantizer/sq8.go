// Package quantizer implements the fine quantizers of Sec. 3.1: the scalar
// quantizer (SQ8) that compresses each 4-byte float to a 1-byte integer, and
// the product quantizer (PQ) that splits vectors into sub-vectors and runs
// K-means per sub-space.
package quantizer

import "fmt"

// SQ8 is a per-dimension linear scalar quantizer mapping float32 to uint8.
// It stores per-dimension [min, max] ranges learned from training data; a
// value x encodes to round((x-min)/(max-min)*255). IVF_SQ8 takes 1/4 the
// space of IVF_FLAT while losing only ~1% recall (footnote 6).
type SQ8 struct {
	Dim  int
	Min  []float32 // per-dimension minimum
	Step []float32 // (max-min)/255 per dimension; 0 for constant dimensions
}

// TrainSQ8 learns per-dimension ranges from flat row-major training data.
func TrainSQ8(data []float32, dim int) (*SQ8, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("quantizer: dim must be positive, got %d", dim)
	}
	if len(data) == 0 || len(data)%dim != 0 {
		return nil, fmt.Errorf("quantizer: bad training data length %d for dim %d", len(data), dim)
	}
	n := len(data) / dim
	minv := make([]float32, dim)
	maxv := make([]float32, dim)
	copy(minv, data[:dim])
	copy(maxv, data[:dim])
	for i := 1; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		for j, x := range row {
			if x < minv[j] {
				minv[j] = x
			}
			if x > maxv[j] {
				maxv[j] = x
			}
		}
	}
	step := make([]float32, dim)
	for j := range step {
		step[j] = (maxv[j] - minv[j]) / 255
	}
	return &SQ8{Dim: dim, Min: minv, Step: step}, nil
}

// Encode quantizes v into code (len Dim). code is returned for chaining.
func (q *SQ8) Encode(v []float32, code []uint8) []uint8 {
	if code == nil {
		code = make([]uint8, q.Dim)
	}
	for j := 0; j < q.Dim; j++ {
		if q.Step[j] == 0 {
			code[j] = 0
			continue
		}
		x := (v[j] - q.Min[j]) / q.Step[j]
		switch {
		case x <= 0:
			code[j] = 0
		case x >= 255:
			code[j] = 255
		default:
			code[j] = uint8(x + 0.5)
		}
	}
	return code
}

// Decode reconstructs an approximate vector from code into out.
func (q *SQ8) Decode(code []uint8, out []float32) []float32 {
	if out == nil {
		out = make([]float32, q.Dim)
	}
	for j := 0; j < q.Dim; j++ {
		out[j] = q.Min[j] + float32(code[j])*q.Step[j]
	}
	return out
}

// L2Squared computes squared L2 distance between a float query and a code
// without materializing the decoded vector.
func (q *SQ8) L2Squared(query []float32, code []uint8) float32 {
	var s float32
	for j := 0; j < q.Dim; j++ {
		d := query[j] - (q.Min[j] + float32(code[j])*q.Step[j])
		s += d * d
	}
	return s
}

// Dot computes the inner product of a float query with a decoded code.
func (q *SQ8) Dot(query []float32, code []uint8) float32 {
	var s float32
	for j := 0; j < q.Dim; j++ {
		s += query[j] * (q.Min[j] + float32(code[j])*q.Step[j])
	}
	return s
}

// CodeSize returns the encoded size in bytes per vector.
func (q *SQ8) CodeSize() int { return q.Dim }
