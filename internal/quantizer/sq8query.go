package quantizer

// Fused SQ8 asymmetric distance computation (ADC). SQ8.L2Squared decodes
// scalar per dimension: every code byte costs a dequantization
// (min + t·step) before the subtract-square. For one query scanning
// thousands of codes, the query-dependent parts of that arithmetic are loop
// invariants. Expanding the L2 term per dimension with r = query - min and
// t = float32(code):
//
//	(query - (min + t·step))² = (r - t·step)² = r² + t·(t·step² - 2·r·step)
//
// so with per-query precomputed coefficients c2 = step², c1 = -2·r·step and
// base = Σ r², a code's distance is base + Σ t·(t·c2 + c1): two fused
// multiply-adds per dimension, no decode, no per-dimension min/step loads
// from the quantizer. Inner product factors the same way:
// Σ q·(min + t·step) = Σ q·min + Σ t·(q·step).
//
// SQ8Query holds the coefficients; DistanceBatch is the contiguous-code
// batch entry point used by the IVF_SQ8 bucket scans and SQ8H's CPU leg.

// SQ8Query is a per-query fused-ADC table for one SQ8 quantizer. Distances
// follow the engine's smaller-is-better convention: L2 queries yield squared
// L2, IP queries yield negated inner product.
type SQ8Query struct {
	dim  int
	base float32
	c1   []float32 // linear coefficient per dimension
	c2   []float32 // quadratic coefficient per dimension; nil for IP
}

// L2Query precomputes the fused squared-L2 coefficients for query.
func (q *SQ8) L2Query(query []float32) *SQ8Query {
	s := &SQ8Query{dim: q.Dim, c1: make([]float32, q.Dim), c2: make([]float32, q.Dim)}
	var base float32
	for j := 0; j < q.Dim; j++ {
		r := query[j] - q.Min[j]
		base += r * r
		s.c1[j] = -2 * r * q.Step[j]
		s.c2[j] = q.Step[j] * q.Step[j]
	}
	s.base = base
	return s
}

// IPQuery precomputes the fused negated-inner-product coefficients for
// query (distance = -dot(query, decode(code))).
func (q *SQ8) IPQuery(query []float32) *SQ8Query {
	s := &SQ8Query{dim: q.Dim, c1: make([]float32, q.Dim)}
	var base float32
	for j := 0; j < q.Dim; j++ {
		base -= query[j] * q.Min[j]
		s.c1[j] = -query[j] * q.Step[j]
	}
	s.base = base
	return s
}

// Query builds the fused table for the metric convention the caller uses:
// ip selects IPQuery, otherwise L2Query (matching SQ8.Dot vs SQ8.L2Squared).
func (q *SQ8) Query(query []float32, ip bool) *SQ8Query {
	if ip {
		return q.IPQuery(query)
	}
	return q.L2Query(query)
}

// Dim returns the code length the table expects.
func (s *SQ8Query) Dim() int { return s.dim }

// Distance computes the fused distance of one code (len Dim).
func (s *SQ8Query) Distance(code []uint8) float32 {
	if s.c2 == nil {
		return s.base + s.dotTerm(code)
	}
	return s.base + s.l2Term(code)
}

func (s *SQ8Query) l2Term(code []uint8) float32 {
	c1, c2 := s.c1, s.c2
	var a0, a1 float32
	j := 0
	for ; j+4 <= len(code); j += 4 {
		t0 := float32(code[j])
		t1 := float32(code[j+1])
		t2 := float32(code[j+2])
		t3 := float32(code[j+3])
		a0 += t0*(t0*c2[j]+c1[j]) + t1*(t1*c2[j+1]+c1[j+1])
		a1 += t2*(t2*c2[j+2]+c1[j+2]) + t3*(t3*c2[j+3]+c1[j+3])
	}
	a := a0 + a1
	for ; j < len(code); j++ {
		t := float32(code[j])
		a += t * (t*c2[j] + c1[j])
	}
	return a
}

func (s *SQ8Query) dotTerm(code []uint8) float32 {
	c1 := s.c1
	var a0, a1 float32
	j := 0
	for ; j+4 <= len(code); j += 4 {
		a0 += float32(code[j])*c1[j] + float32(code[j+1])*c1[j+1]
		a1 += float32(code[j+2])*c1[j+2] + float32(code[j+3])*c1[j+3]
	}
	a := a0 + a1
	for ; j < len(code); j++ {
		a += float32(code[j]) * c1[j]
	}
	return a
}

// DistanceBatch computes fused distances for a contiguous block of codes
// (len(codes) = n·Dim) into out (len >= n) — the batch entry point for
// IVF_SQ8 bucket scans and SQ8H's CPU leg, never materializing decoded
// floats.
func (s *SQ8Query) DistanceBatch(codes []uint8, out []float32) {
	dim := s.dim
	n := len(codes) / dim
	for i := 0; i < n; i++ {
		out[i] = s.Distance(codes[i*dim : (i+1)*dim])
	}
}
