// Package annoy implements an ANNOY-style random-projection forest — the
// tree-based index the paper supports alongside quantization- and
// graph-based ones (footnote 3; SPTAG in the evaluation is also tree-based).
// Each tree recursively splits the data with hyperplanes bisecting two
// random points; search walks all trees best-first by hyperplane margin,
// collects a candidate set, and re-ranks it with exact distances.
package annoy

import (
	"fmt"
	"math/rand"

	"vectordb/internal/index"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

func init() {
	index.Register("ANNOY", func(metric vec.Metric, dim int, params map[string]string) (index.Builder, error) {
		return NewBuilderFromParams(metric, dim, params)
	})
}

// Builder builds ANNOY forests.
type Builder struct {
	Metric   vec.Metric
	Dim      int
	NTrees   int // default 8
	LeafSize int // default 32
	Seed     int64
}

// NewBuilderFromParams parses registry parameters (ntrees, leaf, seed).
func NewBuilderFromParams(metric vec.Metric, dim int, params map[string]string) (*Builder, error) {
	if metric.Binary() {
		return nil, fmt.Errorf("annoy: binary metric %v not supported", metric)
	}
	b := &Builder{Metric: metric, Dim: dim}
	var err error
	if b.NTrees, err = index.ParamInt(params, "ntrees", 8); err != nil {
		return nil, err
	}
	if b.LeafSize, err = index.ParamInt(params, "leaf", 32); err != nil {
		return nil, err
	}
	seed, err := index.ParamInt(params, "seed", 1)
	if err != nil {
		return nil, err
	}
	b.Seed = int64(seed)
	return b, nil
}

type node struct {
	// Internal node: normal·x ≤ offset goes left.
	normal      []float32
	offset      float32
	left, right int32
	// Leaf: items lists vector positions; normal == nil marks a leaf.
	items []int32
}

// Forest is a built ANNOY index.
type Forest struct {
	metric vec.Metric
	dim    int
	dist   vec.DistFunc
	data   []float32
	ids    []int64
	trees  []int32 // root node index per tree
	nodes  []node
}

// Build grows NTrees random-projection trees.
func (b *Builder) Build(data []float32, ids []int64) (index.Index, error) {
	n, err := index.ValidateBuildInput(data, ids, b.Dim)
	if err != nil {
		return nil, err
	}
	nt := b.NTrees
	if nt <= 0 {
		nt = 8
	}
	leaf := b.LeafSize
	if leaf <= 0 {
		leaf = 32
	}
	seed := b.Seed
	if seed == 0 {
		seed = 1
	}
	f := &Forest{
		metric: b.Metric,
		dim:    b.Dim,
		dist:   b.Metric.Dist(),
		data:   append([]float32(nil), data...),
		ids:    index.IDsOrDefault(ids, n),
	}
	r := rand.New(rand.NewSource(seed))
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	for t := 0; t < nt; t++ {
		items := append([]int32(nil), all...)
		root := f.grow(items, leaf, r, 0)
		f.trees = append(f.trees, root)
	}
	return f, nil
}

func (f *Forest) vecAt(i int32) []float32 { return f.data[int(i)*f.dim : (int(i)+1)*f.dim] }

const maxDepth = 48

func (f *Forest) grow(items []int32, leaf int, r *rand.Rand, depth int) int32 {
	if len(items) <= leaf || depth >= maxDepth {
		f.nodes = append(f.nodes, node{items: items})
		return int32(len(f.nodes) - 1)
	}
	normal, offset := f.split(items, r)
	var left, right []int32
	for _, it := range items {
		if side(f.vecAt(it), normal, offset) {
			left = append(left, it)
		} else {
			right = append(right, it)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// Degenerate hyperplane (duplicates): random balanced split.
		r.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
		mid := len(items) / 2
		left, right = items[:mid], items[mid:]
	}
	self := int32(len(f.nodes))
	f.nodes = append(f.nodes, node{normal: normal, offset: offset})
	l := f.grow(left, leaf, r, depth+1)
	rr := f.grow(right, leaf, r, depth+1)
	f.nodes[self].left = l
	f.nodes[self].right = rr
	return self
}

// split picks two random points and returns the perpendicular bisector.
func (f *Forest) split(items []int32, r *rand.Rand) ([]float32, float32) {
	a := f.vecAt(items[r.Intn(len(items))])
	b := f.vecAt(items[r.Intn(len(items))])
	normal := make([]float32, f.dim)
	var offset float32
	for j := 0; j < f.dim; j++ {
		normal[j] = a[j] - b[j]
		offset += normal[j] * (a[j] + b[j]) / 2
	}
	return normal, offset
}

func side(v, normal []float32, offset float32) bool {
	return vec.Dot(v, normal) <= offset
}

// margin is the signed distance proxy used to order tree descent.
func margin(v, normal []float32, offset float32) float32 {
	return vec.Dot(v, normal) - offset
}

// Name implements index.Index.
func (f *Forest) Name() string { return "ANNOY" }

// Metric implements index.Index.
func (f *Forest) Metric() vec.Metric { return f.metric }

// Dim implements index.Index.
func (f *Forest) Dim() int { return f.dim }

// Size implements index.Index.
func (f *Forest) Size() int { return len(f.ids) }

// MemoryBytes implements index.Index.
func (f *Forest) MemoryBytes() int64 {
	b := int64(len(f.data))*4 + int64(len(f.ids))*8
	for _, n := range f.nodes {
		b += int64(len(n.normal))*4 + int64(len(n.items))*4 + 12
	}
	return b
}

// Search implements index.Index. The candidate budget is p.Ef when set,
// otherwise ntrees·k·16; candidates from all trees are pooled and re-ranked
// exactly.
func (f *Forest) Search(query []float32, p index.SearchParams) []topk.Result {
	budget := p.Ef
	if budget <= 0 {
		budget = len(f.trees) * p.K * 16
	}
	// Best-first over (negated margin) across all trees.
	pq := &marginQueue{}
	for _, root := range f.trees {
		pq.push(qEntry{node: root, priority: 1e30})
	}
	seen := make(map[int32]struct{}, budget*2)
	var cands []int32
	for pq.len() > 0 && len(cands) < budget {
		e := pq.pop()
		nd := &f.nodes[e.node]
		if nd.normal == nil {
			for _, it := range nd.items {
				if _, dup := seen[it]; dup {
					continue
				}
				seen[it] = struct{}{}
				cands = append(cands, it)
			}
			continue
		}
		m := margin(query, nd.normal, nd.offset)
		// The matching side gets the parent's priority; the far side is
		// penalized by |margin| so close-to-plane splits are revisited first.
		am := m
		if am < 0 {
			am = -am
		}
		near, far := nd.left, nd.right
		if m > 0 {
			near, far = nd.right, nd.left
		}
		pq.push(qEntry{node: near, priority: e.priority})
		pq.push(qEntry{node: far, priority: minf(e.priority, -am)})
	}
	h := topk.New(p.K)
	for _, c := range cands {
		// Item positions are build order, so the pushed bitset gates a
		// candidate before its distance is computed.
		if p.Bits != nil && !p.Bits.Test(int(c)) {
			continue
		}
		id := f.ids[c]
		if p.Filter != nil && !p.Filter(id) {
			continue
		}
		h.Push(id, f.dist(query, f.vecAt(c)))
	}
	return h.Results()
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

type qEntry struct {
	node     int32
	priority float32 // larger = explore sooner
}

type marginQueue struct{ data []qEntry }

func (q *marginQueue) len() int { return len(q.data) }

func (q *marginQueue) push(e qEntry) {
	q.data = append(q.data, e)
	i := len(q.data) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.data[p].priority >= q.data[i].priority {
			break
		}
		q.data[p], q.data[i] = q.data[i], q.data[p]
		i = p
	}
}

func (q *marginQueue) pop() qEntry {
	top := q.data[0]
	last := len(q.data) - 1
	q.data[0] = q.data[last]
	q.data = q.data[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(q.data) && q.data[l].priority > q.data[big].priority {
			big = l
		}
		if r < len(q.data) && q.data[r].priority > q.data[big].priority {
			big = r
		}
		if big == i {
			break
		}
		q.data[i], q.data[big] = q.data[big], q.data[i]
		i = big
	}
	return top
}
