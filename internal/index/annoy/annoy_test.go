package annoy

import (
	"testing"

	"vectordb/internal/dataset"
	"vectordb/internal/index"
	"vectordb/internal/metric"
	"vectordb/internal/vec"
)

func buildForest(t *testing.T, d *dataset.Dataset, ntrees, leaf int) *Forest {
	t.Helper()
	b := &Builder{Metric: vec.L2, Dim: d.Dim, NTrees: ntrees, LeafSize: leaf}
	idx, err := b.Build(d.Data, nil)
	if err != nil {
		t.Fatal(err)
	}
	return idx.(*Forest)
}

func TestEveryTreeCoversAllItems(t *testing.T) {
	d := dataset.DeepLike(700, 1)
	f := buildForest(t, d, 4, 16)
	if len(f.trees) != 4 {
		t.Fatalf("%d trees", len(f.trees))
	}
	for ti, root := range f.trees {
		count := 0
		stack := []int32{root}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nd := &f.nodes[n]
			if nd.normal == nil {
				count += len(nd.items)
				continue
			}
			stack = append(stack, nd.left, nd.right)
		}
		if count != d.N {
			t.Fatalf("tree %d covers %d/%d items", ti, count, d.N)
		}
	}
}

func TestMoreTreesImproveRecall(t *testing.T) {
	d := dataset.DeepLike(2500, 2)
	qs := dataset.Queries(d, 12, 3)
	gt := dataset.GroundTruth(d, qs, 10, vec.L2)
	small := buildForest(t, d, 2, 32)
	big := buildForest(t, d, 16, 32)
	budget := 300
	rSmall := metric.MeanRecall(gt, index.SearchBatch(small, qs, index.SearchParams{K: 10, Ef: budget}))
	rBig := metric.MeanRecall(gt, index.SearchBatch(big, qs, index.SearchParams{K: 10, Ef: budget}))
	if rBig < rSmall-0.05 {
		t.Fatalf("16 trees (%f) worse than 2 trees (%f) at equal budget", rBig, rSmall)
	}
	if big.MemoryBytes() <= small.MemoryBytes() {
		t.Fatal("more trees did not cost more memory")
	}
}

func TestBudgetImprovesRecall(t *testing.T) {
	d := dataset.DeepLike(2000, 4)
	qs := dataset.Queries(d, 10, 5)
	gt := dataset.GroundTruth(d, qs, 10, vec.L2)
	f := buildForest(t, d, 8, 32)
	var last float64 = -1
	for _, budget := range []int{50, 400, 2000} {
		r := metric.MeanRecall(gt, index.SearchBatch(f, qs, index.SearchParams{K: 10, Ef: budget}))
		if r < last-0.05 {
			t.Fatalf("recall decreased with budget: %f -> %f", last, r)
		}
		last = r
	}
	if last < 0.9 {
		t.Fatalf("recall at budget 2000 only %.3f", last)
	}
}

func TestDuplicateDataDoesNotRecurseForever(t *testing.T) {
	// All-identical vectors force the degenerate random split path and the
	// depth cap.
	data := make([]float32, 200*4)
	for i := range data {
		data[i] = 1
	}
	b := &Builder{Metric: vec.L2, Dim: 4, NTrees: 2, LeafSize: 4}
	idx, err := b.Build(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := idx.Search([]float32{1, 1, 1, 1}, index.SearchParams{K: 5})
	if len(res) != 5 {
		t.Fatalf("%d results on duplicate data", len(res))
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilderFromParams(vec.Tanimoto, 8, nil); err == nil {
		t.Error("binary metric accepted")
	}
	b, err := NewBuilderFromParams(vec.L2, 8, map[string]string{"ntrees": "3", "leaf": "9"})
	if err != nil || b.NTrees != 3 || b.LeafSize != 9 {
		t.Errorf("params: %+v, %v", b, err)
	}
}
