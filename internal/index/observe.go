package index

import (
	"time"

	"vectordb/internal/obs"
	"vectordb/internal/topk"
)

// Metrics aggregates per-index-type build/search telemetry into a
// registry. A nil *Metrics (or one over a nil registry) stays fully
// functional and records nowhere, so callers wire it unconditionally.
type Metrics struct{ reg *obs.Registry }

// NewMetrics returns a Metrics recording into reg.
func NewMetrics(reg *obs.Registry) *Metrics { return &Metrics{reg: reg} }

// ObserveBuild records one index build attempt for the named type.
func (m *Metrics) ObserveBuild(indexType string, d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.reg.Counter("vectordb_index_build_errors_total", "index", indexType).Inc()
		return
	}
	m.reg.Counter("vectordb_index_builds_total", "index", indexType).Inc()
	m.reg.Histogram("vectordb_index_build_seconds", nil, "index", indexType).Observe(d)
}

// Instrument wraps idx so every Search increments the per-type search
// counter and records a latency histogram sample. The wrapper preserves
// the Marshaler capability of the underlying index (segment persistence
// type-asserts it), and re-instrumenting an already-wrapped index is a
// no-op.
func (m *Metrics) Instrument(idx Index) Index {
	if m == nil || idx == nil {
		return idx
	}
	switch idx.(type) {
	case *instrumentedIndex, *instrumentedMarshaler:
		return idx
	}
	w := instrumentedIndex{
		Index:    idx,
		searches: m.reg.Counter("vectordb_index_searches_total", "index", idx.Name()),
		latency:  m.reg.Histogram("vectordb_index_search_seconds", nil, "index", idx.Name()),
	}
	if _, ok := idx.(Marshaler); ok {
		return &instrumentedMarshaler{w}
	}
	return &w
}

type instrumentedIndex struct {
	Index
	searches *obs.Counter
	latency  *obs.Histogram
}

func (w *instrumentedIndex) Search(query []float32, p SearchParams) []topk.Result {
	start := time.Now()
	res := w.Index.Search(query, p)
	w.searches.Inc()
	w.latency.Observe(time.Since(start))
	return res
}

// Unwrap exposes the underlying index, e.g. for capability probes.
func (w *instrumentedIndex) Unwrap() Index { return w.Index }

type instrumentedMarshaler struct{ instrumentedIndex }

func (w *instrumentedMarshaler) MarshalIndex() ([]byte, error) {
	return w.Index.(Marshaler).MarshalIndex()
}
