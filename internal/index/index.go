// Package index defines vectordb's extensible vector-index framework
// (Sec. 2.2): a small Index/Builder interface pair plus a registry, so that
// "developers only need to implement a few pre-defined interfaces for adding
// a new index". Concrete indexes live in subpackages (flat, ivf, hnsw, nsg,
// annoy, sq8h) and register themselves at init time; importing
// vectordb/internal/index/all pulls in the complete set.
package index

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"vectordb/internal/bitset"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// SearchParams carries per-query knobs. Zero values mean "index default".
type SearchParams struct {
	K       int // number of results; required
	Nprobe  int // IVF family: buckets to probe (accuracy/perf trade-off, Sec. 3.1)
	Ef      int // HNSW: candidate list size
	SearchL int // NSG: search pool size
	// Bits, when non-nil, is a pushed-down attribute filter: a dense bitset
	// over the index's build-order row positions (bit i = i'th vector handed
	// to Build). Scan-based indexes push it beneath the batch kernels so
	// excluded rows never reach a distance computation; graph indexes
	// (HNSW, NSG) switch to filtered traversal — skip-but-expand — so
	// connectivity survives low selectivity. This is the bitset form of
	// attribute-filtering strategy B (Sec. 4.1).
	Bits *bitset.Bitset
	// Filter, when non-nil, restricts results to IDs it accepts — the legacy
	// per-row callback form of strategy B, still used for residual filters
	// (e.g. MVCC tombstones) on top of Bits. When both are set a result must
	// satisfy both.
	Filter func(id int64) bool
}

// Index is a built, immutable vector index over one segment's vectors.
type Index interface {
	// Name is the registry name, e.g. "IVF_FLAT".
	Name() string
	// Metric is the similarity function the index was built for.
	Metric() vec.Metric
	// Dim is the vector dimensionality.
	Dim() int
	// Size is the number of indexed vectors.
	Size() int
	// MemoryBytes approximates the index's resident size, used by the
	// bufferpool and by the SPTAG-memory comparison in Sec. 7.2.
	MemoryBytes() int64
	// Search returns the top-k most similar vectors to query, smaller
	// distance first.
	Search(query []float32, p SearchParams) []topk.Result
}

// Builder constructs an Index from a segment's vectors. ids[i] is the
// external row ID of data row i; if ids is nil, row positions are used.
type Builder interface {
	Build(data []float32, ids []int64) (Index, error)
}

// Factory creates a Builder for a metric/dim pair with string parameters
// (index-specific, e.g. "nlist" for IVF, "m" for HNSW).
type Factory func(metric vec.Metric, dim int, params map[string]string) (Builder, error)

// Marshaler is implemented by indexes that can be persisted alongside their
// segment ("both index and data are stored in the same segment", Sec. 2.3),
// so readers load prebuilt indexes from shared storage instead of
// rebuilding.
type Marshaler interface {
	MarshalIndex() ([]byte, error)
}

// Unmarshaler reconstructs a persisted index of one registered type.
type Unmarshaler func(metric vec.Metric, dim int, data []byte) (Index, error)

var (
	regMu        sync.RWMutex
	registry     = map[string]Factory{}
	unmarshalers = map[string]Unmarshaler{}
)

// Register makes an index type available under name. It panics on duplicate
// registration, following database/sql convention.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("index: duplicate registration of " + name)
	}
	registry[name] = f
}

// RegisterUnmarshaler makes a persisted index type loadable under name.
func RegisterUnmarshaler(name string, u Unmarshaler) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := unmarshalers[name]; dup {
		panic("index: duplicate unmarshaler registration of " + name)
	}
	unmarshalers[name] = u
}

// Unmarshal reconstructs a persisted index. name must match the type that
// produced the blob via MarshalIndex.
func Unmarshal(name string, metric vec.Metric, dim int, data []byte) (Index, error) {
	regMu.RLock()
	u, ok := unmarshalers[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("index: type %q does not support persistence", name)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("index: dim must be positive, got %d", dim)
	}
	return u(metric, dim, data)
}

// NewBuilder instantiates a Builder for the named index type.
func NewBuilder(name string, metric vec.Metric, dim int, params map[string]string) (Builder, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("index: unknown index type %q (registered: %v)", name, Names())
	}
	if dim <= 0 {
		return nil, fmt.Errorf("index: dim must be positive, got %d", dim)
	}
	return f(metric, dim, params)
}

// Names lists registered index types, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParamInt parses an integer parameter with a default.
func ParamInt(params map[string]string, key string, def int) (int, error) {
	s, ok := params[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("index: parameter %q: %w", key, err)
	}
	return v, nil
}

// ValidateBuildInput performs the shared sanity checks every Builder needs.
func ValidateBuildInput(data []float32, ids []int64, dim int) (n int, err error) {
	if dim <= 0 {
		return 0, fmt.Errorf("index: dim must be positive, got %d", dim)
	}
	if len(data)%dim != 0 {
		return 0, fmt.Errorf("index: data length %d not a multiple of dim %d", len(data), dim)
	}
	n = len(data) / dim
	if n == 0 {
		return 0, fmt.Errorf("index: no vectors to index")
	}
	if ids != nil && len(ids) != n {
		return 0, fmt.Errorf("index: got %d ids for %d vectors", len(ids), n)
	}
	return n, nil
}

// IDsOrDefault returns ids, or the identity mapping when nil.
func IDsOrDefault(ids []int64, n int) []int64 {
	if ids != nil {
		return ids
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// SearchBatch runs Search for each of the nq queries packed in queries.
// Indexes with a native batch path may shadow this helper.
func SearchBatch(idx Index, queries []float32, p SearchParams) [][]topk.Result {
	dim := idx.Dim()
	nq := len(queries) / dim
	out := make([][]topk.Result, nq)
	for i := 0; i < nq; i++ {
		out[i] = idx.Search(queries[i*dim:(i+1)*dim], p)
	}
	return out
}
