package index

import (
	"math/rand"
	"sort"
	"testing"

	"vectordb/internal/bitset"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// bitsetFor builds a bitset over n positions from a predicate on the
// position (identity Pos) or on pos[i] when a mapping is used.
func bitsetFor(n int, keep func(int) bool) *bitset.Bitset {
	b := bitset.New(n)
	for i := 0; i < n; i++ {
		if keep(i) {
			b.Set(i)
		}
	}
	return b
}

func sameResults(t *testing.T, tag string, got, want []topk.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID && !closeEnough(got[i].Distance, want[i].Distance) {
			t.Fatalf("%s rank %d: %v, want %v", tag, i, got[i], want[i])
		}
	}
}

// TestScanBlockedBitsetMatchesCallback: the pushed-bitset path — in every
// mode — returns exactly what the legacy callback path returns, for
// clustered and scattered bits, both metrics, with and without a position
// mapping, across selectivities from sub-1% to ~100%.
func TestScanBlockedBitsetMatchesCallback(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	const dim, n, k = 24, 1000, 17
	data := randBlock(r, n*dim)
	q := randBlock(r, dim)
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)*3 + 1
	}
	shapes := map[string]func(int) bool{
		"scatter_50":  func(i int) bool { return i%2 == 0 },
		"scatter_10":  func(i int) bool { return i%10 == 3 },
		"scatter_0.5": func(i int) bool { return i%200 == 7 },
		"cluster":     func(i int) bool { return (i >= 100 && i < 400) || (i >= 700 && i < 703) },
		"all":         func(int) bool { return true },
		"none":        func(int) bool { return false },
		"word_edges":  func(i int) bool { return i%64 == 0 || i%64 == 63 },
	}
	for _, metric := range []vec.Metric{vec.L2, vec.IP} {
		for name, keep := range shapes {
			bits := bitsetFor(n, keep)
			want := refHeap(metric, q, data, dim, k, ids, func(id int64) bool { return keep(int((id - 1) / 3)) })
			for _, mode := range []FilterMode{FilterAuto, FilterDense, FilterSparse} {
				h := topk.New(k)
				ScanBlocked(h, metric, q, data, dim, ids, Selection{Bits: bits, Force: mode})
				sameResults(t, name, h.Results(), want)
			}
		}
	}
}

// TestScanBlockedBitsetWithPos: IVF-style scans test bits through a
// position mapping; results must match filtering by the mapped position.
func TestScanBlockedBitsetWithPos(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	const dim, n, k = 16, 500, 10
	data := randBlock(r, n*dim)
	q := randBlock(r, dim)
	// Simulate a bucket holding a shuffled subset of a 2000-row build.
	pos := make([]int32, n)
	perm := r.Perm(2000)
	for i := range pos {
		pos[i] = int32(perm[i])
	}
	bits := bitsetFor(2000, func(p int) bool { return p%3 == 0 })
	want := refHeap(vec.L2, q, data, dim, k, nil, func(id int64) bool { return int(pos[id])%3 == 0 })
	for _, mode := range []FilterMode{FilterAuto, FilterDense, FilterSparse} {
		h := topk.New(k)
		ScanBlocked(h, vec.L2, q, data, dim, nil, Selection{Bits: bits, Pos: pos, Force: mode})
		sameResults(t, "pos", h.Results(), want)
	}
}

// TestScanBlockedBitsetPosSorted: with build-order (sorted) positions the
// dense scan may skip whole blocks whose position span holds no set bit —
// results must still match the per-position reference exactly, including
// when the filter is correlated with position (the case the skip targets).
func TestScanBlockedBitsetPosSorted(t *testing.T) {
	r := rand.New(rand.NewSource(58))
	const dim, n, k, build = 16, 500, 10, 2000
	data := randBlock(r, n*dim)
	q := randBlock(r, dim)
	// A sorted subset of the build, as IVF buckets carry.
	perm := r.Perm(build)[:n]
	sort.Ints(perm)
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = int32(perm[i])
	}
	for name, keep := range map[string]func(int) bool{
		"correlated":   func(p int) bool { return p < build/2 }, // front half: back blocks all-excluded
		"scattered":    func(p int) bool { return p%3 == 0 },
		"empty":        func(p int) bool { return false },
		"tail-cluster": func(p int) bool { return p >= build-100 },
	} {
		bits := bitsetFor(build, keep)
		want := refHeap(vec.L2, q, data, dim, k, nil, func(id int64) bool { return keep(int(pos[id])) })
		for _, mode := range []FilterMode{FilterAuto, FilterDense, FilterSparse} {
			h := topk.New(k)
			ScanBlocked(h, vec.L2, q, data, dim, nil, Selection{Bits: bits, Pos: pos, PosSorted: true, Force: mode})
			sameResults(t, "sorted-pos/"+name, h.Results(), want)
		}
	}
}

// TestScanBlockedBitsetComposesCallback: Bits and Filter together must both
// constrain results (the residual-tombstone composition).
func TestScanBlockedBitsetComposesCallback(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	const dim, n, k = 8, 400, 20
	data := randBlock(r, n*dim)
	q := randBlock(r, dim)
	bits := bitsetFor(n, func(i int) bool { return i%2 == 0 })
	filter := func(id int64) bool { return id%3 != 0 }
	want := refHeap(vec.L2, q, data, dim, k, nil, func(id int64) bool { return id%2 == 0 && id%3 != 0 })
	for _, mode := range []FilterMode{FilterDense, FilterSparse} {
		h := topk.New(k)
		ScanBlocked(h, vec.L2, q, data, dim, nil, Selection{Bits: bits, Filter: filter, Force: mode})
		sameResults(t, "compose", h.Results(), want)
	}
}

// TestScanBlockedBitsetUsesBatchKernels: the whole point of pushdown — a
// bitset-filtered scan must still dispatch through the hooked batch
// kernels, in dense and in sparse mode, for both batchable metrics.
func TestScanBlockedBitsetUsesBatchKernels(t *testing.T) {
	r := rand.New(rand.NewSource(58))
	const dim, n = 32, 600
	data := randBlock(r, n*dim)
	q := randBlock(r, dim)
	prev := vec.DispatchCounting()
	vec.SetDispatchCounting(true)
	defer vec.SetDispatchCounting(prev)
	cases := []struct {
		name string
		keep func(int) bool
		mode FilterMode
	}{
		{"dense_runs", func(i int) bool { return i < 300 }, FilterDense},
		{"dense_frag", func(i int) bool { return i%2 == 0 }, FilterDense},
		{"sparse", func(i int) bool { return i%100 == 0 }, FilterSparse},
	}
	for _, metric := range []vec.Metric{vec.L2, vec.IP} {
		for _, c := range cases {
			vec.ResetDispatchCounts()
			h := topk.New(5)
			ScanBlocked(h, metric, q, data, dim, nil, Selection{Bits: bitsetFor(n, c.keep), Force: c.mode})
			if got := vec.BatchDispatchTotal(); got == 0 {
				t.Fatalf("%v/%s: bitset scan made no batch-kernel dispatches", metric, c.name)
			}
		}
	}
}

// TestScanBlockedBitsetAllocs: steady-state bitset scans must stay on
// pooled scratch in both modes.
func TestScanBlockedBitsetAllocs(t *testing.T) {
	if raceEnabled {
		// sync.Pool drops 25% of Puts on the floor under the race
		// detector (sync/pool.go), and the sparse path cycles ~4 pooled
		// buffers per scan — the refills read as ~2 allocs/op with the
		// pooling working exactly as designed.
		t.Skip("pool Puts are randomly dropped under -race; alloc pin is meaningless")
	}
	r := rand.New(rand.NewSource(59))
	const dim, n = 24, 500
	data := randBlock(r, n*dim)
	q := randBlock(r, dim)
	bits := bitsetFor(n, func(i int) bool { return i%7 != 0 })
	h := topk.New(10)
	for _, mode := range []FilterMode{FilterDense, FilterSparse} {
		// Warm the pools.
		h.Reset()
		ScanBlocked(h, vec.L2, q, data, dim, nil, Selection{Bits: bits, Force: mode})
		avg := testing.AllocsPerRun(100, func() {
			h.Reset()
			ScanBlocked(h, vec.L2, q, data, dim, nil, Selection{Bits: bits, Force: mode})
		})
		if avg > 0.5 {
			t.Fatalf("mode %d: %v allocs/op, want 0", mode, avg)
		}
	}
}

func TestChooseFilterMode(t *testing.T) {
	if ChooseFilterMode(500, 1000) != FilterDense {
		t.Fatal("50% selectivity must choose dense")
	}
	if ChooseFilterMode(1, 1000) != FilterSparse {
		t.Fatal("0.1% selectivity must choose sparse")
	}
	// The boundary follows DenseSelectivity exactly.
	at := int(DenseSelectivity * 1000)
	if ChooseFilterMode(at, 1000) != FilterDense {
		t.Fatal("selectivity == threshold must choose dense")
	}
	if ChooseFilterMode(at-1, 1000) != FilterSparse {
		t.Fatal("selectivity just under threshold must choose sparse")
	}
	if FilterModeName(0.5) != "dense" || FilterModeName(0.001) != "sparse" {
		t.Fatal("FilterModeName inconsistent with threshold")
	}
}
