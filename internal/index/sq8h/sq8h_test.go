package sq8h

import (
	"fmt"
	"testing"
	"time"

	"vectordb/internal/dataset"
	"vectordb/internal/gpu"
	"vectordb/internal/index"
	"vectordb/internal/index/ivf"
	"vectordb/internal/metric"
	"vectordb/internal/vec"
)

func build(t testing.TB, d *dataset.Dataset, devCfg gpu.Config, threshold int) *SQ8H {
	t.Helper()
	return buildNlist(t, d, devCfg, threshold, 64)
}

func buildNlist(t testing.TB, d *dataset.Dataset, devCfg gpu.Config, threshold, nlist int) *SQ8H {
	t.Helper()
	dev := gpu.NewDevice(0, devCfg)
	b, err := NewBuilder(vec.L2, d.Dim, ivf.Builder{Nlist: nlist, MaxIter: 4}, Config{Device: dev, Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := b.Build(d.Data, nil)
	if err != nil {
		t.Fatal(err)
	}
	return idx.(*SQ8H)
}

func TestBuilderRequiresDevice(t *testing.T) {
	if _, err := NewBuilder(vec.L2, 8, ivf.Builder{}, Config{}); err == nil {
		t.Fatal("builder accepted nil device")
	}
}

func TestResultsMatchIVFSQ8(t *testing.T) {
	d := dataset.DeepLike(2000, 1)
	x := build(t, d, gpu.Config{}, 256)
	qs := dataset.Queries(d, 10, 2)
	p := index.SearchParams{K: 10, Nprobe: 8}
	hybrid, st := x.SearchBatch(qs, p)
	if st.Plan != "hybrid" {
		t.Fatalf("plan = %q, want hybrid for small batch", st.Plan)
	}
	// The hybrid plan must return exactly what the wrapped IVF_SQ8 returns.
	for qi := 0; qi < 10; qi++ {
		want := x.IVF().Search(qs[qi*d.Dim:(qi+1)*d.Dim], p)
		got := hybrid[qi]
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: %v != %v", qi, i, got[i], want[i])
			}
		}
	}
}

func TestAlgorithm1Routing(t *testing.T) {
	d := dataset.DeepLike(1000, 3)
	x := build(t, d, gpu.Config{}, 4)
	p := index.SearchParams{K: 5, Nprobe: 4}
	small := dataset.Queries(d, 3, 4)
	_, st := x.SearchBatch(small, p)
	if st.Plan != "hybrid" {
		t.Fatalf("batch 3 < threshold 4: plan %q", st.Plan)
	}
	big := dataset.Queries(d, 4, 5)
	_, st = x.SearchBatch(big, p)
	if st.Plan != "pure-gpu" {
		t.Fatalf("batch 4 ≥ threshold 4: plan %q", st.Plan)
	}
}

func TestHybridAvoidsBucketTransfers(t *testing.T) {
	d := dataset.DeepLike(2000, 6)
	x := build(t, d, gpu.Config{}, 1000)
	qs := dataset.Queries(d, 20, 7)
	p := index.SearchParams{K: 10, Nprobe: 8}
	_, st := x.PlanHybrid(qs, p)
	// Hybrid transfers only centroids (once).
	centroids := int64(x.IVF().Nlist()) * int64(d.Dim) * 4
	if st.TransferBytes != centroids {
		t.Fatalf("hybrid transferred %d bytes, want centroids only (%d)", st.TransferBytes, centroids)
	}
	_, st2 := x.PlanHybrid(qs, p)
	if st2.TransferBytes != 0 {
		t.Fatalf("second hybrid run re-transferred centroids: %d", st2.TransferBytes)
	}
	_, stGPU := x.PlanPureGPU(qs, p)
	if stGPU.TransferBytes == 0 {
		t.Fatal("pure GPU plan transferred nothing despite cold buckets")
	}
}

func TestFig13Shape(t *testing.T) {
	// The paper's Fig. 13: pure GPU slower than pure CPU (transfer bound),
	// the gap narrowing with batch size; SQ8H (hybrid under threshold)
	// faster than both. Centroids are resident setup state in SQ8H ("only
	// stores the centroids in GPU memory"), so they are warmed once up
	// front; buckets are evicted between batch sizes so pure GPU always
	// pays the stream.
	d := dataset.SIFTLike(5000, 8)
	devCfg := gpu.Config{MemBytes: 8 << 20, PCIeBandwidth: 1e8, KernelThroughput: 3.2e11}
	x := buildNlist(t, d, devCfg, 1<<30, 512) // never auto-route to pure GPU
	p := index.SearchParams{K: 50, Nprobe: 16}

	// Warm the centroids (one-time index load).
	x.PlanHybrid(dataset.Queries(d, 1, 99), p)

	gap := map[int]float64{}
	for _, nq := range []int{8, 64} {
		for b := 0; b < x.IVF().Nlist(); b++ {
			x.cfg.Device.Evict(bucketKey(b))
		}
		qs := dataset.Queries(d, nq, int64(100+nq))
		_, cpu := x.PlanPureCPU(qs, p)
		_, hyb := x.PlanHybrid(qs, p)
		_, gpuSt := x.PlanPureGPU(qs, p)
		if gpuSt.Total() <= cpu.Total() {
			t.Errorf("nq=%d: pure GPU (%v) not slower than pure CPU (%v)", nq, gpuSt.Total(), cpu.Total())
		}
		if hyb.Total() >= cpu.Total() {
			t.Errorf("nq=%d: hybrid (%v) not faster than pure CPU (%v)", nq, hyb.Total(), cpu.Total())
		}
		gap[nq] = float64(gpuSt.Total()-cpu.Total()) / float64(cpu.Total())
	}
	if gap[64] >= gap[8] {
		t.Errorf("relative CPU/GPU gap did not narrow with batch size: %v", gap)
	}
}

func bucketKey(b int) string { return fmt.Sprintf("sq8h/bucket/%d", b) }

func TestSearchSingleQuery(t *testing.T) {
	d := dataset.DeepLike(1500, 9)
	x := build(t, d, gpu.Config{}, 256)
	qs := dataset.Queries(d, 5, 10)
	gt := dataset.GroundTruth(d, qs, 10, vec.L2)
	got := index.SearchBatch(x, qs, index.SearchParams{K: 10, Nprobe: 16})
	if r := metric.MeanRecall(gt, got); r < 0.7 {
		t.Fatalf("recall %.3f too low", r)
	}
	if x.Name() != "SQ8H" || x.Dim() != d.Dim || x.Size() != d.N {
		t.Fatal("metadata wrong")
	}
	if x.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{GPUTime: time.Second, CPUTime: 2 * time.Second}
	if s.Total() != 3*time.Second {
		t.Fatalf("Total = %v", s.Total())
	}
}
