// Package sq8h implements SQ8H ('H' for hybrid), the GPU/CPU co-designed
// index of Sec. 3.4 (Algorithm 1). It wraps an IVF_SQ8 index and a simulated
// GPU device:
//
//   - batches of at least Threshold queries run entirely on the GPU, with
//     probed buckets streamed into device memory in grouped multi-bucket
//     copies (the paper's fix for Faiss's bucket-at-a-time PCIe
//     under-utilization);
//
//   - smaller batches run hybrid: step 1 (ranking the nlist centroids, high
//     compute-to-I/O ratio, centroids resident in GPU memory) on the GPU and
//     step 2 (scattered bucket scans) on the CPU, so no bucket data ever
//     crosses PCIe.
//
// Results are always computed exactly on the host; the device and CPU models
// price the plan on a virtual clock (see internal/gpu).
package sq8h

import (
	"fmt"
	"time"

	"vectordb/internal/gpu"
	"vectordb/internal/index"
	"vectordb/internal/index/ivf"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// Config assembles an SQ8H index.
type Config struct {
	Device    *gpu.Device  // required
	CPU       gpu.CPUModel // zero value = gpu.DefaultCPUModel()
	Threshold int          // batch size at which pure-GPU wins; default 256
}

// Builder builds SQ8H indexes: an IVF_SQ8 build plus device wiring.
type Builder struct {
	IVF *ivf.Builder
	Cfg Config
}

// NewBuilder creates an SQ8H builder over the given IVF_SQ8 configuration.
func NewBuilder(metric vec.Metric, dim int, ivfCfg ivf.Builder, cfg Config) (*Builder, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("sq8h: a GPU device is required")
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 256
	}
	if cfg.CPU.DistThroughput <= 0 {
		cfg.CPU = gpu.DefaultCPUModel()
	}
	ivfCfg.Fine = ivf.FineSQ8
	ivfCfg.Metric = metric
	ivfCfg.Dim = dim
	return &Builder{IVF: &ivfCfg, Cfg: cfg}, nil
}

// Build implements index.Builder.
func (b *Builder) Build(data []float32, ids []int64) (index.Index, error) {
	base, err := b.IVF.Build(data, ids)
	if err != nil {
		return nil, err
	}
	return &SQ8H{ivf: base.(*ivf.IVF), cfg: b.Cfg}, nil
}

// SQ8H is the built hybrid index.
type SQ8H struct {
	ivf *ivf.IVF
	cfg Config
}

// Stats reports the modeled cost of one plan execution.
type Stats struct {
	Plan          string        // "pure-cpu", "pure-gpu" or "hybrid"
	GPUTime       time.Duration // device busy time
	CPUTime       time.Duration // host busy time
	TransferBytes int64         // bytes moved over PCIe
}

// Total is the modeled end-to-end time (device and host run sequentially).
func (s Stats) Total() time.Duration { return s.GPUTime + s.CPUTime }

// Name implements index.Index.
func (x *SQ8H) Name() string { return "SQ8H" }

// Metric implements index.Index.
func (x *SQ8H) Metric() vec.Metric { return x.ivf.Metric() }

// Dim implements index.Index.
func (x *SQ8H) Dim() int { return x.ivf.Dim() }

// Size implements index.Index.
func (x *SQ8H) Size() int { return x.ivf.Size() }

// MemoryBytes implements index.Index (host-side footprint).
func (x *SQ8H) MemoryBytes() int64 { return x.ivf.MemoryBytes() }

// IVF exposes the wrapped IVF_SQ8 index.
func (x *SQ8H) IVF() *ivf.IVF { return x.ivf }

// Search implements index.Index (a batch of one, which Algorithm 1 routes
// to the hybrid plan).
func (x *SQ8H) Search(query []float32, p index.SearchParams) []topk.Result {
	res, _ := x.SearchBatch(query, p)
	return res[0]
}

// SearchBatch implements Algorithm 1: route by batch size, and price the
// chosen plan.
func (x *SQ8H) SearchBatch(queries []float32, p index.SearchParams) ([][]topk.Result, Stats) {
	nq := len(queries) / x.ivf.Dim()
	if nq >= x.cfg.Threshold {
		return x.PlanPureGPU(queries, p)
	}
	return x.PlanHybrid(queries, p)
}

// step1Work is the centroid-ranking work in distance-dimension units.
func (x *SQ8H) step1Work(nq int) int64 {
	return int64(nq) * int64(x.ivf.Nlist()) * int64(x.ivf.Dim())
}

// probeAll runs step 1 on the host for exact results and returns the probed
// bucket lists plus the total step-2 scan work.
func (x *SQ8H) probeAll(queries []float32, p index.SearchParams) (probes [][]int, scanWork int64) {
	dim := x.ivf.Dim()
	nq := len(queries) / dim
	probes = make([][]int, nq)
	for qi := 0; qi < nq; qi++ {
		probes[qi] = x.ivf.ProbeOrder(queries[qi*dim:(qi+1)*dim], p.Nprobe)
		for _, b := range probes[qi] {
			scanWork += int64(x.ivf.BucketLen(b)) * int64(dim)
		}
	}
	return probes, scanWork
}

// scan is the host (CPU) leg of step 2: each query builds its fused SQ8
// ADC table once and streams every probed bucket's codes through it via the
// batched bucket scan, accumulating into a pooled heap.
func (x *SQ8H) scan(queries []float32, probes [][]int, p index.SearchParams) [][]topk.Result {
	dim := x.ivf.Dim()
	out := make([][]topk.Result, len(probes))
	sel := index.Selection{Bits: p.Bits, Filter: p.Filter}
	for qi := range probes {
		h := topk.GetHeap(p.K)
		sq := x.ivf.SQ8ScanQuery(queries[qi*dim : (qi+1)*dim])
		for _, b := range probes[qi] {
			x.ivf.ScanBucketSQ8(sq, b, sel, h)
		}
		out[qi] = h.Results()
		topk.PutHeap(h)
	}
	return out
}

const centroidsKey = "sq8h/centroids"

func (x *SQ8H) centroidsBytes() int64 {
	return int64(x.ivf.Nlist()) * int64(x.ivf.Dim()) * 4
}

// PlanPureCPU executes and prices both steps on the host (the "pure CPU"
// line of Fig. 13).
func (x *SQ8H) PlanPureCPU(queries []float32, p index.SearchParams) ([][]topk.Result, Stats) {
	probes, scanWork := x.probeAll(queries, p)
	res := x.scan(queries, probes, p)
	nq := len(queries) / x.ivf.Dim()
	return res, Stats{
		Plan:    "pure-cpu",
		CPUTime: x.cfg.CPU.Cost(x.step1Work(nq) + scanWork),
	}
}

// PlanPureGPU executes both steps on the device, streaming probed buckets
// into device memory with grouped multi-bucket copies (the "pure GPU" line
// of Fig. 13; with grouping disabled it reproduces Faiss's behaviour).
func (x *SQ8H) PlanPureGPU(queries []float32, p index.SearchParams) ([][]topk.Result, Stats) {
	dev := x.cfg.Device
	start := dev.Clock()
	var transferred int64
	// Centroids live in device memory for step 1.
	tb, err := dev.EnsureResident([]string{centroidsKey}, []int64{x.centroidsBytes()})
	if err == nil {
		transferred += tb
	}
	nq := len(queries) / x.ivf.Dim()
	dev.RunKernel(x.step1Work(nq))
	probes, scanWork := x.probeAll(queries, p)

	// Group the batch's distinct probed buckets into one multi-bucket copy.
	seen := map[int]struct{}{}
	var keys []string
	var sizes []int64
	per := int64(x.ivf.CodeBytesPerVector())
	for _, pr := range probes {
		for _, b := range pr {
			if _, dup := seen[b]; dup {
				continue
			}
			seen[b] = struct{}{}
			keys = append(keys, fmt.Sprintf("sq8h/bucket/%d", b))
			sizes = append(sizes, int64(x.ivf.BucketLen(b))*per)
		}
	}
	if tb, err := dev.EnsureResident(keys, sizes); err == nil {
		transferred += tb
	} else {
		// A bucket larger than device memory: fall back to charging the raw
		// stream cost without residency.
		var total int64
		for _, s := range sizes {
			total += s
		}
		dev.RunKernel(0)
		transferred += total
	}
	dev.RunKernel(scanWork)
	res := x.scan(queries, probes, p)
	return res, Stats{
		Plan:          "pure-gpu",
		GPUTime:       dev.Clock() - start,
		TransferBytes: transferred,
	}
}

// PlanHybrid executes step 1 on the device (centroids resident, no bucket
// transfer) and step 2 on the host — lines 5–6 of Algorithm 1.
func (x *SQ8H) PlanHybrid(queries []float32, p index.SearchParams) ([][]topk.Result, Stats) {
	dev := x.cfg.Device
	start := dev.Clock()
	var transferred int64
	if tb, err := dev.EnsureResident([]string{centroidsKey}, []int64{x.centroidsBytes()}); err == nil {
		transferred += tb
	}
	nq := len(queries) / x.ivf.Dim()
	dev.RunKernel(x.step1Work(nq))
	probes, scanWork := x.probeAll(queries, p)
	res := x.scan(queries, probes, p)
	return res, Stats{
		Plan:          "hybrid",
		GPUTime:       dev.Clock() - start,
		CPUTime:       x.cfg.CPU.Cost(scanWork),
		TransferBytes: transferred,
	}
}
