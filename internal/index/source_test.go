package index

import (
	"math/rand"
	"testing"

	"vectordb/internal/bitset"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// chunkSource serves data one aligned block-copy at a time with no
// Contiguous fast path — the test double for an out-of-core source. It
// also verifies the driver's access contract (aligned i0, block-bounded
// spans, no use after Release).
type chunkSource struct {
	t        *testing.T
	data     []float32
	dim      int
	buf      []float32
	released bool
	fetches  int
}

func (c *chunkSource) Rows() int { return len(c.data) / c.dim }
func (c *chunkSource) Dim() int  { return c.dim }

func (c *chunkSource) Block(i0, i1 int) []float32 {
	if c.released {
		c.t.Fatal("Block after Release")
	}
	if i0%ScanBlockRows != 0 || i1-i0 > ScanBlockRows || i1 <= i0 || i1 > c.Rows() {
		c.t.Fatalf("contract violation: Block(%d, %d) rows=%d", i0, i1, c.Rows())
	}
	c.fetches++
	if c.buf == nil {
		c.buf = make([]float32, ScanBlockRows*c.dim)
	}
	// Poison then fill: stale reads of a previous block's tail must fail.
	for i := range c.buf {
		c.buf[i] = float32(1e30)
	}
	n := copy(c.buf, c.data[i0*c.dim:i1*c.dim])
	return c.buf[:n]
}

func (c *chunkSource) Release() { c.released = true }

func randData(rng *rand.Rand, n, dim int) []float32 {
	d := make([]float32, n*dim)
	for i := range d {
		d[i] = rng.Float32()*2 - 1
	}
	return d
}

func drain(h *topk.Heap) []topk.Result { return h.Results() }

func exactResults(t *testing.T, want, got []topk.Result, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results vs %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Distance != got[i].Distance {
			t.Fatalf("%s: result %d differs: got (%d, %g) want (%d, %g)",
				label, i, got[i].ID, got[i].Distance, want[i].ID, want[i].Distance)
		}
	}
}

// TestScanBlockedSourceConformance: the out-of-core driver must return
// bit-identical results to ScanBlocked across metrics, selections and
// filter modes.
func TestScanBlockedSourceConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim = 24
	for _, n := range []int{1, 100, 256, 700, 2000} {
		data := randData(rng, n, dim)
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = int64(10_000 + i*3)
		}
		query := randData(rng, 1, dim)
		for _, metric := range []vec.Metric{vec.L2, vec.IP, vec.Cosine} {
			for _, selCase := range []string{"none", "dense", "sparse", "mid", "callback", "bits+callback", "pos", "possorted"} {
				sel := Selection{}
				switch selCase {
				case "none":
				case "dense", "sparse", "mid":
					frac := map[string]float64{"dense": 0.8, "sparse": 0.02, "mid": 0.15}[selCase]
					b := bitset.New(n)
					for i := 0; i < n; i++ {
						if rng.Float64() < frac {
							b.Set(i)
						}
					}
					sel.Bits = b
				case "callback":
					sel.Filter = func(id int64) bool { return id%5 != 0 }
				case "bits+callback":
					b := bitset.New(n)
					for i := 0; i < n; i++ {
						if rng.Float64() < 0.5 {
							b.Set(i)
						}
					}
					sel.Bits = b
					sel.Filter = func(id int64) bool { return id%7 != 0 }
				case "pos", "possorted":
					// A position mapping over a larger position space, as
					// IVF bucket scans pass; sorted variant sets PosSorted.
					pos := make([]int32, n)
					step := 3
					for i := range pos {
						pos[i] = int32(i * step)
					}
					if selCase == "pos" {
						rng.Shuffle(n, func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
					}
					b := bitset.New(n * step)
					for i := 0; i < n*step; i++ {
						if rng.Float64() < 0.3 {
							b.Set(i)
						}
					}
					sel.Bits = b
					sel.Pos = pos
					sel.PosSorted = selCase == "possorted"
				}
				for _, force := range []FilterMode{FilterAuto, FilterDense, FilterSparse} {
					if sel.Bits == nil && force != FilterAuto {
						continue
					}
					sel.Force = force
					k := 10
					hRAM := topk.New(k)
					ScanBlocked(hRAM, metric, query, data, dim, ids, sel)
					hSrc := topk.New(k)
					src := &chunkSource{t: t, data: data, dim: dim}
					ScanBlockedSource(hSrc, metric, query, src, ids, sel)
					src.Release()
					label := selCase + "/" + metric.String()
					exactResults(t, drain(hRAM), drain(hSrc), label)
				}
			}
		}
	}
}

// TestScanBlockedSourceSkipsExcludedBlocks: a selection with whole empty
// blocks must not fault those blocks in.
func TestScanBlockedSourceSkipsExcludedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const dim = 8
	n := 8 * ScanBlockRows
	data := randData(rng, n, dim)
	query := randData(rng, 1, dim)
	// Only block 2 has survivors.
	b := bitset.New(n)
	for i := 2 * ScanBlockRows; i < 3*ScanBlockRows; i += 2 {
		b.Set(i)
	}
	for _, force := range []FilterMode{FilterDense, FilterSparse} {
		src := &chunkSource{t: t, data: data, dim: dim}
		h := topk.New(5)
		ScanBlockedSource(h, vec.L2, query, src, nil, Selection{Bits: b, Force: force})
		src.Release()
		if src.fetches != 1 {
			t.Fatalf("force=%d: fetched %d blocks, want 1 (only the occupied block)", force, src.fetches)
		}
		if len(h.Results()) != 5 {
			t.Fatalf("force=%d: got %d results", force, len(h.Results()))
		}
	}
}

// TestScanBlockedSourceContiguousFastPath: a contiguous source must
// delegate to ScanBlocked (detected via block-fetch count staying zero).
func TestScanBlockedSourceContiguousFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const dim = 4
	data := randData(rng, 500, dim)
	query := randData(rng, 1, dim)
	h := topk.New(3)
	ScanBlockedSource(h, vec.L2, query, SliceSource{Data: data, D: dim}, nil, Selection{})
	h2 := topk.New(3)
	ScanBlocked(h2, vec.L2, query, data, dim, nil, Selection{})
	exactResults(t, drain(h2), drain(h), "contiguous")
}

// TestRangeSourceConformance: a ranged view over a shared source must
// behave exactly like a slice of the underlying rows, including ranges
// that straddle parent block boundaries.
func TestRangeSourceConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dim = 16
	parentRows := 2000
	data := randData(rng, parentRows, dim)
	query := randData(rng, 1, dim)
	for _, r := range []struct{ start, n int }{
		{0, 100}, {256, 256}, {100, 700}, {137, 519}, {1999, 1}, {300, 0},
	} {
		sub := data[r.start*dim : (r.start+r.n)*dim]
		hRAM := topk.New(7)
		ScanBlocked(hRAM, vec.L2, query, sub, dim, nil, Selection{})

		rs := &RangeSource{Src: &chunkSource{t: t, data: data, dim: dim}, Start: r.start, N: r.n}
		hSrc := topk.New(7)
		ScanBlockedSource(hSrc, vec.L2, query, rs, nil, Selection{})
		rs.Release()
		exactResults(t, drain(hRAM), drain(hSrc), "range")
	}
}

// TestByteRangeSource: the code-shaped range source serves exactly the
// underlying rows for aligned and straddling spans.
func TestByteRangeSource(t *testing.T) {
	const rb = 12
	parentRows := 1000
	data := make([]byte, parentRows*rb)
	for i := range data {
		data[i] = byte(i * 31)
	}
	parent := &byteChunkSource{data: data, rb: rb}
	rs := &ByteRangeSource{Src: parent, Start: 200, N: 600}
	defer rs.Release()
	for i0 := 0; i0 < 600; i0 += ScanBlockRows {
		i1 := i0 + ScanBlockRows
		if i1 > 600 {
			i1 = 600
		}
		got := rs.Block(i0, i1)
		want := data[(200+i0)*rb : (200+i1)*rb]
		if len(got) != len(want) {
			t.Fatalf("block [%d,%d): len %d want %d", i0, i1, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("block [%d,%d): byte %d differs", i0, i1, j)
			}
		}
	}
}

type byteChunkSource struct {
	data []byte
	rb   int
	buf  []byte
}

func (b *byteChunkSource) Rows() int     { return len(b.data) / b.rb }
func (b *byteChunkSource) RowBytes() int { return b.rb }
func (b *byteChunkSource) Block(i0, i1 int) []byte {
	if b.buf == nil {
		b.buf = make([]byte, ScanBlockRows*b.rb)
	}
	n := copy(b.buf, b.data[i0*b.rb:i1*b.rb])
	return b.buf[:n]
}
func (b *byteChunkSource) Release() {}
