package index

import (
	"math"

	"vectordb/internal/bufferpool"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// ScanBlockRows is the row-block size of the blocked scans: distances are
// computed one block at a time into a pooled buffer, then pushed through the
// heap. 256 rows keeps the buffer inside L1 while amortizing the kernel
// dispatch and the worst-bound refresh over a whole block.
const ScanBlockRows = 256

// ScanBlocked is the shared brute-force scan of every read path (flat
// indexes, unindexed segments, IVF_FLAT buckets): it streams the contiguous
// row-major block data (n rows of dim floats, ids aligned; ids == nil means
// row positions) into the caller-owned heap h.
//
// For L2 and IP it runs the register-blocked batch kernels one block at a
// time with a pooled distance buffer, feeding the heap's current worst
// distance into the L2 early-abandon kernel so top-k pruning reaches inside
// the block; rows that cannot enter the heap cost one comparison and, for
// L2, only a prefix of their dimensions. Filtered scans and metrics without
// a batch kernel (cosine, binary) fall back to the pairwise kernels with
// the same worst-distance gating.
//
// The heap may arrive non-empty: its retained worst carries pruning across
// segments exactly as Segment.SearchInto documents.
func ScanBlocked(h *topk.Heap, metric vec.Metric, query, data []float32, dim int, ids []int64, filter func(int64) bool) {
	n := len(data) / dim
	if ids != nil {
		n = len(ids)
	}
	if n == 0 {
		return
	}
	idOf := func(i int) int64 { return int64(i) }
	if ids != nil {
		idOf = func(i int) int64 { return ids[i] }
	}
	worst := float32(math.Inf(1))
	if w, ok := h.Worst(); ok && h.Full() {
		worst = w
	}
	if filter != nil || !metric.BatchEligible() {
		dist := metric.Dist()
		for i := 0; i < n; i++ {
			id := idOf(i)
			if filter != nil && !filter(id) {
				continue
			}
			d := dist(query, data[i*dim:(i+1)*dim])
			if d >= worst {
				continue
			}
			h.Push(id, d)
			if h.Full() {
				worst, _ = h.Worst()
			}
		}
		return
	}
	bp := bufferpool.GetFloats(ScanBlockRows)
	buf := *bp
	ip := metric == vec.IP
	for i0 := 0; i0 < n; i0 += ScanBlockRows {
		i1 := i0 + ScanBlockRows
		if i1 > n {
			i1 = n
		}
		rows := i1 - i0
		chunk := data[i0*dim : i1*dim]
		if ip {
			vec.NegDotBatch(query, chunk, dim, buf)
		} else {
			vec.L2SquaredBatchBound(query, chunk, dim, worst, buf)
		}
		for r := 0; r < rows; r++ {
			d := buf[r]
			if d >= worst {
				continue
			}
			h.Push(idOf(i0+r), d)
			if h.Full() {
				worst, _ = h.Worst()
			}
		}
	}
	bufferpool.PutFloats(bp)
}
