package index

import (
	"math"

	"vectordb/internal/bitset"
	"vectordb/internal/bufferpool"
	"vectordb/internal/topk"
	"vectordb/internal/vec"
)

// ScanBlockRows is the row-block size of the blocked scans: distances are
// computed one block at a time into a pooled buffer, then pushed through the
// heap. 256 rows keeps the buffer inside L1 while amortizing the kernel
// dispatch and the worst-bound refresh over a whole block.
const ScanBlockRows = 256

// FilterMode names how a blocked scan applies a pushed bitset.
type FilterMode uint8

const (
	// FilterAuto picks dense or sparse from the selection's selectivity.
	FilterAuto FilterMode = iota
	// FilterDense extracts maximal runs of surviving rows and feeds them to
	// the batch kernels in place; sub-threshold runs fall back to gathering.
	FilterDense
	// FilterSparse collects surviving rows into a compact list and routes
	// them through the gather kernels.
	FilterSparse
)

// DenseSelectivity is the dense/sparse crossover: scans whose fraction of
// surviving rows is at or above this run in dense (run-extraction) mode,
// below it in sparse (gather) mode. Calibrated with cmd/benchfilter (see
// BENCH_filter.json): above the threshold survivors cluster into runs long
// enough that in-place kernel calls beat copying, below it the word-skipping
// sparse iterator wins because whole empty words cost one load.
const DenseSelectivity = 0.10

// denseBlockDiv sets the block-occupancy crossover of the dense scan: a
// block whose survivor count m satisfies m*denseBlockDiv >= blockLen runs
// the batch kernel over the whole block in place, masking excluded rows at
// push time; emptier blocks gather their survivors. Computing a few extra
// distances beats copying 512 bytes per survivor once roughly a quarter of
// the block survives (calibrated with cmd/benchfilter; random 50% bits
// fragment into ~2-row runs, so run extraction alone degenerates to an
// all-gather scan).
const denseBlockDiv = 4

// ChooseFilterMode picks the scan mode for a selection that matched
// `matched` of `total` rows.
func ChooseFilterMode(matched, total int) FilterMode {
	if total <= 0 || float64(matched) >= DenseSelectivity*float64(total) {
		return FilterDense
	}
	return FilterSparse
}

// FilterModeName names the mode chosen for a given selectivity, for trace
// annotations (filter_mode=dense|sparse).
func FilterModeName(selectivity float64) string {
	if selectivity >= DenseSelectivity {
		return "dense"
	}
	return "sparse"
}

// Selection is the pushed-down filter of a blocked scan. The zero value
// selects every row. It is passed by value so unfiltered scans stay
// allocation-free.
//
// Bits is a dense bitset over *positions*; Pos maps scan row -> bit
// position (nil means row i is position i, the layout of flat scans and
// whole-segment scans; IVF bucket scans pass their per-bucket build-order
// positions). A row survives when its bit is set AND Filter (if any)
// accepts its ID. Filter alone — without Bits — reproduces the legacy
// per-row callback scan.
type Selection struct {
	Bits *bitset.Bitset
	Pos  []int32
	// PosSorted declares Pos non-decreasing (build-order bucket positions
	// are). It lets the dense scan skip a whole block when the bitset has
	// no set bit inside the block's position span — one ranged popcount
	// instead of a kernel dispatch, which halves the work when the filter
	// is correlated with insertion order. Never set it for unsorted Pos:
	// the span test would skip blocks that still hold survivors.
	PosSorted bool
	Filter    func(id int64) bool
	// Force pins the scan mode; FilterAuto (zero) decides by selectivity.
	// Benchmarks and conformance tests use it to compare both paths on
	// identical inputs.
	Force FilterMode
}

// Empty reports whether the selection selects every row.
func (s Selection) Empty() bool { return s.Bits == nil && s.Filter == nil }

// matched counts surviving rows among the first n scan rows (bit test only;
// Filter is evaluated during the scan, not here).
func (s Selection) matched(n int) int {
	if s.Bits == nil {
		return n
	}
	if s.Pos == nil {
		return s.Bits.CountRange(0, n)
	}
	c := 0
	for r := 0; r < n; r++ {
		if s.Bits.Test(int(s.Pos[r])) {
			c++
		}
	}
	return c
}

// ScanBlocked is the shared brute-force scan of every read path (flat
// indexes, unindexed segments, IVF_FLAT buckets): it streams the contiguous
// row-major block data (n rows of dim floats, ids aligned; ids == nil means
// row positions) into the caller-owned heap h, honoring the pushed-down
// selection.
//
// For L2 and IP it runs the register-blocked batch kernels one block at a
// time with a pooled distance buffer, feeding the heap's current worst
// distance into the L2 early-abandon kernel so top-k pruning reaches inside
// the block. A pushed bitset keeps the scan on the batch kernels: dense
// mode decides per block — full blocks run the kernels in place,
// mostly-full blocks run in place with excluded rows masked out at push
// time (a few wasted distances beat copying around them), emptier blocks
// divert survivors to the gather kernels — while sparse mode gathers
// survivors off the word-skipping bit iterator. An excluded row either
// never reaches a distance computation or has its distance discarded
// before the heap; it is never returned. Only
// the legacy callback filter and metrics without a batch kernel (cosine,
// binary) fall back to the pairwise kernels with the same worst-distance
// gating.
//
// The heap may arrive non-empty: its retained worst carries pruning across
// segments exactly as Segment.SearchInto documents.
func ScanBlocked(h *topk.Heap, metric vec.Metric, query, data []float32, dim int, ids []int64, sel Selection) {
	n := len(data) / dim
	if ids != nil {
		n = len(ids)
	}
	if n == 0 {
		return
	}
	idOf := func(i int) int64 { return int64(i) }
	if ids != nil {
		idOf = func(i int) int64 { return ids[i] }
	}
	worst := float32(math.Inf(1))
	if w, ok := h.Worst(); ok && h.Full() {
		worst = w
	}
	if sel.Bits == nil && (sel.Filter != nil || !metric.BatchEligible()) {
		scanPairwise(h, metric, query, data, dim, n, idOf, sel.Filter, worst)
		return
	}
	if sel.Bits != nil && !metric.BatchEligible() {
		// No batch kernel to push into: per-row with the bit test first,
		// which still skips the distance for excluded rows.
		dist := metric.Dist()
		pass := sel.passFunc()
		for i := 0; i < n; i++ {
			if !pass(i) {
				continue
			}
			id := idOf(i)
			if sel.Filter != nil && !sel.Filter(id) {
				continue
			}
			d := dist(query, data[i*dim:(i+1)*dim])
			if d >= worst {
				continue
			}
			h.Push(id, d)
			if h.Full() {
				worst, _ = h.Worst()
			}
		}
		return
	}

	bp := bufferpool.GetFloats(ScanBlockRows)
	buf := *bp
	ip := metric == vec.IP
	if sel.Bits == nil {
		// Unfiltered: straight blocked scan.
		for i0 := 0; i0 < n; i0 += ScanBlockRows {
			i1 := i0 + ScanBlockRows
			if i1 > n {
				i1 = n
			}
			chunk := data[i0*dim : i1*dim]
			if ip {
				vec.NegDotBatch(query, chunk, dim, buf)
			} else {
				vec.L2SquaredBatchBound(query, chunk, dim, worst, buf)
			}
			for r := 0; r < i1-i0; r++ {
				d := buf[r]
				if d >= worst {
					continue
				}
				h.Push(idOf(i0+r), d)
				if h.Full() {
					worst, _ = h.Worst()
				}
			}
		}
		bufferpool.PutFloats(bp)
		return
	}

	mode := sel.Force
	if mode == FilterAuto {
		mode = ChooseFilterMode(sel.matched(n), n)
	}

	// Pooled survivor list shared by both modes: sparse mode fills it from
	// the bit iterator, dense mode diverts sub-threshold runs into it so
	// fragmented regions still reach the kernels one gather dispatch per
	// block.
	gp := bufferpool.GetInt32s(ScanBlockRows)
	gather := (*gp)[:0]
	flush := func() {
		if len(gather) == 0 {
			return
		}
		if ip {
			vec.NegDotGather(query, data, dim, gather, buf)
		} else {
			vec.L2SquaredGatherBound(query, data, dim, gather, worst, buf)
		}
		for i, r := range gather {
			d := buf[i]
			if d >= worst {
				continue
			}
			h.Push(idOf(int(r)), d)
			if h.Full() {
				worst, _ = h.Worst()
			}
		}
		gather = gather[:0]
	}
	// emitRun feeds a contiguous surviving run [r0, r1) to the batch
	// kernels in place.
	emitRun := func(r0, r1 int) {
		for i0 := r0; i0 < r1; i0 += ScanBlockRows {
			i1 := i0 + ScanBlockRows
			if i1 > r1 {
				i1 = r1
			}
			chunk := data[i0*dim : i1*dim]
			if ip {
				vec.NegDotBatch(query, chunk, dim, buf)
			} else {
				vec.L2SquaredBatchBound(query, chunk, dim, worst, buf)
			}
			for r := 0; r < i1-i0; r++ {
				d := buf[r]
				if d >= worst {
					continue
				}
				id := idOf(i0 + r)
				if sel.Filter != nil && !sel.Filter(id) {
					continue
				}
				h.Push(id, d)
				if h.Full() {
					worst, _ = h.Worst()
				}
			}
		}
	}
	// emitMasked runs the batch kernel over the whole block [i0, i1) in
	// place and applies the bit test only to rows that beat the heap's
	// worst. On a memory-bound scan the kernel costs less than a
	// dependent-load bit test (plus a likely mispredict) per row, and
	// top-k pruning leaves few enough candidates that excluded rows are
	// almost always rejected by distance alone — so when most of a block
	// survives, a few wasted distances beat both per-row testing and
	// copying 512 bytes per survivor into the gather buffer (random
	// half-full bitsets fragment into ~2-row runs, so run extraction
	// alone cannot help).
	pass := sel.passFunc()
	emitMasked := func(i0, i1 int) {
		chunk := data[i0*dim : i1*dim]
		if ip {
			vec.NegDotBatch(query, chunk, dim, buf)
		} else {
			vec.L2SquaredBatchBound(query, chunk, dim, worst, buf)
		}
		for r := 0; r < i1-i0; r++ {
			d := buf[r]
			if d >= worst || !pass(i0+r) {
				continue
			}
			id := idOf(i0 + r)
			if sel.Filter != nil && !sel.Filter(id) {
				continue
			}
			h.Push(id, d)
			if h.Full() {
				worst, _ = h.Worst()
			}
		}
	}
	appendRow := func(r int) {
		if sel.Filter != nil && !sel.Filter(idOf(r)) {
			return
		}
		gather = append(gather, int32(r))
		if len(gather) == ScanBlockRows {
			flush()
		}
	}

	switch {
	case mode == FilterSparse && sel.Pos == nil:
		// Word-skipping sparse iteration: empty words cost one load.
		for p := sel.Bits.NextSet(0); p >= 0 && p < n; p = sel.Bits.NextSet(p + 1) {
			appendRow(p)
		}
	case mode == FilterSparse:
		for r := 0; r < n; r++ {
			if sel.Bits.Test(int(sel.Pos[r])) {
				appendRow(r)
			}
		}
	case sel.Pos == nil:
		// Dense: decide block by block from the word-level popcount. Full
		// blocks hit the kernels in place with no per-row tests,
		// mostly-full blocks (>= 1/denseBlockDiv occupied) run masked,
		// emptier blocks divert their survivors to the gather list.
		for i0 := 0; i0 < n; i0 += ScanBlockRows {
			i1 := i0 + ScanBlockRows
			if i1 > n {
				i1 = n
			}
			m := sel.Bits.CountRange(i0, i1)
			switch {
			case m == 0:
			case m == i1-i0:
				flush() // keep heap-worst monotone across path switches
				emitRun(i0, i1)
			case m*denseBlockDiv >= i1-i0:
				flush()
				emitMasked(i0, i1)
			default:
				for p := sel.Bits.NextSet(i0); p >= 0 && p < i1; p = sel.Bits.NextSet(p + 1) {
					appendRow(p)
				}
			}
		}
	default:
		// Dense with a position mapping (IVF buckets): triaging a block by
		// testing every row's bit would cost more than the kernel itself,
		// so blocks run masked, with one shortcut — when Pos is declared
		// sorted, a ranged popcount over the block's position span detects
		// all-excluded blocks (filters correlated with insertion order
		// leave many) and skips them without a dispatch. Bucket membership
		// is uncorrelated with the filter in expectation, so a dense
		// bitset stays dense within buckets; where it does not, the
		// worst-distance gate still bounds the testing to candidates.
		for i0 := 0; i0 < n; i0 += ScanBlockRows {
			i1 := i0 + ScanBlockRows
			if i1 > n {
				i1 = n
			}
			if sel.PosSorted {
				if lo, hi := int(sel.Pos[i0]), int(sel.Pos[i1-1]); sel.Bits.CountRange(lo, hi+1) == 0 {
					continue
				}
			}
			emitMasked(i0, i1)
		}
	}
	flush()
	bufferpool.PutInt32s(gp)
	bufferpool.PutFloats(bp)
}

// passFunc returns the per-scan-row bit test for this selection.
func (s Selection) passFunc() func(int) bool {
	if s.Pos == nil {
		return func(r int) bool { return s.Bits.Test(r) }
	}
	return func(r int) bool { return s.Bits.Test(int(s.Pos[r])) }
}

// scanPairwise is the legacy per-row path: callback filters and metrics
// without batch kernels.
func scanPairwise(h *topk.Heap, metric vec.Metric, query, data []float32, dim, n int, idOf func(int) int64, filter func(int64) bool, worst float32) {
	dist := metric.Dist()
	for i := 0; i < n; i++ {
		id := idOf(i)
		if filter != nil && !filter(id) {
			continue
		}
		d := dist(query, data[i*dim:(i+1)*dim])
		if d >= worst {
			continue
		}
		h.Push(id, d)
		if h.Full() {
			worst, _ = h.Worst()
		}
	}
}
