package index_test

import (
	"testing"

	"vectordb/internal/index"
	_ "vectordb/internal/index/all"
	"vectordb/internal/vec"
)

func TestRegistryListsAllBuiltins(t *testing.T) {
	names := index.Names()
	want := []string{"ANNOY", "FLAT", "HNSW", "IVF_FLAT", "IVF_PQ", "IVF_SQ8", "RNSG"}
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", names, want)
	}
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("index %q not registered", w)
		}
	}
}

func TestNewBuilderUnknown(t *testing.T) {
	if _, err := index.NewBuilder("NOPE", vec.L2, 8, nil); err == nil {
		t.Fatal("unknown index accepted")
	}
}

func TestNewBuilderBadDim(t *testing.T) {
	if _, err := index.NewBuilder("FLAT", vec.L2, 0, nil); err == nil {
		t.Fatal("zero dim accepted")
	}
}

func TestParamInt(t *testing.T) {
	v, err := index.ParamInt(map[string]string{"x": "42"}, "x", 7)
	if err != nil || v != 42 {
		t.Fatalf("ParamInt = %d, %v", v, err)
	}
	v, err = index.ParamInt(nil, "x", 7)
	if err != nil || v != 7 {
		t.Fatalf("ParamInt default = %d, %v", v, err)
	}
	if _, err := index.ParamInt(map[string]string{"x": "abc"}, "x", 7); err == nil {
		t.Fatal("bad int accepted")
	}
}

func TestValidateBuildInput(t *testing.T) {
	if _, err := index.ValidateBuildInput([]float32{1, 2, 3}, nil, 2); err == nil {
		t.Error("ragged data accepted")
	}
	if _, err := index.ValidateBuildInput(nil, nil, 2); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := index.ValidateBuildInput([]float32{1, 2}, []int64{1, 2}, 2); err == nil {
		t.Error("mismatched ids accepted")
	}
	n, err := index.ValidateBuildInput([]float32{1, 2, 3, 4}, []int64{7, 8}, 2)
	if err != nil || n != 2 {
		t.Errorf("valid input rejected: %d, %v", n, err)
	}
}

func TestIDsOrDefault(t *testing.T) {
	ids := index.IDsOrDefault(nil, 3)
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("identity ids = %v", ids)
	}
	custom := []int64{9, 8}
	if got := index.IDsOrDefault(custom, 2); &got[0] != &custom[0] {
		t.Fatal("custom ids were copied")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	index.Register("FLAT", nil)
}
