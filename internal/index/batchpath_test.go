package index_test

import (
	"testing"

	"vectordb/internal/dataset"
	"vectordb/internal/index"
	_ "vectordb/internal/index/all"
	"vectordb/internal/vec"
)

// TestIndexScansUseBatchKernels is the dispatch-counter conformance guard
// of the blocked read path: an unfiltered L2 search on the brute-force and
// IVF_FLAT indexes must go through the hooked batch kernel entry points.
// A zero count means a scan path silently regressed to a per-pair loop
// over its contiguous block.
func TestIndexScansUseBatchKernels(t *testing.T) {
	d := dataset.DeepLike(1200, 41)
	qs := dataset.Queries(d, 2, 42)
	prev := vec.DispatchCounting()
	vec.SetDispatchCounting(true)
	defer vec.SetDispatchCounting(prev)
	for _, name := range []string{"FLAT", "IVF_FLAT"} {
		b, err := index.NewBuilder(name, vec.L2, d.Dim, map[string]string{"iter": "4"})
		if err != nil {
			t.Fatal(err)
		}
		idx, err := b.Build(d.Data, nil)
		if err != nil {
			t.Fatal(err)
		}
		vec.ResetDispatchCounts()
		res := idx.Search(qs[:d.Dim], index.SearchParams{K: 10, Nprobe: 8})
		if len(res) == 0 {
			t.Fatalf("%s returned no results", name)
		}
		if vec.BatchDispatchTotal() == 0 {
			t.Errorf("%s: Search made no batch-kernel dispatches", name)
		}
	}
	// The IVF batch scheduler must go through the query-tile kernels.
	b, _ := index.NewBuilder("IVF_FLAT", vec.L2, d.Dim, map[string]string{"iter": "4"})
	idx, err := b.Build(d.Data, nil)
	if err != nil {
		t.Fatal(err)
	}
	vec.ResetDispatchCounts()
	batch := index.SearchBatch(idx, qs, index.SearchParams{K: 10, Nprobe: 8})
	if len(batch) != 2 {
		t.Fatalf("SearchBatch returned %d result sets", len(batch))
	}
	if vec.BatchDispatchTotal() == 0 {
		t.Error("IVF SearchBatch made no batch-kernel dispatches")
	}
}
